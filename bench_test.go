package qaoaml

// One benchmark per paper table/figure plus the ablation benches called
// out in DESIGN.md. Experiment benches run at a reduced scale (the
// structure of the computation is identical to the paper scale; only
// counts differ) so `go test -bench=. -benchmem` finishes in minutes.

import (
	"bytes"
	"context"
	"math/rand"
	"sync"
	"testing"

	"qaoaml/internal/core"
	"qaoaml/internal/experiments"
	"qaoaml/internal/graph"
	"qaoaml/internal/linalg"
	"qaoaml/internal/ml"
	"qaoaml/internal/optimize"
	"qaoaml/internal/qaoa"
	"qaoaml/internal/quantum"
)

// benchScale is the reduced experiment scale shared by the per-figure
// benchmarks.
func benchScale() experiments.Scale {
	return experiments.Scale{
		NumGraphs:  16,
		Nodes:      8,
		EdgeProb:   0.5,
		MaxDepth:   3,
		Starts:     4,
		TrainFrac:  0.4,
		Reps:       1,
		TestGraphs: 4,
		MaxTarget:  3,
		Seed:       1,
	}
}

var (
	benchEnvOnce sync.Once
	benchEnvVal  *experiments.Env
	benchEnvErr  error
)

func benchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	benchEnvOnce.Do(func() { benchEnvVal, benchEnvErr = experiments.NewEnv(benchScale()) })
	if benchEnvErr != nil {
		b.Fatal(benchEnvErr)
	}
	return benchEnvVal
}

// --- one bench per paper artifact ---

// BenchmarkDataGen regenerates the Sec. III-A optimal-parameter dataset
// (reduced scale).
func BenchmarkDataGen(b *testing.B) {
	cfg := core.DataGenConfig{
		NumGraphs: 4, Nodes: 8, EdgeProb: 0.5,
		MaxDepth: 3, Starts: 3, Tol: 1e-6, Seed: 2,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates Table I (naive vs two-level, 4 optimizers).
func BenchmarkTable1(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.RunTable1(env)
		if len(res.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig1c regenerates Fig. 1(c) (AR/FC distributions vs depth).
func BenchmarkFig1c(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig1c(3, 3, 3)
		if len(res.Points) != 3 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkFig2 regenerates Fig. 2 (within-depth parameter patterns).
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig2(3, 4)
		if len(res.Schedules) == 0 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkFig3 regenerates Fig. 3 (parameter trends vs depth).
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig3(3, 3, 5)
		if len(res.GammaByDepth) != 3 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkFig5 regenerates Fig. 5 (correlation analysis).
func BenchmarkFig5(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig5(env)
		if len(res.Gamma) == 0 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkFig6 regenerates Fig. 6 (prediction-error distributions).
func BenchmarkFig6(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig6(env)
		if len(res.Points) == 0 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkModelComparison regenerates the Sec. III-C model ranking.
func BenchmarkModelComparison(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunModelComparison(env)
		if err != nil || len(res.Scores) != 4 {
			b.Fatalf("bad result (%v)", err)
		}
	}
}

// --- ablation benches (design choices from DESIGN.md) ---

func benchProblem(b *testing.B) *qaoa.Problem {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	pb, err := qaoa.NewProblem(graph.ErdosRenyiConnected(8, 0.5, rng))
	if err != nil {
		b.Fatal(err)
	}
	return pb
}

// BenchmarkPhaseSeparatorDiagonal measures the fast diagonal path for
// one full depth-3 expectation evaluation.
func BenchmarkPhaseSeparatorDiagonal(b *testing.B) {
	pb := benchProblem(b)
	pr := qaoa.Params{Gamma: []float64{0.4, 0.7, 0.9}, Beta: []float64{0.5, 0.3, 0.2}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pb.Expectation(pr)
	}
}

// BenchmarkPhaseSeparatorGates measures the explicit CNOT·RZ·CNOT gate
// decomposition for the same circuit (the paper's literal circuit).
func BenchmarkPhaseSeparatorGates(b *testing.B) {
	pb := benchProblem(b)
	pr := qaoa.Params{Gamma: []float64{0.4, 0.7, 0.9}, Beta: []float64{0.5, 0.3, 0.2}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := pb.BuildCircuit(pr).Simulate()
		_ = st.ExpectationDiagonal(pb.CutTable)
	}
}

// BenchmarkExpectation measures one expectation evaluation per depth.
func BenchmarkExpectation(b *testing.B) {
	pb := benchProblem(b)
	for _, depth := range []int{1, 3, 5} {
		pr := qaoa.NewParams(depth)
		for i := range pr.Gamma {
			pr.Gamma[i] = 0.5
			pr.Beta[i] = 0.3
		}
		b.Run(map[int]string{1: "p1", 3: "p3", 5: "p5"}[depth], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = pb.Expectation(pr)
			}
		})
	}
}

// BenchmarkGradient compares the central vs forward finite-difference
// schemes on a depth-3 QAOA objective.
func BenchmarkGradient(b *testing.B) {
	pb := benchProblem(b)
	ev := qaoa.NewEvaluator(pb, 3)
	bounds := core.ParamBounds(3)
	x := bounds.Random(rand.New(rand.NewSource(8)))
	for _, scheme := range []optimize.FDScheme{optimize.CentralDiff, optimize.ForwardDiff} {
		b.Run(scheme.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = optimize.Gradient(ev.NegExpectation, x, ev.NegExpectation(x), bounds, scheme, 1e-6)
			}
		})
	}
}

// BenchmarkOptimizer runs each of the four local optimizers to
// convergence on the same depth-2 instance from the same start.
func BenchmarkOptimizer(b *testing.B) {
	pb := benchProblem(b)
	bounds := core.ParamBounds(2)
	x0 := bounds.Random(rand.New(rand.NewSource(9)))
	for _, opt := range experiments.Optimizers() {
		b.Run(opt.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ev := qaoa.NewEvaluator(pb, 2)
				r := opt.Minimize(ev.NegExpectation, append([]float64(nil), x0...), bounds)
				if r.NFev == 0 {
					b.Fatal("no evaluations")
				}
			}
		})
	}
}

// BenchmarkTwoLevelVsNaive measures one naive run and one two-level run
// at target depth 3 — the per-instance cost Table I aggregates.
func BenchmarkTwoLevelVsNaive(b *testing.B) {
	env := benchEnv(b)
	pb := env.Data.Problems[env.TestIDs[0]]
	opt := &optimize.LBFGSB{Tol: 1e-6}
	b.Run("naive", func(b *testing.B) {
		rng := rand.New(rand.NewSource(10))
		for i := 0; i < b.N; i++ {
			_ = core.NaiveRun(pb, 3, opt, rng)
		}
	})
	b.Run("twolevel", func(b *testing.B) {
		rng := rand.New(rand.NewSource(10))
		for i := 0; i < b.N; i++ {
			if _, err := core.TwoLevel(pb, 3, opt, env.Predictor, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGPR measures predictor-model fit and predict costs on a
// dataset-shaped task (3 features, 60 samples).
func BenchmarkGPR(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	x := make([][]float64, 60)
	y := make([]float64, 60)
	for i := range x {
		x[i] = []float64{rng.Float64(), rng.Float64(), float64(2 + rng.Intn(4))}
		y[i] = x[i][0]*0.5 + x[i][1]*0.2 + 0.1*x[i][2]
	}
	b.Run("fit", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var g ml.GPR
			if err := g.Fit(x, y); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("predict", func(b *testing.B) {
		var g ml.GPR
		if err := g.Fit(x, y); err != nil {
			b.Fatal(err)
		}
		q := []float64{0.4, 0.3, 3}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = g.Predict(q)
		}
	})
}

// BenchmarkMaxCutBruteForce measures the exact classical solve used for
// approximation ratios (8 nodes → 128 assignments).
func BenchmarkMaxCutBruteForce(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	g := graph.ErdosRenyiConnected(8, 0.5, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.MaxCut()
	}
}

// BenchmarkStateGates measures raw simulator gate throughput at 8 qubits.
func BenchmarkStateGates(b *testing.B) {
	b.Run("H", func(b *testing.B) {
		s := quantum.NewState(8)
		for i := 0; i < b.N; i++ {
			s.H(i % 8)
		}
	})
	b.Run("RX", func(b *testing.B) {
		s := quantum.NewState(8)
		for i := 0; i < b.N; i++ {
			s.RX(i%8, 0.3)
		}
	})
	b.Run("CNOT", func(b *testing.B) {
		s := quantum.NewState(8)
		for i := 0; i < b.N; i++ {
			s.CNOT(i%8, (i+1)%8)
		}
	})
	b.Run("ZZ", func(b *testing.B) {
		s := quantum.NewState(8)
		for i := 0; i < b.N; i++ {
			s.ZZ(i%8, (i+1)%8, 0.4)
		}
	})
}

// BenchmarkHierarchical regenerates the Sec. I(d) hierarchical-vs-
// two-level ablation.
func BenchmarkHierarchical(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunHierarchical(env)
		if err != nil || len(res.Rows) == 0 {
			b.Fatalf("bad result (%v)", err)
		}
	}
}

// BenchmarkSPSA measures the hardware-practical SPSA optimizer on the
// same instance as BenchmarkOptimizer for comparison.
func BenchmarkSPSA(b *testing.B) {
	pb := benchProblem(b)
	bounds := core.ParamBounds(2)
	x0 := bounds.Random(rand.New(rand.NewSource(9)))
	for i := 0; i < b.N; i++ {
		ev := qaoa.NewEvaluator(pb, 2)
		r := (&optimize.SPSA{Seed: 13}).Minimize(ev.NegExpectation, append([]float64(nil), x0...), bounds)
		if r.NFev == 0 {
			b.Fatal("no evaluations")
		}
	}
}

// BenchmarkCanonicalize measures the symmetry folding applied to every
// recorded optimum.
func BenchmarkCanonicalize(b *testing.B) {
	pb := benchProblem(b)
	pr := qaoa.Params{Gamma: []float64{5.9, 1.2, 4.4}, Beta: []float64{2.3, -0.4, 1.9}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pb.Canonicalize(pr)
	}
}

// BenchmarkWeightedExpectation measures a weighted-MaxCut expectation
// evaluation (same code path as Table I but with non-unit weights).
func BenchmarkWeightedExpectation(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	g := graph.New(8)
	for u := 0; u < 8; u++ {
		for v := u + 1; v < 8; v++ {
			if rng.Float64() < 0.5 {
				if err := g.AddWeightedEdge(u, v, 0.5+rng.Float64()); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	pb, err := qaoa.NewProblem(g)
	if err != nil {
		b.Fatal(err)
	}
	pr := qaoa.Params{Gamma: []float64{0.4, 0.7}, Beta: []float64{0.5, 0.3}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pb.Expectation(pr)
	}
}

// BenchmarkDatasetPersistence measures dataset save/load round trips.
func BenchmarkDatasetPersistence(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := env.Data.Save(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := core.Load(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNoiseSweep regenerates the depolarizing-noise extension
// figure at reduced trajectory count.
func BenchmarkNoiseSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunNoiseSweep(2, 2, 20, 15)
		if len(res.Points) == 0 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkNoisyExpectation measures one Monte-Carlo noisy expectation
// (100 trajectories) vs the exact path in BenchmarkExpectation.
func BenchmarkNoisyExpectation(b *testing.B) {
	pb := benchProblem(b)
	pr := qaoa.Params{Gamma: []float64{0.4, 0.7}, Beta: []float64{0.5, 0.3}}
	nm := quantum.NoiseModel{P1: 0.001, P2: 0.01}
	rng := rand.New(rand.NewSource(16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pb.NoisyExpectation(pr, nm, 100, rng)
	}
}

// --- evaluation-engine kernel benches ---

// BenchmarkRXAll compares the fused all-qubit mixing layer against the
// equivalent per-qubit RX loop it replaces.
func BenchmarkRXAll(b *testing.B) {
	b.Run("fused", func(b *testing.B) {
		s := quantum.NewUniformState(8)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.RXAll(0.6)
		}
	})
	b.Run("perqubit", func(b *testing.B) {
		s := quantum.NewUniformState(8)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for q := 0; q < 8; q++ {
				s.RX(q, 0.6)
			}
		}
	})
}

// BenchmarkNegExpectation measures the evaluator hot path the optimizers
// drive — one depth-3 objective call on a warm workspace (0 allocs).
func BenchmarkNegExpectation(b *testing.B) {
	pb := benchProblem(b)
	ev := qaoa.NewEvaluator(pb, 3)
	x := []float64{0.4, 0.7, 0.9, 0.5, 0.3, 0.2}
	_ = ev.NegExpectation(x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ev.NegExpectation(x)
	}
}

// BenchmarkBatchEval measures worker-pool throughput on a 12-point batch
// (the size of one depth-3 central-difference gradient stencil).
func BenchmarkBatchEval(b *testing.B) {
	pb := benchProblem(b)
	be := qaoa.NewBatchEvaluator(pb, 3, 0)
	rng := rand.New(rand.NewSource(18))
	bounds := core.ParamBounds(3)
	points := make([][]float64, 12)
	for i := range points {
		points[i] = bounds.Random(rng)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = be.EvalBatch(points)
	}
}

// BenchmarkSampleCounts measures measurement sampling with the CDF +
// binary-search path (1024 shots from a depth-2 8-qubit state).
func BenchmarkSampleCounts(b *testing.B) {
	pb := benchProblem(b)
	st := pb.State(qaoa.Params{Gamma: []float64{0.4, 0.7}, Beta: []float64{0.5, 0.3}})
	rng := rand.New(rand.NewSource(19))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = st.SampleCounts(1024, rng)
	}
}

// BenchmarkGradientWorkspace measures a full depth-3 central-difference
// gradient through the reusable workspace (serial and batched probes).
func BenchmarkGradientWorkspace(b *testing.B) {
	pb := benchProblem(b)
	bounds := core.ParamBounds(3)
	x := bounds.Random(rand.New(rand.NewSource(20)))
	ws := optimize.NewGradientWorkspace(len(x))
	dst := make([]float64, len(x))
	b.Run("serial", func(b *testing.B) {
		ev := qaoa.NewEvaluator(pb, 3)
		fx := ev.NegExpectation(x)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = ws.Gradient(dst, ev.NegExpectation, x, fx, bounds, optimize.CentralDiff, 1e-6)
		}
	})
	b.Run("batch", func(b *testing.B) {
		ev := qaoa.NewEvaluator(pb, 3)
		be := qaoa.NewBatchEvaluator(pb, 3, 0)
		fx := ev.NegExpectation(x)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, _ = ws.GradientBatch(dst, be.EvalBatch, x, fx, bounds, optimize.CentralDiff, 1e-6)
		}
	})
}

// BenchmarkGradientAdjoint measures one adjoint-mode value+gradient
// sweep per depth — the analytic replacement for the 4p-evaluation
// central-difference stencil in BenchmarkGradientWorkspace.
func BenchmarkGradientAdjoint(b *testing.B) {
	pb := benchProblem(b)
	for _, depth := range []int{1, 3, 5} {
		b.Run(map[int]string{1: "p1", 3: "p3", 5: "p5"}[depth], func(b *testing.B) {
			ev := qaoa.NewEvaluator(pb, depth)
			x := core.ParamBounds(depth).Random(rand.New(rand.NewSource(20)))
			grad := make([]float64, len(x))
			_ = ev.NegValueGrad(x, grad) // warm the workspace + adjoint buffer
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = ev.NegValueGrad(x, grad)
			}
		})
	}
}

// BenchmarkLBFGSBGradientPath runs L-BFGS-B to convergence on the same
// depth-5 instance from the same start with finite-difference vs
// adjoint gradients — the end-to-end speedup the adjoint engine buys.
func BenchmarkLBFGSBGradientPath(b *testing.B) {
	pb := benchProblem(b)
	bounds := core.ParamBounds(5)
	x0 := bounds.Random(rand.New(rand.NewSource(21)))
	b.Run("fd", func(b *testing.B) {
		ev := qaoa.NewEvaluator(pb, 5)
		for i := 0; i < b.N; i++ {
			r := optimize.Run(context.Background(),
				optimize.Problem{F: ev.NegExpectation, X0: x0, Bounds: bounds},
				optimize.Options{Optimizer: &optimize.LBFGSB{}})
			if r.NFev == 0 {
				b.Fatal("no evaluations")
			}
		}
	})
	b.Run("adjoint", func(b *testing.B) {
		ev := qaoa.NewEvaluator(pb, 5)
		for i := 0; i < b.N; i++ {
			r := optimize.Run(context.Background(),
				optimize.Problem{F: ev.NegExpectation, Grad: ev.NegGrad, X0: x0, Bounds: bounds},
				optimize.Options{Optimizer: &optimize.LBFGSB{}})
			if r.NGev == 0 {
				b.Fatal("no gradient evaluations")
			}
		}
	})
}

// --- large-register scaling benches (streaming cost + parallel kernels) ---

// largeBenchProblem builds a 3-regular streaming-mode MaxCut instance.
// Above the streaming threshold no 2^n cost table exists; C(z) is
// generated from the edge list per fixed-geometry chunk.
func largeBenchProblem(b *testing.B, n int) *qaoa.Problem {
	b.Helper()
	rng := rand.New(rand.NewSource(int64(40 + n)))
	pb, err := qaoa.NewProblem(graph.RandomRegular(n, 3, rng))
	if err != nil {
		b.Fatal(err)
	}
	if pb.CutTable != nil {
		b.Fatalf("n=%d problem materialized its cut table; streaming expected", n)
	}
	return pb
}

// BenchmarkExpectationLargeN measures one depth-1 expectation at 16,
// 20, 22 and 24 qubits through the streaming kernel — the scaling
// targets the small-n engine could not reach (a 2^22 cost+index table
// pair alone would cost 48 MiB). n=26 and n=28 run through qaoabench
// only, to keep the go-test bench smoke fast.
func BenchmarkExpectationLargeN(b *testing.B) {
	for _, n := range []int{16, 20, 22, 24} {
		n := n
		b.Run(map[int]string{16: "n16", 20: "n20", 22: "n22", 24: "n24"}[n], func(b *testing.B) {
			pb := largeBenchProblem(b, n)
			ev := qaoa.NewEvaluator(pb, 1)
			x := []float64{0.4, 0.3}
			_ = ev.NegExpectation(x) // warm the workspace
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = ev.NegExpectation(x)
			}
		})
	}
}

// BenchmarkGradientAdjointLargeN measures one adjoint value+gradient
// sweep on a 20-qubit depth-3 instance — the large-register gradient
// path (streamed observable application and matrix elements).
func BenchmarkGradientAdjointLargeN(b *testing.B) {
	pb := largeBenchProblem(b, 20)
	b.Run("n20-p3", func(b *testing.B) {
		ev := qaoa.NewEvaluator(pb, 3)
		x := []float64{0.4, 0.7, 0.9, 0.5, 0.3, 0.2}
		grad := make([]float64, len(x))
		_ = ev.NegValueGrad(x, grad) // warm workspace + adjoint buffer
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = ev.NegValueGrad(x, grad)
		}
	})
}

// BenchmarkShardedExpectation measures the depth-1 expectation over the
// sharded state layout (4 shards) against the same streaming kernels
// the flat benches use. At these sizes sharding is about exercising the
// cross-shard exchange and per-shard reduction drivers, not memory —
// the values are asserted bit-identical to the flat path in the test
// suite.
func BenchmarkShardedExpectation(b *testing.B) {
	for _, n := range []int{18, 20} {
		n := n
		b.Run(map[int]string{18: "n18-s4", 20: "n20-s4"}[n], func(b *testing.B) {
			pb := largeBenchProblem(b, n)
			w := pb.NewWorkspaceShards(2)
			defer w.Close()
			x := []float64{0.4, 0.3}
			_ = w.ExpectationVec(x) // warm the shard workers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = w.ExpectationVec(x)
			}
		})
	}
}

// BenchmarkShardedGradient measures the adjoint value+gradient sweep
// over two sharded state sets (state + adjoint, 4 shards each).
func BenchmarkShardedGradient(b *testing.B) {
	pb := largeBenchProblem(b, 20)
	b.Run("n20-p3-s4", func(b *testing.B) {
		w := pb.NewWorkspaceShards(2)
		defer w.Close()
		x := []float64{0.4, 0.7, 0.9, 0.5, 0.3, 0.2}
		grad := make([]float64, len(x))
		_ = w.ValueGrad(x, grad) // warm workers + adjoint shard set
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = w.ValueGrad(x, grad)
		}
	})
}

// BenchmarkSampleOutcomes measures the pooled sampling path underlying
// SampleCounts (1024 shots; ≤ 2 allocations per warm call).
func BenchmarkSampleOutcomes(b *testing.B) {
	pb := benchProblem(b)
	st := pb.State(qaoa.Params{Gamma: []float64{0.4, 0.7}, Beta: []float64{0.5, 0.3}})
	rng := rand.New(rand.NewSource(19))
	_ = st.SampleOutcomes(1024, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = st.SampleOutcomes(1024, rng)
	}
}

// BenchmarkEigenSym measures the Jacobi eigensolver on an 8×8 graph
// Laplacian (the spectral-utility hot path).
func BenchmarkEigenSym(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	g := graph.ErdosRenyiConnected(8, 0.5, rng)
	l := g.LaplacianMatrix()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := linalg.EigenSym(l); err != nil {
			b.Fatal(err)
		}
	}
}
