module qaoaml

go 1.22
