// Optimizer comparison: the paper's four classical local optimizers on
// one QAOA instance.
//
// Runs L-BFGS-B, Nelder-Mead, SLSQP and COBYLA from the same random
// initializations on a depth-3 MaxCut instance and reports QC calls and
// approximation ratios — the optimizer-agnosticism check behind the
// paper's Table I rows.
//
//	go run ./examples/optimizers
package main

import (
	"fmt"
	"math/rand"

	"qaoaml/internal/core"
	"qaoaml/internal/graph"
	"qaoaml/internal/optimize"
	"qaoaml/internal/qaoa"
	"qaoaml/internal/stats"
)

func main() {
	rng := rand.New(rand.NewSource(3))
	g := graph.ErdosRenyiConnected(8, 0.5, rng)
	pb, err := qaoa.NewProblem(g)
	if err != nil {
		panic(err)
	}
	fmt.Printf("graph: %v\nexact MaxCut: %g\n\n", g, pb.OptValue)

	const depth = 3
	const trials = 8
	bounds := core.ParamBounds(depth)

	// Same start points for every optimizer, for a fair comparison.
	starts := make([][]float64, trials)
	for i := range starts {
		starts[i] = bounds.Random(rng)
	}

	optimizers := []optimize.Optimizer{
		&optimize.LBFGSB{Tol: 1e-6},
		&optimize.NelderMead{Tol: 1e-6},
		&optimize.SLSQP{Tol: 1e-6},
		&optimize.COBYLA{Tol: 1e-6},
	}

	fmt.Printf("depth-%d instance, %d shared random starts per optimizer\n\n", depth, trials)
	fmt.Println("optimizer    mean FC   sd FC    mean AR  best AR")
	for _, opt := range optimizers {
		var fcs, ars []float64
		for _, x0 := range starts {
			ev := qaoa.NewEvaluator(pb, depth)
			res := opt.Minimize(ev.NegExpectation, append([]float64(nil), x0...), bounds)
			params := qaoa.FromVector(res.X)
			fcs = append(fcs, float64(ev.NFev()))
			ars = append(ars, pb.ApproximationRatio(params))
		}
		fmt.Printf("%-11s  %7.1f  %7.1f  %7.4f  %7.4f\n",
			opt.Name(), stats.Mean(fcs), stats.StdDev(fcs), stats.Mean(ars), stats.Max(ars))
	}

	fmt.Println("\ngradient-based methods (L-BFGS-B, SLSQP) pay 2·dim calls per gradient;")
	fmt.Println("derivative-free methods (Nelder-Mead, COBYLA) pay one call per probe.")
}
