// Quickstart: solve one MaxCut instance with QAOA.
//
// Builds a random 8-node graph, runs a depth-2 QAOA optimization with
// L-BFGS-B from a random initialization, and reads out the solution —
// the flow of the paper's Fig. 1(a).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	"qaoaml/internal/core"
	"qaoaml/internal/graph"
	"qaoaml/internal/optimize"
	"qaoaml/internal/qaoa"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// The problem: MaxCut on an Erdős–Rényi G(8, 0.5) graph.
	g := graph.ErdosRenyiConnected(8, 0.5, rng)
	fmt.Printf("graph: %v\n", g)
	fmt.Printf("exact MaxCut (brute force): %d of %d edges\n\n", g.MaxCut().Value, g.NumEdges())

	pb, err := qaoa.NewProblem(g)
	if err != nil {
		panic(err)
	}

	// A depth-2 QAOA circuit has 4 parameters (γ1, γ2, β1, β2). The
	// evaluator counts every expectation evaluation as one quantum-
	// computer call.
	const depth = 2
	ev := qaoa.NewEvaluator(pb, depth)
	bounds := core.ParamBounds(depth)

	opt := &optimize.LBFGSB{Tol: 1e-6}
	result := opt.Minimize(ev.NegExpectation, bounds.Random(rng), bounds)

	params := qaoa.FromVector(result.X)
	fmt.Printf("optimizer: %s (%s)\n", opt.Name(), result.Message)
	fmt.Printf("QC calls: %d\n", ev.NFev())
	fmt.Printf("optimal angles: γ=%.3f β=%.3f\n", params.Gamma, params.Beta)
	fmt.Printf("expected cut ⟨C⟩: %.4f\n", pb.Expectation(params))
	fmt.Printf("approximation ratio: %.4f\n", pb.ApproximationRatio(params))

	cut, assign := pb.BestSampledCut(params)
	fmt.Printf("most probable assignment: %08b → cut %g\n", assign, cut)
}
