// Two-level demo: the paper's full pipeline on one unseen graph.
//
// Generates a small optimal-parameter dataset, trains the GPR
// predictor, and then compares — on a fresh test graph — the naive
// random-initialization flow (Fig. 1(a)) against the two-level
// ML-initialized flow (Fig. 4), reporting QC calls and approximation
// ratios for each target depth.
//
//	go run ./examples/twolevel
package main

import (
	"fmt"
	"math/rand"
	"time"

	"qaoaml/internal/core"
	"qaoaml/internal/optimize"
)

func main() {
	start := time.Now()

	// One-time cost: dataset generation and predictor training
	// (Sec. III-A; reduced scale so the demo runs in seconds).
	cfg := core.DataGenConfig{
		NumGraphs: 40,
		Nodes:     8,
		EdgeProb:  0.5,
		MaxDepth:  4,
		Starts:    10,
		Tol:       1e-6,
		Seed:      7,
	}
	fmt.Printf("generating dataset (%d graphs, depths 1..%d, %d starts)...\n",
		cfg.NumGraphs, cfg.MaxDepth, cfg.Starts)
	data, err := core.Generate(cfg)
	if err != nil {
		panic(err)
	}
	train, test := data.SplitIndices(0.3, 1)
	pred := core.NewPredictor(nil) // GPR, the paper's best model
	if err := pred.Train(data, train); err != nil {
		panic(err)
	}
	fmt.Printf("trained GPR predictor on %d graphs in %v\n\n",
		len(train), time.Since(start).Round(time.Millisecond))

	// Evaluate on one unseen graph.
	pb := data.Problems[test[0]]
	fmt.Printf("test graph: %v\n\n", pb.Graph)
	opt := &optimize.LBFGSB{Tol: 1e-6}
	rng := rand.New(rand.NewSource(99))

	fmt.Println("pt  naive FC  naive AR  two-level FC  two-level AR  FC reduction")
	var last core.TwoLevelResult
	for pt := 2; pt <= cfg.MaxDepth; pt++ {
		naive := core.NaiveRun(pb, pt, opt, rng)
		two, err := core.TwoLevel(pb, pt, opt, pred, rng)
		if err != nil {
			panic(err)
		}
		last = two
		fmt.Printf("%2d  %8d  %8.4f  %12d  %12.4f  %11.1f%%\n",
			pt, naive.NFev, naive.AR, two.TotalNFev, two.AR(),
			100*(1-float64(two.TotalNFev)/float64(naive.NFev)))
	}

	fmt.Printf("\n(two-level FC includes the depth-1 warm-up: last row = %d level-1 + %d level-2 calls)\n",
		last.Level1.NFev, last.Level2.NFev)
}
