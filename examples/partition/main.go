// Number partitioning: QAOA beyond MaxCut via the general
// diagonal-cost API.
//
// Splits a set of numbers into two halves with equal sums. The cost
// C(z) = −(Σᵢ sᵢ(−1)^{zᵢ})² is diagonal in the computational basis, so
// the same QAOA machinery (phase separator exp(−iγC), RX mixers, the
// classical optimizers) applies unchanged.
//
//	go run ./examples/partition
package main

import (
	"fmt"
	"math/rand"

	"qaoaml/internal/optimize"
	"qaoaml/internal/qaoa"
)

func main() {
	numbers := []float64{9, 7, 6, 5, 4, 3}
	fmt.Printf("numbers: %v (sum %v)\n", numbers, sum(numbers))

	dp, err := qaoa.NumberPartitionProblem(numbers)
	if err != nil {
		panic(err)
	}
	fmt.Printf("best achievable cost: %g (0 = perfect partition)\n\n", dp.OptValue)

	// The cost scale is O(sum²), so useful γ are much smaller than the
	// MaxCut domain; give the optimizer a scaled box.
	const depth = 3
	lo := make([]float64, 2*depth)
	hi := make([]float64, 2*depth)
	for i := 0; i < depth; i++ {
		hi[i] = 0.2                // γ
		hi[depth+i] = qaoa.BetaMax // β
	}
	bounds := optimize.NewBounds(lo, hi)

	ev := dp.NewEvaluator(depth)
	opt := &optimize.LBFGSB{Tol: 1e-6}
	rng := rand.New(rand.NewSource(2))
	ms := optimize.MultiStart(opt, ev.NegExpectation, bounds, 20, rng)
	params := qaoa.FromVector(ms.Best.X)

	fmt.Printf("QAOA depth %d, 20 starts, %d QC calls\n", depth, ms.TotalNFev)
	fmt.Printf("⟨C⟩ = %.4f, normalized score %.4f\n",
		dp.Expectation(params), dp.NormalizedScore(params))

	cost, assign := dp.BestSampled(params)
	var left, right []float64
	for i, s := range numbers {
		if (assign>>uint(i))&1 == 0 {
			left = append(left, s)
		} else {
			right = append(right, s)
		}
	}
	fmt.Printf("partition: %v (sum %g) | %v (sum %g), cost %g\n",
		left, sum(left), right, sum(right), cost)
}

func sum(xs []float64) float64 {
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t
}
