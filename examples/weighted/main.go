// Weighted MaxCut: QAOA on a graph with non-uniform edge weights.
//
// Builds a weighted 6-node graph, solves it with depth-2 QAOA, and
// shows that the optimizer routes the cut through the heavy edges. The
// phase separator generalizes per edge to CNOT·RZ(−γ·w)·CNOT, an
// extension beyond the paper's unit-weight benchmark.
//
//	go run ./examples/weighted
package main

import (
	"fmt"
	"math/rand"

	"qaoaml/internal/core"
	"qaoaml/internal/graph"
	"qaoaml/internal/optimize"
	"qaoaml/internal/qaoa"
)

func main() {
	// A 6-cycle with two heavy chords: the best cut must cross them.
	g := graph.New(6)
	edges := []struct {
		u, v int
		w    float64
	}{
		{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {3, 4, 1}, {4, 5, 1}, {5, 0, 1},
		{0, 3, 4.0}, // heavy chord
		{1, 4, 3.0}, // heavy chord
	}
	for _, e := range edges {
		if err := g.AddWeightedEdge(e.u, e.v, e.w); err != nil {
			panic(err)
		}
	}
	fmt.Printf("graph: %v\n", g)

	pb, err := qaoa.NewProblem(g)
	if err != nil {
		panic(err)
	}
	optV, optAssign := g.WeightedMaxCut()
	fmt.Printf("exact weighted MaxCut: %g at %06b\n\n", optV, optAssign)

	rng := rand.New(rand.NewSource(11))
	opt := &optimize.LBFGSB{Tol: 1e-6}
	rec := core.OptimizeDepth(pb, 0, 2, 10, opt, rng)

	fmt.Printf("QAOA depth 2, 10 starts: ⟨C⟩ = %.4f (AR %.4f), %d QC calls\n",
		pb.Expectation(rec.Params), rec.AR, rec.NFev)
	cut, assign := pb.BestSampledCut(rec.Params)
	fmt.Printf("most probable assignment: %06b → cut %g\n", assign, cut)

	heavyCut := 0
	for _, e := range []struct{ u, v int }{{0, 3}, {1, 4}} {
		if (assign>>uint(e.u))&1 != (assign>>uint(e.v))&1 {
			heavyCut++
		}
	}
	fmt.Printf("heavy chords crossed: %d of 2\n", heavyCut)
}
