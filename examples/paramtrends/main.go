// Parameter trends: reproduce the paper's Fig. 2/3 observation on one
// graph.
//
// Optimizes a 3-regular 8-node MaxCut instance at depths 1..5 and
// prints the optimal stage angles, showing the two patterns the ML
// model exploits: within a depth, γi increases and βi decreases between
// stages; across depths, γ1 decreases and the schedule stretches.
//
//	go run ./examples/paramtrends
package main

import (
	"fmt"
	"math/rand"
	"strings"

	"qaoaml/internal/core"
	"qaoaml/internal/graph"
	"qaoaml/internal/optimize"
	"qaoaml/internal/qaoa"
)

func main() {
	rng := rand.New(rand.NewSource(5))
	g := graph.RandomRegular(8, 3, rng)
	fmt.Printf("graph: 3-regular, 8 nodes, MaxCut = %d\n\n", g.MaxCut().Value)

	pb, err := qaoa.NewProblem(g)
	if err != nil {
		panic(err)
	}
	opt := &optimize.LBFGSB{Tol: 1e-6}

	fmt.Println(" p  AR      γ schedule                β schedule")
	var prev qaoa.Params
	for depth := 1; depth <= 5; depth++ {
		var seeds []qaoa.Params
		if depth > 1 {
			// Seed one start from the interpolated lower-depth optimum so
			// the optimizer stays in the regular (annealing-like) family.
			seeds = append(seeds, qaoa.Interpolate(prev))
		}
		rec := core.OptimizeDepth(pb, 0, depth, 10, opt, rng, seeds...)
		prev = rec.Params
		fmt.Printf("%2d  %.4f  %-24s  %-24s\n",
			depth, rec.AR, fmtAngles(rec.Params.Gamma), fmtAngles(rec.Params.Beta))
	}

	fmt.Println("\nwithin a row: γ increases stage to stage, β decreases (paper Fig. 2);")
	fmt.Println("down a column: γ1 shrinks as depth grows (paper Fig. 3).")
}

func fmtAngles(v []float64) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%.2f", x)
	}
	return strings.Join(parts, " ")
}
