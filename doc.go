// Package qaoaml is a from-scratch Go reproduction of "Accelerating
// Quantum Approximate Optimization Algorithm using Machine Learning"
// (Alam, Ash-Saki, Ghosh — DATE 2020, arXiv:2002.01089).
//
// The paper's contribution — predicting good initial QAOA gate
// parameters for a depth-pt MaxCut instance from the optimized depth-1
// parameters with a regression model, cutting optimization-loop
// iterations by ~45% on average — lives in internal/core. Every
// substrate the paper depends on is implemented here as well:
//
//   - internal/quantum  — exact state-vector simulator (replaces QuTiP)
//   - internal/qaoa     — QAOA MaxCut circuits, expectation, AR
//   - internal/graph    — Erdős–Rényi / regular graphs, exact MaxCut
//   - internal/optimize — L-BFGS-B, Nelder-Mead, SLSQP, COBYLA (replaces SciPy)
//   - internal/ml       — GPR, linear, tree, SVR regression (replaces MATLAB)
//   - internal/linalg   — dense linear algebra (Cholesky, QR, LU)
//   - internal/stats    — descriptive statistics and correlations
//   - internal/experiments — one runner per paper table/figure
//
// The cmd/qaoaml command regenerates every table and figure; see
// README.md, DESIGN.md and EXPERIMENTS.md. The benchmarks in
// bench_test.go cover each experiment plus the ablations called out in
// DESIGN.md.
package qaoaml
