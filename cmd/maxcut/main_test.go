package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

func TestParseEdgeList(t *testing.T) {
	in := `
# a triangle with one weighted edge
0 1
1 2 2.5

0 2   # inline comment
`
	g, err := parseEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || g.NumEdges() != 3 {
		t.Fatalf("parsed n=%d m=%d", g.N, g.NumEdges())
	}
	if !g.Weighted() || g.TotalWeight() != 4.5 {
		t.Errorf("weights wrong: total %v", g.TotalWeight())
	}
}

func TestParseEdgeListErrors(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"only comments":   "# nothing\n",
		"bad fields":      "0 1 2 3\n",
		"bad vertex":      "a 1\n",
		"bad weight":      "0 1 x\n",
		"negative vertex": "-1 2\n",
		"self loop":       "1 1\n",
		"duplicate":       "0 1\n1 0\n",
		"too large":       "0 25\n",
	}
	for name, in := range cases {
		if _, err := parseEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestOptimizerByName(t *testing.T) {
	for _, name := range []string{"lbfgsb", "Nelder-Mead", "slsqp", "COBYLA", "spsa"} {
		opt, err := optimizerByName(name, 1e-6)
		if err != nil || opt == nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := optimizerByName("adam", 1e-6); err == nil {
		t.Error("unknown optimizer accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	// A bipartite square: the optimum cuts all 4 edges; depth-2 QAOA
	// with a few starts should find it comfortably.
	dir := t.TempDir()
	path := dir + "/square.txt"
	if err := writeFile(path, "0 1\n1 2\n2 3\n0 3\n"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(path, 2, "lbfgsb", 5, 1, 1e-6, false, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"approximation ratio", "exact optimum", "cut 4"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunQuiet(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/edge.txt"
	if err := writeFile(path, "0 1\n"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(path, 1, "neldermead", 3, 2, 1e-6, true, &buf); err != nil {
		t.Fatal(err)
	}
	fields := strings.Fields(buf.String())
	if len(fields) != 2 {
		t.Fatalf("quiet output = %q", buf.String())
	}
}

func TestRunValidation(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/edge.txt"
	if err := writeFile(path, "0 1\n"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(path, 0, "lbfgsb", 5, 1, 1e-6, false, &buf); err == nil {
		t.Error("depth 0 accepted")
	}
	if err := run(path, 1, "lbfgsb", 0, 1, 1e-6, false, &buf); err == nil {
		t.Error("0 starts accepted")
	}
	if err := run(path, 1, "nope", 5, 1, 1e-6, false, &buf); err == nil {
		t.Error("unknown optimizer accepted")
	}
	if err := run(dir+"/missing.txt", 1, "lbfgsb", 5, 1, 1e-6, false, &buf); err == nil {
		t.Error("missing file accepted")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
