// Command maxcut solves a (weighted) MaxCut instance with QAOA.
//
// The graph is an edge list read from a file or stdin, one edge per
// line as "u v" or "u v weight" (0-based vertex ids, '#' comments).
//
//	echo "0 1
//	1 2
//	0 2 2.5" | maxcut -depth 2
//
// The tool runs a multistart QAOA optimization, prints the optimized
// angles, the expected and most-probable cut, and (for small graphs)
// the exact optimum for comparison.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"qaoaml/internal/core"
	"qaoaml/internal/graph"
	"qaoaml/internal/optimize"
	"qaoaml/internal/qaoa"
)

func main() {
	var (
		depth   = flag.Int("depth", 2, "QAOA circuit depth p")
		optName = flag.String("optimizer", "lbfgsb", "local optimizer: lbfgsb|neldermead|slsqp|cobyla|spsa")
		starts  = flag.Int("starts", 10, "random multistarts")
		seed    = flag.Int64("seed", 1, "RNG seed")
		tol     = flag.Float64("tol", 1e-6, "functional tolerance")
		file    = flag.String("f", "-", "edge-list file ('-' = stdin)")
		quiet   = flag.Bool("q", false, "print only the assignment and cut value")
	)
	flag.Parse()

	if err := run(*file, *depth, *optName, *starts, *seed, *tol, *quiet, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "maxcut:", err)
		os.Exit(1)
	}
}

func run(file string, depth int, optName string, starts int, seed int64, tol float64, quiet bool, w io.Writer) error {
	var in io.Reader = os.Stdin
	if file != "-" {
		f, err := os.Open(file)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	g, err := parseEdgeList(in)
	if err != nil {
		return err
	}
	opt, err := optimizerByName(optName, tol)
	if err != nil {
		return err
	}
	pb, err := qaoa.NewProblem(g)
	if err != nil {
		return err
	}
	if depth < 1 {
		return fmt.Errorf("depth %d < 1", depth)
	}
	if starts < 1 {
		return fmt.Errorf("starts %d < 1", starts)
	}

	rng := rand.New(rand.NewSource(seed))
	rec := core.OptimizeDepth(pb, 0, depth, starts, opt, rng)
	cut, assign := pb.BestSampledCut(rec.Params)

	if quiet {
		fmt.Fprintf(w, "%0*b %g\n", g.N, assign, cut)
		return nil
	}
	fmt.Fprintf(w, "graph: %v\n", g)
	fmt.Fprintf(w, "optimizer: %s, depth %d, %d starts, tol %g\n", opt.Name(), depth, starts, tol)
	fmt.Fprintf(w, "QC calls: %d\n", rec.NFev)
	fmt.Fprintf(w, "angles: γ=%.4f β=%.4f\n", rec.Params.Gamma, rec.Params.Beta)
	fmt.Fprintf(w, "expected cut ⟨C⟩: %.4f\n", pb.Expectation(rec.Params))
	fmt.Fprintf(w, "approximation ratio: %.4f\n", rec.AR)
	fmt.Fprintf(w, "assignment: %0*b → cut %g\n", g.N, assign, cut)
	optV, optAssign := g.WeightedMaxCut()
	fmt.Fprintf(w, "exact optimum (brute force): %0*b → cut %g\n", g.N, optAssign, optV)
	return nil
}

// parseEdgeList reads "u v [weight]" lines, ignoring blanks and
// '#'-comments, and returns a graph sized to the largest vertex id.
func parseEdgeList(r io.Reader) (*graph.Graph, error) {
	type edge struct {
		u, v int
		w    float64
	}
	var edges []edge
	maxV := -1
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 && len(fields) != 3 {
			return nil, fmt.Errorf("line %d: want 'u v [weight]', got %q", lineNo, line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("line %d: bad vertex %q", lineNo, fields[0])
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("line %d: bad vertex %q", lineNo, fields[1])
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("line %d: negative vertex id", lineNo)
		}
		wgt := 1.0
		if len(fields) == 3 {
			wgt, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad weight %q", lineNo, fields[2])
			}
		}
		edges = append(edges, edge{u, v, wgt})
		if u > maxV {
			maxV = u
		}
		if v > maxV {
			maxV = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(edges) == 0 {
		return nil, fmt.Errorf("no edges in input")
	}
	if maxV+1 > 20 {
		return nil, fmt.Errorf("graph has %d vertices; the exact simulator is limited to 20", maxV+1)
	}
	g := graph.New(maxV + 1)
	for _, e := range edges {
		if err := g.AddWeightedEdge(e.u, e.v, e.w); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// optimizerByName maps a CLI name to an optimizer at the given tolerance.
func optimizerByName(name string, tol float64) (optimize.Optimizer, error) {
	switch strings.ToLower(name) {
	case "lbfgsb", "l-bfgs-b":
		return &optimize.LBFGSB{Tol: tol}, nil
	case "neldermead", "nelder-mead", "nm":
		return &optimize.NelderMead{Tol: tol}, nil
	case "slsqp":
		return &optimize.SLSQP{Tol: tol}, nil
	case "cobyla":
		return &optimize.COBYLA{Tol: tol}, nil
	case "spsa":
		return &optimize.SPSA{Tol: tol}, nil
	}
	return nil, fmt.Errorf("unknown optimizer %q", name)
}
