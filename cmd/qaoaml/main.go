// Command qaoaml regenerates every table and figure of "Accelerating
// Quantum Approximate Optimization Algorithm using Machine Learning"
// (Alam, Ash-Saki, Ghosh — DATE 2020).
//
// Usage:
//
//	qaoaml [flags] <experiment>
//
// Experiments: datagen, table1, fig1c, fig2, fig3, fig5, fig6, mlcmp, all.
//
// The default scale runs in tens of seconds; -paper restores the
// paper's full setup (330 graphs, 20 starts, 20 reps — minutes of CPU).
// -timeout bounds the run (cancellation lands within one optimizer
// step), and -metrics dumps the collected telemetry — per-depth FC
// histograms, optimizer run stats, flow spans — as JSON.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"qaoaml/internal/core"
	"qaoaml/internal/experiments"
	"qaoaml/internal/stats"
	"qaoaml/internal/telemetry"
)

func main() {
	flag.Usage = usage
	cfg, err := FromFlags(flag.CommandLine, os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "qaoaml:", err)
		os.Exit(2)
	}
	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}

	ctx, cancel := cfg.Context()
	defer cancel()
	var mem *telemetry.Memory
	if cfg.Metrics != "" {
		mem = telemetry.NewMemory()
	}

	runErr := run(ctx, flag.Arg(0), cfg, mem)
	if mem != nil {
		// Dump whatever was collected even when the run was cut short:
		// partial metrics are exactly what a timed-out sweep leaves behind.
		if err := writeMetrics(cfg.Metrics, mem); err != nil {
			fmt.Fprintln(os.Stderr, "qaoaml:", err)
			os.Exit(1)
		}
		fmt.Printf("telemetry written to %s\n", cfg.Metrics)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "qaoaml:", runErr)
		os.Exit(1)
	}
}

func writeMetrics(path string, mem *telemetry.Memory) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := mem.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: qaoaml [flags] <experiment>

experiments:
  datagen   generate the optimal-parameter dataset and print summary stats
  table1    Table I  — naive vs two-level FC/AR for 4 optimizers × depths
  fig1c     Fig 1(c) — AR and QC-call distributions vs depth
  fig2      Fig 2    — within-depth optimal parameter patterns
  fig3      Fig 3    — optimal parameters vs circuit depth
  fig5      Fig 5    — predictor/response correlation analysis
  fig6      Fig 6    — ML prediction error distributions
  mlcmp     Sec III-C — GPR vs LM vs RTREE vs RSVM comparison
  hier      Sec I(d)  — hierarchical vs two-level vs naive ablation
  spsa      extension — two-level initialization under SPSA
  noise     extension — AR degradation under depolarizing gate noise
  all       everything above (one shared dataset)

flags:
`)
	flag.PrintDefaults()
}

// needsEnv reports whether the experiment requires the generated
// dataset and trained predictor.
func needsEnv(name string) bool {
	switch name {
	case "fig1c", "fig2", "fig3", "noise":
		return false
	}
	return true
}

func run(ctx context.Context, name string, cfg RunConfig, mem *telemetry.Memory) error {
	start := time.Now()
	scale := cfg.Scale()
	var rec telemetry.Recorder // stays untyped-nil when -metrics is off
	if mem != nil {
		rec = mem
	}
	var env *experiments.Env
	if needsEnv(name) {
		var err error
		if cfg.LoadData != "" {
			fmt.Printf("loading dataset from %s...\n", cfg.LoadData)
			data, lerr := core.LoadFile(cfg.LoadData)
			if lerr != nil {
				return lerr
			}
			env, err = experiments.NewEnvFromData(scale, data)
		} else {
			fmt.Printf("generating dataset: %d graphs × depths 1..%d × %d starts (seed %d)...\n",
				scale.NumGraphs, scale.MaxDepth, scale.Starts, scale.Seed)
			env, err = experiments.NewEnvCtx(ctx, scale, rec)
		}
		if err != nil {
			return err
		}
		if cfg.SaveData != "" {
			if err := env.Data.SaveFile(cfg.SaveData); err != nil {
				return err
			}
			fmt.Printf("dataset written to %s\n", cfg.SaveData)
		}
		fmt.Printf("dataset ready in %v: %d optimal parameters, %d train / %d test graphs\n\n",
			time.Since(start).Round(time.Millisecond), env.Data.NumParams(),
			len(env.TrainIDs), len(env.TestIDs))
		if cfg.ModelOut != "" {
			if err := env.Predictor.SaveFile(cfg.ModelOut); err != nil {
				return err
			}
			fmt.Printf("trained model written to %s (target depths %v)\n\n",
				cfg.ModelOut, env.Predictor.TargetDepths())
		}
	}
	if cfg.ModelOut != "" && env == nil {
		return fmt.Errorf("-model-out needs an experiment that trains the predictor (e.g. datagen)")
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	// report prints a result and, with -csv, also writes <id>.csv.
	report := func(id string, res interface {
		String() string
		CSV() string
	}) error {
		fmt.Println(res)
		if cfg.CSVDir == "" {
			return nil
		}
		path := filepath.Join(cfg.CSVDir, experiments.CSVName(id))
		if err := os.WriteFile(path, []byte(res.CSV()), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n\n", path)
		return nil
	}

	switch name {
	case "datagen":
		printDatagenSummary(env)
	case "table1":
		return finish(start, report("table1", experiments.RunTable1(env)))
	case "fig1c":
		return finish(start, report("fig1c", experiments.RunFig1c(scale.MaxTarget, scale.Starts, scale.Seed)))
	case "fig2":
		return finish(start, report("fig2", experiments.RunFig2(scale.Starts, scale.Seed)))
	case "fig3":
		return finish(start, report("fig3", experiments.RunFig3(scale.MaxTarget, scale.Starts, scale.Seed)))
	case "fig5":
		return finish(start, report("fig5", experiments.RunFig5(env)))
	case "fig6":
		return finish(start, report("fig6", experiments.RunFig6(env)))
	case "mlcmp":
		res, err := experiments.RunModelComparison(env)
		if err != nil {
			return err
		}
		return finish(start, report("mlcmp", res))
	case "hier":
		res, err := experiments.RunHierarchical(env)
		if err != nil {
			return err
		}
		return finish(start, report("hier", res))
	case "spsa":
		return finish(start, report("spsa", experiments.RunSPSAExtension(env)))
	case "noise":
		return finish(start, report("noise", experiments.RunNoiseSweep(scale.MaxTarget, 4, 200, scale.Seed)))
	case "all":
		printDatagenSummary(env)
		if err := report("fig1c", experiments.RunFig1c(scale.MaxTarget, scale.Starts, scale.Seed)); err != nil {
			return err
		}
		if err := report("fig2", experiments.RunFig2(scale.Starts, scale.Seed)); err != nil {
			return err
		}
		if err := report("fig3", experiments.RunFig3(scale.MaxTarget, scale.Starts, scale.Seed)); err != nil {
			return err
		}
		if err := report("fig5", experiments.RunFig5(env)); err != nil {
			return err
		}
		if err := report("fig6", experiments.RunFig6(env)); err != nil {
			return err
		}
		res, err := experiments.RunModelComparison(env)
		if err != nil {
			return err
		}
		if err := report("mlcmp", res); err != nil {
			return err
		}
		if env.Scale.MaxDepth >= 3 {
			hres, err := experiments.RunHierarchical(env)
			if err != nil {
				return err
			}
			if err := report("hier", hres); err != nil {
				return err
			}
		}
		if err := report("table1", experiments.RunTable1(env)); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown experiment %q (run with no arguments for usage)", name)
	}
	return finish(start, nil)
}

// finish prints the wall time and passes through err.
func finish(start time.Time, err error) error {
	if err != nil {
		return err
	}
	fmt.Printf("total wall time: %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func printDatagenSummary(env *experiments.Env) {
	data := env.Data
	fmt.Printf("dataset summary (cf. Sec. III-A):\n")
	fmt.Printf("  graphs: %d (n=%d, Erdős–Rényi p=%.2f), depths 1..%d, %d starts each\n",
		len(data.Problems), data.Config.Nodes, data.Config.EdgeProb,
		data.Config.MaxDepth, data.Config.Starts)
	fmt.Printf("  optimal parameters: %d (paper: 13,860 at full scale)\n", data.NumParams())
	for d := 1; d <= data.Config.MaxDepth; d++ {
		var ars, fcs []float64
		for g := range data.Problems {
			rec := data.Record(g, d)
			ars = append(ars, rec.AR)
			fcs = append(fcs, rec.MeanFev)
		}
		fmt.Printf("  depth %d: AR %s\n           FC/start %s\n",
			d, stats.Summarize(ars), stats.Summarize(fcs))
	}
	fmt.Println()
}
