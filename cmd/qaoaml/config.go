package main

import (
	"context"
	"flag"
	"fmt"
	"time"

	"qaoaml/internal/experiments"
)

// RunConfig groups every qaoaml flag into one validated bundle. A zero
// numeric field means "unset — keep the scale's default"; Validate
// rejects values that are present but nonsensical (negative counts,
// fractions outside (0,1)), so bad input fails before the dataset sweep
// starts rather than deep inside it.
type RunConfig struct {
	// Scale overrides (0 = keep DefaultScale/PaperScale value).
	Paper      bool
	Graphs     int
	Nodes      int
	MaxDepth   int
	Starts     int
	Reps       int
	TestGraphs int // -1 = unset; 0 = explicitly "all test graphs"
	TrainFrac  float64
	MaxTarget  int
	Seed       int64
	Workers    int

	// Run controls.
	Timeout time.Duration // 0 = no deadline
	Metrics string        // write the telemetry snapshot JSON here

	// I/O.
	SaveData string
	LoadData string
	CSVDir   string
	ModelOut string // export the trained predictor for qaoad -models
}

// RegisterFlags binds the config's fields to fs.
func (c *RunConfig) RegisterFlags(fs *flag.FlagSet) {
	fs.BoolVar(&c.Paper, "paper", false, "use the paper's full experimental scale")
	fs.IntVar(&c.Graphs, "graphs", 0, "override dataset graph count")
	fs.IntVar(&c.Nodes, "nodes", 0, "override graph size")
	fs.IntVar(&c.MaxDepth, "maxdepth", 0, "override dataset max depth")
	fs.IntVar(&c.Starts, "starts", 0, "override datagen multistart count")
	fs.IntVar(&c.Reps, "reps", 0, "override Table I repetitions per graph")
	fs.IntVar(&c.TestGraphs, "test-graphs", -1, "cap on test graphs (0 = all)")
	fs.Float64Var(&c.TrainFrac, "train-frac", 0, "override train split fraction")
	fs.IntVar(&c.MaxTarget, "max-target", 0, "override largest target depth")
	fs.Int64Var(&c.Seed, "seed", 0, "override RNG seed")
	fs.IntVar(&c.Workers, "workers", 0, "datagen parallelism (0 = GOMAXPROCS)")
	fs.DurationVar(&c.Timeout, "timeout", 0, "overall deadline (e.g. 90s; 0 = none)")
	fs.StringVar(&c.Metrics, "metrics", "", "write collected telemetry as JSON to this file")
	fs.StringVar(&c.SaveData, "save-data", "", "write the generated dataset to this JSON file")
	fs.StringVar(&c.LoadData, "load-data", "", "load the dataset from this JSON file instead of generating")
	fs.StringVar(&c.CSVDir, "csv", "", "also write each experiment's result as CSV into this directory")
	fs.StringVar(&c.ModelOut, "model-out", "", "write the trained predictor as JSON (servable via qaoad -models)")
}

// FromFlags parses args into a validated RunConfig.
func FromFlags(fs *flag.FlagSet, args []string) (RunConfig, error) {
	var c RunConfig
	c.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return c, err
	}
	return c, c.Validate()
}

// Validate rejects present-but-nonsensical values. Zero means unset and
// is always accepted (except TestGraphs, whose unset sentinel is -1).
func (c RunConfig) Validate() error {
	pos := map[string]int{
		"graphs": c.Graphs, "nodes": c.Nodes, "maxdepth": c.MaxDepth,
		"starts": c.Starts, "reps": c.Reps, "max-target": c.MaxTarget,
		"workers": c.Workers,
	}
	for name, v := range pos {
		if v < 0 {
			return fmt.Errorf("-%s %d is negative", name, v)
		}
	}
	if c.TestGraphs < -1 {
		return fmt.Errorf("-test-graphs %d is negative (use 0 for all)", c.TestGraphs)
	}
	if c.TrainFrac != 0 && (c.TrainFrac <= 0 || c.TrainFrac >= 1) {
		return fmt.Errorf("-train-frac %v out of (0,1)", c.TrainFrac)
	}
	if c.Timeout < 0 {
		return fmt.Errorf("-timeout %v is negative", c.Timeout)
	}
	if c.LoadData != "" && c.SaveData != "" {
		return fmt.Errorf("-load-data and -save-data are mutually exclusive")
	}
	return nil
}

// Scale folds the config's overrides into the base experimental scale.
func (c RunConfig) Scale() experiments.Scale {
	s := experiments.DefaultScale()
	if c.Paper {
		s = experiments.PaperScale()
	}
	if c.Graphs > 0 {
		s.NumGraphs = c.Graphs
	}
	if c.Nodes > 0 {
		s.Nodes = c.Nodes
	}
	if c.MaxDepth > 0 {
		s.MaxDepth = c.MaxDepth
	}
	if c.Starts > 0 {
		s.Starts = c.Starts
	}
	if c.Reps > 0 {
		s.Reps = c.Reps
	}
	if c.TestGraphs >= 0 {
		s.TestGraphs = c.TestGraphs
	}
	if c.TrainFrac > 0 {
		s.TrainFrac = c.TrainFrac
	}
	if c.MaxTarget > 0 {
		s.MaxTarget = c.MaxTarget
	}
	if c.Seed != 0 {
		s.Seed = c.Seed
	}
	s.Workers = c.Workers
	return s
}

// Context returns the run context honoring -timeout.
func (c RunConfig) Context() (context.Context, context.CancelFunc) {
	if c.Timeout > 0 {
		return context.WithTimeout(context.Background(), c.Timeout)
	}
	return context.WithCancel(context.Background())
}
