package main

import (
	"flag"
	"io"
	"testing"
	"time"
)

func parse(t *testing.T, args ...string) (RunConfig, error) {
	t.Helper()
	fs := flag.NewFlagSet("qaoaml", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return FromFlags(fs, args)
}

func TestFromFlagsDefaultsAreValid(t *testing.T) {
	cfg, err := parse(t, "datagen")
	if err != nil {
		t.Fatal(err)
	}
	s := cfg.Scale()
	if err := s.Validate(); err != nil {
		t.Errorf("default scale invalid: %v", err)
	}
	if cfg.Timeout != 0 || cfg.Metrics != "" {
		t.Errorf("unexpected defaults: %+v", cfg)
	}
}

func TestFromFlagsRejectsNonsense(t *testing.T) {
	bad := [][]string{
		{"-graphs", "-3"},
		{"-nodes", "-1"},
		{"-starts", "-5"},
		{"-reps", "-2"},
		{"-workers", "-4"},
		{"-max-target", "-1"},
		{"-test-graphs", "-2"},
		{"-train-frac", "1.5"},
		{"-train-frac", "-0.2"},
		{"-timeout", "-10s"},
		{"-load-data", "a.json", "-save-data", "b.json"},
	}
	for _, args := range bad {
		if _, err := parse(t, args...); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestFromFlagsOverridesApply(t *testing.T) {
	cfg, err := parse(t, "-paper", "-graphs", "12", "-train-frac", "0.5",
		"-workers", "3", "-timeout", "90s", "-test-graphs", "0")
	if err != nil {
		t.Fatal(err)
	}
	s := cfg.Scale()
	if s.NumGraphs != 12 || s.TrainFrac != 0.5 || s.Workers != 3 || s.TestGraphs != 0 {
		t.Errorf("overrides not applied: %+v", s)
	}
	// -paper values survive where not overridden.
	if s.Starts != 20 || s.MaxDepth != 6 {
		t.Errorf("paper scale lost: %+v", s)
	}
	if cfg.Timeout != 90*time.Second {
		t.Errorf("timeout = %v", cfg.Timeout)
	}
	ctx, cancel := cfg.Context()
	defer cancel()
	if _, ok := ctx.Deadline(); !ok {
		t.Error("Context() has no deadline despite -timeout")
	}
}
