// Command qaoad is the QAOA-as-a-service daemon: an HTTP JSON API that
// accepts MaxCut instances and solves them with the naive or the
// ML-accelerated two-level flow on a bounded worker pool.
//
// Usage:
//
//	qaoad [flags]
//
// Endpoints:
//
//	POST   /v1/solve      submit an instance (wait=true blocks until done)
//	GET    /v1/jobs/{id}  poll a job
//	DELETE /v1/jobs/{id}  cancel a job
//	GET    /healthz       liveness + queue depth + registered models
//	GET    /metrics       telemetry snapshot (latency histograms, gauges)
//
// Pre-trained two-level predictors are loaded from -models (one
// core.Predictor JSON per model, name = file base) and hot-reloaded on
// SIGHUP without dropping in-flight jobs. -train bootstraps a "default"
// model at startup when the directory provides none. SIGINT/SIGTERM
// drain gracefully: accepted jobs finish (up to -drain-grace), new
// submissions get 503.
//
// Fleet mode (-role): "single" (default) serves and solves in one
// process; "worker" is the same but typically fronted by a
// coordinator; "coordinator" admits, dedups, journals and fans solves
// out to the -peers workers by consistent-hashed fingerprint, so each
// worker's result cache owns a shard of the key space. -wal journals
// accepted jobs and results to an fsync'd write-ahead log (any role):
// on restart, completed results re-seed the cache and incomplete jobs
// re-enqueue, so kill -9 loses no accepted work.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"qaoaml/internal/cluster"
	"qaoaml/internal/core"
	"qaoaml/internal/server"
	"qaoaml/internal/telemetry"
)

type daemonConfig struct {
	addr       string
	pprofAddr  string
	models     string
	drainGrace time.Duration

	train       bool
	trainGraphs int
	trainDepth  int
	trainSeed   int64

	role         string
	peers        string
	wal          string
	workerBudget int64

	srv server.Config
}

func registerFlags(fs *flag.FlagSet, c *daemonConfig) {
	fs.StringVar(&c.addr, "addr", ":8080", "listen address")
	fs.StringVar(&c.pprofAddr, "pprof", "", "debug listen address for /debug/pprof and /debug/vars (empty = disabled)")
	fs.StringVar(&c.models, "models", "", "directory of pre-trained predictor JSON files (SIGHUP reloads)")
	fs.DurationVar(&c.drainGrace, "drain-grace", 30*time.Second, "graceful-drain budget on SIGINT/SIGTERM")
	fs.BoolVar(&c.train, "train", false, "train a \"default\" model at startup if the registry has none")
	fs.IntVar(&c.trainGraphs, "train-graphs", 16, "dataset size for -train")
	fs.IntVar(&c.trainDepth, "train-depth", 5, "largest target depth for -train")
	fs.Int64Var(&c.trainSeed, "train-seed", 1, "dataset RNG seed for -train")
	fs.IntVar(&c.srv.Workers, "workers", 0, "solve worker pool size (0 = GOMAXPROCS)")
	fs.IntVar(&c.srv.QueueDepth, "queue", 0, "job queue bound; full queue returns 429 (0 = default 64)")
	fs.IntVar(&c.srv.CacheSize, "cache", 0, "LRU result cache entries (0 = default 256)")
	fs.IntVar(&c.srv.MaxJobs, "max-jobs", 0, "retained finished job records (0 = default 1024)")
	fs.DurationVar(&c.srv.DefaultTimeout, "job-timeout", 0, "default per-job deadline (0 = 60s)")
	fs.DurationVar(&c.srv.MaxTimeout, "max-timeout", 0, "cap on requested per-job deadlines (0 = 10m)")
	fs.IntVar(&c.srv.MaxNodes, "max-nodes", 0, "largest accepted instance (0 = default 20, hard cap 30)")
	fs.IntVar(&c.srv.MaxDepth, "max-depth", 0, "largest accepted circuit depth (0 = default 10)")
	fs.StringVar(&c.role, "role", "single", "fleet role: single, coordinator or worker")
	fs.StringVar(&c.peers, "peers", "", "comma-separated worker base URLs (coordinator role)")
	fs.StringVar(&c.wal, "wal", "", "write-ahead log path for durable job journaling (empty = no journal)")
	fs.Int64Var(&c.workerBudget, "worker-budget", 0, "per-worker in-flight cost cap for dispatch (0 = uncapped)")
}

func main() {
	var cfg daemonConfig
	registerFlags(flag.CommandLine, &cfg)
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "qaoad:", err)
		os.Exit(1)
	}
}

func run(cfg daemonConfig) error {
	logger := log.New(os.Stderr, "qaoad: ", log.LstdFlags)

	reg, err := server.NewRegistry(cfg.models)
	if err != nil {
		return err
	}
	if cfg.train {
		if _, ok := reg.Get("default"); !ok {
			if err := trainDefault(reg, cfg, logger); err != nil {
				return err
			}
		}
	}
	if names := reg.Names(); len(names) > 0 {
		logger.Printf("models: %v", names)
	} else {
		logger.Printf("no models registered: serving strategy \"naive\" only (use -models or -train)")
	}

	cfg.srv.Registry = reg
	if cfg.srv.Recorder == nil {
		cfg.srv.Recorder = telemetry.NewMemory()
	}

	// Fleet wiring. The WAL (any role) journals accepted jobs and
	// results; the dispatcher (coordinator role) fans solves out to the
	// -peers workers. Both plug into the server through its Journal and
	// Dispatcher config seams — nil means plain single-process serving.
	var recovery *cluster.Recovery
	if cfg.wal != "" {
		wal, rec, err := cluster.OpenWAL(cfg.wal)
		if err != nil {
			return err
		}
		defer wal.Close()
		cfg.srv.Journal = wal
		recovery = rec
		if rec.Torn {
			logger.Printf("wal %s: dropped a torn tail record (mid-write crash)", cfg.wal)
		}
	}
	switch cfg.role {
	case "single", "worker":
		if cfg.peers != "" {
			return fmt.Errorf("-peers is only meaningful with -role=coordinator")
		}
	case "coordinator":
		disp, err := cluster.NewDispatcher(cluster.DispatcherConfig{
			Workers:      splitPeers(cfg.peers),
			WorkerBudget: cfg.workerBudget,
			Recorder:     cfg.srv.Recorder,
		})
		if err != nil {
			return err
		}
		defer disp.Close()
		cfg.srv.Dispatcher = disp
		logger.Printf("coordinator: dispatching to %d workers", len(splitPeers(cfg.peers)))
	default:
		return fmt.Errorf("unknown -role %q (single, coordinator or worker)", cfg.role)
	}

	s := server.New(cfg.srv)

	if recovery != nil && (len(recovery.Completed) > 0 || len(recovery.Incomplete) > 0) {
		for _, c := range recovery.Completed {
			s.SeedCache(c.Key, c.Result)
		}
		requeued := 0
		for _, in := range recovery.Incomplete {
			if _, err := s.Resubmit(in.Req); err != nil {
				logger.Printf("wal recovery: re-enqueueing %s: %v", in.Key, err)
				continue
			}
			requeued++
		}
		logger.Printf("wal recovery: %d results re-cached, %d/%d incomplete jobs re-enqueued",
			len(recovery.Completed), requeued, len(recovery.Incomplete))
	}

	// SIGHUP hot-reloads the model directory for the daemon's lifetime.
	hupCtx, hupCancel := context.WithCancel(context.Background())
	defer hupCancel()
	reg.WatchHUP(hupCtx, func(err error) {
		logger.Printf("model reload failed (previous set still serving): %v", err)
	})

	// The debug mux is opt-in and on its own listener, so profiling
	// endpoints are never reachable through the public API address.
	// /debug/vars serves expvar, including a live snapshot of the
	// server's telemetry sink (the same data as /metrics, plus the
	// runtime's memstats); /debug/pprof serves the standard profiles.
	if cfg.pprofAddr != "" {
		s.Metrics().PublishExpvar("qaoad")
		dbg := http.NewServeMux()
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dbg.Handle("/debug/vars", expvar.Handler())
		go func() {
			logger.Printf("debug endpoints on %s (/debug/pprof, /debug/vars)", cfg.pprofAddr)
			if err := http.ListenAndServe(cfg.pprofAddr, dbg); err != nil {
				logger.Printf("debug listener: %v", err)
			}
		}()
	}

	httpSrv := &http.Server{Addr: cfg.addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s", cfg.addr)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		s.Close()
		return err
	case sig := <-sigc:
		logger.Printf("%s: draining (grace %v)", sig, cfg.drainGrace)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.drainGrace)
	defer cancel()
	// Stop accepting connections first, then let queued and running jobs
	// finish inside the grace budget.
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("http shutdown: %v", err)
	}
	if err := s.Drain(drainCtx); err != nil {
		logger.Printf("drain expired: outstanding jobs cancelled (%v)", err)
	} else {
		logger.Printf("drained cleanly")
	}
	return nil
}

// splitPeers parses the -peers roster.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// trainDefault generates a small dataset and trains the "default"
// two-level predictor in-process — the zero-setup path for trying the
// daemon without a model directory.
func trainDefault(reg *server.Registry, cfg daemonConfig, logger *log.Logger) error {
	start := time.Now()
	logger.Printf("training default model: %d graphs × depths 1..%d (seed %d)...",
		cfg.trainGraphs, cfg.trainDepth, cfg.trainSeed)
	data, err := core.Generate(core.DataGenConfig{
		NumGraphs: cfg.trainGraphs, Nodes: 8, EdgeProb: 0.5,
		MaxDepth: cfg.trainDepth, Starts: 2, Tol: 1e-6,
		Seed: cfg.trainSeed, Workers: cfg.srv.Workers,
	})
	if err != nil {
		return fmt.Errorf("training dataset: %w", err)
	}
	train, _ := data.SplitIndices(0.8, cfg.trainSeed)
	pred := core.NewPredictor(nil)
	if err := pred.Train(data, train); err != nil {
		return fmt.Errorf("training default model: %w", err)
	}
	reg.Register("default", pred)
	logger.Printf("default model ready in %v (target depths %v)",
		time.Since(start).Round(time.Millisecond), pred.TargetDepths())
	return nil
}
