// Command qaoabench runs the QAOA evaluation-engine benchmark suite and
// writes the results as JSON (BENCH_qaoa.json by default).
//
// Micro benchmarks cover the optimizer hot path (one −⟨C⟩ evaluation at
// depths 1/3/5 through the zero-allocation workspace engine), the
// explicit gate-level circuit it replaces, batch-evaluator throughput,
// measurement sampling and the finite-difference gradient. Two
// wall-clock benchmarks time end-to-end dataset generation and the
// Table I experiment, reporting objective evaluations per second.
//
// The large-register suite (expectation/n16..n30, grad/n20-p3,
// grad/n28-p1) streams the cost Hamiltonian from the edge list (no 2^n
// tables) and is recorded once per -cpu GOMAXPROCS setting, so scaling
// across worker counts is visible in one file: entries measured above
// one worker carry speedup_vs_serial and parallel_efficiency columns
// computed against the matching serial entry. Registers at or above
// the qaoa.ShardThreshold run over the sharded state layout (the
// shards column records the count) and every large-n entry reports
// peak_bytes, the live amplitude storage its workspace held. The problem-family suite
// (ising/n20, maxksat/n20) times the generalized diagonal-Hamiltonian
// streaming kernel — linear terms and Rosenberg auxiliaries included —
// at the same register size and -cpu settings.
//
//	qaoabench                    # full suite → BENCH_qaoa.json
//	qaoabench -quick             # skip the wall-clock experiments
//	qaoabench -out -             # JSON to stdout
//	qaoabench -cpu 1,2,8         # record the large-n suite at each GOMAXPROCS
//	qaoabench -bench 'n2[02]'    # only entries matching the regex
//	qaoabench -cpuprofile cpu.pb # write a CPU profile of the run
//	qaoabench -metrics m.json    # also dump telemetry (FC/latency histograms)
//	qaoabench -timeout 30s       # bound the wall-clock experiments
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"regexp"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"testing"
	"time"

	"qaoaml/internal/core"
	"qaoaml/internal/experiments"
	"qaoaml/internal/graph"
	"qaoaml/internal/optimize"
	"qaoaml/internal/problem"
	"qaoaml/internal/qaoa"
	"qaoaml/internal/quantum"
	"qaoaml/internal/telemetry"
)

// Entry is one benchmark result in the emitted JSON.
type Entry struct {
	Name        string  `json:"name"`
	GOMAXPROCS  int     `json:"gomaxprocs,omitempty"` // workers the entry ran at
	N           int     `json:"n"`                    // iterations timed
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Seconds     float64 `json:"seconds,omitempty"` // wall-clock benches
	NFev        int     `json:"nfev,omitempty"`    // objective evaluations
	NGev        int     `json:"ngev,omitempty"`    // analytic gradient evaluations
	EvalsPerSec float64 `json:"evals_per_sec,omitempty"`
	FinalF      float64 `json:"final_f,omitempty"` // converged objective (e2e benches)
	// Shards is the state-vector shard count the entry ran over (absent
	// = flat layout); PeakBytes is the live amplitude storage the
	// workspace held — the AmpBytesAllocated delta across workspace
	// construction and the first (buffer-allocating) evaluation.
	Shards    int   `json:"shards,omitempty"`
	PeakBytes int64 `json:"peak_bytes,omitempty"`
	// SpeedupVsSerial and ParallelEfficiency are derived after the
	// merge for entries measured above one worker, against the entry
	// with the same name at GOMAXPROCS 1 (speedup = serial ns / this
	// ns; efficiency = speedup / workers).
	SpeedupVsSerial    float64 `json:"speedup_vs_serial,omitempty"`
	ParallelEfficiency float64 `json:"parallel_efficiency,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	Package    string `json:"package"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Timestamp  string `json:"timestamp"`
	// History holds the timestamps of prior runs merged into this file,
	// newest first, capped at maxHistory.
	History []string `json:"history,omitempty"`
	Entries []Entry  `json:"entries"`
}

// maxHistory caps how many prior-run timestamps a report accumulates.
const maxHistory = 10

func main() {
	var (
		out        = flag.String("out", "BENCH_qaoa.json", "output file ('-' = stdout)")
		quick      = flag.Bool("quick", false, "micro benchmarks only (skip wall-clock experiments)")
		timeout    = flag.Duration("timeout", 0, "deadline for the wall-clock experiments (0 = none)")
		workers    = flag.Int("workers", 0, "datagen parallelism in wall-clock experiments (0 = GOMAXPROCS)")
		metrics    = flag.String("metrics", "", "write collected telemetry (FC/latency histograms, spans) as JSON to this file")
		cpuList    = flag.String("cpu", "", "comma-separated GOMAXPROCS values for the large-n suite (default: current)")
		benchPat   = flag.String("bench", "", "only run entries whose name matches this regexp")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile (post-GC) to this file on exit")
	)
	flag.Parse()
	if *timeout < 0 || *workers < 0 {
		fatal(fmt.Errorf("-timeout and -workers must be non-negative"))
	}
	if *benchPat != "" {
		re, err := regexp.Compile(*benchPat)
		if err != nil {
			fatal(fmt.Errorf("bad -bench pattern: %w", err))
		}
		benchRE = re
	}
	cpus := parseCPUs(*cpuList) // validate before any benchmark runs
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Fprintf(os.Stderr, "wrote %s (cpu profile)\n", *cpuProfile)
		}()
	}
	if *memProfile != "" {
		defer writeMemProfile(*memProfile)
	}

	var mem *telemetry.Memory
	var rec telemetry.Recorder // stays untyped-nil when -metrics is off
	if *metrics != "" {
		mem = telemetry.NewMemory()
		rec = mem
	}

	rep := Report{
		Package:    "qaoaml",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}

	rng := rand.New(rand.NewSource(7))
	pb, err := qaoa.NewProblem(graph.ErdosRenyiConnected(8, 0.5, rng))
	if err != nil {
		fatal(err)
	}

	for _, depth := range []int{1, 3, 5} {
		depth := depth
		name := fmt.Sprintf("expectation/p%d", depth)
		ev := qaoa.NewEvaluator(pb, depth)
		x := core.ParamBounds(depth).Random(rng)
		if !benchMatch(name) {
			continue
		}
		_ = ev.NegExpectation(x) // warm the workspace
		rep.add(name, bench(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = ev.NegExpectation(x)
			}
		}))
	}

	// The explicit CNOT·RZ·CNOT + per-qubit RX circuit the engine
	// replaces, at depth 3 — the speedup baseline.
	if benchMatch("expectation/p3-gate-circuit") {
		prGate := qaoa.Params{Gamma: []float64{0.4, 0.7, 0.9}, Beta: []float64{0.5, 0.3, 0.2}}
		rep.add("expectation/p3-gate-circuit", bench(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st := pb.BuildCircuit(prGate).Simulate()
				_ = st.ExpectationDiagonal(pb.CutTable)
			}
		}))
	}

	// Batch throughput on a gradient-stencil-sized batch.
	be := qaoa.NewBatchEvaluator(pb, 3, 0)
	points := make([][]float64, 12)
	for i := range points {
		points[i] = core.ParamBounds(3).Random(rng)
	}
	if benchMatch("batch/12pt-p3") {
		e := bench(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = be.EvalBatch(points)
			}
		})
		e.EvalsPerSec = float64(len(points)) / (e.NsPerOp * 1e-9)
		rep.add("batch/12pt-p3", e)
	}

	// Measurement sampling (CDF + binary search).
	if benchMatch("samplecounts/1024shots") {
		st := pb.State(qaoa.Params{Gamma: []float64{0.4, 0.7}, Beta: []float64{0.5, 0.3}})
		srng := rand.New(rand.NewSource(19))
		rep.add("samplecounts/1024shots", bench(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = st.SampleCounts(1024, srng)
			}
		}))
	}

	// Finite-difference gradient through the reusable workspace.
	gx := core.ParamBounds(3).Random(rng)
	if benchMatch("gradient/central-p3") {
		gev := qaoa.NewEvaluator(pb, 3)
		gfx := gev.NegExpectation(gx)
		ws := optimize.NewGradientWorkspace(len(gx))
		dst := make([]float64, len(gx))
		rep.add("gradient/central-p3", bench(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = ws.Gradient(dst, gev.NegExpectation, gx, gfx, core.ParamBounds(3), optimize.CentralDiff, 1e-6)
			}
		}))
	}

	// Adjoint-mode value+gradient: one reverse sweep replaces the whole
	// 4p-evaluation central-difference stencil above.
	for _, depth := range []int{1, 2, 3, 4, 5} {
		name := fmt.Sprintf("grad/p%d", depth)
		ax := core.ParamBounds(depth).Random(rng)
		if !benchMatch(name) {
			continue
		}
		aev := qaoa.NewEvaluator(pb, depth)
		agrad := make([]float64, len(ax))
		_ = aev.NegValueGrad(ax, agrad) // warm the workspace + adjoint buffer
		rep.add(name, bench(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = aev.NegValueGrad(ax, agrad)
			}
		}))
	}

	// Large-register streaming suite: depth-1 expectation at n=16/20/22
	// and the adjoint value+gradient at n=20 p=3, every problem in
	// streaming mode (no 2^n cost table — the kernel walks the edge
	// list). Recorded once per -cpu GOMAXPROCS setting so kernel scaling
	// across worker counts lands in one file; the merge key includes the
	// worker count, so matrix runs accumulate instead of clobbering.
	largeProblems := map[int]*qaoa.Problem{}
	largeProblem := func(n int) *qaoa.Problem {
		if lp, ok := largeProblems[n]; ok {
			return lp
		}
		prng := rand.New(rand.NewSource(int64(40 + n)))
		lp, err := qaoa.NewProblem(graph.RandomRegular(n, 3, prng))
		if err != nil {
			fatal(err)
		}
		if lp.CutTable != nil {
			fatal(fmt.Errorf("n=%d problem materialized a 2^n cut table; expected streaming mode", n))
		}
		largeProblems[n] = lp
		return lp
	}
	// Problem-family streaming suite at the same register size: a ±J
	// spin glass with on-site fields (ising/n20) and a weighted
	// Max-3-SAT formula whose Rosenberg auxiliaries pad 14 decision
	// variables to a 20-qubit register (maxksat/n20). Both run the
	// generalized diagonal-Hamiltonian kernel in streaming mode — linear
	// terms exercise the cross-term CSR path MaxCut never touches.
	familyProblems := map[string]*qaoa.Problem{}
	familyProblem := func(name string) *qaoa.Problem {
		if fp, ok := familyProblems[name]; ok {
			return fp
		}
		var fp *qaoa.Problem
		var err error
		switch name {
		case "ising/n20":
			fp, err = qaoa.NewIsing(problem.RandomIsing(20, rand.New(rand.NewSource(61))))
		case "maxksat/n20":
			f := problem.RandomMaxKSAT(14, 6, 3, rand.New(rand.NewSource(62)))
			fp, err = qaoa.New(problem.MaxKSAT(f))
		}
		if err != nil {
			fatal(err)
		}
		if fp.NumQubits() != 20 {
			fatal(fmt.Errorf("%s built a %d-qubit register; expected 20", name, fp.NumQubits()))
		}
		familyProblems[name] = fp
		return fp
	}
	prevProcs := runtime.GOMAXPROCS(0)
	for _, nc := range cpus {
		runtime.GOMAXPROCS(nc)
		for _, n := range []int{16, 20, 22, 24, 26, 28, 30} {
			name := fmt.Sprintf("expectation/n%d", n)
			if !benchMatch(name) {
				continue
			}
			base := quantum.AmpBytesAllocated()
			ws := largeProblem(n).NewWorkspace() // sharded above ShardThreshold
			x := []float64{0.4, 0.3}
			_ = ws.ExpectationVec(x) // warm the 2^n workspace
			e := bench(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_ = ws.ExpectationVec(x)
				}
			})
			e.Shards = ws.Shards()
			e.PeakBytes = quantum.AmpBytesAllocated() - base
			rep.add(name, e)
			ws.Close()
		}
		// Adjoint value+gradient: the n=20 p=3 flat sweep and the n=28
		// depth-1 sweep over the sharded layout (two shard sets live: the
		// state and its adjoint).
		gradEntry := func(name string, n int, x []float64) {
			if !benchMatch(name) {
				return
			}
			base := quantum.AmpBytesAllocated()
			ws := largeProblem(n).NewWorkspace()
			grad := make([]float64, len(x))
			_ = ws.ValueGrad(x, grad) // warm, allocates the adjoint buffer
			e := bench(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_ = ws.ValueGrad(x, grad)
				}
			})
			e.Shards = ws.Shards()
			e.PeakBytes = quantum.AmpBytesAllocated() - base
			rep.add(name, e)
			ws.Close()
		}
		gradEntry("grad/n20-p3", 20, []float64{0.4, 0.7, 0.9, 0.5, 0.3, 0.2})
		gradEntry("grad/n28-p1", 28, []float64{0.4, 0.3})
		for _, name := range []string{"ising/n20", "maxksat/n20"} {
			if !benchMatch(name) {
				continue
			}
			ev := qaoa.NewEvaluator(familyProblem(name), 1)
			x := []float64{0.4, 0.3}
			_ = ev.NegExpectation(x)
			rep.add(name, bench(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_ = ev.NegExpectation(x)
				}
			}))
		}
	}
	runtime.GOMAXPROCS(prevProcs)

	// End-to-end L-BFGS-B at depth 5 from one fixed start: the adjoint
	// path must reach the same optimum (⟨C⟩ within 1e-6) in a fraction
	// of the finite-difference wall clock. The two runs share the
	// agreement check, so filtering either one in runs both optimizers.
	if benchMatch("e2e/lbfgsb-fd-p5") || benchMatch("e2e/lbfgsb-adjoint-p5") {
		rep.e2e(pb, rng)
	}

	if !*quick {
		rep.wallclocks(*timeout, *workers, rec)
	}

	if *out != "-" {
		rep.merge(*out)
	}
	rep.annotateScaling()
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	blob = append(blob, '\n')
	if *out == "-" {
		os.Stdout.Write(blob)
	} else {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d benchmarks)\n", *out, len(rep.Entries))
	}

	if mem != nil {
		f, err := os.Create(*metrics)
		if err != nil {
			fatal(err)
		}
		if err := mem.WriteJSON(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (telemetry snapshot)\n", *metrics)
	}
}

// e2e runs the paired finite-difference / adjoint L-BFGS-B benchmark.
func (r *Report) e2e(pb *qaoa.Problem, rng *rand.Rand) {
	b5 := core.ParamBounds(5)
	x05 := b5.Random(rng)
	evFD := qaoa.NewEvaluator(pb, 5)
	beFD := qaoa.NewBatchEvaluator(pb, 5, 0)
	evAD := qaoa.NewEvaluator(pb, 5)
	// Tol well below the 1e-6 agreement bar so both paths grind into the
	// same optimum rather than stopping wherever the relative f-change
	// first dips under the default tolerance.
	lb := &optimize.LBFGSB{Tol: 1e-12}
	runFD := func() optimize.Result {
		return optimize.Run(context.Background(),
			optimize.Problem{F: evFD.NegExpectation, Batch: beFD.EvalBatch, X0: x05, Bounds: b5},
			optimize.Options{Optimizer: lb})
	}
	runAD := func() optimize.Result {
		return optimize.Run(context.Background(),
			optimize.Problem{F: evAD.NegExpectation, Grad: evAD.NegGrad, X0: x05, Bounds: b5},
			optimize.Options{Optimizer: lb})
	}
	rFD, rAD := runFD(), runAD()
	if diff := math.Abs(rFD.F - rAD.F); diff > 1e-6 {
		fatal(fmt.Errorf("adjoint optimum %.9f disagrees with FD optimum %.9f (|Δ| = %.3g)", -rAD.F, -rFD.F, diff))
	}
	eFD := bench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = runFD()
		}
	})
	eFD.NFev, eFD.FinalF = rFD.NFev, rFD.F
	eFD.EvalsPerSec = float64(eFD.NFev) / (eFD.NsPerOp * 1e-9)
	if benchMatch("e2e/lbfgsb-fd-p5") {
		r.add("e2e/lbfgsb-fd-p5", eFD)
	}
	eAD := bench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = runAD()
		}
	})
	eAD.NFev, eAD.NGev, eAD.FinalF = rAD.NFev, rAD.NGev, rAD.F
	eAD.EvalsPerSec = float64(eAD.NFev) / (eAD.NsPerOp * 1e-9)
	if benchMatch("e2e/lbfgsb-adjoint-p5") {
		r.add("e2e/lbfgsb-adjoint-p5", eAD)
	}
}

// wallclocks runs the end-to-end dataset-generation and Table I
// experiments once (never per -cpu setting — they manage their own
// worker pools).
func (r *Report) wallclocks(timeout time.Duration, workers int, rec telemetry.Recorder) {
	// The -timeout clock starts here so the micro benchmarks above
	// can't eat the wall-clock experiments' budget.
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	// The wall-clock experiments run under ctx and feed the telemetry
	// sink: the per-depth datagen.fc.p* histograms, the optimize.run_ms
	// latency histogram and the datagen.generate span all land in the
	// -metrics dump. A -timeout deadline cuts them short (within one
	// optimizer step) and keeps whatever was measured.
	if benchMatch("wallclock/datagen") {
		r.add("wallclock/datagen", wallclock(func() int {
			cfg := core.DataGenConfig{
				NumGraphs: 8, Nodes: 8, EdgeProb: 0.5,
				MaxDepth: 3, Starts: 4, Tol: 1e-6, Seed: 2,
				Workers: workers, Recorder: rec,
			}
			data, err := core.GenerateCtx(ctx, cfg)
			if err != nil && !errors.Is(err, context.DeadlineExceeded) {
				fatal(err)
			}
			nfev := 0
			for _, recs := range data.Records {
				for _, r := range recs {
					nfev += r.NFev
				}
			}
			return nfev
		}))
	}

	if !benchMatch("wallclock/table1") {
		return
	}
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "qaoabench: timeout reached, skipping wallclock/table1")
		return
	}
	r.add("wallclock/table1", wallclock(func() int {
		env, err := experiments.NewEnvCtx(ctx, experiments.Scale{
			NumGraphs: 16, Nodes: 8, EdgeProb: 0.5,
			MaxDepth: 3, Starts: 4, TrainFrac: 0.4,
			Reps: 1, TestGraphs: 4, MaxTarget: 3,
			Workers: workers, Seed: 1,
		}, rec)
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				fmt.Fprintln(os.Stderr, "qaoabench: timeout reached during table1 dataset")
				return 0
			}
			fatal(err)
		}
		res := experiments.RunTable1(env)
		nfev := 0
		for _, row := range res.Rows {
			nfev += int(row.NaiveMeanFC) + int(row.TwoMeanFC)
		}
		return nfev
	}))
}

// bench runs fn under the standard benchmark harness and converts the
// result to an Entry.
func bench(fn func(b *testing.B)) Entry {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	})
	return Entry{
		N:           r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// wallclock times fn once; fn returns the objective-evaluation count so
// the entry can report evaluations per second.
func wallclock(fn func() int) Entry {
	start := time.Now()
	nfev := fn()
	secs := time.Since(start).Seconds()
	e := Entry{N: 1, Seconds: secs, NFev: nfev, NsPerOp: secs * 1e9}
	if secs > 0 {
		e.EvalsPerSec = float64(nfev) / secs
	}
	return e
}

// merge folds a previous report at path into r so partial runs (e.g.
// -quick or a -cpu subset) no longer clobber results they did not
// re-measure: entries are keyed by (name, gomaxprocs) with this run
// winning, entries only the old file has are kept, and the old
// timestamp joins History (newest first, capped at maxHistory).
// Entries written before the per-entry GOMAXPROCS field inherit the
// old file-level value, so a -cpu matrix run composes with legacy
// files. A missing or unreadable file is a first run; a corrupt one
// is overwritten.
func (r *Report) merge(path string) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return
	}
	var old Report
	if json.Unmarshal(blob, &old) != nil {
		return
	}
	key := func(e Entry, fileProcs int) string {
		procs := e.GOMAXPROCS
		if procs == 0 {
			procs = fileProcs
		}
		return e.Name + "@" + strconv.Itoa(procs)
	}
	fresh := make(map[string]bool, len(r.Entries))
	for _, e := range r.Entries {
		fresh[key(e, r.GOMAXPROCS)] = true
	}
	kept := 0
	for _, e := range old.Entries {
		if !fresh[key(e, old.GOMAXPROCS)] {
			if e.GOMAXPROCS == 0 {
				e.GOMAXPROCS = old.GOMAXPROCS
			}
			r.Entries = append(r.Entries, e)
			kept++
		}
	}
	if old.Timestamp != "" {
		r.History = append(r.History, old.Timestamp)
	}
	r.History = append(r.History, old.History...)
	if len(r.History) > maxHistory {
		r.History = r.History[:maxHistory]
	}
	if kept > 0 {
		fmt.Fprintf(os.Stderr, "merged %d prior entries from %s\n", kept, path)
	}
}

// annotateScaling fills SpeedupVsSerial and ParallelEfficiency on every
// entry measured above one worker whose name also has a GOMAXPROCS-1
// entry in the (merged) report. Running after the merge lets a partial
// -cpu run anchor against serial numbers recorded by an earlier run.
func (r *Report) annotateScaling() {
	serial := make(map[string]float64, len(r.Entries))
	for _, e := range r.Entries {
		if e.GOMAXPROCS == 1 && e.NsPerOp > 0 {
			serial[e.Name] = e.NsPerOp
		}
	}
	for i := range r.Entries {
		e := &r.Entries[i]
		if e.GOMAXPROCS <= 1 || e.NsPerOp <= 0 {
			e.SpeedupVsSerial, e.ParallelEfficiency = 0, 0
			continue
		}
		base, ok := serial[e.Name]
		if !ok {
			e.SpeedupVsSerial, e.ParallelEfficiency = 0, 0
			continue
		}
		e.SpeedupVsSerial = base / e.NsPerOp
		e.ParallelEfficiency = e.SpeedupVsSerial / float64(e.GOMAXPROCS)
	}
}

// add records the entry — stamped with the GOMAXPROCS it ran at — and
// prints a progress line to stderr (stdout is reserved for the JSON
// document when -out is '-').
func (r *Report) add(name string, e Entry) {
	e.Name = name
	e.GOMAXPROCS = runtime.GOMAXPROCS(0)
	r.Entries = append(r.Entries, e)
	switch {
	case e.NFev > 0:
		fmt.Fprintf(os.Stderr, "%-28s %12.0f ns/op  %8d nfev  %10.0f evals/s\n", name, e.NsPerOp, e.NFev, e.EvalsPerSec)
	case e.Shards > 1:
		fmt.Fprintf(os.Stderr, "%-28s %12.0f ns/op  %4d allocs/op  [%d cpu, %d shards]\n", name, e.NsPerOp, e.AllocsPerOp, e.GOMAXPROCS, e.Shards)
	default:
		fmt.Fprintf(os.Stderr, "%-28s %12.0f ns/op  %4d allocs/op  [%d cpu]\n", name, e.NsPerOp, e.AllocsPerOp, e.GOMAXPROCS)
	}
}

// benchRE filters which entries run; nil (no -bench flag) matches all.
var benchRE *regexp.Regexp

func benchMatch(name string) bool {
	return benchRE == nil || benchRE.MatchString(name)
}

// parseCPUs parses the -cpu list ("1,2,8"); an empty flag means the
// current GOMAXPROCS only, mirroring `go test -cpu`.
func parseCPUs(s string) []int {
	if strings.TrimSpace(s) == "" {
		return []int{runtime.GOMAXPROCS(0)}
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 1 {
			fatal(fmt.Errorf("bad -cpu value %q (want positive integers, e.g. -cpu 1,2,8)", f))
		}
		out = append(out, v)
	}
	return out
}

// writeMemProfile dumps a post-GC heap profile, the right view for
// checking the large-n memory budget (live state vectors, no 2^n cost
// tables).
func writeMemProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (heap profile)\n", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qaoabench:", err)
	os.Exit(1)
}
