// Command qaoaload is the synthetic traffic generator for qaoad: it
// drives a live server (or a self-hosted one) with a seeded, mixed
// workload at a fixed open-loop arrival rate and writes the measured
// serving numbers — throughput, latency percentiles, cache hit rate,
// workspace-reuse rate — as JSON (BENCH_server.json by default),
// merging prior runs the way qaoabench does.
//
// The arrival process is open-loop: requests are launched on a fixed
// tick regardless of how many are still outstanding, so a server that
// cannot keep up shows up as rising latency and 429s instead of the
// generator politely slowing down — the failure mode a fleet actually
// has under heavy traffic.
//
//	qaoaload                              # self-hosted server, defaults
//	qaoaload -rate 50 -duration 10s       # 50 req/s for 10 s
//	qaoaload -batch 8                     # POST /v1/solve/batch, 8 items per request
//	qaoaload -addr http://host:8080       # drive a remote qaoad
//	qaoaload -check BENCH_server.json     # validate a report's schema and exit
//
// The workload is a seeded pool of -instances requests cycling through
// -families × -sizes × -depths; the pool repeats, so steady-state
// traffic mixes cold solves, result-cache hits and single-flight
// coalescing exactly as repeated production traffic would.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"qaoaml/internal/cluster"
	"qaoaml/internal/core"
	"qaoaml/internal/graph"
	"qaoaml/internal/server"
)

// Entry is one load-test result in the emitted JSON.
type Entry struct {
	Name       string  `json:"name"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	DurationS  float64 `json:"duration_s"`
	OfferedRPS float64 `json:"offered_rps"`
	BatchSize  int     `json:"batch_size,omitempty"`

	Requests  int64 `json:"requests"`         // HTTP requests sent
	Items     int64 `json:"items"`            // solve specs sent (= Requests unless batching)
	Done      int64 `json:"done"`             // items that reached state done
	Cached    int64 `json:"cached"`           // … of which served from the result cache
	Coalesced int64 `json:"coalesced"`        // … of which attached to an identical in-flight job
	Deduped   int64 `json:"deduped,omitempty"` // batch items collapsed intra-batch
	Rejected  int64 `json:"rejected,omitempty"` // 429s (queue full / cost budget)
	Failed    int64 `json:"failed,omitempty"`   // transport errors, 5xx, failed/cancelled jobs

	ThroughputRPS float64 `json:"throughput_rps"` // completed items per second
	P50Ms         float64 `json:"p50_ms"`
	P90Ms         float64 `json:"p90_ms"`
	P99Ms         float64 `json:"p99_ms"`

	// CacheHitRate is hits/(hits+misses) over the run (server counters,
	// so coalesced requests count as misses); WorkspaceReuseRate is
	// arena hits/gets — the fraction of state-vector buffer requests
	// served without allocating.
	CacheHitRate       float64 `json:"cache_hit_rate"`
	WorkspaceReuseRate float64 `json:"workspace_reuse_rate"`
	FevTotal           int64   `json:"fev_total,omitempty"` // optimizer objective calls spent

	// SSE sampling (-sse): a fraction of requests are submitted
	// wait=false and followed over GET /v1/jobs/{id}/events instead of
	// blocking on the response. TimeToFirstEvent is the mean delay from
	// submission to the first streamed event (how quickly progress
	// becomes visible); EventsPerSec is streamed events over summed
	// stream lifetime.
	SSESampled            int64   `json:"sse_sampled,omitempty"`
	SSETimeToFirstEventMs float64 `json:"sse_ttfe_ms,omitempty"`
	SSEEventsPerSec       float64 `json:"sse_events_per_sec,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	Package    string   `json:"package"`
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Timestamp  string   `json:"timestamp"`
	History    []string `json:"history,omitempty"`
	Entries    []Entry  `json:"entries"`
}

// maxHistory caps how many prior-run timestamps a report accumulates.
const maxHistory = 10

func main() {
	var (
		addr      = flag.String("addr", "", "base URL of a running qaoad (empty = self-host an in-process server)")
		rate      = flag.Float64("rate", 20, "open-loop arrival rate, requests per second")
		duration  = flag.Duration("duration", 5*time.Second, "how long to offer load")
		seed      = flag.Int64("seed", 1, "workload RNG seed (instances and request order are deterministic)")
		instances = flag.Int("instances", 16, "distinct instances in the request pool (traffic cycles through it)")
		families  = flag.String("families", "maxcut,partition,maxksat", "comma-separated problem families to mix")
		sizes     = flag.String("sizes", "8", "comma-separated instance sizes (qubits)")
		depths    = flag.String("depths", "2", "comma-separated circuit depths")
		strategy  = flag.String("strategy", "naive", "solve strategy: naive or two-level")
		optimizer = flag.String("optimizer", "lbfgsb", "optimizer name passed through to the server")
		batch     = flag.Int("batch", 0, "items per POST /v1/solve/batch request (0 = individual /v1/solve)")
		sse       = flag.Float64("sse", 0, "fraction of solve requests to follow via the SSE event stream (0 = off; incompatible with -batch)")
		name      = flag.String("name", "", "entry name (default derived from the workload)")
		out       = flag.String("out", "BENCH_server.json", "output file ('-' = stdout)")
		check     = flag.String("check", "", "validate an existing report file and exit")
		workers   = flag.Int("workers", 0, "self-hosted server worker pool (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 0, "self-hosted server queue depth (0 = default)")
	)
	flag.Parse()
	if *check != "" {
		if err := checkReport(*check); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "qaoaload: %s ok\n", *check)
		return
	}
	if *rate <= 0 || *duration <= 0 || *instances < 1 || *batch < 0 {
		fatal(fmt.Errorf("-rate and -duration must be positive, -instances >= 1, -batch >= 0"))
	}
	if *sse < 0 || *sse > 1 {
		fatal(fmt.Errorf("-sse must be in [0, 1]"))
	}
	if *sse > 0 && *batch > 0 {
		fatal(fmt.Errorf("-sse samples individual solves; drop -batch"))
	}
	sseEvery := 0 // sample every Nth request
	if *sse > 0 {
		sseEvery = int(1/(*sse) + 0.5)
		if sseEvery < 1 {
			sseEvery = 1
		}
	}

	pool, err := buildPool(workload{
		families: splitList(*families), sizes: splitInts(*sizes), depths: splitInts(*depths),
		instances: *instances, seed: *seed, strategy: *strategy, optimizer: *optimizer,
	})
	if err != nil {
		fatal(err)
	}

	base := strings.TrimRight(*addr, "/")
	var shutdown func()
	if base == "" {
		base, shutdown, err = selfHost(server.Config{Workers: *workers, QueueDepth: *queue}, *strategy)
		if err != nil {
			fatal(err)
		}
		defer shutdown()
	}

	before, err := scrapeCounters(base)
	if err != nil {
		fatal(fmt.Errorf("scraping /metrics: %w (is the server up?)", err))
	}

	e := offerLoad(base, pool, *rate, *duration, *batch, sseEvery)

	after, err := scrapeCounters(base)
	if err != nil {
		fatal(fmt.Errorf("scraping /metrics after the run: %w", err))
	}
	hits := after["server.cache.hits"] - before["server.cache.hits"]
	misses := after["server.cache.misses"] - before["server.cache.misses"]
	if hits+misses > 0 {
		e.CacheHitRate = float64(hits) / float64(hits+misses)
	}
	gets := after["server.arena.gets"] - before["server.arena.gets"]
	ahits := after["server.arena.hits"] - before["server.arena.hits"]
	if gets > 0 {
		e.WorkspaceReuseRate = float64(ahits) / float64(gets)
	}
	e.FevTotal = after["optimize.fev_total"] - before["optimize.fev_total"]

	e.Name = *name
	if e.Name == "" {
		e.Name = deriveName(*families, *strategy, *rate, *batch)
	}
	e.GOMAXPROCS = runtime.GOMAXPROCS(0)
	e.OfferedRPS = *rate
	e.BatchSize = *batch

	fmt.Fprintf(os.Stderr, "%-32s %8.1f items/s  p50 %.1fms  p99 %.1fms  cache %.0f%%  reuse %.0f%%  (%d items, %d rejected, %d failed)\n",
		e.Name, e.ThroughputRPS, e.P50Ms, e.P99Ms, 100*e.CacheHitRate, 100*e.WorkspaceReuseRate, e.Items, e.Rejected, e.Failed)
	if e.SSESampled > 0 {
		fmt.Fprintf(os.Stderr, "%-32s %8d streams   ttfe %.1fms  %.1f events/s\n",
			"  sse", e.SSESampled, e.SSETimeToFirstEventMs, e.SSEEventsPerSec)
	}

	rep := Report{
		Package:    "qaoaml",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Entries:    []Entry{e},
	}
	if *out == "-" {
		rep.write(os.Stdout)
		return
	}
	rep.merge(*out)
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	rep.write(f)
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d entries)\n", *out, len(rep.Entries))
}

// workload describes the request mix.
type workload struct {
	families  []string
	sizes     []int
	depths    []int
	instances int
	seed      int64
	strategy  string
	optimizer string
}

// buildPool generates the seeded request pool, cycling family × size ×
// depth across instances. Every request is Wait=true: the generator
// measures end-to-end solve latency, not enqueue latency.
func buildPool(w workload) ([]server.SolveRequest, error) {
	if len(w.families) == 0 || len(w.sizes) == 0 || len(w.depths) == 0 {
		return nil, fmt.Errorf("need at least one family, size and depth")
	}
	rng := rand.New(rand.NewSource(w.seed))
	pool := make([]server.SolveRequest, 0, w.instances)
	for i := 0; i < w.instances; i++ {
		fam := w.families[i%len(w.families)]
		n := w.sizes[(i/len(w.families))%len(w.sizes)]
		req := server.SolveRequest{
			Problem:   fam,
			Depth:     w.depths[i%len(w.depths)],
			Strategy:  w.strategy,
			Optimizer: w.optimizer,
			Seed:      int64(i + 1),
			Wait:      true,
		}
		switch fam {
		case "maxcut":
			g := graph.ErdosRenyiConnected(n, 0.5, rng)
			req.Nodes = n
			for _, ed := range g.Edges() {
				req.Edges = append(req.Edges, [2]int{ed.U, ed.V})
			}
		case "partition":
			req.Numbers = make([]float64, n)
			for j := range req.Numbers {
				req.Numbers[j] = float64(1 + rng.Intn(50))
			}
		case "maxksat":
			// Two-literal clauses keep the compiled register at exactly
			// n qubits (three-literal clauses add Rosenberg auxiliaries).
			req.Vars = n
			for c := 0; c < 2*n; c++ {
				a := rng.Intn(n)
				b := rng.Intn(n - 1)
				if b >= a {
					b++
				}
				lit := func(v int) int {
					if rng.Intn(2) == 0 {
						return -(v + 1)
					}
					return v + 1
				}
				req.Clauses = append(req.Clauses, []int{lit(a), lit(b)})
			}
		default:
			return nil, fmt.Errorf("unsupported family %q (qaoaload generates maxcut, partition, maxksat)", fam)
		}
		pool = append(pool, req)
	}
	return pool, nil
}

// collector aggregates per-request outcomes under one lock.
type collector struct {
	mu        sync.Mutex
	latencies []float64 // ms, one per HTTP request
	e         Entry

	// SSE sampling accumulators (reduced into e after the run).
	sseTTFEMsSum float64 // sum of time-to-first-event, ms
	sseStreamS   float64 // summed stream lifetimes, seconds
	sseEvents    int64   // events received across sampled streams
}

// offerLoad drives the server at the fixed arrival rate for the given
// duration, then waits for every outstanding request to return. When
// sseEvery > 0 every sseEvery-th solve is followed over its SSE event
// stream instead of blocking on the response.
func offerLoad(base string, pool []server.SolveRequest, rate float64, duration time.Duration, batch, sseEvery int) Entry {
	client := &http.Client{} // no client timeout: the server bounds jobs
	col := &collector{}
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	stop := time.After(duration)
	start := time.Now()
	var wg sync.WaitGroup
	k := 0
loop:
	for {
		select {
		case <-ticker.C:
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				switch {
				case batch > 0:
					doBatch(client, base, pool, k, batch, col)
				case sseEvery > 0 && k%sseEvery == 0:
					doSolveSSE(client, base, pool[k%len(pool)], col)
				default:
					doSolve(client, base, pool[k%len(pool)], col)
				}
			}(k)
			k++
		case <-stop:
			break loop
		}
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	e := col.e
	e.DurationS = elapsed
	sort.Float64s(col.latencies)
	e.P50Ms = percentile(col.latencies, 50)
	e.P90Ms = percentile(col.latencies, 90)
	e.P99Ms = percentile(col.latencies, 99)
	if elapsed > 0 {
		e.ThroughputRPS = float64(e.Done) / elapsed
	}
	if e.SSESampled > 0 {
		e.SSETimeToFirstEventMs = col.sseTTFEMsSum / float64(e.SSESampled)
		if col.sseStreamS > 0 {
			e.SSEEventsPerSec = float64(col.sseEvents) / col.sseStreamS
		}
	}
	return e
}

// doSolve sends one POST /v1/solve and records its outcome.
func doSolve(client *http.Client, base string, req server.SolveRequest, col *collector) {
	blob, _ := json.Marshal(req)
	start := time.Now()
	resp, err := client.Post(base+"/v1/solve", "application/json", bytes.NewReader(blob))
	ms := float64(time.Since(start).Nanoseconds()) / 1e6
	col.mu.Lock()
	defer col.mu.Unlock()
	col.e.Requests++
	col.e.Items++
	col.latencies = append(col.latencies, ms)
	if err != nil {
		col.e.Failed++
		return
	}
	defer resp.Body.Close()
	var view server.JobView
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		col.e.Rejected++
	case resp.StatusCode != http.StatusOK:
		col.e.Failed++
	case json.NewDecoder(resp.Body).Decode(&view) != nil:
		col.e.Failed++
	default:
		col.countView(&view)
	}
}

// doSolveSSE submits one solve without waiting, then follows the job's
// SSE event stream to its terminal result, recording how quickly the
// first event arrived and the stream's event rate. Latency for sampled
// requests is submit-to-terminal-event, so they remain comparable to
// blocking solves.
func doSolveSSE(client *http.Client, base string, req server.SolveRequest, col *collector) {
	req.Wait = false
	blob, _ := json.Marshal(req)
	start := time.Now()

	fail := func() {
		col.mu.Lock()
		defer col.mu.Unlock()
		col.e.Requests++
		col.e.Items++
		col.e.Failed++
		col.latencies = append(col.latencies, float64(time.Since(start).Nanoseconds())/1e6)
	}

	resp, err := client.Post(base+"/v1/solve", "application/json", bytes.NewReader(blob))
	if err != nil {
		fail()
		return
	}
	var view server.JobView
	decodeErr := json.NewDecoder(resp.Body).Decode(&view)
	resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		col.mu.Lock()
		defer col.mu.Unlock()
		col.e.Requests++
		col.e.Items++
		col.e.Rejected++
		col.latencies = append(col.latencies, float64(time.Since(start).Nanoseconds())/1e6)
		return
	}
	// 202 for a fresh/inflight job, 200 for a cache hit born terminal;
	// either way the event stream replays up to the result.
	if (resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK) || decodeErr != nil {
		fail()
		return
	}

	stream, err := cluster.OpenEvents(context.Background(), client, base, view.ID)
	if err != nil {
		fail()
		return
	}
	defer stream.Close()

	var (
		ttfeMs float64
		events int64
		final  *server.JobView
	)
	for {
		ev, err := stream.Next()
		if err != nil {
			break
		}
		if events == 0 {
			ttfeMs = float64(time.Since(start).Nanoseconds()) / 1e6
		}
		events++
		if ev.Name == server.EventResult {
			var v server.JobView
			if json.Unmarshal(ev.Data, &v) == nil {
				final = &v
			}
			break
		}
	}
	totalMs := float64(time.Since(start).Nanoseconds()) / 1e6

	col.mu.Lock()
	defer col.mu.Unlock()
	col.e.Requests++
	col.e.Items++
	col.latencies = append(col.latencies, totalMs)
	col.e.SSESampled++
	col.sseTTFEMsSum += ttfeMs
	col.sseStreamS += totalMs / 1e3
	col.sseEvents += events
	col.countView(final) // nil (stream broke before the result) counts as failed
}

// doBatch sends one POST /v1/solve/batch with `size` consecutive pool
// entries and records per-item outcomes.
func doBatch(client *http.Client, base string, pool []server.SolveRequest, k, size int, col *collector) {
	items := make([]server.SolveRequest, size)
	for i := range items {
		items[i] = pool[(k*size+i)%len(pool)]
	}
	blob, _ := json.Marshal(server.BatchRequest{Items: items})
	start := time.Now()
	resp, err := client.Post(base+"/v1/solve/batch", "application/json", bytes.NewReader(blob))
	ms := float64(time.Since(start).Nanoseconds()) / 1e6
	col.mu.Lock()
	defer col.mu.Unlock()
	col.e.Requests++
	col.e.Items += int64(size)
	col.latencies = append(col.latencies, ms)
	if err != nil {
		col.e.Failed += int64(size)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		col.e.Rejected += int64(size)
		return
	}
	var br server.BatchResponse
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&br) != nil {
		col.e.Failed += int64(size)
		return
	}
	for _, item := range br.Items {
		switch {
		case item.Code == http.StatusTooManyRequests:
			col.e.Rejected++
		case item.Code != http.StatusOK:
			col.e.Failed++
		default:
			if item.Deduped {
				col.e.Deduped++
			}
			col.countView(item.Job)
		}
	}
}

// countView classifies one finished job view (col.mu held).
func (col *collector) countView(view *server.JobView) {
	if view == nil {
		col.e.Failed++
		return
	}
	switch view.State {
	case server.StateDone:
		col.e.Done++
		if view.Cached {
			col.e.Cached++
		}
		if view.Coalesced {
			col.e.Coalesced++
		}
	default:
		col.e.Failed++
	}
}

// percentile reads the q-th percentile (nearest-rank) from sorted ms.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q/100*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// scrapeCounters reads the counter block of GET /metrics.
func scrapeCounters(base string) (map[string]int64, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	if snap.Counters == nil {
		snap.Counters = map[string]int64{}
	}
	return snap.Counters, nil
}

// selfHost starts an in-process server on a loopback port and returns
// its base URL plus a shutdown hook. The two-level strategy needs a
// registered predictor, which the caller's qaoad would normally load;
// here the "default" model is trained in-process exactly like
// qaoad -train does.
func selfHost(cfg server.Config, strategy string) (string, func(), error) {
	if strategy == server.StrategyTwoLevel {
		reg, err := trainedRegistry()
		if err != nil {
			return "", nil, err
		}
		cfg.Registry = reg
	}
	s := server.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		s.Close()
		return "", nil, err
	}
	hs := &http.Server{Handler: s.Handler()}
	go func() { _ = hs.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Fprintf(os.Stderr, "self-hosted qaoad on %s\n", base)
	return base, func() {
		_ = hs.Close()
		s.Close()
	}, nil
}

// trainedRegistry trains a small "default" two-level predictor the way
// qaoad -train does, so a self-hosted run can exercise -strategy
// two-level without a model directory.
func trainedRegistry() (*server.Registry, error) {
	reg, err := server.NewRegistry("")
	if err != nil {
		return nil, err
	}
	data, err := core.Generate(core.DataGenConfig{
		NumGraphs: 8, Nodes: 8, EdgeProb: 0.5,
		MaxDepth: 3, Starts: 2, Tol: 1e-6, Seed: 1,
	})
	if err != nil {
		return nil, fmt.Errorf("training dataset: %w", err)
	}
	train, _ := data.SplitIndices(0.8, 1)
	pred := core.NewPredictor(nil)
	if err := pred.Train(data, train); err != nil {
		return nil, fmt.Errorf("training default model: %w", err)
	}
	reg.Register("default", pred)
	return reg, nil
}

// deriveName builds a default entry name from the workload shape, e.g.
// "maxcut+partition/naive-rps20" or "maxcut/naive-rps40-b8".
func deriveName(families, strategy string, rate float64, batch int) string {
	fams := strings.Join(splitList(families), "+")
	n := fmt.Sprintf("%s/%s-rps%s", fams, strategy, strconv.FormatFloat(rate, 'f', -1, 64))
	if batch > 0 {
		n += fmt.Sprintf("-b%d", batch)
	}
	return n
}

// checkReport validates a BENCH_server.json document: the schema CI
// asserts after the server-load smoke run.
func checkReport(path string) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep Report
	if err := json.Unmarshal(blob, &rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if rep.Package == "" || rep.Timestamp == "" || rep.GOMAXPROCS < 1 {
		return fmt.Errorf("%s: missing package/timestamp/gomaxprocs header", path)
	}
	if len(rep.Entries) == 0 {
		return fmt.Errorf("%s: no entries", path)
	}
	for i, e := range rep.Entries {
		where := fmt.Sprintf("%s: entry %d (%s)", path, i, e.Name)
		switch {
		case e.Name == "":
			return fmt.Errorf("%s: empty name", where)
		case e.GOMAXPROCS < 1:
			return fmt.Errorf("%s: gomaxprocs %d < 1", where, e.GOMAXPROCS)
		case e.Requests < 1 || e.Items < e.Requests:
			return fmt.Errorf("%s: implausible requests=%d items=%d", where, e.Requests, e.Items)
		case e.DurationS <= 0 || e.OfferedRPS <= 0:
			return fmt.Errorf("%s: non-positive duration/offered rate", where)
		case e.Done > 0 && e.ThroughputRPS <= 0:
			return fmt.Errorf("%s: %d done items but zero throughput", where, e.Done)
		case e.P50Ms < 0 || e.P99Ms < e.P50Ms:
			return fmt.Errorf("%s: latency percentiles out of order (p50 %.3f, p99 %.3f)", where, e.P50Ms, e.P99Ms)
		case e.CacheHitRate < 0 || e.CacheHitRate > 1 || e.WorkspaceReuseRate < 0 || e.WorkspaceReuseRate > 1:
			return fmt.Errorf("%s: rates out of [0,1]", where)
		case e.SSESampled < 0 || e.SSESampled > e.Items:
			return fmt.Errorf("%s: sse_sampled=%d outside [0, items=%d]", where, e.SSESampled, e.Items)
		case e.SSESampled > 0 && (e.SSETimeToFirstEventMs < 0 || e.SSEEventsPerSec < 0):
			return fmt.Errorf("%s: negative sse stream metrics", where)
		case e.SSESampled == 0 && (e.SSETimeToFirstEventMs != 0 || e.SSEEventsPerSec != 0):
			return fmt.Errorf("%s: sse metrics present with zero sampled streams", where)
		}
	}
	return nil
}

// merge folds a previous report at path into r, keyed by
// (name, gomaxprocs) with this run winning; prior timestamps join
// History (newest first, capped). Missing file = first run; corrupt
// file = overwritten. The logic mirrors qaoabench's merge so the two
// BENCH files age the same way.
func (r *Report) merge(path string) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return
	}
	var old Report
	if json.Unmarshal(blob, &old) != nil {
		return
	}
	key := func(e Entry) string { return e.Name + "@" + strconv.Itoa(e.GOMAXPROCS) }
	fresh := make(map[string]bool, len(r.Entries))
	for _, e := range r.Entries {
		fresh[key(e)] = true
	}
	kept := 0
	for _, e := range old.Entries {
		if !fresh[key(e)] {
			r.Entries = append(r.Entries, e)
			kept++
		}
	}
	if old.Timestamp != "" {
		r.History = append(r.History, old.Timestamp)
	}
	r.History = append(r.History, old.History...)
	if len(r.History) > maxHistory {
		r.History = r.History[:maxHistory]
	}
	if kept > 0 {
		fmt.Fprintf(os.Stderr, "merged %d prior entries from %s\n", kept, path)
	}
}

func (r *Report) write(w *os.File) {
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fatal(err)
	}
	blob = append(blob, '\n')
	if _, err := w.Write(blob); err != nil {
		fatal(err)
	}
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func splitInts(s string) []int {
	var out []int
	for _, f := range splitList(s) {
		v, err := strconv.Atoi(f)
		if err != nil || v < 1 {
			fatal(fmt.Errorf("bad list value %q (want positive integers)", f))
		}
		out = append(out, v)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qaoaload:", err)
	os.Exit(1)
}
