package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"

	"qaoaml/internal/core"
	"qaoaml/internal/optimize"
	"qaoaml/internal/stats"
)

// HierRow compares the three flows at one target depth: naive random
// initialization, the two-level flow, and the hierarchical variant the
// paper sketches in Sec. I(d) (intermediate-depth optimum joins the
// feature vector).
type HierRow struct {
	Depth int

	NaiveMeanFC, NaiveMeanAR float64
	TwoMeanFC, TwoMeanAR     float64
	HierMeanFC, HierMeanAR   float64

	TwoReductionPct  float64
	HierReductionPct float64
}

// HierResult is the hierarchical-vs-two-level ablation (DESIGN.md).
type HierResult struct {
	Optimizer string
	Rows      []HierRow
}

// RunHierarchical evaluates naive vs two-level vs hierarchical with
// L-BFGS-B for target depths 3..MaxTarget over the test graphs.
func RunHierarchical(env *Env) (HierResult, error) {
	if env.Scale.MaxDepth < 3 {
		return HierResult{}, fmt.Errorf("experiments: hierarchical needs MaxDepth >= 3")
	}
	hpred := core.NewHierPredictor(nil)
	if err := hpred.Train(env.Data, env.TrainIDs); err != nil {
		return HierResult{}, err
	}
	opt := &optimize.LBFGSB{Tol: 1e-6}
	res := HierResult{Optimizer: opt.Name()}

	type sample struct{ nFC, nAR, tFC, tAR, hFC, hAR []float64 }
	for pt := 3; pt <= env.Scale.MaxTarget; pt++ {
		ids := env.testSubset()
		samples := make([]sample, len(ids))
		var wg sync.WaitGroup
		var firstErr error
		var errOnce sync.Once
		sem := make(chan struct{}, runtime.GOMAXPROCS(0))
		for k, g := range ids {
			wg.Add(1)
			sem <- struct{}{}
			go func(k, g int) {
				defer wg.Done()
				defer func() { <-sem }()
				pb := env.Data.Problems[g]
				rng := rand.New(rand.NewSource(env.Scale.Seed + int64(g)*33331 + int64(pt)))
				var s sample
				for rep := 0; rep < env.Scale.Reps; rep++ {
					nv := core.NaiveRun(pb, pt, opt, rng)
					tl, err := core.TwoLevel(pb, pt, opt, env.Predictor, rng)
					if err != nil {
						errOnce.Do(func() { firstErr = err })
						return
					}
					hr, err := core.Hierarchical(pb, pt, opt, env.Predictor, hpred, rng)
					if err != nil {
						errOnce.Do(func() { firstErr = err })
						return
					}
					s.nFC = append(s.nFC, float64(nv.NFev))
					s.nAR = append(s.nAR, nv.AR)
					s.tFC = append(s.tFC, float64(tl.TotalNFev))
					s.tAR = append(s.tAR, tl.AR())
					s.hFC = append(s.hFC, float64(hr.TotalNFev))
					s.hAR = append(s.hAR, hr.AR())
				}
				samples[k] = s
			}(k, g)
		}
		wg.Wait()
		if firstErr != nil {
			return HierResult{}, firstErr
		}
		var all sample
		for _, s := range samples {
			all.nFC = append(all.nFC, s.nFC...)
			all.nAR = append(all.nAR, s.nAR...)
			all.tFC = append(all.tFC, s.tFC...)
			all.tAR = append(all.tAR, s.tAR...)
			all.hFC = append(all.hFC, s.hFC...)
			all.hAR = append(all.hAR, s.hAR...)
		}
		row := HierRow{
			Depth:       pt,
			NaiveMeanFC: stats.Mean(all.nFC), NaiveMeanAR: stats.Mean(all.nAR),
			TwoMeanFC: stats.Mean(all.tFC), TwoMeanAR: stats.Mean(all.tAR),
			HierMeanFC: stats.Mean(all.hFC), HierMeanAR: stats.Mean(all.hAR),
		}
		if row.NaiveMeanFC > 0 {
			row.TwoReductionPct = 100 * (1 - row.TwoMeanFC/row.NaiveMeanFC)
			row.HierReductionPct = 100 * (1 - row.HierMeanFC/row.NaiveMeanFC)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String renders the three-way comparison.
func (h HierResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sec. I(d) tweak: hierarchical vs two-level vs naive (%s)\n", h.Optimizer)
	var rows [][]string
	for _, r := range h.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.Depth),
			fmt.Sprintf("%.1f", r.NaiveMeanFC), fmt.Sprintf("%.4f", r.NaiveMeanAR),
			fmt.Sprintf("%.1f", r.TwoMeanFC), fmt.Sprintf("%.4f", r.TwoMeanAR),
			fmt.Sprintf("%.1f", r.HierMeanFC), fmt.Sprintf("%.4f", r.HierMeanAR),
			fmt.Sprintf("%.1f", r.TwoReductionPct), fmt.Sprintf("%.1f", r.HierReductionPct),
		})
	}
	b.WriteString(renderTable(
		[]string{"p", "naive FC", "AR", "2-level FC", "AR", "hier FC", "AR", "2-lvl red.%", "hier red.%"},
		rows))
	return b.String()
}
