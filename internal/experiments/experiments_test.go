package experiments

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// testScale is small enough for the full experiment suite to run in a
// few seconds while still exercising every code path.
func testScale() Scale {
	return Scale{
		NumGraphs:  36,
		Nodes:      8,
		EdgeProb:   0.5,
		MaxDepth:   3,
		Starts:     8,
		TrainFrac:  0.34,
		Reps:       1,
		TestGraphs: 10,
		MaxTarget:  3,
		Seed:       11,
	}
}

var (
	envOnce sync.Once
	envVal  *Env
	envErr  error
)

func sharedEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() { envVal, envErr = NewEnv(testScale()) })
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envVal
}

func TestScaleValidate(t *testing.T) {
	if err := DefaultScale().Validate(); err != nil {
		t.Errorf("DefaultScale invalid: %v", err)
	}
	if err := PaperScale().Validate(); err != nil {
		t.Errorf("PaperScale invalid: %v", err)
	}
	bad := DefaultScale()
	bad.MaxTarget = bad.MaxDepth + 1
	if err := bad.Validate(); err == nil {
		t.Error("MaxTarget > MaxDepth accepted")
	}
	bad2 := DefaultScale()
	bad2.TrainFrac = 1.5
	if err := bad2.Validate(); err == nil {
		t.Error("TrainFrac > 1 accepted")
	}
}

func TestNewEnv(t *testing.T) {
	env := sharedEnv(t)
	if len(env.TrainIDs)+len(env.TestIDs) != env.Scale.NumGraphs {
		t.Error("split does not cover all graphs")
	}
	if got := len(env.testSubset()); got != env.Scale.TestGraphs {
		t.Errorf("testSubset = %d, want %d", got, env.Scale.TestGraphs)
	}
	if env.Predictor == nil {
		t.Fatal("predictor not trained")
	}
}

func TestOptimizersAndFactories(t *testing.T) {
	if got := len(Optimizers()); got != 4 {
		t.Errorf("optimizers = %d, want 4", got)
	}
	if got := len(ModelFactories()); got != 4 {
		t.Errorf("model families = %d, want 4", got)
	}
}

func TestRunTable1(t *testing.T) {
	env := sharedEnv(t)
	res := RunTable1(env)
	// 4 optimizers × depths 2..3 = 8 rows.
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(res.Rows))
	}
	positive := 0
	for _, r := range res.Rows {
		if r.NaiveMeanFC <= 0 || r.TwoMeanFC <= 0 {
			t.Errorf("%s p=%d: nonpositive FC", r.Optimizer, r.Depth)
		}
		if r.NaiveMeanAR <= 0 || r.NaiveMeanAR > 1+1e-9 || r.TwoMeanAR <= 0 || r.TwoMeanAR > 1+1e-9 {
			t.Errorf("%s p=%d: AR out of range", r.Optimizer, r.Depth)
		}
		if r.FCReductionPct > 0 {
			positive++
		}
	}
	// The effect must show in the clear majority of cells even at this
	// tiny scale.
	if positive < 6 {
		t.Errorf("only %d/8 cells show an FC reduction\n%s", positive, res)
	}
	if res.AvgFCReductionPct <= 0 {
		t.Errorf("average reduction %.1f%% not positive", res.AvgFCReductionPct)
	}
	if res.MaxFCReductionPct < res.AvgFCReductionPct {
		t.Error("max reduction below average")
	}
	s := res.String()
	if !strings.Contains(s, "L-BFGS-B") || !strings.Contains(s, "COBYLA") {
		t.Error("rendering missing optimizers")
	}
}

func TestRunFig1c(t *testing.T) {
	res := RunFig1c(3, 4, 21)
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Performance (mean AR over converged runs) should improve, or at
	// least not collapse, with depth; FC grows with depth.
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if last.MeanFC <= first.MeanFC {
		t.Errorf("FC did not grow with depth: %v -> %v", first.MeanFC, last.MeanFC)
	}
	if last.BestAR < first.BestAR-1e-9 {
		t.Errorf("best AR degraded with depth: %v -> %v", first.BestAR, last.BestAR)
	}
	for _, p := range res.Points {
		if p.WorstAR > p.MeanAR || p.MeanAR > p.BestAR {
			t.Errorf("p=%d: ordering worst<=mean<=best violated", p.Depth)
		}
	}
	if !strings.Contains(res.String(), "Fig. 1(c)") {
		t.Error("rendering broken")
	}
}

func TestRunFig2Patterns(t *testing.T) {
	res := RunFig2(6, 22)
	if len(res.Schedules) != 8 { // 4 graphs × 2 depths
		t.Fatalf("schedules = %d", len(res.Schedules))
	}
	// The paper's headline pattern: γ increases and β decreases between
	// stages. Count monotone transitions; require a strong majority.
	gammaUp, gammaTotal, betaDown, betaTotal := 0, 0, 0, 0
	for _, s := range res.Schedules {
		for i := 1; i < len(s.Gamma); i++ {
			gammaTotal++
			if s.Gamma[i] >= s.Gamma[i-1]-1e-9 {
				gammaUp++
			}
			betaTotal++
			if s.Beta[i] <= s.Beta[i-1]+1e-9 {
				betaDown++
			}
		}
	}
	if float64(gammaUp) < 0.75*float64(gammaTotal) {
		t.Errorf("γ increasing in only %d/%d transitions\n%s", gammaUp, gammaTotal, res)
	}
	if float64(betaDown) < 0.75*float64(betaTotal) {
		t.Errorf("β decreasing in only %d/%d transitions\n%s", betaDown, betaTotal, res)
	}
}

func TestRunFig3Trends(t *testing.T) {
	res := RunFig3(4, 6, 23)
	if len(res.GammaByDepth) != 4 {
		t.Fatalf("depths = %d", len(res.GammaByDepth))
	}
	// Paper Fig. 3: γ1OPT decreases as depth grows, β1OPT increases...
	// (β1 increases relative to its depth-1 value in the paper's
	// convention; with the π/2-canonical domain we check γ1 decreasing,
	// the robust half of the claim, plus AR non-decreasing.)
	g1First := res.GammaByDepth[0][0]
	g1Last := res.GammaByDepth[len(res.GammaByDepth)-1][0]
	if g1Last > g1First+0.05 {
		t.Errorf("γ1OPT grew with depth: %.3f -> %.3f", g1First, g1Last)
	}
	for d := 1; d < len(res.ARByDepth); d++ {
		if res.ARByDepth[d] < res.ARByDepth[d-1]-0.02 {
			t.Errorf("AR degraded with depth: %v", res.ARByDepth)
		}
	}
	if !strings.Contains(res.String(), "Fig. 3") {
		t.Error("rendering broken")
	}
}

func TestRunFig5Correlations(t *testing.T) {
	env := sharedEnv(t)
	res := RunFig5(env)
	// Sec. III-B: γ1OPT(p=1) and β1OPT(p=1) strongly correlated (0.92).
	if res.RGamma1Beta1 < 0.5 {
		t.Errorf("r(γ1,β1) = %.3f, want strongly positive", res.RGamma1Beta1)
	}
	if len(res.Gamma) == 0 || len(res.Beta) == 0 {
		t.Fatal("no stage correlations")
	}
	for _, rows := range [][]StageCorrelation{res.Gamma, res.Beta} {
		for _, r := range rows {
			for _, v := range []float64{r.WithGamma1, r.WithBeta1, r.WithDepth} {
				if !math.IsNaN(v) && (v < -1-1e-9 || v > 1+1e-9) {
					t.Errorf("correlation out of range: %+v", r)
				}
			}
		}
	}
	// Sec. III-B: γ1OPT response correlates negatively with depth.
	if r := res.Gamma[0].WithDepth; !math.IsNaN(r) && r > 0.2 {
		t.Errorf("r(γ1OPT, p) = %.3f, expected non-positive trend", r)
	}
	if !strings.Contains(res.String(), "paper: 0.92") {
		t.Error("rendering broken")
	}
}

func TestRunFig6Errors(t *testing.T) {
	env := sharedEnv(t)
	res := RunFig6(env)
	if len(res.Points) != 2 { // depths 2..3
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if math.IsNaN(p.MeanPct) || p.MeanPct < 0 {
			t.Errorf("p=%d: bad mean error %v", p.Depth, p.MeanPct)
		}
		if p.MeanPct > 100 {
			t.Errorf("p=%d: error %v%% unusably large", p.Depth, p.MeanPct)
		}
		if p.N == 0 {
			t.Errorf("p=%d: no samples", p.Depth)
		}
	}
	if !strings.Contains(res.String(), "Fig. 6") {
		t.Error("rendering broken")
	}
}

func TestRunModelComparison(t *testing.T) {
	env := sharedEnv(t)
	res, err := RunModelComparison(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != 4 {
		t.Fatalf("scores = %d", len(res.Scores))
	}
	// Ranking must be consistent with the Better ordering.
	for i := 1; i < len(res.Scores); i++ {
		if res.Scores[i].Metrics.Better(res.Scores[i-1].Metrics) {
			t.Errorf("ranking violated at %d:\n%s", i, res)
		}
	}
	if res.Best() == "" {
		t.Error("no best model")
	}
	// The paper's GPR-wins claim needs the full-scale dataset (66
	// training graphs); at this test scale we only check every family
	// produced finite, sane pooled metrics.
	for _, s := range res.Scores {
		if math.IsNaN(s.Metrics.MSE) || s.Metrics.MSE < 0 || s.Metrics.RMSE < 0 {
			t.Errorf("%s: bad metrics %v", s.Name, s.Metrics)
		}
	}
	if !strings.Contains(res.String(), "MSE") {
		t.Error("rendering broken")
	}
}

func TestRunHierarchical(t *testing.T) {
	env := sharedEnv(t)
	res, err := RunHierarchical(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 { // depth 3 only at test scale
		t.Fatalf("rows = %d", len(res.Rows))
	}
	r := res.Rows[0]
	if r.NaiveMeanFC <= 0 || r.TwoMeanFC <= 0 || r.HierMeanFC <= 0 {
		t.Errorf("nonpositive FC: %+v", r)
	}
	for _, ar := range []float64{r.NaiveMeanAR, r.TwoMeanAR, r.HierMeanAR} {
		if ar <= 0 || ar > 1+1e-9 {
			t.Errorf("AR out of range: %+v", r)
		}
	}
	if !strings.Contains(res.String(), "hier") {
		t.Error("rendering broken")
	}
}

func TestNewEnvFromData(t *testing.T) {
	env := sharedEnv(t)
	s := testScale()
	s.NumGraphs = 999 // must be overridden by the dataset's true size
	s.MaxTarget = 9   // must be clamped to the dataset's max depth
	env2, err := NewEnvFromData(s, env.Data)
	if err != nil {
		t.Fatal(err)
	}
	if env2.Scale.NumGraphs != len(env.Data.Problems) {
		t.Errorf("NumGraphs = %d", env2.Scale.NumGraphs)
	}
	if env2.Scale.MaxTarget != env.Data.Config.MaxDepth {
		t.Errorf("MaxTarget = %d", env2.Scale.MaxTarget)
	}
	if env2.Predictor == nil {
		t.Error("predictor not trained")
	}
}

func TestRunSPSAExtension(t *testing.T) {
	env := sharedEnv(t)
	res := RunSPSAExtension(env)
	if len(res.Rows) != 2 { // depths 2..3
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Optimizer != "SPSA" {
			t.Errorf("optimizer = %q", r.Optimizer)
		}
		if r.NaiveMeanFC <= 0 || r.TwoMeanFC <= 0 {
			t.Errorf("nonpositive FC: %+v", r)
		}
		if r.NaiveMeanAR <= 0 || r.TwoMeanAR <= 0 || r.NaiveMeanAR > 1+1e-9 || r.TwoMeanAR > 1+1e-9 {
			t.Errorf("AR out of range: %+v", r)
		}
	}
	if !strings.Contains(res.String(), "SPSA") {
		t.Error("rendering broken")
	}
}

func TestRunNoiseSweep(t *testing.T) {
	res := RunNoiseSweep(2, 2, 40, 31)
	if len(res.Points) < 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// First level is noiseless.
	if res.Points[0].P2 != 0 {
		t.Fatalf("first point P2 = %v", res.Points[0].P2)
	}
	// AR must degrade monotonically-ish: last level clearly below first.
	first, last := res.Points[0].MeanAR, res.Points[len(res.Points)-1].MeanAR
	if last >= first {
		t.Errorf("AR did not degrade with noise: %v -> %v", first, last)
	}
	for _, p := range res.Points {
		if p.MeanAR <= 0 || p.MeanAR > 1+1e-9 {
			t.Errorf("AR out of range at P2=%v: %v", p.P2, p.MeanAR)
		}
	}
	if !strings.Contains(res.String(), "depolarizing") {
		t.Error("rendering broken")
	}
}

func TestCSVRendering(t *testing.T) {
	env := sharedEnv(t)
	checks := map[string]string{
		"fig5":  RunFig5(env).CSV(),
		"fig6":  RunFig6(env).CSV(),
		"fig1c": RunFig1c(2, 2, 1).CSV(),
		"noise": RunNoiseSweep(2, 1, 5, 1).CSV(),
	}
	for id, csvText := range checks {
		lines := strings.Split(strings.TrimSpace(csvText), "\n")
		if len(lines) < 2 {
			t.Errorf("%s: CSV has %d lines", id, len(lines))
			continue
		}
		cols := strings.Count(lines[0], ",")
		for i, ln := range lines[1:] {
			if strings.Count(ln, ",") != cols {
				t.Errorf("%s: row %d has wrong column count: %q", id, i+1, ln)
				break
			}
		}
	}
	if CSVName("table1") != "table1.csv" {
		t.Error("CSVName wrong")
	}
}
