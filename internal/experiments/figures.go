package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"qaoaml/internal/core"
	"qaoaml/internal/graph"
	"qaoaml/internal/optimize"
	"qaoaml/internal/qaoa"
	"qaoaml/internal/stats"
)

// regularProblems builds the paper's Fig. 1(c)/Fig. 2 workload: random
// 3-regular 8-node graphs.
func regularProblems(count int, seed int64) []*qaoa.Problem {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*qaoa.Problem, count)
	for i := range out {
		pb, err := qaoa.NewProblem(graph.RandomRegular(8, 3, rng))
		if err != nil {
			panic("experiments: 3-regular graph rejected: " + err.Error())
		}
		out[i] = pb
	}
	return out
}

// Fig1cPoint is one (depth) cell of Fig. 1(c): the distribution of
// approximation ratios and QC calls over graphs × random inits.
type Fig1cPoint struct {
	Depth           int
	MeanAR, SDAR    float64
	MeanFC, SDFC    float64
	BestAR, WorstAR float64
}

// Fig1cResult reproduces Fig. 1(c): AR and run-time (QC calls)
// distributions for QAOA MaxCut on four 3-regular 8-node graphs with
// varying depth p, 20 random initializations each, L-BFGS-B.
type Fig1cResult struct {
	Graphs int
	Inits  int
	Points []Fig1cPoint
}

// RunFig1c executes the Fig. 1(c) experiment. maxDepth is the largest
// circuit depth (paper: 5); inits the random initializations (paper: 20).
func RunFig1c(maxDepth, inits int, seed int64) Fig1cResult {
	problems := regularProblems(4, seed)
	opt := &optimize.LBFGSB{Tol: 1e-6}
	res := Fig1cResult{Graphs: len(problems), Inits: inits}
	for p := 1; p <= maxDepth; p++ {
		var ars, fcs []float64
		for gi, pb := range problems {
			rng := rand.New(rand.NewSource(seed + int64(gi)*131 + int64(p)))
			for k := 0; k < inits; k++ {
				r := core.NaiveRun(pb, p, opt, rng)
				ars = append(ars, r.AR)
				fcs = append(fcs, float64(r.NFev))
			}
		}
		res.Points = append(res.Points, Fig1cPoint{
			Depth:  p,
			MeanAR: stats.Mean(ars), SDAR: stats.StdDev(ars),
			MeanFC: stats.Mean(fcs), SDFC: stats.StdDev(fcs),
			BestAR: stats.Max(ars), WorstAR: stats.Min(ars),
		})
	}
	return res
}

// String renders the Fig. 1(c) series.
func (f Fig1cResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 1(c): AR and QC-call distributions vs depth (%d 3-regular graphs, %d inits)\n", f.Graphs, f.Inits)
	var rows [][]string
	for _, pt := range f.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", pt.Depth),
			fmt.Sprintf("%.4f", pt.MeanAR), fmt.Sprintf("%.4f", pt.SDAR),
			fmt.Sprintf("%.4f", pt.BestAR), fmt.Sprintf("%.4f", pt.WorstAR),
			fmt.Sprintf("%.1f", pt.MeanFC), fmt.Sprintf("%.1f", pt.SDFC),
		})
	}
	b.WriteString(renderTable([]string{"p", "mean AR", "SD", "best", "worst", "mean FC", "SD"}, rows))
	return b.String()
}

// StageParams is one graph's optimal schedule at a fixed depth.
type StageParams struct {
	GraphID int
	Depth   int
	Gamma   []float64
	Beta    []float64
	AR      float64
}

// Fig2Result reproduces Fig. 2: within-depth patterns of the optimal
// stage parameters for four 3-regular graphs at p = 3 and p = 5
// (γi increases between stages, βi decreases).
type Fig2Result struct {
	Depths    []int
	Schedules []StageParams
}

// RunFig2 executes the Fig. 2 experiment with the given multistart
// count per instance (paper: 20 random initializations).
func RunFig2(starts int, seed int64) Fig2Result {
	problems := regularProblems(4, seed)
	opt := &optimize.LBFGSB{Tol: 1e-6}
	res := Fig2Result{Depths: []int{3, 5}}
	for gi, pb := range problems {
		rng := rand.New(rand.NewSource(seed + int64(gi)*977))
		// Chain depths 1..5 with INTERP seeding, as in dataset generation.
		var prev qaoa.Params
		byDepth := map[int]core.Record{}
		for d := 1; d <= 5; d++ {
			var seeds []qaoa.Params
			if d > 1 {
				seeds = append(seeds, qaoa.Interpolate(prev))
			}
			rec := core.OptimizeDepth(pb, gi, d, starts, opt, rng, seeds...)
			prev = rec.Params
			byDepth[d] = rec
		}
		for _, d := range res.Depths {
			rec := byDepth[d]
			res.Schedules = append(res.Schedules, StageParams{
				GraphID: gi, Depth: d,
				Gamma: rec.Params.Gamma, Beta: rec.Params.Beta, AR: rec.AR,
			})
		}
	}
	return res
}

// String renders the Fig. 2 schedules.
func (f Fig2Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 2: optimal stage parameters within fixed depth (4 3-regular graphs)\n")
	var rows [][]string
	for _, s := range f.Schedules {
		rows = append(rows, []string{
			fmt.Sprintf("G%d", s.GraphID+1),
			fmt.Sprintf("%d", s.Depth),
			fmtSlice(s.Gamma),
			fmtSlice(s.Beta),
			fmt.Sprintf("%.4f", s.AR),
		})
	}
	b.WriteString(renderTable([]string{"graph", "p", "γ1..γp", "β1..βp", "AR"}, rows))
	return b.String()
}

// Fig3Result reproduces Fig. 3: how each stage's optimal γi and βi move
// as the circuit depth grows from 1 to maxDepth on a single 3-regular
// graph (γi decreases with p, βi increases with p).
type Fig3Result struct {
	// GammaByDepth[d-1] is the optimal γ schedule at depth d; same for
	// BetaByDepth.
	GammaByDepth [][]float64
	BetaByDepth  [][]float64
	ARByDepth    []float64
}

// RunFig3 executes the Fig. 3 experiment.
func RunFig3(maxDepth, starts int, seed int64) Fig3Result {
	pb := regularProblems(1, seed)[0]
	opt := &optimize.LBFGSB{Tol: 1e-6}
	rng := rand.New(rand.NewSource(seed + 5))
	var res Fig3Result
	var prev qaoa.Params
	for d := 1; d <= maxDepth; d++ {
		var seeds []qaoa.Params
		if d > 1 {
			seeds = append(seeds, qaoa.Interpolate(prev))
		}
		rec := core.OptimizeDepth(pb, 0, d, starts, opt, rng, seeds...)
		prev = rec.Params
		res.GammaByDepth = append(res.GammaByDepth, rec.Params.Gamma)
		res.BetaByDepth = append(res.BetaByDepth, rec.Params.Beta)
		res.ARByDepth = append(res.ARByDepth, rec.AR)
	}
	return res
}

// String renders the Fig. 3 trends.
func (f Fig3Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 3: optimal γi/βi vs circuit depth (single 3-regular graph)\n")
	var rows [][]string
	for d := range f.GammaByDepth {
		rows = append(rows, []string{
			fmt.Sprintf("%d", d+1),
			fmtSlice(f.GammaByDepth[d]),
			fmtSlice(f.BetaByDepth[d]),
			fmt.Sprintf("%.4f", f.ARByDepth[d]),
		})
	}
	b.WriteString(renderTable([]string{"p", "γ schedule", "β schedule", "AR"}, rows))
	return b.String()
}

func fmtSlice(v []float64) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%.3f", x)
	}
	return "[" + strings.Join(parts, " ") + "]"
}
