package experiments

import (
	"fmt"
	"strings"

	"qaoaml/internal/optimize"
)

// SPSAResult extends the paper's optimizer-agnosticism claim to SPSA,
// the optimizer most used for variational circuits on real quantum
// hardware (not one of the paper's four). Rows reuse the Table I cell
// machinery.
type SPSAResult struct {
	Rows []Table1Row
}

// RunSPSAExtension evaluates naive vs two-level initialization under
// SPSA for target depths 2..MaxTarget over the test graphs.
func RunSPSAExtension(env *Env) SPSAResult {
	var res SPSAResult
	opt := &optimize.SPSA{Tol: 1e-6, Seed: env.Scale.Seed + 77}
	for pt := 2; pt <= env.Scale.MaxTarget; pt++ {
		res.Rows = append(res.Rows, runTable1Cell(env, opt, pt))
	}
	return res
}

// String renders the SPSA extension rows in the Table I layout.
func (s SPSAResult) String() string {
	var b strings.Builder
	b.WriteString("Extension: two-level initialization under SPSA (hardware-practical optimizer)\n")
	var rows [][]string
	for _, r := range s.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.Depth),
			fmt.Sprintf("%.4f", r.NaiveMeanAR), fmt.Sprintf("%.1f", r.NaiveMeanFC),
			fmt.Sprintf("%.4f", r.TwoMeanAR), fmt.Sprintf("%.1f", r.TwoMeanFC),
			fmt.Sprintf("%.1f", r.FCReductionPct),
		})
	}
	b.WriteString(renderTable([]string{"p", "AR(naive)", "FC(naive)", "AR(2-level)", "FC(2-level)", "FC red. %"}, rows))
	return b.String()
}
