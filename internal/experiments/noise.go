package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"qaoaml/internal/graph"
	"qaoaml/internal/qaoa"
	"qaoaml/internal/quantum"
	"qaoaml/internal/stats"
)

// NoisePoint is the AR distribution at one depolarizing noise level.
type NoisePoint struct {
	P2           float64 // two-qubit depolarizing probability (P1 = P2/10)
	MeanAR, SDAR float64
}

// NoiseSweepResult is an extension beyond the paper (whose evaluation
// is noiseless): how the approximation ratio of optimized depth-p QAOA
// circuits degrades under depolarizing gate noise — the practical
// ceiling any initialization strategy inherits on NISQ hardware.
type NoiseSweepResult struct {
	Depth        int
	Trajectories int
	Points       []NoisePoint
}

// RunNoiseSweep optimizes a handful of 3-regular graphs noiselessly at
// the given depth, then re-evaluates the optimized circuits under
// increasing two-qubit depolarizing noise (P1 = P2/10, the usual
// hardware ratio), averaging Monte-Carlo trajectories.
func RunNoiseSweep(depth, graphs, trajectories int, seed int64) NoiseSweepResult {
	if depth < 1 || graphs < 1 || trajectories < 1 {
		panic("experiments: bad noise sweep configuration")
	}
	rng := rand.New(rand.NewSource(seed))
	type inst struct {
		pb *qaoa.Problem
		pr qaoa.Params
	}
	var instances []inst
	for i := 0; i < graphs; i++ {
		pb, err := qaoa.NewProblem(graph.RandomRegular(8, 3, rng))
		if err != nil {
			panic("experiments: 3-regular graph rejected: " + err.Error())
		}
		// Noiseless optimum via grid (p = 1) refined through INTERP for
		// higher depths — cheap and deterministic.
		pr, _ := qaoa.GridSearchP1(pb, 48)
		for d := 2; d <= depth; d++ {
			pr = qaoa.Interpolate(pr)
		}
		instances = append(instances, inst{pb, pr})
	}
	levels := []float64{0, 0.002, 0.005, 0.01, 0.02, 0.05}
	res := NoiseSweepResult{Depth: depth, Trajectories: trajectories}
	for _, p2 := range levels {
		nm := quantum.NoiseModel{P1: p2 / 10, P2: p2}
		var ars []float64
		for _, in := range instances {
			e := in.pb.NoisyExpectation(in.pr, nm, trajectories, rng)
			ars = append(ars, e/in.pb.OptValue)
		}
		res.Points = append(res.Points, NoisePoint{
			P2: p2, MeanAR: stats.Mean(ars), SDAR: stats.StdDev(ars),
		})
	}
	return res
}

// String renders the sweep.
func (n NoiseSweepResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: AR of optimized depth-%d QAOA under depolarizing noise (%d trajectories)\n",
		n.Depth, n.Trajectories)
	var rows [][]string
	for _, p := range n.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%.3f", p.P2),
			fmt.Sprintf("%.4f", p.MeanAR),
			fmt.Sprintf("%.4f", p.SDAR),
		})
	}
	b.WriteString(renderTable([]string{"P2", "mean AR", "SD"}, rows))
	return b.String()
}
