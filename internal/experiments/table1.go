package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"

	"qaoaml/internal/core"
	"qaoaml/internal/optimize"
	"qaoaml/internal/stats"
)

// Table1Row is one row of the paper's Table I: one (optimizer, target
// depth) cell with the naive-vs-two-level comparison.
type Table1Row struct {
	Optimizer string
	Depth     int

	NaiveMeanAR, NaiveSDAR float64
	NaiveMeanFC, NaiveSDFC float64

	TwoMeanAR, TwoSDAR float64
	TwoMeanFC, TwoSDFC float64

	FCReductionPct float64
}

// Table1Result is the full table plus the paper's headline aggregate.
type Table1Result struct {
	Rows []Table1Row
	// AvgFCReductionPct is the mean reduction over all rows
	// (paper: 44.9%).
	AvgFCReductionPct float64
	// MaxFCReductionPct is the best row (paper: 65.7%).
	MaxFCReductionPct float64
}

// RunTable1 reproduces Table I: for every local optimizer and target
// depth 2..MaxTarget it solves each test graph Reps times with random
// initialization (naive) and with the two-level flow, reporting
// mean/SD of approximation ratio and function calls. FC counts are raw
// QC-call counts (the paper reports normalized values; the reduction
// percentages are directly comparable).
func RunTable1(env *Env) Table1Result {
	var res Table1Result
	for _, opt := range Optimizers() {
		for pt := 2; pt <= env.Scale.MaxTarget; pt++ {
			row := runTable1Cell(env, opt, pt)
			res.Rows = append(res.Rows, row)
		}
	}
	if len(res.Rows) > 0 {
		sum := 0.0
		maxRed := res.Rows[0].FCReductionPct
		for _, r := range res.Rows {
			sum += r.FCReductionPct
			if r.FCReductionPct > maxRed {
				maxRed = r.FCReductionPct
			}
		}
		res.AvgFCReductionPct = sum / float64(len(res.Rows))
		res.MaxFCReductionPct = maxRed
	}
	return res
}

type cellSample struct {
	naiveAR, naiveFC []float64
	twoAR, twoFC     []float64
}

// runTable1Cell collects Reps runs per test graph for one cell,
// parallelized over graphs with per-graph deterministic seeds.
func runTable1Cell(env *Env, opt optimize.Optimizer, pt int) Table1Row {
	ids := env.testSubset()
	samples := make([]cellSample, len(ids))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for k, g := range ids {
		wg.Add(1)
		sem <- struct{}{}
		go func(k, g int) {
			defer wg.Done()
			defer func() { <-sem }()
			pb := env.Data.Problems[g]
			rng := rand.New(rand.NewSource(env.Scale.Seed + int64(g)*104729 + int64(pt)*31 + int64(len(opt.Name()))))
			var s cellSample
			for rep := 0; rep < env.Scale.Reps; rep++ {
				nv := core.NaiveRun(pb, pt, opt, rng)
				s.naiveAR = append(s.naiveAR, nv.AR)
				s.naiveFC = append(s.naiveFC, float64(nv.NFev))
				tl, err := core.TwoLevel(pb, pt, opt, env.Predictor, rng)
				if err != nil {
					panic(fmt.Sprintf("experiments: two-level run failed: %v", err))
				}
				s.twoAR = append(s.twoAR, tl.AR())
				s.twoFC = append(s.twoFC, float64(tl.TotalNFev))
			}
			samples[k] = s
		}(k, g)
	}
	wg.Wait()

	var all cellSample
	for _, s := range samples {
		all.naiveAR = append(all.naiveAR, s.naiveAR...)
		all.naiveFC = append(all.naiveFC, s.naiveFC...)
		all.twoAR = append(all.twoAR, s.twoAR...)
		all.twoFC = append(all.twoFC, s.twoFC...)
	}
	row := Table1Row{
		Optimizer:   opt.Name(),
		Depth:       pt,
		NaiveMeanAR: stats.Mean(all.naiveAR), NaiveSDAR: stats.StdDev(all.naiveAR),
		NaiveMeanFC: stats.Mean(all.naiveFC), NaiveSDFC: stats.StdDev(all.naiveFC),
		TwoMeanAR: stats.Mean(all.twoAR), TwoSDAR: stats.StdDev(all.twoAR),
		TwoMeanFC: stats.Mean(all.twoFC), TwoSDFC: stats.StdDev(all.twoFC),
	}
	if row.NaiveMeanFC > 0 {
		row.FCReductionPct = 100 * (1 - row.TwoMeanFC/row.NaiveMeanFC)
	}
	return row
}

// String renders the table in the layout of the paper's Table I.
func (t Table1Result) String() string {
	var b strings.Builder
	b.WriteString("Table I: run-time comparison, naive random initialization vs two-level approach\n")
	b.WriteString(renderTable(
		[]string{"Optimizer", "p", "AR(naive)", "SD", "FC(naive)", "SD", "AR(2-level)", "SD", "FC(2-level)", "SD", "FC red. %"},
		func() [][]string {
			var rows [][]string
			for _, r := range t.Rows {
				rows = append(rows, []string{
					r.Optimizer,
					fmt.Sprintf("%d", r.Depth),
					fmt.Sprintf("%.4f", r.NaiveMeanAR),
					fmt.Sprintf("%.4f", r.NaiveSDAR),
					fmt.Sprintf("%.1f", r.NaiveMeanFC),
					fmt.Sprintf("%.1f", r.NaiveSDFC),
					fmt.Sprintf("%.4f", r.TwoMeanAR),
					fmt.Sprintf("%.4f", r.TwoSDAR),
					fmt.Sprintf("%.1f", r.TwoMeanFC),
					fmt.Sprintf("%.1f", r.TwoSDFC),
					fmt.Sprintf("%.1f", r.FCReductionPct),
				})
			}
			return rows
		}(),
	))
	fmt.Fprintf(&b, "average FC reduction: %.1f%% (paper: 44.9%%), max: %.1f%% (paper: 65.7%%)\n",
		t.AvgFCReductionPct, t.MaxFCReductionPct)
	return b.String()
}
