package experiments

import (
	"fmt"
	"strings"

	"qaoaml/internal/core"
	"qaoaml/internal/ml"
	"qaoaml/internal/stats"
)

// Fig6Point is the prediction-error distribution for one target depth.
type Fig6Point struct {
	Depth   int
	MeanPct float64 // mean absolute percentage error (paper: 5.7 at p=2 .. 10.2 at p=5)
	SDPct   float64
	N       int // number of (graph, parameter) pairs
}

// Fig6Result reproduces Fig. 6: prediction errors of the trained GPR
// predictor on the test graphs, per target depth.
type Fig6Result struct {
	Points []Fig6Point
}

// RunFig6 evaluates prediction error on the test split: for each test
// graph the true depth-1 optimum feeds the predictor, and predictions
// are compared against the dataset's optimal parameters at the target
// depth.
func RunFig6(env *Env) Fig6Result {
	var res Fig6Result
	for pt := 2; pt <= env.Scale.MaxTarget; pt++ {
		var actual, predicted []float64
		for _, g := range env.testSubset() {
			p1 := env.Data.Record(g, 1).Params
			pred, err := env.Predictor.Predict(core.FeaturesFromParams(p1, pt))
			if err != nil {
				panic(fmt.Sprintf("experiments: prediction failed: %v", err))
			}
			actual = append(actual, env.Data.Record(g, pt).Params.Vector()...)
			predicted = append(predicted, pred.Vector()...)
		}
		mean, sd := stats.MeanAbsPercentError(actual, predicted)
		res.Points = append(res.Points, Fig6Point{Depth: pt, MeanPct: mean, SDPct: sd, N: len(actual)})
	}
	return res
}

// String renders the error distributions.
func (f Fig6Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 6: GPR prediction errors on the test set (abs % error)\n")
	var rows [][]string
	paper := map[int]string{2: "5.7", 3: "8.1", 4: "9.4", 5: "10.2"}
	for _, p := range f.Points {
		ref := paper[p.Depth]
		if ref == "" {
			ref = "-"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Depth),
			fmt.Sprintf("%.1f", p.MeanPct),
			fmt.Sprintf("%.1f", p.SDPct),
			fmt.Sprintf("%d", p.N),
			ref,
		})
	}
	b.WriteString(renderTable([]string{"p", "mean %err", "SD", "n", "paper mean"}, rows))
	return b.String()
}

// ModelScore is one model family's pooled test metrics.
type ModelScore struct {
	Name    string
	Metrics ml.Metrics
}

// ModelComparisonResult reproduces the Sec. III-C analysis: the four
// regression families ranked on test-set metrics. The paper finds GPR
// best on every measure.
type ModelComparisonResult struct {
	Scores []ModelScore // sorted best first
}

// RunModelComparison trains each model family as the predictor and
// pools its test-set predictions over all target depths and parameters.
func RunModelComparison(env *Env) (ModelComparisonResult, error) {
	var res ModelComparisonResult
	for name, factory := range ModelFactories() {
		pred := core.NewPredictor(factory)
		if err := pred.Train(env.Data, env.TrainIDs); err != nil {
			return res, fmt.Errorf("experiments: training %s: %w", name, err)
		}
		var actual, predicted []float64
		for pt := 2; pt <= env.Scale.MaxTarget; pt++ {
			for _, g := range env.testSubset() {
				p1 := env.Data.Record(g, 1).Params
				pp, err := pred.Predict(core.FeaturesFromParams(p1, pt))
				if err != nil {
					return res, err
				}
				actual = append(actual, env.Data.Record(g, pt).Params.Vector()...)
				predicted = append(predicted, pp.Vector()...)
			}
		}
		res.Scores = append(res.Scores, ModelScore{
			Name:    name,
			Metrics: ml.Evaluate(actual, predicted, 3),
		})
	}
	// Sort best first by the paper's ranking rule.
	for i := 0; i < len(res.Scores); i++ {
		for j := i + 1; j < len(res.Scores); j++ {
			if res.Scores[j].Metrics.Better(res.Scores[i].Metrics) {
				res.Scores[i], res.Scores[j] = res.Scores[j], res.Scores[i]
			}
		}
	}
	return res, nil
}

// Best returns the winning model family name.
func (m ModelComparisonResult) Best() string {
	if len(m.Scores) == 0 {
		return ""
	}
	return m.Scores[0].Name
}

// String renders the ranking.
func (m ModelComparisonResult) String() string {
	var b strings.Builder
	b.WriteString("Sec. III-C: regression model comparison on the test set (best first)\n")
	var rows [][]string
	for _, s := range m.Scores {
		rows = append(rows, []string{
			s.Name,
			fmt.Sprintf("%.5g", s.Metrics.MSE),
			fmt.Sprintf("%.5g", s.Metrics.RMSE),
			fmt.Sprintf("%.5g", s.Metrics.MAE),
			fmt.Sprintf("%.4f", s.Metrics.R2),
			fmt.Sprintf("%.4f", s.Metrics.R2Adj),
		})
	}
	b.WriteString(renderTable([]string{"model", "MSE", "RMSE", "MAE", "R2", "R2adj"}, rows))
	return b.String()
}
