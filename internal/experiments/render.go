package experiments

import (
	"strings"
	"unicode/utf8"
)

// renderTable lays out a simple fixed-width text table.
func renderTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if w := utf8.RuneCountInString(cell); i < len(widths) && w > widths[i] {
				widths[i] = w
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-utf8.RuneCountInString(cell)))
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
