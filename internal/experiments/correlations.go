package experiments

import (
	"fmt"
	"math"
	"strings"

	"qaoaml/internal/stats"
)

// StageCorrelation holds the Pearson correlations of one response
// variable (γiOPT or βiOPT at stage i, pooled over all dataset depths
// d ≥ i) with the three predictors of the two-level approach.
type StageCorrelation struct {
	Stage      int
	WithGamma1 float64 // r(response, γ1OPT(p=1))
	WithBeta1  float64 // r(response, β1OPT(p=1))
	WithDepth  float64 // r(response, p)
}

// Fig5Result reproduces Fig. 5 and the Sec. III-B dataset analysis:
// the correlation structure between predictors and responses.
type Fig5Result struct {
	// RGamma1Beta1 is r(γ1OPT(p=1), β1OPT(p=1)) over graphs (paper: 0.92).
	RGamma1Beta1 float64
	Gamma        []StageCorrelation // responses γiOPT
	Beta         []StageCorrelation // responses βiOPT
}

// RunFig5 computes the correlation analysis over the full dataset.
func RunFig5(env *Env) Fig5Result {
	data := env.Data
	maxDepth := data.Config.MaxDepth
	n := len(data.Problems)

	g1 := make([]float64, n)
	b1 := make([]float64, n)
	for g := 0; g < n; g++ {
		p1 := data.Record(g, 1).Params
		g1[g] = p1.Gamma[0]
		b1[g] = p1.Beta[0]
	}
	res := Fig5Result{RGamma1Beta1: stats.Pearson(g1, b1)}

	// For each stage i, pool the response variable over all depths
	// d ∈ [max(i,2), maxDepth] and graphs, pairing each sample with its
	// graph's depth-1 features and its depth d.
	for i := 1; i <= maxDepth; i++ {
		var respG, respB, featG, featB, depths []float64
		for d := max(i, 2); d <= maxDepth; d++ {
			for g := 0; g < n; g++ {
				params := data.Record(g, d).Params
				respG = append(respG, params.Gamma[i-1])
				respB = append(respB, params.Beta[i-1])
				featG = append(featG, g1[g])
				featB = append(featB, b1[g])
				depths = append(depths, float64(d))
			}
		}
		if len(respG) == 0 {
			continue
		}
		res.Gamma = append(res.Gamma, StageCorrelation{
			Stage:      i,
			WithGamma1: stats.Pearson(respG, featG),
			WithBeta1:  stats.Pearson(respG, featB),
			WithDepth:  stats.Pearson(respG, depths),
		})
		res.Beta = append(res.Beta, StageCorrelation{
			Stage:      i,
			WithGamma1: stats.Pearson(respB, featG),
			WithBeta1:  stats.Pearson(respB, featB),
			WithDepth:  stats.Pearson(respB, depths),
		})
	}
	return res
}

// String renders the correlation tables.
func (f Fig5Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 5 / Sec. III-B: predictor-response correlations\n")
	fmt.Fprintf(&b, "r(γ1OPT(p=1), β1OPT(p=1)) = %.3f (paper: 0.92)\n", f.RGamma1Beta1)
	render := func(name string, rows []StageCorrelation) {
		fmt.Fprintf(&b, "responses %siOPT:\n", name)
		var cells [][]string
		for _, r := range rows {
			cells = append(cells, []string{
				fmt.Sprintf("%d", r.Stage),
				fmtCorr(r.WithGamma1),
				fmtCorr(r.WithBeta1),
				fmtCorr(r.WithDepth),
			})
		}
		b.WriteString(renderTable([]string{"i", "r(·, γ1(p=1))", "r(·, β1(p=1))", "r(·, p)"}, cells))
	}
	render("γ", f.Gamma)
	render("β", f.Beta)
	return b.String()
}

// fmtCorr renders a correlation, marking undefined values (single-depth
// pools have a constant p predictor).
func fmtCorr(r float64) string {
	if math.IsNaN(r) {
		return "n/a"
	}
	return fmt.Sprintf("%+.3f", r)
}
