// Package experiments reproduces every table and figure of the paper's
// evaluation: Fig. 1(c) (AR/FC vs depth), Fig. 2 (within-depth
// parameter patterns), Fig. 3 (parameter trends vs depth), Fig. 5
// (predictor/response correlations), Fig. 6 (prediction-error
// distributions), Table I (naive vs two-level run-time comparison),
// and the Sec. III-C model comparison. Each experiment has a Run
// function returning a structured result with a text rendering.
package experiments

import (
	"context"
	"fmt"

	"qaoaml/internal/core"
	"qaoaml/internal/ml"
	"qaoaml/internal/optimize"
	"qaoaml/internal/telemetry"
)

// Scale collects the knobs that trade fidelity for run time. The
// paper-scale values are in PaperScale; DefaultScale runs the full
// pipeline in tens of seconds.
type Scale struct {
	NumGraphs  int     // dataset graphs (paper: 330)
	Nodes      int     // vertices per graph (paper: 8)
	EdgeProb   float64 // Erdős–Rényi edge probability (paper: 0.5)
	MaxDepth   int     // dataset depths 1..MaxDepth (paper: 6)
	Starts     int     // datagen multistarts per instance (paper: 20)
	TrainFrac  float64 // train split fraction (paper: 0.2)
	Reps       int     // runs per (graph, optimizer, depth) in Table I (paper: 20)
	TestGraphs int     // cap on test graphs used by Table I / Fig. 6 (0 = all)
	MaxTarget  int     // largest target depth evaluated (paper: 5)
	Workers    int     // datagen parallelism (0 = GOMAXPROCS)
	Seed       int64
}

// DefaultScale is a medium-scale configuration for interactive runs.
func DefaultScale() Scale {
	return Scale{
		NumGraphs:  60,
		Nodes:      8,
		EdgeProb:   0.5,
		MaxDepth:   5,
		Starts:     10,
		TrainFrac:  0.2,
		Reps:       3,
		TestGraphs: 24,
		MaxTarget:  5,
		Seed:       1,
	}
}

// PaperScale is the paper's full experimental setup (Secs. III-IV).
func PaperScale() Scale {
	return Scale{
		NumGraphs:  330,
		Nodes:      8,
		EdgeProb:   0.5,
		MaxDepth:   6,
		Starts:     20,
		TrainFrac:  0.2,
		Reps:       20,
		TestGraphs: 0, // all 264 test graphs
		MaxTarget:  5,
		Seed:       1,
	}
}

// Validate sanity-checks the scale.
func (s Scale) Validate() error {
	if s.NumGraphs < 5 {
		return fmt.Errorf("experiments: NumGraphs %d too small", s.NumGraphs)
	}
	if s.MaxDepth < 2 {
		return fmt.Errorf("experiments: MaxDepth %d < 2", s.MaxDepth)
	}
	if s.MaxTarget < 2 || s.MaxTarget > s.MaxDepth {
		return fmt.Errorf("experiments: MaxTarget %d out of [2, MaxDepth=%d]", s.MaxTarget, s.MaxDepth)
	}
	if s.TrainFrac <= 0 || s.TrainFrac >= 1 {
		return fmt.Errorf("experiments: TrainFrac %v out of (0,1)", s.TrainFrac)
	}
	if s.Reps < 1 {
		return fmt.Errorf("experiments: Reps %d < 1", s.Reps)
	}
	return nil
}

// Env is the shared experimental environment: the generated dataset,
// its train/test split, and the trained GPR predictor. Building it is
// the dominant cost, so experiments share one Env.
type Env struct {
	Scale     Scale
	Data      *core.Data
	TrainIDs  []int
	TestIDs   []int
	Predictor *core.Predictor
}

// NewEnv generates the dataset and trains the default (GPR) predictor.
func NewEnv(s Scale) (*Env, error) {
	return NewEnvCtx(context.Background(), s, nil)
}

// NewEnvCtx is NewEnv with cancellation and telemetry: the context and
// recorder are threaded through dataset generation, so a deadline stops
// the sweep within one optimizer step. Unlike core.GenerateCtx it does
// not return a partial Env — an interrupted dataset cannot back a fair
// experiment — so cancellation surfaces as an error.
func NewEnvCtx(ctx context.Context, s Scale, rec telemetry.Recorder) (*Env, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	cfg := core.DataGenConfig{
		NumGraphs: s.NumGraphs,
		Nodes:     s.Nodes,
		EdgeProb:  s.EdgeProb,
		MaxDepth:  s.MaxDepth,
		Starts:    s.Starts,
		Tol:       1e-6,
		Seed:      s.Seed,
		Workers:   s.Workers,
		Recorder:  rec,
	}
	data, err := core.GenerateCtx(ctx, cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: dataset generation: %w", err)
	}
	return NewEnvFromData(s, data)
}

// NewEnvFromData builds an Env around an existing (e.g. loaded)
// dataset, overriding the scale's generation knobs with the dataset's
// actual configuration.
func NewEnvFromData(s Scale, data *core.Data) (*Env, error) {
	s.NumGraphs = len(data.Problems)
	s.Nodes = data.Config.Nodes
	s.EdgeProb = data.Config.EdgeProb
	s.MaxDepth = data.Config.MaxDepth
	s.Starts = data.Config.Starts
	if s.MaxTarget > s.MaxDepth {
		s.MaxTarget = s.MaxDepth
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	train, test := data.SplitIndices(s.TrainFrac, s.Seed+1)
	pred := core.NewPredictor(nil)
	if err := pred.Train(data, train); err != nil {
		return nil, err
	}
	return &Env{Scale: s, Data: data, TrainIDs: train, TestIDs: test, Predictor: pred}, nil
}

// testSubset returns the test ids capped at Scale.TestGraphs.
func (e *Env) testSubset() []int {
	if e.Scale.TestGraphs > 0 && e.Scale.TestGraphs < len(e.TestIDs) {
		return e.TestIDs[:e.Scale.TestGraphs]
	}
	return e.TestIDs
}

// Optimizers returns the paper's four local optimizers at tolerance
// 1e-6, keyed in the order of Table I.
func Optimizers() []optimize.Optimizer {
	return []optimize.Optimizer{
		&optimize.LBFGSB{Tol: 1e-6},
		&optimize.NelderMead{Tol: 1e-6},
		&optimize.SLSQP{Tol: 1e-6},
		&optimize.COBYLA{Tol: 1e-6},
	}
}

// ModelFactories returns the paper's four regression model families as
// configured for the Sec. III-C prediction-accuracy comparison. The GPR
// here grid-selects the additive linear kernel term (LinearVar < 0):
// the comparison evaluates on in-distribution features (multistart-best
// depth-1 optima), where the richer kernel is strictly better. The
// production Predictor (core.NewPredictor) deliberately uses the
// RBF-only default instead — see EXPERIMENTS.md.
func ModelFactories() map[string]func() ml.Regressor {
	return map[string]func() ml.Regressor{
		"GPR":   func() ml.Regressor { return &ml.GPR{LinearVar: -1} },
		"LM":    func() ml.Regressor { return &ml.Linear{} },
		"RTREE": func() ml.Regressor { return &ml.Tree{} },
		"RSVM":  func() ml.Regressor { return &ml.SVR{} },
	}
}
