package experiments

import (
	"encoding/csv"
	"fmt"
	"strconv"
	"strings"
)

// Each experiment result renders to CSV so the paper's figures can be
// re-plotted with any tool. The first row is a header.

func writeCSV(header []string, rows [][]string) string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	_ = w.Write(header)
	_ = w.WriteAll(rows)
	w.Flush()
	return b.String()
}

func f64(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }

// CSV renders Table I.
func (t Table1Result) CSV() string {
	var rows [][]string
	for _, r := range t.Rows {
		rows = append(rows, []string{
			r.Optimizer, strconv.Itoa(r.Depth),
			f64(r.NaiveMeanAR), f64(r.NaiveSDAR), f64(r.NaiveMeanFC), f64(r.NaiveSDFC),
			f64(r.TwoMeanAR), f64(r.TwoSDAR), f64(r.TwoMeanFC), f64(r.TwoSDFC),
			f64(r.FCReductionPct),
		})
	}
	return writeCSV([]string{
		"optimizer", "p",
		"naive_mean_ar", "naive_sd_ar", "naive_mean_fc", "naive_sd_fc",
		"two_mean_ar", "two_sd_ar", "two_mean_fc", "two_sd_fc",
		"fc_reduction_pct",
	}, rows)
}

// CSV renders the Fig. 1(c) series.
func (f Fig1cResult) CSV() string {
	var rows [][]string
	for _, p := range f.Points {
		rows = append(rows, []string{
			strconv.Itoa(p.Depth),
			f64(p.MeanAR), f64(p.SDAR), f64(p.BestAR), f64(p.WorstAR),
			f64(p.MeanFC), f64(p.SDFC),
		})
	}
	return writeCSV([]string{"p", "mean_ar", "sd_ar", "best_ar", "worst_ar", "mean_fc", "sd_fc"}, rows)
}

// CSV renders the Fig. 2 schedules, one row per (graph, depth, stage).
func (f Fig2Result) CSV() string {
	var rows [][]string
	for _, s := range f.Schedules {
		for i := range s.Gamma {
			rows = append(rows, []string{
				strconv.Itoa(s.GraphID), strconv.Itoa(s.Depth), strconv.Itoa(i + 1),
				f64(s.Gamma[i]), f64(s.Beta[i]), f64(s.AR),
			})
		}
	}
	return writeCSV([]string{"graph", "p", "stage", "gamma", "beta", "ar"}, rows)
}

// CSV renders the Fig. 3 trends, one row per (depth, stage).
func (f Fig3Result) CSV() string {
	var rows [][]string
	for d := range f.GammaByDepth {
		for i := range f.GammaByDepth[d] {
			rows = append(rows, []string{
				strconv.Itoa(d + 1), strconv.Itoa(i + 1),
				f64(f.GammaByDepth[d][i]), f64(f.BetaByDepth[d][i]), f64(f.ARByDepth[d]),
			})
		}
	}
	return writeCSV([]string{"p", "stage", "gamma", "beta", "ar"}, rows)
}

// CSV renders the Fig. 5 correlations, one row per (response, stage).
func (f Fig5Result) CSV() string {
	rows := [][]string{{"r_gamma1_beta1", "", "", f64(f.RGamma1Beta1), ""}}
	emit := func(kind string, list []StageCorrelation) {
		for _, r := range list {
			rows = append(rows, []string{
				kind, strconv.Itoa(r.Stage),
				f64(r.WithGamma1), f64(r.WithBeta1), f64(r.WithDepth),
			})
		}
	}
	emit("gamma", f.Gamma)
	emit("beta", f.Beta)
	return writeCSV([]string{"response", "stage", "r_with_gamma1", "r_with_beta1", "r_with_p"}, rows)
}

// CSV renders the Fig. 6 error distributions.
func (f Fig6Result) CSV() string {
	var rows [][]string
	for _, p := range f.Points {
		rows = append(rows, []string{
			strconv.Itoa(p.Depth), f64(p.MeanPct), f64(p.SDPct), strconv.Itoa(p.N),
		})
	}
	return writeCSV([]string{"p", "mean_pct_err", "sd_pct_err", "n"}, rows)
}

// CSV renders the model comparison.
func (m ModelComparisonResult) CSV() string {
	var rows [][]string
	for _, s := range m.Scores {
		rows = append(rows, []string{
			s.Name, f64(s.Metrics.MSE), f64(s.Metrics.RMSE), f64(s.Metrics.MAE),
			f64(s.Metrics.R2), f64(s.Metrics.R2Adj),
		})
	}
	return writeCSV([]string{"model", "mse", "rmse", "mae", "r2", "r2adj"}, rows)
}

// CSV renders the hierarchical comparison.
func (h HierResult) CSV() string {
	var rows [][]string
	for _, r := range h.Rows {
		rows = append(rows, []string{
			strconv.Itoa(r.Depth),
			f64(r.NaiveMeanFC), f64(r.NaiveMeanAR),
			f64(r.TwoMeanFC), f64(r.TwoMeanAR),
			f64(r.HierMeanFC), f64(r.HierMeanAR),
			f64(r.TwoReductionPct), f64(r.HierReductionPct),
		})
	}
	return writeCSV([]string{
		"p", "naive_fc", "naive_ar", "two_fc", "two_ar", "hier_fc", "hier_ar",
		"two_reduction_pct", "hier_reduction_pct",
	}, rows)
}

// CSV renders the SPSA extension rows.
func (s SPSAResult) CSV() string {
	var rows [][]string
	for _, r := range s.Rows {
		rows = append(rows, []string{
			strconv.Itoa(r.Depth),
			f64(r.NaiveMeanAR), f64(r.NaiveMeanFC),
			f64(r.TwoMeanAR), f64(r.TwoMeanFC),
			f64(r.FCReductionPct),
		})
	}
	return writeCSV([]string{"p", "naive_ar", "naive_fc", "two_ar", "two_fc", "fc_reduction_pct"}, rows)
}

// CSV renders the noise sweep.
func (n NoiseSweepResult) CSV() string {
	var rows [][]string
	for _, p := range n.Points {
		rows = append(rows, []string{f64(p.P2), f64(p.MeanAR), f64(p.SDAR)})
	}
	return writeCSV([]string{"p2", "mean_ar", "sd_ar"}, rows)
}

// CSVName returns the canonical file name for an experiment id.
func CSVName(id string) string { return fmt.Sprintf("%s.csv", id) }
