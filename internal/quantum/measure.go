package quantum

import (
	"fmt"
	"math"
	"math/rand"
)

// MeasureQubit performs a projective Z-basis measurement of qubit q,
// collapsing and renormalizing the state. It returns the observed bit.
func (s *State) MeasureQubit(q int, rng *rand.Rand) int {
	s.checkQubit(q)
	bit := 1 << uint(q)
	p1 := 0.0
	for i, a := range s.amps {
		if i&bit != 0 {
			p1 += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	outcome := 0
	if rng.Float64() < p1 {
		outcome = 1
	}
	// Project and renormalize.
	var norm float64
	if outcome == 1 {
		norm = math.Sqrt(p1)
	} else {
		norm = math.Sqrt(1 - p1)
	}
	if norm == 0 {
		// Degenerate roundoff: the impossible branch was drawn; keep the
		// state and report the certain outcome instead.
		if p1 > 0.5 {
			outcome = 1
			norm = math.Sqrt(p1)
		} else {
			outcome = 0
			norm = math.Sqrt(1 - p1)
		}
	}
	inv := complex(1/norm, 0)
	for i := range s.amps {
		if (i&bit != 0) != (outcome == 1) {
			s.amps[i] = 0
		} else {
			s.amps[i] *= inv
		}
	}
	return outcome
}

// ExpectationZ returns ⟨Zq⟩ for qubit q.
func (s *State) ExpectationZ(q int) float64 {
	s.checkQubit(q)
	bit := 1 << uint(q)
	e := 0.0
	for i, a := range s.amps {
		p := real(a)*real(a) + imag(a)*imag(a)
		if i&bit == 0 {
			e += p
		} else {
			e -= p
		}
	}
	return e
}

// ExpectationZZ returns ⟨Za·Zb⟩ for qubits a and b.
func (s *State) ExpectationZZ(a, b int) float64 {
	s.checkQubit(a)
	s.checkQubit(b)
	abit, bbit := 1<<uint(a), 1<<uint(b)
	e := 0.0
	for i, amp := range s.amps {
		p := real(amp)*real(amp) + imag(amp)*imag(amp)
		if (i&abit != 0) == (i&bbit != 0) {
			e += p
		} else {
			e -= p
		}
	}
	return e
}

// Pauli labels a single-qubit Pauli operator in a PauliString.
type Pauli byte

// Pauli operators (I omitted: identity positions are simply absent).
const (
	PauliX Pauli = 'X'
	PauliY Pauli = 'Y'
	PauliZ Pauli = 'Z'
)

// PauliTerm is one Pauli operator acting on one qubit.
type PauliTerm struct {
	Op    Pauli
	Qubit int
}

// ExpectationPauliString returns ⟨P1⊗P2⊗...⟩ for a product of Pauli
// operators on distinct qubits (identity elsewhere). It does not modify
// the state. Terms on duplicate qubits or with unknown operators are
// rejected with an error.
func (s *State) ExpectationPauliString(terms []PauliTerm) (float64, error) {
	seen := make(map[int]bool, len(terms))
	for _, t := range terms {
		if t.Qubit < 0 || t.Qubit >= s.n {
			return 0, fmt.Errorf("quantum: qubit %d out of range", t.Qubit)
		}
		if seen[t.Qubit] {
			return 0, fmt.Errorf("quantum: duplicate qubit %d in Pauli string", t.Qubit)
		}
		seen[t.Qubit] = true
		switch t.Op {
		case PauliX, PauliY, PauliZ:
		default:
			return 0, fmt.Errorf("quantum: unknown Pauli %q", t.Op)
		}
	}
	// Rotate a copy so every term becomes Z, then sum signed probabilities.
	work := s.Clone()
	zbits := 0
	for _, t := range terms {
		switch t.Op {
		case PauliX:
			work.H(t.Qubit) // H X H = Z
		case PauliY:
			// (HS†) Y (SH) = Z: apply S† then H.
			work.Phase(t.Qubit, -math.Pi/2)
			work.H(t.Qubit)
		}
		zbits |= 1 << uint(t.Qubit)
	}
	e := 0.0
	for i, a := range work.amps {
		p := real(a)*real(a) + imag(a)*imag(a)
		if parityOf(uint64(i)&uint64(zbits)) == 0 {
			e += p
		} else {
			e -= p
		}
	}
	return e, nil
}

// parityOf returns the bit parity of x.
func parityOf(x uint64) int {
	x ^= x >> 32
	x ^= x >> 16
	x ^= x >> 8
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return int(x & 1)
}
