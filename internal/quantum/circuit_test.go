package quantum

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestCircuitBuildAndRun(t *testing.T) {
	c := NewCircuit(2).H(0).CNOT(0, 1)
	s := c.Simulate()
	if math.Abs(s.Probability(0b00)-0.5) > 1e-12 || math.Abs(s.Probability(0b11)-0.5) > 1e-12 {
		t.Errorf("Bell via circuit: %v", s.Probabilities())
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestCircuitMatchesDirectGates(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	c := NewCircuit(3)
	direct := NewState(3)
	for i := 0; i < 30; i++ {
		theta := rng.Float64() * 2 * math.Pi
		q := rng.Intn(3)
		q2 := (q + 1 + rng.Intn(2)) % 3
		switch rng.Intn(12) {
		case 0:
			c.H(q)
			direct.H(q)
		case 1:
			c.X(q)
			direct.X(q)
		case 2:
			c.Y(q)
			direct.Y(q)
		case 3:
			c.Z(q)
			direct.Z(q)
		case 4:
			c.RX(q, theta)
			direct.RX(q, theta)
		case 5:
			c.RY(q, theta)
			direct.RY(q, theta)
		case 6:
			c.RZ(q, theta)
			direct.RZ(q, theta)
		case 7:
			c.Phase(q, theta)
			direct.Phase(q, theta)
		case 8:
			c.CNOT(q, q2)
			direct.CNOT(q, q2)
		case 9:
			c.CZ(q, q2)
			direct.CZ(q, q2)
		case 10:
			c.SWAP(q, q2)
			direct.SWAP(q, q2)
		case 11:
			c.ZZ(q, q2, theta)
			direct.ZZ(q, q2, theta)
		}
	}
	if got := c.Simulate(); !got.Equal(direct, 1e-10) {
		t.Error("circuit result differs from direct gate application")
	}
}

func TestCircuitDepth(t *testing.T) {
	// H on all 3 qubits: parallel → depth 1.
	c := NewCircuit(3).H(0).H(1).H(2)
	if got := c.Depth(); got != 1 {
		t.Errorf("parallel depth = %d, want 1", got)
	}
	// Serial chain on one qubit → depth 3.
	c2 := NewCircuit(2).H(0).X(0).Z(0)
	if got := c2.Depth(); got != 3 {
		t.Errorf("serial depth = %d, want 3", got)
	}
	// CNOT forces both qubits into the same layer.
	c3 := NewCircuit(2).H(0).CNOT(0, 1).H(1)
	if got := c3.Depth(); got != 3 {
		t.Errorf("cnot depth = %d, want 3", got)
	}
	if NewCircuit(1).Depth() != 0 {
		t.Error("empty circuit depth != 0")
	}
}

func TestCircuitCountKind(t *testing.T) {
	c := NewCircuit(2).H(0).H(1).CNOT(0, 1).RZ(1, 0.5)
	if c.CountKind(GateH) != 2 || c.CountKind(GateCNOT) != 1 || c.CountKind(GateRX) != 0 {
		t.Error("CountKind wrong")
	}
}

func TestCircuitOpsCopy(t *testing.T) {
	c := NewCircuit(1).H(0)
	ops := c.Ops()
	ops[0].Kind = GateX
	if c.Ops()[0].Kind != GateH {
		t.Error("Ops returned shared storage")
	}
}

func TestCircuitApplyWidthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCircuit(2).Apply(NewState(3))
}

func TestCircuitAddValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range qubit")
		}
	}()
	NewCircuit(2).H(5)
}

func TestOpAndCircuitString(t *testing.T) {
	c := NewCircuit(2).RZ(0, math.Pi/2).CNOT(0, 1)
	s := c.String()
	if !strings.Contains(s, "RZ(") || !strings.Contains(s, "CNOT q0,q1") {
		t.Errorf("String = %q", s)
	}
	if GateKind(99).String() == "" {
		t.Error("unknown gate kind string empty")
	}
}

func TestCircuitUnitarity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := NewCircuit(4)
	for i := 0; i < 50; i++ {
		q := rng.Intn(4)
		c.RX(q, rng.Float64())
		c.ZZ(q, (q+1)%4, rng.Float64())
	}
	s := c.Simulate()
	if math.Abs(s.Norm()-1) > 1e-10 {
		t.Errorf("norm after 100 gates = %v", s.Norm())
	}
}

func TestCircuitAppend(t *testing.T) {
	a := NewCircuit(2).H(0)
	b := NewCircuit(2).CNOT(0, 1)
	a.Append(b)
	if a.Len() != 2 {
		t.Fatalf("Len = %d", a.Len())
	}
	s := a.Simulate()
	if math.Abs(s.Probability(0b00)-0.5) > 1e-12 || math.Abs(s.Probability(0b11)-0.5) > 1e-12 {
		t.Error("appended circuit wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("width mismatch accepted")
		}
	}()
	a.Append(NewCircuit(3))
}

func TestCircuitInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	c := NewCircuit(3)
	for i := 0; i < 40; i++ {
		q := rng.Intn(3)
		q2 := (q + 1 + rng.Intn(2)) % 3
		theta := rng.Float64() * 2 * math.Pi
		switch rng.Intn(7) {
		case 0:
			c.H(q)
		case 1:
			c.RX(q, theta)
		case 2:
			c.RZ(q, theta)
		case 3:
			c.CNOT(q, q2)
		case 4:
			c.ZZ(q, q2, theta)
		case 5:
			c.Phase(q, theta)
		case 6:
			c.SWAP(q, q2)
		}
	}
	s := randomState(rng, 3)
	orig := s.Clone()
	c.Apply(s)
	c.Inverse().Apply(s)
	if !s.Equal(orig, 1e-9) {
		t.Error("c · c⁻¹ != identity")
	}
	// Inverse must not mutate the original circuit.
	if c.Len() != 40 {
		t.Errorf("Inverse changed original circuit length to %d", c.Len())
	}
}
