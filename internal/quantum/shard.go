package quantum

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Sharded state representation.
//
// A ShardedState holds the 2^n amplitudes of an n-qubit register as
// k = 2^s independently allocated shards of 2^(n−s) amplitudes: shard i
// owns the amplitudes whose basis-state index has high bits i. Each
// shard is owned by one fixed worker goroutine for the lifetime of the
// state, so every in-shard operation — uniform fill, diagonal phase,
// RX butterflies on the low n−s qubits (via the fused LayerRunner),
// chunked reductions — runs with perfect locality and zero cross-shard
// synchronization. On a NUMA machine each shard's pages stay with the
// core that allocated and always touches them; the flat array, by
// contrast, interleaves every worker over one allocation.
//
// Only RX on the top s qubits crosses shards, and it does so as an
// explicit pairwise exchange: qubit n−s+b pairs shard i with shard
// i^(1<<b), and the butterfly combines amplitudes at EQUAL local
// indices of the paired shards. The exchange passes are structured
// exactly like a future cross-process message exchange (ROADMAP item
// 4's coordinator/worker split): each pass names the partner shard and
// touches nothing else, so "read partner amplitudes" can become
// "receive partner's buffer" without reshaping the computation.
//
// Bit-identity with the flat path. The flat fused layer (fused.go)
// applies per amplitude: fill → phase → RX pair (0,1) → (2,3) → … →
// odd final qubit, with fixed-geometry chunk ranges for the phase
// callback and fixed reduction merge order. The sharded layer applies
// the SAME per-amplitude operation sequence: the in-shard LayerRunner
// (with its sweep capped below the exchange qubits and its chunk
// length pinned to the GLOBAL ChunkLen) covers the low pairs, then the
// exchange passes cover the straddle pair, the shard-index pairs and
// the odd final qubit, ascending. Every butterfly uses the identical
// fused 4×4 (or 2×2) arithmetic on the identical quadruple, distinct
// pairs touch disjoint quadruples, and reductions merge per-chunk
// partials in global chunk order — so amplitudes, expectations and
// gradients match the flat path bit for bit at every GOMAXPROCS and
// every shard count.

// shardGroup runs one operation concurrently across the shard workers.
// Worker w (1..k−1) is a long-lived goroutine; rank 0 is the calling
// goroutine. The goroutines reference only the group — never the
// ShardedState — so a dropped state becomes unreachable and its
// finalizer can release the workers.
type shardGroup struct {
	cmd []chan func(int) // helper w reads cmd[w-1]
	wg  sync.WaitGroup
}

func newShardGroup(helpers int) *shardGroup {
	g := &shardGroup{cmd: make([]chan func(int), helpers)}
	for i := range g.cmd {
		ch := make(chan func(int), 1)
		g.cmd[i] = ch
		go func(rank int) {
			for op := range ch {
				op(rank)
				g.wg.Done()
			}
		}(i + 1)
	}
	return g
}

// run executes op(w) for every worker rank 0..k−1 and returns when all
// have finished. The channel send/receive orders the coordinator's
// parameter writes before any worker reads them; wg.Wait orders worker
// writes before the coordinator continues.
func (g *shardGroup) run(op func(int)) {
	if len(g.cmd) == 0 {
		op(0)
		return
	}
	g.wg.Add(len(g.cmd))
	for _, ch := range g.cmd {
		ch <- op
	}
	op(0)
	g.wg.Wait()
}

func (g *shardGroup) close() {
	for _, ch := range g.cmd {
		close(ch)
	}
	g.cmd = nil
}

// ShardedState is an n-qubit register split into 2^shardBits shards,
// initialized to |0…0⟩. It is not safe for concurrent use. Call Close
// when done to release the shard workers promptly; a finalizer backs
// it up for dropped states.
type ShardedState struct {
	n     int // total qubits
	sbits int // qubits per shard
	sdim  int // amplitudes per shard
	clen  int // global fixed chunk length ChunkLen(2^n)
	amp   complex128

	shards  []*State
	runners []*LayerRunner
	wraps   []func(lo, hi int) // per-shard phase adapters (local → global)
	grp     *shardGroup

	// Per-operation parameters: written by the coordinator before the
	// group dispatch, read-only during worker execution.
	theta      float64
	fill       bool
	phaseFn    func(off, lo, hi int)
	cc, cm, mm complex128 // fused pair coefficients
	c1, ms1    complex128 // single-qubit RX coefficients
	exB0, exB1 int        // shard-index bits of the current quad pass

	redBody  func(lo, hi int) (a, b float64)
	eachBody func(lo, hi int)
	parts    []float64

	// Pre-built worker bodies, one closure each, so warm operations
	// allocate nothing.
	opLayer  func(int)
	opPair   func(int)
	opQuad   func(int)
	opSingle func(int)
	opFill   func(int)
	opReduce func(int)
	opEach   func(int)
}

// NewShardedState returns the n-qubit state |0…0⟩ split into
// 2^shardBits shards. Shards must hold at least one fixed-geometry
// chunk each (2^(n−shardBits) ≥ ChunkLen(2^n)) so the global chunk
// layout — and with it every reduction's merge order and every
// streaming kernel's chunk decomposition — survives sharding intact.
// shardBits 0 is valid: one shard, no workers, flat semantics.
func NewShardedState(n, shardBits int) *ShardedState {
	if n < 1 || n > MaxQubits {
		panic(fmt.Sprintf("quantum: qubit count %d out of [1,%d]", n, MaxQubits))
	}
	if shardBits < 0 || shardBits >= n {
		panic(fmt.Sprintf("quantum: shard bits %d out of [0,%d) for %d qubits", shardBits, n, n))
	}
	dim := 1 << uint(n)
	sbits := n - shardBits
	sdim := 1 << uint(sbits)
	clen := ChunkLen(dim)
	if clen > dim {
		clen = dim
	}
	if shardBits > 0 && sdim < clen {
		panic(fmt.Sprintf("quantum: %d-qubit shards are smaller than the fixed chunk length %d; use at most %d shard bits",
			sbits, clen, n-13))
	}
	k := 1 << uint(shardBits)
	ss := &ShardedState{
		n:     n,
		sbits: sbits,
		sdim:  sdim,
		clen:  clen,
		amp:   complex(1/math.Sqrt(float64(dim)), 0),
		parts: make([]float64, 2*(dim/clen)),
	}
	limit := sbits
	if shardBits > 0 && sbits%2 == 1 {
		limit = sbits - 1 // the straddle pair (sbits−1, sbits) belongs to the exchange
	}
	for i := 0; i < k; i++ {
		sh := &State{n: sbits, amps: make([]complex128, sdim), serial: true}
		ampBytes.Add(int64(16 * sdim))
		r := NewLayerRunner(sh)
		r.amp = ss.amp // uniform amplitude of the GLOBAL register
		r.clen = clen
		if shardBits > 0 {
			r.limit = limit
		}
		base := i * sdim
		ss.shards = append(ss.shards, sh)
		ss.runners = append(ss.runners, r)
		ss.wraps = append(ss.wraps, func(lo, hi int) { ss.phaseFn(base, lo, hi) })
	}
	ss.shards[0].amps[0] = 1

	ss.opLayer = func(w int) {
		ph := ss.wraps[w]
		if ss.phaseFn == nil {
			ph = nil
		}
		ss.runners[w].Layer(ss.theta, ss.fill, ph)
	}
	ss.opPair = ss.pairBody
	ss.opQuad = ss.quadBody
	ss.opSingle = ss.singleBody
	ss.opFill = func(w int) {
		amps := ss.shards[w].amps
		for i := range amps {
			amps[i] = ss.amp
		}
	}
	ss.opReduce = func(w int) {
		cps := ss.sdim / ss.clen
		for c := 0; c < cps; c++ {
			gc := w*cps + c
			lo := gc * ss.clen
			ss.parts[2*gc], ss.parts[2*gc+1] = ss.redBody(lo, lo+ss.clen)
		}
	}
	ss.opEach = func(w int) {
		cps := ss.sdim / ss.clen
		for c := 0; c < cps; c++ {
			lo := (w*cps + c) * ss.clen
			ss.eachBody(lo, lo+ss.clen)
		}
	}

	ss.grp = newShardGroup(k - 1)
	runtime.SetFinalizer(ss, (*ShardedState).Close)
	return ss
}

// Close stops the shard workers. The state must not be used afterwards.
// Close is idempotent and runs automatically (via finalizer) when a
// state is garbage collected, so dropped states never leak goroutines.
func (ss *ShardedState) Close() {
	if ss.grp != nil {
		ss.grp.close()
		ss.grp = nil
	}
	runtime.SetFinalizer(ss, nil)
}

// NumQubits returns the register width n.
func (ss *ShardedState) NumQubits() int { return ss.n }

// Dim returns the Hilbert-space dimension 2^n.
func (ss *ShardedState) Dim() int { return len(ss.shards) * ss.sdim }

// NumShards returns the shard count 2^shardBits.
func (ss *ShardedState) NumShards() int { return len(ss.shards) }

// ShardDim returns the amplitudes per shard, 2^(n−shardBits).
func (ss *ShardedState) ShardDim() int { return ss.sdim }

// Shard returns shard i: the 2^(n−shardBits)-qubit-dimension slice of
// amplitudes whose global index has high bits i. The returned State is
// serial-pinned; reading it is always safe between operations.
func (ss *ShardedState) Shard(i int) *State { return ss.shards[i] }

// Amplitude returns the amplitude of global basis state |index⟩.
func (ss *ShardedState) Amplitude(index uint64) complex128 {
	return ss.shards[index>>uint(ss.sbits)].amps[index&uint64(ss.sdim-1)]
}

// FillUniform overwrites the state with the uniform superposition, each
// worker filling its own shard.
func (ss *ShardedState) FillUniform() {
	ss.group().run(ss.opFill)
}

func (ss *ShardedState) group() *shardGroup {
	if ss.grp == nil {
		panic("quantum: operation on a closed ShardedState")
	}
	return ss.grp
}

// Layer applies one fused QAOA stage — optional uniform refill, the
// caller's phase separator, RX(theta) on every qubit — with amplitudes
// bit-identical to LayerRunner.Layer on the flat state. The phase
// callback receives the shard's global base offset plus shard-LOCAL
// chunk bounds (off+lo … off+hi is the global range), over the global
// fixed chunk geometry; nil skips the phase. Everything below the
// shard-index qubits runs in-shard on the owning workers; the top
// qubits run as cross-shard exchange passes.
func (ss *ShardedState) Layer(theta float64, fill bool, phase func(off, lo, hi int)) {
	sin, cos := math.Sincos(theta / 2)
	c := complex(cos, 0)
	ms := complex(0, -sin)
	ss.c1, ss.ms1 = c, ms
	ss.cc, ss.cm, ss.mm = c*c, c*ms, ms*ms
	ss.theta, ss.fill, ss.phaseFn = theta, fill, phase

	g := ss.group()
	g.run(ss.opLayer) // fill + phase + all RX pairs below the exchange qubits
	ss.phaseFn = nil
	if len(ss.shards) == 1 {
		return
	}

	// Exchange passes, ascending qubit order: the straddle pair when the
	// shard width is odd, then one 4-shard pass per shard-index pair,
	// then the odd final qubit.
	q := ss.sbits
	if ss.sbits%2 == 1 {
		g.run(ss.opPair)
		q = ss.sbits + 1
	}
	for ; q+1 < ss.n; q += 2 {
		ss.exB0, ss.exB1 = q-ss.sbits, q+1-ss.sbits
		g.run(ss.opQuad)
	}
	if ss.n%2 == 1 {
		g.run(ss.opSingle)
	}
}

// pairBody is the straddle exchange: the RX pair (sbits−1, sbits) whose
// low qubit is the shard's top local bit and whose high qubit is shard-
// index bit 0. Shards (i, i^1) pair up; the two owning workers split
// the representative range (local indices with the top bit clear), so
// writes are disjoint and the schedule is fixed.
func (ss *ShardedState) pairBody(w int) {
	a := ss.shards[w&^1].amps
	b := ss.shards[w|1].amps
	hb := ss.sdim >> 1
	span := hb >> 1
	lo := (w & 1) * span
	hi := lo + span
	cc, cm, mm := ss.cc, ss.cm, ss.mm
	for l := lo; l < hi; l++ {
		a00, a01, a10, a11 := a[l], a[l+hb], b[l], b[l+hb]
		a[l] = cc*a00 + cm*(a01+a10) + mm*a11
		a[l+hb] = cc*a01 + cm*(a00+a11) + mm*a10
		b[l] = cc*a10 + cm*(a00+a11) + mm*a01
		b[l+hb] = cc*a11 + cm*(a01+a10) + mm*a00
	}
}

// quadBody is one 4-shard exchange pass: the fused RX pair on global
// qubits (sbits+exB0, sbits+exB1) combines equal local indices of the
// four shards whose indices differ in bits exB0/exB1. Each of the
// quad's four workers takes one quarter of the local index range —
// disjoint writes, fixed schedule, the exact rxPairRange arithmetic.
func (ss *ShardedState) quadBody(w int) {
	b0 := 1 << uint(ss.exB0)
	b1 := 1 << uint(ss.exB1)
	base := w &^ (b0 | b1)
	s0 := ss.shards[base].amps
	s1 := ss.shards[base|b0].amps
	s2 := ss.shards[base|b1].amps
	s3 := ss.shards[base|b0|b1].amps
	rank := (w >> uint(ss.exB0) & 1) | (w >> uint(ss.exB1) & 1 << 1)
	span := ss.sdim >> 2
	lo := rank * span
	hi := lo + span
	cc, cm, mm := ss.cc, ss.cm, ss.mm
	for l := lo; l < hi; l++ {
		a00, a01, a10, a11 := s0[l], s1[l], s2[l], s3[l]
		s0[l] = cc*a00 + cm*(a01+a10) + mm*a11
		s1[l] = cc*a01 + cm*(a00+a11) + mm*a10
		s2[l] = cc*a10 + cm*(a00+a11) + mm*a01
		s3[l] = cc*a11 + cm*(a01+a10) + mm*a00
	}
}

// singleBody is the 2-shard exchange for the odd final qubit n−1
// (shard-index top bit): RX applied between equal local indices of
// shards (i, i^(k/2)), each pair's two workers splitting the range.
func (ss *ShardedState) singleBody(w int) {
	bit := len(ss.shards) >> 1
	a := ss.shards[w&^bit].amps
	b := ss.shards[w|bit].amps
	rank := 0
	if w&bit != 0 {
		rank = 1
	}
	span := ss.sdim >> 1
	lo := rank * span
	hi := lo + span
	c, ms := ss.c1, ss.ms1
	for l := lo; l < hi; l++ {
		x, y := a[l], b[l]
		a[l] = c*x + ms*y
		b[l] = ms*x + c*y
	}
}

// Reduce evaluates body over every fixed-geometry chunk of the GLOBAL
// index range [0, 2^n) — each chunk executed by the worker owning its
// shard — and combines the per-chunk partials left-to-right in global
// chunk order: the exact merge ReduceChunks performs on a flat state,
// so sharded reductions are bit-identical to flat ones. body receives
// global [lo, hi) bounds; use ShardDim to map into shard-local ranges.
func (ss *ShardedState) Reduce(body func(lo, hi int) (a, b float64)) (a, b float64) {
	ss.redBody = body
	ss.group().run(ss.opReduce)
	ss.redBody = nil
	nc := ss.Dim() / ss.clen
	for c := 0; c < nc; c++ {
		a += ss.parts[2*c]
		b += ss.parts[2*c+1]
	}
	return a, b
}

// ForEach runs body over every fixed-geometry chunk of the global index
// range, each chunk on the worker owning its shard — the sharded
// ForEachChunk. body receives global [lo, hi) bounds.
func (ss *ShardedState) ForEach(body func(lo, hi int)) {
	ss.eachBody = body
	ss.group().run(ss.opEach)
	ss.eachBody = nil
}

// ShardedSumXRange returns one global chunk's contribution to
// ⟨s|Σ_q X_q|t⟩ in split real/imag form — the sharded form of
// InnerProductSumXRange, with identical accumulation order. For qubits
// below the shard width the partner amplitude is shard-local; for the
// shard-index qubits it sits at the SAME local index of the partner
// shard (read-only, so chunks stay write-disjoint). Call it from a
// Reduce body over two same-geometry states.
func ShardedSumXRange(s, t *ShardedState, lo, hi int) (re, im float64) {
	if s.n != t.n || s.sbits != t.sbits {
		panic("quantum: geometry mismatch in ShardedSumXRange")
	}
	sbits := uint(s.sbits)
	si := lo >> sbits
	sa := s.shards[si].amps
	ta := t.shards[si].amps
	llo := lo & (s.sdim - 1)
	lhi := llo + (hi - lo)
	span := hi - lo
	for q := 0; q < s.n; q++ {
		bit := 1 << uint(q)
		switch {
		case bit < span:
			// Pair fully inside the chunk: same nested walk as the flat
			// kernel, over shard-local indices.
			for base := llo; base < lhi; base += bit << 1 {
				for i := base; i < base+bit; i++ {
					j := i | bit
					a, b := sa[i], ta[j]
					c, d := sa[j], ta[i]
					re += real(a)*real(b) + imag(a)*imag(b) + real(c)*real(d) + imag(c)*imag(d)
					im += real(a)*imag(b) - imag(a)*real(b) + real(c)*imag(d) - imag(c)*real(d)
				}
			}
		case lo&bit != 0:
			// Partner chunk owns these pairs.
		case bit < s.sdim:
			// Whole chunk is the representative; the partner range lives
			// bit elements ahead in the same shard.
			for i := llo; i < lhi; i++ {
				j := i | bit
				a, b := sa[i], ta[j]
				c, d := sa[j], ta[i]
				re += real(a)*real(b) + imag(a)*imag(b) + real(c)*real(d) + imag(c)*imag(d)
				im += real(a)*imag(b) - imag(a)*real(b) + real(c)*imag(d) - imag(c)*real(d)
			}
		default:
			// Shard-index qubit: the partner amplitudes sit at the same
			// local indices of the partner shard.
			pj := (lo | bit) >> sbits
			pa := s.shards[pj].amps
			pt := t.shards[pj].amps
			for i := llo; i < lhi; i++ {
				a, b := sa[i], pt[i]
				c, d := pa[i], ta[i]
				re += real(a)*real(b) + imag(a)*imag(b) + real(c)*real(d) + imag(c)*imag(d)
				im += real(a)*imag(b) - imag(a)*real(b) + real(c)*imag(d) - imag(c)*real(d)
			}
		}
	}
	return re, im
}
