package quantum

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeasureQubitDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := NewBasisState(2, 0b10)
	if got := s.MeasureQubit(1, rng); got != 1 {
		t.Errorf("measured %d on |10>, want 1", got)
	}
	if got := s.MeasureQubit(0, rng); got != 0 {
		t.Errorf("measured %d on qubit 0 of |10>, want 0", got)
	}
	if math.Abs(s.Norm()-1) > 1e-12 {
		t.Errorf("norm after measurement = %v", s.Norm())
	}
}

func TestMeasureQubitCollapses(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Bell state: measuring qubit 0 collapses qubit 1 to the same value.
	for trial := 0; trial < 20; trial++ {
		s := NewState(2)
		s.H(0)
		s.CNOT(0, 1)
		m0 := s.MeasureQubit(0, rng)
		m1 := s.MeasureQubit(1, rng)
		if m0 != m1 {
			t.Fatalf("Bell measurement disagreed: %d vs %d", m0, m1)
		}
	}
}

func TestMeasureQubitStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ones := 0
	const trials = 5000
	for i := 0; i < trials; i++ {
		s := NewState(1)
		s.RY(0, 2*math.Pi/6) // P(1) = sin²(π/6) = 0.25
		ones += s.MeasureQubit(0, rng)
	}
	frac := float64(ones) / trials
	if math.Abs(frac-0.25) > 0.03 {
		t.Errorf("P(1) ≈ %v, want 0.25", frac)
	}
}

func TestExpectationZ(t *testing.T) {
	s := NewState(2)
	if got := s.ExpectationZ(0); math.Abs(got-1) > 1e-12 {
		t.Errorf("<Z>|00> = %v, want 1", got)
	}
	s.X(1)
	if got := s.ExpectationZ(1); math.Abs(got+1) > 1e-12 {
		t.Errorf("<Z1> after X = %v, want -1", got)
	}
	h := NewState(1)
	h.H(0)
	if got := h.ExpectationZ(0); math.Abs(got) > 1e-12 {
		t.Errorf("<Z>|+> = %v, want 0", got)
	}
}

func TestExpectationZZ(t *testing.T) {
	bell := NewState(2)
	bell.H(0)
	bell.CNOT(0, 1)
	if got := bell.ExpectationZZ(0, 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("<ZZ> Bell = %v, want 1", got)
	}
	anti := NewState(2)
	anti.H(0)
	anti.CNOT(0, 1)
	anti.X(1) // |01>+|10>
	if got := anti.ExpectationZZ(0, 1); math.Abs(got+1) > 1e-12 {
		t.Errorf("<ZZ> anti-Bell = %v, want -1", got)
	}
}

func TestExpectationPauliString(t *testing.T) {
	// |+> has <X> = 1.
	s := NewState(2)
	s.H(0)
	got, err := s.ExpectationPauliString([]PauliTerm{{Op: PauliX, Qubit: 0}})
	if err != nil || math.Abs(got-1) > 1e-12 {
		t.Errorf("<X>|+> = %v (err %v), want 1", got, err)
	}
	// Y eigenstate: S H |0> = (|0> + i|1>)/√2 has <Y> = 1.
	y := NewState(1)
	y.H(0)
	y.Phase(0, math.Pi/2)
	got, err = y.ExpectationPauliString([]PauliTerm{{Op: PauliY, Qubit: 0}})
	if err != nil || math.Abs(got-1) > 1e-12 {
		t.Errorf("<Y> = %v (err %v), want 1", got, err)
	}
	// Bell state: <XX> = 1, <ZZ> = 1, <XZ> = 0.
	bell := NewState(2)
	bell.H(0)
	bell.CNOT(0, 1)
	xx, _ := bell.ExpectationPauliString([]PauliTerm{{PauliX, 0}, {PauliX, 1}})
	zz, _ := bell.ExpectationPauliString([]PauliTerm{{PauliZ, 0}, {PauliZ, 1}})
	xz, _ := bell.ExpectationPauliString([]PauliTerm{{PauliX, 0}, {PauliZ, 1}})
	if math.Abs(xx-1) > 1e-12 || math.Abs(zz-1) > 1e-12 || math.Abs(xz) > 1e-12 {
		t.Errorf("Bell <XX>=%v <ZZ>=%v <XZ>=%v", xx, zz, xz)
	}
	// The state must not be modified.
	if math.Abs(bell.Probability(0)-0.5) > 1e-12 {
		t.Error("ExpectationPauliString modified the state")
	}
}

func TestExpectationPauliStringValidation(t *testing.T) {
	s := NewState(2)
	if _, err := s.ExpectationPauliString([]PauliTerm{{PauliX, 5}}); err == nil {
		t.Error("out-of-range qubit accepted")
	}
	if _, err := s.ExpectationPauliString([]PauliTerm{{PauliX, 0}, {PauliZ, 0}}); err == nil {
		t.Error("duplicate qubit accepted")
	}
	if _, err := s.ExpectationPauliString([]PauliTerm{{Pauli('Q'), 0}}); err == nil {
		t.Error("unknown Pauli accepted")
	}
}

// The Z-string expectation must agree with ExpectationZZ.
func TestPauliStringMatchesZZ(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomState(rng, 4)
		a, b := rng.Intn(4), rng.Intn(4)
		if a == b {
			return true
		}
		got, err := s.ExpectationPauliString([]PauliTerm{{PauliZ, a}, {PauliZ, b}})
		if err != nil {
			return false
		}
		return math.Abs(got-s.ExpectationZZ(a, b)) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Pauli expectations are always real numbers in [-1, 1].
func TestPauliExpectationRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomState(rng, 3)
		ops := []Pauli{PauliX, PauliY, PauliZ}
		terms := []PauliTerm{{ops[rng.Intn(3)], rng.Intn(3)}}
		got, err := s.ExpectationPauliString(terms)
		if err != nil {
			return false
		}
		return got >= -1-1e-10 && got <= 1+1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestParityOf(t *testing.T) {
	cases := map[uint64]int{0: 0, 1: 1, 3: 0, 7: 1, 0b1010: 0, 1 << 40: 1}
	for x, want := range cases {
		if got := parityOf(x); got != want {
			t.Errorf("parity(%b) = %d, want %d", x, got, want)
		}
	}
}
