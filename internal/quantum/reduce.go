package quantum

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Deterministic fixed-geometry chunk machinery.
//
// Every reduction over the amplitude array (norms, inner products,
// diagonal expectations, mixer matrix elements) and every streamed
// diagonal kernel runs over the SAME chunk layout: the array is split
// into contiguous chunks of ReduceChunkLen elements — a geometry fixed
// by the dimension alone, never by GOMAXPROCS — and per-chunk partial
// results are combined left-to-right in chunk order. Workers may
// compute chunks in any order on any number of goroutines; because the
// merge order and the within-chunk accumulation order are fixed, the
// result is bit-identical at 1, 2, or 64 workers. Arrays no longer than
// one chunk reduce in a single serial pass, so registers of up to 13
// qubits keep the exact summation order (and therefore the exact bits)
// of the pre-chunking serial kernels.

// ReduceChunkLen is the fixed chunk length of the deterministic
// reduction geometry: 2^13 amplitudes = 128 KiB of complex128 per
// chunk, small enough to block for L2 and large enough to amortize
// scheduling.
const ReduceChunkLen = 1 << 13

// ParallelDim is the state-vector length from which kernels fan chunks
// out across goroutines. Below it (n < 16 qubits) the whole vector fits
// in cache and goroutine fan-out costs more than it saves; at and above
// it, element-wise kernels and chunk reductions use up to GOMAXPROCS
// workers.
const ParallelDim = 1 << 16

// parallelDim is the internal alias predating the exported constant.
const parallelDim = ParallelDim

// reduceChunkCount returns the number of fixed-geometry chunks for an
// array of length dim (a power of two).
func reduceChunkCount(dim int) int {
	if dim <= ReduceChunkLen {
		return 1
	}
	return dim / ReduceChunkLen
}

// reduceParallel reports whether chunk work for an array of length dim
// should fan out across goroutines. The answer never changes the chunk
// geometry or merge order, only the scheduling.
func reduceParallel(dim int) bool {
	return dim >= ParallelDim && runtime.GOMAXPROCS(0) > 1
}

// partialPool recycles the per-chunk partial buffers of parallel
// reductions so warm reductions do not allocate per call.
var partialPool = sync.Pool{
	New: func() any {
		s := make([]float64, 0, 1024)
		return &s
	},
}

// ReduceChunks evaluates f over every fixed-geometry chunk of [0, dim)
// and returns the two partial sums combined in chunk order. f must be
// pure over its range (no shared mutable state); it receives disjoint
// [lo, hi) ranges. The combination a = ((a₀+a₁)+a₂)+… is identical
// whether chunks run serially or on any number of workers, so results
// are bit-reproducible across GOMAXPROCS settings.
func ReduceChunks(dim int, f func(lo, hi int) (a, b float64)) (a, b float64) {
	nc := reduceChunkCount(dim)
	if nc == 1 {
		return f(0, dim)
	}
	if !reduceParallel(dim) {
		for c := 0; c < nc; c++ {
			pa, pb := f(c*ReduceChunkLen, (c+1)*ReduceChunkLen)
			a += pa
			b += pb
		}
		return a, b
	}
	buf := partialPool.Get().(*[]float64)
	parts := *buf
	if cap(parts) < 2*nc {
		parts = make([]float64, 2*nc)
	} else {
		parts = parts[:2*nc]
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > nc {
		workers = nc
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(atomic.AddInt64(&next, 1)) - 1
				if c >= nc {
					return
				}
				parts[2*c], parts[2*c+1] = f(c*ReduceChunkLen, (c+1)*ReduceChunkLen)
			}
		}()
	}
	wg.Wait()
	for c := 0; c < nc; c++ {
		a += parts[2*c]
		b += parts[2*c+1]
	}
	*buf = parts
	partialPool.Put(buf)
	return a, b
}

// ForEachChunk runs f over every fixed-geometry chunk of [0, dim),
// fanning out across goroutines for large dim. Chunks are disjoint
// [lo, hi) ranges in the same layout ReduceChunks uses, so streamed
// element-wise kernels whose per-element values depend on the chunk
// base (incremental cost streaming) see the same ranges at every
// worker count.
func ForEachChunk(dim int, f func(lo, hi int)) {
	nc := reduceChunkCount(dim)
	if nc == 1 {
		f(0, dim)
		return
	}
	if !reduceParallel(dim) {
		for c := 0; c < nc; c++ {
			f(c*ReduceChunkLen, (c+1)*ReduceChunkLen)
		}
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > nc {
		workers = nc
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(atomic.AddInt64(&next, 1)) - 1
				if c >= nc {
					return
				}
				f(c*ReduceChunkLen, (c+1)*ReduceChunkLen)
			}
		}()
	}
	wg.Wait()
}
