package quantum

import (
	"runtime"
)

// Deterministic fixed-geometry chunk machinery.
//
// Every reduction over the amplitude array (norms, inner products,
// diagonal expectations, mixer matrix elements) and every streamed
// diagonal kernel runs over the SAME chunk layout: the array is split
// into contiguous chunks of ChunkLen(dim) elements — a geometry fixed
// by the dimension alone, never by GOMAXPROCS — and per-chunk partial
// results are combined left-to-right in chunk order. Workers may
// compute chunks in any order on any number of goroutines; because the
// merge order and the within-chunk accumulation order are fixed, the
// result is bit-identical at 1, 2, or 64 workers. Arrays no longer than
// one chunk reduce in a single serial pass, so registers of up to 13
// qubits keep the exact summation order (and therefore the exact bits)
// of the pre-chunking serial kernels.
//
// Chunk work is executed by the persistent worker pool (pool.go); the
// pool only ever changes WHO computes a chunk, never which chunks
// exist or how partials merge.

// ReduceChunkLen is the base chunk length of the deterministic
// reduction geometry: 2^13 amplitudes = 128 KiB of complex128 per
// chunk, small enough to block for L2 and large enough to amortize
// scheduling.
const ReduceChunkLen = 1 << 13

// LargeChunkDim is the dimension from which the chunk length steps up
// to LargeReduceChunkLen: at 2^20 amplitudes and beyond, 2^13-element
// chunks mean ≥128 dispatches' worth of scheduling per pass, so larger
// chunks amortize better while 2^15 complex128 (512 KiB) still blocks
// within L2 on current cores.
const LargeChunkDim = 1 << 20

// LargeReduceChunkLen is the chunk length for dimensions of
// LargeChunkDim and above.
const LargeReduceChunkLen = 1 << 15

// ParallelDim is the state-vector length from which kernels fan chunks
// out across goroutines. Below it (n < 16 qubits) the whole vector fits
// in cache and fan-out costs more than it saves; at and above it,
// element-wise kernels and chunk reductions use the worker pool.
const ParallelDim = 1 << 16

// ChunkLen returns the fixed chunk length for an array of length dim —
// a pure function of the dimension, so the chunk geometry (and with it
// every reduction's merge order) never depends on GOMAXPROCS. Arrays
// shorter than one chunk are processed as a single range.
func ChunkLen(dim int) int {
	if dim >= LargeChunkDim {
		return LargeReduceChunkLen
	}
	return ReduceChunkLen
}

// reduceChunkCount returns the number of fixed-geometry chunks for an
// array of length dim (a power of two).
func reduceChunkCount(dim int) int {
	clen := ChunkLen(dim)
	if dim <= clen {
		return 1
	}
	return dim / clen
}

// reduceParallel reports whether chunk work for an array of length dim
// should fan out across the worker pool. The answer never changes the
// chunk geometry or merge order, only the scheduling.
func reduceParallel(dim int) bool {
	return dim >= ParallelDim && runtime.GOMAXPROCS(0) > 1
}

// ReduceChunks evaluates f over every fixed-geometry chunk of [0, dim)
// and returns the two partial sums combined in chunk order. f must be
// pure over its range (no shared mutable state); it receives disjoint
// [lo, hi) ranges. The combination a = ((a₀+a₁)+a₂)+… is identical
// whether chunks run serially or on any number of workers, so results
// are bit-reproducible across GOMAXPROCS settings.
func ReduceChunks(dim int, f func(lo, hi int) (a, b float64)) (a, b float64) {
	nc := reduceChunkCount(dim)
	if nc == 1 {
		return f(0, dim)
	}
	clen := ChunkLen(dim)
	if !reduceParallel(dim) {
		for c := 0; c < nc; c++ {
			pa, pb := f(c*clen, (c+1)*clen)
			a += pa
			b += pb
		}
		return a, b
	}
	return dispatchReduce(nc, clen, f)
}

// ForEachChunk runs f over every fixed-geometry chunk of [0, dim),
// fanning out across the worker pool for large dim. Chunks are disjoint
// [lo, hi) ranges in the same layout ReduceChunks uses, so streamed
// element-wise kernels whose per-element values depend on the chunk
// base (incremental cost streaming) see the same ranges at every
// worker count.
func ForEachChunk(dim int, f func(lo, hi int)) {
	nc := reduceChunkCount(dim)
	if nc == 1 {
		f(0, dim)
		return
	}
	clen := ChunkLen(dim)
	if !reduceParallel(dim) {
		for c := 0; c < nc; c++ {
			f(c*clen, (c+1)*clen)
		}
		return
	}
	dispatchChunks(nc, clen, f)
}
