package quantum

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// Cross-GOMAXPROCS bit-identity suite. Every kernel that fans out across
// goroutines — element-wise gates and fixed-geometry reductions alike —
// must produce EXACTLY the same bits at 1, 2, and 8 workers. Tolerance
// comparisons would hide merge-order bugs, so everything here compares
// with == on float64/complex128 values.

// withWorkers runs fn under each GOMAXPROCS setting and hands the
// results to check for exact comparison against the 1-worker baseline.
func withWorkers(t *testing.T, workers []int, fn func() any, check func(t *testing.T, baseline, got any, w int)) {
	t.Helper()
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	var baseline any
	for _, w := range workers {
		runtime.GOMAXPROCS(w)
		got := fn()
		if baseline == nil {
			baseline = got
			continue
		}
		check(t, baseline, got, w)
	}
}

var identityWorkers = []int{1, 2, 8}

// randomParallelState builds a deterministic pseudo-random normalized
// state large enough (n ≥ 16) to engage the parallel kernel paths.
func randomParallelState(n int, seed int64) *State {
	rng := rand.New(rand.NewSource(seed))
	s := NewState(n)
	for i := range s.amps {
		s.amps[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	s.Normalize()
	return s
}

func ampsEqualExact(t *testing.T, name string, a, b *State, w int) {
	t.Helper()
	for i := range a.amps {
		if a.amps[i] != b.amps[i] {
			t.Fatalf("%s: amplitude %d differs at GOMAXPROCS=%d: %v != %v",
				name, i, w, b.amps[i], a.amps[i])
		}
	}
}

func TestGateKernelsBitIdenticalAcrossWorkers(t *testing.T) {
	const n = 16 // 2^16 amplitudes: at the ParallelDim threshold
	kernels := []struct {
		name string
		run  func(s *State)
	}{
		{"RXAll", func(s *State) { s.RXAll(0.7321) }},
		{"Apply1Q-RX", func(s *State) { s.RX(3, 1.234) }},
		{"Apply1Q-highbit", func(s *State) { s.RX(n-1, 0.456) }},
		{"RZ", func(s *State) { s.RZ(5, 0.987) }},
		{"ZZ", func(s *State) { s.ZZ(2, 13, 0.654) }},
		{"Normalize", func(s *State) { s.amps[0] *= 3; s.Normalize() }},
		{"FillUniform", func(s *State) { s.FillUniform() }},
	}
	for _, k := range kernels {
		k := k
		t.Run(k.name, func(t *testing.T) {
			withWorkers(t, identityWorkers,
				func() any {
					s := randomParallelState(n, 42)
					k.run(s)
					return s
				},
				func(t *testing.T, baseline, got any, w int) {
					ampsEqualExact(t, k.name, baseline.(*State), got.(*State), w)
				})
		})
	}
}

func TestDiagonalKernelsBitIdenticalAcrossWorkers(t *testing.T) {
	const n = 16
	dim := 1 << n
	rng := rand.New(rand.NewSource(7))
	phases := make([]float64, dim)
	idx := make([]int32, dim)
	diag := make([]float64, dim)
	for i := range phases {
		phases[i] = rng.NormFloat64()
		idx[i] = int32(i % 17)
		diag[i] = rng.NormFloat64()
	}
	factors := make([]complex128, 17)
	for i := range factors {
		sin, cos := math.Sincos(0.3 * float64(i))
		factors[i] = complex(cos, sin)
	}
	kernels := []struct {
		name string
		run  func(s *State)
	}{
		{"ApplyDiagonalPhase", func(s *State) { s.ApplyDiagonalPhase(phases) }},
		{"MulDiagonalIndexed", func(s *State) { s.MulDiagonalIndexed(idx, factors) }},
		{"MulDiagonalReal", func(s *State) { s.MulDiagonalReal(diag) }},
		{"CopyFrom", func(s *State) { u := NewState(n); u.CopyFrom(s); *s = *u }},
	}
	for _, k := range kernels {
		k := k
		t.Run(k.name, func(t *testing.T) {
			withWorkers(t, identityWorkers,
				func() any {
					s := randomParallelState(n, 43)
					k.run(s)
					return s
				},
				func(t *testing.T, baseline, got any, w int) {
					ampsEqualExact(t, k.name, baseline.(*State), got.(*State), w)
				})
		})
	}
}

func TestReductionsBitIdenticalAcrossWorkers(t *testing.T) {
	const n = 16
	dim := 1 << n
	rng := rand.New(rand.NewSource(11))
	diag := make([]float64, dim)
	for i := range diag {
		diag[i] = rng.NormFloat64()
	}
	reductions := []struct {
		name string
		run  func(s, u *State) any
	}{
		{"Norm", func(s, u *State) any { return s.Norm() }},
		{"InnerProduct", func(s, u *State) any { return s.InnerProduct(u) }},
		{"ExpectationDiagonal", func(s, u *State) any { return s.ExpectationDiagonal(diag) }},
		{"InnerProductDiagonal", func(s, u *State) any { return s.InnerProductDiagonal(u, diag) }},
		{"InnerProductSumX", func(s, u *State) any { return s.InnerProductSumX(u) }},
	}
	for _, r := range reductions {
		r := r
		t.Run(r.name, func(t *testing.T) {
			withWorkers(t, identityWorkers,
				func() any {
					s := randomParallelState(n, 44)
					u := randomParallelState(n, 45)
					return r.run(s, u)
				},
				func(t *testing.T, baseline, got any, w int) {
					if baseline != got {
						t.Fatalf("%s: GOMAXPROCS=%d result %v != baseline %v",
							r.name, w, got, baseline)
					}
				})
		})
	}
}

// TestChunkedReductionMatchesSerialSum pins the chunk geometry itself:
// at n=14 (4 chunks, below the parallel threshold) the chunked sum must
// equal the explicit ((c0+c1)+c2)+c3 merge, and ReduceChunks must hand
// out exactly the fixed [c·8192, (c+1)·8192) ranges.
func TestChunkedReductionMatchesSerialSum(t *testing.T) {
	const n = 14
	dim := 1 << n
	s := randomParallelState(n, 99)
	var want float64
	for c := 0; c < dim/ReduceChunkLen; c++ {
		want += normSqPartial(s.amps[c*ReduceChunkLen : (c+1)*ReduceChunkLen])
	}
	if got := s.Norm(); got != math.Sqrt(want) {
		t.Fatalf("chunked Norm %v != fixed-order merge %v", got, math.Sqrt(want))
	}

	var ranges [][2]int
	ForEachChunk(dim, func(lo, hi int) { ranges = append(ranges, [2]int{lo, hi}) })
	if len(ranges) != dim/ReduceChunkLen {
		t.Fatalf("ForEachChunk produced %d chunks, want %d", len(ranges), dim/ReduceChunkLen)
	}
	for c, r := range ranges {
		if r[0] != c*ReduceChunkLen || r[1] != (c+1)*ReduceChunkLen {
			t.Fatalf("chunk %d range %v, want [%d,%d)", c, r, c*ReduceChunkLen, (c+1)*ReduceChunkLen)
		}
	}
}

// TestSmallRegisterSingleChunk pins the compatibility guarantee: up to
// 2^13 amplitudes everything reduces in one serial pass, preserving the
// exact bits of the pre-chunking kernels.
func TestSmallRegisterSingleChunk(t *testing.T) {
	for _, n := range []int{1, 8, 13} {
		if got := reduceChunkCount(1 << n); got != 1 {
			t.Fatalf("n=%d: reduceChunkCount = %d, want 1", n, got)
		}
	}
	if got := reduceChunkCount(1 << 14); got != 2 {
		t.Fatalf("n=14: reduceChunkCount = %d, want 2", got)
	}
}

func TestSampleOutcomesMatchesSampleCounts(t *testing.T) {
	s := randomKernelState(rand.New(rand.NewSource(5)), 10)
	for seed := int64(0); seed < 3; seed++ {
		slow := sampleCountsLinear(s, 4000, rand.New(rand.NewSource(seed)))
		pairs := s.SampleOutcomes(4000, rand.New(rand.NewSource(seed)))
		if len(pairs) != len(slow) {
			t.Fatalf("seed %d: %d distinct outcomes, want %d", seed, len(pairs), len(slow))
		}
		total := 0
		for i, p := range pairs {
			if slow[p.Outcome] != p.Count {
				t.Fatalf("seed %d: outcome %d count %d, want %d", seed, p.Outcome, p.Count, slow[p.Outcome])
			}
			if i > 0 && pairs[i-1].Outcome >= p.Outcome {
				t.Fatalf("seed %d: outcomes not strictly sorted at %d", seed, i)
			}
			total += p.Count
		}
		if total != 4000 {
			t.Fatalf("seed %d: counts sum to %d, want 4000", seed, total)
		}
	}
}

// TestSampleOutcomesAllocBudget pins the satellite target: a warm
// SampleOutcomes call allocates at most twice (the result slice; one
// spare for pool churn), down from 14 allocations for the map-based
// SampleCounts path.
func TestSampleOutcomesAllocBudget(t *testing.T) {
	s := randomKernelState(rand.New(rand.NewSource(6)), 10)
	rng := rand.New(rand.NewSource(1))
	s.SampleOutcomes(1024, rng) // warm the pool
	allocs := testing.AllocsPerRun(20, func() {
		s.SampleOutcomes(1024, rng)
	})
	if allocs > 2 {
		t.Fatalf("SampleOutcomes allocates %.0f times per run, want <= 2", allocs)
	}
}
