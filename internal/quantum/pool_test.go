package quantum

import (
	"runtime"
	"sync"
	"testing"
)

// The chunk length is a pure function of the dimension: 2^13 below 2^20
// amplitudes, 2^15 at and above — never a function of GOMAXPROCS.
func TestChunkGeometry(t *testing.T) {
	cases := []struct{ dim, clen, count int }{
		{1 << 10, ReduceChunkLen, 1},
		{1 << 13, ReduceChunkLen, 1},
		{1 << 14, ReduceChunkLen, 2},
		{1 << 19, ReduceChunkLen, 1 << 6},
		{1 << 20, LargeReduceChunkLen, 1 << 5},
		{1 << 24, LargeReduceChunkLen, 1 << 9},
	}
	for _, c := range cases {
		if got := ChunkLen(c.dim); got != c.clen {
			t.Errorf("ChunkLen(%d) = %d, want %d", c.dim, got, c.clen)
		}
		if got := reduceChunkCount(c.dim); got != c.count {
			t.Errorf("reduceChunkCount(%d) = %d, want %d", c.dim, got, c.count)
		}
	}
}

// The worker pool's goroutines are persistent: any number of kernel
// dispatches after warm-up must leave the goroutine count unchanged.
// (The old per-call fan-out spawned and tore down GOMAXPROCS goroutines
// per pass; this pins the replacement behavior.)
func TestPoolNoGoroutineLeak(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	runtime.GOMAXPROCS(8)

	s := randomParallelState(17, 9)
	for i := 0; i < 4; i++ { // warm: spawn whatever workers will exist
		s.RZ(3, 0.25)
		s.Norm()
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 100; i++ {
		s.RZ(3, 0.25)
		s.RXAll(0.1)
		s.Norm()
	}
	after := runtime.NumGoroutine()
	if after > before {
		t.Fatalf("goroutine count grew across 100 dispatches: %d -> %d", before, after)
	}
}

// Dispatch must execute every chunk exactly once, whoever claims it.
func TestDispatchCoversEveryChunkOnce(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	runtime.GOMAXPROCS(8)

	const nc, clen = 64, 128
	marks := make([]int32, nc*clen)
	for round := 0; round < 20; round++ {
		dispatchChunks(nc, clen, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				marks[i]++
			}
		})
	}
	for i, m := range marks {
		if m != 20 {
			t.Fatalf("element %d executed %d times, want 20", i, m)
		}
	}
}

// Reductions from many goroutines share one pool; results must stay
// exact and the dispatch must not deadlock when every worker is busy.
func TestConcurrentReductionsSharedPool(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	runtime.GOMAXPROCS(8)

	s := randomParallelState(17, 12)
	want := s.Norm()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if got := s.Norm(); got != want {
					select {
					case errs <- errMismatch(got, want):
					default:
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

type normMismatch struct{ got, want float64 }

func errMismatch(got, want float64) error { return normMismatch{got, want} }

func (e normMismatch) Error() string { return "concurrent Norm mismatch" }
