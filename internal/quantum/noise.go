package quantum

import (
	"fmt"
	"math/rand"
)

// NoiseModel is a stochastic Pauli (depolarizing) error model: after
// every single-qubit gate a uniformly random Pauli {X, Y, Z} hits the
// target with probability P1; after every two-qubit gate each involved
// qubit is hit independently with probability P2.
//
// The paper evaluates on a noiseless simulator; this model is the
// standard NISQ substitute for running the same circuits on hardware.
// Expectations under the model are estimated by averaging Monte-Carlo
// trajectories (exact density-matrix evolution would square the memory
// cost).
type NoiseModel struct {
	P1 float64 // single-qubit depolarizing probability
	P2 float64 // two-qubit (per-qubit) depolarizing probability
}

// Validate checks the probabilities.
func (nm NoiseModel) Validate() error {
	if nm.P1 < 0 || nm.P1 > 1 || nm.P2 < 0 || nm.P2 > 1 {
		return fmt.Errorf("quantum: noise probabilities (%v, %v) out of [0,1]", nm.P1, nm.P2)
	}
	return nil
}

// Noiseless reports whether the model is a no-op.
func (nm NoiseModel) Noiseless() bool { return nm.P1 == 0 && nm.P2 == 0 }

// ApplyNoisy runs the circuit on s as one stochastic trajectory of the
// noise model. With a Noiseless model it is identical to Apply.
func (c *Circuit) ApplyNoisy(s *State, nm NoiseModel, rng *rand.Rand) {
	if err := nm.Validate(); err != nil {
		panic(err)
	}
	if s.NumQubits() != c.n {
		panic(fmt.Sprintf("quantum: circuit on %d qubits applied to %d-qubit state", c.n, s.NumQubits()))
	}
	single := NewCircuit(c.n)
	for _, op := range c.ops {
		single.ops = append(single.ops[:0], op)
		single.Apply(s)
		if op.Kind.twoQubit() {
			maybePauli(s, op.Q1, nm.P2, rng)
			maybePauli(s, op.Q2, nm.P2, rng)
		} else {
			maybePauli(s, op.Q1, nm.P1, rng)
		}
	}
}

// maybePauli applies a uniformly random Pauli to q with probability p.
func maybePauli(s *State, q int, p float64, rng *rand.Rand) {
	if p == 0 || rng.Float64() >= p {
		return
	}
	switch rng.Intn(3) {
	case 0:
		s.X(q)
	case 1:
		s.Y(q)
	default:
		s.Z(q)
	}
}

// NoisyExpectationDiagonal estimates ⟨D⟩ for the circuit run from
// |0...0⟩ under the noise model, averaged over the given number of
// Monte-Carlo trajectories. It panics for trajectories < 1.
func (c *Circuit) NoisyExpectationDiagonal(diag []float64, nm NoiseModel, trajectories int, rng *rand.Rand) float64 {
	if trajectories < 1 {
		panic("quantum: trajectories < 1")
	}
	if nm.Noiseless() {
		return c.Simulate().ExpectationDiagonal(diag)
	}
	total := 0.0
	for k := 0; k < trajectories; k++ {
		s := NewState(c.n)
		c.ApplyNoisy(s, nm, rng)
		total += s.ExpectationDiagonal(diag)
	}
	return total / float64(trajectories)
}
