package quantum

import (
	"runtime"
	"sync/atomic"
)

// Persistent worker pool.
//
// Every parallel kernel pass in this package — element-wise gates,
// fixed-geometry reductions, fused layer sweeps — used to spawn
// GOMAXPROCS goroutines plus a WaitGroup per call. A single gradient
// evaluation makes dozens of such passes, so goroutine setup dominated
// the parallel path's allocation profile (allocs/op rose with worker
// count) and its latency floor. The pool replaces that with long-lived
// workers that receive per-call jobs over a channel:
//
//   - Workers are spawned on demand, up to min(GOMAXPROCS−1,
//     maxPoolWorkers), and never exit — the goroutine count is bounded
//     and stable across any number of dispatches.
//   - A dispatch enqueues one pooled job descriptor; workers and the
//     caller claim chunks from it with an atomic counter, so the chunk
//     GEOMETRY (fixed by the dimension — see reduce.go) is independent
//     of who executes which chunk.
//   - Per-chunk partial results land in a per-job buffer that is pooled
//     with the job, so warm reductions allocate nothing.
//
// The caller always participates in chunk execution: if every worker is
// busy (or the queue is full) the dispatch degrades to a serial pass
// over the same chunks rather than blocking.

// maxPoolWorkers bounds the number of persistent workers (and therefore
// the pool's goroutine footprint) regardless of GOMAXPROCS.
const maxPoolWorkers = 64

// chunkJob is one dispatched kernel pass: nc chunks of chunkLen
// elements, claimed by atomic counter. Exactly one of f (element-wise)
// and fr (reduction; partials land in parts) is set.
type chunkJob struct {
	f        func(lo, hi int)
	fr       func(lo, hi int) (a, b float64)
	parts    []float64
	chunkLen int
	nc       int32
	next     atomic.Int32 // next unclaimed chunk
	done     atomic.Int32 // completed chunks
	refs     atomic.Int32 // outstanding holders (queue copies + caller)
	wake     chan struct{}
}

// jobFree recycles job descriptors through a bounded channel rather
// than a sync.Pool: pool caches are per-P and cleared by every GC, so
// under many workers a long benchmark run re-allocated jobs (and their
// parts buffers) once per P per GC cycle — the bytes/op growth with
// GOMAXPROCS that BENCH_qaoa.json recorded. The channel freelist is
// GC-immune and shared across Ps; in steady state a handful of jobs
// circulate forever and warm dispatches allocate nothing.
var jobFree = make(chan *chunkJob, maxPoolWorkers)

func getJob() *chunkJob {
	select {
	case j := <-jobFree:
		return j
	default:
		return &chunkJob{wake: make(chan struct{}, 1)}
	}
}

var (
	jobQueue    = make(chan *chunkJob, 4*maxPoolWorkers)
	poolWorkers atomic.Int32
)

func poolWorker() {
	for job := range jobQueue {
		job.run()
		job.release()
	}
}

// ensureWorkers spawns persistent workers up to want (capped at
// maxPoolWorkers). Workers are never torn down; repeated calls are
// cheap no-ops once the pool is warm.
func ensureWorkers(want int) {
	if want > maxPoolWorkers {
		want = maxPoolWorkers
	}
	for {
		cur := poolWorkers.Load()
		if int(cur) >= want {
			return
		}
		if poolWorkers.CompareAndSwap(cur, cur+1) {
			go poolWorker()
		}
	}
}

// run claims and executes chunks until none remain. The goroutine that
// completes the LAST chunk signals the (capacity-1) wake channel; the
// dispatcher drains any stale token before reuse, so at most one token
// is ever pending.
func (j *chunkJob) run() {
	nc := j.nc
	for {
		c := j.next.Add(1) - 1
		if c >= nc {
			return
		}
		lo := int(c) * j.chunkLen
		hi := lo + j.chunkLen
		if j.fr != nil {
			j.parts[2*c], j.parts[2*c+1] = j.fr(lo, hi)
		} else {
			j.f(lo, hi)
		}
		if j.done.Add(1) == nc {
			j.wake <- struct{}{}
		}
	}
}

// release drops one reference; the last holder clears the closures and
// returns the job to the freelist (dropping it if the list is full).
// Queue copies received after the job finished (stale copies) run zero
// chunks and release harmlessly — the job cannot be recycled while
// they are outstanding.
func (j *chunkJob) release() {
	if j.refs.Add(-1) == 0 {
		j.f, j.fr = nil, nil
		select {
		case jobFree <- j:
		default:
		}
	}
}

// dispatch fans nc chunks of clen elements out across the pool and the
// calling goroutine, returning after every chunk has completed. The
// returned job still holds the caller's reference so reduction partials
// in j.parts can be read; the caller must j.release() afterwards.
func dispatch(nc, clen int, f func(lo, hi int), fr func(lo, hi int) (a, b float64)) *chunkJob {
	j := getJob()
	select { // drain a stale completion token from a previous dispatch
	case <-j.wake:
	default:
	}
	j.f, j.fr = f, fr
	j.chunkLen = clen
	j.nc = int32(nc)
	j.next.Store(0)
	j.done.Store(0)
	if fr != nil {
		if cap(j.parts) < 2*nc {
			j.parts = make([]float64, 2*nc)
		} else {
			j.parts = j.parts[:2*nc]
		}
	}
	helpers := runtime.GOMAXPROCS(0) - 1
	if helpers > nc-1 {
		helpers = nc - 1
	}
	if helpers > maxPoolWorkers {
		helpers = maxPoolWorkers
	}
	if helpers > 0 {
		ensureWorkers(helpers)
	}
	j.refs.Store(int32(helpers) + 1)
	for i := 0; i < helpers; i++ {
		select {
		case jobQueue <- j:
		default: // queue full: caller just does more chunks itself
			j.refs.Add(-1)
		}
	}
	j.run()
	if j.done.Load() != j.nc {
		<-j.wake // workers still own claimed chunks; wait for the last
	}
	return j
}

// dispatchChunks runs the element-wise body f over nc chunks of clen
// elements on the pool and returns when all chunks are done.
func dispatchChunks(nc, clen int, f func(lo, hi int)) {
	j := dispatch(nc, clen, f, nil)
	j.release()
}

// dispatchReduce runs the reduction body fr over nc chunks of clen
// elements on the pool and combines the per-chunk partials in chunk
// order (left to right), so the result is bit-identical to a serial
// pass over the same geometry.
func dispatchReduce(nc, clen int, fr func(lo, hi int) (a, b float64)) (a, b float64) {
	j := dispatch(nc, clen, nil, fr)
	for c := 0; c < nc; c++ {
		a += j.parts[2*c]
		b += j.parts[2*c+1]
	}
	j.release()
	return a, b
}

// runRange runs the element-wise body f over [0, n): in one serial call
// when par is false or the range is a single chunk, otherwise fanned
// out over fixed-geometry chunks on the pool. Element-wise kernels are
// bit-identical either way — each element is written exactly once with
// the same arithmetic — so par only ever changes scheduling.
func runRange(n int, par bool, f func(lo, hi int)) {
	if !par {
		f(0, n)
		return
	}
	clen := ChunkLen(n)
	if n <= clen {
		f(0, n)
		return
	}
	dispatchChunks(n/clen, clen, f)
}
