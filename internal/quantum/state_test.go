package quantum

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewStateIsZeroKet(t *testing.T) {
	s := NewState(3)
	if s.Dim() != 8 || s.NumQubits() != 3 {
		t.Fatalf("dim/qubits = %d/%d", s.Dim(), s.NumQubits())
	}
	if s.Amplitude(0) != 1 {
		t.Errorf("amp(0) = %v", s.Amplitude(0))
	}
	if math.Abs(s.Norm()-1) > 1e-15 {
		t.Errorf("norm = %v", s.Norm())
	}
}

func TestNewBasisState(t *testing.T) {
	s := NewBasisState(3, 5)
	if s.Probability(5) != 1 {
		t.Errorf("P(5) = %v", s.Probability(5))
	}
}

func TestXFlipsBit(t *testing.T) {
	s := NewState(2)
	s.X(0)
	if s.Probability(0b01) != 1 {
		t.Errorf("X(0)|00> != |01>: %v", s.Probabilities())
	}
	s.X(1)
	if s.Probability(0b11) != 1 {
		t.Errorf("X(1) failed: %v", s.Probabilities())
	}
}

func TestHadamardSuperposition(t *testing.T) {
	s := NewState(1)
	s.H(0)
	if math.Abs(s.Probability(0)-0.5) > 1e-12 || math.Abs(s.Probability(1)-0.5) > 1e-12 {
		t.Errorf("H|0> probs = %v", s.Probabilities())
	}
	s.H(0) // H is an involution
	if math.Abs(s.Probability(0)-1) > 1e-12 {
		t.Errorf("H² != I: %v", s.Probabilities())
	}
}

func TestPauliAlgebra(t *testing.T) {
	// XYZ = iI on any state: check on H|0> for a nontrivial state.
	s := NewState(1)
	s.H(0)
	ref := s.Clone()
	s.Z(0)
	s.Y(0)
	s.X(0)
	// Expect i·ref.
	for i := uint64(0); i < 2; i++ {
		want := ref.Amplitude(i) * complex(0, 1)
		if cmplx.Abs(s.Amplitude(i)-want) > 1e-12 {
			t.Fatalf("XYZ != iI at %d: got %v want %v", i, s.Amplitude(i), want)
		}
	}
}

func TestBellState(t *testing.T) {
	s := NewState(2)
	s.H(0)
	s.CNOT(0, 1)
	if math.Abs(s.Probability(0b00)-0.5) > 1e-12 || math.Abs(s.Probability(0b11)-0.5) > 1e-12 {
		t.Errorf("Bell probs = %v", s.Probabilities())
	}
	if p := s.Probability(0b01) + s.Probability(0b10); p > 1e-12 {
		t.Errorf("Bell has odd-parity weight %v", p)
	}
}

func TestCNOTControlOff(t *testing.T) {
	s := NewState(2)
	s.CNOT(0, 1)
	if s.Probability(0) != 1 {
		t.Error("CNOT acted with control off")
	}
}

func TestRZPhases(t *testing.T) {
	s := NewState(1)
	s.X(0) // |1>
	s.RZ(0, math.Pi)
	want := cmplx.Exp(complex(0, math.Pi/2))
	if cmplx.Abs(s.Amplitude(1)-want) > 1e-12 {
		t.Errorf("RZ(π)|1> = %v, want %v", s.Amplitude(1), want)
	}
}

func TestRXRotation(t *testing.T) {
	s := NewState(1)
	s.RX(0, math.Pi) // = -iX up to phase
	if math.Abs(s.Probability(1)-1) > 1e-12 {
		t.Errorf("RX(π)|0> probs = %v", s.Probabilities())
	}
	s2 := NewState(1)
	s2.RX(0, math.Pi/2)
	if math.Abs(s2.Probability(0)-0.5) > 1e-12 {
		t.Errorf("RX(π/2) probs = %v", s2.Probabilities())
	}
}

func TestRYRotation(t *testing.T) {
	s := NewState(1)
	s.RY(0, math.Pi/2)
	// cos(π/4)|0> + sin(π/4)|1>, both real.
	if math.Abs(real(s.Amplitude(0))-1/math.Sqrt2) > 1e-12 ||
		math.Abs(real(s.Amplitude(1))-1/math.Sqrt2) > 1e-12 {
		t.Errorf("RY(π/2)|0> = %v, %v", s.Amplitude(0), s.Amplitude(1))
	}
}

func TestPhaseGate(t *testing.T) {
	s := NewState(1)
	s.H(0)
	s.Phase(0, math.Pi) // = Z on the |1> component
	z := NewState(1)
	z.H(0)
	z.Z(0)
	if !s.Equal(z, 1e-12) {
		t.Error("Phase(π) != Z")
	}
}

func TestCZAndSWAP(t *testing.T) {
	s := NewBasisState(2, 0b11)
	s.CZ(0, 1)
	if cmplx.Abs(s.Amplitude(0b11)+1) > 1e-12 {
		t.Errorf("CZ|11> = %v, want -1", s.Amplitude(0b11))
	}
	w := NewBasisState(2, 0b01)
	w.SWAP(0, 1)
	if w.Probability(0b10) != 1 {
		t.Errorf("SWAP failed: %v", w.Probabilities())
	}
	w.SWAP(1, 1) // no-op
	if w.Probability(0b10) != 1 {
		t.Error("SWAP(q,q) changed state")
	}
}

func TestZZEqualsGateDecomposition(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		theta := rng.Float64()*4*math.Pi - 2*math.Pi
		a, b := rng.Intn(4), rng.Intn(4)
		if a == b {
			continue
		}
		s1 := randomState(rng, 4)
		s2 := s1.Clone()
		s1.ZZ(a, b, theta)
		s2.CNOT(a, b)
		s2.RZ(b, theta)
		s2.CNOT(a, b)
		if !s1.Equal(s2, 1e-12) {
			t.Fatalf("ZZ != CNOT·RZ·CNOT for θ=%v qubits (%d,%d)", theta, a, b)
		}
	}
}

func TestExpectationDiagonal(t *testing.T) {
	s := NewState(2)
	s.H(0)
	s.H(1)
	diag := []float64{0, 1, 2, 3}
	if got := s.ExpectationDiagonal(diag); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("expectation = %v, want 1.5", got)
	}
}

func TestInnerProductAndFidelity(t *testing.T) {
	s := NewState(2)
	if got := s.InnerProduct(s); cmplx.Abs(got-1) > 1e-12 {
		t.Errorf("<s|s> = %v", got)
	}
	o := NewBasisState(2, 1)
	if got := s.Fidelity(o); got != 0 {
		t.Errorf("orthogonal fidelity = %v", got)
	}
}

func TestEqualUpToGlobalPhase(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := randomState(rng, 3)
	p := s.Clone()
	p.ApplyDiagonalPhase(constantPhases(8, 1.234))
	if s.Equal(p, 1e-9) {
		t.Error("global phase should break exact equality")
	}
	if !s.EqualUpToGlobalPhase(p, 1e-9) {
		t.Error("global phase should preserve the ray")
	}
}

func TestSampleDistribution(t *testing.T) {
	s := NewState(1)
	s.H(0)
	rng := rand.New(rand.NewSource(7))
	counts := s.SampleCounts(10000, rng)
	if counts[0] < 4500 || counts[0] > 5500 {
		t.Errorf("H|0> sampling biased: %v", counts)
	}
}

func TestNormalize(t *testing.T) {
	s := NewState(1)
	s.amps[0] = 3
	s.amps[1] = 4
	s.Normalize()
	if math.Abs(s.Norm()-1) > 1e-12 {
		t.Errorf("norm after Normalize = %v", s.Norm())
	}
}

func TestPanicsOnBadArgs(t *testing.T) {
	cases := []func(){
		func() { NewState(0) },
		func() { NewState(MaxQubits + 1) },
		func() { NewBasisState(2, 4) },
		func() { NewState(2).H(2) },
		func() { NewState(2).CNOT(1, 1) },
		func() { NewState(2).CZ(0, 0) },
		func() { NewState(2).ZZ(1, 1, 0.5) },
		func() { NewState(2).ExpectationDiagonal([]float64{1}) },
		func() { NewState(1).InnerProduct(NewState(2)) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

// Property: every gate preserves the state norm (unitarity).
func TestGatesPreserveNorm(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomState(rng, 4)
		theta := rng.Float64() * 2 * math.Pi
		switch rng.Intn(9) {
		case 0:
			s.H(rng.Intn(4))
		case 1:
			s.X(rng.Intn(4))
		case 2:
			s.RX(rng.Intn(4), theta)
		case 3:
			s.RY(rng.Intn(4), theta)
		case 4:
			s.RZ(rng.Intn(4), theta)
		case 5:
			s.CNOT(0, 1+rng.Intn(3))
		case 6:
			s.CZ(0, 1+rng.Intn(3))
		case 7:
			s.ZZ(0, 1+rng.Intn(3), theta)
		case 8:
			s.Phase(rng.Intn(4), theta)
		}
		return math.Abs(s.Norm()-1) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: rotation gates compose additively: R(a)R(b) = R(a+b).
func TestRotationAdditivity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := rng.Float64()*2*math.Pi - math.Pi
		b := rng.Float64()*2*math.Pi - math.Pi
		q := rng.Intn(3)
		s1 := randomState(rng, 3)
		s2 := s1.Clone()
		s1.RX(q, a)
		s1.RX(q, b)
		s2.RX(q, a+b)
		if !s1.Equal(s2, 1e-10) {
			return false
		}
		s1.RZ(q, a)
		s1.RZ(q, b)
		s2.RZ(q, a+b)
		return s1.Equal(s2, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: probabilities sum to 1.
func TestProbabilitiesSumToOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomState(rng, 5)
		total := 0.0
		for _, p := range s.Probabilities() {
			total += p
		}
		return math.Abs(total-1) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// randomState returns a Haar-ish random normalized state.
func randomState(rng *rand.Rand, n int) *State {
	s := NewState(n)
	for i := range s.amps {
		s.amps[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	s.Normalize()
	return s
}

func constantPhases(n int, phi float64) []float64 {
	p := make([]float64, n)
	for i := range p {
		p[i] = phi
	}
	return p
}
