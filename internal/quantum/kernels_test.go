package quantum

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// randomKernelState returns a normalized random state (shared helper
// randomState lives in state_test.go; this one takes an explicit seed
// sequence for kernel tests).
func randomKernelState(rng *rand.Rand, n int) *State {
	s := NewState(n)
	for i := range s.amps {
		s.amps[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	s.Normalize()
	return s
}

func maxAmpDiff(a, b *State) float64 {
	worst := 0.0
	for i := range a.amps {
		if d := cmplx.Abs(a.amps[i] - b.amps[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// RXAll must reproduce n sequential RX applications exactly (to
// rounding), for even and odd qubit counts.
func TestRXAllMatchesPerQubitRX(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for _, n := range []int{1, 2, 3, 4, 5, 6, 7, 8} {
		for trial := 0; trial < 5; trial++ {
			theta := (rng.Float64() - 0.5) * 4 * math.Pi
			fused := randomKernelState(rng, n)
			ref := fused.Clone()
			fused.RXAll(theta)
			for q := 0; q < n; q++ {
				ref.RX(q, theta)
			}
			if d := maxAmpDiff(fused, ref); d > 1e-12 {
				t.Errorf("n=%d θ=%v: RXAll differs from per-qubit RX by %v", n, theta, d)
			}
		}
	}
}

// FillUniform must agree with the Hadamard layer it replaces.
func TestFillUniformMatchesHadamardLayer(t *testing.T) {
	for _, n := range []int{1, 3, 6} {
		u := NewUniformState(n)
		h := NewState(n)
		for q := 0; q < n; q++ {
			h.H(q)
		}
		if d := maxAmpDiff(u, h); d > 1e-12 {
			t.Errorf("n=%d: uniform fill differs from H layer by %v", n, d)
		}
	}
}

// MulDiagonalIndexed with a per-amplitude identity index must equal
// ApplyDiagonalPhase on the same angles.
func TestMulDiagonalIndexedMatchesApplyDiagonalPhase(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	n := 6
	dim := 1 << n
	phases := make([]float64, dim)
	idx := make([]int32, dim)
	factors := make([]complex128, dim)
	for i := range phases {
		phases[i] = (rng.Float64() - 0.5) * 8
		idx[i] = int32(i)
		sin, cos := math.Sincos(phases[i])
		factors[i] = complex(cos, sin)
	}
	a := randomKernelState(rng, n)
	b := a.Clone()
	a.MulDiagonalIndexed(idx, factors)
	b.ApplyDiagonalPhase(phases)
	if d := maxAmpDiff(a, b); d > 1e-12 {
		t.Errorf("indexed diagonal differs from phase table by %v", d)
	}
}

// A shared-value index table (the distinct-cut memoization pattern)
// must act like the expanded phase table.
func TestMulDiagonalIndexedSharedValues(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	n := 5
	dim := 1 << n
	distinct := []float64{-1.3, 0, 0.7, 2.9}
	factors := make([]complex128, len(distinct))
	for j, ph := range distinct {
		sin, cos := math.Sincos(ph)
		factors[j] = complex(cos, sin)
	}
	idx := make([]int32, dim)
	phases := make([]float64, dim)
	for i := range idx {
		idx[i] = int32(rng.Intn(len(distinct)))
		phases[i] = distinct[idx[i]]
	}
	a := randomKernelState(rng, n)
	b := a.Clone()
	a.MulDiagonalIndexed(idx, factors)
	b.ApplyDiagonalPhase(phases)
	if d := maxAmpDiff(a, b); d > 1e-12 {
		t.Errorf("shared-value indexed diagonal differs by %v", d)
	}
}

func TestMulDiagonalIndexedLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewState(2).MulDiagonalIndexed([]int32{0}, []complex128{1})
}

// The pool-dispatched chunk split must be bit-identical to one serial
// pass, independent of GOMAXPROCS (chunks are disjoint element ranges).
func TestParallelChunksMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	n := 10
	dim := 1 << n
	phases := make([]float64, dim)
	for i := range phases {
		phases[i] = rng.NormFloat64()
	}
	serial := randomKernelState(rng, n)
	chunked := serial.Clone()
	applyPhaseRange(serial.amps, phases)
	dispatchChunks(dim/256, 256, func(lo, hi int) {
		applyPhaseRange(chunked.amps[lo:hi], phases[lo:hi])
	})
	for i := range serial.amps {
		if serial.amps[i] != chunked.amps[i] {
			t.Fatalf("amp %d: chunked %v != serial %v", i, chunked.amps[i], serial.amps[i])
		}
	}
}

// sampleCountsLinear is the pre-optimization O(shots·2^n) reference:
// one linear scan per shot, one rng.Float64 per shot.
func sampleCountsLinear(s *State, shots int, rng *rand.Rand) map[uint64]int {
	counts := make(map[uint64]int)
	for i := 0; i < shots; i++ {
		counts[s.Sample(rng)]++
	}
	return counts
}

// SampleCounts must reproduce the old linear-scan path exactly under
// the same seed: same RNG consumption, same outcome per shot.
func TestSampleCountsMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	for trial := 0; trial < 4; trial++ {
		s := randomKernelState(rng, 6)
		seed := int64(900 + trial)
		fast := s.SampleCounts(5000, rand.New(rand.NewSource(seed)))
		slow := sampleCountsLinear(s, 5000, rand.New(rand.NewSource(seed)))
		if len(fast) != len(slow) {
			t.Fatalf("trial %d: outcome support %d != %d", trial, len(fast), len(slow))
		}
		for z, c := range slow {
			if fast[z] != c {
				t.Fatalf("trial %d: counts[%d] = %d, want %d", trial, z, fast[z], c)
			}
		}
	}
}

func TestSampleCountsZeroShots(t *testing.T) {
	s := NewUniformState(3)
	if c := s.SampleCounts(0, rand.New(rand.NewSource(1))); len(c) != 0 {
		t.Errorf("zero shots returned counts %v", c)
	}
}
