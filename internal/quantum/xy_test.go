package quantum

import (
	"math"
	"math/bits"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestXYOnBasisStates(t *testing.T) {
	// |00⟩ and |11⟩ are fixed points.
	for _, z := range []uint64{0b00, 0b11} {
		s := NewBasisState(2, z)
		s.XY(0, 1, 0.7)
		if math.Abs(s.Probability(z)-1) > 1e-12 {
			t.Errorf("XY moved fixed point |%02b⟩", z)
		}
	}
	// θ = π/2 swaps |01⟩ → −i|10⟩.
	s := NewBasisState(2, 0b01)
	s.XY(0, 1, math.Pi/2)
	want := complex(0, -1)
	if cmplx.Abs(s.Amplitude(0b10)-want) > 1e-12 {
		t.Errorf("XY(π/2)|01⟩: amp(10) = %v, want %v", s.Amplitude(0b10), want)
	}
}

// XY preserves Hamming weight: the probability mass within each weight
// sector is invariant — the defining property of constrained mixers.
func TestXYPreservesHammingWeight(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomState(rng, 4)
		before := weightDistribution(s)
		for k := 0; k < 6; k++ {
			a, b := rng.Intn(4), rng.Intn(4)
			if a == b {
				continue
			}
			s.XY(a, b, rng.Float64()*2*math.Pi)
		}
		after := weightDistribution(s)
		for w := range before {
			if math.Abs(before[w]-after[w]) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func weightDistribution(s *State) []float64 {
	out := make([]float64, s.NumQubits()+1)
	for z, p := range s.Probabilities() {
		out[bits.OnesCount64(uint64(z))] += p
	}
	return out
}

func TestXYUnitaryAndAdditive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := randomState(rng, 3)
	ref := s.Clone()
	s.XY(0, 2, 0.4)
	if math.Abs(s.Norm()-1) > 1e-12 {
		t.Errorf("norm = %v", s.Norm())
	}
	s.XY(0, 2, 0.3)
	ref.XY(0, 2, 0.7)
	if !s.Equal(ref, 1e-10) {
		t.Error("XY angles not additive")
	}
}

func TestXYSymmetricInQubits(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomState(rng, 3)
	b := a.Clone()
	a.XY(0, 2, 1.1)
	b.XY(2, 0, 1.1)
	if !a.Equal(b, 1e-12) {
		t.Error("XY(a,b) != XY(b,a)")
	}
}

func TestXYCircuitIR(t *testing.T) {
	c := NewCircuit(2).XY(0, 1, 0.9)
	direct := NewState(2)
	direct.H(0)
	c2 := NewCircuit(2).H(0).XY(0, 1, 0.9)
	direct.XY(0, 1, 0.9)
	if !c2.Simulate().Equal(direct, 1e-12) {
		t.Error("circuit XY differs from direct application")
	}
	if got := c.Ops()[0].String(); got != "XY(0.9) q0,q1" {
		t.Errorf("op string = %q", got)
	}
	// Inverse support.
	rng := rand.New(rand.NewSource(4))
	s := randomState(rng, 2)
	orig := s.Clone()
	c.Apply(s)
	c.Inverse().Apply(s)
	if !s.Equal(orig, 1e-10) {
		t.Error("XY circuit inverse broken")
	}
}

func TestXYPanicsOnSameQubit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewState(2).XY(1, 1, 0.5)
}
