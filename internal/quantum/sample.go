package quantum

import (
	"math/rand"
	"slices"
	"sort"
	"sync"
)

// Measurement sampling with pooled scratch. Building the cumulative
// distribution costs one 2^n float64 table per call; at 1024 shots the
// map-based SampleCounts additionally paid ~12 allocations per call for
// map growth. Both scratch buffers (the CDF and the per-shot outcome
// list) now come from a package-level pool, so a warm SampleOutcomes
// call performs one allocation: the returned slice.

// OutcomeCount is one measurement outcome and how many of the shots
// produced it.
type OutcomeCount struct {
	Outcome uint64
	Count   int
}

// sampleScratch is the pooled working set of one SampleOutcomes call.
type sampleScratch struct {
	cdf      []float64
	outcomes []uint64
}

var samplePool = sync.Pool{New: func() any { return &sampleScratch{} }}

// SampleOutcomes draws shots measurements and returns the observed
// outcomes with their counts, sorted by outcome. It consumes the RNG
// identically to repeated Sample calls (one Float64 per shot) and
// produces exactly the per-shot outcomes the linear scan would: the CDF
// accumulates probabilities in the same index order, and each shot
// takes the smallest z with r < cdf[z]. Warm calls allocate only the
// returned slice.
func (s *State) SampleOutcomes(shots int, rng *rand.Rand) []OutcomeCount {
	if shots <= 0 {
		return nil
	}
	ws := samplePool.Get().(*sampleScratch)
	dim := len(s.amps)
	if cap(ws.cdf) < dim {
		ws.cdf = make([]float64, dim)
	}
	cdf := ws.cdf[:dim]
	acc := 0.0
	for i, a := range s.amps {
		acc += real(a)*real(a) + imag(a)*imag(a)
		cdf[i] = acc
	}
	if cap(ws.outcomes) < shots {
		ws.outcomes = make([]uint64, shots)
	}
	outcomes := ws.outcomes[:shots]
	for i := range outcomes {
		r := rng.Float64()
		z := sort.Search(dim, func(j int) bool { return r < cdf[j] })
		if z == dim {
			z = dim - 1 // roundoff: return last state
		}
		outcomes[i] = uint64(z)
	}
	// Sort-and-run-length-encode replaces the counting map: the counts
	// per outcome are order-independent, and the result comes back
	// outcome-sorted.
	slices.Sort(outcomes)
	distinct := 1
	for i := 1; i < len(outcomes); i++ {
		if outcomes[i] != outcomes[i-1] {
			distinct++
		}
	}
	out := make([]OutcomeCount, 0, distinct)
	run := 1
	for i := 1; i <= len(outcomes); i++ {
		if i < len(outcomes) && outcomes[i] == outcomes[i-1] {
			run++
			continue
		}
		out = append(out, OutcomeCount{Outcome: outcomes[i-1], Count: run})
		run = 1
	}
	samplePool.Put(ws)
	return out
}
