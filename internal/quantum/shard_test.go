package quantum

import (
	"math"
	"runtime"
	"testing"
	"time"
)

// Sharded-state bit-identity suite. The sharded representation is a
// pure memory-layout change: every amplitude must come out EXACTLY
// equal to the flat path — layers, reductions, mixer matrix elements —
// at every shard count and every GOMAXPROCS. All comparisons use ==.

// shardedFromState loads a flat state's amplitudes into a fresh
// sharded layout.
func shardedFromState(t *testing.T, s *State, shardBits int) *ShardedState {
	t.Helper()
	ss := NewShardedState(s.n, shardBits)
	t.Cleanup(ss.Close)
	for i, sh := range ss.shards {
		copy(sh.amps, s.amps[i*ss.sdim:(i+1)*ss.sdim])
	}
	return ss
}

// gather flattens a sharded state for comparison.
func (ss *ShardedState) gather() *State {
	s := NewState(ss.n)
	for i, sh := range ss.shards {
		copy(s.amps[i*ss.sdim:], sh.amps)
	}
	return s
}

// testPhaseFactor is the deterministic per-amplitude phase both paths
// apply: a pure function of the GLOBAL basis index, so any off/lo
// mapping bug shows up as an amplitude mismatch.
func testPhaseFactor(i int) complex128 {
	sin, cos := math.Sincos(0.37 * float64(i%23))
	return complex(cos, sin)
}

var shardTestBits = []int{0, 1, 2, 3}

func TestShardedLayerMatchesFlat(t *testing.T) {
	for _, n := range []int{16, 17, 18} {
		for _, sb := range shardTestBits {
			withWorkers(t, identityWorkers, func() any {
				flat := randomParallelState(n, int64(100*n+sb))
				runner := NewLayerRunner(flat)
				ss := shardedFromState(t, flat, sb)

				// Two fused stages: fill+phase+mix, then phase+mix on the
				// evolved state (the second catches state corruption the
				// first pass might mask with the uniform refill).
				for pass, theta := range []float64{0.8134, -0.4271} {
					fill := pass == 0
					runner.Layer(theta, fill, func(lo, hi int) {
						for i := lo; i < hi; i++ {
							flat.amps[i] *= testPhaseFactor(i)
						}
					})
					ss.Layer(theta, fill, func(off, lo, hi int) {
						amps := ss.shards[off>>uint(ss.sbits)].amps
						for i := lo; i < hi; i++ {
							amps[i] *= testPhaseFactor(off + i)
						}
					})
				}
				got := ss.gather()
				ampsEqualExact(t, "sharded layer", flat, got, runtime.GOMAXPROCS(0))
				return flat
			}, func(t *testing.T, baseline, got any, w int) {
				ampsEqualExact(t, "flat layer across workers", baseline.(*State), got.(*State), w)
			})
		}
	}
}

// The mixer-only layer isolates the cross-shard RX exchange: no fill,
// no phase, so any mismatch is in the exchange kernels themselves
// (straddle pair, shard quads, odd final qubit).
func TestShardExchangeMatchesFlatRX(t *testing.T) {
	for _, n := range []int{16, 17} {
		for _, sb := range shardTestBits {
			if sb == 0 {
				continue
			}
			flat := randomParallelState(n, int64(7*n+sb))
			ss := shardedFromState(t, flat, sb)
			NewLayerRunner(flat).Layer(1.1543, false, nil)
			ss.Layer(1.1543, false, nil)
			ampsEqualExact(t, "exchange-only layer", flat, ss.gather(), sb)
		}
	}
}

func TestShardedReduceMatchesFlat(t *testing.T) {
	const n = 17
	body := func(amps []complex128, off, lo, hi int) (a, b float64) {
		for i := lo; i < hi; i++ {
			z := amps[i]
			a += real(z)*real(z) + imag(z)*imag(z)
			b += real(z) * float64((off+i)%7)
		}
		return a, b
	}
	for _, sb := range shardTestBits {
		withWorkers(t, identityWorkers, func() any {
			flat := randomParallelState(n, 55)
			ss := shardedFromState(t, flat, sb)
			fa, fb := ReduceChunks(len(flat.amps), func(lo, hi int) (float64, float64) {
				return body(flat.amps, 0, lo, hi)
			})
			sa, sbv := ss.Reduce(func(lo, hi int) (float64, float64) {
				off := lo &^ (ss.sdim - 1)
				return body(ss.shards[lo>>uint(ss.sbits)].amps, off, lo-off, hi-off)
			})
			if sa != fa || sbv != fb {
				t.Fatalf("shards=%d: sharded reduce (%v, %v) != flat (%v, %v)", 1<<sb, sa, sbv, fa, fb)
			}
			return [2]float64{fa, fb}
		}, func(t *testing.T, baseline, got any, w int) {
			if baseline.([2]float64) != got.([2]float64) {
				t.Fatalf("reduce differs at GOMAXPROCS=%d: %v != %v", w, got, baseline)
			}
		})
	}
}

func TestShardedSumXMatchesFlat(t *testing.T) {
	const n = 17
	for _, sb := range shardTestBits {
		withWorkers(t, identityWorkers, func() any {
			fs := randomParallelState(n, 91)
			ft := randomParallelState(n, 92)
			sss := shardedFromState(t, fs, sb)
			sst := shardedFromState(t, ft, sb)
			fr, fi := ReduceChunks(len(fs.amps), func(lo, hi int) (float64, float64) {
				return InnerProductSumXRange(fs, ft, lo, hi)
			})
			sr, si := sss.Reduce(func(lo, hi int) (float64, float64) {
				return ShardedSumXRange(sss, sst, lo, hi)
			})
			if sr != fr || si != fi {
				t.Fatalf("shards=%d: sharded ΣX (%v, %v) != flat (%v, %v)", 1<<sb, sr, si, fr, fi)
			}
			return [2]float64{fr, fi}
		}, func(t *testing.T, baseline, got any, w int) {
			if baseline.([2]float64) != got.([2]float64) {
				t.Fatalf("ΣX differs at GOMAXPROCS=%d: %v != %v", w, got, baseline)
			}
		})
	}
}

func TestShardedFillUniformAndAccessors(t *testing.T) {
	ss := NewShardedState(16, 2)
	defer ss.Close()
	if ss.NumQubits() != 16 || ss.Dim() != 1<<16 || ss.NumShards() != 4 || ss.ShardDim() != 1<<14 {
		t.Fatalf("accessors: n=%d dim=%d shards=%d sdim=%d", ss.NumQubits(), ss.Dim(), ss.NumShards(), ss.ShardDim())
	}
	if ss.Amplitude(0) != 1 || ss.Amplitude(1<<15) != 0 {
		t.Fatalf("fresh state is not |0…0⟩: amp(0)=%v amp(2^15)=%v", ss.Amplitude(0), ss.Amplitude(1<<15))
	}
	ss.FillUniform()
	want := complex(1/math.Sqrt(float64(1<<16)), 0)
	for _, idx := range []uint64{0, 1 << 13, 1<<16 - 1} {
		if ss.Amplitude(idx) != want {
			t.Fatalf("FillUniform: amp(%d) = %v, want %v", idx, ss.Amplitude(idx), want)
		}
	}
}

func TestNewShardedStatePanicsOnUndersizedShards(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for shards smaller than the fixed chunk length")
		}
	}()
	NewShardedState(16, 4) // 2^12-amplitude shards < ChunkLen(2^16) = 2^13
}

// Closing a sharded state must stop its worker goroutines; dropped
// states are backed up by a finalizer, so neither path leaks.
func TestShardedStateCloseStopsWorkers(t *testing.T) {
	base := runtime.NumGoroutine()
	states := make([]*ShardedState, 8)
	for i := range states {
		states[i] = NewShardedState(16, 3)
	}
	for _, ss := range states {
		ss.Close()
		ss.Close() // idempotent
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not drain after Close: %d > baseline %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
