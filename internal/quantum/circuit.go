package quantum

import (
	"fmt"
	"strings"
)

// GateKind enumerates the gate set of the circuit IR.
type GateKind int

// Supported gates.
const (
	GateH GateKind = iota
	GateX
	GateY
	GateZ
	GateRX
	GateRY
	GateRZ
	GatePhase
	GateCNOT
	GateCZ
	GateSWAP
	GateZZ
	GateXY
)

var gateNames = map[GateKind]string{
	GateH: "H", GateX: "X", GateY: "Y", GateZ: "Z",
	GateRX: "RX", GateRY: "RY", GateRZ: "RZ", GatePhase: "P",
	GateCNOT: "CNOT", GateCZ: "CZ", GateSWAP: "SWAP", GateZZ: "ZZ", GateXY: "XY",
}

// String returns the conventional gate mnemonic.
func (k GateKind) String() string {
	if s, ok := gateNames[k]; ok {
		return s
	}
	return fmt.Sprintf("GateKind(%d)", int(k))
}

// parametric reports whether the gate carries a rotation angle.
func (k GateKind) parametric() bool {
	switch k {
	case GateRX, GateRY, GateRZ, GatePhase, GateZZ, GateXY:
		return true
	}
	return false
}

// twoQubit reports whether the gate acts on two qubits.
func (k GateKind) twoQubit() bool {
	switch k {
	case GateCNOT, GateCZ, GateSWAP, GateZZ, GateXY:
		return true
	}
	return false
}

// Op is one gate application. Q2 is ignored for single-qubit gates and
// Theta for non-parametric gates.
type Op struct {
	Kind   GateKind
	Q1, Q2 int
	Theta  float64
}

// String renders the op, e.g. "RZ(1.571) q0" or "CNOT q1,q2".
func (o Op) String() string {
	var b strings.Builder
	b.WriteString(o.Kind.String())
	if o.Kind.parametric() {
		fmt.Fprintf(&b, "(%.4g)", o.Theta)
	}
	fmt.Fprintf(&b, " q%d", o.Q1)
	if o.Kind.twoQubit() {
		fmt.Fprintf(&b, ",q%d", o.Q2)
	}
	return b.String()
}

// Circuit is an ordered gate list over a fixed register width. The zero
// value is not usable; construct with NewCircuit.
type Circuit struct {
	n   int
	ops []Op
}

// NewCircuit returns an empty circuit on n qubits.
func NewCircuit(n int) *Circuit {
	if n < 1 || n > MaxQubits {
		panic(fmt.Sprintf("quantum: qubit count %d out of [1,%d]", n, MaxQubits))
	}
	return &Circuit{n: n}
}

// NumQubits returns the register width.
func (c *Circuit) NumQubits() int { return c.n }

// Ops returns a copy of the gate list.
func (c *Circuit) Ops() []Op { return append([]Op(nil), c.ops...) }

// Len returns the number of gates.
func (c *Circuit) Len() int { return len(c.ops) }

// Depth returns the circuit depth assuming gates on disjoint qubits
// commute into the same layer (simple as-late-as-possible scheduling).
func (c *Circuit) Depth() int {
	busyUntil := make([]int, c.n)
	depth := 0
	for _, op := range c.ops {
		layer := busyUntil[op.Q1]
		if op.Kind.twoQubit() && busyUntil[op.Q2] > layer {
			layer = busyUntil[op.Q2]
		}
		layer++
		busyUntil[op.Q1] = layer
		if op.Kind.twoQubit() {
			busyUntil[op.Q2] = layer
		}
		if layer > depth {
			depth = layer
		}
	}
	return depth
}

// CountKind returns the number of gates of the given kind.
func (c *Circuit) CountKind(k GateKind) int {
	n := 0
	for _, op := range c.ops {
		if op.Kind == k {
			n++
		}
	}
	return n
}

func (c *Circuit) add(op Op) *Circuit {
	if op.Q1 < 0 || op.Q1 >= c.n || (op.Kind.twoQubit() && (op.Q2 < 0 || op.Q2 >= c.n)) {
		panic(fmt.Sprintf("quantum: op %v out of range for %d qubits", op, c.n))
	}
	if op.Kind.twoQubit() && op.Q1 == op.Q2 {
		panic(fmt.Sprintf("quantum: two-qubit op %v with identical qubits", op))
	}
	c.ops = append(c.ops, op)
	return c
}

// H appends a Hadamard on q.
func (c *Circuit) H(q int) *Circuit { return c.add(Op{Kind: GateH, Q1: q}) }

// X appends a Pauli-X on q.
func (c *Circuit) X(q int) *Circuit { return c.add(Op{Kind: GateX, Q1: q}) }

// Y appends a Pauli-Y on q.
func (c *Circuit) Y(q int) *Circuit { return c.add(Op{Kind: GateY, Q1: q}) }

// Z appends a Pauli-Z on q.
func (c *Circuit) Z(q int) *Circuit { return c.add(Op{Kind: GateZ, Q1: q}) }

// RX appends RX(θ) on q.
func (c *Circuit) RX(q int, theta float64) *Circuit {
	return c.add(Op{Kind: GateRX, Q1: q, Theta: theta})
}

// RY appends RY(θ) on q.
func (c *Circuit) RY(q int, theta float64) *Circuit {
	return c.add(Op{Kind: GateRY, Q1: q, Theta: theta})
}

// RZ appends RZ(θ) on q.
func (c *Circuit) RZ(q int, theta float64) *Circuit {
	return c.add(Op{Kind: GateRZ, Q1: q, Theta: theta})
}

// Phase appends diag(1, e^{iφ}) on q.
func (c *Circuit) Phase(q int, phi float64) *Circuit {
	return c.add(Op{Kind: GatePhase, Q1: q, Theta: phi})
}

// CNOT appends a controlled-X with the given control and target.
func (c *Circuit) CNOT(control, target int) *Circuit {
	return c.add(Op{Kind: GateCNOT, Q1: control, Q2: target})
}

// CZ appends a controlled-Z between a and b.
func (c *Circuit) CZ(a, b int) *Circuit { return c.add(Op{Kind: GateCZ, Q1: a, Q2: b}) }

// SWAP appends a swap of a and b.
func (c *Circuit) SWAP(a, b int) *Circuit { return c.add(Op{Kind: GateSWAP, Q1: a, Q2: b}) }

// ZZ appends exp(-iθ Z⊗Z/2) between a and b.
func (c *Circuit) ZZ(a, b int, theta float64) *Circuit {
	return c.add(Op{Kind: GateZZ, Q1: a, Q2: b, Theta: theta})
}

// XY appends exp(−iθ(X⊗X + Y⊗Y)/2) between a and b.
func (c *Circuit) XY(a, b int, theta float64) *Circuit {
	return c.add(Op{Kind: GateXY, Q1: a, Q2: b, Theta: theta})
}

// Apply runs the circuit on the given state in place.
// It panics if widths differ.
func (c *Circuit) Apply(s *State) {
	if s.NumQubits() != c.n {
		panic(fmt.Sprintf("quantum: circuit on %d qubits applied to %d-qubit state", c.n, s.NumQubits()))
	}
	for _, op := range c.ops {
		switch op.Kind {
		case GateH:
			s.H(op.Q1)
		case GateX:
			s.X(op.Q1)
		case GateY:
			s.Y(op.Q1)
		case GateZ:
			s.Z(op.Q1)
		case GateRX:
			s.RX(op.Q1, op.Theta)
		case GateRY:
			s.RY(op.Q1, op.Theta)
		case GateRZ:
			s.RZ(op.Q1, op.Theta)
		case GatePhase:
			s.Phase(op.Q1, op.Theta)
		case GateCNOT:
			s.CNOT(op.Q1, op.Q2)
		case GateCZ:
			s.CZ(op.Q1, op.Q2)
		case GateSWAP:
			s.SWAP(op.Q1, op.Q2)
		case GateZZ:
			s.ZZ(op.Q1, op.Q2, op.Theta)
		case GateXY:
			s.XY(op.Q1, op.Q2, op.Theta)
		default:
			panic(fmt.Sprintf("quantum: unknown gate kind %v", op.Kind))
		}
	}
}

// Simulate runs the circuit from |0...0⟩ and returns the final state.
func (c *Circuit) Simulate() *State {
	s := NewState(c.n)
	c.Apply(s)
	return s
}

// String renders the circuit one op per line.
func (c *Circuit) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "circuit(%d qubits, %d ops)\n", c.n, len(c.ops))
	for _, op := range c.ops {
		b.WriteString("  ")
		b.WriteString(op.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Append concatenates the gates of other onto c. Register widths must
// match.
func (c *Circuit) Append(other *Circuit) *Circuit {
	if other.n != c.n {
		panic(fmt.Sprintf("quantum: appending %d-qubit circuit to %d-qubit circuit", other.n, c.n))
	}
	c.ops = append(c.ops, other.ops...)
	return c
}

// Inverse returns the adjoint circuit: gates reversed, rotation angles
// negated. Applying c then c.Inverse() is the identity.
func (c *Circuit) Inverse() *Circuit {
	inv := NewCircuit(c.n)
	for i := len(c.ops) - 1; i >= 0; i-- {
		op := c.ops[i]
		if op.Kind.parametric() {
			op.Theta = -op.Theta
		}
		// H, X, Y, Z, CNOT, CZ and SWAP are self-inverse.
		inv.ops = append(inv.ops, op)
	}
	return inv
}
