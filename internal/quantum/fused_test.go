package quantum

import (
	"math/rand"
	"testing"
)

// The fused layer sweep must reproduce the unfused kernel sequence —
// fill, per-chunk phase, RXAll — EXACTLY, bit for bit: it reorders
// disjoint butterflies across chunks but never changes any amplitude's
// operation sequence. Covered shapes: single-chunk (n=10), serial
// multi-chunk (n=14), parallel even (n=16), parallel odd n (n=17,
// cross-chunk final qubit).
func TestLayerRunnerMatchesUnfusedKernels(t *testing.T) {
	const theta = 0.8342
	for _, n := range []int{10, 14, 16, 17} {
		dim := 1 << n
		rng := rand.New(rand.NewSource(int64(200 + n)))
		phases := make([]float64, dim)
		for i := range phases {
			phases[i] = rng.NormFloat64()
		}
		for _, fill := range []bool{false, true} {
			src := randomParallelState(n, int64(300+n))

			want := src.Clone()
			if fill {
				want.FillUniform()
			}
			applyPhaseRange(want.amps, phases)
			want.RXAll(theta)

			got := src.Clone()
			r := NewLayerRunner(got)
			r.Layer(theta, fill, func(lo, hi int) {
				applyPhaseRange(got.amps[lo:hi], phases[lo:hi])
			})
			ampsEqualExact(t, "LayerRunner", want, got, 0)

			// Mixer-only form (nil phase), as the gradient reverse sweep
			// uses it.
			wantMix := src.Clone()
			wantMix.RXAll(-theta)
			gotMix := src.Clone()
			NewLayerRunner(gotMix).Layer(-theta, false, nil)
			ampsEqualExact(t, "LayerRunner-mix", wantMix, gotMix, 0)
		}
	}
}

// Cross-GOMAXPROCS bit-identity for the fused layer kernels, in the
// style of the gate-kernel suite.
func TestLayerRunnerBitIdenticalAcrossWorkers(t *testing.T) {
	for _, n := range []int{16, 17} {
		n := n
		dim := 1 << n
		rng := rand.New(rand.NewSource(int64(400 + n)))
		phases := make([]float64, dim)
		for i := range phases {
			phases[i] = rng.NormFloat64()
		}
		withWorkers(t, identityWorkers,
			func() any {
				s := randomParallelState(n, int64(500+n))
				r := NewLayerRunner(s)
				r.Layer(0.613, true, func(lo, hi int) {
					applyPhaseRange(s.amps[lo:hi], phases[lo:hi])
				})
				r.Layer(-1.234, false, nil)
				return s
			},
			func(t *testing.T, baseline, got any, w int) {
				ampsEqualExact(t, "LayerRunner", baseline.(*State), got.(*State), w)
			})
	}
}
