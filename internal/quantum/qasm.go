package quantum

import (
	"fmt"
	"strings"
)

// QASM renders the circuit as OpenQASM 2.0, the interchange format
// accepted by IBM Quantum and most simulators — the bridge from this
// exact simulator to real hardware. Gates with no single standard-
// library QASM equivalent are emitted as their textbook decompositions:
//
//	ZZ(θ)  → cx; rz(θ); cx
//	XY(θ)  → rxx(θ) and ryy(θ) decompositions via h/sdg bases
//	P(φ)   → u1(φ)
func (c *Circuit) QASM() string {
	var b strings.Builder
	b.WriteString("OPENQASM 2.0;\n")
	b.WriteString("include \"qelib1.inc\";\n")
	fmt.Fprintf(&b, "qreg q[%d];\n", c.n)
	for _, op := range c.ops {
		switch op.Kind {
		case GateH:
			fmt.Fprintf(&b, "h q[%d];\n", op.Q1)
		case GateX:
			fmt.Fprintf(&b, "x q[%d];\n", op.Q1)
		case GateY:
			fmt.Fprintf(&b, "y q[%d];\n", op.Q1)
		case GateZ:
			fmt.Fprintf(&b, "z q[%d];\n", op.Q1)
		case GateRX:
			fmt.Fprintf(&b, "rx(%.12g) q[%d];\n", op.Theta, op.Q1)
		case GateRY:
			fmt.Fprintf(&b, "ry(%.12g) q[%d];\n", op.Theta, op.Q1)
		case GateRZ:
			fmt.Fprintf(&b, "rz(%.12g) q[%d];\n", op.Theta, op.Q1)
		case GatePhase:
			fmt.Fprintf(&b, "u1(%.12g) q[%d];\n", op.Theta, op.Q1)
		case GateCNOT:
			fmt.Fprintf(&b, "cx q[%d],q[%d];\n", op.Q1, op.Q2)
		case GateCZ:
			fmt.Fprintf(&b, "cz q[%d],q[%d];\n", op.Q1, op.Q2)
		case GateSWAP:
			fmt.Fprintf(&b, "swap q[%d],q[%d];\n", op.Q1, op.Q2)
		case GateZZ:
			fmt.Fprintf(&b, "cx q[%d],q[%d];\n", op.Q1, op.Q2)
			fmt.Fprintf(&b, "rz(%.12g) q[%d];\n", op.Theta, op.Q2)
			fmt.Fprintf(&b, "cx q[%d],q[%d];\n", op.Q1, op.Q2)
		case GateXY:
			// exp(−iθ(XX+YY)/2) = RXX(θ)·RYY(θ); emit each via basis
			// changes around a ZZ interaction.
			writeRXX(&b, op.Q1, op.Q2, op.Theta)
			writeRYY(&b, op.Q1, op.Q2, op.Theta)
		default:
			panic(fmt.Sprintf("quantum: QASM export for unknown gate %v", op.Kind))
		}
	}
	return b.String()
}

// writeRXX emits exp(−iθ X⊗X/2) = (H⊗H)·ZZ(θ)·(H⊗H).
func writeRXX(b *strings.Builder, a, c int, theta float64) {
	fmt.Fprintf(b, "h q[%d];\nh q[%d];\n", a, c)
	fmt.Fprintf(b, "cx q[%d],q[%d];\nrz(%.12g) q[%d];\ncx q[%d],q[%d];\n", a, c, theta, c, a, c)
	fmt.Fprintf(b, "h q[%d];\nh q[%d];\n", a, c)
}

// writeRYY emits exp(−iθ Y⊗Y/2) via the sdg/h basis change
// (Y = S·X·S†, so conjugate each qubit by sdg·h).
func writeRYY(b *strings.Builder, a, c int, theta float64) {
	fmt.Fprintf(b, "sdg q[%d];\nsdg q[%d];\nh q[%d];\nh q[%d];\n", a, c, a, c)
	fmt.Fprintf(b, "cx q[%d],q[%d];\nrz(%.12g) q[%d];\ncx q[%d],q[%d];\n", a, c, theta, c, a, c)
	fmt.Fprintf(b, "h q[%d];\nh q[%d];\ns q[%d];\ns q[%d];\n", a, c, a, c)
}
