package quantum

import (
	"fmt"
	"math"
	"runtime"
)

// This file holds the fused, allocation-free kernels the QAOA hot path
// is built from. The gate methods in state.go are the readable
// reference semantics; these kernels compute identical amplitudes (to
// floating-point rounding) with fewer passes over the state vector and
// no per-call heap allocation. Large registers (ParallelDim amplitudes
// and up) run element-wise kernels on parallel chunks; writes are
// disjoint and each amplitude's new value depends only on old values,
// so results are bit-identical to a serial pass at every GOMAXPROCS.

// NewUniformState returns the uniform superposition H^⊗n|0…0⟩, the
// starting state of every QAOA circuit, without applying n Hadamard
// passes.
func NewUniformState(n int) *State {
	s := NewState(n)
	s.FillUniform()
	return s
}

// FillUniform overwrites s with the uniform superposition (amplitude
// 1/√2^n everywhere). It is the in-place reset used by evaluation
// workspaces between objective calls.
func (s *State) FillUniform() {
	amp := complex(1/math.Sqrt(float64(len(s.amps))), 0)
	if s.parallel() {
		runRange(len(s.amps), true, func(lo, hi int) {
			amps := s.amps[lo:hi]
			for i := range amps {
				amps[i] = amp
			}
		})
		return
	}
	for i := range s.amps {
		s.amps[i] = amp
	}
}

// parallel reports whether element-wise kernels on this state should
// fan out across the worker pool. Parallel and serial passes are
// bit-identical; this only gates scheduling. Shard-local states are
// pinned serial: their owning shard worker IS the parallelism.
func (s *State) parallel() bool {
	return !s.serial && len(s.amps) >= ParallelDim && runtime.GOMAXPROCS(0) > 1
}

// RXAll applies RX(θ) to every qubit — the QAOA mixing layer
// exp(−i(θ/2)ΣXi) — walking the amplitude array once per fused qubit
// pair instead of once per qubit. The amplitudes match n sequential
// RX(q, θ) calls to rounding error.
func (s *State) RXAll(theta float64) {
	sin, cos := math.Sincos(theta / 2)
	c := complex(cos, 0)
	ms := complex(0, -sin)
	q := 0
	for ; q+1 < s.n; q += 2 {
		s.rxPair(q, c, ms)
	}
	if q < s.n {
		s.Apply1Q(q, c, ms, ms, c)
	}
}

// rxPair applies (c·I + ms·X) ⊗ (c·I + ms·X) to qubits q and q+1 in a
// single pass: a 4×4 kernel touching each amplitude once where two
// Apply1Q calls would touch it twice. Large registers split the
// representative set across workers; the per-amplitude arithmetic is
// identical, so the result matches the serial pass bit-for-bit.
func (s *State) rxPair(q int, c, ms complex128) {
	cc := c * c
	cm := c * ms
	mm := ms * ms
	if s.parallel() {
		runRange(len(s.amps)>>2, true, func(lo, hi int) {
			s.rxPairRange(q, lo, hi, cc, cm, mm)
		})
		return
	}
	s.rxPairRange(q, 0, len(s.amps)>>2, cc, cm, mm)
}

// rxPairRange applies the fused two-qubit RX kernel for representatives
// r ∈ [rlo, rhi). Representative r maps to the amplitude index with the
// bits of qubits q and q+1 cleared: i = ((r &^ (bit0−1)) << 2) | (r &
// (bit0−1)); ascending r visits the same (base, offset) pairs as the
// classic base-stride loop, in the same order.
func (s *State) rxPairRange(q, rlo, rhi int, cc, cm, mm complex128) {
	bit0 := 1 << uint(q)
	bit1 := bit0 << 1
	mask := bit0 - 1
	for r := rlo; r < rhi; {
		i := ((r &^ mask) << 2) | (r & mask)
		run := bit0 - (r & mask)
		if run > rhi-r {
			run = rhi - r
		}
		for k := 0; k < run; k++ {
			i00 := i + k
			i01 := i00 | bit0
			i10 := i00 | bit1
			i11 := i01 | bit1
			a00, a01, a10, a11 := s.amps[i00], s.amps[i01], s.amps[i10], s.amps[i11]
			s.amps[i00] = cc*a00 + cm*(a01+a10) + mm*a11
			s.amps[i01] = cc*a01 + cm*(a00+a11) + mm*a10
			s.amps[i10] = cc*a10 + cm*(a00+a11) + mm*a01
			s.amps[i11] = cc*a11 + cm*(a01+a10) + mm*a00
		}
		r += run
	}
}

// MulDiagonalIndexed multiplies amplitude z by factors[idx[z]] — the
// table-driven form of ApplyDiagonalPhase for diagonal operators with
// few distinct values (a QAOA phase separator over an 8-node unweighted
// graph has ≲ 30 distinct cut values against 256 amplitudes, so the
// expensive complex exponentials are computed once per distinct value
// and only looked up here). It panics on a length mismatch.
func (s *State) MulDiagonalIndexed(idx []int32, factors []complex128) {
	if len(idx) != len(s.amps) {
		panic(fmt.Sprintf("quantum: index table length %d != dim %d", len(idx), len(s.amps)))
	}
	if s.parallel() {
		runRange(len(s.amps), true, func(lo, hi int) {
			mulIndexedRange(s.amps[lo:hi], idx[lo:hi], factors)
		})
		return
	}
	mulIndexedRange(s.amps, idx, factors)
}

func mulIndexedRange(amps []complex128, idx []int32, factors []complex128) {
	for i, k := range idx {
		amps[i] *= factors[k]
	}
}

// applyPhaseRange multiplies amps[i] by e^{i·phases[i]} over one chunk.
func applyPhaseRange(amps []complex128, phases []float64) {
	for i, ph := range phases {
		sin, cos := math.Sincos(ph)
		amps[i] *= complex(cos, sin)
	}
}

