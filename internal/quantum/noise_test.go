package quantum

import (
	"math"
	"math/rand"
	"testing"
)

func TestNoiseModelValidate(t *testing.T) {
	if err := (NoiseModel{P1: 0.01, P2: 0.05}).Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
	for _, nm := range []NoiseModel{{P1: -0.1}, {P2: 1.5}} {
		if err := nm.Validate(); err == nil {
			t.Errorf("invalid model %+v accepted", nm)
		}
	}
	if !(NoiseModel{}).Noiseless() || (NoiseModel{P1: 0.1}).Noiseless() {
		t.Error("Noiseless wrong")
	}
}

func TestApplyNoisyZeroNoiseMatchesApply(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewCircuit(3).H(0).CNOT(0, 1).RX(2, 0.7).ZZ(1, 2, 0.4)
	exact := c.Simulate()
	noisy := NewState(3)
	c.ApplyNoisy(noisy, NoiseModel{}, rng)
	if !noisy.Equal(exact, 1e-12) {
		t.Error("zero-noise trajectory differs from exact simulation")
	}
}

func TestNoisyTrajectoryStaysNormalized(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := NewCircuit(4)
	for i := 0; i < 30; i++ {
		c.H(i % 4)
		c.CNOT(i%4, (i+1)%4)
	}
	s := NewState(4)
	c.ApplyNoisy(s, NoiseModel{P1: 0.3, P2: 0.3}, rng)
	if math.Abs(s.Norm()-1) > 1e-10 {
		t.Errorf("noisy trajectory norm = %v", s.Norm())
	}
}

func TestNoiseDegradesBellFidelity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := NewCircuit(2).H(0).CNOT(0, 1)
	ideal := c.Simulate()
	nm := NoiseModel{P1: 0.2, P2: 0.2}
	const trials = 400
	avgFid := 0.0
	for k := 0; k < trials; k++ {
		s := NewState(2)
		c.ApplyNoisy(s, nm, rng)
		avgFid += s.Fidelity(ideal) / trials
	}
	if avgFid > 0.95 {
		t.Errorf("average fidelity %v too high for 20%% depolarizing noise", avgFid)
	}
	if avgFid < 0.2 {
		t.Errorf("average fidelity %v implausibly low", avgFid)
	}
}

func TestNoisyExpectationConvergesToUniform(t *testing.T) {
	// Under heavy depolarizing noise the output approaches the maximally
	// mixed state; a diagonal observable's expectation approaches its
	// unweighted mean.
	rng := rand.New(rand.NewSource(4))
	c := NewCircuit(3)
	for layer := 0; layer < 6; layer++ {
		for q := 0; q < 3; q++ {
			c.H(q)
			c.CNOT(q, (q+1)%3)
		}
	}
	diag := []float64{0, 1, 2, 3, 4, 5, 6, 7}
	got := c.NoisyExpectationDiagonal(diag, NoiseModel{P1: 0.5, P2: 0.5}, 600, rng)
	if math.Abs(got-3.5) > 0.4 {
		t.Errorf("heavy-noise expectation = %v, want ~3.5", got)
	}
}

func TestNoisyExpectationNoiselessShortcut(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := NewCircuit(2).H(0).CNOT(0, 1)
	diag := []float64{0, 1, 1, 0}
	exact := c.Simulate().ExpectationDiagonal(diag)
	got := c.NoisyExpectationDiagonal(diag, NoiseModel{}, 3, rng)
	if math.Abs(got-exact) > 1e-12 {
		t.Errorf("noiseless shortcut = %v, want %v", got, exact)
	}
}

func TestNoisyExpectationDeterministicWithSeed(t *testing.T) {
	c := NewCircuit(2).H(0).CNOT(0, 1)
	diag := []float64{0, 1, 1, 0}
	nm := NoiseModel{P1: 0.1, P2: 0.1}
	a := c.NoisyExpectationDiagonal(diag, nm, 50, rand.New(rand.NewSource(7)))
	b := c.NoisyExpectationDiagonal(diag, nm, 50, rand.New(rand.NewSource(7)))
	if a != b {
		t.Error("same seed produced different noisy estimates")
	}
}

func TestNoisyExpectationPanics(t *testing.T) {
	c := NewCircuit(1).H(0)
	for i, f := range []func(){
		func() {
			c.NoisyExpectationDiagonal([]float64{0, 1}, NoiseModel{P1: 0.1}, 0, rand.New(rand.NewSource(0)))
		},
		func() { c.ApplyNoisy(NewState(2), NoiseModel{}, rand.New(rand.NewSource(0))) },
		func() { c.ApplyNoisy(NewState(1), NoiseModel{P1: 2}, rand.New(rand.NewSource(0))) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}
