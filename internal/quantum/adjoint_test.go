package quantum

import (
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestCopyFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	src := randomKernelState(rng, 5)
	dst := NewState(5)
	dst.CopyFrom(src)
	if !dst.Equal(src, 0) {
		t.Fatal("CopyFrom did not reproduce the source amplitudes")
	}
	// Deep copy: mutating the destination leaves the source untouched.
	before := src.Amplitude(3)
	dst.X(0)
	if src.Amplitude(3) != before {
		t.Fatal("CopyFrom aliased the source buffer")
	}
}

func TestCopyFromWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CopyFrom accepted mismatched widths")
		}
	}()
	NewState(3).CopyFrom(NewState(4))
}

func TestMulDiagonalReal(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := randomKernelState(rng, 4)
	diag := make([]float64, s.Dim())
	for i := range diag {
		diag[i] = rng.NormFloat64()
	}
	want := make([]complex128, s.Dim())
	for z := range want {
		want[z] = s.Amplitude(uint64(z)) * complex(diag[z], 0)
	}
	s.MulDiagonalReal(diag)
	for z := range want {
		if s.Amplitude(uint64(z)) != want[z] {
			t.Fatalf("amplitude %d: got %v want %v", z, s.Amplitude(uint64(z)), want[z])
		}
	}
}

// InnerProductDiagonal must equal ⟨s|(D|t⟩)⟩ computed through the
// reference MulDiagonalReal + InnerProduct path.
func TestInnerProductDiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	s := randomKernelState(rng, 6)
	u := randomKernelState(rng, 6)
	diag := make([]float64, s.Dim())
	for i := range diag {
		diag[i] = rng.NormFloat64() * 3
	}
	dt := u.Clone()
	dt.MulDiagonalReal(diag)
	want := s.InnerProduct(dt)
	got := s.InnerProductDiagonal(u, diag)
	if cmplx.Abs(got-want) > 1e-12 {
		t.Fatalf("InnerProductDiagonal = %v, want %v", got, want)
	}
}

// InnerProductSumX must equal Σ_q ⟨s|X_q|t⟩ computed with explicit X
// gate applications.
func TestInnerProductSumX(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, n := range []int{1, 2, 5} {
		s := randomKernelState(rng, n)
		u := randomKernelState(rng, n)
		var want complex128
		for q := 0; q < n; q++ {
			x := u.Clone()
			x.X(q)
			want += s.InnerProduct(x)
		}
		got := s.InnerProductSumX(u)
		if cmplx.Abs(got-want) > 1e-12 {
			t.Fatalf("n=%d: InnerProductSumX = %v, want %v", n, got, want)
		}
	}
}

// The adjoint inner products must not allocate: they sit inside the
// per-stage loop of every analytic gradient evaluation.
func TestAdjointKernelsZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	s := randomKernelState(rng, 8)
	u := randomKernelState(rng, 8)
	diag := make([]float64, s.Dim())
	for i := range diag {
		diag[i] = rng.Float64()
	}
	var sink complex128
	if allocs := testing.AllocsPerRun(100, func() {
		sink += s.InnerProductDiagonal(u, diag)
		sink += s.InnerProductSumX(u)
		u.CopyFrom(s)
		u.MulDiagonalReal(diag)
	}); allocs != 0 {
		t.Fatalf("adjoint kernels allocate %v times per run", allocs)
	}
	_ = sink
}
