package quantum

import (
	"math"
	"math/bits"
)

// Fused QAOA layer kernels.
//
// A QAOA stage used to make separate full passes over the state vector:
// one for the diagonal phase separator, then one per fused qubit pair
// for the RX mixer (n/2 passes), plus an initial fill. At n ≥ 20 every
// one of those passes streams 16+ MiB through memory, and the kernels
// are bandwidth-bound — so pass-count, not thread-count, is the lever.
//
// The LayerRunner collapses a whole stage into:
//
//   - ONE cache-blocked low sweep: per fixed-geometry chunk (ChunkLen
//     elements, resident in L2), the optional uniform fill, the phase
//     separator, and every mixer pair whose qubits lie inside the chunk
//     are applied back-to-back while the chunk is hot. For a 2^15
//     chunk that covers qubit pairs (0,1)…(12,13) — all but the top few
//     qubits of even a 28-qubit register.
//   - One full pass per remaining cross-chunk pair (at most ⌈(n−cb)/2⌉
//     passes), in ascending qubit order, plus the odd final qubit.
//
// Bit-identity: each amplitude goes through exactly the same arithmetic
// operations in the same algebraic order as FillUniform + phase +
// RXAll — the butterflies of distinct pairs touch disjoint index sets,
// so interleaving them per chunk instead of per pass cannot change any
// intermediate value. The chunk geometry is the fixed ChunkLen(dim)
// layout, so results are also identical at every GOMAXPROCS.

// LayerRunner applies fused QAOA layers (phase separator + RX mixer) to
// one state. It holds the persistent closures the worker pool dispatch
// needs, so warm Layer calls allocate nothing. A runner is bound to its
// state and is not safe for concurrent use.
type LayerRunner struct {
	s   *State
	amp complex128 // uniform-fill amplitude 1/√dim

	// limit caps the mixer sweep: only RX pairs with q+1 < limit (and,
	// when limit == s.n, the odd final qubit) are applied. Zero means
	// the full register. Sharded states (shard.go) set it to stop the
	// in-shard sweep below the qubits the cross-shard exchange owns.
	limit int
	// clen overrides the chunk length of the low sweep (0: ChunkLen of
	// the state's own dimension). Sharded states pin it to the GLOBAL
	// chunk length so per-chunk phase callbacks see the same ranges the
	// flat path would.
	clen int

	// Per-Layer parameters, written before dispatch, read-only during.
	phase      func(lo, hi int)
	fill       bool
	cc, cm, mm complex128 // fused pair coefficients
	c, ms      complex128 // single-qubit RX coefficients
	pairQ      int        // current cross-chunk pair

	lowBody  func(lo, hi int)
	pairBody func(rlo, rhi int)
	oneBody  func(rlo, rhi int)
}

// NewLayerRunner returns a runner bound to s.
func NewLayerRunner(s *State) *LayerRunner {
	r := &LayerRunner{s: s, amp: complex(1/math.Sqrt(float64(len(s.amps))), 0)}
	r.lowBody = r.runLow
	r.pairBody = func(rlo, rhi int) {
		r.s.rxPairRange(r.pairQ, rlo, rhi, r.cc, r.cm, r.mm)
	}
	r.oneBody = func(rlo, rhi int) {
		bit := 1 << uint(r.s.n-1)
		r.s.apply1QRange(bit, rlo, rhi, r.c, r.ms, r.ms, r.c)
	}
	return r
}

// Layer applies one fused QAOA stage to the state: an optional uniform
// refill, the caller's phase separator (called per fixed-geometry
// chunk; nil to skip), and RX(theta) on every qubit. The amplitudes are
// bit-identical to FillUniform() + phase over the same chunk ranges +
// RXAll(theta).
func (r *LayerRunner) Layer(theta float64, fill bool, phase func(lo, hi int)) {
	s := r.s
	sin, cos := math.Sincos(theta / 2)
	r.c = complex(cos, 0)
	r.ms = complex(0, -sin)
	r.cc = r.c * r.c
	r.cm = r.c * r.ms
	r.mm = r.ms * r.ms
	r.phase = phase
	r.fill = fill

	dim := len(s.amps)
	clen := r.clen
	if clen == 0 {
		clen = ChunkLen(dim)
	}
	if clen > dim {
		clen = dim
	}
	limit := r.limit
	if limit == 0 {
		limit = s.n
	}
	nc := dim / clen
	par := s.parallel()

	// Low sweep: fill + phase + all in-chunk pairs while each chunk is
	// cache-resident.
	switch {
	case nc == 1:
		r.runLow(0, dim)
	case !par:
		for c := 0; c < nc; c++ {
			r.runLow(c*clen, (c+1)*clen)
		}
	default:
		dispatchChunks(nc, clen, r.lowBody)
	}

	// Cross-chunk pairs in ascending qubit order, then the odd final
	// qubit. With a single chunk everything was in-chunk already.
	cb := bits.TrailingZeros(uint(clen))
	q := cb - 1
	if q%2 != 0 {
		q = cb
	}
	for ; q+1 < limit; q += 2 {
		r.pairQ = q
		runRange(dim>>2, par, r.pairBody)
	}
	if limit == s.n && s.n%2 == 1 && nc > 1 {
		runRange(dim>>1, par, r.oneBody)
	}
}

// runLow processes one chunk of the low sweep: fill, phase, every mixer
// pair both of whose qubits address bits inside the chunk, and — when
// the chunk spans the whole register — the odd final qubit. Chunk
// bounds are ChunkLen-aligned, so the representative ranges [lo>>2,
// hi>>2) and [lo>>1, hi>>1) map exactly onto the chunk's butterflies.
func (r *LayerRunner) runLow(lo, hi int) {
	s := r.s
	if r.fill {
		amps := s.amps[lo:hi]
		for i := range amps {
			amps[i] = r.amp
		}
	}
	if r.phase != nil {
		r.phase(lo, hi)
	}
	span := hi - lo
	limit := r.limit
	if limit == 0 {
		limit = s.n
	}
	q := 0
	for ; q+1 < limit && 1<<uint(q+1) < span; q += 2 {
		s.rxPairRange(q, lo>>2, hi>>2, r.cc, r.cm, r.mm)
	}
	if limit == s.n && q == s.n-1 && 1<<uint(q) < span {
		// Single-chunk register with odd n: the final qubit is in-chunk.
		s.apply1QRange(1<<uint(q), lo>>1, hi>>1, r.c, r.ms, r.ms, r.c)
	}
}
