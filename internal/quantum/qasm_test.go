package quantum

import (
	"strings"
	"testing"
)

func TestQASMHeaderAndGates(t *testing.T) {
	c := NewCircuit(3).
		H(0).X(1).Y(2).Z(0).
		RX(0, 0.5).RY(1, 0.25).RZ(2, 1.5).Phase(0, 0.75).
		CNOT(0, 1).CZ(1, 2).SWAP(0, 2)
	q := c.QASM()
	for _, want := range []string{
		"OPENQASM 2.0;",
		"include \"qelib1.inc\";",
		"qreg q[3];",
		"h q[0];",
		"x q[1];",
		"y q[2];",
		"z q[0];",
		"rx(0.5) q[0];",
		"ry(0.25) q[1];",
		"rz(1.5) q[2];",
		"u1(0.75) q[0];",
		"cx q[0],q[1];",
		"cz q[1],q[2];",
		"swap q[0],q[2];",
	} {
		if !strings.Contains(q, want) {
			t.Errorf("QASM missing %q:\n%s", want, q)
		}
	}
}

func TestQASMZZDecomposition(t *testing.T) {
	q := NewCircuit(2).ZZ(0, 1, 0.8).QASM()
	want := "cx q[0],q[1];\nrz(0.8) q[1];\ncx q[0],q[1];"
	if !strings.Contains(q, want) {
		t.Errorf("ZZ decomposition missing:\n%s", q)
	}
}

func TestQASMXYDecomposition(t *testing.T) {
	q := NewCircuit(2).XY(0, 1, 0.6).QASM()
	// Must contain both basis-changed ZZ blocks and the sdg/s wrappers.
	for _, want := range []string{"sdg q[0];", "s q[0];", "rz(0.6) q[1];"} {
		if !strings.Contains(q, want) {
			t.Errorf("XY decomposition missing %q:\n%s", want, q)
		}
	}
	if strings.Count(q, "cx q[0],q[1];") != 4 { // 2 per ZZ block
		t.Errorf("XY decomposition should contain 4 cx:\n%s", q)
	}
}

func TestQASMQAOAShapedCircuit(t *testing.T) {
	// A depth-1 QAOA-like circuit exports without panicking and with one
	// line per gate (+3 header lines, ZZ expands to 3).
	c := NewCircuit(4)
	for q := 0; q < 4; q++ {
		c.H(q)
	}
	c.ZZ(0, 1, 0.4).ZZ(2, 3, 0.4)
	for q := 0; q < 4; q++ {
		c.RX(q, 0.6)
	}
	q := c.QASM()
	lines := strings.Count(strings.TrimSpace(q), "\n") + 1
	want := 3 + 4 + 2*3 + 4
	if lines != want {
		t.Errorf("QASM lines = %d, want %d:\n%s", lines, want, q)
	}
}
