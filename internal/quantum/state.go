// Package quantum implements the exact dense state-vector simulator the
// reproduction uses in place of QuTiP. A State holds the 2^n complex
// amplitudes of an n-qubit register; gates are applied in place. Qubit 0
// is the least-significant bit of the basis-state index.
//
// The simulator is exact (no noise model): the paper's evaluation runs
// on a noiseless QuTiP simulation, so the optimization landscapes seen
// by the classical optimizers here are identical in kind.
package quantum

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"sync/atomic"
)

// MaxQubits bounds state allocation (2^30 amplitudes = 16 GiB). The
// practical ceiling for flat-array evaluations is n = 26–28 depending
// on how many state buffers the caller holds (a gradient workspace
// holds two); n = 29–30 is the territory of the sharded representation
// (shard.go), which splits the register across independently allocated
// shards with the same two-state-vector budget.
const MaxQubits = 30

// State is the dense state vector of an n-qubit register.
type State struct {
	n    int
	amps []complex128
	// serial pins every kernel on this state to the calling goroutine.
	// Shard-local states set it so in-shard work never re-enters the
	// worker pool from a shard worker (locality is the point of a shard).
	serial bool
}

// ampBytes tracks cumulative amplitude-array allocation across the
// process, so benchmarks can report the high-water state memory of a
// workspace (states are held for the workspace lifetime, so the delta
// across setup is the live footprint).
var ampBytes atomic.Int64

// AmpBytesAllocated returns the cumulative bytes of amplitude storage
// allocated by NewState, Clone and NewShardedState since process start.
func AmpBytesAllocated() int64 { return ampBytes.Load() }

// NewState returns the n-qubit computational basis state |0...0⟩.
func NewState(n int) *State {
	if n < 1 || n > MaxQubits {
		panic(fmt.Sprintf("quantum: qubit count %d out of [1,%d]", n, MaxQubits))
	}
	s := &State{n: n, amps: make([]complex128, 1<<uint(n))}
	ampBytes.Add(int64(16) << uint(n))
	s.amps[0] = 1
	return s
}

// NewBasisState returns the computational basis state |index⟩.
func NewBasisState(n int, index uint64) *State {
	s := NewState(n)
	if index >= uint64(len(s.amps)) {
		panic(fmt.Sprintf("quantum: basis index %d out of range for %d qubits", index, n))
	}
	s.amps[0] = 0
	s.amps[index] = 1
	return s
}

// NumQubits returns the register width.
func (s *State) NumQubits() int { return s.n }

// Dim returns the Hilbert-space dimension 2^n.
func (s *State) Dim() int { return len(s.amps) }

// Amplitude returns the amplitude of basis state |index⟩.
func (s *State) Amplitude(index uint64) complex128 { return s.amps[index] }

// Clone returns a deep copy of s.
func (s *State) Clone() *State {
	c := &State{n: s.n, amps: make([]complex128, len(s.amps)), serial: s.serial}
	ampBytes.Add(int64(16 * len(s.amps)))
	copy(c.amps, s.amps)
	return c
}

// Norm returns the 2-norm of the state vector (1 for a valid state).
// The sum runs over the fixed reduction geometry (reduce.go), so it is
// bit-identical at every GOMAXPROCS setting.
func (s *State) Norm() float64 {
	if reduceChunkCount(len(s.amps)) == 1 {
		// Single chunk: no reduction closure, no allocation.
		return math.Sqrt(normSqPartial(s.amps))
	}
	t, _ := ReduceChunks(len(s.amps), func(lo, hi int) (float64, float64) {
		return normSqPartial(s.amps[lo:hi]), 0
	})
	return math.Sqrt(t)
}

// normSqPartial returns Σ|a|² over one contiguous amplitude range.
func normSqPartial(amps []complex128) float64 {
	t := 0.0
	for _, a := range amps {
		t += real(a)*real(a) + imag(a)*imag(a)
	}
	return t
}

// Normalize rescales the state to unit norm. It panics on a zero vector.
func (s *State) Normalize() {
	n := s.Norm()
	if n == 0 {
		panic("quantum: cannot normalize zero state")
	}
	inv := complex(1/n, 0)
	if s.parallel() {
		runRange(len(s.amps), true, func(lo, hi int) {
			amps := s.amps[lo:hi]
			for i := range amps {
				amps[i] *= inv
			}
		})
		return
	}
	for i := range s.amps {
		s.amps[i] *= inv
	}
}

// Probability returns |⟨index|ψ⟩|².
func (s *State) Probability(index uint64) float64 {
	a := s.amps[index]
	return real(a)*real(a) + imag(a)*imag(a)
}

// Probabilities returns the full measurement distribution over the
// computational basis.
func (s *State) Probabilities() []float64 {
	p := make([]float64, len(s.amps))
	for i, a := range s.amps {
		p[i] = real(a)*real(a) + imag(a)*imag(a)
	}
	return p
}

// InnerProduct returns ⟨s|t⟩. It panics if widths differ. The sum runs
// over the fixed reduction geometry (reduce.go): bit-identical results
// at every GOMAXPROCS setting.
func (s *State) InnerProduct(t *State) complex128 {
	if s.n != t.n {
		panic("quantum: qubit count mismatch in InnerProduct")
	}
	if reduceChunkCount(len(s.amps)) == 1 {
		re, im := dotPartial(s.amps, t.amps)
		return complex(re, im)
	}
	re, im := ReduceChunks(len(s.amps), func(lo, hi int) (float64, float64) {
		return dotPartial(s.amps[lo:hi], t.amps[lo:hi])
	})
	return complex(re, im)
}

// dotPartial returns Σ conj(sa[i])·ta[i] over one contiguous range, in
// split real/imag form.
func dotPartial(sa, ta []complex128) (re, im float64) {
	for i, a := range sa {
		b := ta[i]
		re += real(a)*real(b) + imag(a)*imag(b)
		im += real(a)*imag(b) - imag(a)*real(b)
	}
	return re, im
}

// Fidelity returns |⟨s|t⟩|².
func (s *State) Fidelity(t *State) float64 {
	ip := s.InnerProduct(t)
	return real(ip)*real(ip) + imag(ip)*imag(ip)
}

// ExpectationDiagonal returns ⟨ψ|D|ψ⟩ for a diagonal observable D given
// by its diagonal in the computational basis. This is how the QAOA
// MaxCut cost Hamiltonian is evaluated. It panics on a length mismatch.
func (s *State) ExpectationDiagonal(diag []float64) float64 {
	if len(diag) != len(s.amps) {
		panic(fmt.Sprintf("quantum: diagonal length %d != dim %d", len(diag), len(s.amps)))
	}
	if reduceChunkCount(len(s.amps)) == 1 {
		return s.ExpectationDiagonalRange(0, diag)
	}
	e, _ := ReduceChunks(len(s.amps), func(lo, hi int) (float64, float64) {
		return s.ExpectationDiagonalRange(lo, diag[lo:hi]), 0
	})
	return e
}

// ExpectationDiagonalRange returns the partial sum Σ |amp[lo+i]|²·diag[i]
// over the range [lo, lo+len(diag)) — one chunk's contribution to
// ExpectationDiagonal. Streaming cost kernels call it with a diagonal
// slice they fill per chunk, inside ReduceChunks, so the combined value
// is bit-identical to the materialized-table path.
func (s *State) ExpectationDiagonalRange(lo int, diag []float64) float64 {
	s.checkRange(lo, len(diag))
	e := 0.0
	for i, d := range diag {
		a := s.amps[lo+i]
		e += (real(a)*real(a) + imag(a)*imag(a)) * d
	}
	return e
}

// ArgmaxProbability returns the basis state with the largest |amp|² and
// that probability, scanning in ascending index order (first maximum
// wins). It replaces Probabilities()-then-scan readouts, which allocate
// a 2^n table.
func (s *State) ArgmaxProbability() (uint64, float64) {
	best := -1.0
	var arg uint64
	for i, a := range s.amps {
		if p := real(a)*real(a) + imag(a)*imag(a); p > best {
			best = p
			arg = uint64(i)
		}
	}
	return arg, best
}

// checkRange panics unless [lo, lo+length) lies within the amplitude
// array.
func (s *State) checkRange(lo, length int) {
	if lo < 0 || length < 0 || lo+length > len(s.amps) {
		panic(fmt.Sprintf("quantum: range [%d,%d) out of dim %d", lo, lo+length, len(s.amps)))
	}
}

// Sample draws one computational-basis measurement outcome.
func (s *State) Sample(rng *rand.Rand) uint64 {
	r := rng.Float64()
	acc := 0.0
	for i, a := range s.amps {
		acc += real(a)*real(a) + imag(a)*imag(a)
		if r < acc {
			return uint64(i)
		}
	}
	return uint64(len(s.amps) - 1) // roundoff: return last state
}

// SampleCounts draws shots measurements and returns outcome counts as a
// map. It is a convenience wrapper over SampleOutcomes (sample.go),
// which is the allocation-lean form; both consume the RNG identically
// to the per-shot linear scan (one Float64 per shot, same outcome per
// shot).
func (s *State) SampleCounts(shots int, rng *rand.Rand) map[uint64]int {
	pairs := s.SampleOutcomes(shots, rng)
	counts := make(map[uint64]int, len(pairs))
	for _, p := range pairs {
		counts[p.Outcome] = p.Count
	}
	return counts
}

// --- single-qubit gates ---

// Apply1Q applies the 2×2 unitary [[u00,u01],[u10,u11]] to qubit q.
// Large registers split the 2^(n−1) amplitude pairs across workers;
// each pair is written by exactly one worker with the same arithmetic
// the serial pass uses, so the result is bit-identical at every
// GOMAXPROCS.
func (s *State) Apply1Q(q int, u00, u01, u10, u11 complex128) {
	s.checkQubit(q)
	bit := 1 << uint(q)
	if s.parallel() {
		runRange(len(s.amps)>>1, true, func(lo, hi int) {
			s.apply1QRange(bit, lo, hi, u00, u01, u10, u11)
		})
		return
	}
	s.apply1QRange(bit, 0, len(s.amps)>>1, u00, u01, u10, u11)
}

// apply1QRange applies the 2×2 kernel for pair representatives
// r ∈ [rlo, rhi). Representative r maps to the lower index of the pair
// by re-inserting a cleared target bit: i = ((r &^ (bit−1)) << 1) |
// (r & (bit−1)); ascending r walks the same (base, offset) order as the
// classic base-stride loop.
func (s *State) apply1QRange(bit, rlo, rhi int, u00, u01, u10, u11 complex128) {
	mask := bit - 1
	for r := rlo; r < rhi; {
		i := ((r &^ mask) << 1) | (r & mask)
		run := bit - (r & mask)
		if run > rhi-r {
			run = rhi - r
		}
		for k := 0; k < run; k++ {
			ii := i + k
			j := ii | bit
			a, b := s.amps[ii], s.amps[j]
			s.amps[ii] = u00*a + u01*b
			s.amps[j] = u10*a + u11*b
		}
		r += run
	}
}

// H applies the Hadamard gate to qubit q.
func (s *State) H(q int) {
	h := complex(1/math.Sqrt2, 0)
	s.Apply1Q(q, h, h, h, -h)
}

// X applies the Pauli-X gate to qubit q.
func (s *State) X(q int) { s.Apply1Q(q, 0, 1, 1, 0) }

// Y applies the Pauli-Y gate to qubit q.
func (s *State) Y(q int) { s.Apply1Q(q, 0, complex(0, -1), complex(0, 1), 0) }

// Z applies the Pauli-Z gate to qubit q.
func (s *State) Z(q int) { s.Apply1Q(q, 1, 0, 0, -1) }

// RX applies RX(θ) = exp(-iθX/2) to qubit q.
func (s *State) RX(q int, theta float64) {
	c := complex(math.Cos(theta/2), 0)
	ms := complex(0, -math.Sin(theta/2))
	s.Apply1Q(q, c, ms, ms, c)
}

// RY applies RY(θ) = exp(-iθY/2) to qubit q.
func (s *State) RY(q int, theta float64) {
	c := complex(math.Cos(theta/2), 0)
	sn := complex(math.Sin(theta/2), 0)
	s.Apply1Q(q, c, -sn, sn, c)
}

// RZ applies RZ(θ) = exp(-iθZ/2) = diag(e^{-iθ/2}, e^{iθ/2}) to qubit q.
// Element-wise diagonal: large registers run parallel chunks with
// bit-identical results.
func (s *State) RZ(q int, theta float64) {
	s.checkQubit(q)
	sin, cos := math.Sincos(theta / 2)
	p0 := complex(cos, -sin)
	p1 := complex(cos, sin)
	bit := 1 << uint(q)
	if s.parallel() {
		runRange(len(s.amps), true, func(lo, hi int) {
			s.rzRange(bit, lo, hi, p0, p1)
		})
		return
	}
	s.rzRange(bit, 0, len(s.amps), p0, p1)
}

func (s *State) rzRange(bit, lo, hi int, p0, p1 complex128) {
	for i := lo; i < hi; i++ {
		if i&bit == 0 {
			s.amps[i] *= p0
		} else {
			s.amps[i] *= p1
		}
	}
}

// Phase applies diag(1, e^{iφ}) to qubit q.
func (s *State) Phase(q int, phi float64) {
	s.checkQubit(q)
	sin, cos := math.Sincos(phi)
	p := complex(cos, sin)
	bit := 1 << uint(q)
	for i := range s.amps {
		if i&bit != 0 {
			s.amps[i] *= p
		}
	}
}

// --- two-qubit gates ---

// CNOT applies a controlled-X with the given control and target qubits.
func (s *State) CNOT(control, target int) {
	s.checkQubit(control)
	s.checkQubit(target)
	if control == target {
		panic("quantum: CNOT control == target")
	}
	cbit := 1 << uint(control)
	tbit := 1 << uint(target)
	for i := range s.amps {
		if i&cbit != 0 && i&tbit == 0 {
			j := i | tbit
			s.amps[i], s.amps[j] = s.amps[j], s.amps[i]
		}
	}
}

// CZ applies a controlled-Z between qubits a and b (symmetric).
func (s *State) CZ(a, b int) {
	s.checkQubit(a)
	s.checkQubit(b)
	if a == b {
		panic("quantum: CZ on identical qubits")
	}
	abit, bbit := 1<<uint(a), 1<<uint(b)
	for i := range s.amps {
		if i&abit != 0 && i&bbit != 0 {
			s.amps[i] = -s.amps[i]
		}
	}
}

// SWAP exchanges qubits a and b.
func (s *State) SWAP(a, b int) {
	s.checkQubit(a)
	s.checkQubit(b)
	if a == b {
		return
	}
	abit, bbit := 1<<uint(a), 1<<uint(b)
	for i := range s.amps {
		// Act once per pair: pick representatives with a-bit set, b-bit clear.
		if i&abit != 0 && i&bbit == 0 {
			j := i&^abit | bbit
			s.amps[i], s.amps[j] = s.amps[j], s.amps[i]
		}
	}
}

// XY applies exp(−iθ(X⊗X + Y⊗Y)/2) between qubits a and b: a rotation
// within the span of |01⟩ and |10⟩ that leaves |00⟩ and |11⟩ fixed. It
// preserves Hamming weight, which makes it the building block for
// constrained QAOA mixers (ring/XY mixers).
func (s *State) XY(a, b int, theta float64) {
	s.checkQubit(a)
	s.checkQubit(b)
	if a == b {
		panic("quantum: XY on identical qubits")
	}
	c := complex(math.Cos(theta), 0)
	ms := complex(0, -math.Sin(theta))
	abit, bbit := 1<<uint(a), 1<<uint(b)
	for i := range s.amps {
		// Act once per {|01⟩, |10⟩} pair: representative has a set, b clear.
		if i&abit != 0 && i&bbit == 0 {
			j := i&^abit | bbit
			ai, aj := s.amps[i], s.amps[j]
			s.amps[i] = c*ai + ms*aj
			s.amps[j] = ms*ai + c*aj
		}
	}
}

// ZZ applies exp(-iθ Z⊗Z/2) between qubits a and b. It equals the gate
// sequence CNOT(a,b)·RZ_b(θ)·CNOT(a,b) and is the fast path for QAOA
// phase separators.
func (s *State) ZZ(a, b int, theta float64) {
	s.checkQubit(a)
	s.checkQubit(b)
	if a == b {
		panic("quantum: ZZ on identical qubits")
	}
	sin, cos := math.Sincos(theta / 2)
	pSame := complex(cos, -sin) // Z⊗Z eigenvalue +1
	pDiff := complex(cos, sin)  // Z⊗Z eigenvalue -1
	abit, bbit := 1<<uint(a), 1<<uint(b)
	if s.parallel() {
		runRange(len(s.amps), true, func(lo, hi int) {
			s.zzRange(abit, bbit, lo, hi, pSame, pDiff)
		})
		return
	}
	s.zzRange(abit, bbit, 0, len(s.amps), pSame, pDiff)
}

func (s *State) zzRange(abit, bbit, lo, hi int, pSame, pDiff complex128) {
	for i := lo; i < hi; i++ {
		if (i&abit != 0) == (i&bbit != 0) {
			s.amps[i] *= pSame
		} else {
			s.amps[i] *= pDiff
		}
	}
}

// ApplyDiagonalPhase multiplies amplitude z by e^{i·phases[z]}.
// It panics on a length mismatch. Large registers (2^16 amplitudes and
// up) are processed in parallel chunks; the chunks are disjoint, so the
// result is bit-identical to a serial pass.
func (s *State) ApplyDiagonalPhase(phases []float64) {
	if len(phases) != len(s.amps) {
		panic("quantum: phase table length mismatch")
	}
	if s.parallel() {
		runRange(len(s.amps), true, func(lo, hi int) {
			applyPhaseRange(s.amps[lo:hi], phases[lo:hi])
		})
		return
	}
	applyPhaseRange(s.amps, phases)
}

// Equal reports whether the two states agree amplitude-wise within tol
// (including global phase).
func (s *State) Equal(t *State, tol float64) bool {
	if s.n != t.n {
		return false
	}
	for i := range s.amps {
		if cmplx.Abs(s.amps[i]-t.amps[i]) > tol {
			return false
		}
	}
	return true
}

// EqualUpToGlobalPhase reports whether the states describe the same ray,
// i.e. fidelity within tol of 1.
func (s *State) EqualUpToGlobalPhase(t *State, tol float64) bool {
	if s.n != t.n {
		return false
	}
	return math.Abs(s.Fidelity(t)-1) <= tol
}

func (s *State) checkQubit(q int) {
	if q < 0 || q >= s.n {
		panic(fmt.Sprintf("quantum: qubit %d out of range [0,%d)", q, s.n))
	}
}
