package quantum

import "fmt"

// This file holds the kernels adjoint-mode (reverse-sweep) analytic
// differentiation is built from. Adjoint differentiation keeps two
// state vectors — the ket |φ⟩ and the adjoint λ — un-applies circuit
// layers from both, and accumulates each partial derivative as an inner
// product between them. The kernels here are the allocation-free
// building blocks: buffer reuse, a diagonal-observable application, and
// the two inner-product forms the QAOA ansatz needs.
//
// Unlike the diagonal *application* kernels (MulDiagonalIndexed,
// ApplyDiagonalPhase), the inner-product reductions stay serial at
// every register size: a chunk-parallel reduction would change the
// floating-point summation order with the worker count, and gradients
// must be bit-reproducible across GOMAXPROCS settings.

// CopyFrom overwrites s with the amplitudes of t, without allocating.
// It panics if the register widths differ. This is the in-place
// analogue of Clone used by gradient workspaces to seed the adjoint
// state from the forward state.
func (s *State) CopyFrom(t *State) {
	if s.n != t.n {
		panic(fmt.Sprintf("quantum: CopyFrom width mismatch %d != %d", s.n, t.n))
	}
	copy(s.amps, t.amps)
}

// MulDiagonalReal multiplies amplitude z by the real diagonal entry
// diag[z] — the application of a diagonal observable D|ψ⟩, which seeds
// the adjoint state λ = D|ψ⟩ of a reverse sweep. It panics on a length
// mismatch.
func (s *State) MulDiagonalReal(diag []float64) {
	if len(diag) != len(s.amps) {
		panic(fmt.Sprintf("quantum: diagonal length %d != dim %d", len(diag), len(s.amps)))
	}
	for i, d := range diag {
		s.amps[i] *= complex(d, 0)
	}
}

// InnerProductDiagonal returns ⟨s|D|t⟩ for a real diagonal operator D:
// Σ_z conj(s_z)·diag[z]·t_z. It panics on width or length mismatches.
// The reduction is serial so the result is bit-reproducible (see the
// file comment).
func (s *State) InnerProductDiagonal(t *State, diag []float64) complex128 {
	if s.n != t.n {
		panic("quantum: qubit count mismatch in InnerProductDiagonal")
	}
	if len(diag) != len(s.amps) {
		panic(fmt.Sprintf("quantum: diagonal length %d != dim %d", len(diag), len(s.amps)))
	}
	var re, im float64
	for z, d := range diag {
		a, b := s.amps[z], t.amps[z]
		// conj(a)·b·d, accumulated in split real/imag form.
		re += (real(a)*real(b) + imag(a)*imag(b)) * d
		im += (real(a)*imag(b) - imag(a)*real(b)) * d
	}
	return complex(re, im)
}

// InnerProductSumX returns ⟨s| Σ_q X_q |t⟩, the matrix element of the
// transverse-field mixer generator: Σ_q Σ_z conj(s_z)·t_{z⊕2^q}. One
// pass per qubit over the amplitude array, no allocation. It panics if
// the register widths differ.
func (s *State) InnerProductSumX(t *State) complex128 {
	if s.n != t.n {
		panic("quantum: qubit count mismatch in InnerProductSumX")
	}
	var re, im float64
	for q := 0; q < s.n; q++ {
		bit := 1 << uint(q)
		dim := len(s.amps)
		for base := 0; base < dim; base += bit << 1 {
			for i := base; i < base+bit; i++ {
				j := i | bit
				a, b := s.amps[i], t.amps[j] // ⟨z|X_q|z⊕bit⟩ terms, both orders
				c, d := s.amps[j], t.amps[i]
				re += real(a)*real(b) + imag(a)*imag(b) + real(c)*real(d) + imag(c)*imag(d)
				im += real(a)*imag(b) - imag(a)*real(b) + real(c)*imag(d) - imag(c)*real(d)
			}
		}
	}
	return complex(re, im)
}
