package quantum

import (
	"fmt"
	"math"
)

// This file holds the kernels adjoint-mode (reverse-sweep) analytic
// differentiation is built from. Adjoint differentiation keeps two
// state vectors — the ket |φ⟩ and the adjoint λ — un-applies circuit
// layers from both, and accumulates each partial derivative as an inner
// product between them. The kernels here are the allocation-free
// building blocks: buffer reuse, a diagonal-observable application, and
// the two inner-product forms the QAOA ansatz needs.
//
// The inner-product reductions run over the fixed chunk geometry of
// reduce.go: partial sums are computed per chunk in a fixed order and
// combined left-to-right, so gradients are bit-reproducible across
// GOMAXPROCS settings while still scaling across workers at large n.
// Registers of up to ReduceChunkLen amplitudes keep the exact
// serial-summation bits of the pre-chunking kernels.

// CopyFrom overwrites s with the amplitudes of t, without allocating.
// It panics if the register widths differ. This is the in-place
// analogue of Clone used by gradient workspaces to seed the adjoint
// state from the forward state.
func (s *State) CopyFrom(t *State) {
	if s.n != t.n {
		panic(fmt.Sprintf("quantum: CopyFrom width mismatch %d != %d", s.n, t.n))
	}
	if s.parallel() {
		runRange(len(s.amps), true, func(lo, hi int) {
			copy(s.amps[lo:hi], t.amps[lo:hi])
		})
		return
	}
	copy(s.amps, t.amps)
}

// MulDiagonalReal multiplies amplitude z by the real diagonal entry
// diag[z] — the application of a diagonal observable D|ψ⟩, which seeds
// the adjoint state λ = D|ψ⟩ of a reverse sweep. It panics on a length
// mismatch. Element-wise: parallel chunks at large n, bit-identical.
func (s *State) MulDiagonalReal(diag []float64) {
	if len(diag) != len(s.amps) {
		panic(fmt.Sprintf("quantum: diagonal length %d != dim %d", len(diag), len(s.amps)))
	}
	if s.parallel() {
		runRange(len(s.amps), true, func(lo, hi int) {
			s.MulDiagonalRealRange(lo, diag[lo:hi])
		})
		return
	}
	s.MulDiagonalRealRange(0, diag)
}

// MulDiagonalRealRange multiplies amps[lo+i] by diag[i] over one chunk
// — the streamed form of MulDiagonalReal for cost kernels that generate
// the diagonal per chunk instead of materializing 2^n entries.
func (s *State) MulDiagonalRealRange(lo int, diag []float64) {
	s.checkRange(lo, len(diag))
	for i, d := range diag {
		s.amps[lo+i] *= complex(d, 0)
	}
}

// MulDiagonalIndexedRange multiplies amps[lo+i] by factors[idx[i]] over
// one chunk — the streamed form of MulDiagonalIndexed for cost kernels
// whose index table is generated per chunk.
func (s *State) MulDiagonalIndexedRange(lo int, idx []int32, factors []complex128) {
	s.checkRange(lo, len(idx))
	mulIndexedRange(s.amps[lo:lo+len(idx)], idx, factors)
}

// MulPhaseGenRange multiplies amps[lo+i] by e^{i·scale·gen[i]} over one
// chunk: the streamed phase separator for cost functions without a
// small distinct-value set (irrational edge weights). scale carries the
// stage angle, negated to un-apply.
func (s *State) MulPhaseGenRange(lo int, gen []float64, scale float64) {
	s.checkRange(lo, len(gen))
	for i, h := range gen {
		sin, cos := math.Sincos(scale * h)
		s.amps[lo+i] *= complex(cos, sin)
	}
}

// InnerProductDiagonal returns ⟨s|D|t⟩ for a real diagonal operator D:
// Σ_z conj(s_z)·diag[z]·t_z. It panics on width or length mismatches.
// The reduction runs over the fixed chunk geometry, so the result is
// bit-reproducible at every GOMAXPROCS (see the file comment).
func (s *State) InnerProductDiagonal(t *State, diag []float64) complex128 {
	if s.n != t.n {
		panic("quantum: qubit count mismatch in InnerProductDiagonal")
	}
	if len(diag) != len(s.amps) {
		panic(fmt.Sprintf("quantum: diagonal length %d != dim %d", len(diag), len(s.amps)))
	}
	if reduceChunkCount(len(s.amps)) == 1 {
		// Single chunk: call directly so no reduction closure is ever
		// constructed — the small-n gradient loop stays allocation-free.
		re, im := s.InnerProductDiagonalRange(t, 0, diag)
		return complex(re, im)
	}
	re, im := ReduceChunks(len(s.amps), func(lo, hi int) (float64, float64) {
		return s.InnerProductDiagonalRange(t, lo, diag[lo:hi])
	})
	return complex(re, im)
}

// SeedDiagonalRange overwrites s's amplitudes over [lo, lo+len(diag))
// with diag[i]·src[lo+i] — one chunk of the adjoint seed λ = C|ψ⟩ —
// and returns that chunk's contribution to ⟨src|C|src⟩, accumulated in
// exactly the order ExpectationDiagonalRange uses. Fusing the seed with
// the value readout lets gradient sweeps stream the forward state once
// where CopyFrom + MulDiagonalReal + ExpectationDiagonal streamed it
// three times.
func (s *State) SeedDiagonalRange(src *State, lo int, diag []float64) float64 {
	s.checkRange(lo, len(diag))
	e := 0.0
	for i, d := range diag {
		a := src.amps[lo+i]
		e += (real(a)*real(a) + imag(a)*imag(a)) * d
		s.amps[lo+i] = a * complex(d, 0)
	}
	return e
}

// InnerProductDiagonalRange returns one chunk's contribution to
// ⟨s|D|t⟩: Σ_i conj(s_{lo+i})·diag[i]·t_{lo+i}, accumulated in split
// real/imag form. Streaming cost kernels call it with per-chunk
// generated diagonals inside ReduceChunks.
func (s *State) InnerProductDiagonalRange(t *State, lo int, diag []float64) (re, im float64) {
	s.checkRange(lo, len(diag))
	for i, d := range diag {
		a, b := s.amps[lo+i], t.amps[lo+i]
		// conj(a)·b·d, accumulated in split real/imag form.
		re += (real(a)*real(b) + imag(a)*imag(b)) * d
		im += (real(a)*imag(b) - imag(a)*real(b)) * d
	}
	return re, im
}

// InnerProductSumX returns ⟨s| Σ_q X_q |t⟩, the matrix element of the
// transverse-field mixer generator: Σ_q Σ_z conj(s_z)·t_{z⊕2^q}. No
// allocation on the serial path. It panics if the register widths
// differ.
//
// Chunking: every ⟨z|X_q|z⊕2^q⟩ pair is accumulated (both orders) at
// its representative index (the one with bit q clear), in the chunk
// holding that representative. For q below the chunk width the pair is
// chunk-local; above it, the representative chunk reads the partner
// amplitudes from the distant chunk — reads only, so chunks stay
// write-disjoint. Within a chunk the loop order is fixed (q outer,
// index inner) and chunks merge in order: bit-identical at every
// GOMAXPROCS.
func (s *State) InnerProductSumX(t *State) complex128 {
	if s.n != t.n {
		panic("quantum: qubit count mismatch in InnerProductSumX")
	}
	if reduceChunkCount(len(s.amps)) == 1 {
		re, im := sumXPartial(s.amps, t.amps, 0, len(s.amps), s.n)
		return complex(re, im)
	}
	re, im := ReduceChunks(len(s.amps), func(lo, hi int) (float64, float64) {
		return sumXPartial(s.amps, t.amps, lo, hi, s.n)
	})
	return complex(re, im)
}

// InnerProductSumXRange returns one chunk's contribution to
// ⟨s|Σ_q X_q|t⟩ in split real/imag form — the streamed form of
// InnerProductSumX for callers that drive the chunk loop themselves
// (fused gradient sweeps). lo must be chunk-aligned; see sumXPartial.
func InnerProductSumXRange(s, t *State, lo, hi int) (re, im float64) {
	if s.n != t.n {
		panic("quantum: qubit count mismatch in InnerProductSumXRange")
	}
	return sumXPartial(s.amps, t.amps, lo, hi, s.n)
}

// sumXPartial accumulates the Σ_q X_q matrix-element terms whose
// representative index lies in [lo, hi). lo is chunk-aligned (a
// multiple of hi−lo when the range is one chunk of a larger array), so
// the base-stride walk stays aligned for every bit below the span.
func sumXPartial(sa, ta []complex128, lo, hi, n int) (re, im float64) {
	span := hi - lo
	for q := 0; q < n; q++ {
		bit := 1 << uint(q)
		if bit < span {
			for base := lo; base < hi; base += bit << 1 {
				for i := base; i < base+bit; i++ {
					j := i | bit
					a, b := sa[i], ta[j] // ⟨z|X_q|z⊕bit⟩ terms, both orders
					c, d := sa[j], ta[i]
					re += real(a)*real(b) + imag(a)*imag(b) + real(c)*real(d) + imag(c)*imag(d)
					im += real(a)*imag(b) - imag(a)*real(b) + real(c)*imag(d) - imag(c)*real(d)
				}
			}
		} else if lo&bit == 0 {
			// The whole chunk has bit q clear: every index is a
			// representative whose partner sits bit elements ahead, in a
			// later chunk (read-only access).
			for i := lo; i < hi; i++ {
				j := i | bit
				a, b := sa[i], ta[j]
				c, d := sa[j], ta[i]
				re += real(a)*real(b) + imag(a)*imag(b) + real(c)*real(d) + imag(c)*imag(d)
				im += real(a)*imag(b) - imag(a)*real(b) + real(c)*imag(d) - imag(c)*real(d)
			}
		}
	}
	return re, im
}
