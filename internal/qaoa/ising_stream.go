package qaoa

import (
	"math"
	"math/bits"

	"qaoaml/internal/problem"
	"qaoaml/internal/quantum"
)

// Streaming cost path for large Ising/QUBO instances — the general-
// Hamiltonian sibling of streamKernel (stream.go), sharing its chunk
// decomposition and its exact-integer discipline.
//
// The Hamiltonian is evaluated through the doubled accumulator
//
//	T(z) = Σ_q (2J_q)·s_i·s_j + Σ_i (2h_i)·s_i
//
// so that instances with half-integral couplings (every compiled
// MaxCut: J = −w/2) still take the exact int64 path. The observable
// and phase generator recover from T exactly:
//
//	Score(z) = sense·Offset + sense·T(z)/2
//	gen(z)   = −sense·T(z)/2
//
// (phase factor e^{iγ·gen(z)}, matching diagKernel's convention: for a
// compiled integer-weight MaxCut, T = 2C − m, so gen = (m − 2C)/2 and
// Score = C bit-for-bit — the identity the MaxCut-via-QUBO acceptance
// tests assert).
//
// Chunk decomposition over the fixed geometry, with cb chunk bits:
//
//   - quadratic terms with both spins below cb and linear terms below
//     cb fold into a 2^cb table built once at construction;
//   - terms entirely in the high bits are a per-chunk constant;
//   - cross terms (i < cb ≤ j) reduce, for frozen high bits, to a
//     per-low-spin linear form base + Σ_{set bits} d_u updated in O(1)
//     per amplitude via the trailing-zeros prefix-sum trick of
//     stream.go.
//
// All per-chunk values depend only on the chunk bounds, so results are
// bit-identical at every GOMAXPROCS; on the integer path they are also
// bit-identical to the materialized Ising kernel, which derives its
// tables from the same T accumulator.

// isingStreamKernel evaluates an arbitrary diagonal Hamiltonian from
// its term lists. Immutable after construction; scratch comes from the
// kernel's own bounded freelist.
type isingStreamKernel struct {
	scratch scratchList

	n           int
	sense       float64 // +1 maximize, −1 minimize
	senseOffset float64 // sense·Offset: the constant part of Score
	cb          int     // chunk width in bits

	// Low-low table: T restricted to terms living in the chunk bits.
	tllInt []int64
	tllF   []float64

	// Cross quadratic terms (low spin u < cb ≤ high spin v), CSR by u.
	crossStart []int32
	crossVert  []int32
	crossAInt  []int64
	crossAF    []float64

	// Terms entirely in the high bits: quadratic (u, v ≥ cb) and linear.
	hhU, hhV []int32
	hhAInt   []int64
	hhAF     []float64
	hiLinIdx []int32
	hiLinInt []int64
	hiLinF   []float64

	// Integer path: T is exact int64 in [tmin, tmin+nfac).
	integer bool
	tmin    int64
	nfac    int
}

// newIsingStreamKernel builds the streaming kernel for an instance.
func newIsingStreamKernel(in *problem.Instance) *isingStreamKernel {
	k := &isingStreamKernel{
		scratch:     newScratchList(),
		n:           in.N,
		sense:       in.Sense.Sign(),
		senseOffset: in.Sense.Sign() * in.Offset,
	}
	dim := 1 << uint(in.N)
	clen := quantum.ChunkLen(dim)
	if clen > dim {
		clen = dim
	}
	k.cb = bits.TrailingZeros(uint(clen))

	// Doubled coefficients: a_q = 2J_q per quadratic term, g_i = 2h_i.
	if in.IntegerCoeffs() {
		var span int64
		for _, t := range in.Quad {
			span += int64(math.Abs(2 * t.W))
		}
		for _, h := range in.Linear {
			span += int64(math.Abs(2 * h))
		}
		if 2*span+1 <= maxStreamFactorTable {
			k.integer = true
			k.tmin = -span
			k.nfac = int(2*span + 1)
		}
	}

	// Classify quadratic terms against the chunk width (i < j already).
	var lowI, lowJ []int32
	var lowA []float64
	k.crossStart = make([]int32, k.cb+1)
	for _, t := range in.Quad {
		switch {
		case t.J < k.cb:
			lowI, lowJ = append(lowI, int32(t.I)), append(lowJ, int32(t.J))
			lowA = append(lowA, 2*t.W)
		case t.I >= k.cb:
			k.hhU, k.hhV = append(k.hhU, int32(t.I)), append(k.hhV, int32(t.J))
			k.hhAF = append(k.hhAF, 2*t.W)
		default:
			k.crossStart[t.I+1]++
		}
	}
	for u := 1; u <= k.cb; u++ {
		k.crossStart[u] += k.crossStart[u-1]
	}
	nCross := int(k.crossStart[k.cb])
	k.crossVert = make([]int32, nCross)
	k.crossAF = make([]float64, nCross)
	fill := append([]int32(nil), k.crossStart[:k.cb]...)
	for _, t := range in.Quad {
		if t.J >= k.cb && t.I < k.cb {
			k.crossVert[fill[t.I]] = int32(t.J)
			k.crossAF[fill[t.I]] = 2 * t.W
			fill[t.I]++
		}
	}
	// Linear terms split by chunk width; low ones fold into the table.
	var lowLinG []float64
	lowLinIdx := []int32{}
	for i, h := range in.Linear {
		if h == 0 {
			continue
		}
		if i < k.cb {
			lowLinIdx = append(lowLinIdx, int32(i))
			lowLinG = append(lowLinG, 2*h)
		} else {
			k.hiLinIdx = append(k.hiLinIdx, int32(i))
			k.hiLinF = append(k.hiLinF, 2*h)
		}
	}

	// One-time low-bits table: T over the in-chunk terms per local state.
	nLow := 1 << uint(k.cb)
	spin := func(z, b int32) float64 {
		if (z>>uint(b))&1 == 0 {
			return 1
		}
		return -1
	}
	if k.integer {
		k.crossAInt = make([]int64, len(k.crossAF))
		for i, a := range k.crossAF {
			k.crossAInt[i] = int64(a)
		}
		k.hhAInt = make([]int64, len(k.hhAF))
		for i, a := range k.hhAF {
			k.hhAInt[i] = int64(a)
		}
		k.hiLinInt = make([]int64, len(k.hiLinF))
		for i, g := range k.hiLinF {
			k.hiLinInt[i] = int64(g)
		}
		k.tllInt = make([]int64, nLow)
		for z := range k.tllInt {
			var t int64
			for i := range lowI {
				t += int64(lowA[i]) * int64(spin(int32(z), lowI[i])*spin(int32(z), lowJ[i]))
			}
			for i, g := range lowLinG {
				t += int64(g) * int64(spin(int32(z), lowLinIdx[i]))
			}
			k.tllInt[z] = t
		}
	} else {
		k.tllF = make([]float64, nLow)
		for z := range k.tllF {
			t := 0.0
			for i := range lowI {
				t += lowA[i] * spin(int32(z), lowI[i]) * spin(int32(z), lowJ[i])
			}
			for i, g := range lowLinG {
				t += g * spin(int32(z), lowLinIdx[i])
			}
			k.tllF[z] = t
		}
	}
	return k
}

// scoreFromT and genFromT are the only places T becomes a float: both
// operations (int64→float64 for |T| well under 2^53, halving, sign
// flip) are exact, so every consumer sees the same doubles.
func (k *isingStreamKernel) scoreFromT(t int64) float64 {
	return k.senseOffset + k.sense*(float64(t)/2)
}

func (k *isingStreamKernel) genFromT(t int64) float64 {
	return -k.sense * (float64(t) / 2)
}

// chunkSetupInt computes the chunk-constant part of T for the chunk
// based at lo — high-high quadratic terms, high linear terms, and the
// cross-term contribution at all-zero low bits — plus the per-low-spin
// flip deltas d with prefix sums p.
func (k *isingStreamKernel) chunkSetupInt(lo uint64, d, p *[maxStreamChunkBits]int64) int64 {
	var base int64
	for i, u := range k.hhU {
		if (lo>>uint(u))&1 == (lo>>uint(k.hhV[i]))&1 {
			base += k.hhAInt[i]
		} else {
			base -= k.hhAInt[i]
		}
	}
	for i, q := range k.hiLinIdx {
		if (lo>>uint(q))&1 == 0 {
			base += k.hiLinInt[i]
		} else {
			base -= k.hiLinInt[i]
		}
	}
	var acc int64
	for u := 0; u < k.cb; u++ {
		p[u] = acc
		var du int64
		for e := k.crossStart[u]; e < k.crossStart[u+1]; e++ {
			av := k.crossAInt[e]
			if (lo>>uint(k.crossVert[e]))&1 != 0 {
				av = -av // s_v = −1 freezes the term to −a·s_u
			}
			base += av // low bit clear: s_u = +1
			du -= 2 * av
		}
		d[u] = du
		acc += du
	}
	return base
}

// chunkSetupFloat is chunkSetupInt with float64 coefficients.
func (k *isingStreamKernel) chunkSetupFloat(lo uint64, d, p *[maxStreamChunkBits]float64) float64 {
	base := 0.0
	for i, u := range k.hhU {
		if (lo>>uint(u))&1 == (lo>>uint(k.hhV[i]))&1 {
			base += k.hhAF[i]
		} else {
			base -= k.hhAF[i]
		}
	}
	for i, q := range k.hiLinIdx {
		if (lo>>uint(q))&1 == 0 {
			base += k.hiLinF[i]
		} else {
			base -= k.hiLinF[i]
		}
	}
	acc := 0.0
	for u := 0; u < k.cb; u++ {
		p[u] = acc
		du := 0.0
		for e := k.crossStart[u]; e < k.crossStart[u+1]; e++ {
			av := k.crossAF[e]
			if (lo>>uint(k.crossVert[e]))&1 != 0 {
				av = -av
			}
			base += av
			du -= 2 * av
		}
		d[u] = du
		acc += du
	}
	return base
}

// fillScore writes Score(z) for the chunk [lo, hi).
func (k *isingStreamKernel) fillScore(lo, hi int, score []float64) {
	if k.integer {
		var d, p [maxStreamChunkBits]int64
		base := k.chunkSetupInt(uint64(lo), &d, &p)
		tll := k.tllInt
		var lin int64
		score[0] = k.scoreFromT(base + tll[0])
		for i := 1; i < hi-lo; i++ {
			t := bits.TrailingZeros64(uint64(i))
			lin += d[t] - p[t]
			score[i] = k.scoreFromT(base + tll[i] + lin)
		}
		return
	}
	var d, p [maxStreamChunkBits]float64
	base := k.chunkSetupFloat(uint64(lo), &d, &p)
	tll := k.tllF
	lin := 0.0
	score[0] = k.senseOffset + k.sense*((base+tll[0])/2)
	for i := 1; i < hi-lo; i++ {
		t := bits.TrailingZeros64(uint64(i))
		lin += d[t] - p[t]
		score[i] = k.senseOffset + k.sense*((base+tll[i]+lin)/2)
	}
}

// fillIdx writes the factor-table index T(z)−tmin for the chunk
// [lo, hi). Integer path only.
func (k *isingStreamKernel) fillIdx(lo, hi int, idx []int32) {
	var d, p [maxStreamChunkBits]int64
	base := k.chunkSetupInt(uint64(lo), &d, &p) - k.tmin
	tll := k.tllInt
	var lin int64
	idx[0] = int32(base + tll[0])
	for i := 1; i < hi-lo; i++ {
		t := bits.TrailingZeros64(uint64(i))
		lin += d[t] - p[t]
		idx[i] = int32(base + tll[i] + lin)
	}
}

// fillGen writes the phase generator gen(z) = −sense·T(z)/2 for the
// chunk [lo, hi).
func (k *isingStreamKernel) fillGen(lo, hi int, gen []float64) {
	if k.integer {
		var d, p [maxStreamChunkBits]int64
		base := k.chunkSetupInt(uint64(lo), &d, &p)
		tll := k.tllInt
		var lin int64
		gen[0] = k.genFromT(base + tll[0])
		for i := 1; i < hi-lo; i++ {
			t := bits.TrailingZeros64(uint64(i))
			lin += d[t] - p[t]
			gen[i] = k.genFromT(base + tll[i] + lin)
		}
		return
	}
	var d, p [maxStreamChunkBits]float64
	base := k.chunkSetupFloat(uint64(lo), &d, &p)
	tll := k.tllF
	lin := 0.0
	gen[0] = -k.sense * ((base + tll[0]) / 2)
	for i := 1; i < hi-lo; i++ {
		t := bits.TrailingZeros64(uint64(i))
		lin += d[t] - p[t]
		gen[i] = -k.sense * ((base + tll[i] + lin) / 2)
	}
}

// --- costKernel implementation ---

func (k *isingStreamKernel) qubits() int { return k.n }

func (k *isingStreamKernel) factorLen() int { return k.nfac }

// prepareFactors fills the per-distinct-T phase factor table
// exp(iγ·gen(T)) with exactly the genFromT doubles fillGen streams, so
// indexed application and generator-streamed application agree bit for
// bit. The float path streams per-amplitude phases instead.
func (k *isingStreamKernel) prepareFactors(factors []complex128, gamma float64, conj bool) {
	if !k.integer {
		return
	}
	sign := 1.0
	if conj {
		sign = -1
	}
	for j := range factors {
		sin, cos := math.Sincos(gamma * k.genFromT(k.tmin+int64(j)))
		factors[j] = complex(cos, sign*sin)
	}
}

func (k *isingStreamKernel) applyPhaseRange(st *quantum.State, factors []complex128, gamma float64, conj bool, off, lo, hi int) {
	ws := k.scratch.get()
	if k.integer {
		idx := ws.idxBuf(hi - lo)
		k.fillIdx(off+lo, off+hi, idx)
		st.MulDiagonalIndexedRange(lo, idx, factors)
	} else {
		scale := gamma
		if conj {
			scale = -gamma
		}
		gen := ws.genBuf(hi - lo)
		k.fillGen(off+lo, off+hi, gen)
		st.MulPhaseGenRange(lo, gen, scale)
	}
	k.scratch.put(ws)
}

func (k *isingStreamKernel) applyPhase2Range(a, b *quantum.State, factors []complex128, gamma float64, conj bool, off, lo, hi int) {
	ws := k.scratch.get()
	if k.integer {
		idx := ws.idxBuf(hi - lo)
		k.fillIdx(off+lo, off+hi, idx)
		a.MulDiagonalIndexedRange(lo, idx, factors)
		b.MulDiagonalIndexedRange(lo, idx, factors)
	} else {
		scale := gamma
		if conj {
			scale = -gamma
		}
		gen := ws.genBuf(hi - lo)
		k.fillGen(off+lo, off+hi, gen)
		a.MulPhaseGenRange(lo, gen, scale)
		b.MulPhaseGenRange(lo, gen, scale)
	}
	k.scratch.put(ws)
}

func (k *isingStreamKernel) expectChunk(st *quantum.State, off, lo, hi int) float64 {
	ws := k.scratch.get()
	score := ws.genBuf(hi - lo)
	k.fillScore(off+lo, off+hi, score)
	e := st.ExpectationDiagonalRange(lo, score)
	k.scratch.put(ws)
	return e
}

func (k *isingStreamKernel) seedChunkValue(adj, st *quantum.State, off, lo, hi int) float64 {
	ws := k.scratch.get()
	score := ws.genBuf(hi - lo)
	k.fillScore(off+lo, off+hi, score)
	e := adj.SeedDiagonalRange(st, lo, score)
	k.scratch.put(ws)
	return e
}

func (k *isingStreamKernel) genInnerChunk(adj, st *quantum.State, off, lo, hi int) (re, im float64) {
	ws := k.scratch.get()
	gen := ws.genBuf(hi - lo)
	k.fillGen(off+lo, off+hi, gen)
	re, im = adj.InnerProductDiagonalRange(st, lo, gen)
	k.scratch.put(ws)
	return re, im
}
