package qaoa

import (
	"math"
	"math/bits"
	"math/rand"
	"testing"

	"qaoaml/internal/graph"
)

func TestNewDiagonalProblemValidation(t *testing.T) {
	if _, err := NewDiagonalProblem(0, nil); err == nil {
		t.Error("0 qubits accepted")
	}
	if _, err := NewDiagonalProblem(2, []float64{1, 2}); err == nil {
		t.Error("wrong table length accepted")
	}
	if _, err := NewDiagonalProblem(1, []float64{1, math.NaN()}); err == nil {
		t.Error("NaN entry accepted")
	}
	if _, err := NewDiagonalProblem(1, []float64{3, 3}); err == nil {
		t.Error("constant table accepted")
	}
	dp, err := NewDiagonalProblem(2, []float64{0, 1, -2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if dp.OptValue != 3 || dp.MinValue != -2 {
		t.Errorf("opt/min = %v/%v", dp.OptValue, dp.MinValue)
	}
}

func TestDiagonalProblemDoesNotAliasInput(t *testing.T) {
	diag := []float64{0, 1}
	dp, err := NewDiagonalProblem(1, diag)
	if err != nil {
		t.Fatal(err)
	}
	diag[0] = 99
	if dp.Diag[0] != 0 {
		t.Error("cost table aliases caller slice")
	}
}

// A MaxCut instance expressed as a DiagonalProblem must agree with the
// specialized Problem at every parameter point.
func TestDiagonalMatchesMaxCutProblem(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	g := graph.ErdosRenyiConnected(5, 0.5, rng)
	pb := mustProblem(t, g)
	dp, err := NewDiagonalProblem(g.N, pb.CutTable)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		pr := randomParams(rng, 1+rng.Intn(3))
		// The Problem's phase convention differs from exp(−iγC) by a
		// global phase only, so expectations must agree exactly.
		if d := math.Abs(pb.Expectation(pr) - dp.Expectation(pr)); d > 1e-10 {
			t.Fatalf("trial %d: MaxCut %v != diagonal %v", trial, pb.Expectation(pr), dp.Expectation(pr))
		}
	}
}

func TestDiagonalZeroParamsUniform(t *testing.T) {
	dp, err := NewDiagonalProblem(2, []float64{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := dp.Expectation(NewParams(2)); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("uniform <C> = %v, want 1.5", got)
	}
	if s := dp.NormalizedScore(NewParams(2)); math.Abs(s-0.5) > 1e-12 {
		t.Errorf("uniform score = %v, want 0.5", s)
	}
}

func TestDiagonalEvaluatorCounts(t *testing.T) {
	dp, err := NewDiagonalProblem(2, []float64{0, 1, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	ev := dp.NewEvaluator(2)
	if ev.Dim() != 4 {
		t.Fatalf("Dim = %d", ev.Dim())
	}
	x := []float64{0.1, 0.2, 0.3, 0.4}
	for i := 0; i < 3; i++ {
		_ = ev.NegExpectation(x)
	}
	if ev.NFev() != 3 {
		t.Errorf("NFev = %d", ev.NFev())
	}
	defer func() {
		if recover() == nil {
			t.Error("wrong-length vector accepted")
		}
	}()
	ev.NegExpectation([]float64{1})
}

func TestNumberPartitionProblem(t *testing.T) {
	// {5, 4, 3, 2} has perfect partitions, e.g. {5,2} vs {4,3}.
	dp, err := NumberPartitionProblem([]float64{5, 4, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if dp.OptValue != 0 {
		t.Errorf("perfect partition optimum = %v, want 0", dp.OptValue)
	}
	// z = 0110 means sets {5,2} / {4,3}: diff 0.
	if dp.Diag[0b0110] != 0 {
		t.Errorf("cost(0110) = %v, want 0", dp.Diag[0b0110])
	}
	// All on one side: diff = 14 → cost −196.
	if dp.Diag[0] != -196 {
		t.Errorf("cost(0000) = %v, want -196", dp.Diag[0])
	}
}

func TestNumberPartitionValidation(t *testing.T) {
	if _, err := NumberPartitionProblem([]float64{1}); err == nil {
		t.Error("single number accepted")
	}
	if _, err := NumberPartitionProblem([]float64{1, -2}); err == nil {
		t.Error("negative weight accepted")
	}
}

// QAOA on a small partition instance should concentrate probability on
// perfect partitions.
func TestQAOASolvesNumberPartitioning(t *testing.T) {
	dp, err := NumberPartitionProblem([]float64{5, 4, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Coarse grid at p = 1 over a scaled-down γ range (costs are O(100),
	// so useful γ values are small).
	best := math.Inf(-1)
	var bestPr Params
	for i := 1; i <= 60; i++ {
		for j := 1; j < 60; j++ {
			pr := Params{
				Gamma: []float64{0.2 * float64(i) / 60},
				Beta:  []float64{BetaMax * float64(j) / 60},
			}
			if e := dp.Expectation(pr); e > best {
				best, bestPr = e, pr
			}
		}
	}
	cost, assign := dp.BestSampled(bestPr)
	if cost != 0 {
		t.Errorf("most probable assignment %04b has cost %v, want a perfect partition", assign, cost)
	}
	if s := dp.NormalizedScore(bestPr); s <= 0.5 {
		t.Errorf("optimized score %v not above the uniform baseline", s)
	}
}

// The XY-ring ansatz must keep all probability in the Hamming-weight
// sector of the initial state.
func TestConstrainedStateStaysInSector(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	g := graph.ErdosRenyiConnected(5, 0.5, rng)
	pb := mustProblem(t, g)
	dp, err := NewDiagonalProblem(g.N, pb.CutTable)
	if err != nil {
		t.Fatal(err)
	}
	initial := uint64(0b00111) // weight 3
	pr := randomParams(rng, 3)
	st := dp.ConstrainedState(pr, initial)
	for z, p := range st.Probabilities() {
		if p > 1e-12 && bits.OnesCount64(uint64(z)) != 3 {
			t.Fatalf("probability %v outside weight-3 sector at %05b", p, z)
		}
	}
	if math.Abs(st.Norm()-1) > 1e-10 {
		t.Errorf("norm = %v", st.Norm())
	}
}

// Densest-k-subgraph: select exactly 2 of 4 vertices maximizing induced
// edges. The XY ansatz should beat the initial state's cost.
func TestConstrainedAnsatzImproves(t *testing.T) {
	// Graph: triangle 0-1-2 plus pendant 3. Best 2-subset: any triangle
	// edge (1 induced edge); {x, 3} pairs have at most 1 too — use a
	// denser target: count induced edges.
	g := graph.New(4)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	diag := make([]float64, 16)
	for z := range diag {
		for _, e := range g.Edges() {
			if (z>>uint(e.U))&1 == 1 && (z>>uint(e.V))&1 == 1 {
				diag[z]++
			}
		}
	}
	dp, err := NewDiagonalProblem(4, diag)
	if err != nil {
		t.Fatal(err)
	}
	initial := uint64(0b1001) // vertices {0, 3}: 0 induced edges
	base := dp.Diag[initial]
	// Scan a coarse grid for the best depth-2 constrained parameters.
	best := math.Inf(-1)
	for i := 1; i < 12; i++ {
		for j := 1; j < 12; j++ {
			pr := Params{
				Gamma: []float64{float64(i) * 0.5, float64(i) * 0.3},
				Beta:  []float64{float64(j) * 0.25, float64(j) * 0.15},
			}
			if e := dp.ConstrainedExpectation(pr, initial); e > best {
				best = e
			}
		}
	}
	if best <= base {
		t.Errorf("constrained ansatz best <C> = %v did not improve on initial %v", best, base)
	}
}
