package qaoa

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"qaoaml/internal/graph"
)

func mustProblem(t testing.TB, g *graph.Graph) *Problem {
	t.Helper()
	pb, err := NewProblem(g)
	if err != nil {
		t.Fatal(err)
	}
	return pb
}

func randomParams(rng *rand.Rand, p int) Params {
	pr := NewParams(p)
	for i := 0; i < p; i++ {
		pr.Gamma[i] = rng.Float64() * GammaMax
		pr.Beta[i] = rng.Float64() * BetaMax
	}
	return pr
}

func TestParamsVectorRoundTrip(t *testing.T) {
	pr := Params{Gamma: []float64{1, 2, 3}, Beta: []float64{4, 5, 6}}
	v := pr.Vector()
	want := []float64{1, 2, 3, 4, 5, 6}
	for i := range v {
		if v[i] != want[i] {
			t.Fatalf("Vector = %v", v)
		}
	}
	rt := FromVector(v)
	if rt.Depth() != 3 || rt.Gamma[2] != 3 || rt.Beta[0] != 4 {
		t.Errorf("round trip = %+v", rt)
	}
}

func TestFromVectorOddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromVector([]float64{1, 2, 3})
}

func TestParamsValidate(t *testing.T) {
	good := Params{Gamma: []float64{1}, Beta: []float64{1}}
	if err := good.Validate(true); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := Params{Gamma: []float64{7}, Beta: []float64{1}}
	if err := bad.Validate(true); err == nil {
		t.Error("gamma out of domain accepted")
	}
	bad2 := Params{Gamma: []float64{1}, Beta: []float64{4}}
	if err := bad2.Validate(true); err == nil {
		t.Error("beta out of domain accepted")
	}
	mis := Params{Gamma: []float64{1, 2}, Beta: []float64{1}}
	if err := mis.Validate(false); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestNewProblemRejectsEmptyGraph(t *testing.T) {
	if _, err := NewProblem(graph.New(3)); err == nil {
		t.Error("edgeless graph accepted")
	}
}

// Single edge, p = 1: with U_B = exp(−iβΣX) (i.e. RX(2β) mixers) the
// known closed form is ⟨C⟩ = (1 + sin(γ)·sin(4β)) / 2.
func TestSingleEdgeClosedForm(t *testing.T) {
	g := graph.Path(2)
	pb := mustProblem(t, g)
	for _, gamma := range []float64{0, 0.3, 1.1, math.Pi / 2, 3.0} {
		for _, beta := range []float64{0, 0.2, math.Pi / 8, 1.0, 3.0} {
			pr := Params{Gamma: []float64{gamma}, Beta: []float64{beta}}
			want := 0.5 * (1 + math.Sin(gamma)*math.Sin(4*beta))
			if got := pb.Expectation(pr); math.Abs(got-want) > 1e-10 {
				t.Errorf("γ=%v β=%v: <C> = %v, want %v", gamma, beta, got, want)
			}
		}
	}
}

// The optimal p = 1 single-edge parameters (γ = π/2, β = π/8 gives
// sin·sin = 1) achieve AR = 1.
func TestSingleEdgeOptimal(t *testing.T) {
	pb := mustProblem(t, graph.Path(2))
	pr := Params{Gamma: []float64{math.Pi / 2}, Beta: []float64{math.Pi / 8}}
	if ar := pb.ApproximationRatio(pr); math.Abs(ar-1) > 1e-10 {
		t.Errorf("AR = %v, want 1", ar)
	}
}

func TestZeroParamsGiveUniformExpectation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.ErdosRenyiConnected(6, 0.5, rng)
	pb := mustProblem(t, g)
	pr := NewParams(2) // all-zero angles: state stays uniform
	want := float64(g.NumEdges()) / 2
	if got := pb.Expectation(pr); math.Abs(got-want) > 1e-10 {
		t.Errorf("<C> = %v, want m/2 = %v", got, want)
	}
	if us := pb.UniformState().ExpectationDiagonal(pb.CutTable); math.Abs(us-want) > 1e-10 {
		t.Errorf("uniform <C> = %v, want %v", us, want)
	}
}

// The fast diagonal path must equal the explicit gate circuit exactly,
// including global phase.
func TestFastPathMatchesGateCircuit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		g := graph.ErdosRenyiConnected(5, 0.5, rng)
		pb := mustProblem(t, g)
		p := 1 + rng.Intn(3)
		pr := randomParams(rng, p)
		fast := pb.State(pr)
		slow := pb.BuildCircuit(pr).Simulate()
		if !fast.Equal(slow, 1e-10) {
			t.Fatalf("trial %d: fast path != gate circuit (p=%d, %v)", trial, p, g)
		}
	}
}

func TestGlobalPhaseReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.ErdosRenyiConnected(4, 0.6, rng)
	pb := mustProblem(t, g)
	gamma := 1.3
	pr := Params{Gamma: []float64{gamma}, Beta: []float64{0}}
	st := pb.State(pr)
	for z := uint64(0); z < 16; z++ {
		want := pb.GlobalPhaseReference(gamma, z)
		if cmplx.Abs(st.Amplitude(z)-want) > 1e-10 {
			t.Fatalf("amp(%d) = %v, want %v", z, st.Amplitude(z), want)
		}
	}
}

func TestBuildCircuitStructure(t *testing.T) {
	g := graph.Cycle(4) // 4 edges
	pb := mustProblem(t, g)
	p := 3
	c := pb.BuildCircuit(randomParams(rand.New(rand.NewSource(4)), p))
	wantLen := 4 + p*(4*3+4) // H layer + p·(per-edge CNOT,RZ,CNOT + RX per qubit)
	if c.Len() != wantLen {
		t.Errorf("circuit len = %d, want %d", c.Len(), wantLen)
	}
}

func TestExpectationBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.ErdosRenyiConnected(6, 0.5, rng)
		pb, err := NewProblem(g)
		if err != nil {
			return false
		}
		pr := randomParams(rng, 1+rng.Intn(4))
		e := pb.Expectation(pr)
		return e >= -1e-9 && e <= pb.OptValue+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestApproximationRatioAtMostOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.ErdosRenyiConnected(6, 0.5, rng)
		pb, err := NewProblem(g)
		if err != nil {
			return false
		}
		ar := pb.ApproximationRatio(randomParams(rng, 2))
		return ar > 0 && ar <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEvaluatorCountsCalls(t *testing.T) {
	pb := mustProblem(t, graph.Cycle(4))
	ev := NewEvaluator(pb, 2)
	if ev.Dim() != 4 {
		t.Fatalf("Dim = %d", ev.Dim())
	}
	x := []float64{0.1, 0.2, 0.3, 0.4}
	for i := 0; i < 5; i++ {
		_ = ev.NegExpectation(x)
	}
	if ev.NFev() != 5 {
		t.Errorf("NFev = %d, want 5", ev.NFev())
	}
	ev.ResetNFev()
	if ev.NFev() != 0 {
		t.Error("ResetNFev failed")
	}
}

func TestEvaluatorNegatesExpectation(t *testing.T) {
	pb := mustProblem(t, graph.Path(2))
	ev := NewEvaluator(pb, 1)
	x := []float64{math.Pi / 2, math.Pi / 8}
	if got := ev.NegExpectation(x); math.Abs(got+1) > 1e-10 {
		t.Errorf("NegExpectation = %v, want -1", got)
	}
}

func TestEvaluatorWrongDimPanics(t *testing.T) {
	pb := mustProblem(t, graph.Path(2))
	ev := NewEvaluator(pb, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ev.NegExpectation([]float64{1, 2})
}

func TestBestSampledCut(t *testing.T) {
	pb := mustProblem(t, graph.Path(2))
	// At the optimal single-edge parameters the state concentrates on the
	// cut states |01>, |10>.
	pr := Params{Gamma: []float64{math.Pi / 2}, Beta: []float64{math.Pi / 8}}
	cut, assign := pb.BestSampledCut(pr)
	if cut != 1 {
		t.Errorf("cut = %g, want 1", cut)
	}
	if assign != 0b01 && assign != 0b10 {
		t.Errorf("assign = %b", assign)
	}
}

// Higher depth should not hurt the best achievable AR: we verify that
// the depth-2 optimum found by a coarse grid refine is >= the depth-1
// optimum on a triangle (the classic non-bipartite example).
func TestDepthImprovesTriangle(t *testing.T) {
	pb := mustProblem(t, graph.Cycle(3))
	best1 := bestOnGrid(pb, 1, 24)
	best2 := bestOnGridAround(pb, 2, best1, 8)
	if best2.ar+1e-9 < best1.ar {
		t.Errorf("depth 2 AR %v < depth 1 AR %v", best2.ar, best1.ar)
	}
	if best1.ar < 0.65 {
		t.Errorf("depth-1 triangle AR %v suspiciously low", best1.ar)
	}
}

type gridBest struct {
	pr Params
	ar float64
}

func bestOnGrid(pb *Problem, p, steps int) gridBest {
	if p != 1 {
		panic("grid search only for p=1")
	}
	best := gridBest{ar: -1}
	for i := 0; i < steps; i++ {
		for j := 0; j < steps; j++ {
			pr := Params{
				Gamma: []float64{GammaMax * float64(i) / float64(steps)},
				Beta:  []float64{BetaMax * float64(j) / float64(steps)},
			}
			if ar := pb.ApproximationRatio(pr); ar > best.ar {
				best = gridBest{pr: pr, ar: ar}
			}
		}
	}
	return best
}

// bestOnGridAround scans depth-2 params seeded by the depth-1 optimum
// (second stage scanned coarsely) — enough to witness monotonicity.
func bestOnGridAround(pb *Problem, p int, seed gridBest, steps int) gridBest {
	best := gridBest{ar: -1}
	for i := 0; i < steps; i++ {
		for j := 0; j < steps; j++ {
			pr := Params{
				Gamma: []float64{seed.pr.Gamma[0], GammaMax * float64(i) / float64(steps)},
				Beta:  []float64{seed.pr.Beta[0], BetaMax * float64(j) / float64(steps)},
			}
			if ar := pb.ApproximationRatio(pr); ar > best.ar {
				best = gridBest{pr: pr, ar: ar}
			}
		}
	}
	return best
}

// Cross-check the diagonal-cost expectation against the Pauli identity
// ⟨C⟩ = Σ_e w_e (1 − ⟨Z_u Z_v⟩)/2 evaluated on the simulator.
func TestExpectationMatchesPauliDecomposition(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		g := graph.ErdosRenyiConnected(6, 0.5, rng)
		pb := mustProblem(t, g)
		pr := randomParams(rng, 2)
		st := pb.State(pr)
		viaPauli := 0.0
		for _, e := range g.Edges() {
			viaPauli += (1 - st.ExpectationZZ(e.U, e.V)) / 2
		}
		if got := pb.Expectation(pr); math.Abs(got-viaPauli) > 1e-10 {
			t.Fatalf("diagonal %v != Pauli decomposition %v", got, viaPauli)
		}
	}
}
