package qaoa

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"qaoaml/internal/graph"
	"qaoaml/internal/quantum"
)

func randomWeightedGraph(rng *rand.Rand, n int) *graph.Graph {
	for {
		g := graph.New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.5 {
					w := 0.5 + rng.Float64()*2
					if err := g.AddWeightedEdge(u, v, w); err != nil {
						panic(err)
					}
				}
			}
		}
		if g.NumEdges() > 0 && g.Connected() {
			return g
		}
	}
}

// Weighted single edge, p = 1: ⟨C⟩ = w(1 + sin(wγ)·sin(4β))/2 by the
// same derivation as the unit-weight closed form with γ → wγ.
func TestWeightedSingleEdgeClosedForm(t *testing.T) {
	g := graph.New(2)
	if err := g.AddWeightedEdge(0, 1, 2.5); err != nil {
		t.Fatal(err)
	}
	pb := mustProblem(t, g)
	if pb.OptValue != 2.5 || pb.TotalWeight != 2.5 {
		t.Fatalf("problem fields: opt=%v total=%v", pb.OptValue, pb.TotalWeight)
	}
	for _, gamma := range []float64{0, 0.3, 1.1, 2.0} {
		for _, beta := range []float64{0, 0.2, math.Pi / 8, 1.0} {
			pr := Params{Gamma: []float64{gamma}, Beta: []float64{beta}}
			want := 2.5 * 0.5 * (1 + math.Sin(2.5*gamma)*math.Sin(4*beta))
			if got := pb.Expectation(pr); math.Abs(got-want) > 1e-10 {
				t.Errorf("γ=%v β=%v: <C> = %v, want %v", gamma, beta, got, want)
			}
		}
	}
}

// The weighted fast path must still equal the weighted gate circuit
// exactly.
func TestWeightedFastPathMatchesGateCircuit(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		g := randomWeightedGraph(rng, 5)
		pb := mustProblem(t, g)
		pr := randomParams(rng, 1+rng.Intn(3))
		if !pb.State(pr).Equal(pb.BuildCircuit(pr).Simulate(), 1e-10) {
			t.Fatalf("trial %d: weighted fast path != gate circuit", trial)
		}
	}
}

func TestWeightedExpectationBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomWeightedGraph(rng, 6)
		pb, err := NewProblem(g)
		if err != nil {
			return false
		}
		e := pb.Expectation(randomParams(rng, 2))
		// For positive weights 0 ≤ ⟨C⟩ ≤ C_opt.
		return e >= -1e-9 && e <= pb.OptValue+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Non-integer weights: canonicalization may only fold β.
func TestWeightedCanonicalize(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	g := randomWeightedGraph(rng, 5)
	pb := mustProblem(t, g)
	pr := Params{Gamma: []float64{5.9, 1.2}, Beta: []float64{2.3, -0.4}}
	c := pb.Canonicalize(pr)
	// γ untouched.
	if c.Gamma[0] != 5.9 || c.Gamma[1] != 1.2 {
		t.Errorf("weighted canonicalization changed γ: %v", c.Gamma)
	}
	// β folded into [0, π/2).
	for i, b := range c.Beta {
		if b < 0 || b >= BetaPeriod {
			t.Errorf("β%d = %v out of [0, π/2)", i+1, b)
		}
	}
	// Expectation preserved.
	if d := math.Abs(pb.Expectation(pr) - pb.Expectation(c)); d > 1e-9 {
		t.Errorf("weighted canonicalization changed expectation by %v", d)
	}
}

// Integer-weighted graphs keep the 2π periodicity, so the full
// canonicalization applies and must preserve the expectation.
func TestIntegerWeightedCanonicalize(t *testing.T) {
	g := graph.New(4)
	for _, e := range [][3]int{{0, 1, 2}, {1, 2, 3}, {2, 3, 1}, {0, 3, 2}} {
		if err := g.AddWeightedEdge(e[0], e[1], float64(e[2])); err != nil {
			t.Fatal(err)
		}
	}
	pb := mustProblem(t, g)
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		pr := NewParams(2)
		for i := range pr.Gamma {
			pr.Gamma[i] = rng.Float64()*12 - 6
			pr.Beta[i] = rng.Float64()*8 - 4
		}
		c := pb.Canonicalize(pr)
		if d := math.Abs(pb.Expectation(pr) - pb.Expectation(c)); d > 1e-9 {
			t.Fatalf("integer-weighted canonicalization changed expectation by %v", d)
		}
	}
}

func TestNewProblemRejectsNonPositiveOptimum(t *testing.T) {
	g := graph.New(2)
	if err := g.AddWeightedEdge(0, 1, -1); err != nil {
		t.Fatal(err)
	}
	if _, err := NewProblem(g); err == nil {
		t.Error("all-negative-weight graph accepted")
	}
}

// A heavy edge must dominate the optimized solution: QAOA on the
// weighted triangle should prefer cutting the weight-10 edge.
func TestWeightedOptimizationPrefersHeavyEdge(t *testing.T) {
	g := graph.New(3)
	for _, e := range []struct {
		u, v int
		w    float64
	}{{0, 1, 10}, {1, 2, 1}, {0, 2, 1}} {
		if err := g.AddWeightedEdge(e.u, e.v, e.w); err != nil {
			t.Fatal(err)
		}
	}
	pb := mustProblem(t, g)
	// Coarse grid search at p = 1.
	best := -1.0
	var bestPr Params
	for i := 0; i < 40; i++ {
		for j := 0; j < 40; j++ {
			pr := Params{
				Gamma: []float64{GammaMax * float64(i) / 40},
				Beta:  []float64{BetaMax * float64(j) / 40},
			}
			if e := pb.Expectation(pr); e > best {
				best, bestPr = e, pr
			}
		}
	}
	cut, assign := pb.BestSampledCut(bestPr)
	if (assign>>0)&1 == (assign>>1)&1 {
		t.Errorf("heavy edge uncut in most probable assignment %03b (cut %g)", assign, cut)
	}
}

// Depolarizing noise must degrade the QAOA expectation toward the
// uniform value m/2 and never improve past the noiseless optimum.
func TestNoisyExpectationDegradesAR(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	g := graph.ErdosRenyiConnected(5, 0.6, rng)
	pb := mustProblem(t, g)
	best, exact := GridSearchP1(pb, 32)
	nm := quantum.NoiseModel{P1: 0.05, P2: 0.1}
	noisy := pb.NoisyExpectation(best, nm, 300, rng)
	if noisy >= exact {
		t.Errorf("noisy <C> = %v not below noiseless %v", noisy, exact)
	}
	uniform := float64(g.NumEdges()) / 2
	if noisy < uniform-0.5 {
		t.Errorf("noisy <C> = %v far below the uniform floor %v", noisy, uniform)
	}
	// Zero noise reproduces the exact value.
	if got := pb.NoisyExpectation(best, quantum.NoiseModel{}, 1, rng); math.Abs(got-exact) > 1e-10 {
		t.Errorf("zero-noise expectation = %v, want %v", got, exact)
	}
}
