package qaoa

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"qaoaml/internal/graph"
	"qaoaml/internal/problem"
)

func mustIsing(t testing.TB, in *problem.Instance) *Problem {
	t.Helper()
	pb, err := NewIsing(in)
	if err != nil {
		t.Fatal(err)
	}
	return pb
}

// The acceptance bar of the QUBO front-end: a MaxCut instance compiled
// through the generic Ising path must evaluate bit-identically to the
// direct graph path — expectation AND adjoint gradient — across the
// materialized (n=8), streaming (n=14) and full-size (n=20) regimes at
// GOMAXPROCS 1, 2 and 8. T = 2C − m is exact in int64, halving is an
// exponent shift and m/2 + T/2 = C exactly, so every table, factor and
// reduction the two paths build holds the same doubles.
func TestMaxCutViaQUBOBitIdentical(t *testing.T) {
	type cfg struct {
		n, deg int
		short  bool
	}
	cfgs := []cfg{
		{n: 8, deg: 3, short: true},
		{n: 14, deg: 3, short: true},
		{n: 20, deg: 3, short: false},
	}
	workers := []int{1, 2, 8}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	for _, c := range cfgs {
		if testing.Short() && !c.short {
			continue
		}
		rng := rand.New(rand.NewSource(int64(400 + c.n)))
		g := graph.RandomRegular(c.n, c.deg, rng)
		direct := mustProblem(t, g)
		in, err := problem.CompileMaxCut(g)
		if err != nil {
			t.Fatal(err)
		}
		viaQUBO := mustIsing(t, in)
		if viaQUBO.OptValue != direct.OptValue {
			t.Errorf("n=%d: compiled optimum %v != MaxCut optimum %v", c.n, viaQUBO.OptValue, direct.OptValue)
		}
		for _, p := range []int{1, 3} {
			x := testParams(p).Vector()
			for _, w := range workers {
				runtime.GOMAXPROCS(w)
				dw, qw := direct.NewWorkspace(), viaQUBO.NewWorkspace()
				if dv, qv := dw.ExpectationVec(x), qw.ExpectationVec(x); dv != qv {
					t.Errorf("n=%d p=%d w=%d: direct <C> %v != via-QUBO %v", c.n, p, w, dv, qv)
				}
				dg, qg := make([]float64, len(x)), make([]float64, len(x))
				dv, qv := dw.ValueGrad(x, dg), qw.ValueGrad(x, qg)
				if dv != qv {
					t.Errorf("n=%d p=%d w=%d: direct grad value %v != via-QUBO %v", c.n, p, w, dv, qv)
				}
				for i := range dg {
					if dg[i] != qg[i] {
						t.Errorf("n=%d p=%d w=%d: grad[%d] direct %v != via-QUBO %v", c.n, p, w, i, dg[i], qg[i])
					}
				}
			}
		}
	}
}

// Streaming vs materialized for Hamiltonians WITH linear terms: an
// integer-coefficient spin glass at n=14 takes the streaming kernel
// through NewIsing, and must match a directly-constructed materialized
// kernel bit for bit at 1, 2 and 8 workers — both derive every double
// from the same int64 accumulator.
func TestIsingStreamMatchesMaterializedExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	in := problem.RandomIsing(14, rng)
	if !in.IntegerCoeffs() {
		t.Fatal("RandomIsing should have integer coefficients")
	}
	hasLinear := false
	for _, h := range in.Linear {
		if h != 0 {
			hasLinear = true
		}
	}
	if !hasLinear {
		t.Fatal("test instance has no linear terms; raise n or reseed")
	}
	pb := mustIsing(t, in)
	if _, ok := pb.kernel().(*isingStreamKernel); !ok {
		t.Fatalf("n=%d instance did not pick the streaming kernel", in.N)
	}
	diag, gen := buildIsingTables(in)
	mat := newDiagKernelFromGen(in.N, diag, gen)

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, p := range []int{1, 3} {
		x := testParams(p).Vector()
		for _, w := range []int{1, 2, 8} {
			runtime.GOMAXPROCS(w)
			sw, mw := newWorkspace(pb.kernel(), nil), newWorkspace(mat, nil)
			if sv, mv := sw.ExpectationVec(x), mw.ExpectationVec(x); sv != mv {
				t.Errorf("p=%d w=%d: streaming <Score> %v != materialized %v", p, w, sv, mv)
			}
			sg, mg := make([]float64, len(x)), make([]float64, len(x))
			sv, mv := sw.ValueGrad(x, sg), mw.ValueGrad(x, mg)
			if sv != mv {
				t.Errorf("p=%d w=%d: streaming grad value %v != materialized %v", p, w, sv, mv)
			}
			for i := range sg {
				if sg[i] != mg[i] {
					t.Errorf("p=%d w=%d: grad[%d] streaming %v != materialized %v", p, w, i, sg[i], mg[i])
				}
			}
		}
	}
}

// Float-coefficient instances can't share an integer accumulator, so
// streaming matches materialized to rounding error only.
func TestIsingStreamFloatCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	in := problem.RandomIsing(14, rng)
	in.Linear[3] = 0.37 // break integrality
	if in.IntegerCoeffs() {
		t.Fatal("instance should have float coefficients")
	}
	pb := mustIsing(t, in)
	sk, ok := pb.kernel().(*isingStreamKernel)
	if !ok {
		t.Fatal("expected streaming kernel")
	}
	if sk.integer {
		t.Fatal("float instance must take the float streaming path")
	}
	diag, gen := buildIsingTables(in)
	mat := newDiagKernelFromGen(in.N, diag, gen)
	x := testParams(2).Vector()
	sv := newWorkspace(pb.kernel(), nil).ExpectationVec(x)
	mv := newWorkspace(mat, nil).ExpectationVec(x)
	if math.Abs(sv-mv) > 1e-9*(1+math.Abs(mv)) {
		t.Errorf("float streaming <Score> %v != materialized %v", sv, mv)
	}
}

// The generic gate circuit (RZ per field, CNOT·RZ·CNOT per coupling)
// must equal the fast diagonal path exactly, global phase included —
// for both senses, with linear terms present.
func TestIsingFastPathMatchesGateCircuit(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 6; trial++ {
		in := problem.RandomIsing(6, rng)
		if trial%2 == 1 {
			in.Sense = problem.Maximize
		}
		pb := mustIsing(t, in)
		pr := randomParams(rng, 1+rng.Intn(3))
		fast := pb.State(pr)
		slow := pb.BuildCircuit(pr).Simulate()
		if !fast.Equal(slow, 1e-10) {
			t.Fatalf("trial %d: fast path != gate circuit (sense %v)", trial, in.Sense)
		}
	}
}

// Expectation must equal the probability-weighted Score sum, and the
// normalized AR must sit in [0, 1] with the brute-force extremes as
// anchors.
func TestIsingExpectationAndRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	in := problem.RandomIsing(8, rng)
	pb := mustIsing(t, in)
	pr := randomParams(rng, 2)
	e := pb.Expectation(pr)
	want := 0.0
	st := pb.State(pr)
	for z := uint64(0); z < 1<<8; z++ {
		want += st.Probability(z) * in.Score(z)
	}
	if math.Abs(e-want) > 1e-9*(1+math.Abs(want)) {
		t.Errorf("<Score> = %v, want probability sum %v", e, want)
	}
	ar := pb.ApproximationRatio(pr)
	if ar < 0 || ar > 1 {
		t.Errorf("normalized score %v out of [0, 1]", ar)
	}
	if pb.OptValue <= pb.MinScore {
		t.Errorf("degenerate score range [%v, %v]", pb.MinScore, pb.OptValue)
	}
	score, assign := pb.BestSampled(pr)
	if got := in.Score(assign); got != score {
		t.Errorf("BestSampled score %v != Score(%d) = %v", score, assign, got)
	}
}

// New must build a working problem for every family, and the compiled
// families must report sane normalized ratios.
func TestNewAllFamilies(t *testing.T) {
	for _, fam := range problem.Families() {
		rng := rand.New(rand.NewSource(90))
		spec, err := problem.RandomSpec(fam, 9, rng)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		pb, err := New(spec)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if fam == problem.FamilyMaxCut {
			if pb.Inst != nil || pb.Graph == nil {
				t.Fatalf("maxcut must keep the legacy graph path")
			}
		} else if pb.Inst == nil {
			t.Fatalf("%s: compiled family did not populate Inst", fam)
		}
		pr := testParams(1)
		ar := pb.ApproximationRatio(pr)
		if math.IsNaN(ar) || ar < -1e-12 || ar > 1+1e-12 {
			t.Errorf("%s: approximation ratio %v out of [0, 1]", fam, ar)
		}
	}
}

// Generic canonicalization must preserve the expectation: β mod π and
// (for integer coefficients) γ mod 2π plus the joint conjugation are
// exact symmetries of Hamiltonians with linear terms — while the
// MaxCut-only β mod π/2 fold is NOT, which is why the Inst guard
// exists.
func TestIsingCanonicalizePreservesExpectation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := problem.RandomIsing(8, rng)
	pb := mustIsing(t, in)
	for trial := 0; trial < 8; trial++ {
		pr := NewParams(2)
		for i := range pr.Gamma {
			pr.Gamma[i] = (rng.Float64() - 0.5) * 4 * GammaMax
			pr.Beta[i] = (rng.Float64() - 0.5) * 4 * BetaMax
		}
		canon := pb.Canonicalize(pr)
		for i := range canon.Beta {
			if canon.Beta[i] < 0 || canon.Beta[i] >= math.Pi {
				t.Fatalf("canonical beta[%d] = %v out of [0, π)", i, canon.Beta[i])
			}
		}
		if canon.Gamma[0] < 0 || canon.Gamma[0] > math.Pi+1e-12 {
			t.Fatalf("canonical gamma[0] = %v out of [0, π]", canon.Gamma[0])
		}
		e0, e1 := pb.Expectation(pr), pb.Expectation(canon)
		if math.Abs(e0-e1) > 1e-9*(1+math.Abs(e0)) {
			t.Fatalf("trial %d: canonicalization changed <Score>: %v -> %v", trial, e0, e1)
		}
	}
}
