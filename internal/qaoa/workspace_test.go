package qaoa

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"qaoaml/internal/graph"
	"qaoaml/internal/quantum"
)

func maxStateDiff(t *testing.T, a, b interface {
	Dim() int
	Amplitude(uint64) complex128
}) float64 {
	t.Helper()
	worst := 0.0
	for z := 0; z < a.Dim(); z++ {
		if d := cmplx.Abs(a.Amplitude(uint64(z)) - b.Amplitude(uint64(z))); d > worst {
			worst = d
		}
	}
	return worst
}

// Golden exactness: the fused mixing layer + memoized phase separator
// must reproduce the explicit gate-level circuit (CNOT·RZ·CNOT + per-
// qubit RX) to ≤ 1e-12 amplitude-wise, global phase included, on both
// unweighted and weighted random graphs.
func TestWorkspaceStateMatchesGateCircuit(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 12; trial++ {
		var g *graph.Graph
		if trial%2 == 0 {
			g = graph.ErdosRenyiConnected(6, 0.5, rng)
		} else {
			g = randomWeightedGraph(rng, 6)
		}
		pb := mustProblem(t, g)
		pr := randomParams(rng, 1+rng.Intn(4))
		fast := pb.State(pr)
		slow := pb.BuildCircuit(pr).Simulate()
		if d := maxStateDiff(t, fast, slow); d > 1e-12 {
			t.Fatalf("trial %d: fast state differs from gate circuit by %v", trial, d)
		}
	}
}

// The workspace expectation must agree with the gate-level expectation
// to ≤ 1e-12 and with Problem.Expectation bit-for-bit (same kernel).
func TestWorkspaceExpectationMatchesGateCircuit(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 12; trial++ {
		var g *graph.Graph
		if trial%2 == 0 {
			g = graph.ErdosRenyiConnected(7, 0.4, rng)
		} else {
			g = randomWeightedGraph(rng, 7)
		}
		pb := mustProblem(t, g)
		pr := randomParams(rng, 1+rng.Intn(3))
		ws := pb.NewWorkspace()
		got := ws.Expectation(pr)
		ref := pb.BuildCircuit(pr).Simulate().ExpectationDiagonal(pb.CutTable)
		if math.Abs(got-ref) > 1e-12 {
			t.Fatalf("trial %d: workspace ⟨C⟩ = %v, gate circuit %v", trial, got, ref)
		}
		if pe := pb.Expectation(pr); pe != got {
			t.Fatalf("trial %d: Problem.Expectation %v != workspace %v", trial, pe, got)
		}
	}
}

// Workspaces must be reusable: interleaved evaluations at different
// depths and parameters stay consistent with fresh evaluations.
func TestWorkspaceReuseIsStateless(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pb := mustProblem(t, graph.ErdosRenyiConnected(6, 0.5, rng))
	ws := pb.NewWorkspace()
	prs := []Params{randomParams(rng, 3), randomParams(rng, 1), randomParams(rng, 2)}
	want := make([]float64, len(prs))
	for i, pr := range prs {
		want[i] = pb.NewWorkspace().Expectation(pr)
	}
	for round := 0; round < 3; round++ {
		for i, pr := range prs {
			if got := ws.Expectation(pr); got != want[i] {
				t.Fatalf("round %d params %d: reused workspace %v != fresh %v", round, i, got, want[i])
			}
		}
	}
}

// NegExpectation must not allocate once the evaluator is warm — the
// whole point of the workspace engine.
func TestNegExpectationZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	pb := mustProblem(t, graph.ErdosRenyiConnected(8, 0.5, rng))
	ev := NewEvaluator(pb, 3)
	x := randomParams(rng, 3).Vector()
	_ = ev.NegExpectation(x) // warm up
	if allocs := testing.AllocsPerRun(50, func() { _ = ev.NegExpectation(x) }); allocs != 0 {
		t.Errorf("NegExpectation allocates %v objects per call, want 0", allocs)
	}
}

func TestDiagonalNegExpectationZeroAllocs(t *testing.T) {
	dp, err := NumberPartitionProblem([]float64{3, 1, 4, 1, 5, 9})
	if err != nil {
		t.Fatal(err)
	}
	ev := dp.NewEvaluator(2)
	x := []float64{0.4, 1.1, 0.3, 0.8}
	_ = ev.NegExpectation(x)
	if allocs := testing.AllocsPerRun(50, func() { _ = ev.NegExpectation(x) }); allocs != 0 {
		t.Errorf("diagonal NegExpectation allocates %v objects per call, want 0", allocs)
	}
}

// The distinct-cut factorization must actually compress: an unweighted
// graph has at most |E|+1 distinct cut values.
func TestKernelCompressesDistinctCuts(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	g := graph.ErdosRenyiConnected(8, 0.5, rng)
	pb := mustProblem(t, g)
	k, ok := pb.kernel().(*diagKernel)
	if !ok {
		t.Fatalf("small-n problem built %T, want the materialized *diagKernel", pb.kernel())
	}
	if max := g.NumEdges() + 1; len(k.halfAngles) > max {
		t.Errorf("kernel has %d distinct phase angles, want ≤ %d", len(k.halfAngles), max)
	}
	if len(k.idx) != len(pb.CutTable) {
		t.Errorf("kernel index table length %d != cut table length %d", len(k.idx), len(pb.CutTable))
	}
}

// BatchEvaluator must agree with sequential NegExpectation bit-for-bit,
// in input order, and count one QC call per point.
func TestBatchEvaluatorMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for _, workers := range []int{1, 3} {
		pb := mustProblem(t, randomWeightedGraph(rng, 7))
		const depth = 3
		points := make([][]float64, 17)
		for i := range points {
			points[i] = randomParams(rng, depth).Vector()
		}
		be := NewBatchEvaluator(pb, depth, workers)
		got := be.EvalBatch(points)
		ev := NewEvaluator(pb, depth)
		for i, x := range points {
			if want := ev.NegExpectation(x); got[i] != want {
				t.Fatalf("workers=%d point %d: batch %v != sequential %v", workers, i, got[i], want)
			}
		}
		if be.NFev() != len(points) {
			t.Errorf("workers=%d: NFev = %d, want %d", workers, be.NFev(), len(points))
		}
		be.ResetNFev()
		if be.NFev() != 0 {
			t.Error("ResetNFev failed")
		}
	}
}

func TestBatchEvaluatorWrongDimPanics(t *testing.T) {
	pb := mustProblem(t, graph.Path(3))
	be := NewBatchEvaluator(pb, 2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	be.EvalBatch([][]float64{{1, 2, 3}})
}

// ConstrainedState must be unchanged by the indexed-phase rewrite: it
// stays within the initial Hamming-weight sector and matches a direct
// phase-table reference.
func TestConstrainedStateStillMatchesPhaseTable(t *testing.T) {
	dp, err := NumberPartitionProblem([]float64{2, 3, 5, 7})
	if err != nil {
		t.Fatal(err)
	}
	pr := Params{Gamma: []float64{0.37, 0.81}, Beta: []float64{0.55, 0.21}}
	got := dp.ConstrainedState(pr, 0b0011)
	// Reference: explicit per-amplitude phase tables + XY ring.
	ref := quantum.NewBasisState(dp.N, 0b0011)
	phases := make([]float64, len(dp.Diag))
	for stage := 0; stage < pr.Depth(); stage++ {
		for z := range phases {
			phases[z] = -pr.Gamma[stage] * dp.Diag[z]
		}
		ref.ApplyDiagonalPhase(phases)
		for q := 0; q < dp.N; q++ {
			ref.XY(q, (q+1)%dp.N, pr.Beta[stage])
		}
	}
	worst := 0.0
	for z := 0; z < got.Dim(); z++ {
		if d := cmplx.Abs(got.Amplitude(uint64(z)) - ref.Amplitude(uint64(z))); d > worst {
			worst = d
		}
	}
	if worst > 1e-12 {
		t.Errorf("constrained state differs from reference by %v", worst)
	}
}
