package qaoa

// GridSearchP1 scans a uniform (γ, β) grid over the paper's depth-1
// domain [0, 2π] × [0, π] and returns the best parameters and
// expectation. It costs steps² circuit evaluations and is useful as a
// deterministic baseline against the local optimizers, and for seeding
// them on instances with many shallow local optima. It panics for
// steps < 2.
func GridSearchP1(pb *Problem, steps int) (Params, float64) {
	if steps < 2 {
		panic("qaoa: grid search needs steps >= 2")
	}
	best := Params{Gamma: []float64{0}, Beta: []float64{0}}
	bestE := pb.Expectation(best)
	pr := NewParams(1)
	for i := 0; i <= steps; i++ {
		pr.Gamma[0] = GammaMax * float64(i) / float64(steps)
		for j := 0; j <= steps; j++ {
			pr.Beta[0] = BetaMax * float64(j) / float64(steps)
			if e := pb.Expectation(pr); e > bestE {
				bestE = e
				best = Params{
					Gamma: []float64{pr.Gamma[0]},
					Beta:  []float64{pr.Beta[0]},
				}
			}
		}
	}
	return best, bestE
}
