package qaoa

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"qaoaml/internal/graph"
)

// Canonicalization must never change the expectation value.
func TestCanonicalizePreservesExpectation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.ErdosRenyiConnected(6, 0.5, rng)
		pb, err := NewProblem(g)
		if err != nil {
			return false
		}
		p := 1 + rng.Intn(3)
		pr := NewParams(p)
		for i := 0; i < p; i++ {
			// Sample outside the domain too, to exercise the mod.
			pr.Gamma[i] = rng.Float64()*12 - 6
			pr.Beta[i] = rng.Float64()*8 - 4
		}
		orig := pb.Expectation(pr)
		canon := Canonicalize(pr)
		return math.Abs(pb.Expectation(canon)-orig) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCanonicalizeDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		p := 1 + rng.Intn(4)
		pr := NewParams(p)
		for i := 0; i < p; i++ {
			pr.Gamma[i] = rng.Float64()*20 - 10
			pr.Beta[i] = rng.Float64()*20 - 10
		}
		c := Canonicalize(pr)
		if c.Gamma[0] < 0 || c.Gamma[0] > math.Pi+1e-12 {
			t.Fatalf("canonical γ1 = %v out of [0, π]", c.Gamma[0])
		}
		for i := 0; i < p; i++ {
			if c.Gamma[i] < 0 || c.Gamma[i] >= GammaMax {
				t.Fatalf("canonical γ%d = %v out of [0, 2π)", i+1, c.Gamma[i])
			}
			if c.Beta[i] < 0 || c.Beta[i] >= BetaPeriod {
				t.Fatalf("canonical β%d = %v out of [0, π/2)", i+1, c.Beta[i])
			}
		}
	}
}

func TestCanonicalizeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		pr := randomParams(rng, 1+rng.Intn(3))
		once := Canonicalize(pr)
		twice := Canonicalize(once)
		for i := range once.Gamma {
			if math.Abs(once.Gamma[i]-twice.Gamma[i]) > 1e-12 ||
				math.Abs(once.Beta[i]-twice.Beta[i]) > 1e-12 {
				t.Fatalf("not idempotent: %v vs %v", once, twice)
			}
		}
	}
}

func TestCanonicalizeDoesNotMutateInput(t *testing.T) {
	pr := Params{Gamma: []float64{5.5}, Beta: []float64{2.5}}
	_ = Canonicalize(pr)
	if pr.Gamma[0] != 5.5 || pr.Beta[0] != 2.5 {
		t.Error("Canonicalize mutated its input")
	}
}

// Symmetric copies of the same optimum must canonicalize to the same
// representative.
func TestSymmetricCopiesCollapse(t *testing.T) {
	base := Params{Gamma: []float64{1.1, 2.0}, Beta: []float64{0.3, 0.7}}
	copies := []Params{
		{Gamma: []float64{1.1, 2.0}, Beta: []float64{0.3 + BetaPeriod, 0.7}},
		{Gamma: []float64{1.1, 2.0}, Beta: []float64{0.3, 0.7 + 2*BetaPeriod}},
		{Gamma: []float64{GammaMax - 1.1, GammaMax - 2.0}, Beta: []float64{-0.3, -0.7}},
	}
	want := Canonicalize(base)
	for ci, cp := range copies {
		got := Canonicalize(cp)
		for i := range want.Gamma {
			if math.Abs(got.Gamma[i]-want.Gamma[i]) > 1e-12 ||
				math.Abs(got.Beta[i]-want.Beta[i]) > 1e-12 {
				t.Errorf("copy %d: canonical %v != %v", ci, got, want)
				break
			}
		}
	}
}

// Problem.Canonicalize must preserve the expectation on odd-regular
// graphs (where the extra γ → γ+π folding applies) and on general
// graphs (where it reduces to the graph-independent form).
func TestProblemCanonicalizePreservesExpectation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var g *graph.Graph
		if seed%2 == 0 {
			g = graph.RandomRegular(8, 3, rng)
		} else {
			g = graph.ErdosRenyiConnected(7, 0.5, rng)
		}
		pb, err := NewProblem(g)
		if err != nil {
			return false
		}
		p := 1 + rng.Intn(3)
		pr := NewParams(p)
		for i := 0; i < p; i++ {
			pr.Gamma[i] = rng.Float64()*12 - 6
			pr.Beta[i] = rng.Float64()*8 - 4
		}
		orig := pb.Expectation(pr)
		canon := pb.Canonicalize(pr)
		return math.Abs(pb.Expectation(canon)-orig) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// On odd-regular graphs every γi folds into [0, π) and γ1 into [0, π/2].
func TestProblemCanonicalizeOddRegularDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pb, err := NewProblem(graph.RandomRegular(8, 3, rng))
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 100; trial++ {
		p := 1 + rng.Intn(4)
		pr := NewParams(p)
		for i := 0; i < p; i++ {
			pr.Gamma[i] = rng.Float64()*20 - 10
			pr.Beta[i] = rng.Float64()*20 - 10
		}
		c := pb.Canonicalize(pr)
		if c.Gamma[0] < 0 || c.Gamma[0] > math.Pi/2+1e-12 {
			t.Fatalf("odd-regular canonical γ1 = %v out of [0, π/2]", c.Gamma[0])
		}
		for i := 0; i < p; i++ {
			if c.Gamma[i] < 0 || c.Gamma[i] >= math.Pi {
				t.Fatalf("odd-regular canonical γ%d = %v out of [0, π)", i+1, c.Gamma[i])
			}
			if c.Beta[i] < 0 || c.Beta[i] >= BetaPeriod {
				t.Fatalf("canonical β%d = %v out of [0, π/2)", i+1, c.Beta[i])
			}
		}
	}
}

// The γ → γ+π odd-degree symmetry itself, checked directly against the
// simulator: shifting one stage's γ by π and negating all later mixers
// leaves the expectation unchanged on an all-odd-degree graph, and
// changes it on a graph with an even-degree vertex.
func TestOddDegreeGammaShiftSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	odd, err := NewProblem(graph.RandomRegular(8, 3, rng))
	if err != nil {
		t.Fatal(err)
	}
	base := Params{Gamma: []float64{0.7, 1.1}, Beta: []float64{0.4, 0.25}}
	shifted := Params{Gamma: []float64{0.7, 1.1 + math.Pi}, Beta: []float64{0.4, -0.25}}
	if d := math.Abs(odd.Expectation(base) - odd.Expectation(shifted)); d > 1e-9 {
		t.Errorf("odd-regular γ2+π symmetry violated by %v", d)
	}
	first := Params{Gamma: []float64{0.7 + math.Pi, 1.1}, Beta: []float64{-0.4, -0.25}}
	if d := math.Abs(odd.Expectation(base) - odd.Expectation(first)); d > 1e-9 {
		t.Errorf("odd-regular γ1+π symmetry violated by %v", d)
	}
	// P3 has degrees (1, 2, 1): the even-degree middle vertex breaks
	// the symmetry.
	even, err := NewProblem(graph.Path(3))
	if err != nil {
		t.Fatal(err)
	}
	b2 := Params{Gamma: []float64{0.7}, Beta: []float64{0.4}}
	s2 := Params{Gamma: []float64{0.7 + math.Pi}, Beta: []float64{-0.4}}
	if d := math.Abs(even.Expectation(b2) - even.Expectation(s2)); d < 1e-6 {
		t.Errorf("γ+π symmetry unexpectedly holds on even-degree graph (d=%v)", d)
	}
}
