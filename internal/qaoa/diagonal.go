package qaoa

import (
	"fmt"
	"math"
	"sync"

	"qaoaml/internal/quantum"
)

// DiagonalProblem generalizes the MaxCut Problem to any cost function
// that is diagonal in the computational basis (any QUBO/Ising-style
// objective): maximize C(z) over bit strings z, driven by the standard
// QAOA ansatz with phase separator U_C(γ) = exp(−iγ C) and transverse
// mixers RX(2β). MaxCut is the special case where C counts cut edges;
// this type admits arbitrary tables (number partitioning, MAX-k-SAT
// penalties, ...).
type DiagonalProblem struct {
	N        int       // qubits
	Diag     []float64 // C(z) for every basis state, length 2^N
	OptValue float64   // max over Diag
	MinValue float64   // min over Diag

	// Fast-path precomputation (see workspace.go), built lazily.
	kernOnce sync.Once
	kern     *diagKernel
	pool     wsPool
}

// NewDiagonalProblem validates the cost table (length 2^n, finite
// entries, non-constant).
func NewDiagonalProblem(n int, diag []float64) (*DiagonalProblem, error) {
	if n < 1 || n > quantum.MaxQubits {
		return nil, fmt.Errorf("qaoa: qubit count %d out of [1,%d]", n, quantum.MaxQubits)
	}
	if len(diag) != 1<<uint(n) {
		return nil, fmt.Errorf("qaoa: cost table length %d != 2^%d", len(diag), n)
	}
	lo, hi := diag[0], diag[0]
	for _, v := range diag {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("qaoa: non-finite cost entry %v", v)
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if lo == hi {
		return nil, fmt.Errorf("qaoa: constant cost table has nothing to optimize")
	}
	table := append([]float64(nil), diag...)
	return &DiagonalProblem{N: n, Diag: table, OptValue: hi, MinValue: lo}, nil
}

// State returns |ψ(γ, β)⟩ for the general ansatz: uniform initial
// layer, then per stage exp(−iγ C) followed by RX(2β) mixers, computed
// with the memoized-phase and fused-mixer kernels of workspace.go.
func (dp *DiagonalProblem) State(pr Params) *quantum.State {
	if err := pr.Validate(false); err != nil {
		panic(err)
	}
	return prepareState(dp.kernel(), pr.Gamma, pr.Beta)
}

// Expectation returns ⟨C⟩ in the ansatz state. Safe for concurrent use
// (buffers come from an internal pool).
func (dp *DiagonalProblem) Expectation(pr Params) float64 {
	if err := pr.Validate(false); err != nil {
		panic(err)
	}
	w := dp.pool.get(dp.kernel())
	e := w.expectation(pr.Gamma, pr.Beta)
	dp.pool.put(w)
	return e
}

// NormalizedScore maps ⟨C⟩ to [0, 1] via (⟨C⟩ − min C)/(max C − min C):
// the approximation-ratio analogue that stays well-defined for cost
// tables with arbitrary sign.
func (dp *DiagonalProblem) NormalizedScore(pr Params) float64 {
	return (dp.Expectation(pr) - dp.MinValue) / (dp.OptValue - dp.MinValue)
}

// BestSampled returns the most probable basis state and its cost.
func (dp *DiagonalProblem) BestSampled(pr Params) (cost float64, assign uint64) {
	assign, _ = dp.State(pr).ArgmaxProbability()
	return dp.Diag[assign], assign
}

// NewEvaluator wraps the problem as a counted minimization objective
// over the flat parameter vector, like Problem's evaluator.
func (dp *DiagonalProblem) NewEvaluator(depth int) *DiagonalEvaluator {
	if depth < 1 {
		panic(fmt.Sprintf("qaoa: depth %d < 1", depth))
	}
	return &DiagonalEvaluator{Problem: dp, Depth: depth, ws: dp.NewWorkspace()}
}

// DiagonalEvaluator counts QC calls for a DiagonalProblem. It owns an
// EvalWorkspace, so NegExpectation does not allocate after warm-up; not
// safe for concurrent use.
type DiagonalEvaluator struct {
	Problem *DiagonalProblem
	Depth   int
	nfev    int
	ngev    int
	ws      *EvalWorkspace
}

// Dim returns 2·depth.
func (e *DiagonalEvaluator) Dim() int { return 2 * e.Depth }

// NegExpectation is the counted minimization objective −⟨C⟩.
func (e *DiagonalEvaluator) NegExpectation(x []float64) float64 {
	if len(x) != e.Dim() {
		panic(fmt.Sprintf("qaoa: parameter vector length %d != 2p = %d", len(x), e.Dim()))
	}
	e.nfev++
	return -e.ws.ExpectationVec(x)
}

// NegGrad fills grad with the exact gradient of −⟨C⟩ at x via one
// adjoint reverse sweep (gradient.go); counts one gradient evaluation.
func (e *DiagonalEvaluator) NegGrad(x, grad []float64) { e.NegValueGrad(x, grad) }

// NegValueGrad is NegGrad returning −⟨C⟩ as well (bit-identical to
// NegExpectation, same forward pass; counts NGev, not a QC call).
func (e *DiagonalEvaluator) NegValueGrad(x, grad []float64) float64 {
	if len(x) != e.Dim() {
		panic(fmt.Sprintf("qaoa: parameter vector length %d != 2p = %d", len(x), e.Dim()))
	}
	e.ngev++
	v := e.ws.ValueGrad(x, grad)
	for i := range grad {
		grad[i] = -grad[i]
	}
	return -v
}

// NFev returns the number of QC calls so far.
func (e *DiagonalEvaluator) NFev() int { return e.nfev }

// NGev returns the number of adjoint gradient evaluations so far.
func (e *DiagonalEvaluator) NGev() int { return e.ngev }

// NumberPartitionProblem builds the classic number-partitioning
// objective for the given positive weights: assign each number to one
// of two sets to minimize the difference of sums. The cost to maximize
// is C(z) = −(Σᵢ sᵢ·(−1)^{zᵢ})², so the optimum is 0 exactly when a
// perfect partition exists.
func NumberPartitionProblem(weights []float64) (*DiagonalProblem, error) {
	n := len(weights)
	if n < 2 {
		return nil, fmt.Errorf("qaoa: number partitioning needs at least 2 numbers")
	}
	if n > quantum.MaxQubits {
		return nil, fmt.Errorf("qaoa: %d numbers exceed the %d-qubit simulator limit", n, quantum.MaxQubits)
	}
	for _, w := range weights {
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("qaoa: invalid weight %v", w)
		}
	}
	diag := make([]float64, 1<<uint(n))
	for z := range diag {
		diff := 0.0
		for i, w := range weights {
			if (z>>uint(i))&1 == 0 {
				diff += w
			} else {
				diff -= w
			}
		}
		diag[z] = -(diff * diff)
		if diag[z] == 0 {
			diag[z] = 0 // normalize −0 so perfect partitions print as 0
		}
	}
	return NewDiagonalProblem(n, diag)
}

// ConstrainedState runs the XY-ring-mixer variant of QAOA: starting
// from the computational basis state |initial⟩, each stage applies the
// phase separator exp(−iγ C) followed by a ring of XY(β) interactions
// XY(0,1), XY(1,2), ..., XY(n−1,0). Because XY preserves Hamming
// weight, the evolved state stays inside the weight sector of
// |initial⟩ — the standard ansatz for cardinality-constrained
// objectives ("select exactly k items"), one of the QAOA extensions the
// paper's Sec. I positions against.
func (dp *DiagonalProblem) ConstrainedState(pr Params, initial uint64) *quantum.State {
	if err := pr.Validate(false); err != nil {
		panic(err)
	}
	if initial >= uint64(len(dp.Diag)) {
		panic(fmt.Sprintf("qaoa: initial state %d out of range", initial))
	}
	k := dp.kernel()
	s := quantum.NewBasisState(dp.N, initial)
	factors := make([]complex128, len(k.halfAngles))
	for stage := 0; stage < pr.Depth(); stage++ {
		gamma := pr.Gamma[stage]
		for j, h := range k.halfAngles {
			sin, cos := math.Sincos(gamma * h)
			factors[j] = complex(cos, sin)
		}
		s.MulDiagonalIndexed(k.idx, factors)
		for q := 0; q < dp.N; q++ {
			s.XY(q, (q+1)%dp.N, pr.Beta[stage])
		}
	}
	return s
}

// ConstrainedExpectation returns ⟨C⟩ under the XY-ring ansatz.
func (dp *DiagonalProblem) ConstrainedExpectation(pr Params, initial uint64) float64 {
	return dp.ConstrainedState(pr, initial).ExpectationDiagonal(dp.Diag)
}
