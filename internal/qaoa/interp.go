package qaoa

// Interpolate builds a depth-(p+1) initialization from a depth-p
// optimum with the INTERP strategy of Zhou et al. (the paper's
// reference [5]): each new stage angle is the linear interpolation of
// its neighbours in the lower-depth schedule,
//
//	θ'_i = (i−1)/p · θ_{i−1} + (p−i+1)/p · θ_i ,  i = 1..p+1,
//
// with θ_0 = θ_{p+1} = 0. The optimal QAOA schedules behave like
// discretized annealing paths, so the interpolated point lands in the
// basin of the same (regular) optimum family at the next depth. The
// dataset generator seeds one multistart leg with this point so that
// best-of-starts selection produces the consistent parameter patterns
// of the paper's Figs. 2-3.
func Interpolate(pr Params) Params {
	p := pr.Depth()
	out := NewParams(p + 1)
	out.Gamma = interpolateSchedule(pr.Gamma)
	out.Beta = interpolateSchedule(pr.Beta)
	return out
}

func interpolateSchedule(theta []float64) []float64 {
	p := len(theta)
	out := make([]float64, p+1)
	at := func(i int) float64 { // θ_i with θ_0 = θ_{p+1} = 0
		if i < 1 || i > p {
			return 0
		}
		return theta[i-1]
	}
	for i := 1; i <= p+1; i++ {
		out[i-1] = float64(i-1)/float64(p)*at(i-1) + float64(p-i+1)/float64(p)*at(i)
	}
	return out
}
