// Package qaoa implements the Quantum Approximate Optimization Algorithm
// for graph MaxCut exactly as the paper's circuits do: a Hadamard layer,
// then p stages each made of a phase-separation layer (CNOT·RZ(−γ)·CNOT
// per edge, equivalently exp(iγ Z⊗Z/2)) and a mixing layer (RX(2β) per
// qubit, i.e. exp(−iβ Σ Xi)).
//
// Parameter conventions follow Farhi et al. (the paper's reference [1]):
// the stage angles are γi ∈ [0, 2π] and βi ∈ [0, π]. A parameter vector
// is laid out as [γ1..γp, β1..βp].
package qaoa

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"sync"

	"qaoaml/internal/graph"
	"qaoaml/internal/problem"
	"qaoaml/internal/quantum"
)

// Domain bounds from the paper (Sec. III-A).
const (
	GammaMax = 2 * math.Pi // γi ∈ [0, 2π]
	BetaMax  = math.Pi     // βi ∈ [0, π]
)

// Params holds the 2p stage angles of a depth-p QAOA instance.
type Params struct {
	Gamma []float64 // phase-separation angles, one per stage
	Beta  []float64 // mixing angles, one per stage
}

// NewParams allocates zeroed parameters for depth p.
func NewParams(p int) Params {
	return Params{Gamma: make([]float64, p), Beta: make([]float64, p)}
}

// Depth returns the number of stages p.
func (pr Params) Depth() int { return len(pr.Gamma) }

// Vector flattens the parameters to [γ1..γp, β1..βp].
func (pr Params) Vector() []float64 {
	p := pr.Depth()
	v := make([]float64, 2*p)
	copy(v, pr.Gamma)
	copy(v[p:], pr.Beta)
	return v
}

// FromVector splits a flat [γ1..γp, β1..βp] vector into Params.
// It panics for odd-length input.
func FromVector(v []float64) Params {
	if len(v)%2 != 0 {
		panic(fmt.Sprintf("qaoa: parameter vector of odd length %d", len(v)))
	}
	p := len(v) / 2
	pr := NewParams(p)
	copy(pr.Gamma, v[:p])
	copy(pr.Beta, v[p:])
	return pr
}

// Validate checks lengths and (optionally) the paper's domain bounds.
func (pr Params) Validate(checkDomain bool) error {
	if len(pr.Gamma) != len(pr.Beta) {
		return fmt.Errorf("qaoa: gamma/beta length mismatch %d != %d", len(pr.Gamma), len(pr.Beta))
	}
	if !checkDomain {
		return nil
	}
	for i, g := range pr.Gamma {
		if g < 0 || g > GammaMax {
			return fmt.Errorf("qaoa: gamma[%d] = %v out of [0, 2π]", i, g)
		}
	}
	for i, b := range pr.Beta {
		if b < 0 || b > BetaMax {
			return fmt.Errorf("qaoa: beta[%d] = %v out of [0, π]", i, b)
		}
	}
	return nil
}

// Problem is a (possibly weighted) MaxCut instance prepared for QAOA
// evaluation: the graph, the cost diagonal C(z) (cut weight per
// computational basis state), and the exact optimum used for
// approximation ratios.
//
// CutTable is only materialized for small instances (n <
// StreamingThreshold). Above the threshold it stays nil and every
// evaluation streams C(z) from the edge list (see stream.go), so the
// per-problem memory footprint is the state vector alone — a 2^20
// problem holds no 8 MiB cost table and no 4 MiB index table. Use
// CutValue for point lookups; it works in both modes.
type Problem struct {
	Graph       *graph.Graph
	CutTable    []float64 // nil in streaming mode
	OptValue    float64   // exact optimum: MaxCut weight, or best Score for Ising problems
	TotalWeight float64   // sum of all edge weights (MaxCut problems only)

	// Generic-Hamiltonian fields (New / NewIsing). For non-MaxCut
	// families Graph is nil, Inst holds the compiled Ising instance and
	// evaluation runs through the Ising kernels (ising.go); MinScore is
	// the exact worst Score, the floor of the normalized-score ratio.
	Spec     problem.Spec
	Inst     *problem.Instance
	MinScore float64

	// Fast-path precomputation (see workspace.go), built lazily so any
	// correctly-populated Problem value gets it on first evaluation.
	kernOnce sync.Once
	kern     costKernel
	pool     wsPool
}

// NewProblem precomputes the cost table (small instances only — see
// Problem) and the exact MaxCut optimum. It returns an error for graphs
// with no edges (AR undefined) or a non-positive optimum (all-negative
// weights make AR meaningless).
func NewProblem(g *graph.Graph) (*Problem, error) {
	if g.NumEdges() == 0 {
		return nil, fmt.Errorf("qaoa: graph with no edges has no MaxCut objective")
	}
	opt, _ := g.WeightedMaxCut()
	if opt <= 0 {
		return nil, fmt.Errorf("qaoa: MaxCut optimum %v is not positive; approximation ratio undefined", opt)
	}
	pb := &Problem{
		Graph:       g,
		OptValue:    opt,
		TotalWeight: g.TotalWeight(),
		Spec:        problem.MaxCut(g),
	}
	if g.N < StreamingThreshold {
		pb.CutTable = g.WeightedCutTable()
	}
	return pb, nil
}

// CutValue returns C(z), the cut weight of assignment z — a table
// lookup when the table is materialized, an edge-list scan in streaming
// mode.
func (pb *Problem) CutValue(z uint64) float64 {
	if pb.CutTable != nil {
		return pb.CutTable[z]
	}
	return pb.Graph.WeightedCutValue(z)
}

// costDiagonal returns the materialized cost diagonal, computing a
// fresh table in streaming mode. Only gate-level consumers that
// genuinely need all 2^n entries (the noisy trajectory sampler) call
// it; the evaluation hot paths never do.
func (pb *Problem) costDiagonal() []float64 {
	if pb.Inst != nil {
		diag, _ := buildIsingTables(pb.Inst)
		return diag
	}
	if pb.CutTable != nil {
		return pb.CutTable
	}
	return pb.Graph.WeightedCutTable()
}

// NumQubits returns the register width: one qubit per vertex for
// MaxCut, the compiled register (decision variables plus any
// quadratization auxiliaries) for Ising problems.
func (pb *Problem) NumQubits() int {
	if pb.Inst != nil {
		return pb.Inst.N
	}
	return pb.Graph.N
}

// BuildCircuit constructs the explicit gate-level QAOA circuit for the
// given parameters: H on all qubits, then per stage the CNOT·RZ(−γ)·CNOT
// phase separator per edge followed by RX(2β) mixers. This is the
// circuit of the paper's Fig. 1(a).
func (pb *Problem) BuildCircuit(pr Params) *quantum.Circuit {
	if err := pr.Validate(false); err != nil {
		panic(err)
	}
	n := pb.NumQubits()
	c := quantum.NewCircuit(n)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	if pb.Inst != nil {
		for s := 0; s < pr.Depth(); s++ {
			pb.isingCircuit(c, pr.Gamma[s])
			for q := 0; q < n; q++ {
				c.RX(q, 2*pr.Beta[s])
			}
		}
		return c
	}
	edges := pb.Graph.Edges()
	weights := pb.Graph.Weights()
	for s := 0; s < pr.Depth(); s++ {
		for i, e := range edges {
			c.CNOT(e.U, e.V)
			c.RZ(e.V, -pr.Gamma[s]*weights[i])
			c.CNOT(e.U, e.V)
		}
		for q := 0; q < n; q++ {
			c.RX(q, 2*pr.Beta[s])
		}
	}
	return c
}

// State returns |ψ(γ, β)⟩ using the fast diagonal phase-separator path
// (distinct-cut memoized phases, fused mixing kernel — see
// workspace.go). The result matches BuildCircuit(pr).Simulate() to
// rounding error, including global phase.
func (pb *Problem) State(pr Params) *quantum.State {
	if err := pr.Validate(false); err != nil {
		panic(err)
	}
	return prepareState(pb.kernel(), pr.Gamma, pr.Beta)
}

// Expectation returns ⟨ψ(γ, β)|C|ψ(γ, β)⟩, the expected cut size. It is
// safe for concurrent use: evaluation buffers come from an internal
// pool. Evaluation loops should prefer an Evaluator or EvalWorkspace,
// which reuse one buffer set without pool round-trips.
func (pb *Problem) Expectation(pr Params) float64 {
	if err := pr.Validate(false); err != nil {
		panic(err)
	}
	w := pb.pool.get(pb.kernel())
	e := w.expectation(pr.Gamma, pr.Beta)
	pb.pool.put(w)
	return e
}

// ApproximationRatio returns the quality ratio for the given
// parameters: ⟨C⟩ / C_opt for MaxCut (the paper's convention), and the
// [0, 1]-normalized score (⟨Score⟩ − worst) / (best − worst) for
// compiled Ising families, whose raw Score can be negative and whose
// plain ratio would be meaningless.
func (pb *Problem) ApproximationRatio(pr Params) float64 {
	return pb.ratioOf(pb.Expectation(pr))
}

// ratioOf maps an expectation onto the family's quality ratio — the
// shared arithmetic behind Problem.ApproximationRatio and
// Evaluator.ApproximationRatio, so both report bit-identical ratios for
// the same expectation value.
func (pb *Problem) ratioOf(e float64) float64 {
	if pb.Inst != nil {
		return pb.NormalizedScore(e)
	}
	return e / pb.OptValue
}

// BestSampledCut returns the most probable basis state's objective and
// the assignment, i.e. the solution a user would read out after
// optimization. For MaxCut problems the objective is the cut weight;
// for compiled Ising families it is the direction-normalized Score
// (see BestSampled, the family-generic name).
func (pb *Problem) BestSampledCut(pr Params) (cut float64, assign uint64) {
	return pb.BestSampled(pr)
}

// Evaluator wraps a Problem as a minimization objective over the flat
// parameter vector and counts quantum-computer calls (the paper's
// "function calls" / "QC calls" / loop iterations). It owns an
// EvalWorkspace, so NegExpectation performs no heap allocation after
// warm-up; like the workspace, an Evaluator is not safe for concurrent
// use — create one per goroutine.
type Evaluator struct {
	Problem *Problem
	Depth   int
	nfev    int
	ngev    int
	ws      *EvalWorkspace
}

// NewEvaluator returns an evaluator for a fixed circuit depth p ≥ 1.
func NewEvaluator(pb *Problem, p int) *Evaluator {
	return NewEvaluatorArena(pb, p, nil)
}

// NewEvaluatorArena is NewEvaluator drawing the workspace's
// state-vector buffers from the arena (nil behaves like NewEvaluator).
// Results are bit-identical; only the buffers' provenance changes.
// Call Release when done so the buffers return to the arena.
func NewEvaluatorArena(pb *Problem, p int, a *Arena) *Evaluator {
	if p < 1 {
		panic(fmt.Sprintf("qaoa: depth %d < 1", p))
	}
	return &Evaluator{Problem: pb, Depth: p, ws: pb.NewWorkspaceArena(a)}
}

// Release retires the evaluator's workspace, returning arena-drawn
// buffers to their arena (closing shard workers otherwise). The
// evaluator must not be used afterwards.
func (e *Evaluator) Release() { e.ws.Release() }

// ApproximationRatio returns the quality ratio at the given parameters
// through the evaluator's own workspace — bit-identical to
// Problem.ApproximationRatio (same kernel, same chunk geometry) but
// with no pool round-trip and no buffer allocation.
func (e *Evaluator) ApproximationRatio(pr Params) float64 {
	return e.Problem.ratioOf(e.ws.Expectation(pr))
}

// BestSampled returns the most probable basis state's Score and
// assignment at the given parameters, reusing the evaluator's
// workspace — the allocation-free analogue of Problem.BestSampled
// (which builds a transient 2^n state per call). Ties resolve to the
// lowest basis index in both, so the readouts agree exactly.
func (e *Evaluator) BestSampled(pr Params) (score float64, assign uint64) {
	if err := pr.Validate(false); err != nil {
		panic(err)
	}
	e.ws.runLayers(pr.Gamma, pr.Beta)
	assign = e.ws.argmax()
	return e.Problem.ScoreValue(assign), assign
}

// Dim returns the number of optimization variables, 2p.
func (e *Evaluator) Dim() int { return 2 * e.Depth }

// NegExpectation is the minimization objective −⟨C⟩ over the flat
// parameter vector [γ1..γp, β1..βp]. Each call counts one QC call.
func (e *Evaluator) NegExpectation(x []float64) float64 {
	if len(x) != e.Dim() {
		panic(fmt.Sprintf("qaoa: parameter vector length %d != 2p = %d", len(x), e.Dim()))
	}
	e.nfev++
	return -e.ws.ExpectationVec(x)
}

// NegGrad fills grad with the exact gradient of the minimization
// objective −⟨C⟩ at x, computed by one adjoint reverse sweep (see
// gradient.go) — no finite differences, no function calls counted.
// Each call counts one gradient evaluation (NGev). Warm calls perform
// no heap allocation.
func (e *Evaluator) NegGrad(x, grad []float64) { e.NegValueGrad(x, grad) }

// NegValueGrad is NegGrad returning −⟨C⟩ as well; the value is
// bit-identical to NegExpectation(x) (same forward pass) but does not
// count a QC call, only a gradient evaluation.
func (e *Evaluator) NegValueGrad(x, grad []float64) float64 {
	if len(x) != e.Dim() {
		panic(fmt.Sprintf("qaoa: parameter vector length %d != 2p = %d", len(x), e.Dim()))
	}
	e.ngev++
	v := e.ws.ValueGrad(x, grad)
	for i := range grad {
		grad[i] = -grad[i]
	}
	return -v
}

// NFev returns the number of QC calls so far.
func (e *Evaluator) NFev() int { return e.nfev }

// ResetNFev zeroes the QC-call counter.
func (e *Evaluator) ResetNFev() { e.nfev = 0 }

// NGev returns the number of adjoint gradient evaluations so far.
func (e *Evaluator) NGev() int { return e.ngev }

// ResetNGev zeroes the gradient-evaluation counter.
func (e *Evaluator) ResetNGev() { e.ngev = 0 }

// UniformState returns the p = 0 state (just the Hadamard layer), whose
// expectation is m/2 — a useful baseline in tests.
func (pb *Problem) UniformState() *quantum.State {
	return quantum.NewUniformState(pb.NumQubits())
}

// GlobalPhaseReference exposes the phase convention used by the fast
// path for verification: for a depth-1 circuit with β = 0 the amplitude
// of basis state z is exp(iγ(m−2C(z))/2)/√dim.
func (pb *Problem) GlobalPhaseReference(gamma float64, z uint64) complex128 {
	dim := float64(int(1) << uint(pb.NumQubits()))
	return cmplx.Exp(complex(0, gamma*(pb.TotalWeight-2*pb.CutValue(z))/2)) * complex(1/math.Sqrt(dim), 0)
}

// NoisyExpectation estimates ⟨C⟩ for the explicit gate-level circuit
// run under a depolarizing noise model, averaged over Monte-Carlo
// trajectories. The paper evaluates noiselessly (QuTiP); this is the
// NISQ-hardware substitute — see quantum.NoiseModel.
func (pb *Problem) NoisyExpectation(pr Params, nm quantum.NoiseModel, trajectories int, rng *rand.Rand) float64 {
	c := pb.BuildCircuit(pr)
	return c.NoisyExpectationDiagonal(pb.costDiagonal(), nm, trajectories, rng)
}
