package qaoa

import (
	"math/rand"
	"runtime"
	"testing"

	"qaoaml/internal/graph"
	"qaoaml/internal/problem"
)

// Sharded-workspace bit-identity: every cost kernel (materialized
// MaxCut, streaming MaxCut, streaming Ising/Max-k-SAT) must produce
// EXACTLY the same expectation values and adjoint gradients over the
// sharded state layout as over the flat one, at every shard count and
// every GOMAXPROCS. Comparisons use ==, never tolerances.

func shardTestProblems(t *testing.T, n int) map[string]*Problem {
	t.Helper()
	pbs := map[string]*Problem{
		"maxcut": mustProblem(t, graph.RandomRegular(n, 3, rand.New(rand.NewSource(171)))),
	}
	ising, err := NewIsing(problem.RandomIsing(n, rand.New(rand.NewSource(172))))
	if err != nil {
		t.Fatal(err)
	}
	pbs["ising"] = ising
	f := problem.RandomMaxKSAT(n-6, 6, 3, rand.New(rand.NewSource(173)))
	ksat, err := New(problem.MaxKSAT(f))
	if err != nil {
		t.Fatal(err)
	}
	if ksat.NumQubits() != n {
		t.Fatalf("maxksat compiled to %d qubits, want %d", ksat.NumQubits(), n)
	}
	pbs["maxksat"] = ksat
	return pbs
}

func TestShardedWorkspaceBitIdenticalToFlat(t *testing.T) {
	const n = 18
	x := []float64{0.4, -0.3, 0.25, 0.7} // p = 2
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	for name, pb := range shardTestProblems(t, n) {
		flat := newFlatWorkspace(pb.kernel(), nil)
		fgrad := make([]float64, len(x))
		grad := make([]float64, len(x))
		for _, shardBits := range []int{0, 1, 2} {
			sharded := pb.NewWorkspaceShards(shardBits)
			if got, want := sharded.Shards(), 1<<shardBits; got != want {
				t.Fatalf("%s: Shards() = %d, want %d", name, got, want)
			}
			for _, workers := range []int{1, 2, 8} {
				runtime.GOMAXPROCS(workers)
				fval := flat.ExpectationVec(x)
				sval := sharded.ExpectationVec(x)
				if sval != fval {
					t.Errorf("%s shards=%d workers=%d: expectation %v != flat %v",
						name, 1<<shardBits, workers, sval, fval)
				}
				fgval := flat.ValueGrad(x, fgrad)
				sgval := sharded.ValueGrad(x, grad)
				if sgval != fgval {
					t.Errorf("%s shards=%d workers=%d: gradient value %v != flat %v",
						name, 1<<shardBits, workers, sgval, fgval)
				}
				for i := range grad {
					if grad[i] != fgrad[i] {
						t.Errorf("%s shards=%d workers=%d: grad[%d] %v != flat %v",
							name, 1<<shardBits, workers, i, grad[i], fgrad[i])
					}
				}
			}
			sharded.Close()
		}
	}
}

// Full-size check: a 24-qubit streaming MaxCut over 4 shards matches
// the flat path exactly (two 256 MiB shard sets; seconds of runtime).
func TestShardedWorkspaceN24MatchesFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("n=24 sharded identity check skipped in short mode")
	}
	if raceEnabled {
		t.Skip("full-size identity check is too slow under -race; n=18 suite covers the raced path")
	}
	pb := mustProblem(t, graph.RandomRegular(24, 3, rand.New(rand.NewSource(241))))
	x := []float64{0.4, 0.3}
	flat := newFlatWorkspace(pb.kernel(), nil)
	sharded := pb.NewWorkspaceShards(2)
	defer sharded.Close()

	fgrad := make([]float64, len(x))
	grad := make([]float64, len(x))
	if fval, sval := flat.ExpectationVec(x), sharded.ExpectationVec(x); sval != fval {
		t.Errorf("n=24: sharded expectation %v != flat %v", sval, fval)
	}
	fgval := flat.ValueGrad(x, fgrad)
	sgval := sharded.ValueGrad(x, grad)
	if sgval != fgval {
		t.Errorf("n=24: sharded gradient value %v != flat %v", sgval, fgval)
	}
	for i := range grad {
		if grad[i] != fgrad[i] {
			t.Errorf("n=24: grad[%d] %v != flat %v", i, grad[i], fgrad[i])
		}
	}
}

// The streaming kernels' chunk scratch must survive garbage collection:
// the old shared sync.Pool was cleared per P on every GC, so a steady
// evaluation stream re-allocated scratch once per P per cycle and
// bytes/op grew with GOMAXPROCS (53 KB/op at 8 procs on ising/n20).
// The bounded channel freelists are GC-immune; a warm expectation now
// stays under a flat byte budget even with a forced GC before every
// call.
func TestStreamScratchSurvivesGC(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under -race")
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	runtime.GOMAXPROCS(8)

	problems := map[string]*Problem{}
	ising, err := NewIsing(problem.RandomIsing(20, rand.New(rand.NewSource(61))))
	if err != nil {
		t.Fatal(err)
	}
	problems["ising/n20"] = ising
	f := problem.RandomMaxKSAT(14, 6, 3, rand.New(rand.NewSource(62)))
	ksat, err := New(problem.MaxKSAT(f))
	if err != nil {
		t.Fatal(err)
	}
	problems["maxksat/n20"] = ksat

	x := []float64{0.4, 0.3}
	for name, pb := range problems {
		k := pb.kernel().(*isingStreamKernel)
		primeScratch(k.scratch, 1<<uint(k.cb))
		w := pb.NewWorkspace()
		for i := 0; i < 3; i++ {
			w.ExpectationVec(x) // warm pool workers and factor tables
		}
		const iters = 20
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		for i := 0; i < iters; i++ {
			runtime.GC() // would clear sync.Pool caches; freelists survive
			w.ExpectationVec(x)
		}
		runtime.ReadMemStats(&after)
		perOp := float64(after.TotalAlloc-before.TotalAlloc) / iters
		if perOp > 4096 {
			t.Errorf("%s: %.0f bytes/op allocated across GC cycles at GOMAXPROCS 8, want flat (<= 4096)",
				name, perOp)
		}
	}
}

// primeScratch stocks a kernel's scratch freelist with fully-sized
// buffers up to the worst-case concurrent-holder count, so the
// measurement loop never hits a first-use allocation. Priming through
// the old sync.Pool would be useless — the first GC emptied it.
func primeScratch(l scratchList, clen int) {
	bufs := make([]*streamScratch, 16)
	for i := range bufs {
		ws := l.get()
		ws.genBuf(clen)
		ws.idxBuf(clen)
		bufs[i] = ws
	}
	for _, ws := range bufs {
		l.put(ws)
	}
}

// Parallel throughput floor for the streaming Ising path, pinning the
// satellite fix (per-worker allocation growth ate the 2-worker win):
// with real cores available, 2 workers must beat 1 by >= 1.5x on the
// n=20 streaming kernels. Skipped where the hardware cannot show it.
func TestIsingStreamTwoWorkerSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup measurement skipped in short mode")
	}
	if raceEnabled {
		t.Skip("timings are not meaningful under -race")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs to measure parallel speedup, have %d", runtime.NumCPU())
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	ising, err := NewIsing(problem.RandomIsing(20, rand.New(rand.NewSource(61))))
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.4, 0.3}
	w := ising.NewWorkspace()
	measure := func(procs int) float64 {
		runtime.GOMAXPROCS(procs)
		w.ExpectationVec(x) // warm at this worker count
		best := 0.0
		for rep := 0; rep < 5; rep++ {
			res := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					w.ExpectationVec(x)
				}
			})
			opsPerSec := float64(res.N) / res.T.Seconds()
			if opsPerSec > best {
				best = opsPerSec
			}
		}
		return best
	}
	serial := measure(1)
	parallel := measure(2)
	if speedup := parallel / serial; speedup < 1.5 {
		t.Errorf("ising/n20 2-worker speedup %.2fx, want >= 1.5x", speedup)
	}
}
