//go:build race

package qaoa

// raceEnabled reports whether the race detector instruments this build;
// allocation-count pins are skipped under it (instrumentation allocates).
const raceEnabled = true
