package qaoa

import (
	"math"
	"math/bits"
	"sync"

	"qaoaml/internal/graph"
	"qaoaml/internal/quantum"
)

// Streaming cost path for large MaxCut instances.
//
// The materialized diagKernel needs a 2^n float64 cost table plus a 2^n
// int32 index table — 12 MiB at n = 20, 200 MiB at n = 24 — on top of
// the state vector itself, just to look up C(z) per amplitude. The
// streamKernel eliminates both tables: C(z) is recomputed on the fly
// from the edge list, chunk by chunk over the same fixed reduction
// geometry every other kernel uses (quantum.ReduceChunkLen amplitudes
// per chunk). Within a chunk the cut value is computed from scratch at
// the chunk base — iterating edges in their fixed order — and then
// updated incrementally as z increments: the flipped bits of z−1 → z
// are the trailing run (z−1)^z, so on average ~2 vertex flips per step,
// each costing one pass over that vertex's adjacency list. For a
// bounded-degree graph the amortized cost per amplitude is O(degree).
//
// Because the per-chunk values depend only on the chunk bounds (which
// the fixed geometry pins) and the scratch buffers are per-chunk, the
// streamed expectation, phase application, and gradient matrix elements
// are bit-identical at every GOMAXPROCS — and, for integer-weighted
// graphs, bit-identical to the materialized path: cut accumulation runs
// in int64 (exact), the per-distinct-value factor arithmetic matches
// diagKernel's, and the chunk reductions share their geometry.
// Float-weighted graphs stream per-amplitude phases through math.Sincos
// (no finite distinct-value set to memoize), which agrees with the
// materialized path to rounding error.

// StreamingThreshold is the qubit count from which NewProblem stops
// materializing the 2^n cut table and evaluates in streaming mode. At
// n = 13 the table pair costs 96 KiB + 32 KiB — already bigger than the
// reduction chunk — and doubles per qubit.
const StreamingThreshold = 13

// maxStreamFactorTable caps the distinct-cut phase-factor table of the
// integer-weighted streaming path. Graphs whose cut-value range exceeds
// it (extreme weights) fall back to per-amplitude Sincos streaming.
const maxStreamFactorTable = 1 << 16

// streamKernel evaluates the MaxCut phase separator and observable
// directly from the edge list. It is immutable after construction and
// safe for concurrent use (scratch comes from a pool).
type streamKernel struct {
	n int
	m float64 // total edge weight

	// Edge list in fixed order, for the from-scratch cut at chunk bases.
	edges []graph.Edge
	wF    []float64
	wInt  []int64 // integer path only

	// CSR adjacency for the incremental per-flip updates.
	adjStart []int32
	adjVert  []int32
	adjWF    []float64
	adjWInt  []int64 // integer path only

	// Integer path: cut values are exact int64 in [cmin, cmin+nfac).
	integer bool
	cmin    int64
	nfac    int
}

// newStreamKernel builds the streaming kernel for a graph. totalWeight
// is the problem's TotalWeight (kept explicit so the phase convention
// matches the materialized kernel exactly).
func newStreamKernel(g *graph.Graph, totalWeight float64) *streamKernel {
	edges := g.Edges()
	weights := g.Weights()
	k := &streamKernel{n: g.N, m: totalWeight, edges: edges, wF: weights}

	// CSR adjacency: both endpoints see every edge.
	k.adjStart = make([]int32, g.N+1)
	for _, e := range edges {
		k.adjStart[e.U+1]++
		k.adjStart[e.V+1]++
	}
	for v := 1; v <= g.N; v++ {
		k.adjStart[v] += k.adjStart[v-1]
	}
	k.adjVert = make([]int32, 2*len(edges))
	k.adjWF = make([]float64, 2*len(edges))
	fill := append([]int32(nil), k.adjStart[:g.N]...)
	for i, e := range edges {
		k.adjVert[fill[e.U]] = int32(e.V)
		k.adjWF[fill[e.U]] = weights[i]
		fill[e.U]++
		k.adjVert[fill[e.V]] = int32(e.U)
		k.adjWF[fill[e.V]] = weights[i]
		fill[e.V]++
	}

	if g.IntegerWeighted() {
		var cmin, cmax int64
		wInt := make([]int64, len(weights))
		for i, w := range weights {
			wInt[i] = int64(w)
			if w < 0 {
				cmin += int64(w)
			} else {
				cmax += int64(w)
			}
		}
		if cmax-cmin+1 <= maxStreamFactorTable {
			k.integer = true
			k.cmin = cmin
			k.nfac = int(cmax - cmin + 1)
			k.wInt = wInt
			k.adjWInt = make([]int64, len(k.adjWF))
			for i, w := range k.adjWF {
				k.adjWInt[i] = int64(w)
			}
		}
	}
	return k
}

// streamScratch holds one chunk's worth of generated cost data.
type streamScratch struct {
	idx []int32
	gen []float64
}

var streamScratchPool = sync.Pool{New: func() any { return new(streamScratch) }}

func (ws *streamScratch) idxBuf(n int) []int32 {
	if cap(ws.idx) < n {
		ws.idx = make([]int32, n)
	}
	return ws.idx[:n]
}

func (ws *streamScratch) genBuf(n int) []float64 {
	if cap(ws.gen) < n {
		ws.gen = make([]float64, n)
	}
	return ws.gen[:n]
}

// cutIntAt computes C(z) exactly, iterating edges in fixed order.
func (k *streamKernel) cutIntAt(z uint64) int64 {
	var c int64
	for i, e := range k.edges {
		if (z>>uint(e.U))&1 != (z>>uint(e.V))&1 {
			c += k.wInt[i]
		}
	}
	return c
}

// cutFloatAt computes C(z) in float64, iterating edges in fixed order.
func (k *streamKernel) cutFloatAt(z uint64) float64 {
	c := 0.0
	for i, e := range k.edges {
		if (z>>uint(e.U))&1 != (z>>uint(e.V))&1 {
			c += k.wF[i]
		}
	}
	return c
}

// walkInt streams the exact cut values C(z) for z ∈ [lo, hi): from
// scratch at the chunk base, then incrementally — when z increments,
// the flipped bits are the trailing run (z−1)^z; flipping vertex b
// toggles the cut status of each incident edge, adding its weight when
// the endpoints agreed before the flip and subtracting it when they
// differed. Flips are processed low bit first on a running assignment,
// so simultaneous flips (carry chains) compose correctly.
func (k *streamKernel) walkInt(lo, hi int, emit func(i int, c int64)) {
	c := k.cutIntAt(uint64(lo))
	emit(0, c)
	for z := lo + 1; z < hi; z++ {
		prev := uint64(z - 1)
		flipped := prev ^ uint64(z)
		zcur := prev
		for flipped != 0 {
			b := bits.TrailingZeros64(flipped)
			flipped &= flipped - 1
			bbit := (zcur >> uint(b)) & 1
			for e := k.adjStart[b]; e < k.adjStart[b+1]; e++ {
				if (zcur>>uint(k.adjVert[e]))&1 == bbit {
					c += k.adjWInt[e]
				} else {
					c -= k.adjWInt[e]
				}
			}
			zcur ^= 1 << uint(b)
		}
		emit(z-lo, c)
	}
}

// walkFloat is walkInt with float64 accumulation, for graphs whose
// weights are not (small-range) integers. Incremental float updates are
// still deterministic per chunk — the update sequence depends only on
// the chunk bounds — but accumulate rounding relative to from-scratch
// sums; the chunk base resets error every ReduceChunkLen amplitudes.
func (k *streamKernel) walkFloat(lo, hi int, emit func(i int, c float64)) {
	c := k.cutFloatAt(uint64(lo))
	emit(0, c)
	for z := lo + 1; z < hi; z++ {
		prev := uint64(z - 1)
		flipped := prev ^ uint64(z)
		zcur := prev
		for flipped != 0 {
			b := bits.TrailingZeros64(flipped)
			flipped &= flipped - 1
			bbit := (zcur >> uint(b)) & 1
			for e := k.adjStart[b]; e < k.adjStart[b+1]; e++ {
				if (zcur>>uint(k.adjVert[e]))&1 == bbit {
					c += k.adjWF[e]
				} else {
					c -= k.adjWF[e]
				}
			}
			zcur ^= 1 << uint(b)
		}
		emit(z-lo, c)
	}
}

// fillCut writes C(z) for the chunk [lo, hi) into cut (float64 values;
// exact on the integer path).
func (k *streamKernel) fillCut(lo, hi int, cut []float64) {
	if k.integer {
		k.walkInt(lo, hi, func(i int, c int64) { cut[i] = float64(c) })
		return
	}
	k.walkFloat(lo, hi, func(i int, c float64) { cut[i] = c })
}

// fillGen writes the phase generator h(z) = (m − 2C(z))/2 for the chunk
// [lo, hi) into gen — the same convention the materialized Problem
// kernel factorizes.
func (k *streamKernel) fillGen(lo, hi int, gen []float64) {
	if k.integer {
		k.walkInt(lo, hi, func(i int, c int64) { gen[i] = (k.m - 2*float64(c)) / 2 })
		return
	}
	k.walkFloat(lo, hi, func(i int, c float64) { gen[i] = (k.m - 2*c) / 2 })
}

// --- costKernel implementation ---

func (k *streamKernel) qubits() int { return k.n }

func (k *streamKernel) factorLen() int { return k.nfac }

// applyPhase applies exp(iγ(m−2C)/2) per amplitude (conj un-applies).
// Integer path: one factor per possible cut value, computed with the
// exact arithmetic diagKernel uses for the same distinct values, then
// indexed per chunk. Float path: per-amplitude Sincos on the streamed
// generator.
func (k *streamKernel) applyPhase(st *quantum.State, factors []complex128, gamma float64, conj bool) {
	dim := st.Dim()
	if k.integer {
		sign := 1.0
		if conj {
			sign = -1
		}
		for j := range factors {
			h := (k.m - 2*float64(k.cmin+int64(j))) / 2
			sin, cos := math.Sincos(gamma * h)
			factors[j] = complex(cos, sign*sin)
		}
		quantum.ForEachChunk(dim, func(lo, hi int) {
			ws := streamScratchPool.Get().(*streamScratch)
			idx := ws.idxBuf(hi - lo)
			k.walkInt(lo, hi, func(i int, c int64) { idx[i] = int32(c - k.cmin) })
			st.MulDiagonalIndexedRange(lo, idx, factors)
			streamScratchPool.Put(ws)
		})
		return
	}
	scale := gamma
	if conj {
		scale = -gamma
	}
	quantum.ForEachChunk(dim, func(lo, hi int) {
		ws := streamScratchPool.Get().(*streamScratch)
		gen := ws.genBuf(hi - lo)
		k.fillGen(lo, hi, gen)
		st.MulPhaseGenRange(lo, gen, scale)
		streamScratchPool.Put(ws)
	})
}

func (k *streamKernel) expectation(st *quantum.State) float64 {
	e, _ := quantum.ReduceChunks(st.Dim(), func(lo, hi int) (float64, float64) {
		ws := streamScratchPool.Get().(*streamScratch)
		cut := ws.genBuf(hi - lo)
		k.fillCut(lo, hi, cut)
		e := st.ExpectationDiagonalRange(lo, cut)
		streamScratchPool.Put(ws)
		return e, 0
	})
	return e
}

func (k *streamKernel) seedAdjoint(adj, st *quantum.State) {
	adj.CopyFrom(st)
	quantum.ForEachChunk(adj.Dim(), func(lo, hi int) {
		ws := streamScratchPool.Get().(*streamScratch)
		cut := ws.genBuf(hi - lo)
		k.fillCut(lo, hi, cut)
		adj.MulDiagonalRealRange(lo, cut)
		streamScratchPool.Put(ws)
	})
}

func (k *streamKernel) genInner(adj, st *quantum.State) complex128 {
	re, im := quantum.ReduceChunks(st.Dim(), func(lo, hi int) (float64, float64) {
		ws := streamScratchPool.Get().(*streamScratch)
		gen := ws.genBuf(hi - lo)
		k.fillGen(lo, hi, gen)
		re, im := adj.InnerProductDiagonalRange(st, lo, gen)
		streamScratchPool.Put(ws)
		return re, im
	})
	return complex(re, im)
}
