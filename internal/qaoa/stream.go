package qaoa

import (
	"math"
	"math/bits"

	"qaoaml/internal/graph"
	"qaoaml/internal/quantum"
)

// Streaming cost path for large MaxCut instances.
//
// The materialized diagKernel needs a 2^n float64 cost table plus a 2^n
// int32 index table — 12 MiB at n = 20, 200 MiB at n = 24 — on top of
// the state vector itself, just to look up C(z) per amplitude. The
// streamKernel eliminates both tables: C(z) is recomputed on the fly,
// chunk by chunk over the same fixed geometry every other kernel uses
// (quantum.ChunkLen amplitudes per chunk).
//
// Within a chunk, the low cb = log2(chunk length) bits of z run through
// all values while the high bits are frozen, so the cut splits into
// three independent parts:
//
//	C(z) = Cll(zl)  +  cross(zl, zh)  +  Chh(zh)
//
//   - Cll, the cut over edges with BOTH endpoints below cb, depends
//     only on the chunk-local bits: it is precomputed ONCE at kernel
//     construction into a 2^cb table (≤ 256 KiB — chunk-sized, not
//     state-sized) shared by every chunk.
//   - Chh, the cut over edges with both endpoints at/above cb, is a
//     per-chunk constant, computed once per chunk in O(|E|).
//   - The cross edges (u < cb ≤ v) contribute base + Σ_{u: zl_u=1} d_u,
//     where base and the per-low-vertex deltas d_u are fixed by the
//     chunk's high bits. The linear term updates in O(1) per increment
//     of zl: when zl−1 → zl flips the trailing run up to bit t =
//     TrailingZeros(zl), the sum changes by d_t − Σ_{u<t} d_u — a
//     prefix-sum lookup.
//
// The old path walked each flipped vertex's adjacency list per step
// (O(degree) branchy work per amplitude, ~40% of evaluation time at
// n=20); this one is a table load and two adds per amplitude.
//
// Because the per-chunk values depend only on the chunk bounds (which
// the fixed geometry pins) and the scratch buffers are per-chunk, the
// streamed expectation, phase application, and gradient matrix elements
// are bit-identical at every GOMAXPROCS — and, for integer-weighted
// graphs, bit-identical to the materialized path: cut accumulation runs
// in int64 (exact), the per-distinct-value factor arithmetic matches
// diagKernel's, and the chunk reductions share their geometry.
// Float-weighted graphs stream per-amplitude phases through math.Sincos
// (no finite distinct-value set to memoize), which agrees with the
// materialized path to rounding error.

// StreamingThreshold is the qubit count from which NewProblem stops
// materializing the 2^n cut table and evaluates in streaming mode. At
// n = 13 the table pair costs 96 KiB + 32 KiB — already bigger than the
// reduction chunk — and doubles per qubit.
const StreamingThreshold = 13

// maxStreamFactorTable caps the distinct-cut phase-factor table of the
// integer-weighted streaming path. Graphs whose cut-value range exceeds
// it (extreme weights) fall back to per-amplitude Sincos streaming.
const maxStreamFactorTable = 1 << 16

// maxStreamChunkBits bounds the chunk width the kernel's stack arrays
// are sized for; quantum.LargeReduceChunkLen = 2^15 keeps us below it.
const maxStreamChunkBits = 16

// streamKernel evaluates the MaxCut phase separator and observable
// directly from the edge list. It is immutable after construction and
// safe for concurrent use (scratch comes from a per-kernel freelist).
type streamKernel struct {
	scratch scratchList

	n  int
	m  float64 // total edge weight
	cb int     // chunk width in bits: log2(min(ChunkLen(2^n), 2^n))

	// Low-low cut table Cll, indexed by the chunk-local bits of z.
	// Exactly one of the two is built, per the integer flag.
	cllInt []int64
	cllF   []float64

	// Cross edges (low endpoint u < cb ≤ high endpoint v), CSR by u.
	crossStart []int32
	crossVert  []int32
	crossWF    []float64
	crossWInt  []int64

	// High-high edges (both endpoints ≥ cb).
	hhU, hhV []int32
	hhWF     []float64
	hhWInt   []int64

	// Integer path: cut values are exact int64 in [cmin, cmin+nfac).
	integer bool
	cmin    int64
	nfac    int
}

// newStreamKernel builds the streaming kernel for a graph. totalWeight
// is the problem's TotalWeight (kept explicit so the phase convention
// matches the materialized kernel exactly).
func newStreamKernel(g *graph.Graph, totalWeight float64) *streamKernel {
	k := &streamKernel{scratch: newScratchList(), n: g.N, m: totalWeight}
	dim := 1 << uint(g.N)
	clen := quantum.ChunkLen(dim)
	if clen > dim {
		clen = dim
	}
	k.cb = bits.TrailingZeros(uint(clen))

	edges := g.Edges()
	weights := g.Weights()
	if g.IntegerWeighted() {
		var cmin, cmax int64
		for _, w := range weights {
			if w < 0 {
				cmin += int64(w)
			} else {
				cmax += int64(w)
			}
		}
		if cmax-cmin+1 <= maxStreamFactorTable {
			k.integer = true
			k.cmin = cmin
			k.nfac = int(cmax - cmin + 1)
		}
	}

	// Classify edges by where their endpoints fall relative to the
	// chunk width. Normalize so e.U ≤ e.V per edge.
	var lowU, lowV []int32
	var lowW []float64
	k.crossStart = make([]int32, k.cb+1)
	for _, e := range edges {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		switch {
		case v < k.cb:
			lowU, lowV = append(lowU, int32(u)), append(lowV, int32(v))
		case u >= k.cb:
			k.hhU, k.hhV = append(k.hhU, int32(u)), append(k.hhV, int32(v))
		default:
			k.crossStart[u+1]++
		}
	}
	for u := 1; u <= k.cb; u++ {
		k.crossStart[u] += k.crossStart[u-1]
	}
	nCross := int(k.crossStart[k.cb])
	k.crossVert = make([]int32, nCross)
	k.crossWF = make([]float64, nCross)
	k.hhWF = make([]float64, 0, len(k.hhU))
	fill := append([]int32(nil), k.crossStart[:k.cb]...)
	li, hh := 0, 0
	for i, e := range edges {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		switch {
		case v < k.cb:
			lowW = append(lowW, weights[i])
			li++
		case u >= k.cb:
			k.hhWF = append(k.hhWF, weights[i])
			hh++
		default:
			k.crossVert[fill[u]] = int32(v)
			k.crossWF[fill[u]] = weights[i]
			fill[u]++
		}
	}

	// The one-time low-low table: O(2^cb · |lowE|) construction, 2^cb
	// entries shared by every chunk thereafter.
	nLow := 1 << uint(k.cb)
	if k.integer {
		k.crossWInt = make([]int64, len(k.crossWF))
		for i, w := range k.crossWF {
			k.crossWInt[i] = int64(w)
		}
		k.hhWInt = make([]int64, len(k.hhWF))
		for i, w := range k.hhWF {
			k.hhWInt[i] = int64(w)
		}
		k.cllInt = make([]int64, nLow)
		for z := range k.cllInt {
			var c int64
			for i := range lowU {
				if (z>>uint(lowU[i]))&1 != (z>>uint(lowV[i]))&1 {
					c += int64(lowW[i])
				}
			}
			k.cllInt[z] = c
		}
	} else {
		k.cllF = make([]float64, nLow)
		for z := range k.cllF {
			c := 0.0
			for i := range lowU {
				if (z>>uint(lowU[i]))&1 != (z>>uint(lowV[i]))&1 {
					c += lowW[i]
				}
			}
			k.cllF[z] = c
		}
	}
	return k
}

// streamScratch holds one chunk's worth of generated cost data.
type streamScratch struct {
	idx []int32
	gen []float64
}

// scratchList recycles chunk scratch through a bounded channel, one
// list per kernel. The previous global sync.Pool had per-P caches that
// every GC cleared, so long runs re-allocated scratch once per P per GC
// cycle — bytes/op grew with GOMAXPROCS (the n=20 parallel regression
// BENCH_qaoa.json recorded). A channel freelist survives GC and is
// shared across Ps: in steady state at most maxPoolWorkers buffers
// circulate and warm chunk bodies allocate nothing.
type scratchList struct {
	ch chan *streamScratch
}

func newScratchList() scratchList {
	return scratchList{ch: make(chan *streamScratch, 64)}
}

func (l scratchList) get() *streamScratch {
	select {
	case ws := <-l.ch:
		return ws
	default:
		return new(streamScratch)
	}
}

func (l scratchList) put(ws *streamScratch) {
	select {
	case l.ch <- ws:
	default:
	}
}

func (ws *streamScratch) idxBuf(n int) []int32 {
	if cap(ws.idx) < n {
		ws.idx = make([]int32, n)
	}
	return ws.idx[:n]
}

func (ws *streamScratch) genBuf(n int) []float64 {
	if cap(ws.gen) < n {
		ws.gen = make([]float64, n)
	}
	return ws.gen[:n]
}

// chunkSetupInt computes the chunk-constant part of the cut for the
// chunk whose base state is lo — high-high edges plus the cross edges
// whose high endpoint sits in partition 1 — and the per-low-vertex
// deltas d (the cross contribution toggled by setting low bit u) with
// their prefix sums p[u] = Σ_{x<u} d[x].
func (k *streamKernel) chunkSetupInt(lo uint64, d, p *[maxStreamChunkBits]int64) int64 {
	var base int64
	for i, u := range k.hhU {
		if (lo>>uint(u))&1 != (lo>>uint(k.hhV[i]))&1 {
			base += k.hhWInt[i]
		}
	}
	var acc int64
	for u := 0; u < k.cb; u++ {
		p[u] = acc
		var du int64
		for e := k.crossStart[u]; e < k.crossStart[u+1]; e++ {
			w := k.crossWInt[e]
			if (lo>>uint(k.crossVert[e]))&1 != 0 {
				base += w // zh_v = 1: edge cut while zl_u = 0
				du -= w
			} else {
				du += w
			}
		}
		d[u] = du
		acc += du
	}
	return base
}

// chunkSetupFloat is chunkSetupInt with float64 weights.
func (k *streamKernel) chunkSetupFloat(lo uint64, d, p *[maxStreamChunkBits]float64) float64 {
	base := 0.0
	for i, u := range k.hhU {
		if (lo>>uint(u))&1 != (lo>>uint(k.hhV[i]))&1 {
			base += k.hhWF[i]
		}
	}
	acc := 0.0
	for u := 0; u < k.cb; u++ {
		p[u] = acc
		du := 0.0
		for e := k.crossStart[u]; e < k.crossStart[u+1]; e++ {
			w := k.crossWF[e]
			if (lo>>uint(k.crossVert[e]))&1 != 0 {
				base += w
				du -= w
			} else {
				du += w
			}
		}
		d[u] = du
		acc += du
	}
	return base
}

// fillCut writes C(z) for the chunk [lo, hi) into cut (float64 values;
// exact on the integer path). lo is chunk-aligned and hi−lo = 2^cb, so
// the chunk-local bits of z are exactly the buffer index.
func (k *streamKernel) fillCut(lo, hi int, cut []float64) {
	if k.integer {
		var d, p [maxStreamChunkBits]int64
		base := k.chunkSetupInt(uint64(lo), &d, &p)
		cll := k.cllInt
		var lin int64
		cut[0] = float64(base + cll[0])
		for i := 1; i < hi-lo; i++ {
			t := bits.TrailingZeros64(uint64(i))
			lin += d[t] - p[t]
			cut[i] = float64(base + cll[i] + lin)
		}
		return
	}
	var d, p [maxStreamChunkBits]float64
	base := k.chunkSetupFloat(uint64(lo), &d, &p)
	cll := k.cllF
	lin := 0.0
	cut[0] = base + cll[0]
	for i := 1; i < hi-lo; i++ {
		t := bits.TrailingZeros64(uint64(i))
		lin += d[t] - p[t]
		cut[i] = base + cll[i] + lin
	}
}

// fillIdx writes the factor-table index C(z)−cmin for the chunk
// [lo, hi) into idx. Integer path only.
func (k *streamKernel) fillIdx(lo, hi int, idx []int32) {
	var d, p [maxStreamChunkBits]int64
	base := k.chunkSetupInt(uint64(lo), &d, &p) - k.cmin
	cll := k.cllInt
	var lin int64
	idx[0] = int32(base + cll[0])
	for i := 1; i < hi-lo; i++ {
		t := bits.TrailingZeros64(uint64(i))
		lin += d[t] - p[t]
		idx[i] = int32(base + cll[i] + lin)
	}
}

// fillGen writes the phase generator h(z) = (m − 2C(z))/2 for the chunk
// [lo, hi) into gen — the same convention the materialized Problem
// kernel factorizes.
func (k *streamKernel) fillGen(lo, hi int, gen []float64) {
	if k.integer {
		var d, p [maxStreamChunkBits]int64
		base := k.chunkSetupInt(uint64(lo), &d, &p)
		cll := k.cllInt
		var lin int64
		gen[0] = (k.m - 2*float64(base+cll[0])) / 2
		for i := 1; i < hi-lo; i++ {
			t := bits.TrailingZeros64(uint64(i))
			lin += d[t] - p[t]
			gen[i] = (k.m - 2*float64(base+cll[i]+lin)) / 2
		}
		return
	}
	var d, p [maxStreamChunkBits]float64
	base := k.chunkSetupFloat(uint64(lo), &d, &p)
	cll := k.cllF
	lin := 0.0
	gen[0] = (k.m - 2*(base+cll[0])) / 2
	for i := 1; i < hi-lo; i++ {
		t := bits.TrailingZeros64(uint64(i))
		lin += d[t] - p[t]
		gen[i] = (k.m - 2*(base+cll[i]+lin)) / 2
	}
}

// --- costKernel implementation ---

func (k *streamKernel) qubits() int { return k.n }

func (k *streamKernel) factorLen() int { return k.nfac }

// prepareFactors fills the per-distinct-cut phase factor table
// exp(iγ(m−2c)/2) with the exact arithmetic diagKernel uses for the
// same distinct values. The float path has no finite distinct set and
// streams phases per amplitude instead.
func (k *streamKernel) prepareFactors(factors []complex128, gamma float64, conj bool) {
	if !k.integer {
		return
	}
	sign := 1.0
	if conj {
		sign = -1
	}
	for j := range factors {
		h := (k.m - 2*float64(k.cmin+int64(j))) / 2
		sin, cos := math.Sincos(gamma * h)
		factors[j] = complex(cos, sign*sin)
	}
}

func (k *streamKernel) applyPhaseRange(st *quantum.State, factors []complex128, gamma float64, conj bool, off, lo, hi int) {
	ws := k.scratch.get()
	if k.integer {
		idx := ws.idxBuf(hi - lo)
		k.fillIdx(off+lo, off+hi, idx)
		st.MulDiagonalIndexedRange(lo, idx, factors)
	} else {
		scale := gamma
		if conj {
			scale = -gamma
		}
		gen := ws.genBuf(hi - lo)
		k.fillGen(off+lo, off+hi, gen)
		st.MulPhaseGenRange(lo, gen, scale)
	}
	k.scratch.put(ws)
}

func (k *streamKernel) applyPhase2Range(a, b *quantum.State, factors []complex128, gamma float64, conj bool, off, lo, hi int) {
	ws := k.scratch.get()
	if k.integer {
		idx := ws.idxBuf(hi - lo)
		k.fillIdx(off+lo, off+hi, idx)
		a.MulDiagonalIndexedRange(lo, idx, factors)
		b.MulDiagonalIndexedRange(lo, idx, factors)
	} else {
		scale := gamma
		if conj {
			scale = -gamma
		}
		gen := ws.genBuf(hi - lo)
		k.fillGen(off+lo, off+hi, gen)
		a.MulPhaseGenRange(lo, gen, scale)
		b.MulPhaseGenRange(lo, gen, scale)
	}
	k.scratch.put(ws)
}

func (k *streamKernel) expectChunk(st *quantum.State, off, lo, hi int) float64 {
	ws := k.scratch.get()
	cut := ws.genBuf(hi - lo)
	k.fillCut(off+lo, off+hi, cut)
	e := st.ExpectationDiagonalRange(lo, cut)
	k.scratch.put(ws)
	return e
}

func (k *streamKernel) seedChunkValue(adj, st *quantum.State, off, lo, hi int) float64 {
	ws := k.scratch.get()
	cut := ws.genBuf(hi - lo)
	k.fillCut(off+lo, off+hi, cut)
	e := adj.SeedDiagonalRange(st, lo, cut)
	k.scratch.put(ws)
	return e
}

func (k *streamKernel) genInnerChunk(adj, st *quantum.State, off, lo, hi int) (re, im float64) {
	ws := k.scratch.get()
	gen := ws.genBuf(hi - lo)
	k.fillGen(off+lo, off+hi, gen)
	re, im = adj.InnerProductDiagonalRange(st, lo, gen)
	k.scratch.put(ws)
	return re, im
}
