package qaoa

import (
	"sync"

	"qaoaml/internal/quantum"
)

// Arena pools the state-vector-sized buffers evaluation workspaces
// hold: flat 2^n amplitude vectors and sharded shard sets (above
// ShardThreshold). Buffers are keyed by register width — and, for
// sharded states, the shard layout — never by problem, because a
// state vector carries no problem-specific content: every evaluation
// begins with a fill pass (or an explicit FillUniform), so a buffer
// released after solving one instance is immediately reusable for any
// other instance of the same width. This is what makes a served solve
// loop allocation-free in the steady state: the daemon's per-worker
// arena hands the same 2^n vectors to solve after solve instead of
// growing the heap by 16·2^n bytes per request.
//
// Results are unaffected: a workspace drawn from an arena computes
// bit-identical expectations and gradients to a freshly allocated one
// (pinned by TestArenaBitIdentity), because buffer contents before the
// fill pass never reach an evaluation.
//
// An Arena is safe for concurrent use, but the intended shape is one
// arena per serving worker (no lock contention, NUMA-friendly buffer
// locality). Close releases pooled sharded states' worker goroutines;
// flat buffers are just dropped to the GC.
type Arena struct {
	mu      sync.Mutex
	flat    map[int][]*quantum.State
	sharded map[shardKey][]*quantum.ShardedState
	cap     int
	closed  bool

	gets int64
	hits int64
}

// shardKey identifies a pooled sharded layout.
type shardKey struct {
	n      int
	shards int
}

// DefaultArenaCap bounds how many free buffers an arena retains per
// key when NewArena is given no explicit cap. A solve holds at most
// two state vectors (state + adjoint) per batch worker, so a small
// multiple covers the steady state without hoarding memory across
// register widths a server has stopped seeing.
const DefaultArenaCap = 8

// NewArena returns an empty buffer arena retaining up to capPerKey
// free buffers per (width, layout) key (≤ 0 selects DefaultArenaCap).
func NewArena(capPerKey int) *Arena {
	if capPerKey <= 0 {
		capPerKey = DefaultArenaCap
	}
	return &Arena{
		flat:    make(map[int][]*quantum.State),
		sharded: make(map[shardKey][]*quantum.ShardedState),
		cap:     capPerKey,
	}
}

// ArenaStats counts buffer traffic: Gets is how many state buffers
// were requested from the arena, Hits how many of those were served
// from the free lists instead of allocated. Hits/Gets is the
// workspace-reuse rate the serving layer reports.
type ArenaStats struct {
	Gets int64
	Hits int64
}

// Stats returns cumulative buffer-traffic counters.
func (a *Arena) Stats() ArenaStats {
	if a == nil {
		return ArenaStats{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return ArenaStats{Gets: a.gets, Hits: a.hits}
}

// Close drops all pooled buffers, closing sharded states so their
// shard workers exit. Later puts close/drop the returned buffers too;
// later gets fall back to fresh allocation. Safe to call repeatedly.
func (a *Arena) Close() {
	if a == nil {
		return
	}
	a.mu.Lock()
	sharded := a.sharded
	a.flat = make(map[int][]*quantum.State)
	a.sharded = make(map[shardKey][]*quantum.ShardedState)
	a.closed = true
	a.mu.Unlock()
	for _, list := range sharded {
		for _, ss := range list {
			ss.Close()
		}
	}
}

// getState returns an n-qubit flat state: pooled if available, freshly
// allocated otherwise. A nil arena always allocates (the non-pooled
// workspace path). Pooled buffers come back with arbitrary amplitude
// content; every consumer fills before reading.
func (a *Arena) getState(n int) *quantum.State {
	if a == nil {
		return quantum.NewUniformState(n)
	}
	a.mu.Lock()
	a.gets++
	if list := a.flat[n]; len(list) > 0 {
		st := list[len(list)-1]
		a.flat[n] = list[:len(list)-1]
		a.hits++
		a.mu.Unlock()
		return st
	}
	a.mu.Unlock()
	return quantum.NewUniformState(n)
}

// putState returns a flat state buffer to the pool (dropped when the
// arena is closed or the key's free list is full).
func (a *Arena) putState(st *quantum.State) {
	if a == nil || st == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed || len(a.flat[st.NumQubits()]) >= a.cap {
		return
	}
	a.flat[st.NumQubits()] = append(a.flat[st.NumQubits()], st)
}

// getSharded returns an n-qubit sharded state with 2^shardBits shards:
// pooled (still holding its live shard workers) if available, freshly
// allocated otherwise. Content is arbitrary, as with getState.
func (a *Arena) getSharded(n, shardBits int) *quantum.ShardedState {
	if a == nil {
		return quantum.NewShardedState(n, shardBits)
	}
	key := shardKey{n: n, shards: 1 << uint(shardBits)}
	a.mu.Lock()
	a.gets++
	if list := a.sharded[key]; len(list) > 0 {
		ss := list[len(list)-1]
		a.sharded[key] = list[:len(list)-1]
		a.hits++
		a.mu.Unlock()
		return ss
	}
	a.mu.Unlock()
	return quantum.NewShardedState(n, shardBits)
}

// putSharded returns a sharded state to the pool. When the arena is
// closed or the key's free list is full the state is closed instead,
// so shard workers never leak.
func (a *Arena) putSharded(ss *quantum.ShardedState) {
	if ss == nil {
		return
	}
	if a == nil {
		ss.Close()
		return
	}
	key := shardKey{n: ss.NumQubits(), shards: ss.NumShards()}
	a.mu.Lock()
	if a.closed || len(a.sharded[key]) >= a.cap {
		a.mu.Unlock()
		ss.Close()
		return
	}
	a.sharded[key] = append(a.sharded[key], ss)
	a.mu.Unlock()
}

// adjointState returns a buffer shaped like st for the adjoint sweep:
// pooled when an arena is attached, a clone otherwise. The seed pass
// overwrites every amplitude before reading, so content is irrelevant.
func (a *Arena) adjointState(st *quantum.State) *quantum.State {
	if a == nil {
		return st.Clone()
	}
	return a.getState(st.NumQubits())
}
