package qaoa

import (
	"math/rand"
	"sync"
	"testing"

	"qaoaml/internal/graph"
	"qaoaml/internal/quantum"
)

func arenaProblem(t *testing.T, n int, seed int64) *Problem {
	t.Helper()
	g := graph.ErdosRenyiConnected(n, 0.4, rand.New(rand.NewSource(seed)))
	pb, err := NewProblem(g)
	if err != nil {
		t.Fatal(err)
	}
	return pb
}

// TestArenaSteadyStateAllocatesNoAmplitudes is the zero-alloc pin for
// workspace pooling: after one warm-up evaluator has populated the
// arena, further evaluator lifecycles on same-width problems must
// allocate zero bytes of amplitude storage — state and adjoint buffers
// both come from the pool. n >= StreamingThreshold so the problem
// itself holds no 2^n cost table either.
func TestArenaSteadyStateAllocatesNoAmplitudes(t *testing.T) {
	const n = StreamingThreshold + 1
	a := NewArena(0)
	defer a.Close()

	warm := arenaProblem(t, n, 1)
	x := []float64{0.4, 0.7}
	grad := make([]float64, 2)
	ev := NewEvaluatorArena(warm, 1, a)
	ev.NegValueGrad(x, grad) // forces the adjoint buffer too
	ev.Release()

	before := quantum.AmpBytesAllocated()
	for seed := int64(2); seed < 8; seed++ {
		pb := arenaProblem(t, n, seed)
		ev := NewEvaluatorArena(pb, 1, a)
		ev.NegExpectation(x)
		ev.NegValueGrad(x, grad)
		ev.BestSampled(Params{Gamma: x[:1], Beta: x[1:]})
		ev.Release()
	}
	if delta := quantum.AmpBytesAllocated() - before; delta != 0 {
		t.Fatalf("steady-state evaluators allocated %d bytes of amplitude storage, want 0", delta)
	}
	st := a.Stats()
	if st.Gets == 0 || st.Hits == 0 {
		t.Fatalf("arena never hit: stats %+v", st)
	}
}

// TestArenaBitIdentity: a workspace built on recycled (dirty) buffers
// must produce bit-identical expectations, gradients and readouts to a
// freshly allocated one.
func TestArenaBitIdentity(t *testing.T) {
	a := NewArena(0)
	defer a.Close()

	// Dirty the pool with a different instance of the same width.
	dirty := arenaProblem(t, 10, 99)
	x := []float64{0.9, -0.3, 0.2, 0.5}
	grad := make([]float64, 4)
	ev := NewEvaluatorArena(dirty, 2, a)
	ev.NegValueGrad(x, grad)
	ev.Release()

	pb := arenaProblem(t, 10, 7)
	pooled := NewEvaluatorArena(pb, 2, a)
	fresh := NewEvaluator(pb, 2)
	defer pooled.Release()
	defer fresh.Release() // no arena: falls back to Close

	if got, want := pooled.NegExpectation(x), fresh.NegExpectation(x); got != want {
		t.Fatalf("pooled expectation %v != fresh %v", got, want)
	}
	gradP, gradF := make([]float64, 4), make([]float64, 4)
	if got, want := pooled.NegValueGrad(x, gradP), fresh.NegValueGrad(x, gradF); got != want {
		t.Fatalf("pooled value %v != fresh %v", got, want)
	}
	for i := range gradP {
		if gradP[i] != gradF[i] {
			t.Fatalf("grad[%d]: pooled %v != fresh %v", i, gradP[i], gradF[i])
		}
	}
	pr := Params{Gamma: x[:2], Beta: x[2:]}
	sp, ap := pooled.BestSampled(pr)
	sf, af := fresh.BestSampled(pr)
	if sp != sf || ap != af {
		t.Fatalf("pooled readout (%v, %b) != fresh (%v, %b)", sp, ap, sf, af)
	}
}

// TestArenaShardedReuse: sharded workspaces round-trip through the
// arena (same shard geometry → same buffers) and stay bit-identical to
// the flat path on dirty reuse.
func TestArenaShardedReuse(t *testing.T) {
	a := NewArena(0)
	defer a.Close()
	pb := arenaProblem(t, StreamingThreshold+1, 3)
	x := []float64{0.6, 0.1}

	w1 := newShardedWorkspace(pb.kernel(), 1, a)
	first := w1.ExpectationVec(x)
	w1.Release()

	dirty := arenaProblem(t, StreamingThreshold+1, 55)
	wd := newShardedWorkspace(dirty.kernel(), 1, a)
	wd.ExpectationVec(x)
	wd.Release()

	base := quantum.AmpBytesAllocated()
	w2 := newShardedWorkspace(pb.kernel(), 1, a)
	defer w2.Release()
	if delta := quantum.AmpBytesAllocated() - base; delta != 0 {
		t.Fatalf("pooled sharded workspace allocated %d amplitude bytes, want 0", delta)
	}
	if got := w2.ExpectationVec(x); got != first {
		t.Fatalf("recycled sharded expectation %v != first run %v", got, first)
	}
	flat := pb.NewWorkspace()
	defer flat.Close()
	if got, want := w2.ExpectationVec(x), flat.ExpectationVec(x); got != want {
		t.Fatalf("sharded %v != flat %v", got, want)
	}
}

// TestArenaCapAndClose: the per-key pool never exceeds its cap (extra
// buffers are dropped, sharded ones closed), and a closed arena
// declines further buffers while still serving fresh allocations.
func TestArenaCapAndClose(t *testing.T) {
	a := NewArena(2)
	for i := 0; i < 5; i++ {
		a.putState(quantum.NewUniformState(6))
	}
	a.mu.Lock()
	if got := len(a.flat[6]); got != 2 {
		a.mu.Unlock()
		t.Fatalf("pool holds %d states over cap 2", got)
	}
	a.mu.Unlock()

	a.Close()
	if st := a.getState(6); st == nil || st.NumQubits() != 6 {
		t.Fatal("closed arena must still hand out fresh states")
	}
	a.putState(quantum.NewUniformState(6))
	a.mu.Lock()
	if got := len(a.flat[6]); got != 0 {
		a.mu.Unlock()
		t.Fatalf("closed arena retained %d states, want 0", got)
	}
	a.mu.Unlock()

	// nil arena: everything degrades to plain allocation.
	var nilA *Arena
	if st := nilA.getState(5); st.NumQubits() != 5 {
		t.Fatal("nil arena getState")
	}
	nilA.putState(quantum.NewUniformState(5)) // must not panic
}

// TestArenaConcurrent hammers get/put from many goroutines; the race
// detector (CI runs this package with -race) is the real assertion.
func TestArenaConcurrent(t *testing.T) {
	a := NewArena(4)
	defer a.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := 5 + g%3
			for i := 0; i < 50; i++ {
				st := a.getState(n)
				a.putState(st)
			}
		}(g)
	}
	wg.Wait()
	if st := a.Stats(); st.Gets != 400 {
		t.Fatalf("gets = %d, want 400", st.Gets)
	}
}
