package qaoa

import (
	"math/rand"
	"runtime"
	"testing"

	"qaoaml/internal/graph"
)

// Cross-GOMAXPROCS bit-identity at the QAOA level: expectation values
// and full adjoint gradients must be EXACTLY equal at 1, 2, and 8
// workers, across the materialized small-n path (n=8), the chunked
// serial path (n=14), the parallel threshold (n=17), and — outside
// short mode — a full-size n=20 instance. This is the end-to-end
// guarantee the fixed reduction geometry (quantum/reduce.go) exists
// for: dataset generation and optimizer traces are reproducible no
// matter what machine they ran on.
func TestEvaluationBitIdenticalAcrossWorkers(t *testing.T) {
	type cfg struct {
		n, deg int
		depths []int
		short  bool // runs in short mode too
	}
	cfgs := []cfg{
		{n: 8, deg: 3, depths: []int{1, 3, 5}, short: true},
		{n: 14, deg: 3, depths: []int{1, 3, 5}, short: true},
		{n: 17, deg: 4, depths: []int{1, 3}, short: false},
		{n: 20, deg: 3, depths: []int{1, 5}, short: false},
	}
	workers := []int{1, 2, 8}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	for _, c := range cfgs {
		if testing.Short() && !c.short {
			continue
		}
		rng := rand.New(rand.NewSource(int64(100 + c.n)))
		g := graph.RandomRegular(c.n, c.deg, rng)
		pb := mustProblem(t, g)
		for _, p := range c.depths {
			pr := testParams(p)
			x := pr.Vector()

			type result struct {
				val, gval float64
				grad      []float64
			}
			var baseline result
			for wi, w := range workers {
				runtime.GOMAXPROCS(w)
				ws := pb.NewWorkspace()
				r := result{grad: make([]float64, len(x))}
				r.val = ws.ExpectationVec(x)
				r.gval = ws.ValueGrad(x, r.grad)
				if wi == 0 {
					baseline = r
					// ValueGrad's forward pass is the same code path as
					// ExpectationVec; the values must be bit-identical.
					if r.gval != r.val {
						t.Errorf("n=%d p=%d: ValueGrad value %v != Expectation %v", c.n, p, r.gval, r.val)
					}
					continue
				}
				if r.val != baseline.val {
					t.Errorf("n=%d p=%d: expectation at GOMAXPROCS=%d %v != 1-worker %v",
						c.n, p, w, r.val, baseline.val)
				}
				if r.gval != baseline.gval {
					t.Errorf("n=%d p=%d: gradient value at GOMAXPROCS=%d %v != 1-worker %v",
						c.n, p, w, r.gval, baseline.gval)
				}
				for i := range r.grad {
					if r.grad[i] != baseline.grad[i] {
						t.Errorf("n=%d p=%d: grad[%d] at GOMAXPROCS=%d %v != 1-worker %v",
							c.n, p, i, w, r.grad[i], baseline.grad[i])
					}
				}
			}
		}
	}
}

// The batch evaluator must stay bit-identical to sequential evaluation
// when the register is large enough to trigger the in-kernel
// parallelism (workers collapse to 1; the kernels scale instead).
func TestBatchEvaluatorLargeNCollapsesWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	g := graph.RandomRegular(16, 4, rng)
	pb := mustProblem(t, g)
	b := NewBatchEvaluator(pb, 1, 4)
	if len(b.workers) != 1 {
		t.Fatalf("n=16 batch evaluator kept %d workers; want 1 (in-kernel parallelism)", len(b.workers))
	}
	points := [][]float64{
		testParams(1).Vector(),
		{0.5, 0.25},
		{1.1, 0.7},
	}
	got := b.EvalBatch(points)
	ws := pb.NewWorkspace()
	for i, x := range points {
		if want := -ws.ExpectationVec(x); got[i] != want {
			t.Errorf("batch[%d] = %v, want sequential %v", i, got[i], want)
		}
	}
}
