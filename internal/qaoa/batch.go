package qaoa

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"qaoaml/internal/quantum"
)

// BatchEvaluator evaluates independent parameter vectors of one
// (problem, depth) objective on a worker pool, one EvalWorkspace per
// worker. It is the batch analogue of Evaluator.NegExpectation: each
// point costs one QC call and results are returned in input order.
//
// Because every point is evaluated by the same pure kernel on its own
// workspace, EvalBatch is bit-identical to len(points) sequential
// NegExpectation calls regardless of how the scheduler interleaves the
// workers. EvalBatch itself must not be called concurrently (the NFev
// counter and worker workspaces are reused across calls).
type BatchEvaluator struct {
	Problem *Problem
	Depth   int

	workers []*EvalWorkspace
	nfev    int
}

// NewBatchEvaluator builds a batch evaluator with the given worker
// count (≤ 0 selects GOMAXPROCS). Depth p must be ≥ 1.
func NewBatchEvaluator(pb *Problem, p, workers int) *BatchEvaluator {
	return NewBatchEvaluatorArena(pb, p, workers, nil)
}

// NewBatchEvaluatorArena is NewBatchEvaluator drawing every worker
// workspace's state buffers from the arena (nil behaves like
// NewBatchEvaluator). Call Release when done so the buffers return to
// the arena. An Arena is safe for concurrent use, so one arena can
// back all workers.
func NewBatchEvaluatorArena(pb *Problem, p, workers int, a *Arena) *BatchEvaluator {
	if p < 1 {
		panic(fmt.Sprintf("qaoa: depth %d < 1", p))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Large registers already parallelize inside the quantum kernels
	// (chunked gates and reductions); stacking batch-level workers on
	// top would oversubscribe every core with competing state vectors,
	// so the batch collapses to one worker and lets the kernels scale.
	if 1<<uint(pb.NumQubits()) >= quantum.ParallelDim {
		workers = 1
	}
	b := &BatchEvaluator{Problem: pb, Depth: p, workers: make([]*EvalWorkspace, workers)}
	for i := range b.workers {
		b.workers[i] = pb.NewWorkspaceArena(a)
	}
	return b
}

// Release retires all worker workspaces, returning arena-drawn buffers
// to their arena (closing shard workers otherwise). The evaluator must
// not be used afterwards.
func (b *BatchEvaluator) Release() {
	for _, ws := range b.workers {
		ws.Release()
	}
}

// Dim returns the number of optimization variables, 2p.
func (b *BatchEvaluator) Dim() int { return 2 * b.Depth }

// EvalBatch evaluates −⟨C⟩ at every point and returns the values in
// input order. Each point counts one QC call.
func (b *BatchEvaluator) EvalBatch(points [][]float64) []float64 {
	for i, x := range points {
		if len(x) != b.Dim() {
			panic(fmt.Sprintf("qaoa: batch point %d has length %d != 2p = %d", i, len(x), b.Dim()))
		}
	}
	b.nfev += len(points)
	out := make([]float64, len(points))
	nw := len(b.workers)
	if nw > len(points) {
		nw = len(points)
	}
	if nw <= 1 {
		ws := b.workers[0]
		for i, x := range points {
			out[i] = -ws.ExpectationVec(x)
		}
		return out
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(ws *EvalWorkspace) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(points) {
					return
				}
				out[i] = -ws.ExpectationVec(points[i])
			}
		}(b.workers[w])
	}
	wg.Wait()
	return out
}

// NFev returns the number of QC calls so far.
func (b *BatchEvaluator) NFev() int { return b.nfev }

// ResetNFev zeroes the QC-call counter.
func (b *BatchEvaluator) ResetNFev() { b.nfev = 0 }
