package qaoa

import (
	"math"
	"math/rand"
	"testing"

	"qaoaml/internal/graph"
)

// fdStep balances truncation (O(h²·f''')) against roundoff (O(ε|f|/h))
// for objectives of magnitude ~10: both land well below the 1e-8
// comparison tolerance.
const fdStep = 1e-5

// centralFD estimates ∂f/∂x_i by central differences at step fdStep.
func centralFD(f func([]float64) float64, x []float64, i int) float64 {
	xp := append([]float64(nil), x...)
	xp[i] = x[i] + fdStep
	fp := f(xp)
	xp[i] = x[i] - fdStep
	fm := f(xp)
	return (fp - fm) / (2 * fdStep)
}

// checkGradient compares the adjoint gradient against central finite
// differences at x, with tolerance scaled by the gradient magnitude.
func checkGradient(t *testing.T, ws *EvalWorkspace, x []float64, label string) {
	t.Helper()
	grad := make([]float64, len(x))
	val := ws.ValueGrad(x, grad)
	if want := ws.ExpectationVec(x); val != want {
		t.Errorf("%s: ValueGrad value %v != ExpectationVec %v (must be bit-identical)", label, val, want)
	}
	for i := range x {
		fd := centralFD(ws.ExpectationVec, x, i)
		tol := 1e-8 * math.Max(1, math.Abs(fd))
		if diff := math.Abs(grad[i] - fd); diff > tol {
			t.Errorf("%s: ∂/∂x[%d]: adjoint %v vs FD %v (diff %.3g > tol %.3g)",
				label, i, grad[i], fd, diff, tol)
		}
	}
}

// randomPoint draws an in-domain parameter vector; with faces=true a
// few coordinates are pinned to their box faces (γ ∈ {0, 2π},
// β ∈ {0, π}) to cover boundary points the optimizers visit.
func randomPoint(rng *rand.Rand, p int, faces bool) []float64 {
	x := make([]float64, 2*p)
	for i := 0; i < p; i++ {
		x[i] = rng.Float64() * GammaMax
		x[p+i] = rng.Float64() * BetaMax
	}
	if faces {
		x[0] = float64(rng.Intn(2)) * GammaMax // γ1 ∈ {0, 2π}
		x[2*p-1] = float64(rng.Intn(2)) * BetaMax
	}
	return x
}

// TestAdjointGradientMatchesFiniteDifference is the gradient-check
// suite: random unweighted and weighted graphs, depths 1..5, random
// interior points and box-face points, adjoint vs central differences.
func TestAdjointGradientMatchesFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 3; trial++ {
		unweighted, err := NewProblem(graph.ErdosRenyiConnected(6, 0.5, rng))
		if err != nil {
			t.Fatal(err)
		}
		wg := graph.New(6)
		for u := 0; u < 6; u++ {
			for v := u + 1; v < 6; v++ {
				if rng.Float64() < 0.6 {
					if err := wg.AddWeightedEdge(u, v, 0.25+1.5*rng.Float64()); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		weighted, err := NewProblem(wg)
		if err != nil {
			t.Fatal(err)
		}
		for name, pb := range map[string]*Problem{"unweighted": unweighted, "weighted": weighted} {
			ws := pb.NewWorkspace()
			for p := 1; p <= 5; p++ {
				checkGradient(t, ws, randomPoint(rng, p, false),
					name+"/interior")
				checkGradient(t, ws, randomPoint(rng, p, true),
					name+"/face")
			}
		}
	}
}

// The general diagonal ansatz (exp(−iγC) convention, arbitrary cost
// tables) must differentiate exactly too.
func TestAdjointGradientDiagonalProblem(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	// Small weights keep the quadratic cost table O(1): the FD *reference*
	// truncation error scales with |C|³, and large tables would make the
	// reference — not the adjoint — the inaccurate side.
	dp, err := NumberPartitionProblem([]float64{0.3, 0.1, 0.4, 0.15, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	ws := dp.NewWorkspace()
	for p := 1; p <= 4; p++ {
		checkGradient(t, ws, randomPoint(rng, p, false), "numpart/interior")
		checkGradient(t, ws, randomPoint(rng, p, true), "numpart/face")
	}
}

// Evaluator.NegValueGrad must negate both value and gradient and count
// gradient evaluations separately from QC calls.
func TestEvaluatorNegValueGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	pb, err := NewProblem(graph.ErdosRenyiConnected(7, 0.5, rng))
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(pb, 3)
	ws := pb.NewWorkspace()
	x := randomPoint(rng, 3, false)
	grad := make([]float64, len(x))
	ref := make([]float64, len(x))
	v := ev.NegValueGrad(x, grad)
	refV := ws.ValueGrad(x, ref)
	if v != -refV {
		t.Errorf("NegValueGrad value %v != −ValueGrad %v", v, -refV)
	}
	for i := range grad {
		if grad[i] != -ref[i] {
			t.Errorf("NegValueGrad grad[%d] = %v, want %v", i, grad[i], -ref[i])
		}
	}
	if ev.NGev() != 1 || ev.NFev() != 0 {
		t.Errorf("counters: NGev=%d NFev=%d, want 1/0", ev.NGev(), ev.NFev())
	}
	ev.NegGrad(x, grad)
	if ev.NGev() != 2 {
		t.Errorf("NGev after NegGrad = %d, want 2", ev.NGev())
	}
	ev.ResetNGev()
	if ev.NGev() != 0 {
		t.Error("ResetNGev did not zero the counter")
	}
}

// ValueGrad is on the optimizer hot path: after the first call (which
// allocates the adjoint buffer) it must not allocate at all.
func TestValueGradZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	pb, err := NewProblem(graph.ErdosRenyiConnected(8, 0.5, rng))
	if err != nil {
		t.Fatal(err)
	}
	ws := pb.NewWorkspace()
	x := randomPoint(rng, 5, false)
	grad := make([]float64, len(x))
	_ = ws.ValueGrad(x, grad) // warm-up: allocates the adjoint state once
	if allocs := testing.AllocsPerRun(100, func() {
		_ = ws.ValueGrad(x, grad)
	}); allocs != 0 {
		t.Fatalf("warm ValueGrad allocates %v times per call", allocs)
	}
}

func TestValueGradPanicsOnBadLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	pb, err := NewProblem(graph.ErdosRenyiConnected(5, 0.5, rng))
	if err != nil {
		t.Fatal(err)
	}
	ws := pb.NewWorkspace()
	for _, tc := range []struct{ nx, ng int }{{3, 3}, {4, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ValueGrad accepted x len %d, grad len %d", tc.nx, tc.ng)
				}
			}()
			ws.ValueGrad(make([]float64, tc.nx), make([]float64, tc.ng))
		}()
	}
}
