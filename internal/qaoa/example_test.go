package qaoa_test

import (
	"fmt"
	"math"

	"qaoaml/internal/graph"
	"qaoaml/internal/qaoa"
)

// Solve MaxCut on a single edge with a depth-1 circuit at the known
// optimal angles.
func ExampleProblem_expectation() {
	g := graph.Path(2)
	pb, _ := qaoa.NewProblem(g)
	pr := qaoa.Params{Gamma: []float64{math.Pi / 2}, Beta: []float64{math.Pi / 8}}
	fmt.Printf("<C> = %.2f, AR = %.2f\n", pb.Expectation(pr), pb.ApproximationRatio(pr))
	// Output: <C> = 1.00, AR = 1.00
}

// Flat parameter vectors round-trip through the [γ..., β...] layout
// used by the optimizers.
func ExampleFromVector() {
	pr := qaoa.FromVector([]float64{0.1, 0.2, 0.3, 0.4})
	fmt.Println(pr.Depth(), pr.Gamma, pr.Beta)
	// Output: 2 [0.1 0.2] [0.3 0.4]
}

// INTERP extends a depth-2 schedule to depth 3 by linear interpolation.
func ExampleInterpolate() {
	pr := qaoa.Params{Gamma: []float64{0.4, 0.8}, Beta: []float64{0.5, 0.2}}
	next := qaoa.Interpolate(pr)
	fmt.Printf("%.2f %.2f\n", next.Gamma, next.Beta)
	// Output: [0.40 0.60 0.80] [0.50 0.35 0.20]
}

// Canonicalize folds symmetric copies of an optimum into one
// representative (here: β shifted by the π/2 mixer period).
func ExampleCanonicalize() {
	a := qaoa.Params{Gamma: []float64{1.1}, Beta: []float64{0.3}}
	b := qaoa.Params{Gamma: []float64{1.1}, Beta: []float64{0.3 + math.Pi/2}}
	ca, cb := qaoa.Canonicalize(a), qaoa.Canonicalize(b)
	fmt.Printf("%.3f %.3f\n", ca.Beta[0], cb.Beta[0])
	// Output: 0.300 0.300
}
