package qaoa

import (
	"fmt"
	"math"
	"sync"

	"qaoaml/internal/quantum"
)

// The fast evaluation engine. The QAOA objective ⟨ψ(γ,β)|C|ψ(γ,β)⟩ is
// the hot path of the entire reproduction — dataset generation, Table I
// and every figure are tens of thousands of such calls — so it gets a
// dedicated zero-allocation kernel:
//
//   - The phase separator exp(−iγC) is diagonal, and C takes only a
//     handful of distinct values (an 8-node unweighted graph has ≲ 30
//     distinct cut sizes against 256 amplitudes). The engine computes
//     e^{iγ·φ} once per *distinct* value with math.Sincos and applies
//     them through a precomputed index table.
//   - The mixing layer RX(2β) on every qubit runs through the fused
//     quantum.RXAll kernel (one pass per qubit pair).
//   - All buffers (state vector, factor table) live in an EvalWorkspace
//     that is reused across objective calls, so a warm NegExpectation
//     performs no heap allocation at all.
//
// The results match the explicit gate-level circuit (BuildCircuit +
// Simulate) to rounding error, global phase included.

// costKernel is the per-problem evaluation engine behind EvalWorkspace:
// how the phase separator exp(iγH_γ) is applied, how ⟨C⟩ is read out,
// and how the adjoint sweep's matrix elements are taken. Two
// implementations exist:
//
//   - diagKernel (below): materialized 2^n cost diagonal with
//     distinct-value phase memoization — the small-n fast path.
//   - streamKernel (stream.go): computes C(z) on the fly from the edge
//     list per fixed-geometry chunk, so large MaxCut instances never
//     hold a 2^n float64 table.
//
// Both produce results over the same fixed reduction geometry
// (quantum.ReduceChunks), so expectations and gradients are
// bit-reproducible across GOMAXPROCS settings.
type costKernel interface {
	// qubits returns the register width.
	qubits() int
	// factorLen returns the length of the per-workspace factor scratch
	// the kernel wants (0 if it needs none).
	factorLen() int
	// applyPhase applies the phase separator with stage angle gamma to
	// st (conj un-applies it), using factors as scratch of factorLen().
	applyPhase(st *quantum.State, factors []complex128, gamma float64, conj bool)
	// expectation returns ⟨st|C|st⟩.
	expectation(st *quantum.State) float64
	// seedAdjoint overwrites adj with C|st⟩.
	seedAdjoint(adj, st *quantum.State)
	// genInner returns ⟨adj|H_γ|st⟩, the phase-generator matrix element
	// of the adjoint sweep.
	genInner(adj, st *quantum.State) complex128
}

// diagKernel is the immutable per-problem precomputation: the cost
// diagonal, and the distinct-value factorization of the phase-separator
// angles. For parameter γ, amplitude z picks up phase γ·halfAngles[idx[z]];
// gen is the same coefficient table unfactorized (gen[z] =
// halfAngles[idx[z]]), the diagonal generator H_γ of the phase layer
// that adjoint differentiation (gradient.go) takes matrix elements of.
type diagKernel struct {
	n          int
	diag       []float64 // cost diagonal C(z) (the observable)
	idx        []int32   // idx[z] → index into halfAngles
	halfAngles []float64 // distinct per-γ phase coefficients
	gen        []float64 // per-amplitude phase generator h(z)
}

// newDiagKernel factorizes the phase angles angle(z) = coeff(diag[z])
// into distinct values. Index assignment follows first occurrence in
// basis-state order, so it is deterministic.
func newDiagKernel(n int, diag []float64, coeff func(v float64) float64) *diagKernel {
	k := &diagKernel{
		n:    n,
		diag: diag,
		idx:  make([]int32, len(diag)),
		gen:  make([]float64, len(diag)),
	}
	seen := make(map[float64]int32, 64)
	for z, v := range diag {
		a := coeff(v)
		j, ok := seen[a]
		if !ok {
			j = int32(len(k.halfAngles))
			k.halfAngles = append(k.halfAngles, a)
			seen[a] = j
		}
		k.idx[z] = j
		k.gen[z] = a
	}
	return k
}

// kernel returns the Problem's phase kernel, building it on first use.
// Lazy construction keeps any Problem value usable regardless of how it
// was created; sync.Once makes first use safe under concurrency.
// Problems with a materialized CutTable get the memoized diagKernel;
// streaming-mode problems (CutTable nil, n ≥ StreamingThreshold) get
// the edge-list streamKernel, which never allocates a 2^n table.
func (pb *Problem) kernel() costKernel {
	pb.kernOnce.Do(func() {
		if pb.CutTable == nil {
			pb.kern = newStreamKernel(pb.Graph, pb.TotalWeight)
			return
		}
		m := pb.TotalWeight
		// Each edge contributes e^{iγw/2} when uncut and e^{−iγw/2} when
		// cut, so amplitude z picks up total phase γ(m − 2C(z))/2 — the
		// same convention applyPhaseSeparator used, preserving the global
		// phase of the gate-level circuit.
		pb.kern = newDiagKernel(pb.NumQubits(), pb.CutTable, func(c float64) float64 {
			return (m - 2*c) / 2
		})
	})
	return pb.kern
}

// kernel returns the DiagonalProblem's phase kernel: exp(−iγC) gives
// amplitude z the phase −γ·C(z).
func (dp *DiagonalProblem) kernel() *diagKernel {
	dp.kernOnce.Do(func() {
		dp.kern = newDiagKernel(dp.N, dp.Diag, func(d float64) float64 { return -d })
	})
	return dp.kern
}

// qubits, factorLen, applyPhase, expectation, seedAdjoint and genInner
// implement costKernel for the materialized-table path. applyPhase and
// the adjoint matrix elements run exactly the operations the
// pre-interface engine ran, so small-n results are byte-for-byte
// unchanged.
func (k *diagKernel) qubits() int    { return k.n }
func (k *diagKernel) factorLen() int { return len(k.halfAngles) }

func (k *diagKernel) applyPhase(st *quantum.State, factors []complex128, gamma float64, conj bool) {
	sign := 1.0
	if conj {
		sign = -1
	}
	for j, h := range k.halfAngles {
		sin, cos := math.Sincos(gamma * h)
		factors[j] = complex(cos, sign*sin)
	}
	st.MulDiagonalIndexed(k.idx, factors)
}

func (k *diagKernel) expectation(st *quantum.State) float64 {
	return st.ExpectationDiagonal(k.diag)
}

func (k *diagKernel) seedAdjoint(adj, st *quantum.State) {
	adj.CopyFrom(st)
	adj.MulDiagonalReal(k.diag)
}

func (k *diagKernel) genInner(adj, st *quantum.State) complex128 {
	return adj.InnerProductDiagonal(st, k.gen)
}

// EvalWorkspace owns the preallocated buffers one evaluation stream
// needs: the state vector and the distinct-phase factor table. A
// workspace is not safe for concurrent use; create one per goroutine
// (BatchEvaluator does exactly that).
type EvalWorkspace struct {
	k       costKernel
	state   *quantum.State
	factors []complex128

	// Adjoint-sweep buffer (gradient.go), allocated on first ValueGrad
	// call so plain expectation streams never pay for it. Warm gradient
	// calls are allocation-free.
	adj *quantum.State
}

// NewWorkspace returns a reusable evaluation workspace for the problem.
func (pb *Problem) NewWorkspace() *EvalWorkspace {
	return newWorkspace(pb.kernel())
}

// NewWorkspace returns a reusable evaluation workspace for the problem.
func (dp *DiagonalProblem) NewWorkspace() *EvalWorkspace {
	return newWorkspace(dp.kernel())
}

func newWorkspace(k costKernel) *EvalWorkspace {
	return &EvalWorkspace{
		k:       k,
		state:   quantum.NewUniformState(k.qubits()),
		factors: make([]complex128, k.factorLen()),
	}
}

// runKernel prepares |ψ(γ,β)⟩ in the given state using the kernel's
// fused layers. The state must already hold the initial layer (uniform
// superposition for the standard ansatz).
func runKernel(k costKernel, st *quantum.State, factors []complex128, gamma, beta []float64) {
	for s := range gamma {
		k.applyPhase(st, factors, gamma[s], false)
		st.RXAll(2 * beta[s])
	}
}

// expectation evaluates ⟨C⟩ at (γ, β), reusing the workspace buffers.
func (w *EvalWorkspace) expectation(gamma, beta []float64) float64 {
	w.state.FillUniform()
	runKernel(w.k, w.state, w.factors, gamma, beta)
	return w.k.expectation(w.state)
}

// Expectation returns ⟨ψ(γ,β)|C|ψ(γ,β)⟩ without heap allocation.
func (w *EvalWorkspace) Expectation(pr Params) float64 {
	if len(pr.Gamma) != len(pr.Beta) {
		panic(fmt.Sprintf("qaoa: gamma/beta length mismatch %d != %d", len(pr.Gamma), len(pr.Beta)))
	}
	return w.expectation(pr.Gamma, pr.Beta)
}

// ExpectationVec evaluates the flat [γ1..γp, β1..βp] parameter vector
// without copying or allocating. It panics for odd-length input.
func (w *EvalWorkspace) ExpectationVec(x []float64) float64 {
	if len(x)%2 != 0 {
		panic(fmt.Sprintf("qaoa: parameter vector of odd length %d", len(x)))
	}
	p := len(x) / 2
	return w.expectation(x[:p], x[p:])
}

// wsPool hands out evaluation workspaces to concurrent callers of the
// problem-level Expectation helpers. Pointers round-trip through the
// pool without allocating.
type wsPool struct {
	pool sync.Pool
}

func (p *wsPool) get(k costKernel) *EvalWorkspace {
	if w, ok := p.pool.Get().(*EvalWorkspace); ok {
		return w
	}
	return newWorkspace(k)
}

func (p *wsPool) put(w *EvalWorkspace) { p.pool.Put(w) }
