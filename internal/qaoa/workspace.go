package qaoa

import (
	"fmt"
	"math"
	"math/bits"
	"sync"

	"qaoaml/internal/quantum"
)

// The fast evaluation engine. The QAOA objective ⟨ψ(γ,β)|C|ψ(γ,β)⟩ is
// the hot path of the entire reproduction — dataset generation, Table I
// and every figure are tens of thousands of such calls — so it gets a
// dedicated zero-allocation kernel:
//
//   - The phase separator exp(−iγC) is diagonal, and C takes only a
//     handful of distinct values (an 8-node unweighted graph has ≲ 30
//     distinct cut sizes against 256 amplitudes). The engine computes
//     e^{iγ·φ} once per *distinct* value with math.Sincos and applies
//     them through a precomputed index table.
//   - A whole QAOA stage — uniform fill, phase separator, RX(2β)
//     mixing layer — runs through one fused quantum.LayerRunner sweep:
//     each cache-resident chunk is filled, phased, and mixed (for every
//     in-chunk qubit pair) back-to-back, so the state vector streams
//     from memory once per stage instead of once per pass. The kernels
//     are bandwidth-bound at large n, so pass-count is the lever.
//   - All buffers (state vector, factor table) and the dispatch
//     closures live in an EvalWorkspace that is reused across objective
//     calls, so a warm NegExpectation performs no heap allocation at
//     all.
//
// The results match the explicit gate-level circuit (BuildCircuit +
// Simulate) to rounding error, global phase included.

// costKernel is the per-problem evaluation engine behind EvalWorkspace:
// how the phase separator exp(iγH_γ) is applied, how ⟨C⟩ is read out,
// and how the adjoint sweep's matrix elements are taken. Two
// implementations exist:
//
//   - diagKernel (below): materialized 2^n cost diagonal with
//     distinct-value phase memoization — the small-n fast path.
//   - streamKernel (stream.go): computes C(z) on the fly from the edge
//     list per fixed-geometry chunk, so large MaxCut instances never
//     hold a 2^n float64 table.
//
// Both produce results over the same fixed reduction geometry
// (quantum.ReduceChunks), so expectations and gradients are
// bit-reproducible across GOMAXPROCS settings.
// The interface is range-based: the workspace drives the chunk loop
// (through quantum.LayerRunner, ReduceChunks and ForEachChunk over the
// fixed geometry) and the kernel supplies per-chunk bodies. That lets
// the phase separator run inside the fused layer sweep while the chunk
// is cache-resident, and lets reductions fuse with streamed diagonal
// generation.
type costKernel interface {
	// qubits returns the register width.
	qubits() int
	// factorLen returns the length of the per-workspace factor scratch
	// the kernel wants (0 if it needs none).
	factorLen() int
	// prepareFactors fills the factor scratch for stage angle gamma
	// (conjugated to un-apply). Called once per stage, before the
	// chunked phase application.
	prepareFactors(factors []complex128, gamma float64, conj bool)
	// Every per-chunk method takes an offset/range pair: [lo, hi) indexes
	// the passed State's amplitudes, off+lo…off+hi is the corresponding
	// GLOBAL basis-state range (for cost tables and streamed fills). The
	// flat path passes off = 0; the sharded path (shard states of a
	// quantum.ShardedState) passes the shard's base index. Chunk bounds
	// follow the fixed global geometry either way, so the two paths
	// generate identical per-chunk values.

	// applyPhaseRange applies the phase separator to st over one chunk.
	// gamma and conj repeat the prepareFactors arguments for kernels
	// that stream phases without a factor table.
	applyPhaseRange(st *quantum.State, factors []complex128, gamma float64, conj bool, off, lo, hi int)
	// applyPhase2Range applies the phase separator to two states over
	// one chunk, generating the chunk's diagonal once. The adjoint
	// reverse sweep un-applies each stage from both states.
	applyPhase2Range(a, b *quantum.State, factors []complex128, gamma float64, conj bool, off, lo, hi int)
	// expectChunk returns one chunk's contribution to ⟨st|C|st⟩.
	expectChunk(st *quantum.State, off, lo, hi int) float64
	// seedChunkValue overwrites adj's chunk with (C|st⟩)'s and returns
	// the chunk's contribution to ⟨st|C|st⟩, with the exact summation
	// order of expectChunk — so a fused value+seed pass stays
	// bit-identical to a plain expectation.
	seedChunkValue(adj, st *quantum.State, off, lo, hi int) float64
	// genInnerChunk returns one chunk's contribution to ⟨adj|H_γ|st⟩ in
	// split real/imag form.
	genInnerChunk(adj, st *quantum.State, off, lo, hi int) (re, im float64)
}

// diagKernel is the immutable per-problem precomputation: the cost
// diagonal, and the distinct-value factorization of the phase-separator
// angles. For parameter γ, amplitude z picks up phase γ·halfAngles[idx[z]];
// gen is the same coefficient table unfactorized (gen[z] =
// halfAngles[idx[z]]), the diagonal generator H_γ of the phase layer
// that adjoint differentiation (gradient.go) takes matrix elements of.
type diagKernel struct {
	n          int
	diag       []float64 // cost diagonal C(z) (the observable)
	idx        []int32   // idx[z] → index into halfAngles
	halfAngles []float64 // distinct per-γ phase coefficients
	gen        []float64 // per-amplitude phase generator h(z)
}

// newDiagKernel factorizes the phase angles angle(z) = coeff(diag[z])
// into distinct values. Index assignment follows first occurrence in
// basis-state order, so it is deterministic.
func newDiagKernel(n int, diag []float64, coeff func(v float64) float64) *diagKernel {
	k := &diagKernel{
		n:    n,
		diag: diag,
		idx:  make([]int32, len(diag)),
		gen:  make([]float64, len(diag)),
	}
	seen := make(map[float64]int32, 64)
	for z, v := range diag {
		a := coeff(v)
		j, ok := seen[a]
		if !ok {
			j = int32(len(k.halfAngles))
			k.halfAngles = append(k.halfAngles, a)
			seen[a] = j
		}
		k.idx[z] = j
		k.gen[z] = a
	}
	return k
}

// newDiagKernelFromGen builds the materialized kernel from independent
// observable and phase-generator tables — the generic-Hamiltonian
// entry, where gen(z) is not a pointwise function of diag(z) (a
// minimization instance flips the sign, auxiliary penalties shift it).
// The distinct-value factorization dedupes gen with the same
// first-occurrence rule as newDiagKernel.
func newDiagKernelFromGen(n int, diag, gen []float64) *diagKernel {
	k := &diagKernel{
		n:    n,
		diag: diag,
		idx:  make([]int32, len(diag)),
		gen:  gen,
	}
	seen := make(map[float64]int32, 64)
	for z, a := range gen {
		j, ok := seen[a]
		if !ok {
			j = int32(len(k.halfAngles))
			k.halfAngles = append(k.halfAngles, a)
			seen[a] = j
		}
		k.idx[z] = j
	}
	return k
}

// kernel returns the Problem's phase kernel, building it on first use.
// Lazy construction keeps any Problem value usable regardless of how it
// was created; sync.Once makes first use safe under concurrency.
// Problems with a materialized CutTable get the memoized diagKernel;
// streaming-mode problems (CutTable nil, n ≥ StreamingThreshold) get
// the edge-list streamKernel, which never allocates a 2^n table.
func (pb *Problem) kernel() costKernel {
	pb.kernOnce.Do(func() {
		if pb.Inst != nil {
			pb.kern = newIsingKernel(pb.Inst)
			return
		}
		if pb.CutTable == nil {
			pb.kern = newStreamKernel(pb.Graph, pb.TotalWeight)
			return
		}
		m := pb.TotalWeight
		// Each edge contributes e^{iγw/2} when uncut and e^{−iγw/2} when
		// cut, so amplitude z picks up total phase γ(m − 2C(z))/2 — the
		// same convention applyPhaseSeparator used, preserving the global
		// phase of the gate-level circuit.
		pb.kern = newDiagKernel(pb.NumQubits(), pb.CutTable, func(c float64) float64 {
			return (m - 2*c) / 2
		})
	})
	return pb.kern
}

// kernel returns the DiagonalProblem's phase kernel: exp(−iγC) gives
// amplitude z the phase −γ·C(z).
func (dp *DiagonalProblem) kernel() *diagKernel {
	dp.kernOnce.Do(func() {
		dp.kern = newDiagKernel(dp.N, dp.Diag, func(d float64) float64 { return -d })
	})
	return dp.kern
}

// costKernel implementation for the materialized-table path. The
// per-chunk bodies run exactly the per-element operations the
// pre-interface engine ran (same tables, same summation order within
// and across chunks), so results are byte-for-byte unchanged.
func (k *diagKernel) qubits() int    { return k.n }
func (k *diagKernel) factorLen() int { return len(k.halfAngles) }

func (k *diagKernel) prepareFactors(factors []complex128, gamma float64, conj bool) {
	sign := 1.0
	if conj {
		sign = -1
	}
	for j, h := range k.halfAngles {
		sin, cos := math.Sincos(gamma * h)
		factors[j] = complex(cos, sign*sin)
	}
}

func (k *diagKernel) applyPhaseRange(st *quantum.State, factors []complex128, _ float64, _ bool, off, lo, hi int) {
	st.MulDiagonalIndexedRange(lo, k.idx[off+lo:off+hi], factors)
}

func (k *diagKernel) applyPhase2Range(a, b *quantum.State, factors []complex128, _ float64, _ bool, off, lo, hi int) {
	a.MulDiagonalIndexedRange(lo, k.idx[off+lo:off+hi], factors)
	b.MulDiagonalIndexedRange(lo, k.idx[off+lo:off+hi], factors)
}

func (k *diagKernel) expectChunk(st *quantum.State, off, lo, hi int) float64 {
	return st.ExpectationDiagonalRange(lo, k.diag[off+lo:off+hi])
}

func (k *diagKernel) seedChunkValue(adj, st *quantum.State, off, lo, hi int) float64 {
	return adj.SeedDiagonalRange(st, lo, k.diag[off+lo:off+hi])
}

func (k *diagKernel) genInnerChunk(adj, st *quantum.State, off, lo, hi int) (re, im float64) {
	return adj.InnerProductDiagonalRange(st, lo, k.gen[off+lo:off+hi])
}

// ShardThreshold is the register width from which NewWorkspace switches
// the evaluation state to the sharded representation (quantum.
// ShardedState): at n ≥ 27 a single flat allocation is ≥ 2 GiB, the
// regime where per-worker shard ownership pays for itself. The sharded
// path computes bit-identical results; the threshold only picks the
// memory layout.
const ShardThreshold = 27

// DefaultShardBits is the shard count exponent NewWorkspace uses above
// ShardThreshold: 2^2 = 4 shards keeps per-shard allocations ≤ 2 GiB
// through n = 30 while the exchange passes stay a small fraction of a
// layer.
const DefaultShardBits = 2

// EvalWorkspace owns the preallocated buffers one evaluation stream
// needs: the state vector, the distinct-phase factor table, the fused
// layer runner and the per-chunk dispatch closures (created once here,
// so warm evaluations construct no closures and allocate nothing). A
// workspace is not safe for concurrent use; create one per goroutine
// (BatchEvaluator does exactly that).
//
// Above ShardThreshold the state lives in a quantum.ShardedState (ss
// non-nil) and the sharded driver paths run instead; results are
// bit-identical either way. Call Close on sharded workspaces to release
// the shard workers promptly (a finalizer backs it up).
type EvalWorkspace struct {
	k       costKernel
	state   *quantum.State
	factors []complex128
	runner  *quantum.LayerRunner

	// Stage parameters for the phase closures, written between
	// dispatches (the pool's channel send orders them before any worker
	// reads).
	gamma float64
	conj  bool

	phaseState func(lo, hi int)
	expectBody func(lo, hi int) (a, b float64)

	// Adjoint-sweep buffers and closures (gradient.go), allocated on
	// first ValueGrad call so plain expectation streams never pay for
	// them. Warm gradient calls are allocation-free.
	adj         *quantum.State
	adjRunner   *quantum.LayerRunner
	unphaseBoth func(lo, hi int)
	seedBody    func(lo, hi int) (a, b float64)
	genBody     func(lo, hi int) (a, b float64)
	sumXBody    func(lo, hi int) (a, b float64)

	// Sharded-path state and closures (nil/unset on the flat path).
	ss    *quantum.ShardedState
	adjSS *quantum.ShardedState
	sbits uint // log2(shard dim), for global→shard index mapping

	phaseShard   func(off, lo, hi int)
	expectShard  func(lo, hi int) (a, b float64)
	unphaseShard func(lo, hi int)
	seedShard    func(lo, hi int) (a, b float64)
	genShard     func(lo, hi int) (a, b float64)
	sumXShard    func(lo, hi int) (a, b float64)

	// arena, when non-nil, supplied the state buffers (and supplies the
	// lazy adjoint buffer); Release returns them there for the next
	// workspace at this width. A nil arena means plain ownership —
	// Release degrades to Close.
	arena *Arena
}

// NewWorkspace returns a reusable evaluation workspace for the problem.
// At ShardThreshold qubits and above the state is sharded
// (DefaultShardBits); results are identical to the flat representation.
func (pb *Problem) NewWorkspace() *EvalWorkspace {
	return newWorkspace(pb.kernel(), nil)
}

// NewWorkspaceArena is NewWorkspace drawing the state-vector buffers
// from the arena (nil behaves like NewWorkspace). Evaluation results
// are bit-identical: pooled buffers are always filled before use. Call
// Release, not Close, so the buffers return to the arena.
func (pb *Problem) NewWorkspaceArena(a *Arena) *EvalWorkspace {
	return newWorkspace(pb.kernel(), a)
}

// NewWorkspace returns a reusable evaluation workspace for the problem.
func (dp *DiagonalProblem) NewWorkspace() *EvalWorkspace {
	return newWorkspace(dp.kernel(), nil)
}

// NewWorkspaceShards returns a workspace whose state is split into
// 2^shardBits shards regardless of size (0 = flat layout in a one-shard
// ShardedState). Evaluation results are bit-identical to NewWorkspace;
// only the memory layout and worker ownership change. Callers should
// Close the workspace when done.
func (pb *Problem) NewWorkspaceShards(shardBits int) *EvalWorkspace {
	return newShardedWorkspace(pb.kernel(), shardBits, nil)
}

func newWorkspace(k costKernel, a *Arena) *EvalWorkspace {
	if k.qubits() >= ShardThreshold {
		return newShardedWorkspace(k, DefaultShardBits, a)
	}
	return newFlatWorkspace(k, a)
}

func newFlatWorkspace(k costKernel, a *Arena) *EvalWorkspace {
	w := &EvalWorkspace{
		k:       k,
		state:   a.getState(k.qubits()),
		factors: make([]complex128, k.factorLen()),
		arena:   a,
	}
	w.runner = quantum.NewLayerRunner(w.state)
	w.phaseState = func(lo, hi int) {
		k.applyPhaseRange(w.state, w.factors, w.gamma, w.conj, 0, lo, hi)
	}
	w.expectBody = func(lo, hi int) (float64, float64) {
		return k.expectChunk(w.state, 0, lo, hi), 0
	}
	return w
}

func newShardedWorkspace(k costKernel, shardBits int, a *Arena) *EvalWorkspace {
	ss := a.getSharded(k.qubits(), shardBits)
	ss.FillUniform()
	w := &EvalWorkspace{
		k:       k,
		ss:      ss,
		sbits:   uint(bits.TrailingZeros(uint(ss.ShardDim()))),
		factors: make([]complex128, k.factorLen()),
		arena:   a,
	}
	// Sharded chunk bodies receive GLOBAL bounds (the sharded drivers
	// iterate the same fixed chunk geometry as the flat ones) and map
	// them onto the owning shard: off is the shard's base index, lo−off
	// its local range.
	w.phaseShard = func(off, lo, hi int) {
		k.applyPhaseRange(w.ss.Shard(off>>w.sbits), w.factors, w.gamma, w.conj, off, lo, hi)
	}
	w.expectShard = func(lo, hi int) (float64, float64) {
		off := lo &^ (w.ss.ShardDim() - 1)
		return k.expectChunk(w.ss.Shard(lo>>w.sbits), off, lo-off, hi-off), 0
	}
	return w
}

// Close releases the shard worker goroutines of a sharded workspace.
// It is a no-op for flat workspaces and safe to call more than once.
func (w *EvalWorkspace) Close() {
	if w.ss != nil {
		w.ss.Close()
	}
	if w.adjSS != nil {
		w.adjSS.Close()
	}
}

// Release retires the workspace, returning its state buffers to the
// arena it was built from (arena-less workspaces just Close). The
// workspace must not be used afterwards. Safe to call more than once.
func (w *EvalWorkspace) Release() {
	if w.arena == nil {
		w.Close()
		return
	}
	a := w.arena
	w.arena = nil
	if w.state != nil {
		a.putState(w.state)
		w.state = nil
	}
	if w.adj != nil {
		a.putState(w.adj)
		w.adj = nil
	}
	if w.ss != nil {
		a.putSharded(w.ss)
		w.ss = nil
	}
	if w.adjSS != nil {
		a.putSharded(w.adjSS)
		w.adjSS = nil
	}
	w.runner, w.adjRunner = nil, nil
	w.phaseState, w.expectBody = nil, nil
	w.unphaseBoth, w.seedBody, w.genBody, w.sumXBody = nil, nil, nil, nil
	w.phaseShard, w.expectShard, w.unphaseShard = nil, nil, nil
	w.seedShard, w.genShard, w.sumXShard = nil, nil, nil
}

// argmax returns the index of the most probable basis state of the
// current workspace state, identical to State.ArgmaxProbability on the
// flat layout: ties resolve to the lowest global index, so the sharded
// scan (ascending shards, strict improvement only) matches it exactly.
func (w *EvalWorkspace) argmax() uint64 {
	if w.ss == nil {
		arg, _ := w.state.ArgmaxProbability()
		return arg
	}
	var best uint64
	bestProb := -1.0
	for i := 0; i < w.ss.NumShards(); i++ {
		local, p := w.ss.Shard(i).ArgmaxProbability()
		if p > bestProb {
			bestProb = p
			best = uint64(i)<<w.sbits | local
		}
	}
	return best
}

// Shards returns how many state-vector shards the workspace evaluates
// over (1 for the flat layout).
func (w *EvalWorkspace) Shards() int {
	if w.ss != nil {
		return w.ss.NumShards()
	}
	return 1
}

// runLayers prepares |ψ(γ,β)⟩ in the workspace state: per stage, one
// fused layer sweep applies the uniform fill (first stage), the phase
// separator and the RX(2β) mixer.
func (w *EvalWorkspace) runLayers(gamma, beta []float64) {
	if w.ss != nil {
		w.runLayersSharded(gamma, beta)
		return
	}
	if len(gamma) == 0 {
		w.state.FillUniform()
		return
	}
	for s := range gamma {
		w.k.prepareFactors(w.factors, gamma[s], false)
		w.gamma, w.conj = gamma[s], false
		w.runner.Layer(2*beta[s], s == 0, w.phaseState)
	}
}

func (w *EvalWorkspace) runLayersSharded(gamma, beta []float64) {
	if len(gamma) == 0 {
		w.ss.FillUniform()
		return
	}
	for s := range gamma {
		w.k.prepareFactors(w.factors, gamma[s], false)
		w.gamma, w.conj = gamma[s], false
		w.ss.Layer(2*beta[s], s == 0, w.phaseShard)
	}
}

// prepareState builds a fresh |ψ(γ,β)⟩ with the fused layer kernels.
// It backs the one-shot State helpers, which are not hot paths, so the
// transient workspace is fine. Always flat: the helpers hand out a
// *quantum.State.
func prepareState(k costKernel, gamma, beta []float64) *quantum.State {
	w := newFlatWorkspace(k, nil)
	w.runLayers(gamma, beta)
	return w.state
}

// expectation evaluates ⟨C⟩ at (γ, β), reusing the workspace buffers.
func (w *EvalWorkspace) expectation(gamma, beta []float64) float64 {
	w.runLayers(gamma, beta)
	if w.ss != nil {
		e, _ := w.ss.Reduce(w.expectShard)
		return e
	}
	e, _ := quantum.ReduceChunks(w.state.Dim(), w.expectBody)
	return e
}

// Expectation returns ⟨ψ(γ,β)|C|ψ(γ,β)⟩ without heap allocation.
func (w *EvalWorkspace) Expectation(pr Params) float64 {
	if len(pr.Gamma) != len(pr.Beta) {
		panic(fmt.Sprintf("qaoa: gamma/beta length mismatch %d != %d", len(pr.Gamma), len(pr.Beta)))
	}
	return w.expectation(pr.Gamma, pr.Beta)
}

// ExpectationVec evaluates the flat [γ1..γp, β1..βp] parameter vector
// without copying or allocating. It panics for odd-length input.
func (w *EvalWorkspace) ExpectationVec(x []float64) float64 {
	if len(x)%2 != 0 {
		panic(fmt.Sprintf("qaoa: parameter vector of odd length %d", len(x)))
	}
	p := len(x) / 2
	return w.expectation(x[:p], x[p:])
}

// wsPool hands out evaluation workspaces to concurrent callers of the
// problem-level Expectation helpers. Pointers round-trip through the
// pool without allocating.
type wsPool struct {
	pool sync.Pool
}

func (p *wsPool) get(k costKernel) *EvalWorkspace {
	if w, ok := p.pool.Get().(*EvalWorkspace); ok {
		return w
	}
	return newWorkspace(k, nil)
}

func (p *wsPool) put(w *EvalWorkspace) { p.pool.Put(w) }
