package qaoa

import (
	"fmt"
	"math"
	"sync"

	"qaoaml/internal/quantum"
)

// The fast evaluation engine. The QAOA objective ⟨ψ(γ,β)|C|ψ(γ,β)⟩ is
// the hot path of the entire reproduction — dataset generation, Table I
// and every figure are tens of thousands of such calls — so it gets a
// dedicated zero-allocation kernel:
//
//   - The phase separator exp(−iγC) is diagonal, and C takes only a
//     handful of distinct values (an 8-node unweighted graph has ≲ 30
//     distinct cut sizes against 256 amplitudes). The engine computes
//     e^{iγ·φ} once per *distinct* value with math.Sincos and applies
//     them through a precomputed index table.
//   - The mixing layer RX(2β) on every qubit runs through the fused
//     quantum.RXAll kernel (one pass per qubit pair).
//   - All buffers (state vector, factor table) live in an EvalWorkspace
//     that is reused across objective calls, so a warm NegExpectation
//     performs no heap allocation at all.
//
// The results match the explicit gate-level circuit (BuildCircuit +
// Simulate) to rounding error, global phase included.

// diagKernel is the immutable per-problem precomputation: the cost
// diagonal, and the distinct-value factorization of the phase-separator
// angles. For parameter γ, amplitude z picks up phase γ·halfAngles[idx[z]];
// gen is the same coefficient table unfactorized (gen[z] =
// halfAngles[idx[z]]), the diagonal generator H_γ of the phase layer
// that adjoint differentiation (gradient.go) takes matrix elements of.
type diagKernel struct {
	n          int
	diag       []float64 // cost diagonal C(z) (the observable)
	idx        []int32   // idx[z] → index into halfAngles
	halfAngles []float64 // distinct per-γ phase coefficients
	gen        []float64 // per-amplitude phase generator h(z)
}

// newDiagKernel factorizes the phase angles angle(z) = coeff(diag[z])
// into distinct values. Index assignment follows first occurrence in
// basis-state order, so it is deterministic.
func newDiagKernel(n int, diag []float64, coeff func(v float64) float64) *diagKernel {
	k := &diagKernel{
		n:    n,
		diag: diag,
		idx:  make([]int32, len(diag)),
		gen:  make([]float64, len(diag)),
	}
	seen := make(map[float64]int32, 64)
	for z, v := range diag {
		a := coeff(v)
		j, ok := seen[a]
		if !ok {
			j = int32(len(k.halfAngles))
			k.halfAngles = append(k.halfAngles, a)
			seen[a] = j
		}
		k.idx[z] = j
		k.gen[z] = a
	}
	return k
}

// kernel returns the Problem's phase kernel, building it on first use.
// Lazy construction keeps any Problem value usable regardless of how it
// was created; sync.Once makes first use safe under concurrency.
func (pb *Problem) kernel() *diagKernel {
	pb.kernOnce.Do(func() {
		m := pb.TotalWeight
		// Each edge contributes e^{iγw/2} when uncut and e^{−iγw/2} when
		// cut, so amplitude z picks up total phase γ(m − 2C(z))/2 — the
		// same convention applyPhaseSeparator used, preserving the global
		// phase of the gate-level circuit.
		pb.kern = newDiagKernel(pb.NumQubits(), pb.CutTable, func(c float64) float64 {
			return (m - 2*c) / 2
		})
	})
	return pb.kern
}

// kernel returns the DiagonalProblem's phase kernel: exp(−iγC) gives
// amplitude z the phase −γ·C(z).
func (dp *DiagonalProblem) kernel() *diagKernel {
	dp.kernOnce.Do(func() {
		dp.kern = newDiagKernel(dp.N, dp.Diag, func(d float64) float64 { return -d })
	})
	return dp.kern
}

// EvalWorkspace owns the preallocated buffers one evaluation stream
// needs: the state vector and the distinct-phase factor table. A
// workspace is not safe for concurrent use; create one per goroutine
// (BatchEvaluator does exactly that).
type EvalWorkspace struct {
	k       *diagKernel
	state   *quantum.State
	factors []complex128

	// Adjoint-sweep buffer (gradient.go), allocated on first ValueGrad
	// call so plain expectation streams never pay for it. Warm gradient
	// calls are allocation-free.
	adj *quantum.State
}

// NewWorkspace returns a reusable evaluation workspace for the problem.
func (pb *Problem) NewWorkspace() *EvalWorkspace {
	return newWorkspace(pb.kernel())
}

// NewWorkspace returns a reusable evaluation workspace for the problem.
func (dp *DiagonalProblem) NewWorkspace() *EvalWorkspace {
	return newWorkspace(dp.kernel())
}

func newWorkspace(k *diagKernel) *EvalWorkspace {
	return &EvalWorkspace{
		k:       k,
		state:   quantum.NewUniformState(k.n),
		factors: make([]complex128, len(k.halfAngles)),
	}
}

// run prepares |ψ(γ,β)⟩ in the given state using the fused kernels.
// The state must already hold the initial layer (uniform superposition
// for the standard ansatz).
func (k *diagKernel) run(st *quantum.State, factors []complex128, gamma, beta []float64) {
	for s := range gamma {
		g := gamma[s]
		for j, h := range k.halfAngles {
			sin, cos := math.Sincos(g * h)
			factors[j] = complex(cos, sin)
		}
		st.MulDiagonalIndexed(k.idx, factors)
		st.RXAll(2 * beta[s])
	}
}

// expectation evaluates ⟨C⟩ at (γ, β), reusing the workspace buffers.
func (w *EvalWorkspace) expectation(gamma, beta []float64) float64 {
	w.state.FillUniform()
	w.k.run(w.state, w.factors, gamma, beta)
	return w.state.ExpectationDiagonal(w.k.diag)
}

// Expectation returns ⟨ψ(γ,β)|C|ψ(γ,β)⟩ without heap allocation.
func (w *EvalWorkspace) Expectation(pr Params) float64 {
	if len(pr.Gamma) != len(pr.Beta) {
		panic(fmt.Sprintf("qaoa: gamma/beta length mismatch %d != %d", len(pr.Gamma), len(pr.Beta)))
	}
	return w.expectation(pr.Gamma, pr.Beta)
}

// ExpectationVec evaluates the flat [γ1..γp, β1..βp] parameter vector
// without copying or allocating. It panics for odd-length input.
func (w *EvalWorkspace) ExpectationVec(x []float64) float64 {
	if len(x)%2 != 0 {
		panic(fmt.Sprintf("qaoa: parameter vector of odd length %d", len(x)))
	}
	p := len(x) / 2
	return w.expectation(x[:p], x[p:])
}

// wsPool hands out evaluation workspaces to concurrent callers of the
// problem-level Expectation helpers. Pointers round-trip through the
// pool without allocating.
type wsPool struct {
	pool sync.Pool
}

func (p *wsPool) get(k *diagKernel) *EvalWorkspace {
	if w, ok := p.pool.Get().(*EvalWorkspace); ok {
		return w
	}
	return newWorkspace(k)
}

func (p *wsPool) put(w *EvalWorkspace) { p.pool.Put(w) }
