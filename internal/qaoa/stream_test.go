package qaoa

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"qaoaml/internal/graph"
)

// materializedKernel builds the small-n diagKernel for any graph,
// regardless of the streaming threshold — the reference the streaming
// path is compared against.
func materializedKernel(g *graph.Graph) *diagKernel {
	m := g.TotalWeight()
	return newDiagKernel(g.N, g.WeightedCutTable(), func(c float64) float64 {
		return (m - 2*c) / 2
	})
}

func testParams(p int) Params {
	pr := NewParams(p)
	for s := 0; s < p; s++ {
		pr.Gamma[s] = 0.37 + 0.21*float64(s)
		pr.Beta[s] = 0.19 + 0.11*float64(s)
	}
	return pr
}

// Integer-weighted graphs must match the materialized path EXACTLY:
// the streaming walker accumulates cuts in int64 (no rounding), the
// phase factors use the same distinct-value arithmetic, and the chunk
// reductions share their geometry. n=14 exercises the multi-chunk
// serial path.
func TestStreamKernelMatchesMaterializedExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	graphs := map[string]*graph.Graph{
		"unweighted-3reg-n14": graph.RandomRegular(14, 3, rng),
		"erdos-renyi-n13":     graph.ErdosRenyiConnected(13, 0.3, rng),
	}
	// Integer-weighted (non-unit) variant.
	gw := graph.RandomRegular(14, 3, rng)
	wg := graph.New(14)
	for i, e := range gw.Edges() {
		if err := wg.AddWeightedEdge(e.U, e.V, float64(1+i%5)); err != nil {
			t.Fatal(err)
		}
	}
	graphs["int-weighted-n14"] = wg

	for name, g := range graphs {
		g := g
		t.Run(name, func(t *testing.T) {
			pb := mustProblem(t, g)
			if pb.CutTable != nil {
				t.Fatalf("n=%d problem materialized its cut table; want streaming mode", g.N)
			}
			sk, ok := pb.kernel().(*streamKernel)
			if !ok {
				t.Fatalf("kernel is %T, want *streamKernel", pb.kernel())
			}
			if !sk.integer {
				t.Fatalf("integer-weighted graph did not take the exact integer path")
			}
			ref := newWorkspace(materializedKernel(g), nil)
			got := pb.NewWorkspace()
			for _, p := range []int{1, 3} {
				pr := testParams(p)
				x := pr.Vector()
				if rv, gv := ref.ExpectationVec(x), got.ExpectationVec(x); rv != gv {
					t.Errorf("p=%d: streaming expectation %v != materialized %v", p, gv, rv)
				}
				rGrad := make([]float64, len(x))
				gGrad := make([]float64, len(x))
				rv := ref.ValueGrad(x, rGrad)
				gv := got.ValueGrad(x, gGrad)
				if rv != gv {
					t.Errorf("p=%d: streaming gradient value %v != materialized %v", p, gv, rv)
				}
				for i := range rGrad {
					if rGrad[i] != gGrad[i] {
						t.Errorf("p=%d: grad[%d] streaming %v != materialized %v", p, i, gGrad[i], rGrad[i])
					}
				}
			}
		})
	}
}

// Float-weighted graphs stream per-amplitude Sincos phases instead of
// the distinct-value table, so agreement is to rounding error, not
// bit-exact.
func TestStreamKernelMatchesMaterializedFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	base := graph.ErdosRenyiConnected(13, 0.3, rng)
	g := graph.New(13)
	for i, e := range base.Edges() {
		if err := g.AddWeightedEdge(e.U, e.V, 0.5+0.37*float64(i%7)+0.01*math.Pi); err != nil {
			t.Fatal(err)
		}
	}
	pb := mustProblem(t, g)
	sk, ok := pb.kernel().(*streamKernel)
	if !ok {
		t.Fatalf("kernel is %T, want *streamKernel", pb.kernel())
	}
	if sk.integer {
		t.Fatal("π-scaled weights must take the float streaming path")
	}
	ref := newWorkspace(materializedKernel(g), nil)
	got := pb.NewWorkspace()
	pr := testParams(2)
	x := pr.Vector()
	scale := math.Max(1, pb.TotalWeight)
	if rv, gv := ref.ExpectationVec(x), got.ExpectationVec(x); math.Abs(rv-gv) > 1e-12*scale {
		t.Errorf("streaming expectation %v != materialized %v", gv, rv)
	}
	rGrad := make([]float64, len(x))
	gGrad := make([]float64, len(x))
	rv := ref.ValueGrad(x, rGrad)
	gv := got.ValueGrad(x, gGrad)
	if math.Abs(rv-gv) > 1e-12*scale {
		t.Errorf("streaming gradient value %v != materialized %v", gv, rv)
	}
	for i := range rGrad {
		if math.Abs(rGrad[i]-gGrad[i]) > 1e-11*scale {
			t.Errorf("grad[%d] streaming %v != materialized %v", i, gGrad[i], rGrad[i])
		}
	}
}

// A hand-built streaming Problem below the threshold (CutTable nil at
// n=8) must agree exactly with the standard materialized problem —
// single-chunk streaming coverage.
func TestStreamKernelSmallRegister(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	g := graph.ErdosRenyiConnected(8, 0.4, rng)
	ref := mustProblem(t, g)
	opt, _ := g.WeightedMaxCut()
	stream := &Problem{Graph: g, OptValue: opt, TotalWeight: g.TotalWeight()}
	if _, ok := stream.kernel().(*streamKernel); !ok {
		t.Fatalf("nil-CutTable problem built %T, want *streamKernel", stream.kernel())
	}
	pr := testParams(3)
	if rv, gv := ref.Expectation(pr), stream.Expectation(pr); rv != gv {
		t.Errorf("streaming n=8 expectation %v != materialized %v", gv, rv)
	}
}

// The point of streaming mode: a 2^20 problem must hold no 2^n cost or
// index table. The only O(2^n) allocation an evaluation needs is the
// workspace state vector (16 MiB at n=20); the materialized kernel
// would add 12 MiB of tables on top.
func TestStreamingMemoryBudgetN20(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping 2^20 memory-budget test in short mode")
	}
	rng := rand.New(rand.NewSource(37))
	g := graph.RandomRegular(20, 3, rng)
	pb := mustProblem(t, g)
	if pb.CutTable != nil {
		t.Fatal("n=20 problem materialized its cut table")
	}
	if _, ok := pb.kernel().(*streamKernel); !ok {
		t.Fatalf("n=20 kernel is %T, want *streamKernel", pb.kernel())
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	ws := pb.NewWorkspace()
	e := ws.Expectation(testParams(1))
	runtime.GC()
	runtime.ReadMemStats(&after)
	runtime.KeepAlive(ws)

	delta := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	const stateBytes = 16 << 20 // 2^20 complex128
	if delta > stateBytes+stateBytes/4 {
		t.Errorf("n=20 evaluation retains %d bytes; budget is the state vector (%d) plus slack — a 2^n table leaked", delta, stateBytes)
	}
	if e <= 0 || e >= pb.TotalWeight {
		t.Errorf("n=20 streamed expectation %v outside (0, total weight %v)", e, pb.TotalWeight)
	}
}

// CutValue must work in both modes and agree with the graph.
func TestCutValueStreamingMode(t *testing.T) {
	rng := rand.New(rand.NewSource(39))
	g := graph.RandomRegular(14, 3, rng)
	pb := mustProblem(t, g)
	for _, z := range []uint64{0, 1, 4097, 1<<14 - 1} {
		if got, want := pb.CutValue(z), g.WeightedCutValue(z); got != want {
			t.Errorf("CutValue(%d) = %v, want %v", z, got, want)
		}
	}
	// BestSampledCut goes through ArgmaxProbability + CutValue now.
	cut, assign := pb.BestSampledCut(testParams(1))
	if want := g.WeightedCutValue(assign); cut != want {
		t.Errorf("BestSampledCut cut %v != WeightedCutValue(%d) = %v", cut, assign, want)
	}
}
