package qaoa

import (
	"fmt"
	"math/bits"

	"qaoaml/internal/quantum"
)

// Adjoint-mode (reverse-sweep) analytic differentiation of the QAOA
// objective ⟨ψ(γ,β)|C|ψ(γ,β)⟩.
//
// The ansatz is a product of layers, |ψ⟩ = M_p P_p ⋯ M_1 P_1 |+⟩, with
//
//	P_s = exp(iγ_s H_γ),  H_γ = diag(h(z))   (the phase separator;
//	      h(z) is diagKernel.gen, the convention workspace.go applies),
//	M_s = exp(−iβ_s G_X), G_X = Σ_q X_q      (the RX mixing layer).
//
// Writing |φ_s⟩ for the state after stage s and ⟨λ_s| = ⟨ψ|C·(stages
// s+1..p), the product rule gives for every stage
//
//	∂E/∂β_s = 2 Re⟨λ_s|(−i G_X)|φ_s⟩ = 2 Im⟨λ_s|G_X|φ_s⟩,
//	∂E/∂γ_s = 2 Re⟨M_s†λ_s|(i H_γ)|P_s φ_{s−1}⟩
//	        = −2 Im⟨M_s†λ_s|H_γ|P_s φ_{s−1}⟩.
//
// One forward pass prepares |ψ⟩ (and the value ⟨C⟩); the reverse sweep
// seeds λ = C|ψ⟩ and walks s = p..1, taking the two inner products and
// un-applying each layer from both states with the inverse of the same
// fused kernels the forward pass uses (RXAll(−2β), conjugated phase
// factors). Every partial is exact — all 2p of them for roughly the
// cost of three evaluations, independent of p, where central finite
// differences spend 4p evaluations. See DESIGN.md, "Adjoint
// differentiation".

// ValueGrad evaluates ⟨C⟩ at the flat parameter vector
// [γ1..γp, β1..βp] and fills grad (same layout, same length) with the
// exact partial derivatives ∂⟨C⟩/∂γ_s, ∂⟨C⟩/∂β_s. The returned value
// is bit-identical to ExpectationVec(x): the forward pass is the same
// code path. Warm calls perform no heap allocation; the adjoint state
// buffer is allocated once on first use.
func (w *EvalWorkspace) ValueGrad(x, grad []float64) float64 {
	if len(x)%2 != 0 {
		panic(fmt.Sprintf("qaoa: parameter vector of odd length %d", len(x)))
	}
	if len(grad) != len(x) {
		panic(fmt.Sprintf("qaoa: gradient length %d != parameter length %d", len(grad), len(x)))
	}
	p := len(x) / 2
	return w.valueGrad(x[:p], x[p:], grad[:p], grad[p:])
}

// Gradient fills grad with ∂⟨C⟩/∂x at x, discarding the value. Layout
// and cost are those of ValueGrad.
func (w *EvalWorkspace) Gradient(x, grad []float64) { w.ValueGrad(x, grad) }

// valueGrad runs the forward pass and the adjoint reverse sweep. All
// kernel-dependent steps (phase layers, observable application, matrix
// elements) go through the costKernel interface, so the same sweep
// drives the materialized small-n path and the streaming large-n path.
func (w *EvalWorkspace) valueGrad(gamma, beta, dGamma, dBeta []float64) float64 {
	if w.ss != nil {
		return w.valueGradSharded(gamma, beta, dGamma, dBeta)
	}
	k := w.k
	if w.adj == nil {
		// One-time adjoint buffers and dispatch closures; every later
		// call reuses them, so warm sweeps allocate nothing. The seed
		// pass overwrites every adjoint chunk, so the buffer's initial
		// content is irrelevant (arena-pooled buffers arrive dirty).
		w.adj = w.arena.adjointState(w.state)
		w.adjRunner = quantum.NewLayerRunner(w.adj)
		w.seedBody = func(lo, hi int) (float64, float64) {
			return k.seedChunkValue(w.adj, w.state, 0, lo, hi), 0
		}
		w.genBody = func(lo, hi int) (float64, float64) {
			return k.genInnerChunk(w.adj, w.state, 0, lo, hi)
		}
		w.sumXBody = func(lo, hi int) (float64, float64) {
			return quantum.InnerProductSumXRange(w.adj, w.state, lo, hi)
		}
		w.unphaseBoth = func(lo, hi int) {
			k.applyPhase2Range(w.state, w.adj, w.factors, w.gamma, w.conj, 0, lo, hi)
		}
	}
	dim := w.state.Dim()

	// Forward pass: |ψ⟩, exactly as expectation().
	w.runLayers(gamma, beta)

	// Seed the adjoint and read the value in one fused pass: λ = C|ψ⟩,
	// val = ⟨C⟩. The per-chunk sums and their merge order match
	// expectation()'s exactly, so the value stays bit-identical.
	val, _ := quantum.ReduceChunks(dim, w.seedBody)

	// Reverse sweep: invariantly, entering iteration s the buffers hold
	// φ = (stages 1..s+1 applied) and λ = (stages s+2..p un-applied from
	// C|ψ⟩), i.e. exactly φ_{s+1} and λ_{s+1} in the derivation above.
	for s := len(gamma) - 1; s >= 0; s-- {
		_, im := quantum.ReduceChunks(dim, w.sumXBody)
		dBeta[s] = 2 * im

		// Un-apply the mixer from both states: M† = RXAll(−2β), through
		// the fused layer sweep (no phase, no fill).
		w.runner.Layer(-2*beta[s], false, nil)
		w.adjRunner.Layer(-2*beta[s], false, nil)

		_, gim := quantum.ReduceChunks(dim, w.genBody)
		dGamma[s] = -2 * gim

		// Un-apply the phase separator from both states (conjugated
		// factors), generating each chunk's diagonal once.
		w.k.prepareFactors(w.factors, gamma[s], true)
		w.gamma, w.conj = gamma[s], true
		quantum.ForEachChunk(dim, w.unphaseBoth)
	}
	return val
}

// valueGradSharded is the reverse sweep over the sharded state layout:
// the same stage structure as the flat sweep, with reductions and
// un-apply passes driven by the ShardedState's per-shard workers over
// the same global chunk geometry. Sharded chunk bodies receive global
// bounds and map them onto the owning shard; the partial merge order
// and per-chunk arithmetic are unchanged, so value and gradient are
// bit-identical to the flat sweep.
func (w *EvalWorkspace) valueGradSharded(gamma, beta, dGamma, dBeta []float64) float64 {
	k := w.k
	if w.adjSS == nil {
		// The seed pass overwrites every adjoint chunk, so a fresh
		// (zeroed) shard set — or a dirty arena-pooled one — is a valid
		// starting point.
		w.adjSS = w.arena.getSharded(w.ss.NumQubits(), bits.Len(uint(w.ss.NumShards()-1)))
		sdim := w.ss.ShardDim()
		w.seedShard = func(lo, hi int) (float64, float64) {
			off := lo &^ (sdim - 1)
			si := lo >> w.sbits
			return k.seedChunkValue(w.adjSS.Shard(si), w.ss.Shard(si), off, lo-off, hi-off), 0
		}
		w.genShard = func(lo, hi int) (float64, float64) {
			off := lo &^ (sdim - 1)
			si := lo >> w.sbits
			return k.genInnerChunk(w.adjSS.Shard(si), w.ss.Shard(si), off, lo-off, hi-off)
		}
		w.sumXShard = func(lo, hi int) (float64, float64) {
			return quantum.ShardedSumXRange(w.adjSS, w.ss, lo, hi)
		}
		w.unphaseShard = func(lo, hi int) {
			off := lo &^ (sdim - 1)
			si := lo >> w.sbits
			k.applyPhase2Range(w.ss.Shard(si), w.adjSS.Shard(si), w.factors, w.gamma, w.conj, off, lo-off, hi-off)
		}
	}

	w.runLayersSharded(gamma, beta)
	val, _ := w.ss.Reduce(w.seedShard)

	for s := len(gamma) - 1; s >= 0; s-- {
		_, im := w.ss.Reduce(w.sumXShard)
		dBeta[s] = 2 * im

		w.ss.Layer(-2*beta[s], false, nil)
		w.adjSS.Layer(-2*beta[s], false, nil)

		_, gim := w.ss.Reduce(w.genShard)
		dGamma[s] = -2 * gim

		w.k.prepareFactors(w.factors, gamma[s], true)
		w.gamma, w.conj = gamma[s], true
		w.ss.ForEach(w.unphaseShard)
	}
	return val
}
