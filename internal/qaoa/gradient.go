package qaoa

import (
	"fmt"
)

// Adjoint-mode (reverse-sweep) analytic differentiation of the QAOA
// objective ⟨ψ(γ,β)|C|ψ(γ,β)⟩.
//
// The ansatz is a product of layers, |ψ⟩ = M_p P_p ⋯ M_1 P_1 |+⟩, with
//
//	P_s = exp(iγ_s H_γ),  H_γ = diag(h(z))   (the phase separator;
//	      h(z) is diagKernel.gen, the convention workspace.go applies),
//	M_s = exp(−iβ_s G_X), G_X = Σ_q X_q      (the RX mixing layer).
//
// Writing |φ_s⟩ for the state after stage s and ⟨λ_s| = ⟨ψ|C·(stages
// s+1..p), the product rule gives for every stage
//
//	∂E/∂β_s = 2 Re⟨λ_s|(−i G_X)|φ_s⟩ = 2 Im⟨λ_s|G_X|φ_s⟩,
//	∂E/∂γ_s = 2 Re⟨M_s†λ_s|(i H_γ)|P_s φ_{s−1}⟩
//	        = −2 Im⟨M_s†λ_s|H_γ|P_s φ_{s−1}⟩.
//
// One forward pass prepares |ψ⟩ (and the value ⟨C⟩); the reverse sweep
// seeds λ = C|ψ⟩ and walks s = p..1, taking the two inner products and
// un-applying each layer from both states with the inverse of the same
// fused kernels the forward pass uses (RXAll(−2β), conjugated phase
// factors). Every partial is exact — all 2p of them for roughly the
// cost of three evaluations, independent of p, where central finite
// differences spend 4p evaluations. See DESIGN.md, "Adjoint
// differentiation".

// ValueGrad evaluates ⟨C⟩ at the flat parameter vector
// [γ1..γp, β1..βp] and fills grad (same layout, same length) with the
// exact partial derivatives ∂⟨C⟩/∂γ_s, ∂⟨C⟩/∂β_s. The returned value
// is bit-identical to ExpectationVec(x): the forward pass is the same
// code path. Warm calls perform no heap allocation; the adjoint state
// buffer is allocated once on first use.
func (w *EvalWorkspace) ValueGrad(x, grad []float64) float64 {
	if len(x)%2 != 0 {
		panic(fmt.Sprintf("qaoa: parameter vector of odd length %d", len(x)))
	}
	if len(grad) != len(x) {
		panic(fmt.Sprintf("qaoa: gradient length %d != parameter length %d", len(grad), len(x)))
	}
	p := len(x) / 2
	return w.valueGrad(x[:p], x[p:], grad[:p], grad[p:])
}

// Gradient fills grad with ∂⟨C⟩/∂x at x, discarding the value. Layout
// and cost are those of ValueGrad.
func (w *EvalWorkspace) Gradient(x, grad []float64) { w.ValueGrad(x, grad) }

// valueGrad runs the forward pass and the adjoint reverse sweep. All
// kernel-dependent steps (phase layers, observable application, matrix
// elements) go through the costKernel interface, so the same sweep
// drives the materialized small-n path and the streaming large-n path.
func (w *EvalWorkspace) valueGrad(gamma, beta, dGamma, dBeta []float64) float64 {
	k := w.k
	if w.adj == nil {
		w.adj = w.state.Clone() // one-time buffer; overwritten below
	}

	// Forward pass: |ψ⟩ and the value, exactly as expectation().
	w.state.FillUniform()
	runKernel(k, w.state, w.factors, gamma, beta)
	val := k.expectation(w.state)

	// Seed the adjoint: λ = C|ψ⟩.
	k.seedAdjoint(w.adj, w.state)

	// Reverse sweep: invariantly, entering iteration s the buffers hold
	// φ = (stages 1..s+1 applied) and λ = (stages s+2..p un-applied from
	// C|ψ⟩), i.e. exactly φ_{s+1} and λ_{s+1} in the derivation above.
	for s := len(gamma) - 1; s >= 0; s-- {
		dBeta[s] = 2 * imag(w.adj.InnerProductSumX(w.state))

		// Un-apply the mixer from both states: M† = RXAll(−2β).
		w.state.RXAll(-2 * beta[s])
		w.adj.RXAll(-2 * beta[s])

		dGamma[s] = -2 * imag(k.genInner(w.adj, w.state))

		// Un-apply the phase separator (conjugated factors).
		k.applyPhase(w.state, w.factors, gamma[s], true)
		k.applyPhase(w.adj, w.factors, gamma[s], true)
	}
	return val
}
