package qaoa

import (
	"math"

	"qaoaml/internal/graph"
)

// The QAOA MaxCut landscape has exact symmetries that leave ⟨C⟩
// invariant:
//
//  1. βi → βi ± π/2 for any single stage i. Shifting a mixer angle by
//     π/2 multiplies the stage by X⊗n (up to global phase); the cut
//     value is invariant under complementing every vertex, so X⊗n
//     commutes with every later phase separator and mixer and with the
//     cost observable.
//  2. (γ⃗, β⃗) → (−γ⃗, −β⃗) (complex conjugation of the state; C is a
//     real diagonal observable). Combined with periodicity this is
//     γi → 2π − γi, βi → −βi (mod π/2) applied to all stages jointly.
//
// Optimizers therefore return one of many equivalent optima. For the
// paper's parameter-trend analysis and ML features to be consistent
// across graphs and runs, every optimum must be mapped into one
// fundamental domain: βi ∈ [0, π/2) per stage, and γ1 ∈ [0, π] via the
// joint conjugation.

// BetaPeriod is the effective mixer-angle period π/2 (symmetry 1).
const BetaPeriod = math.Pi / 2

// Canonicalize maps params into the fundamental domain described above
// without changing the expectation value. The receiver is not modified.
func Canonicalize(pr Params) Params {
	p := pr.Depth()
	out := NewParams(p)
	for i := 0; i < p; i++ {
		out.Gamma[i] = mod(pr.Gamma[i], GammaMax)
		out.Beta[i] = mod(pr.Beta[i], BetaPeriod)
	}
	// Joint conjugation to bring γ1 into [0, π].
	if p > 0 && out.Gamma[0] > math.Pi {
		for i := 0; i < p; i++ {
			out.Gamma[i] = mod(-out.Gamma[i], GammaMax)
			out.Beta[i] = mod(-out.Beta[i], BetaPeriod)
		}
	}
	return out
}

// mod returns x modulo m in [0, m).
func mod(x, m float64) float64 {
	r := math.Mod(x, m)
	if r < 0 {
		r += m
	}
	return r
}

// Canonicalize maps params into the problem's fundamental domain. On
// top of the graph-independent symmetries of Canonicalize, graphs in
// which every vertex degree is odd admit one more exact symmetry:
//
//	exp(−iπC) applies phase (−1)^{C(z)} = Π_v s_v^{deg(v)} = Z⊗n
//
// when all degrees are odd, and pushing Z⊗n through the rest of the
// circuit flips every later mixer angle while commuting with the cost.
// Hence γi → γi + π together with βj → −βj for all j ≥ i leaves ⟨C⟩
// unchanged, which folds every γi into [0, π) and (combined with
// conjugation) γ1 into [0, π/2]. The paper's Fig. 2/3 graphs are
// 3-regular, where this folding is what makes the per-stage patterns
// comparable across graphs.
func (pb *Problem) Canonicalize(pr Params) Params {
	// Generic Ising instances: linear terms break the bit-flip (X⊗n)
	// symmetry behind the β mod π/2 folding, so only the full-period
	// reductions apply — β mod π always (RX(2β) is π-periodic up to
	// global phase), plus γ mod 2π and the joint conjugation when the
	// doubled coefficients are integral (phase-generator differences are
	// then integers, making the separator 2π-periodic in γ).
	if pb.Inst != nil {
		if pb.Inst.IntegerCoeffs() {
			return canonicalizeIsing(pr)
		}
		return foldBetaPeriod(pr, math.Pi)
	}
	// Non-integer edge weights break the 2π-periodicity of the phase
	// separator, so only the weight-independent β folding applies.
	if pb.Graph.Weighted() && !pb.Graph.IntegerWeighted() {
		return foldBetaOnly(pr)
	}
	out := Canonicalize(pr)
	// The odd-degree γ+π folding relies on unit weights (the parity
	// argument counts edges, not weights).
	if pb.Graph.Weighted() || !allDegreesOdd(pb.Graph) {
		return out
	}
	out = foldGammaModPi(out)
	// Conjugation (γ → −γ, β → −β jointly) followed by refolding brings
	// γ1 from (π/2, π) into [0, π/2].
	if out.Gamma[0] > math.Pi/2 {
		for i := range out.Gamma {
			out.Gamma[i] = mod(-out.Gamma[i], GammaMax)
			out.Beta[i] = mod(-out.Beta[i], BetaPeriod)
		}
		out = foldGammaModPi(out)
	}
	return out
}

// foldBetaOnly applies only the mixer-period symmetry: βi mod π/2 per
// stage, with γ untouched (valid for any edge weights, since the cut
// weight is invariant under complementing every vertex).
func foldBetaOnly(pr Params) Params { return foldBetaPeriod(pr, BetaPeriod) }

// foldBetaPeriod folds every mixer angle into [0, period) with γ
// untouched. Generic Ising instances use period π (the RX(2β) layer
// itself), MaxCut uses π/2 (the extra X⊗n symmetry).
func foldBetaPeriod(pr Params, period float64) Params {
	p := pr.Depth()
	out := NewParams(p)
	copy(out.Gamma, pr.Gamma)
	for i := 0; i < p; i++ {
		out.Beta[i] = mod(pr.Beta[i], period)
	}
	return out
}

// canonicalizeIsing maps params of an integer-coefficient Ising
// instance into its fundamental domain: γi mod 2π, βi mod π, then the
// joint conjugation (γ⃗, β⃗) → (−γ⃗, −β⃗) — exact for any real diagonal
// observable — to bring γ1 into [0, π].
func canonicalizeIsing(pr Params) Params {
	p := pr.Depth()
	out := NewParams(p)
	for i := 0; i < p; i++ {
		out.Gamma[i] = mod(pr.Gamma[i], GammaMax)
		out.Beta[i] = mod(pr.Beta[i], math.Pi)
	}
	if p > 0 && out.Gamma[0] > math.Pi {
		for i := 0; i < p; i++ {
			out.Gamma[i] = mod(-out.Gamma[i], GammaMax)
			out.Beta[i] = mod(-out.Beta[i], math.Pi)
		}
	}
	return out
}

// foldGammaModPi applies the odd-degree symmetry stage by stage,
// reducing every γi into [0, π) while flipping the affected mixers.
func foldGammaModPi(pr Params) Params {
	p := pr.Depth()
	out := NewParams(p)
	copy(out.Gamma, pr.Gamma)
	copy(out.Beta, pr.Beta)
	for i := 0; i < p; i++ {
		out.Gamma[i] = mod(out.Gamma[i], GammaMax)
		if out.Gamma[i] >= math.Pi {
			out.Gamma[i] -= math.Pi
			for j := i; j < p; j++ {
				out.Beta[j] = mod(-out.Beta[j], BetaPeriod)
			}
		}
	}
	return out
}

func allDegreesOdd(g *graph.Graph) bool {
	for v := 0; v < g.N; v++ {
		if g.Degree(v)%2 == 0 {
			return false
		}
	}
	return g.N > 0
}
