package qaoa

import (
	"math/rand"
	"runtime"
	"testing"

	"qaoaml/internal/graph"
)

// The parallel path must not allocate per pass: the persistent worker
// pool and the workspace-held dispatch closures pin a warm n=20
// expectation at GOMAXPROCS 8 to at most 4 allocations per call (it was
// 223 with per-call goroutine fan-out).
func TestExpectationN20ParallelAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	runtime.GOMAXPROCS(8)

	rng := rand.New(rand.NewSource(60))
	g := graph.RandomRegular(20, 3, rng)
	pb := mustProblem(t, g)
	w := pb.NewWorkspace()
	x := []float64{0.4, 0.3}
	w.ExpectationVec(x) // warm buffers, pool workers and scratch
	allocs := testing.AllocsPerRun(5, func() {
		w.ExpectationVec(x)
	})
	if allocs > 4 {
		t.Fatalf("warm n=20 expectation allocates %.0f times per run at GOMAXPROCS 8, want <= 4", allocs)
	}

	// The gradient sweep shares the budget once its buffers exist.
	grad := make([]float64, len(x))
	w.ValueGrad(x, grad)
	allocs = testing.AllocsPerRun(3, func() {
		w.ValueGrad(x, grad)
	})
	if allocs > 4 {
		t.Fatalf("warm n=20 gradient allocates %.0f times per run at GOMAXPROCS 8, want <= 4", allocs)
	}
}

// Cross-GOMAXPROCS bit-identity at n=24: the 2^15-amplitude chunk
// geometry, the fused layer sweeps and the pool dispatch must agree
// exactly across 1, 2 and 8 workers on a full-size instance. Skipped
// under -short (two 256 MiB state buffers, seconds of runtime).
func TestLargeN24BitIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("n=24 identity check skipped in short mode")
	}
	rng := rand.New(rand.NewSource(124))
	g := graph.RandomRegular(24, 3, rng)
	pb := mustProblem(t, g)
	x := []float64{0.4, 0.3}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	ws := pb.NewWorkspace()
	grad := make([]float64, len(x))
	var baseVal, baseGval float64
	var baseGrad []float64
	for wi, workers := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(workers)
		val := ws.ExpectationVec(x)
		gval := ws.ValueGrad(x, grad)
		if wi == 0 {
			baseVal, baseGval = val, gval
			baseGrad = append([]float64(nil), grad...)
			if gval != val {
				t.Errorf("n=24: ValueGrad value %v != Expectation %v", gval, val)
			}
			continue
		}
		if val != baseVal {
			t.Errorf("n=24: expectation at GOMAXPROCS=%d %v != 1-worker %v", workers, val, baseVal)
		}
		if gval != baseGval {
			t.Errorf("n=24: gradient value at GOMAXPROCS=%d %v != 1-worker %v", workers, gval, baseGval)
		}
		for i := range grad {
			if grad[i] != baseGrad[i] {
				t.Errorf("n=24: grad[%d] at GOMAXPROCS=%d %v != 1-worker %v", i, workers, grad[i], baseGrad[i])
			}
		}
	}
}
