package qaoa

import (
	"fmt"

	"qaoaml/internal/problem"
	"qaoaml/internal/quantum"
)

// Generic Ising/QUBO front-end. New is the canonical constructor for
// every problem family: MaxCut specs route to the legacy graph kernels
// (bit-identical to NewProblem), every other family compiles to a
// problem.Instance and evaluates through the Ising kernels — the
// materialized table below StreamingThreshold, the streaming kernel
// (ising_stream.go) above it. QAOA always maximizes Score(z) =
// sense·Value(z), so minimization families need no special casing past
// compilation.

// New builds an evaluation-ready Problem from a problem spec.
func New(spec problem.Spec) (*Problem, error) {
	if spec.Family == problem.FamilyMaxCut {
		if spec.Graph == nil {
			return nil, fmt.Errorf("qaoa: maxcut spec has no graph")
		}
		pb, err := NewProblem(spec.Graph)
		if err != nil {
			return nil, err
		}
		pb.Spec = spec
		return pb, nil
	}
	in, err := spec.Compile()
	if err != nil {
		return nil, err
	}
	pb, err := NewIsing(in)
	if err != nil {
		return nil, err
	}
	pb.Spec = spec
	return pb, nil
}

// NewIsing wraps a compiled Ising Hamiltonian for QAOA evaluation. The
// exact Score extremes come from a gray-code brute-force scan, so the
// register is capped at problem.BruteForceMaxQubits — approximation
// ratios are undefined without the true optimum.
func NewIsing(in *problem.Instance) (*Problem, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if in.N > problem.BruteForceMaxQubits {
		return nil, fmt.Errorf("qaoa: %d-qubit instance exceeds the %d-qubit exact-optimum limit", in.N, problem.BruteForceMaxQubits)
	}
	opt, worst, _ := in.BruteForce()
	sign := in.Sense.Sign()
	pb := &Problem{
		Spec:     problem.FromInstance(in),
		Inst:     in,
		OptValue: sign * opt,   // best Score (QAOA's maximum)
		MinScore: sign * worst, // worst Score (AR floor)
	}
	if pb.OptValue <= pb.MinScore {
		return nil, fmt.Errorf("qaoa: constant objective (score range [%v, %v]); nothing to optimize", pb.MinScore, pb.OptValue)
	}
	return pb, nil
}

// buildIsingTables materializes the Score diagonal and the phase
// generator gen(z) = −sense·(Σ h_i s_i + Σ J_ij s_i s_j) for a small
// instance. Instances with integral doubled coefficients accumulate
// the doubled sum T(z) = Σ(2J)ss + Σ(2h)s in int64 and recover both
// tables by exact halving — the same arithmetic the streaming kernel
// uses, which is what makes materialized and streamed evaluation
// bit-identical (and, for compiled MaxCut, identical to the legacy
// cut-table kernel: T = 2C − m gives gen = (m−2C)/2 and Score = C
// exactly).
func buildIsingTables(in *problem.Instance) (diag, gen []float64) {
	dim := 1 << uint(in.N)
	diag = make([]float64, dim)
	gen = make([]float64, dim)
	sign := in.Sense.Sign()
	senseOffset := sign * in.Offset
	if in.IntegerCoeffs() {
		for z := 0; z < dim; z++ {
			var t int64
			for i, h := range in.Linear {
				if h == 0 {
					continue
				}
				if (z>>uint(i))&1 == 0 {
					t += int64(2 * h)
				} else {
					t -= int64(2 * h)
				}
			}
			for _, q := range in.Quad {
				if (z>>uint(q.I))&1 == (z>>uint(q.J))&1 {
					t += int64(2 * q.W)
				} else {
					t -= int64(2 * q.W)
				}
			}
			half := float64(t) / 2
			diag[z] = senseOffset + sign*half
			gen[z] = -sign * half
		}
		return diag, gen
	}
	for z := 0; z < dim; z++ {
		t := 0.0
		for i, h := range in.Linear {
			if h == 0 {
				continue
			}
			if (z>>uint(i))&1 == 0 {
				t += 2 * h
			} else {
				t -= 2 * h
			}
		}
		for _, q := range in.Quad {
			if (z>>uint(q.I))&1 == (z>>uint(q.J))&1 {
				t += 2 * q.W
			} else {
				t -= 2 * q.W
			}
		}
		diag[z] = senseOffset + sign*(t/2)
		gen[z] = -sign * (t / 2)
	}
	return diag, gen
}

// newIsingKernel picks the evaluation engine for an instance by size,
// mirroring the MaxCut dispatch: materialized tables with memoized
// phase factors below StreamingThreshold, chunk-streamed generation
// above.
func newIsingKernel(in *problem.Instance) costKernel {
	if in.N < StreamingThreshold {
		diag, gen := buildIsingTables(in)
		return newDiagKernelFromGen(in.N, diag, gen)
	}
	return newIsingStreamKernel(in)
}

// ScoreValue returns the direction-normalized objective Score(z) for
// an assignment — cut weight for MaxCut problems, sense·Value for
// compiled instances. This is the quantity QAOA maximizes and the one
// reports should quote.
func (pb *Problem) ScoreValue(z uint64) float64 {
	if pb.Inst != nil {
		return pb.Inst.Score(z)
	}
	return pb.CutValue(z)
}

// BestSampled returns the most probable basis state's Score and
// assignment — the family-generic readout. For compiled families with
// auxiliary qubits (Max-3-SAT quadratization), the assignment still
// spans the full register; mask to Inst.Vars for the decision
// variables.
func (pb *Problem) BestSampled(pr Params) (score float64, assign uint64) {
	assign, _ = pb.State(pr).ArgmaxProbability()
	return pb.ScoreValue(assign), assign
}

// NormalizedScore maps an expectation ⟨Score⟩ onto [0, 1] between the
// instance's exact worst and best Scores — the cross-family analogue
// of the MaxCut approximation ratio (which divides by the optimum
// alone; see ApproximationRatio for the dispatch).
func (pb *Problem) NormalizedScore(e float64) float64 {
	return (e - pb.MinScore) / (pb.OptValue - pb.MinScore)
}

// isingCircuit appends the generic phase separator for one stage: an
// RZ(2γ·sense·h) per qubit with a field, and CNOT·RZ(2γ·sense·J)·CNOT
// per coupling. With RZ(θ) = diag(e^{−iθ/2}, e^{+iθ/2}), basis state z
// picks up exactly e^{iγ·gen(z)} — the fast path's convention, global
// phase included. A compiled MaxCut (sense +1, J = −w/2) emits
// RZ(−γw), the legacy MaxCut circuit gate for gate.
func (pb *Problem) isingCircuit(c *quantum.Circuit, gamma float64) {
	sign := pb.Inst.Sense.Sign()
	for q, h := range pb.Inst.Linear {
		if h != 0 {
			c.RZ(q, 2*gamma*sign*h)
		}
	}
	for _, t := range pb.Inst.Quad {
		c.CNOT(t.I, t.J)
		c.RZ(t.J, 2*gamma*sign*t.W)
		c.CNOT(t.I, t.J)
	}
}
