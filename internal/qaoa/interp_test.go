package qaoa

import (
	"math"
	"testing"

	"qaoaml/internal/graph"
)

func TestInterpolateDepth1(t *testing.T) {
	pr := Params{Gamma: []float64{0.6}, Beta: []float64{0.3}}
	out := Interpolate(pr)
	if out.Depth() != 2 {
		t.Fatalf("depth = %d", out.Depth())
	}
	// p = 1: θ'_1 = θ_1, θ'_2 = θ_1 (i=2: (1/1)θ_1 + 0).
	if math.Abs(out.Gamma[0]-0.6) > 1e-15 || math.Abs(out.Gamma[1]-0.6) > 1e-15 {
		t.Errorf("gamma = %v", out.Gamma)
	}
	if math.Abs(out.Beta[0]-0.3) > 1e-15 || math.Abs(out.Beta[1]-0.3) > 1e-15 {
		t.Errorf("beta = %v", out.Beta)
	}
}

func TestInterpolateDepth2(t *testing.T) {
	pr := Params{Gamma: []float64{0.4, 0.8}, Beta: []float64{0.5, 0.2}}
	out := Interpolate(pr)
	// i=1: θ_1 = 0.4; i=2: ½θ_1 + ½θ_2 = 0.6; i=3: θ_2 = 0.8.
	wantG := []float64{0.4, 0.6, 0.8}
	for i := range wantG {
		if math.Abs(out.Gamma[i]-wantG[i]) > 1e-15 {
			t.Fatalf("gamma = %v, want %v", out.Gamma, wantG)
		}
	}
	wantB := []float64{0.5, 0.35, 0.2}
	for i := range wantB {
		if math.Abs(out.Beta[i]-wantB[i]) > 1e-15 {
			t.Fatalf("beta = %v, want %v", out.Beta, wantB)
		}
	}
}

// Monotone schedules stay monotone under interpolation — the property
// that keeps the INTERP seed inside the regular optimum family.
func TestInterpolatePreservesMonotonicity(t *testing.T) {
	pr := Params{Gamma: []float64{0.3, 0.6, 0.9}, Beta: []float64{0.5, 0.35, 0.2}}
	out := Interpolate(pr)
	for i := 1; i < out.Depth(); i++ {
		if out.Gamma[i] < out.Gamma[i-1]-1e-12 {
			t.Errorf("gamma not nondecreasing: %v", out.Gamma)
		}
		if out.Beta[i] > out.Beta[i-1]+1e-12 {
			t.Errorf("beta not nonincreasing: %v", out.Beta)
		}
	}
}

// The interpolated point should be a materially better start than the
// zero-parameter (uniform-state) baseline: it lands in the basin of the
// regular optimum family rather than at a generic point.
func TestInterpolateIsWarmStart(t *testing.T) {
	pb := mustProblem(t, graph.Cycle(5))
	// Depth-1 optimum found by a fine grid.
	best := bestOnGrid(pb, 1, 48)
	seed := Interpolate(best.pr)
	arSeed := pb.ApproximationRatio(seed)
	baseline := pb.ApproximationRatio(NewParams(2)) // uniform state: (m/2)/C_opt
	if arSeed < baseline+0.05 {
		t.Errorf("interp seed AR %v not better than uniform baseline %v", arSeed, baseline)
	}
}

func TestGridSearchP1(t *testing.T) {
	pb := mustProblem(t, graph.Path(2))
	best, e := GridSearchP1(pb, 64)
	// Single-edge optimum is <C> = 1 at (π/2, π/8); a 64-step grid gets
	// close.
	if e < 0.99 {
		t.Errorf("grid best <C> = %v, want ~1", e)
	}
	if math.Abs(pb.Expectation(best)-e) > 1e-12 {
		t.Error("returned params do not achieve returned value")
	}
}

func TestGridSearchP1Panics(t *testing.T) {
	pb := mustProblem(t, graph.Path(2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GridSearchP1(pb, 1)
}
