// Package stats provides the descriptive statistics used throughout the
// reproduction: means, standard deviations, Pearson correlation (the
// paper's dataset analysis in Sec. III-B), percentiles, and histograms.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance, or NaN when
// fewer than two samples are given.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// PopVariance returns the population (n) variance, or NaN for empty input.
func PopVariance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// Covariance returns the unbiased sample covariance of xs and ys.
// It panics if lengths differ and returns NaN for fewer than two samples.
func Covariance(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("stats: length mismatch %d != %d", len(xs), len(ys)))
	}
	if len(xs) < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	s := 0.0
	for i := range xs {
		s += (xs[i] - mx) * (ys[i] - my)
	}
	return s / float64(len(xs)-1)
}

// Pearson returns the Pearson correlation coefficient r of xs and ys.
// It returns NaN when either series is constant.
func Pearson(xs, ys []float64) float64 {
	sx, sy := StdDev(xs), StdDev(ys)
	if sx == 0 || sy == 0 {
		return math.NaN()
	}
	return Covariance(xs, ys) / (sx * sy)
}

// Min returns the minimum of xs. It panics on empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It panics on empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between order statistics. It panics on empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of [0,100]", p))
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Summary bundles the descriptive statistics reported in the paper's
// tables (mean and standard deviation) plus range information.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
	Median    float64
	P25, P75  float64
}

// Summarize computes a Summary of xs. It panics on empty input.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Std:    StdDev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
		Median: Median(xs),
		P25:    Percentile(xs, 25),
		P75:    Percentile(xs, 75),
	}
}

// String renders the summary in one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4f std=%.4f min=%.4f p25=%.4f med=%.4f p75=%.4f max=%.4f",
		s.N, s.Mean, s.Std, s.Min, s.P25, s.Median, s.P75, s.Max)
}

// Histogram bins xs into nbins equal-width bins over [min, max] and
// returns bin edges (nbins+1) and counts (nbins). Values equal to max
// land in the last bin. It panics for empty input or nbins < 1.
func Histogram(xs []float64, nbins int) (edges []float64, counts []int) {
	if nbins < 1 {
		panic("stats: nbins < 1")
	}
	lo, hi := Min(xs), Max(xs)
	if lo == hi {
		hi = lo + 1 // degenerate range: single bin holds everything
	}
	edges = make([]float64, nbins+1)
	width := (hi - lo) / float64(nbins)
	for i := range edges {
		edges[i] = lo + float64(i)*width
	}
	counts = make([]int, nbins)
	for _, x := range xs {
		b := int((x - lo) / width)
		if b >= nbins {
			b = nbins - 1
		}
		if b < 0 {
			b = 0
		}
		counts[b]++
	}
	return edges, counts
}

// MeanAbsPercentError returns the mean of |pred-actual|/|actual|·100 over
// all pairs, skipping pairs where actual is (near) zero, along with the
// standard deviation of the same per-pair percentages. This is the error
// measure reported in the paper's Fig. 6.
func MeanAbsPercentError(actual, pred []float64) (mean, std float64) {
	if len(actual) != len(pred) {
		panic("stats: length mismatch")
	}
	var errs []float64
	for i := range actual {
		if math.Abs(actual[i]) < 1e-9 {
			continue
		}
		errs = append(errs, math.Abs(pred[i]-actual[i])/math.Abs(actual[i])*100)
	}
	if len(errs) == 0 {
		return math.NaN(), math.NaN()
	}
	return Mean(errs), StdDev(errs)
}

// Spearman returns the Spearman rank correlation coefficient of xs and
// ys: the Pearson correlation of their rank transforms (average ranks
// for ties). It returns NaN when either series is constant.
func Spearman(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("stats: length mismatch %d != %d", len(xs), len(ys)))
	}
	return Pearson(ranks(xs), ranks(ys))
}

// ranks returns average ranks (1-based) with ties sharing their mean rank.
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	r := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			r[idx[k]] = avg
		}
		i = j + 1
	}
	return r
}
