package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := PopVariance(xs); !almostEq(got, 4, 1e-12) {
		t.Errorf("PopVariance = %v, want 4", got)
	}
	if got := Variance(xs); !almostEq(got, 32.0/7, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, 32.0/7)
	}
	if got := StdDev(xs); !almostEq(got, math.Sqrt(32.0/7), 1e-12) {
		t.Errorf("StdDev = %v", got)
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of single sample should be NaN")
	}
}

func TestCovariancePearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10} // perfectly correlated
	if got := Pearson(xs, ys); !almostEq(got, 1, 1e-12) {
		t.Errorf("Pearson = %v, want 1", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); !almostEq(got, -1, 1e-12) {
		t.Errorf("Pearson = %v, want -1", got)
	}
	if !math.IsNaN(Pearson(xs, []float64{3, 3, 3, 3, 3})) {
		t.Error("Pearson with constant series should be NaN")
	}
}

func TestPearsonInvariantUnderAffine(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(20)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
		}
		r1 := Pearson(xs, ys)
		// Affine transform with positive scale must preserve r.
		xs2 := make([]float64, n)
		for i := range xs {
			xs2[i] = 3*xs[i] + 7
		}
		r2 := Pearson(xs2, ys)
		return almostEq(r1, r2, 1e-9) && r1 >= -1-1e-12 && r1 <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
}

func TestPercentileMedian(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	if got := Percentile(xs, 0); got != 15 {
		t.Errorf("P0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 50 {
		t.Errorf("P100 = %v", got)
	}
	if got := Median(xs); got != 35 {
		t.Errorf("median = %v", got)
	}
	if got := Percentile([]float64{1, 2}, 50); got != 1.5 {
		t.Errorf("interpolated median = %v", got)
	}
	if got := Percentile([]float64{9}, 73); got != 9 {
		t.Errorf("single-element percentile = %v", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	_ = Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("Summary = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty Summary string")
	}
}

func TestHistogram(t *testing.T) {
	edges, counts := Histogram([]float64{0, 0.5, 1, 1.5, 2}, 2)
	if len(edges) != 3 || len(counts) != 2 {
		t.Fatalf("edges/counts lengths = %d/%d", len(edges), len(counts))
	}
	if counts[0]+counts[1] != 5 {
		t.Errorf("histogram loses samples: %v", counts)
	}
	if counts[0] != 2 || counts[1] != 3 { // [0,1): {0,0.5}; [1,2]: {1,1.5,2}
		t.Errorf("counts = %v, want [2 3]", counts)
	}
}

func TestHistogramConstantInput(t *testing.T) {
	_, counts := Histogram([]float64{4, 4, 4}, 3)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 3 {
		t.Errorf("constant-input histogram total = %d", total)
	}
}

func TestHistogramPropertyConservesMass(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		_, counts := Histogram(xs, 1+rng.Intn(10))
		total := 0
		for _, c := range counts {
			total += c
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMeanAbsPercentError(t *testing.T) {
	actual := []float64{1, 2, 4}
	pred := []float64{1.1, 1.8, 4}
	mean, std := MeanAbsPercentError(actual, pred)
	// errors: 10%, 10%, 0% → mean 20/3
	if !almostEq(mean, 20.0/3, 1e-9) {
		t.Errorf("mean = %v", mean)
	}
	if std <= 0 {
		t.Errorf("std = %v", std)
	}
	// Zero actuals are skipped.
	m2, _ := MeanAbsPercentError([]float64{0, 1}, []float64{5, 1.2})
	if !almostEq(m2, 20, 1e-9) {
		t.Errorf("zero-skip mean = %v", m2)
	}
	if m3, _ := MeanAbsPercentError([]float64{0}, []float64{1}); !math.IsNaN(m3) {
		t.Error("all-zero actuals should give NaN")
	}
}

func TestSpearman(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	// Monotone but nonlinear: Spearman 1, Pearson < 1.
	ys := []float64{1, 8, 27, 64, 125}
	if got := Spearman(xs, ys); !almostEq(got, 1, 1e-12) {
		t.Errorf("Spearman = %v, want 1", got)
	}
	if p := Pearson(xs, ys); p >= 1-1e-9 {
		t.Errorf("Pearson = %v, should be < 1 for cubic", p)
	}
	desc := []float64{10, 8, 5, 3, 1}
	if got := Spearman(xs, desc); !almostEq(got, -1, 1e-12) {
		t.Errorf("Spearman = %v, want -1", got)
	}
	if !math.IsNaN(Spearman(xs, []float64{2, 2, 2, 2, 2})) {
		t.Error("constant series should give NaN")
	}
}

func TestSpearmanTies(t *testing.T) {
	// With ties the rank transform uses average ranks.
	xs := []float64{1, 2, 2, 3}
	r := ranks(xs)
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if !almostEq(r[i], want[i], 1e-12) {
			t.Fatalf("ranks = %v, want %v", r, want)
		}
	}
}
