package ml

import "fmt"

// MultiOutput fits one independent single-output Regressor per target
// column. The paper's predictor maps 3 features to 2·pt outputs (the γ
// and β parameters of the target-depth instance); training one model
// per output is the standard reduction.
type MultiOutput struct {
	// New constructs a fresh underlying model for each output column.
	New func() Regressor

	models []Regressor
}

// NewMultiOutput returns a MultiOutput with the given model factory.
func NewMultiOutput(factory func() Regressor) *MultiOutput {
	if factory == nil {
		panic("ml: nil model factory")
	}
	return &MultiOutput{New: factory}
}

// Name returns the underlying model family name, e.g. "GPR (multi-output)".
func (m *MultiOutput) Name() string {
	return fmt.Sprintf("%s (multi-output)", m.New().Name())
}

// Outputs returns the number of target columns (0 before Fit).
func (m *MultiOutput) Outputs() int { return len(m.models) }

// Fit trains one model per column of y. All rows of y must share a
// length; x rows are validated by the underlying models.
func (m *MultiOutput) Fit(x [][]float64, y [][]float64) error {
	if len(x) == 0 || len(y) == 0 {
		return ErrEmptyTrainingSet
	}
	if len(x) != len(y) {
		return fmt.Errorf("%w: %d feature rows vs %d target rows", ErrBadShape, len(x), len(y))
	}
	width := len(y[0])
	if width == 0 {
		return fmt.Errorf("%w: zero-width target rows", ErrBadShape)
	}
	for i, row := range y {
		if len(row) != width {
			return fmt.Errorf("%w: target row %d has %d values, want %d", ErrBadShape, i, len(row), width)
		}
	}
	models := make([]Regressor, width)
	col := make([]float64, len(y))
	for j := 0; j < width; j++ {
		for i := range y {
			col[i] = y[i][j]
		}
		models[j] = m.New()
		if err := models[j].Fit(x, col); err != nil {
			return fmt.Errorf("ml: fitting output %d: %w", j, err)
		}
	}
	m.models = models
	return nil
}

// Predict returns all outputs for one feature vector.
// It panics before Fit.
func (m *MultiOutput) Predict(x []float64) []float64 {
	if len(m.models) == 0 {
		panic("ml: MultiOutput.Predict before Fit")
	}
	out := make([]float64, len(m.models))
	for j, mod := range m.models {
		out[j] = mod.Predict(x)
	}
	return out
}

// Model returns the trained model for output column j.
func (m *MultiOutput) Model(j int) Regressor { return m.models[j] }
