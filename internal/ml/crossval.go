package ml

import (
	"fmt"
	"math/rand"
)

// CVResult aggregates k-fold cross-validation metrics.
type CVResult struct {
	Folds []Metrics
	// Mean holds the fold-averaged metrics (N is the total sample count).
	Mean Metrics
}

// CrossValidate runs k-fold cross-validation of the model family
// produced by factory on (x, y): the samples are shuffled with rng,
// split into k folds, and each fold is predicted by a model trained on
// the remaining k−1. p is the predictor count for adjusted R².
func CrossValidate(factory func() Regressor, x [][]float64, y []float64, k, p int, rng *rand.Rand) (CVResult, error) {
	if factory == nil {
		return CVResult{}, fmt.Errorf("ml: nil model factory")
	}
	if _, err := checkTrainingData(x, y); err != nil {
		return CVResult{}, err
	}
	n := len(x)
	if k < 2 || k > n {
		return CVResult{}, fmt.Errorf("ml: fold count %d out of [2, %d]", k, n)
	}
	perm := rng.Perm(n)
	var res CVResult
	var sumMSE, sumRMSE, sumMAE, sumR2, sumR2Adj float64
	for fold := 0; fold < k; fold++ {
		lo := fold * n / k
		hi := (fold + 1) * n / k
		var trX, teX [][]float64
		var trY, teY []float64
		for i, id := range perm {
			if i >= lo && i < hi {
				teX = append(teX, x[id])
				teY = append(teY, y[id])
			} else {
				trX = append(trX, x[id])
				trY = append(trY, y[id])
			}
		}
		model := factory()
		if err := model.Fit(trX, trY); err != nil {
			return CVResult{}, fmt.Errorf("ml: fold %d fit: %w", fold, err)
		}
		m := Evaluate(teY, PredictBatch(model, teX), p)
		res.Folds = append(res.Folds, m)
		sumMSE += m.MSE
		sumRMSE += m.RMSE
		sumMAE += m.MAE
		sumR2 += m.R2
		sumR2Adj += m.R2Adj
	}
	kf := float64(k)
	res.Mean = Metrics{
		MSE: sumMSE / kf, RMSE: sumRMSE / kf, MAE: sumMAE / kf,
		R2: sumR2 / kf, R2Adj: sumR2Adj / kf,
		N: n, P: p,
	}
	return res, nil
}
