package ml

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func allModels() []Regressor {
	return []Regressor{&Linear{}, &GPR{}, &Tree{}, &SVR{}}
}

// linearData samples y = 2x0 − 3x1 + 1 (+ optional noise).
func linearData(rng *rand.Rand, n int, noise float64) ([][]float64, []float64) {
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = []float64{rng.Float64()*4 - 2, rng.Float64()*4 - 2}
		y[i] = 2*x[i][0] - 3*x[i][1] + 1 + noise*rng.NormFloat64()
	}
	return x, y
}

// smoothData samples y = sin(x0) + 0.5·cos(2·x1).
func smoothData(rng *rand.Rand, n int) ([][]float64, []float64) {
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = []float64{rng.Float64() * 2 * math.Pi, rng.Float64() * math.Pi}
		y[i] = math.Sin(x[i][0]) + 0.5*math.Cos(2*x[i][1])
	}
	return x, y
}

func TestLinearRecoversCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := linearData(rng, 60, 0)
	var lm Linear
	if err := lm.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if math.Abs(lm.Intercept-1) > 1e-8 || math.Abs(lm.Coef[0]-2) > 1e-8 || math.Abs(lm.Coef[1]+3) > 1e-8 {
		t.Errorf("intercept=%v coef=%v", lm.Intercept, lm.Coef)
	}
	if got := lm.Predict([]float64{1, 1}); math.Abs(got-0) > 1e-8 {
		t.Errorf("Predict(1,1) = %v, want 0", got)
	}
}

func TestLinearWithNoiseStillClose(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, y := linearData(rng, 300, 0.1)
	var lm Linear
	if err := lm.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if math.Abs(lm.Coef[0]-2) > 0.1 || math.Abs(lm.Coef[1]+3) > 0.1 {
		t.Errorf("coef = %v", lm.Coef)
	}
}

func TestLinearConstantFeatureFallback(t *testing.T) {
	// Second feature constant → rank-deficient design → ridge fallback.
	x := [][]float64{{1, 5}, {2, 5}, {3, 5}, {4, 5}}
	y := []float64{2, 4, 6, 8}
	var lm Linear
	if err := lm.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if got := lm.Predict([]float64{2.5, 5}); math.Abs(got-5) > 1e-3 {
		t.Errorf("Predict = %v, want 5", got)
	}
}

func TestGPRInterpolatesSmoothFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y := smoothData(rng, 80)
	var g GPR
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	xt, yt := smoothData(rng, 40)
	pred := PredictBatch(&g, xt)
	m := Evaluate(yt, pred, 2)
	if m.RMSE > 0.1 {
		t.Errorf("GPR RMSE = %v (metrics: %v)", m.RMSE, m)
	}
}

func TestGPRVarianceShrinksNearData(t *testing.T) {
	x := [][]float64{{0}, {1}, {2}, {3}}
	y := []float64{0, 1, 0, -1}
	g := GPR{NoiseVar: 1e-4}
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	_, vAt := g.PredictWithVariance([]float64{1})
	_, vFar := g.PredictWithVariance([]float64{10})
	if vAt >= vFar {
		t.Errorf("variance at data %v >= far %v", vAt, vFar)
	}
	if vAt < 0 || vFar < 0 {
		t.Error("negative variance")
	}
}

func TestGPRFixedHyperparameters(t *testing.T) {
	x := [][]float64{{0}, {1}, {2}}
	y := []float64{1, 2, 3}
	g := GPR{LengthScale: 2, SignalVar: 1, NoiseVar: 1e-3}
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	ell, sf2, sn2 := g.Hyperparameters()
	if ell != 2 || sf2 != 1 || sn2 != 1e-3 {
		t.Errorf("hyperparameters = %v %v %v", ell, sf2, sn2)
	}
	if math.IsInf(g.LogMarginalLikelihood(), 0) || math.IsNaN(g.LogMarginalLikelihood()) {
		t.Error("bad log marginal likelihood")
	}
}

func TestTreeFitsPiecewiseStructure(t *testing.T) {
	// Step function: tree should nail it, linear model cannot.
	var x [][]float64
	var y []float64
	for i := 0; i < 60; i++ {
		v := float64(i) / 10
		x = append(x, []float64{v})
		if v < 3 {
			y = append(y, 1)
		} else {
			y = append(y, 5)
		}
	}
	var tr Tree
	if err := tr.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if got := tr.Predict([]float64{1}); math.Abs(got-1) > 1e-9 {
		t.Errorf("left region = %v", got)
	}
	if got := tr.Predict([]float64{5}); math.Abs(got-5) > 1e-9 {
		t.Errorf("right region = %v", got)
	}
	if tr.Depth() < 2 || tr.Leaves() < 2 {
		t.Errorf("depth=%d leaves=%d", tr.Depth(), tr.Leaves())
	}
}

func TestTreeRespectsMaxDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, y := smoothData(rng, 200)
	tr := Tree{MaxDepth: 3}
	if err := tr.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if tr.Depth() > 3 {
		t.Errorf("depth = %d > 3", tr.Depth())
	}
}

func TestTreeConstantTarget(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}, {4}, {5}, {6}}
	y := []float64{7, 7, 7, 7, 7, 7}
	var tr Tree
	if err := tr.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if got := tr.Predict([]float64{2.2}); got != 7 {
		t.Errorf("constant prediction = %v", got)
	}
	if tr.Leaves() != 1 {
		t.Errorf("constant target grew %d leaves", tr.Leaves())
	}
}

func TestSVRFitsSmoothFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, y := smoothData(rng, 120)
	var s SVR
	if err := s.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	xt, yt := smoothData(rng, 40)
	m := Evaluate(yt, PredictBatch(&s, xt), 2)
	if m.RMSE > 0.15 {
		t.Errorf("SVR RMSE = %v", m.RMSE)
	}
	if sv := s.SupportVectors(); sv == 0 || sv > 120 {
		t.Errorf("support vectors = %d", sv)
	}
}

func TestSVREpsilonTubeSparsity(t *testing.T) {
	// With a huge tube every residual fits inside it → all β are 0.
	x := [][]float64{{0}, {1}, {2}, {3}}
	y := []float64{0.0, 0.01, -0.01, 0.0}
	s := SVR{Epsilon: 10}
	if err := s.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if s.SupportVectors() != 0 {
		t.Errorf("support vectors = %d, want 0", s.SupportVectors())
	}
	// Prediction degenerates to the target mean.
	if got := s.Predict([]float64{1.5}); math.Abs(got-0.0) > 0.02 {
		t.Errorf("degenerate prediction = %v", got)
	}
}

func TestAllModelsRejectBadInput(t *testing.T) {
	for _, m := range allModels() {
		if err := m.Fit(nil, nil); !errors.Is(err, ErrEmptyTrainingSet) {
			t.Errorf("%s: empty fit err = %v", m.Name(), err)
		}
		if err := m.Fit([][]float64{{1}}, []float64{1, 2}); !errors.Is(err, ErrBadShape) {
			t.Errorf("%s: mismatched fit err = %v", m.Name(), err)
		}
		if err := m.Fit([][]float64{{1}, {1, 2}}, []float64{1, 2}); !errors.Is(err, ErrBadShape) {
			t.Errorf("%s: ragged fit err = %v", m.Name(), err)
		}
	}
}

func TestPredictBeforeFitPanics(t *testing.T) {
	for _, m := range allModels() {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", m.Name())
				}
			}()
			m.Predict([]float64{1})
		}()
	}
}

func TestModelNames(t *testing.T) {
	want := map[string]bool{"LM": true, "GPR": true, "RTREE": true, "RSVM": true}
	for _, m := range allModels() {
		if !want[m.Name()] {
			t.Errorf("unexpected model name %q", m.Name())
		}
	}
}

// GPR should beat the linear model on a nonlinear task — the ordering
// the paper reports (Sec. III-C).
func TestGPRBeatsLinearOnNonlinearData(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x, y := smoothData(rng, 100)
	xt, yt := smoothData(rng, 50)
	var g GPR
	var lm Linear
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := lm.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	mg := Evaluate(yt, PredictBatch(&g, xt), 2)
	ml := Evaluate(yt, PredictBatch(&lm, xt), 2)
	if !mg.Better(ml) {
		t.Errorf("GPR (%v) not better than LM (%v)", mg, ml)
	}
}

func TestMetrics(t *testing.T) {
	actual := []float64{1, 2, 3, 4}
	perfect := Evaluate(actual, actual, 1)
	if perfect.MSE != 0 || perfect.RMSE != 0 || perfect.MAE != 0 {
		t.Errorf("perfect metrics = %v", perfect)
	}
	if math.Abs(perfect.R2-1) > 1e-12 || math.Abs(perfect.R2Adj-1) > 1e-12 {
		t.Errorf("perfect R2 = %v / %v", perfect.R2, perfect.R2Adj)
	}
	pred := []float64{1.5, 2.5, 2.5, 3.5}
	m := Evaluate(actual, pred, 1)
	if math.Abs(m.MSE-0.25) > 1e-12 || math.Abs(m.MAE-0.5) > 1e-12 || math.Abs(m.RMSE-0.5) > 1e-12 {
		t.Errorf("metrics = %v", m)
	}
	// R² = 1 − SSE/SST = 1 − 1/5 = 0.8
	if math.Abs(m.R2-0.8) > 1e-12 {
		t.Errorf("R2 = %v", m.R2)
	}
	// adjusted with n=4, p=1: 1 − 0.2·3/2 = 0.7
	if math.Abs(m.R2Adj-0.7) > 1e-12 {
		t.Errorf("R2Adj = %v", m.R2Adj)
	}
}

func TestMetricsConstantActuals(t *testing.T) {
	m := Evaluate([]float64{3, 3, 3}, []float64{3, 3, 3}, 1)
	if !math.IsNaN(m.R2) {
		t.Errorf("R2 on zero-variance targets = %v, want NaN", m.R2)
	}
}

func TestMetricsBetterOrdering(t *testing.T) {
	a := Metrics{MSE: 1, RMSE: 1, MAE: 1, R2: 0.5}
	b := Metrics{MSE: 2, RMSE: 1.4, MAE: 1.2, R2: 0.3}
	if !a.Better(b) || b.Better(a) {
		t.Error("Better ordering wrong")
	}
	c := Metrics{MSE: 1, RMSE: 1, MAE: 1, R2: 0.6}
	if !c.Better(a) {
		t.Error("R2 tiebreak wrong")
	}
	if a.String() == "" {
		t.Error("empty metrics string")
	}
}

func TestMultiOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := make([][]float64, 50)
	y := make([][]float64, 50)
	for i := range x {
		v := rng.Float64() * 4
		x[i] = []float64{v}
		y[i] = []float64{2 * v, -v + 1}
	}
	mo := NewMultiOutput(func() Regressor { return &Linear{} })
	if err := mo.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if mo.Outputs() != 2 {
		t.Fatalf("Outputs = %d", mo.Outputs())
	}
	out := mo.Predict([]float64{2})
	if math.Abs(out[0]-4) > 1e-8 || math.Abs(out[1]+1) > 1e-8 {
		t.Errorf("Predict = %v", out)
	}
	if mo.Name() != "LM (multi-output)" {
		t.Errorf("Name = %q", mo.Name())
	}
	if mo.Model(0).Name() != "LM" {
		t.Error("Model accessor wrong")
	}
}

func TestMultiOutputValidation(t *testing.T) {
	mo := NewMultiOutput(func() Regressor { return &Linear{} })
	if err := mo.Fit(nil, nil); !errors.Is(err, ErrEmptyTrainingSet) {
		t.Errorf("empty err = %v", err)
	}
	if err := mo.Fit([][]float64{{1}}, [][]float64{{1}, {2}}); !errors.Is(err, ErrBadShape) {
		t.Errorf("mismatch err = %v", err)
	}
	if err := mo.Fit([][]float64{{1}, {2}}, [][]float64{{1}, {1, 2}}); !errors.Is(err, ErrBadShape) {
		t.Errorf("ragged err = %v", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Predict before Fit should panic")
			}
		}()
		mo.Predict([]float64{1})
	}()
}

func TestStandardizer(t *testing.T) {
	x := [][]float64{{1, 10}, {3, 10}, {5, 10}}
	s := NewStandardizer(x)
	ts := s.TransformAll(x)
	// First column standardized; constant second column untouched (scale 1).
	if math.Abs(ts[0][0]+1.224744871) > 1e-6 {
		t.Errorf("standardized = %v", ts[0][0])
	}
	if ts[0][1] != 0 {
		t.Errorf("constant column transform = %v", ts[0][1])
	}
	back := s.Inverse(ts[1])
	if math.Abs(back[0]-3) > 1e-12 || math.Abs(back[1]-10) > 1e-12 {
		t.Errorf("Inverse = %v", back)
	}
}

func TestDatasetSplit(t *testing.T) {
	var d Dataset
	for i := 0; i < 10; i++ {
		d.Append([]float64{float64(i)}, []float64{float64(2 * i)})
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	train, test := d.Split(0.2, rand.New(rand.NewSource(8)))
	if train.Len() != 2 || test.Len() != 8 {
		t.Errorf("split sizes = %d/%d", train.Len(), test.Len())
	}
	// All samples present exactly once.
	seen := map[float64]bool{}
	for _, row := range append(append([][]float64{}, train.X...), test.X...) {
		if seen[row[0]] {
			t.Fatalf("duplicate sample %v", row[0])
		}
		seen[row[0]] = true
	}
	if len(seen) != 10 {
		t.Errorf("samples lost: %d", len(seen))
	}
}

func TestDatasetSplitExtremes(t *testing.T) {
	var d Dataset
	d.Append([]float64{1}, []float64{1})
	d.Append([]float64{2}, []float64{2})
	train, test := d.Split(0.01, rand.New(rand.NewSource(9)))
	if train.Len() != 1 || test.Len() != 1 {
		t.Errorf("tiny-frac split = %d/%d, want 1/1", train.Len(), test.Len())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for frac >= 1")
			}
		}()
		d.Split(1.0, rand.New(rand.NewSource(0)))
	}()
}

func TestDatasetColumns(t *testing.T) {
	var d Dataset
	d.Append([]float64{1, 2}, []float64{3, 4})
	d.Append([]float64{5, 6}, []float64{7, 8})
	if c := d.Column(1); c[0] != 4 || c[1] != 8 {
		t.Errorf("Column = %v", c)
	}
	if c := d.FeatureColumn(0); c[0] != 1 || c[1] != 5 {
		t.Errorf("FeatureColumn = %v", c)
	}
}

func TestDatasetAppendCopies(t *testing.T) {
	var d Dataset
	x := []float64{1}
	d.Append(x, x)
	x[0] = 99
	if d.X[0][0] != 1 || d.Y[0][0] != 1 {
		t.Error("Append shares storage with caller")
	}
}

// Property: tree predictions are always within the training target range.
func TestTreePredictionWithinRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(50)
		x := make([][]float64, n)
		y := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range x {
			x[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
			y[i] = rng.NormFloat64()
			lo = math.Min(lo, y[i])
			hi = math.Max(hi, y[i])
		}
		var tr Tree
		if err := tr.Fit(x, y); err != nil {
			return false
		}
		for trial := 0; trial < 10; trial++ {
			p := tr.Predict([]float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3})
			if p < lo-1e-9 || p > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: linear regression residuals are orthogonal to features.
func TestLinearResidualOrthogonality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x, y := linearData(rng, 40, 0.5)
		var lm Linear
		if err := lm.Fit(x, y); err != nil {
			return false
		}
		for j := 0; j < 2; j++ {
			s := 0.0
			for i := range x {
				s += (y[i] - lm.Predict(x[i])) * x[i][j]
			}
			if math.Abs(s) > 1e-6*float64(len(x)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCrossValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	x, y := linearData(rng, 80, 0.05)
	res, err := CrossValidate(func() Regressor { return &Linear{} }, x, y, 5, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Folds) != 5 {
		t.Fatalf("folds = %d", len(res.Folds))
	}
	total := 0
	for _, f := range res.Folds {
		total += f.N
	}
	if total != 80 {
		t.Errorf("fold sample total = %d, want 80", total)
	}
	if res.Mean.RMSE > 0.1 {
		t.Errorf("linear CV RMSE = %v on near-noiseless linear data", res.Mean.RMSE)
	}
	if res.Mean.R2 < 0.95 {
		t.Errorf("linear CV R2 = %v", res.Mean.R2)
	}
}

func TestCrossValidateValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	x, y := linearData(rng, 10, 0)
	if _, err := CrossValidate(nil, x, y, 2, 2, rng); err == nil {
		t.Error("nil factory accepted")
	}
	if _, err := CrossValidate(func() Regressor { return &Linear{} }, x, y, 1, 2, rng); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := CrossValidate(func() Regressor { return &Linear{} }, x, y, 11, 2, rng); err == nil {
		t.Error("k>n accepted")
	}
	if _, err := CrossValidate(func() Regressor { return &Linear{} }, nil, nil, 2, 2, rng); err == nil {
		t.Error("empty data accepted")
	}
}

// Cross-validation should rank the correctly specified model above a
// badly regularized alternative on average.
func TestCrossValidateDiscriminates(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	x, y := smoothData(rng, 120)
	gpr, err := CrossValidate(func() Regressor { return &GPR{} }, x, y, 4, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	lin, err := CrossValidate(func() Regressor { return &Linear{} }, x, y, 4, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if gpr.Mean.RMSE >= lin.Mean.RMSE {
		t.Errorf("GPR CV RMSE %v not better than linear %v on nonlinear data", gpr.Mean.RMSE, lin.Mean.RMSE)
	}
}

// With the additive linear kernel GPR should match the linear model on
// purely linear data (instead of reverting to the prior mean off the
// training range).
func TestGPRLinearKernelExtrapolates(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	x, y := linearData(rng, 60, 0.01)
	g := GPR{LinearVar: -1} // grid-select the linear kernel term
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	// Points outside the [-2, 2] training box.
	far := []float64{3.5, -3.5}
	want := 2*far[0] - 3*far[1] + 1
	if got := g.Predict(far); math.Abs(got-want) > 0.8 {
		t.Errorf("GPR extrapolation = %v, want ~%v", got, want)
	}
}

func TestGPRLinearVarPinnedAndDisabled(t *testing.T) {
	x := [][]float64{{0}, {1}, {2}, {3}}
	y := []float64{0, 1, 2, 3}
	pinned := GPR{LinearVar: 1}
	if err := pinned.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	disabled := GPR{} // default: RBF only
	if err := disabled.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	// The linear-kernel model should extrapolate the line much better.
	pFar := pinned.Predict([]float64{6})
	dFar := disabled.Predict([]float64{6})
	if math.Abs(pFar-6) >= math.Abs(dFar-6) {
		t.Errorf("linear kernel (%v) not better than RBF-only (%v) at x=6", pFar, dFar)
	}
}

func TestForestFitsSmoothFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	x, y := smoothData(rng, 300)
	f := Forest{Trees: 60, Seed: 2}
	if err := f.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	xt, yt := smoothData(rng, 80)
	m := Evaluate(yt, PredictBatch(&f, xt), 2)
	if m.RMSE > 0.3 {
		t.Errorf("forest RMSE = %v", m.RMSE)
	}
}

func TestForestBeatsSingleTreeOnNoisyData(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	x := make([][]float64, 250)
	y := make([]float64, 250)
	for i := range x {
		x[i] = []float64{rng.Float64() * 6}
		y[i] = math.Sin(x[i][0]) + 0.4*rng.NormFloat64()
	}
	var single Tree
	if err := single.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	forest := Forest{Trees: 80, Seed: 3}
	if err := forest.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	var xt [][]float64
	var yt []float64
	for i := 0; i < 100; i++ {
		v := rng.Float64() * 6
		xt = append(xt, []float64{v})
		yt = append(yt, math.Sin(v))
	}
	ms := Evaluate(yt, PredictBatch(&single, xt), 1)
	mf := Evaluate(yt, PredictBatch(&forest, xt), 1)
	if mf.RMSE >= ms.RMSE {
		t.Errorf("forest RMSE %v not better than single tree %v on noisy data", mf.RMSE, ms.RMSE)
	}
}

func TestForestDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	x, y := linearData(rng, 50, 0.1)
	a := Forest{Trees: 10, Seed: 7}
	b := Forest{Trees: 10, Seed: 7}
	if err := a.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	q := []float64{0.3, -0.2}
	if a.Predict(q) != b.Predict(q) {
		t.Error("same seed produced different forests")
	}
}

func TestForestValidation(t *testing.T) {
	var f Forest
	if err := f.Fit(nil, nil); !errors.Is(err, ErrEmptyTrainingSet) {
		t.Errorf("empty err = %v", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Predict before Fit should panic")
			}
		}()
		f.Predict([]float64{1})
	}()
	if f.Name() != "FOREST" {
		t.Errorf("Name = %q", f.Name())
	}
}
