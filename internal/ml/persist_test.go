package ml

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// trainingSet builds a smooth nonlinear regression problem.
func trainingSet(n, dim int, seed int64) (x [][]float64, y []float64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		row := make([]float64, dim)
		for j := range row {
			row[j] = rng.Float64()*4 - 2
		}
		t := math.Sin(row[0]) + 0.5*row[dim-1]*row[dim-1] + 0.1*rng.NormFloat64()
		x = append(x, row)
		y = append(y, t)
	}
	return x, y
}

func TestSaveLoadRoundTripPredictions(t *testing.T) {
	x, y := trainingSet(40, 3, 1)
	probes, _ := trainingSet(25, 3, 2)

	models := []Regressor{
		&Linear{},
		&Tree{},
		&GPR{},
		&GPR{LinearVar: -1},
		&SVR{},
		&Forest{Trees: 7},
	}
	for _, m := range models {
		if err := m.Fit(x, y); err != nil {
			t.Fatalf("%s: fit: %v", m.Name(), err)
		}
		var buf bytes.Buffer
		if err := Save(&buf, m); err != nil {
			t.Fatalf("%s: save: %v", m.Name(), err)
		}
		loaded, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: load: %v", m.Name(), err)
		}
		if loaded.Name() != m.Name() {
			t.Fatalf("%s: loaded name %s", m.Name(), loaded.Name())
		}
		for i, p := range probes {
			want, got := m.Predict(p), loaded.Predict(p)
			if want != got {
				t.Fatalf("%s: probe %d prediction drifted: %v != %v (bit-exact required)",
					m.Name(), i, got, want)
			}
		}
	}
}

func TestSaveRejectsUnfitted(t *testing.T) {
	for _, m := range []Regressor{&Linear{}, &Tree{}, &GPR{}, &SVR{}, &Forest{}} {
		var buf bytes.Buffer
		if err := Save(&buf, m); err == nil {
			t.Errorf("%s: saving unfitted model succeeded", m.Name())
		}
	}
}

func TestLoadRejectsBadVersion(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte(`{"version":99,"model":{"kind":"LM"}}`))); err == nil {
		t.Fatal("version 99 accepted")
	}
	if _, err := Load(bytes.NewReader([]byte(`{"version":1,"model":{"kind":"LM"}}`))); err == nil {
		t.Fatal("payload-free state accepted")
	}
	if _, err := Load(bytes.NewReader([]byte(`not json`))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestMultiOutputRoundTrip(t *testing.T) {
	x, y1 := trainingSet(30, 3, 3)
	_, y2 := trainingSet(30, 3, 4)
	y := make([][]float64, len(x))
	for i := range y {
		y[i] = []float64{y1[i], y2[i]}
	}
	bank := NewMultiOutput(func() Regressor { return &GPR{} })
	if err := bank.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveMultiOutput(&buf, bank); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadMultiOutput(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Outputs() != bank.Outputs() {
		t.Fatalf("outputs %d != %d", loaded.Outputs(), bank.Outputs())
	}
	if loaded.Name() != bank.Name() {
		t.Fatalf("name %q != %q", loaded.Name(), bank.Name())
	}
	probes, _ := trainingSet(10, 3, 5)
	for _, p := range probes {
		want, got := bank.Predict(p), loaded.Predict(p)
		for j := range want {
			if want[j] != got[j] {
				t.Fatalf("output %d drifted: %v != %v", j, got[j], want[j])
			}
		}
	}
	// An unfitted bank refuses to snapshot.
	if _, err := NewMultiOutput(func() Regressor { return &Linear{} }).State(); err == nil {
		t.Fatal("unfitted bank snapshot succeeded")
	}
}
