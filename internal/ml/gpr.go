package ml

import (
	"math"

	"qaoaml/internal/linalg"
)

// GPR is Gaussian-process regression with a squared-exponential (RBF)
// kernel k(a,b) = σ_f²·exp(−‖a−b‖²/(2ℓ²)) plus observation noise σ_n².
// This is the paper's best-performing predictor model. Features and
// targets are standardized internally; hyperparameters can be tuned by
// maximizing the log marginal likelihood over a small grid (the default)
// or fixed by the caller.
type GPR struct {
	LengthScale float64 // ℓ; ≤ 0 selects by marginal likelihood
	SignalVar   float64 // σ_f²; ≤ 0 selects by marginal likelihood
	NoiseVar    float64 // σ_n²; ≤ 0 selects by marginal likelihood
	LinearVar   float64 // σ_l² of an additive dot-product kernel term:
	// 0 (default) disables it, > 0 fixes it, < 0 selects it by marginal
	// likelihood. The linear term lets the posterior mean extrapolate
	// linear trends instead of reverting to the prior mean — better on
	// in-distribution test points, but brittle under feature shift, so
	// it is opt-in (see EXPERIMENTS.md on the two-level flow).

	xTrain [][]float64
	alpha  linalg.Vector
	chol   *linalg.CholeskyDecomp
	xScale *Standardizer
	yMean  float64
	yStd   float64
	ell    float64 // chosen length scale (in standardized space)
	sf2    float64 // chosen signal variance
	sn2    float64 // chosen noise variance
	sl2    float64 // chosen linear-kernel variance
	logML  float64
	fitted bool
}

// Name implements Regressor.
func (g *GPR) Name() string { return "GPR" }

// LogMarginalLikelihood returns the training log marginal likelihood of
// the selected hyperparameters. It panics before Fit.
func (g *GPR) LogMarginalLikelihood() float64 {
	if !g.fitted {
		panic("ml: GPR.LogMarginalLikelihood before Fit")
	}
	return g.logML
}

// Hyperparameters returns the selected (ℓ, σ_f², σ_n²) in standardized
// feature/target space. It panics before Fit.
func (g *GPR) Hyperparameters() (lengthScale, signalVar, noiseVar float64) {
	if !g.fitted {
		panic("ml: GPR.Hyperparameters before Fit")
	}
	return g.ell, g.sf2, g.sn2
}

// Fit implements Regressor.
func (g *GPR) Fit(x [][]float64, y []float64) error {
	if _, err := checkTrainingData(x, y); err != nil {
		return err
	}
	g.xScale = NewStandardizer(x)
	xs := g.xScale.TransformAll(x)

	// Standardize targets.
	g.yMean, g.yStd = meanStd(y)
	if g.yStd == 0 {
		g.yStd = 1
	}
	ys := make(linalg.Vector, len(y))
	for i := range y {
		ys[i] = (y[i] - g.yMean) / g.yStd
	}

	// Candidate grids (standardized space) unless pinned by the caller.
	ells := []float64{0.3, 0.5, 1, 2, 4}
	if g.LengthScale > 0 {
		ells = []float64{g.LengthScale}
	}
	sf2s := []float64{0.5, 1, 2}
	if g.SignalVar > 0 {
		sf2s = []float64{g.SignalVar}
	}
	sn2s := []float64{1e-4, 1e-3, 1e-2, 1e-1}
	if g.NoiseVar > 0 {
		sn2s = []float64{g.NoiseVar}
	}
	sl2s := []float64{0} // default: pure RBF
	switch {
	case g.LinearVar > 0:
		sl2s = []float64{g.LinearVar}
	case g.LinearVar < 0:
		sl2s = []float64{0, 0.5, 2} // grid-select by marginal likelihood
	}

	bestML := math.Inf(-1)
	var bestChol *linalg.CholeskyDecomp
	var bestAlpha linalg.Vector
	var bestEll, bestSf2, bestSn2, bestSl2 float64
	for _, ell := range ells {
		for _, sf2 := range sf2s {
			for _, sl2 := range sl2s {
				k := g.kernelMatrix(xs, ell, sf2, sl2)
				for _, sn2 := range sn2s {
					kn := k.Clone().AddToDiag(sn2)
					ch, err := linalg.Cholesky(kn)
					if err != nil {
						continue
					}
					alpha := ch.Solve(ys)
					ml := -0.5*ys.Dot(alpha) - 0.5*ch.LogDet() - float64(len(ys))/2*math.Log(2*math.Pi)
					if ml > bestML {
						bestML, bestChol, bestAlpha = ml, ch, alpha
						bestEll, bestSf2, bestSn2, bestSl2 = ell, sf2, sn2, sl2
					}
				}
			}
		}
	}
	if bestChol == nil {
		return linalg.ErrNotPositiveDefinite
	}
	g.xTrain = xs
	g.chol = bestChol
	g.alpha = bestAlpha
	g.ell, g.sf2, g.sn2, g.sl2 = bestEll, bestSf2, bestSn2, bestSl2
	g.logML = bestML
	g.fitted = true
	return nil
}

// Predict implements Regressor (posterior mean).
func (g *GPR) Predict(x []float64) float64 {
	mean, _ := g.PredictWithVariance(x)
	return mean
}

// PredictWithVariance returns the posterior mean and variance at x
// (variance in original target units squared).
func (g *GPR) PredictWithVariance(x []float64) (mean, variance float64) {
	if !g.fitted {
		panic("ml: GPR.Predict before Fit")
	}
	xs := g.xScale.Transform(x)
	kstar := make(linalg.Vector, len(g.xTrain))
	for i, xt := range g.xTrain {
		kstar[i] = kernel(xs, xt, g.ell, g.sf2, g.sl2)
	}
	mu := kstar.Dot(g.alpha)
	v := linalg.SolveLowerTriangular(g.chol.L, kstar)
	varStd := kernel(xs, xs, g.ell, g.sf2, g.sl2) - v.Dot(v)
	if varStd < 0 {
		varStd = 0
	}
	return mu*g.yStd + g.yMean, varStd * g.yStd * g.yStd
}

func (g *GPR) kernelMatrix(xs [][]float64, ell, sf2, sl2 float64) *linalg.Matrix {
	n := len(xs)
	k := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		k.Set(i, i, kernel(xs[i], xs[i], ell, sf2, sl2))
		for j := i + 1; j < n; j++ {
			v := kernel(xs[i], xs[j], ell, sf2, sl2)
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
	}
	return k
}

// kernel is the RBF kernel plus an optional dot-product term.
func kernel(a, b []float64, ell, sf2, sl2 float64) float64 {
	v := rbf(a, b, ell, sf2)
	if sl2 > 0 {
		dot := 0.0
		for i := range a {
			dot += a[i] * b[i]
		}
		v += sl2 * dot
	}
	return v
}

// rbf is the squared-exponential kernel.
func rbf(a, b []float64, ell, sf2 float64) float64 {
	d2 := 0.0
	for i := range a {
		d := a[i] - b[i]
		d2 += d * d
	}
	return sf2 * math.Exp(-d2/(2*ell*ell))
}

// Standardizer centers and scales features to zero mean and unit
// variance (constant features keep scale 1).
type Standardizer struct {
	Mean, Std []float64
}

// NewStandardizer computes per-feature statistics from rows x.
func NewStandardizer(x [][]float64) *Standardizer {
	dim := len(x[0])
	s := &Standardizer{Mean: make([]float64, dim), Std: make([]float64, dim)}
	for j := 0; j < dim; j++ {
		col := make([]float64, len(x))
		for i := range x {
			col[i] = x[i][j]
		}
		m, sd := meanStd(col)
		if sd == 0 {
			sd = 1
		}
		s.Mean[j], s.Std[j] = m, sd
	}
	return s
}

// Transform returns the standardized copy of one feature vector.
func (s *Standardizer) Transform(x []float64) []float64 {
	out := make([]float64, len(x))
	for j := range x {
		out[j] = (x[j] - s.Mean[j]) / s.Std[j]
	}
	return out
}

// TransformAll standardizes every row.
func (s *Standardizer) TransformAll(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		out[i] = s.Transform(row)
	}
	return out
}

// Inverse undoes Transform for one vector.
func (s *Standardizer) Inverse(x []float64) []float64 {
	out := make([]float64, len(x))
	for j := range x {
		out[j] = x[j]*s.Std[j] + s.Mean[j]
	}
	return out
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, v := range xs {
		mean += v
	}
	mean /= float64(len(xs))
	for _, v := range xs {
		d := v - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}
