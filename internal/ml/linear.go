package ml

import (
	"qaoaml/internal/linalg"
)

// Linear is ordinary least-squares linear regression with an intercept,
// solved by Householder QR (numerically stable vs. normal equations).
// This is the paper's "LM" model.
type Linear struct {
	Coef      []float64 // feature weights, length = feature dim
	Intercept float64
	fitted    bool
}

// Name implements Regressor.
func (l *Linear) Name() string { return "LM" }

// Fit implements Regressor. Rank-deficient designs (e.g. constant
// features) fall back to ridge-stabilized normal equations so Fit still
// returns a usable model.
func (l *Linear) Fit(x [][]float64, y []float64) error {
	dim, err := checkTrainingData(x, y)
	if err != nil {
		return err
	}
	n := len(x)
	// Design matrix with a leading 1 column for the intercept.
	a := linalg.NewMatrix(n, dim+1)
	for i, row := range x {
		a.Set(i, 0, 1)
		for j, v := range row {
			a.Set(i, j+1, v)
		}
	}
	b := make(linalg.Vector, n)
	copy(b, y)

	var w linalg.Vector
	if n >= dim+1 {
		w, err = linalg.LeastSquares(a, b)
	}
	if n < dim+1 || err != nil {
		// Underdetermined or rank-deficient: ridge fallback.
		at := a.T()
		gram := at.Mul(a)
		gram.AddToDiag(1e-8)
		w, err = linalg.SolveSPD(gram, at.MulVec(b))
		if err != nil {
			return err
		}
	}
	l.Intercept = w[0]
	l.Coef = append([]float64(nil), w[1:]...)
	l.fitted = true
	return nil
}

// Predict implements Regressor.
func (l *Linear) Predict(x []float64) float64 {
	if !l.fitted {
		panic("ml: Linear.Predict before Fit")
	}
	if len(x) != len(l.Coef) {
		panic("ml: Linear.Predict feature dim mismatch")
	}
	out := l.Intercept
	for i, v := range x {
		out += l.Coef[i] * v
	}
	return out
}
