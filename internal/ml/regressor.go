// Package ml implements the four supervised regression models the paper
// evaluates as QAOA-parameter predictors — Gaussian-process regression
// (GPR), linear regression (LM), a CART regression tree (RTREE), and
// ε-insensitive support-vector regression (RSVM) — together with the
// regression metrics the paper compares them on (MSE, RMSE, MAE, R²,
// adjusted R²). It replaces the MATLAB Statistics and Machine Learning
// Toolbox in the original stack.
package ml

import (
	"errors"
	"fmt"
)

// Regressor is a single-output supervised regression model.
type Regressor interface {
	// Fit trains on rows X (one sample per row) and targets y.
	Fit(x [][]float64, y []float64) error
	// Predict returns the model output for one feature vector.
	// It panics if called before a successful Fit.
	Predict(x []float64) float64
	// Name identifies the model family, e.g. "GPR".
	Name() string
}

// ErrEmptyTrainingSet is returned by Fit on empty input.
var ErrEmptyTrainingSet = errors.New("ml: empty training set")

// ErrBadShape is returned by Fit when X and y disagree or rows are ragged.
var ErrBadShape = errors.New("ml: inconsistent training data shape")

// checkTrainingData validates the common Fit preconditions and returns
// the feature dimension.
func checkTrainingData(x [][]float64, y []float64) (dim int, err error) {
	if len(x) == 0 {
		return 0, ErrEmptyTrainingSet
	}
	if len(x) != len(y) {
		return 0, fmt.Errorf("%w: %d rows vs %d targets", ErrBadShape, len(x), len(y))
	}
	dim = len(x[0])
	if dim == 0 {
		return 0, fmt.Errorf("%w: zero-width feature rows", ErrBadShape)
	}
	for i, row := range x {
		if len(row) != dim {
			return 0, fmt.Errorf("%w: row %d has %d features, want %d", ErrBadShape, i, len(row), dim)
		}
	}
	return dim, nil
}

// PredictBatch applies r.Predict to every row.
func PredictBatch(r Regressor, x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		out[i] = r.Predict(row)
	}
	return out
}

// cloneRows deep-copies a feature matrix.
func cloneRows(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		out[i] = append([]float64(nil), row...)
	}
	return out
}
