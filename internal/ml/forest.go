package ml

import (
	"math/rand"
)

// Forest is a random-forest regressor: bootstrap-aggregated CART trees
// with per-tree feature subsampling. It is not one of the paper's four
// models; it is included as the natural upgrade of RTREE for users who
// want variance reduction without GPR's cubic cost.
type Forest struct {
	Trees       int   // ensemble size (default 50)
	MaxDepth    int   // per-tree depth cap (default 8)
	MinLeafSize int   // per-tree leaf size (default 3)
	Seed        int64 // bootstrap RNG seed (default 1)

	members []*Tree
	scales  [][]int // feature subset per member (indices into the row)
	dim     int
}

// Name implements Regressor.
func (f *Forest) Name() string { return "FOREST" }

// Fit implements Regressor.
func (f *Forest) Fit(x [][]float64, y []float64) error {
	dim, err := checkTrainingData(x, y)
	if err != nil {
		return err
	}
	trees := f.Trees
	if trees <= 0 {
		trees = 50
	}
	seed := f.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	n := len(x)

	// Feature subsample size: all features for low-dimensional rows
	// (dropping any would lose whole interactions), ~2/3 of them for
	// wider rows (bagging plus decorrelation).
	k := dim
	if dim > 3 {
		k = (2*dim + 2) / 3
	}

	f.members = make([]*Tree, trees)
	f.scales = make([][]int, trees)
	f.dim = dim
	for m := 0; m < trees; m++ {
		feats := rng.Perm(dim)[:k]
		bx := make([][]float64, n)
		by := make([]float64, n)
		for i := 0; i < n; i++ {
			src := rng.Intn(n) // bootstrap sample with replacement
			row := make([]float64, k)
			for j, fi := range feats {
				row[j] = x[src][fi]
			}
			bx[i] = row
			by[i] = y[src]
		}
		tree := &Tree{MaxDepth: f.MaxDepth, MinLeafSize: f.MinLeafSize}
		if err := tree.Fit(bx, by); err != nil {
			return err
		}
		f.members[m] = tree
		f.scales[m] = feats
	}
	return nil
}

// Predict implements Regressor (ensemble mean).
func (f *Forest) Predict(x []float64) float64 {
	if len(f.members) == 0 {
		panic("ml: Forest.Predict before Fit")
	}
	if len(x) != f.dim {
		panic("ml: Forest.Predict feature dim mismatch")
	}
	total := 0.0
	sub := make([]float64, 0, f.dim)
	for m, tree := range f.members {
		sub = sub[:0]
		for _, fi := range f.scales[m] {
			sub = append(sub, x[fi])
		}
		total += tree.Predict(sub)
	}
	return total / float64(len(f.members))
}
