package ml

import (
	"fmt"
	"math/rand"
)

// Dataset pairs feature rows with (possibly multi-column) target rows.
type Dataset struct {
	X [][]float64
	Y [][]float64
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.X) }

// Append adds one sample.
func (d *Dataset) Append(x, y []float64) {
	d.X = append(d.X, append([]float64(nil), x...))
	d.Y = append(d.Y, append([]float64(nil), y...))
}

// Validate checks shape consistency.
func (d *Dataset) Validate() error {
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("%w: %d feature rows vs %d target rows", ErrBadShape, len(d.X), len(d.Y))
	}
	if len(d.X) == 0 {
		return ErrEmptyTrainingSet
	}
	dx, dy := len(d.X[0]), len(d.Y[0])
	for i := range d.X {
		if len(d.X[i]) != dx || len(d.Y[i]) != dy {
			return fmt.Errorf("%w: ragged row %d", ErrBadShape, i)
		}
	}
	return nil
}

// Split shuffles the sample indices with rng and splits into train and
// test subsets with the given train fraction (the paper uses 20:80,
// i.e. trainFrac = 0.2). At least one sample lands on each side when
// the dataset has two or more samples. It panics for trainFrac outside
// (0, 1).
func (d *Dataset) Split(trainFrac float64, rng *rand.Rand) (train, test Dataset) {
	if trainFrac <= 0 || trainFrac >= 1 {
		panic(fmt.Sprintf("ml: train fraction %v out of (0,1)", trainFrac))
	}
	n := d.Len()
	idx := rng.Perm(n)
	nTrain := int(float64(n)*trainFrac + 0.5)
	if n >= 2 {
		if nTrain < 1 {
			nTrain = 1
		}
		if nTrain > n-1 {
			nTrain = n - 1
		}
	}
	for i, id := range idx {
		if i < nTrain {
			train.Append(d.X[id], d.Y[id])
		} else {
			test.Append(d.X[id], d.Y[id])
		}
	}
	return train, test
}

// Column extracts target column j.
func (d *Dataset) Column(j int) []float64 {
	col := make([]float64, len(d.Y))
	for i := range d.Y {
		col[i] = d.Y[i][j]
	}
	return col
}

// FeatureColumn extracts feature column j.
func (d *Dataset) FeatureColumn(j int) []float64 {
	col := make([]float64, len(d.X))
	for i := range d.X {
		col[i] = d.X[i][j]
	}
	return col
}
