package ml_test

import (
	"fmt"

	"qaoaml/internal/ml"
)

// Fit and query an ordinary least-squares model.
func ExampleLinear() {
	x := [][]float64{{0}, {1}, {2}, {3}}
	y := []float64{1, 3, 5, 7} // y = 2x + 1
	var lm ml.Linear
	if err := lm.Fit(x, y); err != nil {
		panic(err)
	}
	fmt.Printf("%.1f\n", lm.Predict([]float64{10}))
	// Output: 21.0
}

// Train one model per output column with MultiOutput.
func ExampleMultiOutput() {
	x := [][]float64{{0}, {1}, {2}, {3}}
	y := [][]float64{{0, 3}, {2, 2}, {4, 1}, {6, 0}} // y0 = 2x, y1 = 3 − x
	mo := ml.NewMultiOutput(func() ml.Regressor { return &ml.Linear{} })
	if err := mo.Fit(x, y); err != nil {
		panic(err)
	}
	out := mo.Predict([]float64{5})
	fmt.Printf("%.0f %.0f\n", out[0], out[1])
	// Output: 10 -2
}

// Compare predictions against ground truth with the paper's metrics.
func ExampleEvaluate() {
	actual := []float64{1, 2, 3, 4}
	pred := []float64{1.5, 2.5, 2.5, 3.5}
	m := ml.Evaluate(actual, pred, 1)
	fmt.Printf("MSE=%.2f MAE=%.2f R2=%.2f\n", m.MSE, m.MAE, m.R2)
	// Output: MSE=0.25 MAE=0.50 R2=0.80
}
