package ml

import (
	"math"
)

// SVR is ε-insensitive support-vector regression with an RBF kernel,
// the paper's "RSVM" model. The bias term is absorbed into the kernel
// (k' = k + 1, a standard reformulation that removes the dual equality
// constraint), and the resulting box-constrained piecewise-quadratic
// dual
//
//	min_β ½ βᵀK'β − yᵀβ + ε‖β‖₁   s.t. |βᵢ| ≤ C
//
// is solved by cyclic coordinate descent with an exact soft-threshold
// update per coordinate. Features and targets are standardized
// internally.
type SVR struct {
	C           float64 // box constraint (default 10)
	Epsilon     float64 // insensitive-tube half width (default 0.05)
	LengthScale float64 // RBF length scale in standardized space (default 1)
	MaxSweeps   int     // coordinate-descent sweeps (default 200)
	Tol         float64 // max coefficient change to stop (default 1e-6)

	xTrain [][]float64
	beta   []float64
	xScale *Standardizer
	yMean  float64
	yStd   float64
	fitted bool
}

// Name implements Regressor.
func (s *SVR) Name() string { return "RSVM" }

// SupportVectors returns the number of training points with nonzero
// dual coefficients. It panics before Fit.
func (s *SVR) SupportVectors() int {
	if !s.fitted {
		panic("ml: SVR.SupportVectors before Fit")
	}
	n := 0
	for _, b := range s.beta {
		if b != 0 {
			n++
		}
	}
	return n
}

// Fit implements Regressor.
func (s *SVR) Fit(x [][]float64, y []float64) error {
	if _, err := checkTrainingData(x, y); err != nil {
		return err
	}
	c := s.C
	if c <= 0 {
		c = 10
	}
	eps := s.Epsilon
	if eps <= 0 {
		eps = 0.05
	}
	ell := s.LengthScale
	if ell <= 0 {
		ell = 1
	}
	sweeps := s.MaxSweeps
	if sweeps <= 0 {
		sweeps = 200
	}
	tol := s.Tol
	if tol <= 0 {
		tol = 1e-6
	}

	s.xScale = NewStandardizer(x)
	xs := s.xScale.TransformAll(x)
	s.yMean, s.yStd = meanStd(y)
	if s.yStd == 0 {
		s.yStd = 1
	}
	ys := make([]float64, len(y))
	for i := range y {
		ys[i] = (y[i] - s.yMean) / s.yStd
	}

	n := len(xs)
	// Bias-augmented kernel matrix K' = K + 1.
	k := make([][]float64, n)
	for i := range k {
		k[i] = make([]float64, n)
		for j := 0; j <= i; j++ {
			v := rbf(xs[i], xs[j], ell, 1) + 1
			k[i][j] = v
			k[j][i] = v
		}
	}

	beta := make([]float64, n)
	// f[i] = Σ_j K'ij β_j, maintained incrementally.
	f := make([]float64, n)
	for sweep := 0; sweep < sweeps; sweep++ {
		maxDelta := 0.0
		for i := 0; i < n; i++ {
			// Residual excluding i's own contribution.
			r := ys[i] - (f[i] - k[i][i]*beta[i])
			// Exact minimizer of ½K'ii b² − r·b + ε|b| over [−C, C].
			var b float64
			switch {
			case r > eps:
				b = (r - eps) / k[i][i]
			case r < -eps:
				b = (r + eps) / k[i][i]
			default:
				b = 0
			}
			if b > c {
				b = c
			} else if b < -c {
				b = -c
			}
			if d := b - beta[i]; d != 0 {
				for j := 0; j < n; j++ {
					f[j] += d * k[i][j]
				}
				if ad := math.Abs(d); ad > maxDelta {
					maxDelta = ad
				}
				beta[i] = b
			}
		}
		if maxDelta < tol {
			break
		}
	}

	s.xTrain = xs
	s.beta = beta
	s.LengthScale = ell
	s.fitted = true
	return nil
}

// Predict implements Regressor.
func (s *SVR) Predict(x []float64) float64 {
	if !s.fitted {
		panic("ml: SVR.Predict before Fit")
	}
	xs := s.xScale.Transform(x)
	out := 0.0
	for i, xt := range s.xTrain {
		if s.beta[i] == 0 {
			continue
		}
		out += s.beta[i] * (rbf(xs, xt, s.LengthScale, 1) + 1)
	}
	return out*s.yStd + s.yMean
}
