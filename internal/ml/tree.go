package ml

import (
	"math"
	"sort"
)

// Tree is a CART regression tree grown by greedy variance-reduction
// splits, the paper's "RTREE" model.
type Tree struct {
	MaxDepth    int // default 8
	MinLeafSize int // default 3

	root   *treeNode
	dim    int
	fitted bool
}

type treeNode struct {
	feature     int     // split feature (leaf if left == nil)
	threshold   float64 // go left when x[feature] <= threshold
	value       float64 // leaf prediction (mean of targets)
	left, right *treeNode
}

// Name implements Regressor.
func (t *Tree) Name() string { return "RTREE" }

// Fit implements Regressor.
func (t *Tree) Fit(x [][]float64, y []float64) error {
	dim, err := checkTrainingData(x, y)
	if err != nil {
		return err
	}
	maxDepth := t.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 8
	}
	minLeaf := t.MinLeafSize
	if minLeaf <= 0 {
		minLeaf = 3
	}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	t.dim = dim
	t.root = grow(x, y, idx, maxDepth, minLeaf)
	t.fitted = true
	return nil
}

// Predict implements Regressor.
func (t *Tree) Predict(x []float64) float64 {
	if !t.fitted {
		panic("ml: Tree.Predict before Fit")
	}
	if len(x) != t.dim {
		panic("ml: Tree.Predict feature dim mismatch")
	}
	n := t.root
	for n.left != nil {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// Depth returns the tree height (a single leaf has depth 1).
func (t *Tree) Depth() int {
	if !t.fitted {
		return 0
	}
	return depthOf(t.root)
}

// Leaves returns the number of leaf nodes.
func (t *Tree) Leaves() int {
	if !t.fitted {
		return 0
	}
	return leavesOf(t.root)
}

func depthOf(n *treeNode) int {
	if n.left == nil {
		return 1
	}
	l, r := depthOf(n.left), depthOf(n.right)
	if r > l {
		l = r
	}
	return l + 1
}

func leavesOf(n *treeNode) int {
	if n.left == nil {
		return 1
	}
	return leavesOf(n.left) + leavesOf(n.right)
}

func grow(x [][]float64, y []float64, idx []int, depthLeft, minLeaf int) *treeNode {
	node := &treeNode{value: meanAt(y, idx)}
	if depthLeft <= 1 || len(idx) < 2*minLeaf || constantAt(y, idx) {
		return node
	}
	feature, threshold, ok := bestSplit(x, y, idx, minLeaf)
	if !ok {
		return node
	}
	var li, ri []int
	for _, i := range idx {
		if x[i][feature] <= threshold {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	if len(li) < minLeaf || len(ri) < minLeaf {
		return node
	}
	node.feature = feature
	node.threshold = threshold
	node.left = grow(x, y, li, depthLeft-1, minLeaf)
	node.right = grow(x, y, ri, depthLeft-1, minLeaf)
	return node
}

// bestSplit scans every feature and midpoint threshold for the split
// minimizing the weighted sum of child SSEs.
func bestSplit(x [][]float64, y []float64, idx []int, minLeaf int) (feature int, threshold float64, ok bool) {
	bestSSE := math.Inf(1)
	dim := len(x[idx[0]])
	order := make([]int, len(idx))
	for f := 0; f < dim; f++ {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return x[order[a]][f] < x[order[b]][f] })
		// Prefix sums over the sorted order for O(1) SSE evaluation.
		n := len(order)
		sum, sum2 := 0.0, 0.0
		prefix := make([]float64, n+1)
		prefix2 := make([]float64, n+1)
		for i, id := range order {
			sum += y[id]
			sum2 += y[id] * y[id]
			prefix[i+1] = sum
			prefix2[i+1] = sum2
		}
		for cut := minLeaf; cut <= n-minLeaf; cut++ {
			lo, hi := x[order[cut-1]][f], x[order[cut]][f]
			if lo == hi {
				continue // cannot separate equal feature values
			}
			nl, nr := float64(cut), float64(n-cut)
			sseL := prefix2[cut] - prefix[cut]*prefix[cut]/nl
			sseR := (prefix2[n] - prefix2[cut]) - (prefix[n]-prefix[cut])*(prefix[n]-prefix[cut])/nr
			if sse := sseL + sseR; sse < bestSSE {
				bestSSE = sse
				feature = f
				threshold = (lo + hi) / 2
				ok = true
			}
		}
	}
	return feature, threshold, ok
}

func meanAt(y []float64, idx []int) float64 {
	s := 0.0
	for _, i := range idx {
		s += y[i]
	}
	return s / float64(len(idx))
}

func constantAt(y []float64, idx []int) bool {
	for _, i := range idx[1:] {
		if y[i] != y[idx[0]] {
			return false
		}
	}
	return true
}
