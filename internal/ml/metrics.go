package ml

import (
	"fmt"
	"math"
)

// Metrics bundles the regression quality measures the paper compares
// its four models on (Sec. III-C): MSE, RMSE, MAE, R², adjusted R².
type Metrics struct {
	MSE, RMSE, MAE float64
	R2, R2Adj      float64
	N              int // samples
	P              int // predictors, for the R² adjustment
}

// Evaluate computes Metrics from actual/predicted pairs; p is the
// number of predictor variables used by the model (for adjusted R²).
// It panics on length mismatch or empty input.
func Evaluate(actual, predicted []float64, p int) Metrics {
	if len(actual) != len(predicted) {
		panic(fmt.Sprintf("ml: metrics length mismatch %d != %d", len(actual), len(predicted)))
	}
	n := len(actual)
	if n == 0 {
		panic("ml: metrics on empty data")
	}
	var sse, sae float64
	mean := 0.0
	for _, a := range actual {
		mean += a
	}
	mean /= float64(n)
	var sst float64
	for i := range actual {
		e := predicted[i] - actual[i]
		sse += e * e
		sae += math.Abs(e)
		d := actual[i] - mean
		sst += d * d
	}
	m := Metrics{
		MSE:  sse / float64(n),
		RMSE: math.Sqrt(sse / float64(n)),
		MAE:  sae / float64(n),
		N:    n,
		P:    p,
	}
	if sst > 0 {
		m.R2 = 1 - sse/sst
	} else {
		m.R2 = math.NaN()
	}
	if n-p-1 > 0 && !math.IsNaN(m.R2) {
		m.R2Adj = 1 - (1-m.R2)*float64(n-1)/float64(n-p-1)
	} else {
		m.R2Adj = math.NaN()
	}
	return m
}

// Better reports whether m dominates o the way the paper ranks models:
// lower MSE, RMSE and MAE, higher R² and adjusted R². Ties on MSE fall
// through to RMSE, then MAE, then R².
func (m Metrics) Better(o Metrics) bool {
	switch {
	case m.MSE != o.MSE:
		return m.MSE < o.MSE
	case m.RMSE != o.RMSE:
		return m.RMSE < o.RMSE
	case m.MAE != o.MAE:
		return m.MAE < o.MAE
	default:
		return m.R2 > o.R2
	}
}

// String renders the metrics in one line.
func (m Metrics) String() string {
	return fmt.Sprintf("MSE=%.5g RMSE=%.5g MAE=%.5g R2=%.4f R2adj=%.4f (n=%d, p=%d)",
		m.MSE, m.RMSE, m.MAE, m.R2, m.R2Adj, m.N, m.P)
}
