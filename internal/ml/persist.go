package ml

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"qaoaml/internal/linalg"
)

// Model persistence: versioned JSON snapshots of trained regressors,
// mirroring the dataset Save/Load in core/persist.go. The serialized
// state is the exact fitted state — standardizers, dual coefficients,
// Cholesky factors — so a loaded model's Predict is bit-identical to the
// original's (same float operations in the same order), which the model
// registry in internal/server relies on for cache coherence.

// ModelFileVersion is the schema version written by Save.
const ModelFileVersion = 1

// modelFile is the on-disk envelope for a single regressor.
type modelFile struct {
	Version int        `json:"version"`
	Model   modelState `json:"model"`
}

// modelState is a tagged union over the supported model families.
type modelState struct {
	Kind   string       `json:"kind"` // Name() of the model: LM, RTREE, GPR, RSVM, FOREST
	Linear *linearState `json:"linear,omitempty"`
	Tree   *treeState   `json:"tree,omitempty"`
	GPR    *gprState    `json:"gpr,omitempty"`
	SVR    *svrState    `json:"svr,omitempty"`
	Forest *forestState `json:"forest,omitempty"`
}

type linearState struct {
	Coef      []float64 `json:"coef"`
	Intercept float64   `json:"intercept"`
}

// flatNode is one tree node in breadth-agnostic preorder; Left/Right are
// indices into the node slice, -1 for leaves.
type flatNode struct {
	Feature   int     `json:"f"`
	Threshold float64 `json:"t"`
	Value     float64 `json:"v"`
	Left      int     `json:"l"`
	Right     int     `json:"r"`
}

type treeState struct {
	MaxDepth    int        `json:"max_depth,omitempty"`
	MinLeafSize int        `json:"min_leaf_size,omitempty"`
	Dim         int        `json:"dim"`
	Nodes       []flatNode `json:"nodes"`
}

type matrixState struct {
	Rows int       `json:"rows"`
	Cols int       `json:"cols"`
	Data []float64 `json:"data"`
}

type standardizerState struct {
	Mean []float64 `json:"mean"`
	Std  []float64 `json:"std"`
}

type gprState struct {
	XTrain [][]float64       `json:"x_train"`
	Alpha  []float64         `json:"alpha"`
	CholL  matrixState       `json:"chol_l"`
	XScale standardizerState `json:"x_scale"`
	YMean  float64           `json:"y_mean"`
	YStd   float64           `json:"y_std"`
	Ell    float64           `json:"ell"`
	Sf2    float64           `json:"sf2"`
	Sn2    float64           `json:"sn2"`
	Sl2    float64           `json:"sl2"`
	LogML  float64           `json:"log_ml"`
}

type svrState struct {
	C           float64           `json:"c,omitempty"`
	Epsilon     float64           `json:"epsilon,omitempty"`
	LengthScale float64           `json:"length_scale"`
	MaxSweeps   int               `json:"max_sweeps,omitempty"`
	Tol         float64           `json:"tol,omitempty"`
	XTrain      [][]float64       `json:"x_train"`
	Beta        []float64         `json:"beta"`
	XScale      standardizerState `json:"x_scale"`
	YMean       float64           `json:"y_mean"`
	YStd        float64           `json:"y_std"`
}

type forestState struct {
	Trees       int         `json:"trees,omitempty"`
	MaxDepth    int         `json:"max_depth,omitempty"`
	MinLeafSize int         `json:"min_leaf_size,omitempty"`
	Seed        int64       `json:"seed,omitempty"`
	Dim         int         `json:"dim"`
	Members     []treeState `json:"members"`
	Scales      [][]int     `json:"scales"`
}

// Save writes a trained regressor as versioned JSON. Supported families:
// Linear, Tree, GPR, SVR, Forest. Unfitted models and unknown
// implementations are rejected.
func Save(w io.Writer, r Regressor) error {
	st, err := encodeRegressor(r)
	if err != nil {
		return err
	}
	return json.NewEncoder(w).Encode(modelFile{Version: ModelFileVersion, Model: st})
}

// SaveFile writes the model to path.
func SaveFile(path string, r Regressor) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := Save(f, r); err != nil {
		return err
	}
	return f.Close()
}

// Load reads a model previously written by Save. The returned regressor
// predicts bit-identically to the one saved.
func Load(rd io.Reader) (Regressor, error) {
	var mf modelFile
	if err := json.NewDecoder(rd).Decode(&mf); err != nil {
		return nil, fmt.Errorf("ml: decoding model: %w", err)
	}
	if mf.Version != ModelFileVersion {
		return nil, fmt.Errorf("ml: unsupported model version %d (want %d)", mf.Version, ModelFileVersion)
	}
	return decodeRegressor(mf.Model)
}

// LoadFile reads a model from path.
func LoadFile(path string) (Regressor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// FactoryFor returns a fresh-model constructor for a family name as
// reported by Regressor.Name (LM, RTREE, GPR, RSVM, FOREST).
func FactoryFor(name string) (func() Regressor, bool) {
	switch name {
	case "LM":
		return func() Regressor { return &Linear{} }, true
	case "RTREE":
		return func() Regressor { return &Tree{} }, true
	case "GPR":
		return func() Regressor { return &GPR{} }, true
	case "RSVM":
		return func() Regressor { return &SVR{} }, true
	case "FOREST":
		return func() Regressor { return &Forest{} }, true
	}
	return nil, false
}

func encodeRegressor(r Regressor) (modelState, error) {
	switch m := r.(type) {
	case *Linear:
		if !m.fitted {
			return modelState{}, fmt.Errorf("ml: cannot save unfitted %s model", m.Name())
		}
		return modelState{Kind: m.Name(), Linear: &linearState{
			Coef:      append([]float64(nil), m.Coef...),
			Intercept: m.Intercept,
		}}, nil
	case *Tree:
		if !m.fitted {
			return modelState{}, fmt.Errorf("ml: cannot save unfitted %s model", m.Name())
		}
		st := encodeTree(m)
		return modelState{Kind: m.Name(), Tree: &st}, nil
	case *GPR:
		if !m.fitted {
			return modelState{}, fmt.Errorf("ml: cannot save unfitted %s model", m.Name())
		}
		return modelState{Kind: m.Name(), GPR: &gprState{
			XTrain: cloneRows(m.xTrain),
			Alpha:  append([]float64(nil), m.alpha...),
			CholL:  encodeMatrix(m.chol.L),
			XScale: encodeStandardizer(m.xScale),
			YMean:  m.yMean, YStd: m.yStd,
			Ell: m.ell, Sf2: m.sf2, Sn2: m.sn2, Sl2: m.sl2,
			LogML: m.logML,
		}}, nil
	case *SVR:
		if !m.fitted {
			return modelState{}, fmt.Errorf("ml: cannot save unfitted %s model", m.Name())
		}
		return modelState{Kind: m.Name(), SVR: &svrState{
			C: m.C, Epsilon: m.Epsilon, LengthScale: m.LengthScale,
			MaxSweeps: m.MaxSweeps, Tol: m.Tol,
			XTrain: cloneRows(m.xTrain),
			Beta:   append([]float64(nil), m.beta...),
			XScale: encodeStandardizer(m.xScale),
			YMean:  m.yMean, YStd: m.yStd,
		}}, nil
	case *Forest:
		if len(m.members) == 0 {
			return modelState{}, fmt.Errorf("ml: cannot save unfitted %s model", m.Name())
		}
		fs := forestState{
			Trees: m.Trees, MaxDepth: m.MaxDepth, MinLeafSize: m.MinLeafSize,
			Seed: m.Seed, Dim: m.dim,
		}
		for i, tree := range m.members {
			fs.Members = append(fs.Members, encodeTree(tree))
			fs.Scales = append(fs.Scales, append([]int(nil), m.scales[i]...))
		}
		return modelState{Kind: m.Name(), Forest: &fs}, nil
	}
	return modelState{}, fmt.Errorf("ml: model %q does not support persistence", r.Name())
}

func decodeRegressor(st modelState) (Regressor, error) {
	switch {
	case st.Linear != nil:
		return &Linear{
			Coef:      append([]float64(nil), st.Linear.Coef...),
			Intercept: st.Linear.Intercept,
			fitted:    true,
		}, nil
	case st.Tree != nil:
		return decodeTree(*st.Tree)
	case st.GPR != nil:
		s := st.GPR
		l, err := decodeMatrix(s.CholL)
		if err != nil {
			return nil, fmt.Errorf("ml: GPR Cholesky factor: %w", err)
		}
		if len(s.Alpha) != len(s.XTrain) || l.Rows != len(s.XTrain) {
			return nil, fmt.Errorf("ml: GPR state shapes disagree (%d points, %d alpha, %d×%d L)",
				len(s.XTrain), len(s.Alpha), l.Rows, l.Cols)
		}
		return &GPR{
			xTrain: cloneRows(s.XTrain),
			alpha:  append(linalg.Vector(nil), s.Alpha...),
			chol:   &linalg.CholeskyDecomp{L: l},
			xScale: decodeStandardizer(s.XScale),
			yMean:  s.YMean, yStd: s.YStd,
			ell: s.Ell, sf2: s.Sf2, sn2: s.Sn2, sl2: s.Sl2,
			logML:  s.LogML,
			fitted: true,
		}, nil
	case st.SVR != nil:
		s := st.SVR
		if len(s.Beta) != len(s.XTrain) {
			return nil, fmt.Errorf("ml: SVR state shapes disagree (%d points, %d beta)", len(s.XTrain), len(s.Beta))
		}
		if s.LengthScale <= 0 {
			return nil, fmt.Errorf("ml: SVR length scale %v not positive", s.LengthScale)
		}
		return &SVR{
			C: s.C, Epsilon: s.Epsilon, LengthScale: s.LengthScale,
			MaxSweeps: s.MaxSweeps, Tol: s.Tol,
			xTrain: cloneRows(s.XTrain),
			beta:   append([]float64(nil), s.Beta...),
			xScale: decodeStandardizer(s.XScale),
			yMean:  s.YMean, yStd: s.YStd,
			fitted: true,
		}, nil
	case st.Forest != nil:
		s := st.Forest
		if len(s.Members) == 0 || len(s.Members) != len(s.Scales) {
			return nil, fmt.Errorf("ml: forest state has %d members but %d feature subsets", len(s.Members), len(s.Scales))
		}
		f := &Forest{
			Trees: s.Trees, MaxDepth: s.MaxDepth, MinLeafSize: s.MinLeafSize,
			Seed: s.Seed, dim: s.Dim,
		}
		for i, ts := range s.Members {
			tree, err := decodeTree(ts)
			if err != nil {
				return nil, fmt.Errorf("ml: forest member %d: %w", i, err)
			}
			f.members = append(f.members, tree)
			f.scales = append(f.scales, append([]int(nil), s.Scales[i]...))
		}
		return f, nil
	}
	return nil, fmt.Errorf("ml: model state of kind %q has no payload", st.Kind)
}

// encodeTree flattens the node graph into a preorder slice.
func encodeTree(t *Tree) treeState {
	st := treeState{MaxDepth: t.MaxDepth, MinLeafSize: t.MinLeafSize, Dim: t.dim}
	var flatten func(n *treeNode) int
	flatten = func(n *treeNode) int {
		at := len(st.Nodes)
		st.Nodes = append(st.Nodes, flatNode{
			Feature: n.feature, Threshold: n.threshold, Value: n.value, Left: -1, Right: -1,
		})
		if n.left != nil {
			l := flatten(n.left)
			r := flatten(n.right)
			st.Nodes[at].Left, st.Nodes[at].Right = l, r
		}
		return at
	}
	flatten(t.root)
	return st
}

func decodeTree(st treeState) (*Tree, error) {
	if len(st.Nodes) == 0 {
		return nil, fmt.Errorf("ml: tree state has no nodes")
	}
	nodes := make([]*treeNode, len(st.Nodes))
	for i, fn := range st.Nodes {
		nodes[i] = &treeNode{feature: fn.Feature, threshold: fn.Threshold, value: fn.Value}
	}
	for i, fn := range st.Nodes {
		if (fn.Left < 0) != (fn.Right < 0) {
			return nil, fmt.Errorf("ml: tree node %d has exactly one child", i)
		}
		if fn.Left >= 0 {
			if fn.Left >= len(nodes) || fn.Right >= len(nodes) || fn.Left == i || fn.Right == i {
				return nil, fmt.Errorf("ml: tree node %d has out-of-range children (%d, %d)", i, fn.Left, fn.Right)
			}
			nodes[i].left, nodes[i].right = nodes[fn.Left], nodes[fn.Right]
		}
	}
	return &Tree{
		MaxDepth: st.MaxDepth, MinLeafSize: st.MinLeafSize,
		root: nodes[0], dim: st.Dim, fitted: true,
	}, nil
}

func encodeMatrix(m *linalg.Matrix) matrixState {
	return matrixState{Rows: m.Rows, Cols: m.Cols, Data: append([]float64(nil), m.Data...)}
}

func decodeMatrix(st matrixState) (*linalg.Matrix, error) {
	if st.Rows < 0 || st.Cols < 0 || len(st.Data) != st.Rows*st.Cols {
		return nil, fmt.Errorf("ml: matrix state %d×%d with %d entries", st.Rows, st.Cols, len(st.Data))
	}
	m := linalg.NewMatrix(st.Rows, st.Cols)
	copy(m.Data, st.Data)
	return m, nil
}

func encodeStandardizer(s *Standardizer) standardizerState {
	return standardizerState{
		Mean: append([]float64(nil), s.Mean...),
		Std:  append([]float64(nil), s.Std...),
	}
}

func decodeStandardizer(st standardizerState) *Standardizer {
	return &Standardizer{
		Mean: append([]float64(nil), st.Mean...),
		Std:  append([]float64(nil), st.Std...),
	}
}

// MultiOutputState is the JSON-serializable state of a trained
// MultiOutput bank; core embeds it in predictor files.
type MultiOutputState struct {
	Models []modelState `json:"models"`
}

// State snapshots the trained bank. It errors before Fit.
func (m *MultiOutput) State() (MultiOutputState, error) {
	if len(m.models) == 0 {
		return MultiOutputState{}, fmt.Errorf("ml: cannot save unfitted multi-output bank")
	}
	var st MultiOutputState
	for j, mod := range m.models {
		ms, err := encodeRegressor(mod)
		if err != nil {
			return MultiOutputState{}, fmt.Errorf("ml: output %d: %w", j, err)
		}
		st.Models = append(st.Models, ms)
	}
	return st, nil
}

// MultiOutputFromState rebuilds a trained bank from its snapshot. The
// bank's model factory is reconstructed from the first model's family.
func MultiOutputFromState(st MultiOutputState) (*MultiOutput, error) {
	if len(st.Models) == 0 {
		return nil, fmt.Errorf("ml: multi-output state has no models")
	}
	factory, ok := FactoryFor(st.Models[0].Kind)
	if !ok {
		return nil, fmt.Errorf("ml: unknown model family %q", st.Models[0].Kind)
	}
	bank := NewMultiOutput(factory)
	for j, ms := range st.Models {
		mod, err := decodeRegressor(ms)
		if err != nil {
			return nil, fmt.Errorf("ml: output %d: %w", j, err)
		}
		bank.models = append(bank.models, mod)
	}
	return bank, nil
}

// SaveMultiOutput writes a trained bank as versioned JSON.
func SaveMultiOutput(w io.Writer, m *MultiOutput) error {
	st, err := m.State()
	if err != nil {
		return err
	}
	return json.NewEncoder(w).Encode(struct {
		Version int              `json:"version"`
		Bank    MultiOutputState `json:"bank"`
	}{Version: ModelFileVersion, Bank: st})
}

// LoadMultiOutput reads a bank previously written by SaveMultiOutput.
func LoadMultiOutput(rd io.Reader) (*MultiOutput, error) {
	var mf struct {
		Version int              `json:"version"`
		Bank    MultiOutputState `json:"bank"`
	}
	if err := json.NewDecoder(rd).Decode(&mf); err != nil {
		return nil, fmt.Errorf("ml: decoding multi-output bank: %w", err)
	}
	if mf.Version != ModelFileVersion {
		return nil, fmt.Errorf("ml: unsupported model version %d (want %d)", mf.Version, ModelFileVersion)
	}
	return MultiOutputFromState(mf.Bank)
}
