package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTraceCap bounds how many iteration events a Memory sink
// retains (full paper-scale dataset generation emits millions).
const DefaultTraceCap = 4096

// Memory is a thread-safe in-memory Recorder. Counters and histograms
// are created lazily on first use (histograms with DefaultBuckets
// unless DefineBuckets customized the name); iteration events are
// retained up to a cap, after which they are counted as dropped; spans
// are aggregated into per-name count/total-duration statistics.
type Memory struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	hists    map[string]*Histogram
	bounds   map[string][]float64 // per-name bucket layouts
	trace    []IterEvent
	traceCap int
	dropped  int64 // atomic; events beyond traceCap
	spans    map[string]*spanStats
}

type spanStats struct {
	count   int64
	totalNs int64
}

// NewMemory returns an empty sink with the default trace cap.
func NewMemory() *Memory {
	return &Memory{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
		bounds:   make(map[string][]float64),
		spans:    make(map[string]*spanStats),
		traceCap: DefaultTraceCap,
	}
}

// SetTraceCap changes how many iteration events are retained (≤ 0
// disables the trace entirely). Call before recording starts.
func (m *Memory) SetTraceCap(n int) {
	m.mu.Lock()
	m.traceCap = n
	m.mu.Unlock()
}

// DefineBuckets fixes the bucket layout the named histogram will use
// when first observed. It has no effect once the histogram exists.
func (m *Memory) DefineBuckets(name string, edges []float64) {
	m.mu.Lock()
	m.bounds[name] = append([]float64(nil), edges...)
	m.mu.Unlock()
}

// Iteration implements Recorder.
func (m *Memory) Iteration(ev IterEvent) {
	m.mu.Lock()
	if len(m.trace) < m.traceCap {
		m.trace = append(m.trace, ev)
		m.mu.Unlock()
		return
	}
	m.mu.Unlock()
	atomic.AddInt64(&m.dropped, 1)
}

// Count implements Recorder.
func (m *Memory) Count(name string, delta int64) {
	m.counter(name).Add(delta)
}

// Observe implements Recorder.
func (m *Memory) Observe(name string, v float64) {
	m.histogram(name).Observe(v)
}

// Span implements Recorder. The returned end function aggregates the
// elapsed wall time under the span name.
func (m *Memory) Span(name string) func() {
	start := time.Now()
	return func() {
		d := time.Since(start)
		m.mu.Lock()
		s := m.spans[name]
		if s == nil {
			s = &spanStats{}
			m.spans[name] = s
		}
		s.count++
		s.totalNs += d.Nanoseconds()
		m.mu.Unlock()
	}
}

// counter returns the named counter, creating it if needed.
func (m *Memory) counter(name string) *Counter {
	m.mu.RLock()
	c := m.counters[name]
	m.mu.RUnlock()
	if c != nil {
		return c
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if c = m.counters[name]; c == nil {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it (with the defined
// or default bucket layout) if needed.
func (m *Memory) histogram(name string) *Histogram {
	m.mu.RLock()
	h := m.hists[name]
	m.mu.RUnlock()
	if h != nil {
		return h
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if h = m.hists[name]; h == nil {
		edges := m.bounds[name]
		if edges == nil {
			edges = DefaultBuckets()
		}
		h = NewHistogram(edges)
		m.hists[name] = h
	}
	return h
}

// CounterValue returns the named counter's value (0 if never written).
func (m *Memory) CounterValue(name string) int64 {
	m.mu.RLock()
	c := m.counters[name]
	m.mu.RUnlock()
	if c == nil {
		return 0
	}
	return c.Value()
}

// HistogramSnapshot returns the named histogram's snapshot and whether
// it exists.
func (m *Memory) HistogramSnapshot(name string) (HistogramSnapshot, bool) {
	m.mu.RLock()
	h := m.hists[name]
	m.mu.RUnlock()
	if h == nil {
		return HistogramSnapshot{}, false
	}
	return h.Snapshot(), true
}

// Trace returns a copy of the retained iteration events.
func (m *Memory) Trace() []IterEvent {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]IterEvent(nil), m.trace...)
}

// SpanSnapshot summarizes one aggregated span name.
type SpanSnapshot struct {
	Count   int64   `json:"count"`
	TotalMs float64 `json:"total_ms"`
	MeanMs  float64 `json:"mean_ms"`
}

// Snapshot is the JSON-serializable state of a Memory sink.
type Snapshot struct {
	Counters     map[string]int64             `json:"counters,omitempty"`
	Histograms   map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Spans        map[string]SpanSnapshot      `json:"spans,omitempty"`
	Trace        []IterEvent                  `json:"trace,omitempty"`
	TraceDropped int64                        `json:"trace_dropped,omitempty"`
}

// Snapshot captures the full sink state.
func (m *Memory) Snapshot() Snapshot {
	m.mu.RLock()
	defer m.mu.RUnlock()
	s := Snapshot{
		Counters:     make(map[string]int64, len(m.counters)),
		Histograms:   make(map[string]HistogramSnapshot, len(m.hists)),
		Spans:        make(map[string]SpanSnapshot, len(m.spans)),
		Trace:        append([]IterEvent(nil), m.trace...),
		TraceDropped: atomic.LoadInt64(&m.dropped),
	}
	for name, c := range m.counters {
		s.Counters[name] = c.Value()
	}
	for name, h := range m.hists {
		s.Histograms[name] = h.Snapshot()
	}
	for name, sp := range m.spans {
		total := float64(sp.totalNs) / 1e6
		snap := SpanSnapshot{Count: sp.count, TotalMs: total}
		if sp.count > 0 {
			snap.MeanMs = total / float64(sp.count)
		}
		s.Spans[name] = snap
	}
	return s
}

// WriteJSON writes the indented JSON snapshot to w.
func (m *Memory) WriteJSON(w io.Writer) error {
	blob, err := json.MarshalIndent(m.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	_, err = w.Write(blob)
	return err
}
