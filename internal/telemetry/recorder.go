package telemetry

// IterEvent is one optimizer iteration trace point. The producers emit
// the state *entering* iteration Iter, so NFev is the cumulative
// function-evaluation count at that moment and the last event of a run
// shows the cost of everything before the final step.
//
// GNorm and Step are per-algorithm convergence signals: the projected
// gradient ∞-norm and line-search step for the gradient methods
// (L-BFGS-B, SLSQP), the simplex function-value spread and diameter for
// Nelder-Mead, the model spread and trust-region radius for COBYLA, and
// the previous pseudo-gradient ∞-norm and gain a_k for SPSA. All values
// are finite (never NaN/Inf) so events marshal to JSON.
type IterEvent struct {
	Source string  `json:"source"` // optimizer name, e.g. "L-BFGS-B"
	Iter   int     `json:"iter"`   // 0-based outer iteration
	F      float64 `json:"f"`      // incumbent objective value
	GNorm  float64 `json:"gnorm"`  // gradient-like convergence signal
	Step   float64 `json:"step"`   // step-size-like progress signal
	NFev   int     `json:"nfev"`   // cumulative function evaluations
}

// Recorder receives telemetry from producers. Implementations must be
// safe for concurrent use: dataset generation shares one Recorder
// across all worker goroutines.
//
// Method contracts:
//
//   - Iteration receives per-iteration optimizer traces.
//   - Count adds delta to the named counter.
//   - Observe records a sample into the named histogram.
//   - Span marks the start of a named region and returns the function
//     that ends it; sinks typically aggregate count and duration.
//
// The no-op implementation (Nop) must not allocate on any path, so
// recording can stay enabled unconditionally in hot loops.
type Recorder interface {
	Iteration(ev IterEvent)
	Count(name string, delta int64)
	Observe(name string, v float64)
	Span(name string) (end func())
}

// Nop is the zero-cost Recorder: every method is an empty body and
// Span returns a shared closed-over no-op, so no call allocates.
type Nop struct{}

var _ Recorder = Nop{}

var nopEnd = func() {}

// Iteration implements Recorder.
func (Nop) Iteration(IterEvent) {}

// Count implements Recorder.
func (Nop) Count(string, int64) {}

// Observe implements Recorder.
func (Nop) Observe(string, float64) {}

// Span implements Recorder.
func (Nop) Span(string) func() { return nopEnd }

// OrNop returns rec, or Nop if rec is nil — the standard way producers
// default an optional Recorder argument.
func OrNop(rec Recorder) Recorder {
	if rec == nil {
		return Nop{}
	}
	return rec
}

// tee forwards everything to the primary Recorder and additionally
// copies Iteration events to a callback. It is how a consumer taps the
// per-iteration trace stream of one producer (e.g. to stream optimizer
// progress to a waiting client) without forking the counter and
// histogram aggregation away from the shared sink.
type tee struct {
	Recorder
	onIter func(IterEvent)
}

// Tee returns a Recorder that behaves exactly like primary, except that
// every Iteration event is also passed to onIter (after the primary has
// seen it). onIter must be safe for concurrent use if the producer is
// concurrent. A nil onIter returns primary unchanged.
func Tee(primary Recorder, onIter func(IterEvent)) Recorder {
	primary = OrNop(primary)
	if onIter == nil {
		return primary
	}
	return tee{Recorder: primary, onIter: onIter}
}

// Iteration implements Recorder.
func (t tee) Iteration(ev IterEvent) {
	t.Recorder.Iteration(ev)
	t.onIter(ev)
}
