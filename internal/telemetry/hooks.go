package telemetry

import (
	"context"
	"expvar"
	"runtime/pprof"
)

// PublishExpvar registers a live view of the sink under the given
// expvar name (served at /debug/vars when net/http/pprof or expvar's
// handler is mounted). Each scrape re-snapshots the sink. It returns
// false — instead of panicking, as expvar.Publish would — if the name
// is already taken, so tests and restarted components can call it
// unconditionally.
func (m *Memory) PublishExpvar(name string) bool {
	if expvar.Get(name) != nil {
		return false
	}
	expvar.Publish(name, expvar.Func(func() any { return m.Snapshot() }))
	return true
}

// PprofDo runs fn with the span name attached as a pprof label
// ("telemetry_span"), so CPU profiles taken during long flows (dataset
// generation, two-level solves) attribute samples to pipeline stages.
func PprofDo(ctx context.Context, span string, fn func(context.Context)) {
	pprof.Do(ctx, pprof.Labels("telemetry_span", span), fn)
}
