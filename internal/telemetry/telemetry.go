// Package telemetry is a dependency-free metrics and tracing layer for
// the QAOA pipeline. The paper's headline metric is function-call count
// (44.9 % average FC reduction, Table I), and related iteration-free /
// warm-start work (Amosy et al., arXiv:2208.09888; Xie et al.,
// arXiv:2211.09513) measures the same iteration/FC trade-off — so
// per-iteration optimizer traces and FC/latency histograms are product
// data here, not debug noise.
//
// The package provides three layers:
//
//   - Primitives: atomic Counter, fixed-bucket Histogram (lock-free
//     Observe), and histogram-backed timers.
//   - The Recorder interface: the hook every producer (optimizers,
//     dataset generation, the two-level flow) emits into. Nop is the
//     zero-cost default; Memory is a thread-safe in-memory sink whose
//     Snapshot serializes to JSON.
//   - Process hooks: expvar publication of a live Memory snapshot and a
//     pprof-label helper for attributing CPU profiles to flow spans.
//
// Everything is stdlib-only and safe for concurrent use unless noted.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Counter is a monotonically adjustable atomic counter.
type Counter struct {
	v int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { atomic.AddInt64(&c.v, delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return atomic.LoadInt64(&c.v) }

// Histogram is a fixed-bucket histogram with lock-free observation.
// Bounds are inclusive upper edges of the finite buckets; one implicit
// overflow bucket collects everything above the last edge. NaN
// observations are dropped (they would poison Sum).
type Histogram struct {
	bounds  []float64
	counts  []int64 // len(bounds)+1; last is the overflow bucket
	total   int64
	sumBits uint64 // float64 bits, CAS-updated
}

// NewHistogram builds a histogram over the given strictly increasing
// finite upper edges. It panics on empty, unsorted or non-finite edges.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket edge")
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic(fmt.Sprintf("telemetry: bucket edge %d is not finite", i))
		}
		if i > 0 && bounds[i-1] >= b {
			panic(fmt.Sprintf("telemetry: bucket edges not strictly increasing at %d", i))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]int64, len(bounds)+1),
	}
}

// ExpBuckets returns n exponentially spaced edges start, start·factor,
// start·factor², … — the usual layout for latencies and call counts.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("telemetry: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	edges := make([]float64, n)
	v := start
	for i := range edges {
		edges[i] = v
		v *= factor
	}
	return edges
}

// DefaultBuckets covers both sub-millisecond latencies and five-digit
// function-call counts: 0.5, 1, 2, …, ~5.2e5 (21 edges).
func DefaultBuckets() []float64 { return ExpBuckets(0.5, 2, 21) }

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first edge >= v
	atomic.AddInt64(&h.counts[i], 1)
	atomic.AddInt64(&h.total, 1)
	for {
		old := atomic.LoadUint64(&h.sumBits)
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if atomic.CompareAndSwapUint64(&h.sumBits, old, nw) {
			return
		}
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return atomic.LoadInt64(&h.total) }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 {
	return math.Float64frombits(atomic.LoadUint64(&h.sumBits))
}

// Bucket is one finite histogram bucket in a snapshot: the count of
// samples ≤ Le (and above the previous edge).
type Bucket struct {
	Le    float64 `json:"le"`
	Count int64   `json:"count"`
}

// HistogramSnapshot is a point-in-time, JSON-serializable histogram
// state. Overflow counts samples above the last finite edge (kept out
// of Buckets because JSON cannot encode +Inf).
type HistogramSnapshot struct {
	Count    int64    `json:"count"`
	Sum      float64  `json:"sum"`
	Mean     float64  `json:"mean"`
	Overflow int64    `json:"overflow,omitempty"`
	Buckets  []Bucket `json:"buckets"`
}

// Snapshot captures the histogram state. Empty buckets are retained so
// every snapshot of one histogram has the same shape.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:    h.Count(),
		Sum:      h.Sum(),
		Overflow: atomic.LoadInt64(&h.counts[len(h.bounds)]),
		Buckets:  make([]Bucket, len(h.bounds)),
	}
	for i, edge := range h.bounds {
		s.Buckets[i] = Bucket{Le: edge, Count: atomic.LoadInt64(&h.counts[i])}
	}
	if s.Count > 0 {
		s.Mean = s.Sum / float64(s.Count)
	}
	return s
}
