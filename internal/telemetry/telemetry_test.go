package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Add(3)
	c.Add(-1)
	if c.Value() != 2 {
		t.Fatalf("Value = %d, want 2", c.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100, math.NaN()} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 { // NaN dropped
		t.Fatalf("Count = %d, want 5", s.Count)
	}
	wantCounts := []int64{2, 1, 1} // ≤1: {0.5, 1}; ≤2: {1.5}; ≤4: {3}
	for i, want := range wantCounts {
		if s.Buckets[i].Count != want {
			t.Errorf("bucket %d (le=%v) = %d, want %d", i, s.Buckets[i].Le, s.Buckets[i].Count, want)
		}
	}
	if s.Overflow != 1 {
		t.Errorf("Overflow = %d, want 1", s.Overflow)
	}
	if math.Abs(s.Sum-106) > 1e-12 {
		t.Errorf("Sum = %v, want 106", s.Sum)
	}
	if math.Abs(s.Mean-106.0/5) > 1e-12 {
		t.Errorf("Mean = %v", s.Mean)
	}
}

func TestHistogramValidation(t *testing.T) {
	for _, edges := range [][]float64{{}, {2, 1}, {1, 1}, {1, math.Inf(1)}, {math.NaN()}} {
		edges := edges
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v): expected panic", edges)
				}
			}()
			NewHistogram(edges)
		}()
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}

func TestMemorySink(t *testing.T) {
	m := NewMemory()
	m.DefineBuckets("fc", []float64{10, 100, 1000})
	m.Count("runs", 2)
	m.Count("runs", 1)
	m.Observe("fc", 42)
	m.Observe("latency_ms", 0.3)
	end := m.Span("flow")
	end()
	m.Iteration(IterEvent{Source: "L-BFGS-B", Iter: 0, F: -1, NFev: 5})

	if got := m.CounterValue("runs"); got != 3 {
		t.Errorf("runs = %d, want 3", got)
	}
	if got := m.CounterValue("missing"); got != 0 {
		t.Errorf("missing counter = %d, want 0", got)
	}
	fc, ok := m.HistogramSnapshot("fc")
	if !ok || fc.Count != 1 || fc.Buckets[1].Count != 1 {
		t.Errorf("fc histogram wrong: %+v (ok=%v)", fc, ok)
	}
	if len(fc.Buckets) != 3 {
		t.Errorf("fc buckets = %d, want the 3 defined edges", len(fc.Buckets))
	}
	if _, ok := m.HistogramSnapshot("nope"); ok {
		t.Error("HistogramSnapshot invented a histogram")
	}

	s := m.Snapshot()
	if s.Spans["flow"].Count != 1 {
		t.Errorf("span count = %d, want 1", s.Spans["flow"].Count)
	}
	if len(s.Trace) != 1 || s.Trace[0].Source != "L-BFGS-B" {
		t.Errorf("trace = %+v", s.Trace)
	}

	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var round Snapshot
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if round.Counters["runs"] != 3 {
		t.Errorf("round-tripped runs = %d", round.Counters["runs"])
	}
}

func TestMemoryTraceCap(t *testing.T) {
	m := NewMemory()
	m.SetTraceCap(2)
	for i := 0; i < 5; i++ {
		m.Iteration(IterEvent{Iter: i})
	}
	s := m.Snapshot()
	if len(s.Trace) != 2 {
		t.Fatalf("trace len = %d, want 2", len(s.Trace))
	}
	if s.TraceDropped != 3 {
		t.Fatalf("dropped = %d, want 3", s.TraceDropped)
	}
}

// TestMemoryConcurrent exercises the sink from many goroutines; run
// with -race (CI does) to verify the shared-Recorder contract datagen
// workers rely on.
func TestMemoryConcurrent(t *testing.T) {
	m := NewMemory()
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				m.Count("n", 1)
				m.Observe("v", float64(i))
				m.Iteration(IterEvent{Source: "w", Iter: i})
				m.Span("s")()
			}
		}(w)
	}
	wg.Wait()
	if got := m.CounterValue("n"); got != workers*perWorker {
		t.Errorf("n = %d, want %d", got, workers*perWorker)
	}
	v, _ := m.HistogramSnapshot("v")
	if v.Count != workers*perWorker {
		t.Errorf("v count = %d, want %d", v.Count, workers*perWorker)
	}
	s := m.Snapshot()
	if s.Spans["s"].Count != workers*perWorker {
		t.Errorf("span count = %d", s.Spans["s"].Count)
	}
	if int64(len(s.Trace))+s.TraceDropped != workers*perWorker {
		t.Errorf("trace %d + dropped %d != %d", len(s.Trace), s.TraceDropped, workers*perWorker)
	}
}

func TestNopRecorderDoesNotAllocate(t *testing.T) {
	var rec Recorder = Nop{}
	ev := IterEvent{Source: "x", F: 1, GNorm: 2, Step: 3, NFev: 4}
	allocs := testing.AllocsPerRun(100, func() {
		rec.Iteration(ev)
		rec.Count("a", 1)
		rec.Observe("b", 2)
		rec.Span("c")()
	})
	if allocs != 0 {
		t.Fatalf("Nop recorder allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestOrNop(t *testing.T) {
	if _, ok := OrNop(nil).(Nop); !ok {
		t.Error("OrNop(nil) is not Nop")
	}
	m := NewMemory()
	if OrNop(m) != Recorder(m) {
		t.Error("OrNop did not pass through a real recorder")
	}
}

func TestPublishExpvar(t *testing.T) {
	m := NewMemory()
	m.Count("x", 1)
	if !m.PublishExpvar("telemetry_test_sink") {
		t.Fatal("first publish failed")
	}
	if m.PublishExpvar("telemetry_test_sink") {
		t.Fatal("duplicate publish should return false, not panic")
	}
}

func TestPprofDo(t *testing.T) {
	ran := false
	PprofDo(context.Background(), "unit", func(ctx context.Context) { ran = true })
	if !ran {
		t.Fatal("PprofDo did not run fn")
	}
}
