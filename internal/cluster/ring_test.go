package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

var ringWorkers = []string{
	"http://127.0.0.1:8081",
	"http://127.0.0.1:8082",
	"http://127.0.0.1:8083",
}

// Ownership must depend only on the roster set, not its order — two
// coordinators configured with shuffled -peers lists must route
// identically or the sharded cache degrades to misses.
func TestRingOrderIndependence(t *testing.T) {
	a := NewRing(ringWorkers)
	b := NewRing([]string{ringWorkers[2], ringWorkers[0], ringWorkers[1], ringWorkers[0]})
	if a.Len() != 3 || b.Len() != 3 {
		t.Fatalf("len = %d, %d; want 3 (duplicates collapse)", a.Len(), b.Len())
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("fingerprint-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %q: owner differs by roster order: %q vs %q", key, a.Owner(key), b.Owner(key))
		}
		if !reflect.DeepEqual(a.Sequence(key), b.Sequence(key)) {
			t.Fatalf("key %q: failover sequence differs by roster order", key)
		}
	}
}

func TestRingSequence(t *testing.T) {
	r := NewRing(ringWorkers)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("fp-%d", i)
		seq := r.Sequence(key)
		if len(seq) != 3 {
			t.Fatalf("sequence covers %d workers, want 3", len(seq))
		}
		if seq[0] != r.Owner(key) {
			t.Fatalf("sequence head %q is not the owner %q", seq[0], r.Owner(key))
		}
		seen := map[string]bool{}
		for _, a := range seq {
			if seen[a] {
				t.Fatalf("worker %q repeated in sequence", a)
			}
			seen[a] = true
		}
	}
}

// Virtual nodes must spread keys reasonably: with 3 workers no worker
// should fall below half of its fair share over 3000 keys.
func TestRingSpread(t *testing.T) {
	r := NewRing(ringWorkers)
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("fp-%d", i))]++
	}
	for _, w := range ringWorkers {
		if counts[w] < keys/6 {
			t.Fatalf("worker %s owns only %d/%d keys: spread too skewed (%v)", w, counts[w], keys, counts)
		}
	}
}

// Removing a worker moves only its keys: every key owned by a surviving
// worker keeps its owner — the property that makes failover (and later
// roster shrink) cache-preserving for the rest of the fleet.
func TestRingRemovalMovesOnlyOrphans(t *testing.T) {
	full := NewRing(ringWorkers)
	reduced := NewRing(ringWorkers[:2])
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("fp-%d", i)
		owner := full.Owner(key)
		if owner == ringWorkers[2] {
			continue // orphaned key: expected to move
		}
		if got := reduced.Owner(key); got != owner {
			t.Fatalf("key %q moved from %q to %q though its owner survived", key, owner, got)
		}
	}
	// And the orphans' new owner is the next worker in the full ring's
	// failover sequence — the node retries would have landed on anyway.
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("fp-%d", i)
		if full.Owner(key) != ringWorkers[2] {
			continue
		}
		if want := full.Sequence(key)[1]; reduced.Owner(key) != want {
			t.Fatalf("orphan %q landed on %q, want ring successor %q", key, reduced.Owner(key), want)
		}
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(nil)
	if r.Owner("x") != "" || r.Sequence("x") != nil || r.Len() != 0 {
		t.Fatal("empty ring must own nothing")
	}
}
