package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"qaoaml/internal/server"
	"qaoaml/internal/telemetry"
)

// Dispatcher is the coordinator side of the coordinator/worker split:
// it implements server.Dispatcher by fanning each admitted job out to a
// worker qaoad over HTTP. Routing is consistent-hashed on the instance
// fingerprint (Ring), so repeat requests land on the worker whose
// result cache owns the key; failures walk the ring's failover
// sequence with exponential backoff; per-worker in-flight cost budgets
// reuse the admission price (server.JobCost) so one worker is never
// loaded past what its own admission control would accept; and the
// job's context threads through end-to-end — cancelling it aborts the
// remote optimizer via DELETE /v1/jobs/{id}.
//
// Determinism makes all of this safe: a solve re-dispatched to a
// different worker (even one racing a still-running first attempt the
// coordinator gave up on) returns a bit-identical result.

// DispatcherConfig configures a Dispatcher. Workers is required.
type DispatcherConfig struct {
	// Workers is the fleet roster: base URLs like "http://127.0.0.1:8081".
	Workers []string
	// WorkerBudget caps the summed admission cost (server.JobCost) the
	// coordinator keeps in flight per worker; 0 means no per-worker cap
	// (the workers' own admission control still applies). Like local
	// admission, an idle worker accepts one job of any cost.
	WorkerBudget int64
	// Rounds is how many full passes over a key's failover sequence to
	// attempt before failing the job (default 3).
	Rounds int
	// HealthInterval is the worker health-check period (default 1s).
	HealthInterval time.Duration
	// Client is the HTTP client for worker calls (default: no-timeout
	// client; per-call contexts bound everything).
	Client *http.Client
	// Recorder receives dispatch telemetry (nil = none).
	Recorder telemetry.Recorder
}

const (
	dispatchBackoffBase = 50 * time.Millisecond
	dispatchBackoffCap  = 2 * time.Second
	healthTimeout       = 2 * time.Second
	cancelTimeout       = 2 * time.Second
)

type workerState struct {
	down     bool
	inflight int64
}

// Dispatcher implements server.Dispatcher over a worker fleet.
type Dispatcher struct {
	ring   *Ring
	client *http.Client
	mem    telemetry.Recorder
	budget int64
	rounds int

	mu      sync.Mutex
	workers map[string]*workerState

	stop   context.CancelFunc
	health sync.WaitGroup
}

var _ server.Dispatcher = (*Dispatcher)(nil)

// NewDispatcher builds the dispatcher and starts its health-check loop.
// Call Close to stop it.
func NewDispatcher(cfg DispatcherConfig) (*Dispatcher, error) {
	ring := NewRing(cfg.Workers)
	if ring.Len() == 0 {
		return nil, errors.New("cluster: dispatcher needs at least one worker")
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 3
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	d := &Dispatcher{
		ring:    ring,
		client:  cfg.Client,
		mem:     telemetry.OrNop(cfg.Recorder),
		budget:  cfg.WorkerBudget,
		rounds:  cfg.Rounds,
		workers: make(map[string]*workerState, ring.Len()),
	}
	for _, a := range ring.Addrs() {
		d.workers[a] = &workerState{}
	}
	ctx, cancel := context.WithCancel(context.Background())
	d.stop = cancel
	d.health.Add(1)
	go d.healthLoop(ctx, cfg.HealthInterval)
	return d, nil
}

// Close stops the health-check loop. In-flight dispatches finish on
// their own contexts.
func (d *Dispatcher) Close() {
	d.stop()
	d.health.Wait()
}

// Workers returns each worker address with its current liveness.
func (d *Dispatcher) Workers() map[string]bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]bool, len(d.workers))
	for a, w := range d.workers {
		out[a] = !w.down
	}
	return out
}

// permanentError marks a failure retrying cannot fix (worker rejected
// the request as invalid).
type permanentError struct{ err error }

func (e permanentError) Error() string { return e.err.Error() }
func (e permanentError) Unwrap() error { return e.err }

// Dispatch implements server.Dispatcher: route by fingerprint, walk
// the failover sequence with backoff between rounds, relay iteration
// events, and propagate cancellation.
func (d *Dispatcher) Dispatch(ctx context.Context, req server.SolveRequest, fingerprint string, cost int64, emit func(telemetry.IterEvent)) (*server.SolveResult, error) {
	seq := d.ring.Sequence(fingerprint)
	var lastErr error
	for round := 0; round < d.rounds; round++ {
		if round > 0 {
			backoff := dispatchBackoffBase << uint(round-1)
			if backoff > dispatchBackoffCap {
				backoff = dispatchBackoffCap
			}
			d.mem.Count("cluster.dispatch.backoffs", 1)
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		// First pass prefers live workers; if every worker is marked
		// down, try them all anyway — the mark is a hint, and a fleet
		// that refuses to attempt anything can never discover recovery.
		for _, skipDown := range []bool{true, false} {
			tried := false
			for _, addr := range seq {
				if ctx.Err() != nil {
					return nil, ctx.Err()
				}
				if skipDown && !d.reserve(addr, cost) {
					continue
				}
				if !skipDown {
					d.forceReserve(addr, cost)
				}
				tried = true
				d.mem.Count("cluster.dispatch.attempts", 1)
				res, err := d.dispatchOne(ctx, addr, req, emit)
				d.release(addr, cost)
				if err == nil {
					return res, nil
				}
				if ctx.Err() != nil {
					return nil, ctx.Err()
				}
				var perm permanentError
				if errors.As(err, &perm) {
					return nil, perm.err
				}
				lastErr = fmt.Errorf("worker %s: %w", addr, err)
				d.mem.Count("cluster.dispatch.retries", 1)
			}
			if tried {
				break // a real attempt was made this round; back off, don't hammer
			}
		}
	}
	if lastErr == nil {
		lastErr = errors.New("no dispatch attempt succeeded")
	}
	d.mem.Count("cluster.dispatch.failures", 1)
	return nil, fmt.Errorf("cluster: job undispatchable after %d rounds: %w", d.rounds, lastErr)
}

// reserve books cost against addr's budget; false if the worker is
// down or (per admission semantics) busy past the budget.
func (d *Dispatcher) reserve(addr string, cost int64) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	w := d.workers[addr]
	if w == nil || w.down {
		return false
	}
	if d.budget > 0 && w.inflight > 0 && w.inflight+cost > d.budget {
		return false
	}
	w.inflight += cost
	return true
}

// forceReserve books cost unconditionally (the all-down fallback).
func (d *Dispatcher) forceReserve(addr string, cost int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if w := d.workers[addr]; w != nil {
		w.inflight += cost
	}
}

func (d *Dispatcher) release(addr string, cost int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if w := d.workers[addr]; w != nil {
		w.inflight -= cost
	}
}

// markDown flags a worker after a transport failure; the health loop
// (or a successful later call) lifts the flag.
func (d *Dispatcher) markDown(addr string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if w := d.workers[addr]; w != nil && !w.down {
		w.down = true
		d.mem.Count("cluster.workers.marked_down", 1)
	}
}

func (d *Dispatcher) markUp(addr string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if w := d.workers[addr]; w != nil && w.down {
		w.down = false
		d.mem.Count("cluster.workers.marked_up", 1)
	}
}

func (d *Dispatcher) healthLoop(ctx context.Context, interval time.Duration) {
	defer d.health.Done()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		for _, addr := range d.ring.Addrs() {
			hctx, cancel := context.WithTimeout(ctx, healthTimeout)
			req, err := http.NewRequestWithContext(hctx, http.MethodGet, strings.TrimRight(addr, "/")+"/healthz", nil)
			if err == nil {
				var resp *http.Response
				resp, err = d.client.Do(req)
				if err == nil {
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						err = fmt.Errorf("healthz HTTP %d", resp.StatusCode)
					}
				}
			}
			cancel()
			if err != nil {
				d.markDown(addr)
			} else {
				d.markUp(addr)
			}
		}
	}
}

// dispatchOne runs one job attempt against one worker: submit with
// wait=false, follow the SSE event stream relaying iteration traces,
// and return the terminal result. Context cancellation cancels the
// remote job before returning.
func (d *Dispatcher) dispatchOne(ctx context.Context, addr string, req server.SolveRequest, emit func(telemetry.IterEvent)) (*server.SolveResult, error) {
	req.Wait = false
	body, err := json.Marshal(req)
	if err != nil {
		return nil, permanentError{err}
	}
	base := strings.TrimRight(addr, "/")
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/solve", strings.NewReader(string(body)))
	if err != nil {
		return nil, permanentError{err}
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := d.client.Do(hreq)
	if err != nil {
		d.markDown(addr)
		return nil, err
	}
	var view server.JobView
	decodeErr := json.NewDecoder(resp.Body).Decode(&view)
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		// Terminal on arrival: the worker's cache shard owned the key.
		if decodeErr != nil {
			return nil, decodeErr
		}
		d.mem.Count("cluster.dispatch.remote_cache_hits", 1)
		return terminalResult(view)
	case resp.StatusCode == http.StatusAccepted:
		if decodeErr != nil {
			return nil, decodeErr
		}
	case resp.StatusCode == http.StatusTooManyRequests:
		return nil, fmt.Errorf("worker busy (HTTP 429)")
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		return nil, permanentError{fmt.Errorf("worker rejected job: HTTP %d", resp.StatusCode)}
	default:
		return nil, fmt.Errorf("worker HTTP %d", resp.StatusCode)
	}

	// Accepted: follow the event stream to the terminal result. Any
	// break in the stream is a worker failure (retryable — determinism
	// makes a second attempt elsewhere return the identical result).
	stream, err := OpenEvents(ctx, d.client, base, view.ID)
	if err != nil {
		if ctx.Err() != nil {
			d.cancelRemote(base, view.ID)
			return nil, ctx.Err()
		}
		d.markDown(addr)
		return nil, err
	}
	defer stream.Close()
	for {
		ev, err := stream.Next()
		if err != nil {
			if ctx.Err() != nil {
				d.cancelRemote(base, view.ID)
				return nil, ctx.Err()
			}
			d.markDown(addr)
			return nil, fmt.Errorf("event stream broke: %w", err)
		}
		switch ev.Name {
		case server.EventIteration:
			if emit == nil {
				continue
			}
			var iter telemetry.IterEvent
			if json.Unmarshal(ev.Data, &iter) == nil {
				emit(iter)
			}
		case server.EventResult:
			var final server.JobView
			if err := json.Unmarshal(ev.Data, &final); err != nil {
				return nil, err
			}
			return terminalResult(final)
		}
	}
}

// cancelRemote aborts a job on a worker after the coordinator-side
// context died; best-effort with its own short deadline.
func (d *Dispatcher) cancelRemote(base, jobID string) {
	ctx, cancel := context.WithTimeout(context.Background(), cancelTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, base+"/v1/jobs/"+jobID, nil)
	if err != nil {
		return
	}
	if resp, err := d.client.Do(req); err == nil {
		resp.Body.Close()
		d.mem.Count("cluster.dispatch.remote_cancels", 1)
	}
}

// terminalResult maps a terminal JobView to the dispatch outcome.
func terminalResult(view server.JobView) (*server.SolveResult, error) {
	switch view.State {
	case server.StateDone:
		if view.Result == nil {
			return nil, errors.New("done job carried no result")
		}
		return view.Result, nil
	case server.StateFailed:
		return nil, permanentError{fmt.Errorf("remote solve failed: %s", view.Error)}
	case server.StateCancelled:
		// A remote cancellation with a live coordinator context means
		// the worker's own deadline fired; retrying elsewhere would hit
		// the same deadline, so surface it.
		return nil, permanentError{errors.New("remote solve cancelled: " + view.Error)}
	default:
		return nil, fmt.Errorf("job ended in non-terminal state %q", view.State)
	}
}
