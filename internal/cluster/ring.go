package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Consistent hashing over canonical instance fingerprints. The point is
// cache sharding: each worker keeps its own result LRU, and the ring
// sends every occurrence of a given fingerprint to the same worker, so
// a repeat request anywhere in the fleet lands on the node that already
// holds its result. Virtual nodes smooth the key distribution; when a
// worker dies its keys spill to the next node on the ring (and only
// those keys move), which Sequence exposes as a per-key failover order.

// ringVnodes is the virtual-node count per worker — enough to keep the
// spread within a few percent of uniform for small fleets without
// making the ring scan noticeable.
const ringVnodes = 64

// Ring is an immutable consistent-hash ring over worker addresses.
// Build once from the fleet roster; health is the Dispatcher's concern
// (it walks Sequence past downed workers rather than mutating the
// ring, so a worker's keys come home when it recovers).
type Ring struct {
	points []ringPoint // sorted by hash
	addrs  []string
}

type ringPoint struct {
	hash uint64
	addr string
}

// NewRing builds a ring over the given worker addresses. Duplicates
// collapse; an empty roster yields an empty ring (Owner returns "").
func NewRing(addrs []string) *Ring {
	seen := make(map[string]bool, len(addrs))
	r := &Ring{}
	for _, a := range addrs {
		if a == "" || seen[a] {
			continue
		}
		seen[a] = true
		r.addrs = append(r.addrs, a)
		for v := 0; v < ringVnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", a, v)), addr: a})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on address so the ring is independent of roster order.
		return r.points[i].addr < r.points[j].addr
	})
	return r
}

// Addrs returns the distinct worker addresses on the ring.
func (r *Ring) Addrs() []string { return append([]string(nil), r.addrs...) }

// Len returns the number of distinct workers.
func (r *Ring) Len() int { return len(r.addrs) }

// Owner returns the worker owning key, or "" for an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.locate(key)].addr
}

// Sequence returns every worker in the order they should be tried for
// key: the owner first, then ring successors (each distinct worker
// once). This is the failover order — the key's cache entry can only
// live on a node the key was previously dispatched to, and earlier
// nodes in the sequence are strictly more likely to hold it.
func (r *Ring) Sequence(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	seq := make([]string, 0, len(r.addrs))
	seen := make(map[string]bool, len(r.addrs))
	start := r.locate(key)
	for i := 0; i < len(r.points) && len(seq) < len(r.addrs); i++ {
		addr := r.points[(start+i)%len(r.points)].addr
		if !seen[addr] {
			seen[addr] = true
			seq = append(seq, addr)
		}
	}
	return seq
}

// locate finds the index of the first ring point at or clockwise of
// key's hash.
func (r *Ring) locate(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// hash64 is fnv-1a with a splitmix64-style finalizer. Raw fnv of
// near-identical strings (vnode labels differ only in their suffix)
// leaves the high bits poorly mixed, which shows up directly as wildly
// uneven ring arcs; the finalizer's avalanche fixes the spread.
func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
