package cluster

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"qaoaml/internal/server"
)

func walReq(seed int64) server.SolveRequest {
	return server.SolveRequest{
		Nodes: 6, Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}},
		Depth: 2, Strategy: "naive", Seed: seed,
	}
}

func walRes(ar float64) *server.SolveResult {
	return &server.SolveResult{
		Strategy: "naive", AR: ar,
		Gamma: []float64{0.1, 0.2}, Beta: []float64{0.3, 0.4},
		NFev: 42, Objective: 5, Assignment: "010101", Fingerprint: "fp",
	}
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	w, rec, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Incomplete) != 0 || len(rec.Completed) != 0 || rec.Torn {
		t.Fatalf("fresh wal recovered state: %+v", rec)
	}
	reqA, reqB := walReq(1), walReq(2)
	resA := walRes(0.9)
	if err := w.Accepted("keyA", "fpA", reqA); err != nil {
		t.Fatal(err)
	}
	if err := w.Accepted("keyB", "fpB", reqB); err != nil {
		t.Fatal(err)
	}
	if err := w.Completed("keyA", resA); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec, err = OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Torn {
		t.Fatal("clean log reported torn")
	}
	if len(rec.Completed) != 1 || rec.Completed[0].Key != "keyA" {
		t.Fatalf("completed = %+v", rec.Completed)
	}
	if !reflect.DeepEqual(rec.Completed[0].Result, resA) {
		t.Fatalf("replayed result differs:\n got %+v\nwant %+v", rec.Completed[0].Result, resA)
	}
	if len(rec.Incomplete) != 1 || rec.Incomplete[0].Key != "keyB" || rec.Incomplete[0].Fingerprint != "fpB" {
		t.Fatalf("incomplete = %+v", rec.Incomplete)
	}
	if !reflect.DeepEqual(rec.Incomplete[0].Req, reqB) {
		t.Fatalf("replayed request differs:\n got %+v\nwant %+v", rec.Incomplete[0].Req, reqB)
	}
}

// A job settled without a result (failed or cancelled: Completed with
// nil) must be neither re-enqueued nor cached on recovery.
func TestWALSettledJobNotRecovered(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Accepted("key", "fp", walReq(1)); err != nil {
		t.Fatal(err)
	}
	if err := w.Completed("key", nil); err != nil {
		t.Fatal(err)
	}
	w.Close()
	_, rec, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Incomplete) != 0 || len(rec.Completed) != 0 {
		t.Fatalf("settled job leaked into recovery: %+v", rec)
	}
}

// A crash mid-append leaves a torn tail: a partial frame, or a frame
// whose payload bytes were only partly flushed (CRC mismatch). Recovery
// must keep every intact record and drop only the tail.
func TestWALTornTail(t *testing.T) {
	for name, mangle := range map[string]func([]byte) []byte{
		"truncated-frame": func(b []byte) []byte {
			return b[:len(b)-3] // cut into the final record's payload
		},
		"corrupt-crc": func(b []byte) []byte {
			b[len(b)-1] ^= 0xff // flip a payload byte; CRC now mismatches
			return b
		},
		"garbage-appended": func(b []byte) []byte {
			return append(b, 0xde, 0xad, 0xbe) // partial header after the last record
		},
	} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "jobs.wal")
			w, _, err := OpenWAL(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Accepted("keyA", "fpA", walReq(1)); err != nil {
				t.Fatal(err)
			}
			if err := w.Completed("keyA", walRes(0.8)); err != nil {
				t.Fatal(err)
			}
			if err := w.Accepted("keyB", "fpB", walReq(2)); err != nil {
				t.Fatal(err)
			}
			w.Close()

			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, mangle(data), 0o644); err != nil {
				t.Fatal(err)
			}

			w2, rec, err := OpenWAL(path)
			if err != nil {
				t.Fatal(err)
			}
			defer w2.Close()
			if !rec.Torn {
				t.Fatal("torn tail not reported")
			}
			if len(rec.Completed) != 1 || rec.Completed[0].Key != "keyA" {
				t.Fatalf("intact records lost: completed = %+v", rec.Completed)
			}
			// keyB's accepted record was the tail; depending on the mangle it
			// is gone (truncated/corrupt) — what matters is keyA survived and
			// the reopened log accepts appends.
			if err := w2.Accepted("keyC", "fpC", walReq(3)); err != nil {
				t.Fatalf("append after torn recovery: %v", err)
			}
		})
	}
}

// Compaction on open drops settled and superseded records: the log
// holds only live state, so it cannot grow without bound across
// restart cycles, and a crash during compaction leaves a valid log
// (tmp + rename).
func TestWALCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	// 50 jobs accepted and settled without results: all dead weight.
	for i := 0; i < 50; i++ {
		key := string(rune('a' + i%26)) + string(rune('0'+i/26))
		if err := w.Accepted(key, "fp", walReq(int64(i))); err != nil {
			t.Fatal(err)
		}
		if err := w.Completed(key, nil); err != nil {
			t.Fatal(err)
		}
	}
	// One live result and one incomplete job: the only live state.
	if err := w.Accepted("live-done", "fp1", walReq(100)); err != nil {
		t.Fatal(err)
	}
	if err := w.Completed("live-done", walRes(0.7)); err != nil {
		t.Fatal(err)
	}
	if err := w.Accepted("live-open", "fp2", walReq(101)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	before, _ := os.Stat(path)

	w2, rec, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	w2.Close()
	if len(rec.Completed) != 1 || len(rec.Incomplete) != 1 {
		t.Fatalf("recovery = %d completed, %d incomplete; want 1, 1", len(rec.Completed), len(rec.Incomplete))
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Fatalf("compaction did not shrink the log: %d -> %d bytes", before.Size(), after.Size())
	}

	// The compacted log replays to the same state.
	w3, rec2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	w3.Close()
	if !reflect.DeepEqual(rec2.Completed, rec.Completed) || !reflect.DeepEqual(rec2.Incomplete, rec.Incomplete) {
		t.Fatalf("compacted log replays differently:\n got %+v / %+v\nwant %+v / %+v",
			rec2.Completed, rec2.Incomplete, rec.Completed, rec.Incomplete)
	}
}

// Journal ordering in the server means Completed always follows
// Accepted, but a compacted log retains results whose accepted records
// were dropped — replay must treat a done record alone as complete
// state, and tolerate done-before-accepted for one key.
func TestWALReplayOrderIndependence(t *testing.T) {
	res := walRes(0.6)
	req := walReq(1)
	rec := replay([]walRecord{
		{Type: recDone, Key: "k", Result: res},
		{Type: recAccepted, Key: "k", Fingerprint: "fp", Req: &req},
	})
	if len(rec.Incomplete) != 0 {
		t.Fatalf("done job re-enqueued: %+v", rec.Incomplete)
	}
	if len(rec.Completed) != 1 || !reflect.DeepEqual(rec.Completed[0].Result, res) {
		t.Fatalf("completed = %+v", rec.Completed)
	}
}
