// Package cluster scales qaoad from one process to a fleet. It
// provides the three distribution pieces the serving layer plugs in
// through narrow interfaces (see server.Journal and server.Dispatcher):
//
//   - WAL: a durable append-only job journal — CRC-framed, fsync'd
//     records of accepted solves and their terminal results — with
//     torn-tail recovery and compaction, so kill -9 loses no accepted
//     work and completed results replay straight into the result cache;
//   - Ring: consistent hashing over canonical instance fingerprints,
//     so repeat requests land on whichever worker owns (and has
//     cached) the key — the result cache becomes a sharded tier;
//   - Dispatcher: the coordinator side of the coordinator/worker
//     split — a health-checked worker registry, per-worker cost
//     budgets reusing the admission price, retry with backoff and
//     re-dispatch on worker death, and end-to-end cancellation (a
//     client disconnect at the coordinator aborts the remote
//     optimizer), with per-iteration trace events relayed back over
//     SSE for /v1/jobs/{id}/events proxying.
//
// Determinism is the load-bearing property throughout: a re-dispatched
// job produces a bit-identical result on any worker, and a journaled
// result is exactly what the same request would compute again, which
// is what makes both crash recovery and the distributed cache exact
// rather than approximate.
package cluster

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"qaoaml/internal/server"
)

// WAL record framing: each record is [len u32][crc32 u32][payload],
// little-endian, payload = one JSON walRecord, fsync'd per append. A
// crash can only tear the final record; recovery verifies length and
// CRC and drops the torn tail.
const (
	walMaxRecordLen = 16 << 20 // sanity bound on one record (a solve request is ≪ 1 MiB)
	walFrameHeader  = 8        // len + crc

	// walKeepCompleted caps how many completed results compaction
	// retains (newest win): enough to re-warm the default result cache
	// (256 entries) with headroom, while bounding WAL growth across
	// restarts.
	walKeepCompleted = 1024
)

// Record types.
const (
	recAccepted = "accepted"
	recDone     = "done" // Result nil = settled without a cacheable result (failed/cancelled)
)

// walRecord is the JSON payload of one frame.
type walRecord struct {
	Type        string               `json:"type"`
	Key         string               `json:"key"`
	Fingerprint string               `json:"fp,omitempty"`
	Req         *server.SolveRequest `json:"req,omitempty"`
	Result      *server.SolveResult  `json:"result,omitempty"`
}

// IncompleteJob is an accepted job with no terminal record: work the
// process died holding, to be re-enqueued on recovery.
type IncompleteJob struct {
	Key         string
	Fingerprint string
	Req         server.SolveRequest
}

// CompletedJob is a journaled result, replayable into the result cache.
type CompletedJob struct {
	Key    string
	Result *server.SolveResult
}

// Recovery is what OpenWAL reconstructed from the log.
type Recovery struct {
	// Incomplete lists accepted-but-unfinished jobs in acceptance
	// order; re-enqueue them via server.Resubmit.
	Incomplete []IncompleteJob
	// Completed lists journaled results in completion order (settled
	// jobs with no result are excluded); replay via server.SeedCache.
	Completed []CompletedJob
	// Torn reports that a torn or corrupt tail record was dropped —
	// the expected signature of a mid-write crash.
	Torn bool
	// Records counts the valid records read.
	Records int
}

// WAL is the durable job journal. It implements server.Journal.
// Appends are serialized and fsync'd: when Accepted returns, the
// record is on disk.
type WAL struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

var _ server.Journal = (*WAL)(nil)

// OpenWAL opens (or creates) the journal at path, recovers its state,
// compacts the log — the rewritten file carries one accepted record
// per incomplete job and the newest walKeepCompleted results, dropping
// settled and superseded records and any torn tail — and returns the
// WAL ready for appends plus the recovered state.
func OpenWAL(path string) (*WAL, *Recovery, error) {
	records, torn, err := readWALRecords(path)
	if err != nil {
		return nil, nil, err
	}
	rec := replay(records)
	rec.Torn = torn
	rec.Records = len(records)
	if err := compact(path, rec); err != nil {
		return nil, nil, fmt.Errorf("cluster: compacting wal %s: %w", path, err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: opening wal %s: %w", path, err)
	}
	return &WAL{f: f, path: path}, rec, nil
}

// Accepted implements server.Journal.
func (w *WAL) Accepted(key, fingerprint string, req server.SolveRequest) error {
	r := req // journal the request without client-facing flags
	r.Wait = false
	return w.append(walRecord{Type: recAccepted, Key: key, Fingerprint: fingerprint, Req: &r})
}

// Completed implements server.Journal.
func (w *WAL) Completed(key string, res *server.SolveResult) error {
	return w.append(walRecord{Type: recDone, Key: key, Result: res})
}

// Close syncs and closes the journal file.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// Path returns the journal file path.
func (w *WAL) Path() string { return w.path }

func (w *WAL) append(r walRecord) error {
	frame, err := encodeFrame(r)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("cluster: wal %s is closed", w.path)
	}
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("cluster: appending to wal %s: %w", w.path, err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("cluster: syncing wal %s: %w", w.path, err)
	}
	return nil
}

func encodeFrame(r walRecord) ([]byte, error) {
	payload, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("cluster: encoding wal record: %w", err)
	}
	if len(payload) > walMaxRecordLen {
		return nil, fmt.Errorf("cluster: wal record of %d bytes exceeds the %d limit", len(payload), walMaxRecordLen)
	}
	frame := make([]byte, walFrameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	copy(frame[walFrameHeader:], payload)
	return frame, nil
}

// readWALRecords reads every intact record; a missing file is an empty
// log. It stops at the first frame whose length runs past EOF, whose
// CRC mismatches, or whose payload is not a valid record — the torn
// tail a crash mid-append leaves — and reports torn=true for any
// unread remainder.
func readWALRecords(path string) (records []walRecord, torn bool, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("cluster: reading wal %s: %w", path, err)
	}
	off := 0
	for off+walFrameHeader <= len(data) {
		n := int(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if n <= 0 || n > walMaxRecordLen || off+walFrameHeader+n > len(data) {
			break
		}
		payload := data[off+walFrameHeader : off+walFrameHeader+n]
		if crc32.ChecksumIEEE(payload) != crc {
			break
		}
		var r walRecord
		if json.Unmarshal(payload, &r) != nil || (r.Type != recAccepted && r.Type != recDone) {
			break
		}
		records = append(records, r)
		off += walFrameHeader + n
	}
	return records, off < len(data), nil
}

// replay folds the record sequence into recovered state. Duplicate
// accepted records for one key (a recovered job re-journaled on
// resubmission) collapse; a done record settles its key whether it
// appears before or after its accepted record (completion and
// acceptance race only in journal order, never in meaning).
func replay(records []walRecord) *Recovery {
	type entry struct {
		accepted *IncompleteJob
		done     bool
		result   *server.SolveResult
	}
	state := make(map[string]*entry)
	var order []string // first-touch order, for deterministic output
	touch := func(key string) *entry {
		e := state[key]
		if e == nil {
			e = &entry{}
			state[key] = e
			order = append(order, key)
		}
		return e
	}
	for _, r := range records {
		if r.Key == "" {
			continue
		}
		e := touch(r.Key)
		switch r.Type {
		case recAccepted:
			if e.accepted == nil && r.Req != nil {
				e.accepted = &IncompleteJob{Key: r.Key, Fingerprint: r.Fingerprint, Req: *r.Req}
			}
		case recDone:
			e.done = true
			if r.Result != nil {
				e.result = r.Result
			}
		}
	}
	rec := &Recovery{}
	for _, key := range order {
		e := state[key]
		switch {
		case e.done && e.result != nil:
			rec.Completed = append(rec.Completed, CompletedJob{Key: key, Result: e.result})
		case !e.done && e.accepted != nil:
			rec.Incomplete = append(rec.Incomplete, *e.accepted)
		}
		// done with nil result (settled) or a done record whose
		// accepted half was torn away: nothing to recover.
	}
	return rec
}

// compact atomically rewrites the log to exactly the live state: the
// newest walKeepCompleted results plus every incomplete acceptance.
// The rewrite goes through a temp file + rename so a crash during
// compaction leaves either the old or the new log, never a hybrid.
func compact(path string, rec *Recovery) error {
	tmp := path + ".compact"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	write := func(r walRecord) error {
		frame, err := encodeFrame(r)
		if err != nil {
			return err
		}
		_, err = f.Write(frame)
		return err
	}
	completed := rec.Completed
	if len(completed) > walKeepCompleted {
		completed = completed[len(completed)-walKeepCompleted:]
	}
	for _, c := range completed {
		if err := write(walRecord{Type: recDone, Key: c.Key, Result: c.Result}); err != nil {
			f.Close()
			return err
		}
	}
	for i := range rec.Incomplete {
		in := &rec.Incomplete[i]
		if err := write(walRecord{Type: recAccepted, Key: in.Key, Fingerprint: in.Fingerprint, Req: &in.Req}); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	// Best-effort directory sync so the rename itself is durable.
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}
