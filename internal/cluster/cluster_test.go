package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"qaoaml/internal/server"
	"qaoaml/internal/telemetry"
)

// Fleet integration tests: real server.Server instances behind httptest
// listeners, wired exactly as qaoad -role=coordinator/-role=worker
// wires them. Everything runs the naive strategy (no model registry
// needed) on small instances, so the suite stays fast enough for -race.

type node struct {
	srv *server.Server
	ts  *httptest.Server
	mem *telemetry.Memory
}

func startNode(t *testing.T, cfg server.Config) *node {
	t.Helper()
	if cfg.Recorder == nil {
		cfg.Recorder = telemetry.NewMemory()
	}
	s := server.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return &node{srv: s, ts: ts, mem: cfg.Recorder}
}

// startFleet brings up n workers plus a coordinator dispatching to
// them. coordCfg tweaks the coordinator's server config.
func startFleet(t *testing.T, n int, coordCfg server.Config) (*node, []*node, *Dispatcher) {
	t.Helper()
	workers := make([]*node, n)
	addrs := make([]string, n)
	for i := range workers {
		workers[i] = startNode(t, server.Config{Workers: 2})
		addrs[i] = workers[i].ts.URL
	}
	if coordCfg.Recorder == nil {
		coordCfg.Recorder = telemetry.NewMemory()
	}
	disp, err := NewDispatcher(DispatcherConfig{
		Workers:        addrs,
		Recorder:       coordCfg.Recorder,
		HealthInterval: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(disp.Close)
	coordCfg.Workers = 2
	coordCfg.Dispatcher = disp
	coord := startNode(t, coordCfg)
	return coord, workers, disp
}

// fleetReq is a small deterministic MaxCut instance; i varies the
// instance so tests can spread keys over the ring.
func fleetReq(i int) server.SolveRequest {
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 0}, {0, 4}, {2, 6}}
	edges = append(edges, [2]int{i % 8, (i + 3) % 8})
	return server.SolveRequest{
		Nodes: 8, Edges: edges, Depth: 2,
		Strategy: "naive", Seed: int64(1 + i), Wait: true,
	}
}

func solveHTTP(t *testing.T, url string, req server.SolveRequest) (int, server.JobView) {
	t.Helper()
	blob, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/solve", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var view server.JobView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatalf("decoding %q: %v", body, err)
	}
	return resp.StatusCode, view
}

func mustResult(t *testing.T, code int, view server.JobView) *server.SolveResult {
	t.Helper()
	if code != http.StatusOK || view.State != server.StateDone || view.Result == nil {
		t.Fatalf("solve: code %d, state %s, err %q", code, view.State, view.Error)
	}
	return view.Result
}

// solveDone submits a wait=true request and returns its done result.
func solveDone(t *testing.T, url string, req server.SolveRequest) *server.SolveResult {
	t.Helper()
	code, view := solveHTTP(t, url, req)
	return mustResult(t, code, view)
}

// The fleet must be invisible in the results: a coordinator + 2 workers
// returns bit-identical payloads to a single-process server for the
// same requests — determinism is what makes dispatch, retry and the
// sharded cache exact.
func TestFleetBitIdenticalToSingleProcess(t *testing.T) {
	single := startNode(t, server.Config{Workers: 2})
	coord, _, _ := startFleet(t, 2, server.Config{})
	for i := 0; i < 4; i++ {
		req := fleetReq(i)
		want := solveDone(t, single.ts.URL, req)
		got := solveDone(t, coord.ts.URL, req)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("request %d: fleet result differs from single-process:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

// With the coordinator's own cache disabled (CacheSize < 0), a repeat
// request must still cost zero optimizer evaluations: consistent-hash
// routing lands it on the worker that solved it, whose cache shard
// owns the key.
func TestFleetShardedCacheZeroFev(t *testing.T) {
	coord, workers, _ := startFleet(t, 2, server.Config{CacheSize: -1})
	req := fleetReq(0)
	first := solveDone(t, coord.ts.URL, req)

	fevBefore := make([]int64, len(workers))
	for i, w := range workers {
		fevBefore[i] = w.mem.CounterValue("optimize.fev_total")
	}
	again := solveDone(t, coord.ts.URL, req)
	if !reflect.DeepEqual(again, first) {
		t.Fatalf("cached fleet result differs:\n got %+v\nwant %+v", again, first)
	}
	for i, w := range workers {
		if fev := w.mem.CounterValue("optimize.fev_total"); fev != fevBefore[i] {
			t.Fatalf("worker %d spent %d optimizer evaluations on a repeat request", i, fev-fevBefore[i])
		}
	}
	if hits := coord.mem.CounterValue("cluster.dispatch.remote_cache_hits"); hits < 1 {
		t.Fatalf("remote_cache_hits = %d, want >= 1 (repeat request must hit the owning worker's shard)", hits)
	}
}

// Killing a worker mid-fleet must not fail jobs: the dispatcher marks
// it down on the first transport error and walks the ring's failover
// sequence, and determinism guarantees the surviving worker returns
// the identical result.
func TestFleetWorkerFailover(t *testing.T) {
	single := startNode(t, server.Config{Workers: 2})
	coord, workers, disp := startFleet(t, 2, server.Config{CacheSize: -1})

	// Kill worker 0 outright (listener gone: connection refused, the
	// same signature as kill -9 from the coordinator's side).
	workers[0].ts.Close()

	for i := 0; i < 4; i++ {
		req := fleetReq(i)
		want := solveDone(t, single.ts.URL, req)
		got := solveDone(t, coord.ts.URL, req)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("request %d: post-failover result differs:\n got %+v\nwant %+v", i, got, want)
		}
	}
	if up := disp.Workers(); up[workers[0].ts.URL] {
		t.Fatal("dead worker still marked live after failed dispatches")
	}
}

// The SSE stream must proxy: subscribing on the coordinator yields the
// worker's per-iteration optimizer trace followed by the terminal
// result, identical to what the jobs endpoint reports.
func TestFleetSSEProxy(t *testing.T) {
	coord, _, _ := startFleet(t, 1, server.Config{})
	req := fleetReq(0)
	req.Wait = true
	code, view := solveHTTP(t, coord.ts.URL, req)
	want := mustResult(t, code, view)

	stream, err := OpenEvents(drainCtx(t, 10*time.Second), http.DefaultClient, coord.ts.URL, view.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	iterations := 0
	for {
		ev, err := stream.Next()
		if err != nil {
			t.Fatalf("stream broke after %d iterations: %v", iterations, err)
		}
		switch ev.Name {
		case server.EventIteration:
			var iter telemetry.IterEvent
			if err := json.Unmarshal(ev.Data, &iter); err != nil {
				t.Fatalf("bad iteration payload %q: %v", ev.Data, err)
			}
			if iter.NFev <= 0 {
				t.Fatalf("iteration event with no evaluations: %+v", iter)
			}
			iterations++
		case server.EventResult:
			var final server.JobView
			if err := json.Unmarshal(ev.Data, &final); err != nil {
				t.Fatal(err)
			}
			if iterations == 0 {
				t.Fatal("result arrived with no iteration events relayed")
			}
			if !reflect.DeepEqual(final.Result, want) {
				t.Fatalf("SSE terminal result differs from jobs endpoint:\n got %+v\nwant %+v", final.Result, want)
			}
			return
		}
	}
}

// Cancelling a job on the coordinator must abort the remote optimizer:
// the dispatch context cancellation turns into DELETE on the worker.
func TestFleetCancellationPropagates(t *testing.T) {
	coord, workers, _ := startFleet(t, 1, server.Config{})
	req := server.SolveRequest{
		Nodes: 16, Edges: ladder(16), Depth: 8,
		Strategy: "naive", Seed: 7,
	}
	code, view := solveHTTP(t, coord.ts.URL, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d, view %+v", code, view)
	}
	// Let the dispatch reach the worker, then cancel coordinator-side.
	waitRemoteJob(t, workers[0].ts.URL, "job-00000001")
	delReq, _ := http.NewRequest(http.MethodDelete, coord.ts.URL+"/v1/jobs/"+view.ID, nil)
	if resp, err := http.DefaultClient.Do(delReq); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, wv := getJobView(t, workers[0].ts.URL, "job-00000001")
		if wv.State == server.StateCancelled {
			return
		}
		if wv.State.Terminal() {
			t.Fatalf("worker job ended %s, want cancelled", wv.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker job still %s: cancellation did not propagate", wv.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// End-to-end crash recovery: a journaled server dies (simulated by
// snapshotting the WAL's on-disk bytes at the kill instant — the 202
// for a job guarantees its accepted record is already on disk), and a
// fresh server recovering from that snapshot re-caches every completed
// result byte-identically (repeat requests cost 0 fev) and re-runs the
// incomplete job to the same result a never-crashed server produces.
func TestFleetWALCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "jobs.wal")
	wal, _, err := OpenWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	crashed := startNode(t, server.Config{Workers: 1, Journal: wal})

	reqDone := fleetReq(0)
	doneRes := solveDone(t, crashed.ts.URL, reqDone)

	reqOpen := server.SolveRequest{
		Nodes: 14, Edges: ladder(14), Depth: 8,
		Strategy: "naive", Seed: 9,
	}
	code, _ := solveHTTP(t, crashed.ts.URL, reqOpen)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d", code)
	}
	// kill -9 now: the on-disk bytes at this instant are the whole
	// machine state a real crash leaves behind.
	snapshot := filepath.Join(dir, "jobs.wal.at-crash")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snapshot, data, 0o644); err != nil {
		t.Fatal(err)
	}

	wal2, rec, err := OpenWAL(snapshot)
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()
	if len(rec.Completed) != 1 || len(rec.Incomplete) != 1 {
		t.Fatalf("recovered %d completed, %d incomplete; want 1, 1", len(rec.Completed), len(rec.Incomplete))
	}
	if !reflect.DeepEqual(rec.Completed[0].Result, doneRes) {
		t.Fatalf("journaled result differs from the served one:\n got %+v\nwant %+v", rec.Completed[0].Result, doneRes)
	}

	// Restarted process: seed the cache, re-enqueue the lost job —
	// exactly what qaoad does with -wal on boot.
	fresh := startNode(t, server.Config{Workers: 1, Journal: wal2})
	for _, c := range rec.Completed {
		fresh.srv.SeedCache(c.Key, c.Result)
	}
	job, err := fresh.srv.Resubmit(rec.Incomplete[0].Req)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-job.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("re-enqueued job never finished")
	}
	jv := job.View()
	if jv.State != server.StateDone {
		t.Fatalf("re-enqueued job ended %s: %s", jv.State, jv.Error)
	}

	// The recovered job's result matches a never-crashed solve.
	reference := startNode(t, server.Config{Workers: 1})
	refOpen := reqOpen
	refOpen.Wait = true
	want := solveDone(t, reference.ts.URL, refOpen)
	if !reflect.DeepEqual(jv.Result, want) {
		t.Fatalf("recovered solve differs from reference:\n got %+v\nwant %+v", jv.Result, want)
	}

	// And the replayed cache serves the completed job for free.
	fev := fresh.mem.CounterValue("optimize.fev_total")
	cached := solveDone(t, fresh.ts.URL, reqDone)
	if !reflect.DeepEqual(cached, doneRes) {
		t.Fatalf("replayed cache entry differs:\n got %+v\nwant %+v", cached, doneRes)
	}
	if after := fresh.mem.CounterValue("optimize.fev_total"); after != fev {
		t.Fatalf("repeat of a journaled result cost %d evaluations, want 0", after-fev)
	}
}

// ladder returns a 2×(n/2) ladder graph edge list — connected,
// deterministic, and slow enough to optimize at depth 8 that tests can
// race a cancellation or crash against the running solve.
func ladder(n int) [][2]int {
	var edges [][2]int
	half := n / 2
	for i := 0; i < half-1; i++ {
		edges = append(edges, [2]int{i, i + 1}, [2]int{half + i, half + i + 1})
	}
	for i := 0; i < half; i++ {
		edges = append(edges, [2]int{i, half + i})
	}
	return edges
}

func getJobView(t *testing.T, url, id string) (int, server.JobView) {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view server.JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, view
}

// waitRemoteJob polls until the worker has registered the job.
func waitRemoteJob(t *testing.T, url, id string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, _ := getJobView(t, url, id)
		if code == http.StatusOK {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker never saw job %s", id)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// drainCtx is a background context with a test-scoped timeout.
func drainCtx(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}
