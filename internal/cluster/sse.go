package cluster

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net/http"
	"strings"
)

// Minimal Server-Sent Events client for the worker's
// GET /v1/jobs/{id}/events stream. Only the subset the server emits is
// parsed: "event:" and "data:" fields, blank-line dispatch, ":" comment
// lines ignored. Used by the Dispatcher to relay per-iteration traces
// coordinator-side and by qaoaload's -sse sampling.

// Event is one parsed SSE message.
type Event struct {
	Name string // the event: field ("iteration", "result", ...)
	Data []byte // the data: payload (single line; JSON here)
}

// EventStream is an open SSE subscription. Next blocks for the next
// event; Close aborts the underlying request.
type EventStream struct {
	body   interface{ Close() error }
	sc     *bufio.Scanner
	cancel context.CancelFunc
}

// OpenEvents subscribes to jobID's event stream on the server at base
// (e.g. "http://127.0.0.1:8080"). The stream lives until ctx is
// cancelled, Close is called, or the server ends it (after the terminal
// "result" event).
func OpenEvents(ctx context.Context, client *http.Client, base, jobID string) (*EventStream, error) {
	ctx, cancel := context.WithCancel(ctx)
	url := strings.TrimRight(base, "/") + "/v1/jobs/" + jobID + "/events"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		cancel()
		return nil, err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := client.Do(req)
	if err != nil {
		cancel()
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		cancel()
		return nil, fmt.Errorf("cluster: event stream for %s: HTTP %d", jobID, resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	return &EventStream{body: resp.Body, sc: sc, cancel: cancel}, nil
}

// Next returns the next event, or an error once the stream ends (io.EOF
// surfaces as a generic "stream ended" error; a cancelled context as
// its error).
func (s *EventStream) Next() (Event, error) {
	var ev Event
	dispatch := false
	for s.sc.Scan() {
		line := s.sc.Bytes()
		switch {
		case len(line) == 0:
			if dispatch {
				return ev, nil
			}
		case line[0] == ':': // comment / keep-alive
		case bytes.HasPrefix(line, []byte("event:")):
			ev.Name = string(bytes.TrimSpace(line[len("event:"):]))
			dispatch = true
		case bytes.HasPrefix(line, []byte("data:")):
			ev.Data = append([]byte(nil), bytes.TrimSpace(line[len("data:"):])...)
			dispatch = true
		}
	}
	if err := s.sc.Err(); err != nil {
		return Event{}, err
	}
	return Event{}, fmt.Errorf("cluster: event stream ended")
}

// Close aborts the subscription.
func (s *EventStream) Close() error {
	s.cancel()
	return s.body.Close()
}
