package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixAtSet(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Errorf("At(1,2) = %v", m.At(1, 2))
	}
	if m.At(0, 0) != 0 {
		t.Errorf("zero matrix has nonzero entry")
	}
}

func TestFromRowsAndTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("T shape = %dx%d", tr.Rows, tr.Cols)
	}
	if tr.At(2, 1) != 6 || tr.At(0, 0) != 1 {
		t.Errorf("T entries wrong: %v", tr)
	}
	if !m.T().T().Equal(m, 0) {
		t.Error("double transpose != identity")
	}
}

func TestMatrixMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if got := a.Mul(b); !got.Equal(want, 1e-12) {
		t.Errorf("Mul =\n%v", got)
	}
}

func TestIdentityIsMulNeutral(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomMatrix(rng, 5, 5)
	if !a.Mul(Identity(5)).Equal(a, 1e-12) || !Identity(5).Mul(a).Equal(a, 1e-12) {
		t.Error("identity is not neutral for Mul")
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomMatrix(rng, 4, 6)
	v := randomVector(rng, 6)
	col := NewMatrix(6, 1)
	for i, x := range v {
		col.Set(i, 0, x)
	}
	want := a.Mul(col).Col(0)
	if got := a.MulVec(v); !got.Equal(want, 1e-12) {
		t.Errorf("MulVec = %v, want %v", got, want)
	}
}

func TestMulVecT(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomMatrix(rng, 4, 6)
	v := randomVector(rng, 4)
	want := a.T().MulVec(v)
	if got := a.MulVecT(v); !got.Equal(want, 1e-12) {
		t.Errorf("MulVecT = %v, want %v", got, want)
	}
}

func TestMatrixAddSubScale(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{4, 3}, {2, 1}})
	if !a.Add(b).Equal(FromRows([][]float64{{5, 5}, {5, 5}}), 0) {
		t.Error("Add wrong")
	}
	if !a.Sub(a).Equal(NewMatrix(2, 2), 0) {
		t.Error("Sub wrong")
	}
	if !a.Scale(2).Equal(FromRows([][]float64{{2, 4}, {6, 8}}), 0) {
		t.Error("Scale wrong")
	}
}

func TestDiagAndAddToDiag(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	if !a.Diag().Equal(Vector{1, 4}, 0) {
		t.Error("Diag wrong")
	}
	a.AddToDiag(10)
	if !a.Diag().Equal(Vector{11, 14}, 0) {
		t.Error("AddToDiag wrong")
	}
}

func TestIsSymmetric(t *testing.T) {
	s := FromRows([][]float64{{1, 2}, {2, 3}})
	if !s.IsSymmetric(0) {
		t.Error("symmetric matrix not detected")
	}
	ns := FromRows([][]float64{{1, 2}, {0, 3}})
	if ns.IsSymmetric(0) {
		t.Error("nonsymmetric matrix detected as symmetric")
	}
	if FromRows([][]float64{{1, 2, 3}}).IsSymmetric(0) {
		t.Error("nonsquare matrix detected as symmetric")
	}
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ for random small matrices.
func TestMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomMatrix(rng, 3, 4)
		b := randomMatrix(rng, 4, 2)
		return a.Mul(b).T().Equal(b.T().Mul(a.T()), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Frobenius norm is submultiplicative: ‖AB‖_F ≤ ‖A‖_F‖B‖_F.
func TestFrobeniusSubmultiplicative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomMatrix(rng, 3, 3)
		b := randomMatrix(rng, 3, 3)
		return a.Mul(b).FrobeniusNorm() <= a.FrobeniusNorm()*b.FrobeniusNorm()*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMatrixStringDoesNotPanic(t *testing.T) {
	s := FromRows([][]float64{{1, math.Pi}}).String()
	if s == "" {
		t.Error("empty String output")
	}
}

func randomMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func randomVector(rng *rand.Rand, n int) Vector {
	v := make(Vector, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}
