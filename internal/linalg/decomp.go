package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned by Cholesky when the input matrix is
// not symmetric positive definite (within floating-point tolerance).
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// ErrSingular is returned by LU-based solvers when a pivot vanishes.
var ErrSingular = errors.New("linalg: matrix is singular")

// CholeskyDecomp holds the lower-triangular factor L with A = L·Lᵀ.
type CholeskyDecomp struct {
	L *Matrix
}

// Cholesky factors a symmetric positive-definite matrix A into L·Lᵀ.
// Only the lower triangle of A is read.
func Cholesky(a *Matrix) (*CholeskyDecomp, error) {
	a.checkSquare()
	n := a.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotPositiveDefinite
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/ljj)
		}
	}
	return &CholeskyDecomp{L: l}, nil
}

// Solve solves A·x = b using the factorization.
func (c *CholeskyDecomp) Solve(b Vector) Vector {
	y := SolveLowerTriangular(c.L, b)
	return SolveUpperTriangular(c.L.T(), y)
}

// SolveMatrix solves A·X = B column by column.
func (c *CholeskyDecomp) SolveMatrix(b *Matrix) *Matrix {
	x := NewMatrix(b.Rows, b.Cols)
	for j := 0; j < b.Cols; j++ {
		col := c.Solve(b.Col(j))
		for i := range col {
			x.Set(i, j, col[i])
		}
	}
	return x
}

// LogDet returns log det(A) = 2·Σ log L[i][i].
func (c *CholeskyDecomp) LogDet() float64 {
	s := 0.0
	for i := 0; i < c.L.Rows; i++ {
		s += math.Log(c.L.At(i, i))
	}
	return 2 * s
}

// SolveLowerTriangular solves L·y = b by forward substitution.
func SolveLowerTriangular(l *Matrix, b Vector) Vector {
	l.checkSquare()
	n := l.Rows
	if len(b) != n {
		panic("linalg: rhs length mismatch")
	}
	y := make(Vector, n)
	for i := 0; i < n; i++ {
		s := b[i]
		row := l.Data[i*n : i*n+i]
		for k, lik := range row {
			s -= lik * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	return y
}

// SolveUpperTriangular solves U·x = b by back substitution.
func SolveUpperTriangular(u *Matrix, b Vector) Vector {
	u.checkSquare()
	n := u.Rows
	if len(b) != n {
		panic("linalg: rhs length mismatch")
	}
	x := make(Vector, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < n; k++ {
			s -= u.At(i, k) * x[k]
		}
		x[i] = s / u.At(i, i)
	}
	return x
}

// LUDecomp holds an LU factorization with partial pivoting: P·A = L·U.
type LUDecomp struct {
	lu   *Matrix // packed L (unit diagonal, below) and U (on/above diagonal)
	piv  []int   // row permutation
	sign int     // permutation parity, used for Det
}

// LU factors A with partial pivoting.
func LU(a *Matrix) (*LUDecomp, error) {
	a.checkSquare()
	n := a.Rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for col := 0; col < n; col++ {
		// Pivot search.
		p := col
		maxAbs := math.Abs(lu.At(col, col))
		for i := col + 1; i < n; i++ {
			if a := math.Abs(lu.At(i, col)); a > maxAbs {
				maxAbs, p = a, i
			}
		}
		if maxAbs == 0 {
			return nil, ErrSingular
		}
		if p != col {
			ri, rj := lu.Data[p*n:(p+1)*n], lu.Data[col*n:(col+1)*n]
			for k := 0; k < n; k++ {
				ri[k], rj[k] = rj[k], ri[k]
			}
			piv[p], piv[col] = piv[col], piv[p]
			sign = -sign
		}
		d := lu.At(col, col)
		for i := col + 1; i < n; i++ {
			f := lu.At(i, col) / d
			lu.Set(i, col, f)
			for j := col + 1; j < n; j++ {
				lu.Set(i, j, lu.At(i, j)-f*lu.At(col, j))
			}
		}
	}
	return &LUDecomp{lu: lu, piv: piv, sign: sign}, nil
}

// Solve solves A·x = b.
func (d *LUDecomp) Solve(b Vector) Vector {
	n := d.lu.Rows
	if len(b) != n {
		panic("linalg: rhs length mismatch")
	}
	x := make(Vector, n)
	for i := 0; i < n; i++ {
		x[i] = b[d.piv[i]]
	}
	// Forward substitution with unit-diagonal L.
	for i := 1; i < n; i++ {
		for k := 0; k < i; k++ {
			x[i] -= d.lu.At(i, k) * x[k]
		}
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		for k := i + 1; k < n; k++ {
			x[i] -= d.lu.At(i, k) * x[k]
		}
		x[i] /= d.lu.At(i, i)
	}
	return x
}

// Det returns det(A).
func (d *LUDecomp) Det() float64 {
	det := float64(d.sign)
	for i := 0; i < d.lu.Rows; i++ {
		det *= d.lu.At(i, i)
	}
	return det
}

// QRDecomp holds a thin Householder QR factorization A = Q·R with
// Q m×n orthonormal columns and R n×n upper triangular (m ≥ n).
type QRDecomp struct {
	Q *Matrix
	R *Matrix
}

// QR computes the thin QR factorization of an m×n matrix with m ≥ n
// using Householder reflections.
func QR(a *Matrix) (*QRDecomp, error) {
	m, n := a.Rows, a.Cols
	if m < n {
		return nil, fmt.Errorf("linalg: QR requires rows >= cols, got %dx%d", m, n)
	}
	r := a.Clone()
	// Accumulate Q implicitly by applying reflectors to an m×m identity,
	// then truncating; m is small in this repo so this is fine.
	q := Identity(m)
	v := make(Vector, m)
	for k := 0; k < n; k++ {
		// Build Householder vector for column k.
		normX := 0.0
		for i := k; i < m; i++ {
			normX += r.At(i, k) * r.At(i, k)
		}
		normX = math.Sqrt(normX)
		if normX == 0 {
			continue
		}
		alpha := -math.Copysign(normX, r.At(k, k))
		vnorm2 := 0.0
		for i := k; i < m; i++ {
			vi := r.At(i, k)
			if i == k {
				vi -= alpha
			}
			v[i] = vi
			vnorm2 += vi * vi
		}
		if vnorm2 == 0 {
			continue
		}
		// Apply H = I - 2vvᵀ/vᵀv to R (columns k..n-1).
		for j := k; j < n; j++ {
			s := 0.0
			for i := k; i < m; i++ {
				s += v[i] * r.At(i, j)
			}
			f := 2 * s / vnorm2
			for i := k; i < m; i++ {
				r.Set(i, j, r.At(i, j)-f*v[i])
			}
		}
		// Apply H to Q from the right: Q = Q·H.
		for i := 0; i < m; i++ {
			s := 0.0
			for j := k; j < m; j++ {
				s += q.At(i, j) * v[j]
			}
			f := 2 * s / vnorm2
			for j := k; j < m; j++ {
				q.Set(i, j, q.At(i, j)-f*v[j])
			}
		}
	}
	// Truncate to thin factors.
	qt := NewMatrix(m, n)
	rt := NewMatrix(n, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			qt.Set(i, j, q.At(i, j))
		}
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			rt.Set(i, j, r.At(i, j))
		}
	}
	return &QRDecomp{Q: qt, R: rt}, nil
}

// SolveLeastSquares returns the x minimizing ‖A·x − b‖₂ via R·x = Qᵀb.
// It returns ErrSingular when A is rank deficient.
func (d *QRDecomp) SolveLeastSquares(b Vector) (Vector, error) {
	n := d.R.Rows
	for i := 0; i < n; i++ {
		if math.Abs(d.R.At(i, i)) < 1e-12*(1+d.R.MaxAbs()) {
			return nil, ErrSingular
		}
	}
	qtb := d.Q.MulVecT(b)
	return SolveUpperTriangular(d.R, qtb), nil
}

// Solve solves the square system A·x = b via LU with partial pivoting.
func Solve(a *Matrix, b Vector) (Vector, error) {
	lu, err := LU(a)
	if err != nil {
		return nil, err
	}
	return lu.Solve(b), nil
}

// SolveSPD solves A·x = b for symmetric positive-definite A via Cholesky.
func SolveSPD(a *Matrix, b Vector) (Vector, error) {
	ch, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	return ch.Solve(b), nil
}

// LeastSquares returns argmin ‖A·x − b‖₂ for m×n A with m ≥ n.
func LeastSquares(a *Matrix, b Vector) (Vector, error) {
	qr, err := QR(a)
	if err != nil {
		return nil, err
	}
	return qr.SolveLeastSquares(b)
}
