// Package linalg provides the dense real linear algebra needed by the
// rest of the repository: vectors, row-major matrices, Householder QR,
// Cholesky and LU factorizations, and linear solvers.
//
// It replaces the NumPy/SciPy and MATLAB routines used in the paper's
// original stack. Everything is float64 and allocation-explicit; the
// problem sizes in this reproduction (matrices up to a few hundred rows
// for Gaussian-process regression) do not need blocked or parallel
// kernels.
package linalg

import (
	"fmt"
	"math"
)

// Vector is a dense column vector.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	w := make(Vector, len(v))
	copy(w, v)
	return w
}

// Add returns v + w. It panics if lengths differ.
func (v Vector) Add(w Vector) Vector {
	checkLen(v, w)
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Sub returns v - w. It panics if lengths differ.
func (v Vector) Sub(w Vector) Vector {
	checkLen(v, w)
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Scale returns a*v.
func (v Vector) Scale(a float64) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = a * v[i]
	}
	return out
}

// AddScaled adds a*w to v in place and returns v.
func (v Vector) AddScaled(a float64, w Vector) Vector {
	checkLen(v, w)
	for i := range v {
		v[i] += a * w[i]
	}
	return v
}

// Dot returns the inner product of v and w. It panics if lengths differ.
func (v Vector) Dot(w Vector) float64 {
	checkLen(v, w)
	s := 0.0
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm returns the Euclidean norm of v.
func (v Vector) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// NormInf returns the maximum absolute entry of v (0 for empty v).
func (v Vector) NormInf() float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Max returns the maximum entry of v. It panics on an empty vector.
func (v Vector) Max() float64 {
	if len(v) == 0 {
		panic("linalg: Max of empty vector")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum entry of v. It panics on an empty vector.
func (v Vector) Min() float64 {
	if len(v) == 0 {
		panic("linalg: Min of empty vector")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Equal reports whether v and w have the same length and entries within tol.
func (v Vector) Equal(w Vector, tol float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-w[i]) > tol {
			return false
		}
	}
	return true
}

func checkLen(v, w Vector) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: vector length mismatch %d != %d", len(v), len(w)))
	}
}
