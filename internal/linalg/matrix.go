package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, element (i,j) at Data[i*Cols+j]
}

// NewMatrix returns a zero Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices. All rows must share a length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("linalg: ragged rows in FromRows")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a Vector view (shared storage).
func (m *Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Col returns a copy of column j.
func (m *Matrix) Col(j int) Vector {
	v := make(Vector, m.Rows)
	for i := 0; i < m.Rows; i++ {
		v[i] = m.At(i, j)
	}
	return v
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Add returns m + b. It panics on shape mismatch.
func (m *Matrix) Add(b *Matrix) *Matrix {
	m.checkSameShape(b)
	c := m.Clone()
	for i := range c.Data {
		c.Data[i] += b.Data[i]
	}
	return c
}

// Sub returns m - b. It panics on shape mismatch.
func (m *Matrix) Sub(b *Matrix) *Matrix {
	m.checkSameShape(b)
	c := m.Clone()
	for i := range c.Data {
		c.Data[i] -= b.Data[i]
	}
	return c
}

// Scale returns a*m.
func (m *Matrix) Scale(a float64) *Matrix {
	c := m.Clone()
	for i := range c.Data {
		c.Data[i] *= a
	}
	return c
}

// Mul returns the matrix product m·b. It panics if inner dimensions differ.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul shape mismatch (%dx%d)·(%dx%d)", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	c := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Data[i*m.Cols : (i+1)*m.Cols]
		ci := c.Data[i*c.Cols : (i+1)*c.Cols]
		for k, mik := range mi {
			if mik == 0 {
				continue
			}
			bk := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j := range ci {
				ci[j] += mik * bk[j]
			}
		}
	}
	return c
}

// MulVec returns m·v. It panics if m.Cols != len(v).
func (m *Matrix) MulVec(v Vector) Vector {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("linalg: MulVec shape mismatch (%dx%d)·(%d)", m.Rows, m.Cols, len(v)))
	}
	out := make(Vector, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = Vector(m.Data[i*m.Cols : (i+1)*m.Cols]).Dot(v)
	}
	return out
}

// MulVecT returns mᵀ·v without forming the transpose.
func (m *Matrix) MulVecT(v Vector) Vector {
	if m.Rows != len(v) {
		panic(fmt.Sprintf("linalg: MulVecT shape mismatch (%dx%d)ᵀ·(%d)", m.Rows, m.Cols, len(v)))
	}
	out := make(Vector, m.Cols)
	for i := 0; i < m.Rows; i++ {
		vi := v[i]
		if vi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j := range out {
			out[j] += vi * row[j]
		}
	}
	return out
}

// Diag returns the main diagonal as a vector.
func (m *Matrix) Diag() Vector {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	v := make(Vector, n)
	for i := 0; i < n; i++ {
		v[i] = m.At(i, i)
	}
	return v
}

// AddToDiag adds a to each diagonal entry in place and returns m.
func (m *Matrix) AddToDiag(a float64) *Matrix {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	for i := 0; i < n; i++ {
		m.Set(i, i, m.At(i, i)+a)
	}
	return m
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	s := 0.0
	for _, x := range m.Data {
		s += x * x
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute entry of m (0 for an empty matrix).
func (m *Matrix) MaxAbs() float64 {
	mx := 0.0
	for _, x := range m.Data {
		if a := math.Abs(x); a > mx {
			mx = a
		}
	}
	return mx
}

// Equal reports whether m and b have the same shape and entries within tol.
func (m *Matrix) Equal(b *Matrix, tol float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for i := range m.Data {
		if math.Abs(m.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// IsSymmetric reports whether m equals its transpose within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			fmt.Fprintf(&b, "%10.5g ", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func (m *Matrix) checkSameShape(b *Matrix) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
}

func (m *Matrix) checkSquare() {
	if m.Rows != m.Cols {
		panic(fmt.Sprintf("linalg: %dx%d matrix is not square", m.Rows, m.Cols))
	}
}
