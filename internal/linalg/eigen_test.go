package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEigenSymDiagonal(t *testing.T) {
	a := FromRows([][]float64{{3, 0}, {0, -1}})
	vals, vecs, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	if !vals.Equal(Vector{-1, 3}, 1e-12) {
		t.Errorf("eigenvalues = %v", vals)
	}
	if !vecs.T().Mul(vecs).Equal(Identity(2), 1e-10) {
		t.Error("eigenvectors not orthonormal")
	}
}

func TestEigenSymKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	vals, _, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	if !vals.Equal(Vector{1, 3}, 1e-10) {
		t.Errorf("eigenvalues = %v", vals)
	}
}

func TestEigenSymReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(7)
		a := randomMatrix(rng, n, n)
		sym := a.Add(a.T()).Scale(0.5)
		vals, vecs, err := EigenSym(sym)
		if err != nil {
			t.Fatal(err)
		}
		// Ascending order.
		for i := 1; i < n; i++ {
			if vals[i] < vals[i-1]-1e-12 {
				t.Fatalf("eigenvalues not ascending: %v", vals)
			}
		}
		// A = V Λ Vᵀ.
		lam := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			lam.Set(i, i, vals[i])
		}
		if !vecs.Mul(lam).Mul(vecs.T()).Equal(sym, 1e-8) {
			t.Fatal("V·Λ·Vᵀ != A")
		}
		// Orthonormality.
		if !vecs.T().Mul(vecs).Equal(Identity(n), 1e-8) {
			t.Fatal("VᵀV != I")
		}
	}
}

func TestEigenSymRejectsNonSymmetric(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {0, 1}})
	if _, _, err := EigenSym(a); err == nil {
		t.Error("nonsymmetric matrix accepted")
	}
}

// Property: the trace equals the eigenvalue sum, and residuals
// ‖A·v − λv‖ vanish for every pair.
func TestEigenSymProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		a := randomMatrix(rng, n, n)
		sym := a.Add(a.T()).Scale(0.5)
		vals, vecs, err := EigenSym(sym)
		if err != nil {
			return false
		}
		trace := 0.0
		for i := 0; i < n; i++ {
			trace += sym.At(i, i)
		}
		sum := 0.0
		for _, v := range vals {
			sum += v
		}
		if math.Abs(trace-sum) > 1e-8*(1+math.Abs(trace)) {
			return false
		}
		for i := 0; i < n; i++ {
			v := vecs.Col(i)
			r := sym.MulVec(v).Sub(v.Scale(vals[i]))
			if r.NormInf() > 1e-8*(1+math.Abs(vals[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
