package linalg

import (
	"fmt"
	"math"
	"sort"
)

// EigenSym computes the full eigendecomposition of a symmetric matrix
// with the cyclic Jacobi method: A = V·diag(λ)·Vᵀ with eigenvalues
// ascending and V's columns the corresponding orthonormal eigenvectors.
// It returns an error if A is not symmetric (within a small tolerance)
// or the sweep limit is exceeded (pathological input).
func EigenSym(a *Matrix) (eigenvalues Vector, v *Matrix, err error) {
	a.checkSquare()
	if !a.IsSymmetric(1e-10 * (1 + a.MaxAbs())) {
		return nil, nil, fmt.Errorf("linalg: EigenSym requires a symmetric matrix")
	}
	n := a.Rows
	w := a.Clone()
	v = Identity(n)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if math.Sqrt(2*off) <= 1e-12*(1+w.MaxAbs()) {
			return sortedEigen(w, v)
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) <= 1e-14*(1+w.MaxAbs()) {
					continue
				}
				// Jacobi rotation annihilating w[p][q].
				theta := (w.At(q, q) - w.At(p, p)) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				rotate(w, v, p, q, c, s)
			}
		}
	}
	return nil, nil, fmt.Errorf("linalg: Jacobi failed to converge in %d sweeps", 100)
}

// rotate applies the Jacobi rotation J(p,q,θ) as W ← JᵀWJ and V ← VJ.
func rotate(w, v *Matrix, p, q int, c, s float64) {
	n := w.Rows
	for k := 0; k < n; k++ {
		wkp, wkq := w.At(k, p), w.At(k, q)
		w.Set(k, p, c*wkp-s*wkq)
		w.Set(k, q, s*wkp+c*wkq)
	}
	for k := 0; k < n; k++ {
		wpk, wqk := w.At(p, k), w.At(q, k)
		w.Set(p, k, c*wpk-s*wqk)
		w.Set(q, k, s*wpk+c*wqk)
	}
	for k := 0; k < n; k++ {
		vkp, vkq := v.At(k, p), v.At(k, q)
		v.Set(k, p, c*vkp-s*vkq)
		v.Set(k, q, s*vkp+c*vkq)
	}
}

// sortedEigen extracts the diagonal and reorders eigenpairs ascending.
func sortedEigen(w, v *Matrix) (Vector, *Matrix, error) {
	n := w.Rows
	type pair struct {
		val float64
		col int
	}
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{w.At(i, i), i}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].val < pairs[b].val })
	vals := make(Vector, n)
	vecs := NewMatrix(n, n)
	for i, p := range pairs {
		vals[i] = p.val
		for r := 0; r < n; r++ {
			vecs.Set(r, i, v.At(r, p.col))
		}
	}
	return vals, vecs, nil
}
