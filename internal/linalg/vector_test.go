package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVectorAddSub(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	if got := v.Add(w); !got.Equal(Vector{5, 7, 9}, 0) {
		t.Errorf("Add = %v", got)
	}
	if got := w.Sub(v); !got.Equal(Vector{3, 3, 3}, 0) {
		t.Errorf("Sub = %v", got)
	}
	// Originals unchanged.
	if !v.Equal(Vector{1, 2, 3}, 0) {
		t.Errorf("Add mutated receiver: %v", v)
	}
}

func TestVectorScaleDotNorm(t *testing.T) {
	v := Vector{3, 4}
	if got := v.Scale(2); !got.Equal(Vector{6, 8}, 0) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Dot(Vector{1, 1}); got != 7 {
		t.Errorf("Dot = %v", got)
	}
	if got := v.Norm(); math.Abs(got-5) > 1e-15 {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := (Vector{-3, 2}).NormInf(); got != 3 {
		t.Errorf("NormInf = %v", got)
	}
}

func TestVectorAddScaled(t *testing.T) {
	v := Vector{1, 1}
	v.AddScaled(3, Vector{2, -1})
	if !v.Equal(Vector{7, -2}, 0) {
		t.Errorf("AddScaled = %v", v)
	}
}

func TestVectorMinMax(t *testing.T) {
	v := Vector{2, -7, 5, 0}
	if v.Min() != -7 || v.Max() != 5 {
		t.Errorf("Min/Max = %v/%v", v.Min(), v.Max())
	}
}

func TestVectorMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched lengths")
		}
	}()
	_ = Vector{1}.Dot(Vector{1, 2})
}

func TestVectorClone(t *testing.T) {
	v := Vector{1, 2}
	w := v.Clone()
	w[0] = 9
	if v[0] != 1 {
		t.Error("Clone shares storage")
	}
}

// Property: dot product is symmetric and Cauchy-Schwarz holds.
func TestVectorDotProperties(t *testing.T) {
	f := func(a, b [8]float64) bool {
		v, w := clamp(a[:]), clamp(b[:])
		d1, d2 := v.Dot(w), w.Dot(v)
		if math.Abs(d1-d2) > 1e-9*(1+math.Abs(d1)) {
			return false
		}
		return math.Abs(d1) <= v.Norm()*w.Norm()*(1+1e-9)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: triangle inequality for the Euclidean norm.
func TestVectorTriangleInequality(t *testing.T) {
	f := func(a, b [6]float64) bool {
		v, w := clamp(a[:]), clamp(b[:])
		return v.Add(w).Norm() <= v.Norm()+w.Norm()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clamp replaces NaN/Inf/huge quick-generated values with tame ones so
// float roundoff bounds in properties stay meaningful.
func clamp(xs []float64) Vector {
	v := make(Vector, len(xs))
	for i, x := range xs {
		switch {
		case math.IsNaN(x) || math.IsInf(x, 0):
			v[i] = 1
		case x > 1e6:
			v[i] = 1e6
		case x < -1e6:
			v[i] = -1e6
		default:
			v[i] = x
		}
	}
	return v
}
