package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomSPD returns a random symmetric positive-definite matrix.
func randomSPD(rng *rand.Rand, n int) *Matrix {
	a := randomMatrix(rng, n, n)
	spd := a.Mul(a.T())
	spd.AddToDiag(float64(n)) // safely away from singular
	return spd
}

func TestCholeskyReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for n := 1; n <= 8; n++ {
		a := randomSPD(rng, n)
		ch, err := Cholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !ch.L.Mul(ch.L.T()).Equal(a, 1e-9) {
			t.Errorf("n=%d: L·Lᵀ != A", n)
		}
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randomSPD(rng, 6)
	x := randomVector(rng, 6)
	b := a.MulVec(x)
	ch, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := ch.Solve(b); !got.Equal(x, 1e-8) {
		t.Errorf("Solve = %v, want %v", got, x)
	}
}

func TestCholeskySolveMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomSPD(rng, 4)
	xm := randomMatrix(rng, 4, 3)
	bm := a.Mul(xm)
	ch, _ := Cholesky(a)
	if got := ch.SolveMatrix(bm); !got.Equal(xm, 1e-8) {
		t.Error("SolveMatrix mismatch")
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err != ErrNotPositiveDefinite {
		t.Errorf("err = %v, want ErrNotPositiveDefinite", err)
	}
}

func TestCholeskyLogDet(t *testing.T) {
	a := FromRows([][]float64{{4, 0}, {0, 9}})
	ch, _ := Cholesky(a)
	if got, want := ch.LogDet(), math.Log(36); math.Abs(got-want) > 1e-12 {
		t.Errorf("LogDet = %v, want %v", got, want)
	}
}

func TestLUSolveAndDet(t *testing.T) {
	a := FromRows([][]float64{{2, 1, 1}, {4, -6, 0}, {-2, 7, 2}})
	lu, err := LU(a)
	if err != nil {
		t.Fatal(err)
	}
	x := lu.Solve(Vector{5, -2, 9})
	if got := a.MulVec(x); !got.Equal(Vector{5, -2, 9}, 1e-10) {
		t.Errorf("LU solve residual: A·x = %v", got)
	}
	// det by cofactor: 2(-12-0) -1(8-0) +1(28-12) = -24-8+16 = -16
	if got := lu.Det(); math.Abs(got-(-16)) > 1e-10 {
		t.Errorf("Det = %v, want -16", got)
	}
}

func TestLUSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := LU(a); err != ErrSingular {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestQROrthonormalAndReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randomMatrix(rng, 7, 4)
	qr, err := QR(a)
	if err != nil {
		t.Fatal(err)
	}
	if !qr.Q.T().Mul(qr.Q).Equal(Identity(4), 1e-9) {
		t.Error("QᵀQ != I")
	}
	if !qr.Q.Mul(qr.R).Equal(a, 1e-9) {
		t.Error("Q·R != A")
	}
	// R upper triangular.
	for i := 1; i < 4; i++ {
		for j := 0; j < i; j++ {
			if qr.R.At(i, j) != 0 {
				t.Errorf("R[%d][%d] = %v, want 0", i, j, qr.R.At(i, j))
			}
		}
	}
}

func TestQRRejectsWide(t *testing.T) {
	if _, err := QR(NewMatrix(2, 3)); err == nil {
		t.Error("expected error for wide matrix")
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// Overdetermined consistent system: fit y = 2x + 1 exactly.
	a := FromRows([][]float64{{1, 0}, {1, 1}, {1, 2}, {1, 3}})
	b := Vector{1, 3, 5, 7}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !x.Equal(Vector{1, 2}, 1e-10) {
		t.Errorf("LeastSquares = %v, want [1 2]", x)
	}
}

func TestLeastSquaresResidualOrthogonal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randomMatrix(rng, 10, 3)
	b := randomVector(rng, 10)
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	r := b.Sub(a.MulVec(x))
	// Normal equations: Aᵀr = 0.
	if got := a.MulVecT(r); got.NormInf() > 1e-9 {
		t.Errorf("Aᵀr = %v, want ~0", got)
	}
}

func TestLeastSquaresRankDeficient(t *testing.T) {
	a := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	if _, err := LeastSquares(a, Vector{1, 2, 3}); err != ErrSingular {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestSolveAndSolveSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randomSPD(rng, 5)
	x := randomVector(rng, 5)
	b := a.MulVec(x)
	got, err := Solve(a.Clone(), b)
	if err != nil || !got.Equal(x, 1e-8) {
		t.Errorf("Solve = %v (err %v), want %v", got, err, x)
	}
	got, err = SolveSPD(a, b)
	if err != nil || !got.Equal(x, 1e-8) {
		t.Errorf("SolveSPD = %v (err %v), want %v", got, err, x)
	}
}

// Property: for random SPD systems, the Cholesky solution satisfies
// the original system to high relative accuracy.
func TestCholeskySolveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		a := randomSPD(rng, n)
		b := randomVector(rng, n)
		ch, err := Cholesky(a)
		if err != nil {
			return false
		}
		x := ch.Solve(b)
		res := a.MulVec(x).Sub(b)
		return res.NormInf() <= 1e-8*(1+b.NormInf())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: triangular solves invert triangular multiplies.
func TestTriangularSolveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		l := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < i; j++ {
				l.Set(i, j, rng.NormFloat64())
			}
			l.Set(i, i, 1+rng.Float64()) // well away from zero
		}
		x := randomVector(rng, n)
		if !SolveLowerTriangular(l, l.MulVec(x)).Equal(x, 1e-8) {
			return false
		}
		u := l.T()
		return SolveUpperTriangular(u, u.MulVec(x)).Equal(x, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
