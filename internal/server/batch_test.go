package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"testing"
	"time"
)

// postBatch submits a batch and decodes the response; the raw status
// code comes back for top-level-error tests.
func postBatch(t *testing.T, url string, req BatchRequest) (int, BatchResponse) {
	t.Helper()
	blob, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/solve/batch", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var br BatchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &br); err != nil {
			t.Fatalf("decoding %q: %v", body, err)
		}
	}
	return resp.StatusCode, br
}

// mixedBatchItems returns one solvable item per problem family.
func mixedBatchItems() []SolveRequest {
	nodes, edges := testInstance(3)
	return []SolveRequest{
		{Nodes: nodes, Edges: edges, Depth: 1, Strategy: StrategyNaive, Seed: 1},
		{Problem: "partition", Numbers: []float64{4, 8, 15, 16, 23, 42}, Depth: 1, Strategy: StrategyNaive, Seed: 2},
		{Problem: "maxksat", Vars: 5, Clauses: [][]int{{1, -2}, {2, 3}, {-3, 4}, {4, 5}, {-1, -5}},
			Depth: 1, Strategy: StrategyNaive, Seed: 3},
	}
}

// TestBatchMixedFamiliesBitIdentical: a mixed-family batch succeeds per
// item and every result is bit-identical to the same spec solved
// through sequential POST /v1/solve on a fresh server — batching
// changes scheduling, never arithmetic.
func TestBatchMixedFamiliesBitIdentical(t *testing.T) {
	_, tsBatch := newTestServer(t, Config{Workers: 2})
	_, tsSeq := newTestServer(t, Config{Workers: 2})

	items := mixedBatchItems()
	code, br := postBatch(t, tsBatch.URL, BatchRequest{Items: items})
	if code != http.StatusOK {
		t.Fatalf("batch status %d", code)
	}
	if len(br.Items) != len(items) {
		t.Fatalf("%d results for %d items", len(br.Items), len(items))
	}
	for i, item := range br.Items {
		if item.Code != http.StatusOK || item.Job == nil || item.Job.State != StateDone {
			t.Fatalf("item %d: code %d, job %+v", i, item.Code, item.Job)
		}
		seq := items[i]
		seq.Wait = true
		seqCode, seqView := postSolve(t, tsSeq.URL, seq)
		if seqCode != http.StatusOK || seqView.State != StateDone {
			t.Fatalf("sequential item %d: status %d state %s", i, seqCode, seqView.State)
		}
		if !reflect.DeepEqual(item.Job.Result, seqView.Result) {
			t.Fatalf("item %d: batch result %+v != sequential %+v", i, item.Job.Result, seqView.Result)
		}
	}
}

// TestBatchIntraBatchDedup: a batch of B identical specs costs exactly
// one optimizer run — pinned through the optimize.fev_total counter
// against a reference single solve — and the B−1 followers share the
// owner's job.
func TestBatchIntraBatchDedup(t *testing.T) {
	nodes, edges := testInstance(11)
	spec := SolveRequest{Nodes: nodes, Edges: edges, Depth: 1, Strategy: StrategyNaive, Seed: 4}

	// Reference: the optimizer budget of one solve of this spec.
	sRef, tsRef := newTestServer(t, Config{Workers: 1})
	ref := spec
	ref.Wait = true
	if code, view := postSolve(t, tsRef.URL, ref); code != http.StatusOK || view.State != StateDone {
		t.Fatalf("reference solve: %d %+v", code, view)
	}
	fevOne := sRef.mem.CounterValue("optimize.fev_total")
	if fevOne == 0 {
		t.Fatal("reference solve recorded no objective evaluations")
	}

	const B = 4
	s, ts := newTestServer(t, Config{Workers: 2})
	items := make([]SolveRequest, B)
	for i := range items {
		items[i] = spec
	}
	code, br := postBatch(t, ts.URL, BatchRequest{Items: items})
	if code != http.StatusOK {
		t.Fatalf("batch status %d", code)
	}
	ownerID := br.Items[0].Job.ID
	for i, item := range br.Items {
		if item.Code != http.StatusOK || item.Job == nil || item.Job.State != StateDone {
			t.Fatalf("item %d: %+v", i, item)
		}
		if (i > 0) != item.Deduped {
			t.Fatalf("item %d: deduped = %v", i, item.Deduped)
		}
		if item.Job.ID != ownerID {
			t.Fatalf("item %d resolved job %s, want owner %s", i, item.Job.ID, ownerID)
		}
	}
	if fev := s.mem.CounterValue("optimize.fev_total"); fev != fevOne {
		t.Fatalf("batch of %d identical specs spent %d objective calls, want one run's %d", B, fev, fevOne)
	}
	if got := s.mem.CounterValue("server.batch.deduped"); got != B-1 {
		t.Fatalf("deduped counter %d, want %d", got, B-1)
	}
}

// TestBatchPartialFailure: a malformed item fails its own slot with a
// per-item code and error while the rest of the batch completes.
func TestBatchPartialFailure(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	nodes, edges := testInstance(5)
	items := []SolveRequest{
		{Nodes: nodes, Edges: edges, Depth: 1, Strategy: StrategyNaive, Seed: 1},
		{Nodes: nodes, Edges: edges, Depth: 99, Strategy: StrategyNaive, Seed: 2}, // over MaxDepth
		{Problem: "partition", Numbers: []float64{3, 1, 4, 1, 5}, Depth: 1, Strategy: StrategyNaive, Seed: 3},
	}
	code, br := postBatch(t, ts.URL, BatchRequest{Items: items})
	if code != http.StatusOK {
		t.Fatalf("batch status %d (well-formed batches respond 200 even with failed items)", code)
	}
	if br.Items[1].Code != http.StatusBadRequest || br.Items[1].Error == "" || br.Items[1].Job != nil {
		t.Fatalf("bad item: %+v", br.Items[1])
	}
	for _, i := range []int{0, 2} {
		if br.Items[i].Code != http.StatusOK || br.Items[i].Job == nil || br.Items[i].Job.State != StateDone {
			t.Fatalf("good item %d did not complete: %+v", i, br.Items[i])
		}
	}
}

// TestBatchLimits: empty batches and batches over MaxBatch are rejected
// whole with 400.
func TestBatchLimits(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxBatch: 2})
	nodes, edges := testInstance(6)
	item := SolveRequest{Nodes: nodes, Edges: edges, Depth: 1, Strategy: StrategyNaive}
	if code, _ := postBatch(t, ts.URL, BatchRequest{}); code != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400", code)
	}
	if code, _ := postBatch(t, ts.URL, BatchRequest{Items: []SolveRequest{item, item, item}}); code != http.StatusBadRequest {
		t.Fatalf("oversize batch: status %d, want 400", code)
	}
	if code, _ := postBatch(t, ts.URL, BatchRequest{Items: []SolveRequest{item, item}}); code != http.StatusOK {
		t.Fatalf("at-limit batch: status %d, want 200", code)
	}
}

// TestBatchClientDisconnectCancels: a batch submitter that drops the
// connection mid-run cancels the jobs the batch originated — both the
// one running and the one still queued.
func TestBatchClientDisconnectCancels(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	started := make(chan *Job, 2)
	release := make(chan struct{})
	defer close(release)
	blockingSolve(s, started, release)

	n1, e1 := testInstance(21)
	n2, e2 := testInstance(22)
	blob, err := json.Marshal(BatchRequest{Items: []SolveRequest{
		{Nodes: n1, Edges: e1, Depth: 1, Strategy: StrategyNaive, Seed: 1},
		{Nodes: n2, Edges: e2, Depth: 1, Strategy: StrategyNaive, Seed: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	reqCtx, abort := context.WithCancel(context.Background())
	httpReq, err := http.NewRequestWithContext(reqCtx, http.MethodPost,
		ts.URL+"/v1/solve/batch", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(httpReq)
		errc <- err
	}()

	job1 := <-started // item 1 running on the single worker, item 2 queued
	abort()
	if err := <-errc; err == nil {
		t.Fatal("batch request unexpectedly completed")
	}
	waitState(t, job1, StateCancelled, 10*time.Second)
	deadline := time.Now().Add(10 * time.Second)
	for s.mem.CounterValue("server.jobs.cancelled") < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("cancelled counter stuck at %d, want 2", s.mem.CounterValue("server.jobs.cancelled"))
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := s.mem.CounterValue("server.jobs.client_disconnects"); got != 1 {
		t.Fatalf("client_disconnects counter %d, want 1", got)
	}
}
