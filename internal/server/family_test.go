package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"qaoaml/internal/problem"
)

// familyRequests builds one small solvable request per non-MaxCut
// family (naive strategy so no trained model is needed).
func familyRequests() map[string]SolveRequest {
	return map[string]SolveRequest{
		problem.FamilyQUBO: {
			Problem: "qubo", Nodes: 6,
			Linear: []float64{1, -1, 0, 1, 0, -1},
			Quad: []WireTerm{
				{I: 0, J: 1, W: 1}, {I: 1, J: 2, W: -1}, {I: 2, J: 3, W: 1},
				{I: 3, J: 4, W: -1}, {I: 4, J: 5, W: 1}, {I: 0, J: 5, W: -1},
			},
			Depth: 2, Strategy: StrategyNaive, Wait: true,
		},
		problem.FamilyMaxKSAT: {
			Problem: "maxksat", Vars: 5,
			Clauses: [][]int{{1, -2}, {2, 3}, {-3, 4}, {4, 5}, {-1, -5}},
			Depth:   2, Strategy: StrategyNaive, Wait: true,
		},
		problem.FamilyPartition: {
			Problem: "partition", Numbers: []float64{4, 5, 6, 7, 8},
			Depth: 2, Strategy: StrategyNaive, Wait: true,
		},
		problem.FamilyPortfolio: {
			Problem: "portfolio",
			Returns: []float64{0.12, 0.1, 0.07, 0.03},
			Covariance: [][]float64{
				{0.20, 0.02, 0.01, 0.00},
				{0.02, 0.30, 0.03, 0.01},
				{0.01, 0.03, 0.25, 0.02},
				{0.00, 0.01, 0.02, 0.18},
			},
			RiskAversion: 0.5, Budget: 2,
			Depth: 2, Strategy: StrategyNaive, Wait: true,
		},
		problem.FamilyColoring: {
			Problem: "coloring", Nodes: 4,
			Edges:  [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}},
			Colors: 2,
			Depth:  2, Strategy: StrategyNaive, Wait: true,
		},
	}
}

// Every non-MaxCut family must solve end-to-end over the wire, return
// a sane normalized AR with a masked assignment, and serve the exact
// same result from the cache on an identical repeat.
func TestSolveFamiliesEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, MaxNodes: 12})
	for fam, req := range familyRequests() {
		code, view := postSolve(t, ts.URL, req)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d (%+v)", fam, code, view)
		}
		if view.State != StateDone || view.Result == nil {
			t.Fatalf("%s: state %s, error %q", fam, view.State, view.Error)
		}
		r := view.Result
		if r.Problem != fam {
			t.Errorf("%s: result problem %q", fam, r.Problem)
		}
		if r.AR < -1e-12 || r.AR > 1+1e-12 {
			t.Errorf("%s: AR %v out of [0, 1]", fam, r.AR)
		}
		if r.Assignment == "" || strings.Trim(r.Assignment, "01") != "" {
			t.Errorf("%s: bad assignment %q", fam, r.Assignment)
		}
		if fam == problem.FamilyMaxKSAT && len(r.Assignment) != 5 {
			t.Errorf("maxksat: assignment %q not masked to 5 decision vars", r.Assignment)
		}
		if r.Fingerprint == "" {
			t.Errorf("%s: empty fingerprint", fam)
		}

		code2, view2 := postSolve(t, ts.URL, req)
		if code2 != http.StatusOK || !view2.Cached {
			t.Fatalf("%s: repeat not served from cache (status %d, cached %v)", fam, code2, view2.Cached)
		}
		a, _ := json.Marshal(view.Result)
		b, _ := json.Marshal(view2.Result)
		if string(a) != string(b) {
			t.Errorf("%s: cached result differs:\n%s\n%s", fam, a, b)
		}
	}
}

// Two QUBO instances over the same coupling graph but different linear
// terms / offset / sense must never alias in the cache: the instance
// fingerprint covers all of them.
func TestSolveKeyCoversFullInstance(t *testing.T) {
	base := familyRequests()[problem.FamilyQUBO]
	mutate := []func(r *SolveRequest){
		func(r *SolveRequest) { r.Linear = []float64{0, 0, 0, 0, 0, 1} },
		func(r *SolveRequest) { r.Offset = 3 },
		func(r *SolveRequest) { r.Sense = "max" },
		func(r *SolveRequest) { r.Vars = 4 },
	}
	_, ts := newTestServer(t, Config{Workers: 2, MaxNodes: 12})
	_, baseView := postSolve(t, ts.URL, base)
	if baseView.State != StateDone {
		t.Fatalf("base solve failed: %q", baseView.Error)
	}
	for i, mut := range mutate {
		req := base
		mut(&req)
		code, view := postSolve(t, ts.URL, req)
		if code != http.StatusOK {
			t.Fatalf("mutation %d: status %d (%+v)", i, code, view)
		}
		if view.Cached {
			t.Errorf("mutation %d aliased the base instance in the cache", i)
		}
	}
	// Sanity: the unmutated request does alias.
	if _, view := postSolve(t, ts.URL, base); !view.Cached {
		t.Error("identical repeat missed the cache")
	}
}

// The validation table for the versioned schema: unknown JSON keys,
// cross-family payload fields and malformed per-family payloads all
// return clear 400s.
func TestSolveFamilyValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxNodes: 12})
	qubo := familyRequests()[problem.FamilyQUBO]

	t.Run("unknown-json-key", func(t *testing.T) {
		blob := `{"problem":"partition","numbers":[1,2,3,4],"depth":1,"strategy":"naive","nmbers":[1]}`
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
	})

	cases := []struct {
		name    string
		mutate  func(r *SolveRequest)
		wantMsg string
	}{
		{"unknown-family", func(r *SolveRequest) { r.Problem = "tsp" }, "unknown problem"},
		{"cross-family-field", func(r *SolveRequest) { r.Numbers = []float64{1, 2} }, "not valid for problem"},
		{"maxcut-with-clauses", func(r *SolveRequest) { r.Problem = ""; r.Clauses = [][]int{{1}} }, "not valid for problem"},
		{"bad-sense", func(r *SolveRequest) { r.Sense = "sideways" }, "unknown sense"},
		{"bad-term-index", func(r *SolveRequest) { r.Quad = []WireTerm{{I: 0, J: 9, W: 1}} }, ""},
		{"vars-over-register", func(r *SolveRequest) { r.Vars = 7 }, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := qubo
			tc.mutate(&req)
			code, body := postSolveRaw(t, ts.URL, req)
			if code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (%s)", code, body)
			}
			if tc.wantMsg != "" && !strings.Contains(string(body), tc.wantMsg) {
				t.Errorf("error %s does not mention %q", body, tc.wantMsg)
			}
		})
	}

	t.Run("register-cap-counts-aux", func(t *testing.T) {
		// 5 vars + 8 three-literal clauses = 13 qubits > MaxNodes 12.
		req := SolveRequest{
			Problem: "maxksat", Vars: 5, Depth: 1, Strategy: StrategyNaive,
			Clauses: [][]int{
				{1, 2, 3}, {1, 2, 4}, {1, 2, 5}, {1, 3, 4},
				{1, 3, 5}, {1, 4, 5}, {2, 3, 4}, {2, 3, 5},
			},
		}
		code, body := postSolveRaw(t, ts.URL, req)
		if code != http.StatusBadRequest || !strings.Contains(string(body), "qubits") {
			t.Fatalf("status %d body %s, want 400 mentioning qubits", code, body)
		}
	})

	t.Run("coloring-rejects-weights", func(t *testing.T) {
		req := familyRequests()[problem.FamilyColoring]
		req.Weights = []float64{1, 1, 1, 1}
		code, body := postSolveRaw(t, ts.URL, req)
		if code != http.StatusBadRequest {
			t.Fatalf("status %d (%s), want 400", code, body)
		}
	})
}

// A v1 body (plain MaxCut, no problem field) must behave exactly as
// before the schema version bump, including two-level solving against
// a registered model.
func TestLegacyMaxCutBodyUnchanged(t *testing.T) {
	nodes, edges := testInstance(21)
	_, ts := newTestServer(t, Config{Workers: 2, Registry: testRegistry(t)})
	req := SolveRequest{
		Nodes: nodes, Edges: edges, Depth: 3,
		Seed: int64(3), Wait: true,
	}
	code, view := postSolve(t, ts.URL, req)
	if code != http.StatusOK || view.State != StateDone {
		t.Fatalf("status %d state %s error %q", code, view.State, view.Error)
	}
	if view.Result.Strategy != StrategyTwoLevel {
		t.Errorf("default strategy %q, want two-level", view.Result.Strategy)
	}
	if view.Result.Problem != problem.FamilyMaxCut {
		t.Errorf("legacy body resolved to problem %q", view.Result.Problem)
	}
	if len(view.Result.Assignment) != nodes {
		t.Errorf("assignment %q, want %d bits", view.Result.Assignment, nodes)
	}
}

// The healthz document must advertise the schema version and the
// supported problem families.
func TestHealthzAdvertisesSchema(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		APIVersion int      `json:"api_version"`
		Problems   []string `json:"problems"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.APIVersion != APIVersion {
		t.Errorf("api_version %d, want %d", doc.APIVersion, APIVersion)
	}
	if len(doc.Problems) != len(problem.Families()) {
		t.Errorf("problems %v, want %v", doc.Problems, problem.Families())
	}
}

// Determinism across servers: the same family request on a fresh
// server must produce the identical result (the cache-exactness
// premise).
func TestFamilySolveDeterministicAcrossServers(t *testing.T) {
	req := familyRequests()[problem.FamilyPartition]
	req.Seed = 7
	_, ts1 := newTestServer(t, Config{Workers: 1, MaxNodes: 12})
	_, ts2 := newTestServer(t, Config{Workers: 1, MaxNodes: 12})
	_, v1 := postSolve(t, ts1.URL, req)
	_, v2 := postSolve(t, ts2.URL, req)
	if v1.State != StateDone || v2.State != StateDone {
		t.Fatalf("states %s / %s", v1.State, v2.State)
	}
	a, _ := json.Marshal(v1.Result)
	b, _ := json.Marshal(v2.Result)
	if string(a) != string(b) {
		t.Errorf("cross-server results differ:\n%s\n%s", a, b)
	}
}
