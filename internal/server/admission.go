package server

import "qaoaml/internal/problem"

// Cost-priced admission control. The bounded queue alone admits work
// blind to its size: ten queued n=30 solves and ten n=8 solves look
// identical to a channel, yet differ by four orders of magnitude in
// memory pinned and work done. Admission prices each job before it is
// enqueued and keeps the sum of in-flight (queued + running) cost
// under a budget, so one whale cannot shut the door on a stream of
// cheap jobs — the whale is admitted, fills most of the budget, and
// small jobs keep flowing through the remainder. The queue-depth bound
// stays as a second, count-based backstop.

// JobCost is the exported cost model: what one solve is priced at by
// admission control, and the unit internal/cluster budgets per-worker
// dispatch in. See jobCost.
func JobCost(qubits, depth int) int64 { return jobCost(qubits, depth) }

// jobCost prices one solve: depth × 2^qubits. 2^n is both the
// state-vector memory the job pins and the per-layer kernel work;
// depth multiplies the layers per objective call. The unit is
// arbitrary (amplitude-layers, roughly) — only ratios matter.
func jobCost(qubits, depth int) int64 {
	if qubits < 1 {
		qubits = 1
	}
	if depth < 1 {
		depth = 1
	}
	return int64(depth) << uint(qubits)
}

// admission tracks the in-flight cost against the budget and a retire
// rate for Retry-After estimates. It has no lock of its own: every
// method must be called with Server.mu held (admission decisions are
// already serialized under it in submit).
type admission struct {
	budget   int64
	inflight int64
	// rate is an exponentially-weighted moving average of retired cost
	// per second, the denominator of the estimated wait.
	rate float64
}

// admit reserves cost against the budget, reporting false on refusal.
// A job costlier than the whole budget is still admitted when nothing
// is in flight — an empty server refusing all work it could ever run
// would be a livelock, and the budget's job is to bound concurrent
// cost, not instance size (MaxNodes/MaxDepth do that).
func (a *admission) admit(cost int64) bool {
	if a.inflight > 0 && a.inflight+cost > a.budget {
		return false
	}
	a.inflight += cost
	return true
}

// unadmit returns a reservation that never became a job (queue full).
func (a *admission) unadmit(cost int64) { a.inflight -= cost }

// release retires a finished job's cost. seconds is the job's wall
// time (≤ 0 — never ran — leaves the rate estimate alone).
func (a *admission) release(cost int64, seconds float64) {
	a.inflight -= cost
	if seconds <= 0 {
		return
	}
	const alpha = 0.3
	obs := float64(cost) / seconds
	if a.rate == 0 {
		a.rate = obs
		return
	}
	a.rate = alpha*obs + (1-alpha)*a.rate
}

// coldStartRetryAfter is the Retry-After (seconds) handed out while
// the retire-rate estimate is still empty: the budget is exhausted but
// no job has ever retired, so there is no denominator for a real
// estimate. Returning the 1-second floor there tells every rejected
// client to hammer a server that has demonstrably never freed
// capacity; a fixed mid-range default keeps the first wave of retries
// spread out until real retirements calibrate the estimator.
const coldStartRetryAfter = 5

// retryAfter estimates, in whole seconds, how long until enough
// in-flight cost retires for a job of the given cost to fit — the
// Retry-After a 429 carries. Clamped to [1, 60]: sub-second estimates
// round up, and beyond a minute the estimate is noise. With no
// observed retire rate yet (cold start) it returns the bounded
// coldStartRetryAfter default instead of a degenerate estimate.
func (a *admission) retryAfter(cost int64) int {
	excess := a.inflight + cost - a.budget
	if excess <= 0 {
		return 1
	}
	if a.rate <= 0 {
		return coldStartRetryAfter
	}
	secs := int(float64(excess)/a.rate + 0.999)
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// costOf prices a normalized request. The compiled register width
// (auxiliary qubits included) is authoritative; a spec that cannot
// report one (never the case for specs normalize accepted) falls back
// to the node count.
func costOf(req SolveRequest, spec problem.Spec) int64 {
	qubits, err := spec.Qubits()
	if err != nil || qubits < 1 {
		qubits = req.Nodes
	}
	return jobCost(qubits, req.Depth)
}
