package server

import (
	"context"
	"math/rand"
	"net/http"
	"testing"
	"time"

	"qaoaml/internal/core"
	"qaoaml/internal/optimize"
	"qaoaml/internal/qaoa"
)

// TestTwoLevelEndToEnd is the PR's acceptance test: an in-process qaoad
// serves an 8-node two-level solve, the job is polled to completion,
// and the result matches the direct core.TwoLevelCtx call bit-for-bit.
// A repeated identical request is then served from the cache with zero
// additional optimizer function evaluations, verified via the
// optimize.fev_total telemetry counter.
func TestTwoLevelEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, Registry: testRegistry(t)})
	nodes, edges := testInstance(30)
	const depth = 3
	req := SolveRequest{
		Nodes: nodes, Edges: edges, Depth: depth,
		Strategy: StrategyTwoLevel, Model: "default",
	}

	// 1. Submit and poll to completion (no wait: exercise the async path).
	code, view := postSolve(t, ts.URL, req)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit status %d", code)
	}
	final := pollJob(t, ts.URL, view.ID, 60*time.Second)
	if final.State != StateDone || final.Result == nil {
		t.Fatalf("final %+v", final)
	}
	if final.Cached {
		t.Fatal("first solve claims to be cached")
	}

	// 2. Direct two-level run with the same seed (default 1), optimizer
	// (lbfgsb at 1e-6) and predictor instance — must agree bit-for-bit.
	g := buildGraph(t, nodes, edges)
	pb, err := qaoa.NewProblem(g)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := core.TwoLevelCtx(context.Background(), pb, depth,
		&optimize.LBFGSB{Tol: 1e-6}, testPredictor(t), rand.New(rand.NewSource(1)), nil)
	if err != nil {
		t.Fatal(err)
	}
	res := final.Result
	if res.AR != direct.AR() {
		t.Fatalf("served AR %v != direct %v", res.AR, direct.AR())
	}
	if res.Level1AR != direct.Level1.AR {
		t.Fatalf("served level-1 AR %v != direct %v", res.Level1AR, direct.Level1.AR)
	}
	if res.NFev != direct.TotalNFev {
		t.Fatalf("served NFev %d != direct %d", res.NFev, direct.TotalNFev)
	}
	if len(res.Gamma) != depth || len(res.Beta) != depth {
		t.Fatalf("served params have %d/%d stages, want %d", len(res.Gamma), len(res.Beta), depth)
	}
	for i := 0; i < depth; i++ {
		if res.Gamma[i] != direct.Level2.Params.Gamma[i] || res.Beta[i] != direct.Level2.Params.Beta[i] {
			t.Fatalf("stage %d: served (γ,β)=(%v,%v) != direct (%v,%v)",
				i, res.Gamma[i], res.Beta[i], direct.Level2.Params.Gamma[i], direct.Level2.Params.Beta[i])
		}
	}

	// 3. Identical repeat: a cache hit with zero new optimizer work.
	fevBefore := s.mem.CounterValue("optimize.fev_total")
	code, repeat := postSolve(t, ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("repeat status %d", code)
	}
	if !repeat.Cached || repeat.State != StateDone {
		t.Fatalf("repeat not served from cache: %+v", repeat)
	}
	if repeat.Result == nil || repeat.Result.AR != res.AR {
		t.Fatalf("cached result diverges: %+v", repeat.Result)
	}
	if fevAfter := s.mem.CounterValue("optimize.fev_total"); fevAfter != fevBefore {
		t.Fatalf("cache hit cost %d optimizer evaluations", fevAfter-fevBefore)
	}
	if hits := s.mem.CounterValue("server.cache.hits"); hits != 1 {
		t.Fatalf("cache hits counter %d", hits)
	}

	// 4. A changed option (different seed) misses the cache.
	diff := req
	diff.Seed = 2
	diff.Wait = true
	code, miss := postSolve(t, ts.URL, diff)
	if code != http.StatusOK || miss.Cached {
		t.Fatalf("changed-seed request: status %d, view %+v", code, miss)
	}
	if fevAfter := s.mem.CounterValue("optimize.fev_total"); fevAfter == fevBefore {
		t.Fatal("changed-seed solve did no optimizer work")
	}
}
