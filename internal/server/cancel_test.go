package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestClientDisconnectCancelsJob covers the originating-client half of
// the mid-job cancellation contract: a wait=true submitter that drops
// the connection aborts the running optimizer via the job context.
func TestClientDisconnectCancelsJob(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	started := make(chan *Job, 1)
	release := make(chan struct{})
	defer close(release)
	blockingSolve(s, started, release)

	nodes, edges := testInstance(20)
	blob, err := json.Marshal(SolveRequest{
		Nodes: nodes, Edges: edges, Depth: 1, Strategy: StrategyNaive, Wait: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	reqCtx, abort := context.WithCancel(context.Background())
	httpReq, err := http.NewRequestWithContext(reqCtx, http.MethodPost,
		ts.URL+"/v1/solve", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(httpReq)
		errc <- err
	}()

	job := <-started // solve is running and parked on ctx
	abort()          // client walks away
	if err := <-errc; err == nil {
		t.Fatal("request unexpectedly completed")
	}
	waitState(t, job, StateCancelled, 10*time.Second)
	view := job.View()
	if view.Error == "" {
		t.Fatal("cancelled job has no error message")
	}
	if got := s.mem.CounterValue("server.jobs.client_disconnects"); got != 1 {
		t.Fatalf("client_disconnects counter %d", got)
	}
	if got := s.mem.CounterValue("server.jobs.cancelled"); got != 1 {
		t.Fatalf("cancelled counter %d", got)
	}
}

// TestDeadlineCancelsRunningJob covers the per-job deadline half: a
// timeout_ms budget expires mid-solve and the job finishes cancelled
// with the deadline recorded as the cause.
func TestDeadlineCancelsRunningJob(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	started := make(chan *Job, 1)
	release := make(chan struct{})
	defer close(release)
	blockingSolve(s, started, release)

	nodes, edges := testInstance(21)
	_, view := postSolve(t, ts.URL, SolveRequest{
		Nodes: nodes, Edges: edges, Depth: 1, Strategy: StrategyNaive, TimeoutMs: 50,
	})
	job := <-started
	if job.ID != view.ID {
		t.Fatalf("started %s, submitted %s", job.ID, view.ID)
	}
	final := pollJob(t, ts.URL, view.ID, 10*time.Second)
	if final.State != StateCancelled {
		t.Fatalf("state %s, want cancelled", final.State)
	}
	if !strings.Contains(final.Error, "deadline") {
		t.Fatalf("error %q does not mention the deadline", final.Error)
	}
}

// TestDeadlineAbortsRealOptimizer drives the real optimizer (no fake):
// a deadline far below the solve time must abort L-BFGS-B through the
// context seam and surface as a cancelled job.
func TestDeadlineAbortsRealOptimizer(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxNodes: 18})
	// 16 qubits at depth 8 with multi-start L-BFGS-B takes far longer
	// than 5ms, so the deadline must fire mid-optimization.
	nodes, edges := testInstance(22)
	nodes = 16
	edges = denseEdges(nodes)
	code, view := postSolve(t, ts.URL, SolveRequest{
		Nodes: nodes, Edges: edges, Depth: 8, Strategy: StrategyNaive,
		TimeoutMs: 5, Wait: true,
	})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if view.State != StateCancelled {
		t.Fatalf("state %s, want cancelled (result %+v)", view.State, view.Result)
	}
}

// denseEdges returns the complete graph edge list on n nodes.
func denseEdges(n int) [][2]int {
	var edges [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, [2]int{u, v})
		}
	}
	return edges
}

// TestQueuedJobCancelledBeforeWorker exercises the queued-cancellation
// watcher: a job whose deadline fires while it is still waiting for a
// worker slot finishes cancelled without ever running.
func TestQueuedJobCancelledBeforeWorker(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	started := make(chan *Job, 1)
	release := make(chan struct{})
	blockingSolve(s, started, release)

	nodes, edges := testInstance(23)
	// Occupy the only worker.
	postSolve(t, ts.URL, SolveRequest{
		Nodes: nodes, Edges: edges, Depth: 1, Strategy: StrategyNaive, Seed: 1,
	})
	blocker := <-started
	// This one never reaches a worker before its 30ms deadline.
	_, queued := postSolve(t, ts.URL, SolveRequest{
		Nodes: nodes, Edges: edges, Depth: 1, Strategy: StrategyNaive, Seed: 2, TimeoutMs: 30,
	})
	final := pollJob(t, ts.URL, queued.ID, 10*time.Second)
	if final.State != StateCancelled {
		t.Fatalf("queued job state %s, want cancelled", final.State)
	}
	if final.Started != nil {
		t.Fatal("cancelled-while-queued job reports a start time")
	}
	close(release)
	waitState(t, blocker, StateDone, 10*time.Second)
}

// TestDeleteCancelsJob covers the explicit DELETE /v1/jobs/{id} path.
func TestDeleteCancelsJob(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	started := make(chan *Job, 1)
	release := make(chan struct{})
	defer close(release)
	blockingSolve(s, started, release)

	nodes, edges := testInstance(24)
	_, view := postSolve(t, ts.URL, SolveRequest{
		Nodes: nodes, Edges: edges, Depth: 1, Strategy: StrategyNaive,
	})
	<-started
	httpReq, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+view.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status %d", resp.StatusCode)
	}
	final := pollJob(t, ts.URL, view.ID, 10*time.Second)
	if final.State != StateCancelled {
		t.Fatalf("state %s, want cancelled", final.State)
	}

	// DELETE on an unknown id is a 404.
	httpReq, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/job-00009999", nil)
	resp, err = http.DefaultClient.Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE unknown id: status %d", resp.StatusCode)
	}
}
