package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"qaoaml/internal/core"
	"qaoaml/internal/graph"
)

// testEnv builds one tiny dataset + trained GPR predictor for the whole
// package: dataset generation dominates test time, so it is shared.
var testEnv struct {
	once sync.Once
	pred *core.Predictor
	err  error
}

const testTrainSeed = 17

func testPredictor(t *testing.T) *core.Predictor {
	t.Helper()
	testEnv.once.Do(func() {
		data, err := core.Generate(core.DataGenConfig{
			NumGraphs: 8, Nodes: 8, EdgeProb: 0.5,
			MaxDepth: 3, Starts: 2, Tol: 1e-6, Seed: testTrainSeed,
		})
		if err != nil {
			testEnv.err = err
			return
		}
		pred := core.NewPredictor(nil)
		if err := pred.Train(data, []int{0, 1, 2, 3, 4}); err != nil {
			testEnv.err = err
			return
		}
		testEnv.pred = pred
	})
	if testEnv.err != nil {
		t.Fatal(testEnv.err)
	}
	return testEnv.pred
}

// testRegistry returns a registry with the shared predictor as "default".
func testRegistry(t *testing.T) *Registry {
	t.Helper()
	reg, err := NewRegistry("")
	if err != nil {
		t.Fatal(err)
	}
	reg.Register("default", testPredictor(t))
	return reg
}

// newTestServer starts a Server plus an httptest front end, both torn
// down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// testInstance returns a connected 8-node MaxCut instance (nodes,
// edges) drawn from the paper's ensemble.
func testInstance(seed int64) (int, [][2]int) {
	g := graph.ErdosRenyiConnected(8, 0.5, rand.New(rand.NewSource(seed)))
	var edges [][2]int
	for _, e := range g.Edges() {
		edges = append(edges, [2]int{e.U, e.V})
	}
	return g.N, edges
}

// buildGraph reconstructs the instance graph of a request.
func buildGraph(t *testing.T, nodes int, edges [][2]int) *graph.Graph {
	t.Helper()
	g := graph.New(nodes)
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// postSolve submits a solve request and decodes the job view.
func postSolve(t *testing.T, url string, req SolveRequest) (int, JobView) {
	t.Helper()
	code, body := postSolveRaw(t, url, req)
	var view JobView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatalf("decoding %q: %v", body, err)
	}
	return code, view
}

func postSolveRaw(t *testing.T, url string, req SolveRequest) (int, []byte) {
	t.Helper()
	blob, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/solve", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// getJob fetches a job view by id.
func getJob(t *testing.T, url, id string) (int, JobView) {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, view
}

// pollJob polls until the job is terminal or the deadline passes.
func pollJob(t *testing.T, url, id string, timeout time.Duration) JobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		code, view := getJob(t, url, id)
		if code != http.StatusOK {
			t.Fatalf("GET job %s: status %d", id, code)
		}
		if view.State.Terminal() {
			return view
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, view.State, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitState polls an in-process job until it reaches want.
func waitState(t *testing.T, job *Job, want JobState, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for job.State() != want {
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", job.ID, job.State(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// blockingSolve installs a solveFn that parks jobs until their context
// is cancelled or release is closed; started receives each job as it
// begins running.
func blockingSolve(s *Server, started chan *Job, release chan struct{}) {
	s.solveFn = func(ctx context.Context, job *Job) (*SolveResult, error) {
		select {
		case started <- job:
		default:
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-release:
			return &SolveResult{Strategy: job.req.Strategy, AR: 1, Fingerprint: "test"}, nil
		}
	}
}

// drainCtx is a background context with a test-scoped timeout.
func drainCtx(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}
