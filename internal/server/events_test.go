package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"qaoaml/internal/telemetry"
)

// sseEvent is one parsed frame of a test-read event stream.
type sseEvent struct {
	name string
	data string
}

// readSSE consumes the whole stream (the server closes it after the
// terminal result event).
func readSSE(t *testing.T, url string) []sseEvent {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events stream: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.name != "" || cur.data != "" {
				events = append(events, cur)
				cur = sseEvent{}
			}
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

// A solved job's event stream replays the full per-iteration optimizer
// trace and ends with the terminal result — even for subscribers that
// arrive after the job finished (history replay).
func TestJobEventsStream(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	nodes, edges := testInstance(21)
	code, view := postSolve(t, ts.URL, SolveRequest{
		Nodes: nodes, Edges: edges, Depth: 2, Strategy: StrategyNaive, Seed: 5, Wait: true,
	})
	if code != http.StatusOK || view.State != StateDone {
		t.Fatalf("solve: %d %+v", code, view)
	}

	events := readSSE(t, ts.URL+"/v1/jobs/"+view.ID+"/events")
	if len(events) < 2 {
		t.Fatalf("stream carried %d events, want iterations + result", len(events))
	}
	last := events[len(events)-1]
	if last.name != EventResult {
		t.Fatalf("stream ended with %q, want %q", last.name, EventResult)
	}
	var final JobView
	if err := json.Unmarshal([]byte(last.data), &final); err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.Result == nil || final.Result.Fingerprint != view.Result.Fingerprint {
		t.Fatalf("terminal event view %+v does not match job %+v", final, view)
	}
	prevFev := 0
	for i, ev := range events[:len(events)-1] {
		if ev.name != EventIteration {
			t.Fatalf("event %d is %q, want %q", i, ev.name, EventIteration)
		}
		var iter telemetry.IterEvent
		if err := json.Unmarshal([]byte(ev.data), &iter); err != nil {
			t.Fatalf("iteration %d payload %q: %v", i, ev.data, err)
		}
		if iter.NFev < prevFev {
			t.Fatalf("iteration %d: nfev went backwards (%d -> %d)", i, prevFev, iter.NFev)
		}
		prevFev = iter.NFev
	}
	// The terminal count may exceed the last trace event's (evaluations
	// after the final iteration callback) but never trail it.
	if final.Result.NFev < prevFev {
		t.Fatalf("result nfev %d below last traced iteration's %d", final.Result.NFev, prevFev)
	}
}

// A cache hit is born terminal with no bus: its stream is exactly one
// result event.
func TestJobEventsCachedJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	nodes, edges := testInstance(22)
	req := SolveRequest{Nodes: nodes, Edges: edges, Depth: 2, Strategy: StrategyNaive, Seed: 6, Wait: true}
	if code, _ := postSolve(t, ts.URL, req); code != http.StatusOK {
		t.Fatal("priming solve failed")
	}
	code, view := postSolve(t, ts.URL, req)
	if code != http.StatusOK || !view.Cached {
		t.Fatalf("repeat not cached: %d %+v", code, view)
	}
	events := readSSE(t, ts.URL+"/v1/jobs/"+view.ID+"/events")
	if len(events) != 1 || events[0].name != EventResult {
		t.Fatalf("cached job stream = %+v, want exactly one result event", events)
	}
}

// Unknown job ids 404 instead of opening a stream.
func TestJobEventsNotFound(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/jobs/job-99999999/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}
