// Package server is the QAOA-as-a-service layer: an HTTP JSON API that
// accepts MaxCut instances and runs them through the core naive or
// two-level (ML-initialized, Fig. 4) flows on a bounded worker pool.
//
// The subsystem is built from four pieces:
//
//   - a bounded job queue drained by a fixed worker pool, with explicit
//     backpressure (429 + Retry-After) when the queue is full;
//   - an LRU result cache keyed by the canonical graph fingerprint plus
//     solve options, with single-flight coalescing of identical
//     in-flight requests;
//   - a model Registry of pre-trained parameter predictors, hot-
//     reloadable on SIGHUP;
//   - per-job deadlines and client-disconnect propagation as context
//     cancellation into the optimizers, plus graceful drain on
//     shutdown.
//
// Endpoints: POST /v1/solve, GET /v1/jobs/{id}, DELETE /v1/jobs/{id},
// GET /healthz, GET /metrics (a telemetry.Memory snapshot with
// per-endpoint latency histograms and queue-depth gauges).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"qaoaml/internal/core"
	"qaoaml/internal/graph"
	"qaoaml/internal/optimize"
	"qaoaml/internal/problem"
	"qaoaml/internal/qaoa"
	"qaoaml/internal/quantum"
	"qaoaml/internal/telemetry"
)

// APIVersion is the wire-schema version served by /healthz. Version 2
// added the problem-family fields to SolveRequest (v1 bodies — plain
// MaxCut with nodes/edges/weights — parse unchanged).
const APIVersion = 2

// Solve strategies.
const (
	StrategyNaive    = "naive"     // random init at the target depth (Fig. 1(a))
	StrategyTwoLevel = "two-level" // depth-1 optimum → ML prediction → polish (Fig. 4)
)

// Config sizes the daemon. The zero value is usable: every field has a
// production default.
type Config struct {
	// Workers sizes the solve worker pool; 0 means GOMAXPROCS, matching
	// experiments.Scale.Workers semantics.
	Workers int
	// QueueDepth bounds the job queue (default 64). A full queue rejects
	// submissions with 429 + Retry-After.
	QueueDepth int
	// CacheSize bounds the LRU result cache entries (default 256;
	// negative disables caching — a coordinator that defers entirely to
	// the worker-owned cache shards).
	CacheSize int
	// MaxJobs bounds retained finished job records (default 1024).
	MaxJobs int
	// DefaultTimeout applies to jobs that request none (default 60s).
	DefaultTimeout time.Duration
	// MaxTimeout caps requested per-job deadlines (default 10m).
	MaxTimeout time.Duration
	// MaxNodes caps instance size (default 20; hard limit
	// quantum.MaxQubits — the simulator's register ceiling, reached via
	// the sharded state layout).
	MaxNodes int
	// MaxDepth caps the requested circuit depth (default 10).
	MaxDepth int
	// MaxBatch caps the item count of one POST /v1/solve/batch request
	// (default 64).
	MaxBatch int
	// MaxInflightCost budgets the summed cost (depth·2^qubits, see
	// jobCost) of queued-plus-running jobs; submissions beyond it get
	// 429 + Retry-After. Default: Workers × jobCost(MaxNodes, MaxDepth)
	// — enough that a pool of worst-case jobs saturates the workers
	// before admission pushes back, so the budget only bites when the
	// backlog holds multiple maximal solves.
	MaxInflightCost int64
	// Registry resolves two-level model names (nil: empty registry,
	// naive-only serving until Register is called).
	Registry *Registry
	// Recorder receives all server and optimizer telemetry (nil: a
	// fresh telemetry.Memory, exposed via Metrics).
	Recorder *telemetry.Memory
	// Journal, when non-nil, durably records accepted jobs and terminal
	// outcomes (see internal/cluster's WAL); a crash then loses no
	// accepted work. Nil: no journaling.
	Journal Journal
	// Dispatcher, when non-nil, runs solves remotely instead of on the
	// local worker pool — the coordinator role. Admission, dedup,
	// caching and journaling stay local; only the optimization is
	// dispatched. Nil: solve in process (single-process and worker
	// roles).
	Dispatcher Dispatcher
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	if c.CacheSize < 0 {
		c.CacheSize = 0 // negative disables caching (fleet tests, cache-owner routing)
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = 20
	}
	if c.MaxNodes > quantum.MaxQubits {
		c.MaxNodes = quantum.MaxQubits
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 10
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxInflightCost <= 0 {
		c.MaxInflightCost = int64(c.Workers) * jobCost(c.MaxNodes, c.MaxDepth)
	}
	return c
}

// WireTerm is one quadratic coupling J·s_i·s_j on the wire.
type WireTerm struct {
	I int     `json:"i"`
	J int     `json:"j"`
	W float64 `json:"w"`
}

// SolveRequest is the POST /v1/solve body. Problem selects the family;
// each family reads its own payload fields and rejects the others'
// with a 400 (unknown JSON keys are rejected outright):
//
//	maxcut (default): nodes, edges, weights
//	qubo:             nodes, linear, quad, offset, sense, vars
//	maxksat:          vars, clauses, clause_weights
//	partition:        numbers
//	portfolio:        returns, covariance, risk_aversion, budget, penalty
//	coloring:         nodes, edges, colors
type SolveRequest struct {
	// Problem is the family: maxcut (default), qubo, maxksat,
	// partition, portfolio or coloring.
	Problem string    `json:"problem,omitempty"`
	Nodes   int       `json:"nodes,omitempty"`
	Edges   [][2]int  `json:"edges,omitempty"`
	Weights []float64 `json:"weights,omitempty"` // parallel to Edges; omitted = unweighted

	// qubo payload: an explicit Ising Hamiltonian over Nodes spins —
	// per-spin fields, couplings, constant offset, and the optimization
	// sense ("min" by default: spin glasses minimize energy). Vars marks
	// how many leading spins are decision variables (default all).
	Linear []float64  `json:"linear,omitempty"`
	Quad   []WireTerm `json:"quad,omitempty"`
	Offset float64    `json:"offset,omitempty"`
	Sense  string     `json:"sense,omitempty"`
	Vars   int        `json:"vars,omitempty"`

	// maxksat payload: weighted Max-k-SAT (k ≤ 3) over Vars variables,
	// clauses as DIMACS-style signed literals (±(v+1)). Three-literal
	// clauses add one auxiliary qubit each (Rosenberg quadratization),
	// which counts against the node cap.
	Clauses       [][]int   `json:"clauses,omitempty"`
	ClauseWeights []float64 `json:"clause_weights,omitempty"`

	// partition payload: positive numbers to split into two equal-sum
	// halves.
	Numbers []float64 `json:"numbers,omitempty"`

	// portfolio payload: budget-constrained mean-variance selection.
	Returns      []float64   `json:"returns,omitempty"`
	Covariance   [][]float64 `json:"covariance,omitempty"`
	RiskAversion float64     `json:"risk_aversion,omitempty"`
	Budget       int         `json:"budget,omitempty"`
	Penalty      float64     `json:"penalty,omitempty"`

	// coloring payload: the nodes/edges graph plus the color count
	// (nodes·colors qubits).
	Colors int `json:"colors,omitempty"`

	Depth int `json:"depth"`
	// Strategy is "two-level" (default) or "naive".
	Strategy string `json:"strategy,omitempty"`
	// Optimizer is lbfgsb (default), neldermead, slsqp or cobyla.
	Optimizer string `json:"optimizer,omitempty"`
	// Model names the registry predictor for two-level (default "default").
	Model string `json:"model,omitempty"`
	// Seed fixes the run RNG (default 1); identical requests are
	// therefore deterministic, which is what makes the result cache
	// exact rather than approximate.
	Seed int64 `json:"seed,omitempty"`
	// TimeoutMs bounds the solve from enqueue time (default
	// Config.DefaultTimeout, capped at Config.MaxTimeout).
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// Wait blocks the HTTP request until the job finishes; a client
	// disconnect then cancels the job (unless it was coalesced onto an
	// earlier identical request).
	Wait bool `json:"wait,omitempty"`
}

// Server is the serving subsystem: HTTP handlers in front of the job
// queue, worker pool, result cache and model registry.
type Server struct {
	cfg      Config
	mem      *telemetry.Memory
	registry *Registry
	jobs     *jobStore
	cache    *lruCache
	queue    chan *Job

	mu       sync.Mutex
	inflight map[string]*Job // cache key → queued/running job
	adm      admission       // cost budget, guarded by mu
	draining bool

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup
	mux        *http.ServeMux

	// solveFn runs one job's optimization; tests swap it to make
	// cancellation timing deterministic.
	solveFn func(ctx context.Context, job *Job) (*SolveResult, error)
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	mem := cfg.Recorder
	if mem == nil {
		mem = telemetry.NewMemory()
	}
	reg := cfg.Registry
	if reg == nil {
		reg, _ = NewRegistry("")
	}
	for _, route := range []string{"solve", "batch", "jobs", "events", "healthz", "metrics"} {
		mem.DefineBuckets("server.http."+route+"_ms", telemetry.ExpBuckets(0.25, 2, 18))
	}
	s := &Server{
		cfg:      cfg,
		mem:      mem,
		registry: reg,
		jobs:     newJobStore(cfg.MaxJobs),
		cache:    newLRUCache(cfg.CacheSize),
		queue:    make(chan *Job, cfg.QueueDepth),
		inflight: make(map[string]*Job),
	}
	s.adm = admission{budget: cfg.MaxInflightCost}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.solveFn = s.runSolve
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/solve", s.timed("solve", s.handleSolve))
	s.mux.HandleFunc("POST /v1/solve/batch", s.timed("batch", s.handleBatch))
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.timed("jobs", s.handleJobGet))
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.timed("events", s.handleJobEvents))
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.timed("jobs", s.handleJobCancel))
	s.mux.HandleFunc("GET /healthz", s.timed("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.timed("metrics", s.handleMetrics))
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns the telemetry sink backing /metrics.
func (s *Server) Metrics() *telemetry.Memory { return s.mem }

// Registry returns the model registry.
func (s *Server) ModelRegistry() *Registry { return s.registry }

// Drain stops accepting work, lets queued and running jobs finish, and
// returns when the worker pool has exited. If ctx expires first, the
// remaining jobs are cancelled (they finish as cancelled, not dropped)
// and Drain still waits for the workers before returning ctx.Err().
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	if !already {
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel() // hard-cancel stragglers; workers still drain the queue
		<-done
		return ctx.Err()
	}
}

// Close drains immediately, cancelling all outstanding jobs.
func (s *Server) Close() {
	s.baseCancel()
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	_ = s.Drain(expired)
}

// ---- submission ----

// httpError carries a status code with the message. retryAfter (whole
// seconds, 429s only) is the admission layer's estimated wait; zero
// falls back to 1.
type httpError struct {
	code       int
	msg        string
	retryAfter int
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) *httpError {
	return &httpError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// submitOutcome distinguishes how a request was satisfied.
type submitOutcome int

const (
	outcomeQueued    submitOutcome = iota // fresh job enqueued
	outcomeCoalesced                      // attached to an identical in-flight job
	outcomeCached                         // served from the result cache
)

// familyFields maps each problem family to the payload fields it
// reads; a request setting any other family's field is rejected so
// typos and family mixups surface as 400s instead of silently ignored
// payload.
var familyFields = map[string]map[string]bool{
	problem.FamilyMaxCut:    {"nodes": true, "edges": true, "weights": true},
	problem.FamilyQUBO:      {"nodes": true, "linear": true, "quad": true, "offset": true, "sense": true, "vars": true},
	problem.FamilyMaxKSAT:   {"vars": true, "clauses": true, "clause_weights": true},
	problem.FamilyPartition: {"numbers": true},
	problem.FamilyPortfolio: {"returns": true, "covariance": true, "risk_aversion": true, "budget": true, "penalty": true},
	problem.FamilyColoring:  {"nodes": true, "edges": true, "colors": true},
}

// setPayloadFields lists the family-payload fields present in the
// request (the always-valid solve options are not payload).
func setPayloadFields(req *SolveRequest) []string {
	var set []string
	add := func(name string, ok bool) {
		if ok {
			set = append(set, name)
		}
	}
	add("nodes", req.Nodes != 0)
	add("edges", len(req.Edges) > 0)
	add("weights", req.Weights != nil)
	add("linear", req.Linear != nil)
	add("quad", len(req.Quad) > 0)
	add("offset", req.Offset != 0)
	add("sense", req.Sense != "")
	add("vars", req.Vars != 0)
	add("clauses", len(req.Clauses) > 0)
	add("clause_weights", req.ClauseWeights != nil)
	add("numbers", len(req.Numbers) > 0)
	add("returns", len(req.Returns) > 0)
	add("covariance", len(req.Covariance) > 0)
	add("risk_aversion", req.RiskAversion != 0)
	add("budget", req.Budget != 0)
	add("penalty", req.Penalty != 0)
	add("colors", req.Colors != 0)
	return set
}

// requestGraph builds the nodes/edges/weights graph shared by the
// maxcut and coloring families.
func (s *Server) requestGraph(req *SolveRequest) (*graph.Graph, *httpError) {
	if req.Nodes < 2 || req.Nodes > s.cfg.MaxNodes {
		return nil, badRequest("nodes %d out of [2, %d]", req.Nodes, s.cfg.MaxNodes)
	}
	if len(req.Edges) == 0 {
		return nil, badRequest("instance has no edges")
	}
	if req.Weights != nil && len(req.Weights) != len(req.Edges) {
		return nil, badRequest("%d weights for %d edges", len(req.Weights), len(req.Edges))
	}
	g := graph.New(req.Nodes)
	for i, e := range req.Edges {
		if e[0] < 0 || e[0] >= req.Nodes || e[1] < 0 || e[1] >= req.Nodes {
			return nil, badRequest("edge %d (%d,%d) out of range for %d nodes", i, e[0], e[1], req.Nodes)
		}
		w := 1.0
		if req.Weights != nil {
			w = req.Weights[i]
		}
		if err := g.AddWeightedEdge(e[0], e[1], w); err != nil {
			return nil, badRequest("edge %d: %v", i, err)
		}
	}
	return g, nil
}

// requestSpec assembles the family payload into a problem.Spec.
func (s *Server) requestSpec(req *SolveRequest) (problem.Spec, *httpError) {
	var zero problem.Spec
	allowed, ok := familyFields[req.Problem]
	if !ok {
		return zero, badRequest("unknown problem %q (want one of %v)", req.Problem, problem.Families())
	}
	for _, f := range setPayloadFields(req) {
		if !allowed[f] {
			return zero, badRequest("field %q is not valid for problem %q", f, req.Problem)
		}
	}
	switch req.Problem {
	case problem.FamilyMaxCut:
		g, herr := s.requestGraph(req)
		if herr != nil {
			return zero, herr
		}
		return problem.MaxCut(g), nil
	case problem.FamilyQUBO:
		if req.Nodes < 1 {
			return zero, badRequest("qubo needs nodes >= 1")
		}
		sense := req.Sense
		if sense == "" {
			sense = "min"
		}
		sn, err := problem.ParseSense(sense)
		if err != nil {
			return zero, badRequest("%v", err)
		}
		in := &problem.Instance{
			Family: problem.FamilyQUBO,
			Sense:  sn,
			N:      req.Nodes,
			Vars:   req.Vars,
			Linear: req.Linear,
			Offset: req.Offset,
		}
		if in.Vars == 0 {
			in.Vars = in.N
		}
		for _, t := range req.Quad {
			in.Quad = append(in.Quad, problem.Term{I: t.I, J: t.J, W: t.W})
		}
		return problem.FromInstance(in), nil
	case problem.FamilyMaxKSAT:
		f := &problem.Formula{Vars: req.Vars, Weights: req.ClauseWeights}
		for _, cl := range req.Clauses {
			f.Clauses = append(f.Clauses, problem.Clause(cl))
		}
		return problem.MaxKSAT(f), nil
	case problem.FamilyPartition:
		return problem.Partition(req.Numbers), nil
	case problem.FamilyPortfolio:
		return problem.Portfolio(&problem.PortfolioSpec{
			Returns:      req.Returns,
			Covariance:   req.Covariance,
			RiskAversion: req.RiskAversion,
			Budget:       req.Budget,
			Penalty:      req.Penalty,
		}), nil
	case problem.FamilyColoring:
		if req.Weights != nil {
			return zero, badRequest("coloring takes no edge weights")
		}
		g, herr := s.requestGraph(req)
		if herr != nil {
			return zero, herr
		}
		if req.Colors < 2 {
			return zero, badRequest("coloring needs colors >= 2, got %d", req.Colors)
		}
		return problem.Coloring(g, req.Colors), nil
	}
	return zero, badRequest("unknown problem %q (want one of %v)", req.Problem, problem.Families())
}

// normalize applies defaults and validates the request, returning the
// compiled problem spec.
func (s *Server) normalize(req *SolveRequest) (problem.Spec, *httpError) {
	var zero problem.Spec
	if req.Problem == "" {
		req.Problem = problem.FamilyMaxCut
	}
	if req.Strategy == "" {
		req.Strategy = StrategyTwoLevel
	}
	if req.Optimizer == "" {
		req.Optimizer = "lbfgsb"
	}
	if req.Model == "" {
		req.Model = "default"
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	if optimizerFor(req.Optimizer) == nil {
		return zero, badRequest("unknown optimizer %q (want lbfgsb, neldermead, slsqp or cobyla)", req.Optimizer)
	}
	if req.Depth < 1 || req.Depth > s.cfg.MaxDepth {
		return zero, badRequest("depth %d out of [1, %d]", req.Depth, s.cfg.MaxDepth)
	}
	spec, herr := s.requestSpec(req)
	if herr != nil {
		return zero, herr
	}
	// Compile now so malformed payloads fail the request, not the job,
	// and so the register cap covers auxiliary qubits (maxksat) and
	// one-hot blowup (coloring: nodes·colors).
	if req.Problem != problem.FamilyMaxCut {
		qubits, err := spec.Qubits()
		if err != nil {
			return zero, badRequest("%v", err)
		}
		if qubits < 2 || qubits > s.cfg.MaxNodes {
			return zero, badRequest("%s instance needs %d qubits, out of [2, %d]", req.Problem, qubits, s.cfg.MaxNodes)
		}
		if _, err := spec.Compile(); err != nil {
			return zero, badRequest("%v", err)
		}
	}
	switch req.Strategy {
	case StrategyNaive:
	case StrategyTwoLevel:
		if req.Depth < 2 {
			return zero, badRequest("two-level needs depth >= 2 (use strategy \"naive\" for depth 1)")
		}
		pred, ok := s.registry.Get(req.Model)
		if !ok {
			return zero, badRequest("unknown model %q (registered: %v)", req.Model, s.registry.Names())
		}
		if !hasDepth(pred.TargetDepths(), req.Depth) {
			return zero, badRequest("model %q not trained for target depth %d (trained: %v)",
				req.Model, req.Depth, pred.TargetDepths())
		}
	default:
		return zero, badRequest("unknown strategy %q (want %q or %q)", req.Strategy, StrategyNaive, StrategyTwoLevel)
	}
	return spec, nil
}

func hasDepth(depths []int, d int) bool {
	for _, v := range depths {
		if v == d {
			return true
		}
	}
	return false
}

// submit resolves a normalized request to a job: a cache hit returns a
// finished job, an identical in-flight request is coalesced, otherwise a
// fresh job is enqueued. A full queue returns 429; a draining server
// returns 503.
func (s *Server) submit(req SolveRequest, spec problem.Spec) (*Job, submitOutcome, *httpError) {
	fp, err := spec.Fingerprint()
	if err != nil {
		// normalize compiled the spec already; a failure here is a bug.
		return nil, 0, &httpError{code: http.StatusInternalServerError, msg: err.Error()}
	}
	key := solveKey(fp, req)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, 0, &httpError{code: http.StatusServiceUnavailable, msg: "server is draining"}
	}
	if res, ok := s.cache.Get(key); ok {
		s.mem.Count("server.cache.hits", 1)
		job := s.newFinishedJob(key, req, res)
		s.jobs.add(job)
		return job, outcomeCached, nil
	}
	s.mem.Count("server.cache.misses", 1)
	if j := s.inflight[key]; j != nil {
		j.mu.Lock()
		j.coalesced = true
		j.mu.Unlock()
		s.mem.Count("server.jobs.coalesced", 1)
		return j, outcomeCoalesced, nil
	}

	// Cost-priced admission: reserve the job's cost against the global
	// in-flight budget before it may take a queue slot. Cache hits and
	// coalesced requests above never reach here — they add no work.
	cost := costOf(req, spec)
	if !s.adm.admit(cost) {
		s.mem.Count("server.admission.rejected", 1)
		return nil, 0, &httpError{
			code:       http.StatusTooManyRequests,
			msg:        fmt.Sprintf("in-flight cost budget exhausted (job cost %d, in flight %d of %d), retry later", cost, s.adm.inflight, s.adm.budget),
			retryAfter: s.adm.retryAfter(cost),
		}
	}

	// Claim a queue slot before journaling: only submit pushes (under
	// mu), so a capacity check here guarantees the send below cannot
	// block, and a full queue is rejected before anything hits the WAL.
	if len(s.queue) >= cap(s.queue) {
		s.adm.unadmit(cost)
		s.mem.Count("server.http.backpressure", 1)
		return nil, 0, &httpError{code: http.StatusTooManyRequests, msg: "job queue full, retry later"}
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}

	// Journal the acceptance before the job becomes visible: once the
	// client sees its 202 the work survives kill -9. A journal failure
	// refuses the job — an unjournalable acceptance would be a silent
	// hole in the durability contract.
	if s.cfg.Journal != nil {
		if err := s.cfg.Journal.Accepted(key, fp, req); err != nil {
			s.adm.unadmit(cost)
			s.mem.Count("server.journal.errors", 1)
			return nil, 0, &httpError{code: http.StatusServiceUnavailable, msg: fmt.Sprintf("journaling job: %v", err)}
		}
		s.mem.Count("server.journal.accepted", 1)
	}

	ctx, cancel := context.WithTimeout(s.baseCtx, timeout)
	job := &Job{
		ID: s.jobs.nextID(), Key: key, req: req, spec: spec, fp: fp, cost: cost,
		ctx: ctx, cancel: cancel, done: make(chan struct{}),
		state: StateQueued, enqueued: time.Now(), bus: newEventBus(),
	}
	s.queue <- job // cannot block: capacity checked above under mu
	s.mem.Count("server.cost.inflight", cost)
	s.jobs.add(job)
	s.inflight[key] = job
	s.mem.Count("server.jobs.submitted", 1)
	s.mem.Count("server.queue.depth", 1)
	// Watch for cancellation while queued: a deadline or explicit cancel
	// must not wait for a worker slot to take effect.
	go func() {
		<-job.ctx.Done()
		if job.finishFromQueued(StateCancelled, cancelMsg(job.ctx)) {
			s.afterFinish(job, StateCancelled)
		}
	}()
	return job, outcomeQueued, nil
}

// newFinishedJob materializes a cache hit as an already-done job record.
func (s *Server) newFinishedJob(key string, req SolveRequest, res *SolveResult) *Job {
	ctx, cancel := context.WithCancel(s.baseCtx)
	cancel()
	now := time.Now()
	job := &Job{
		ID: s.jobs.nextID(), Key: key, req: req,
		ctx: ctx, cancel: cancel, done: make(chan struct{}),
		state: StateDone, cached: true, result: res,
		enqueued: now, started: now, finished: now,
	}
	close(job.done)
	return job
}

// completeJob finishes a job from the worker path and runs the shared
// bookkeeping exactly once.
func (s *Server) completeJob(j *Job, state JobState, res *SolveResult, errMsg string) {
	if j.finish(state, res, errMsg) {
		s.afterFinish(j, state)
	}
}

// afterFinish clears the single-flight slot, retires the job's cost
// reservation, feeds the cache, and counts the terminal state. Called
// exactly once per job.
func (s *Server) afterFinish(j *Job, state JobState) {
	var seconds float64
	if j.cost > 0 {
		// Wall time feeds the admission layer's retire-rate estimate;
		// jobs cancelled straight out of the queue never ran and are
		// excluded (zero seconds).
		j.mu.Lock()
		if !j.started.IsZero() && !j.finished.IsZero() {
			seconds = j.finished.Sub(j.started).Seconds()
		}
		j.mu.Unlock()
	}
	s.mu.Lock()
	if s.inflight[j.Key] == j {
		delete(s.inflight, j.Key)
	}
	if j.cost > 0 {
		s.adm.release(j.cost, seconds)
	}
	s.mu.Unlock()
	if j.cost > 0 {
		s.mem.Count("server.cost.inflight", -j.cost)
	}
	var res *SolveResult
	if state == StateDone {
		j.mu.Lock()
		res = j.result
		j.mu.Unlock()
		s.cache.Add(j.Key, res)
	}
	// Journal the terminal outcome: done jobs carry their result (the
	// WAL replays it into the cache on recovery), failed and cancelled
	// jobs are settled with nil (recovery must not re-run them). A
	// failure here is counted, not fatal — the job already finished,
	// and the worst case is a wasted re-solve after a crash.
	if s.cfg.Journal != nil {
		if err := s.cfg.Journal.Completed(j.Key, res); err != nil {
			s.mem.Count("server.journal.errors", 1)
		} else {
			s.mem.Count("server.journal.completed", 1)
		}
	}
	s.mem.Count("server.jobs."+string(state), 1)
}

// ---- worker pool ----

// worker drains the queue. Each worker owns one qaoa.Arena for the
// life of the pool: consecutive jobs at the same register width reuse
// the same 2^n state vectors instead of reallocating them, which is
// what keeps steady-state solves free of state-vector-sized
// allocations (pinned by TestSteadyStateAllocations). The arena is
// worker-local, so no cross-worker synchronization touches the hot
// buffers; its hit/get counters surface as server.arena.* on /metrics.
func (s *Server) worker() {
	defer s.wg.Done()
	arena := qaoa.NewArena(0)
	defer arena.Close()
	var lastGets, lastHits int64
	for job := range s.queue {
		s.mem.Count("server.queue.depth", -1)
		job.arena = arena
		s.runJob(job)
		st := arena.Stats()
		if d := st.Gets - lastGets; d > 0 {
			s.mem.Count("server.arena.gets", d)
		}
		if d := st.Hits - lastHits; d > 0 {
			s.mem.Count("server.arena.hits", d)
		}
		lastGets, lastHits = st.Gets, st.Hits
	}
}

func (s *Server) runJob(job *Job) {
	if !job.setRunning() {
		return // cancelled while queued
	}
	s.mem.Count("server.jobs.running", 1)
	end := s.mem.Span("server.job")
	res, err := s.solveFn(job.ctx, job)
	end()
	s.mem.Count("server.jobs.running", -1)
	s.mem.Observe("server.job_ms", float64(time.Since(job.started).Nanoseconds())/1e6)
	switch {
	case err == nil:
		s.completeJob(job, StateDone, res, "")
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		s.completeJob(job, StateCancelled, nil, cancelMsg(job.ctx))
	default:
		s.completeJob(job, StateFailed, nil, err.Error())
	}
}

func cancelMsg(ctx context.Context) string {
	if err := context.Cause(ctx); err != nil {
		return err.Error()
	}
	return "cancelled"
}

// runSolve executes one job through the core flows. The recorder is the
// server sink, so optimizer counters (optimize.fev_total etc.) surface
// in /metrics — including the fact that a cache hit adds none — teed so
// per-iteration traces also reach the job's SSE subscribers. With a
// Dispatcher configured (coordinator role) the solve runs on a remote
// worker instead; the dispatcher relays the worker's trace events into
// the same bus, so streaming clients cannot tell the difference.
func (s *Server) runSolve(ctx context.Context, job *Job) (*SolveResult, error) {
	if s.cfg.Dispatcher != nil {
		return s.cfg.Dispatcher.Dispatch(ctx, job.req, job.fp, job.cost, job.publish)
	}
	rec := telemetry.Tee(s.mem, job.publish)
	pb, err := qaoa.New(job.spec)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(job.req.Seed))
	opt := optimizerFor(job.req.Optimizer)
	var res *SolveResult
	switch job.req.Strategy {
	case StrategyNaive:
		r, err := core.NaiveRunArena(ctx, job.arena, pb, job.req.Depth, opt, rng, rec)
		if err != nil {
			return nil, err
		}
		res = &SolveResult{
			Strategy: StrategyNaive, AR: r.AR,
			Gamma: r.Params.Gamma, Beta: r.Params.Beta,
			NFev: r.NFev,
		}
	case StrategyTwoLevel:
		pred, ok := s.registry.Get(job.req.Model)
		if !ok {
			return nil, fmt.Errorf("model %q disappeared from the registry", job.req.Model)
		}
		r, err := core.TwoLevelArena(ctx, job.arena, pb, job.req.Depth, opt, pred, rng, rec)
		if err != nil {
			return nil, err
		}
		res = &SolveResult{
			Strategy: StrategyTwoLevel, AR: r.AR(),
			Gamma: r.Level2.Params.Gamma, Beta: r.Level2.Params.Beta,
			NFev: r.TotalNFev, Level1AR: r.Level1.AR,
		}
	default:
		return nil, fmt.Errorf("unknown strategy %q", job.req.Strategy)
	}
	res.Problem = job.req.Problem
	res.Fingerprint = job.fp
	// Read out the most probable assignment at the final parameters —
	// the solution a client acts on — masked to the decision variables
	// (quadratization auxiliaries are an encoding detail). The readout
	// evaluator draws from the worker arena, so it reuses the buffers
	// the optimization just released instead of building a transient
	// 2^n state (Problem.BestSampled's behavior); ties resolve
	// identically, so the readout is unchanged.
	rd := qaoa.NewEvaluatorArena(pb, len(res.Gamma), job.arena)
	score, assign := rd.BestSampled(qaoa.Params{Gamma: res.Gamma, Beta: res.Beta})
	rd.Release()
	res.Objective = score
	vars := pb.NumQubits()
	if pb.Inst != nil {
		vars = pb.Inst.Vars
	}
	res.Assignment = assignBits(assign, vars)
	return res, nil
}

// assignBits renders an assignment as a bitstring, character i = the
// value of variable i.
func assignBits(z uint64, vars int) string {
	b := make([]byte, vars)
	for i := 0; i < vars; i++ {
		b[i] = byte('0' + (z>>uint(i))&1)
	}
	return string(b)
}

// optimizerFor maps an API optimizer name to a configured instance (the
// paper's four local optimizers at tolerance 1e-6, as in
// experiments.Optimizers). Unknown names return nil.
func optimizerFor(name string) optimize.Optimizer {
	switch name {
	case "lbfgsb":
		return &optimize.LBFGSB{Tol: 1e-6}
	case "neldermead":
		return &optimize.NelderMead{Tol: 1e-6}
	case "slsqp":
		return &optimize.SLSQP{Tol: 1e-6}
	case "cobyla":
		return &optimize.COBYLA{Tol: 1e-6}
	}
	return nil
}

// ---- HTTP handlers ----

// timed wraps a handler with the per-endpoint latency histogram and
// request counter.
func (s *Server) timed(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		s.mem.Count("server.http.requests", 1)
		s.mem.Observe("server.http."+route+"_ms", float64(time.Since(start).Nanoseconds())/1e6)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, e *httpError) {
	if e.code == http.StatusTooManyRequests {
		after := e.retryAfter
		if after < 1 {
			after = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(after))
	}
	writeJSON(w, e.code, map[string]string{"error": e.msg})
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	dec := json.NewDecoder(body)
	// Unknown keys are rejected, not ignored: with per-family payloads a
	// silently dropped field would solve a different instance than the
	// client thinks it submitted.
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, badRequest("decoding request: %v", err))
		return
	}
	spec, herr := s.normalize(&req)
	if herr != nil {
		writeError(w, herr)
		return
	}
	job, outcome, herr := s.submit(req, spec)
	if herr != nil {
		writeError(w, herr)
		return
	}
	if req.Wait {
		select {
		case <-job.Done():
		case <-r.Context().Done():
			// The submitting client is gone. Only the job's originator
			// cancels it; coalesced waiters must not abort someone
			// else's solve, and cached jobs are already finished.
			if outcome == outcomeQueued {
				s.mem.Count("server.jobs.client_disconnects", 1)
				job.Cancel()
				<-job.Done()
			}
		}
	}
	code := http.StatusAccepted
	if job.State().Terminal() {
		code = http.StatusOK
	}
	view := job.View()
	if outcome == outcomeCoalesced {
		view.Coalesced = true
	}
	writeJSON(w, code, view)
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, &httpError{code: http.StatusNotFound, msg: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, job.View())
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, &httpError{code: http.StatusNotFound, msg: "no such job"})
		return
	}
	job.Cancel()
	writeJSON(w, http.StatusOK, job.View())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	queued := len(s.queue)
	costInflight := s.adm.inflight
	s.mu.Unlock()
	status, code := "ok", http.StatusOK
	if draining {
		status, code = "draining", http.StatusServiceUnavailable
	}
	mode := "local"
	if s.cfg.Dispatcher != nil {
		mode = "coordinator"
	}
	writeJSON(w, code, map[string]any{
		"status":        status,
		"mode":          mode,
		"journaled":     s.cfg.Journal != nil,
		"api_version":   APIVersion,
		"problems":      problem.Families(),
		"queue_depth":   queued,
		"workers":       s.cfg.Workers,
		"models":        s.registry.Names(),
		"jobs":          s.jobs.len(),
		"qubit_ceiling": s.cfg.MaxNodes,
		"cost_inflight": costInflight,
		"cost_budget":   s.cfg.MaxInflightCost,
		"batch_max":     s.cfg.MaxBatch,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = s.mem.WriteJSON(w)
}
