package server

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestConcurrentLoadAndDrain is the smoke-load check wired into CI: 64
// concurrent wait=true naive solves on distinct 8-node instances, all of
// which must finish done (no drops), followed by a clean drain that
// leaves the queue-depth gauge at zero.
func TestConcurrentLoadAndDrain(t *testing.T) {
	const clients = 64
	s, ts := newTestServer(t, Config{Workers: 8, QueueDepth: 2 * clients, MaxJobs: 2 * clients})

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			nodes, edges := testInstance(100 + seed)
			code, view := postSolve(t, ts.URL, SolveRequest{
				Nodes: nodes, Edges: edges, Depth: 1,
				Strategy: StrategyNaive, Seed: seed, Wait: true,
			})
			if code != 200 {
				errs <- fmt.Errorf("seed %d: status %d (%+v)", seed, code, view)
				return
			}
			if view.State != StateDone || view.Result == nil {
				errs <- fmt.Errorf("seed %d: state %s", seed, view.State)
			}
		}(int64(i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	if done := s.mem.CounterValue("server.jobs.done"); done != clients {
		t.Fatalf("done counter %d, want %d", done, clients)
	}
	if sub := s.mem.CounterValue("server.jobs.submitted"); sub != clients {
		t.Fatalf("submitted counter %d, want %d (dropped or duplicated jobs)", sub, clients)
	}

	if err := s.Drain(drainCtx(t, 30*time.Second)); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if depth := s.mem.CounterValue("server.queue.depth"); depth != 0 {
		t.Fatalf("queue depth gauge %d after drain", depth)
	}
	if running := s.mem.CounterValue("server.jobs.running"); running != 0 {
		t.Fatalf("running gauge %d after drain", running)
	}
}

// TestDrainFinishesQueuedJobs verifies drain semantics under a backlog:
// jobs already accepted keep running to completion — drain never drops
// queued work.
func TestDrainFinishesQueuedJobs(t *testing.T) {
	const backlog = 12
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: backlog, MaxJobs: backlog})
	nodes, edges := testInstance(200)
	var ids []string
	for seed := int64(1); seed <= backlog; seed++ {
		code, view := postSolve(t, ts.URL, SolveRequest{
			Nodes: nodes, Edges: edges, Depth: 1, Strategy: StrategyNaive, Seed: seed,
		})
		if code != 202 && code != 200 {
			t.Fatalf("seed %d: status %d", seed, code)
		}
		ids = append(ids, view.ID)
	}
	if err := s.Drain(drainCtx(t, 60*time.Second)); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, id := range ids {
		job, ok := s.jobs.get(id)
		if !ok {
			t.Fatalf("job %s dropped during drain", id)
		}
		if st := job.State(); st != StateDone {
			t.Fatalf("job %s finished drain in state %s", id, st)
		}
	}
}
