package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"qaoaml/internal/telemetry"
)

// Per-job progress streaming. Every fresh job carries an eventBus; the
// solve path (local optimizers via a telemetry.Tee, or the cluster
// dispatcher relaying a worker's stream) publishes per-iteration
// optimizer traces into it, and GET /v1/jobs/{id}/events serves the bus
// as Server-Sent Events: the full history first, then live events, then
// one terminal "result" event carrying the job view. The bus closes
// when the job reaches a terminal state, so streams always end with the
// result even if the subscriber arrived after the last iteration.

const (
	// eventHistoryCap bounds the retained per-job event history; a deep
	// solve beyond it keeps streaming to live subscribers but late
	// joiners see only the first eventHistoryCap iterations (the
	// terminal result event is never dropped).
	eventHistoryCap = 4096
	// subBuffer is the per-subscriber channel depth. A subscriber
	// draining slower than the optimizer iterates has events dropped
	// (counted, never blocking the solve).
	subBuffer = 256
)

// SSE event names on the /v1/jobs/{id}/events stream.
const (
	EventIteration = "iteration" // data: telemetry.IterEvent
	EventResult    = "result"    // data: JobView (terminal; ends the stream)
)

// eventBus is a one-job publish/subscribe channel with bounded history.
type eventBus struct {
	mu      sync.Mutex
	history []telemetry.IterEvent
	dropped int64 // history overflow (publishes beyond eventHistoryCap)
	subs    map[chan telemetry.IterEvent]struct{}
	closed  bool
}

func newEventBus() *eventBus {
	return &eventBus{subs: make(map[chan telemetry.IterEvent]struct{})}
}

// publish records the event and fans it out without blocking: a full
// subscriber buffer drops the event for that subscriber only.
func (b *eventBus) publish(ev telemetry.IterEvent) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	if len(b.history) < eventHistoryCap {
		b.history = append(b.history, ev)
	} else {
		b.dropped++
	}
	for ch := range b.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// subscribe atomically snapshots the history and registers a live
// channel, so a subscriber sees every event exactly once (up to
// buffer-overflow drops). The channel is closed when the bus closes.
func (b *eventBus) subscribe() ([]telemetry.IterEvent, chan telemetry.IterEvent) {
	b.mu.Lock()
	defer b.mu.Unlock()
	history := append([]telemetry.IterEvent(nil), b.history...)
	ch := make(chan telemetry.IterEvent, subBuffer)
	if b.closed {
		close(ch)
		return history, ch
	}
	b.subs[ch] = struct{}{}
	return history, ch
}

// unsubscribe removes the channel; safe after close.
func (b *eventBus) unsubscribe(ch chan telemetry.IterEvent) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.subs[ch]; ok {
		delete(b.subs, ch)
	}
}

// close ends the stream: all subscriber channels are closed (after
// their buffered events drain) and further publishes are dropped.
func (b *eventBus) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for ch := range b.subs {
		close(ch)
	}
	b.subs = nil
}

// writeSSE frames one Server-Sent Event.
func writeSSE(w http.ResponseWriter, event string, data any) error {
	blob, err := json.Marshal(data)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, blob)
	return err
}

// handleJobEvents is GET /v1/jobs/{id}/events: an SSE stream of the
// job's per-iteration optimizer traces, terminated by one "result"
// event with the job view. Terminal jobs (including cache hits, which
// never had a bus) get the result event immediately. The stream works
// identically whether the job solved locally or was dispatched to a
// worker — the coordinator relays the worker's stream into the same
// bus.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, &httpError{code: http.StatusNotFound, msg: "no such job"})
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, &httpError{code: http.StatusInternalServerError, msg: "streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	s.mem.Count("server.events.streams", 1)

	emit := func(event string, data any) bool {
		if err := writeSSE(w, event, data); err != nil {
			return false
		}
		flusher.Flush()
		s.mem.Count("server.events.sent", 1)
		return true
	}

	if job.bus != nil {
		history, live := job.bus.subscribe()
		defer job.bus.unsubscribe(live)
		for _, ev := range history {
			if !emit(EventIteration, ev) {
				return
			}
		}
	stream:
		for {
			select {
			case ev, ok := <-live:
				if !ok {
					break stream // job terminal: bus closed
				}
				if !emit(EventIteration, ev) {
					return
				}
			case <-r.Context().Done():
				return
			}
		}
	} else {
		// No bus: a cache hit born terminal. Wait (it already is done)
		// so the code path below is uniform.
		select {
		case <-job.Done():
		case <-r.Context().Done():
			return
		}
	}
	emit(EventResult, job.View())
}
