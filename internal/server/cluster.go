package server

import (
	"context"

	"qaoaml/internal/telemetry"
)

// Fleet seams. The server stays a single-process subsystem; scaling it
// out is done through two narrow interfaces implemented by
// internal/cluster — a durable Journal (write-ahead log of accepted
// work and terminal outcomes) and a Dispatcher (fan heavy solves out to
// worker processes). Both are nil by default, which is exactly the
// pre-fleet single-process behavior.

// Journal durably records the job lifecycle so a crash loses no
// accepted work. Accepted is called synchronously inside submission —
// before the job becomes visible to workers and before the client gets
// its 202 — so an accepted record is on disk for every job the server
// ever acknowledged; an Accepted error rejects the submission.
// Completed is called once per job after it reaches a terminal state:
// res is the cacheable result for done jobs and nil for failed or
// cancelled ones (settled, nothing to replay).
//
// Implementations must be safe for concurrent use; Accepted is invoked
// under the server's submission lock, so its latency (an fsync) bounds
// the submission rate.
type Journal interface {
	Accepted(key, fingerprint string, req SolveRequest) error
	Completed(key string, res *SolveResult) error
}

// Dispatcher runs one job's solve somewhere else — the coordinator
// side of the coordinator/worker split. It receives the normalized
// request, the canonical instance fingerprint (the consistent-hashing
// key, so repeat requests land on the cache that owns them), the
// admission cost (the existing depth·2^qubits price, reused for
// per-worker budgets), and an emit callback for relaying the remote
// per-iteration trace events into the local job's SSE stream (may be
// nil). Cancelling ctx must abort the remote solve. The returned
// result must be bit-identical to a local solve of the same request —
// determinism is what makes the fleet cache exact.
type Dispatcher interface {
	Dispatch(ctx context.Context, req SolveRequest, fingerprint string, cost int64, emit func(telemetry.IterEvent)) (*SolveResult, error)
}

// SeedCache replays a recovered result into the LRU under its solve
// key — WAL recovery's cache warm-up. Keys come from journaled
// Accepted records, so they are canonical by construction.
func (s *Server) SeedCache(key string, res *SolveResult) {
	if key == "" || res == nil {
		return
	}
	s.cache.Add(key, res)
	s.mem.Count("server.cache.seeded", 1)
}

// Resubmit re-enqueues a recovered request with no attached client —
// WAL recovery's path for jobs that were accepted but never finished.
// The request re-normalizes and re-journals exactly like a fresh
// submission (recovery dedups repeated accepted records by key), and
// runs under a fresh default deadline. It returns the job, or the
// submission error (e.g. a model that is no longer registered).
func (s *Server) Resubmit(req SolveRequest) (*Job, error) {
	req.Wait = false
	spec, herr := s.normalize(&req)
	if herr != nil {
		return nil, herr
	}
	job, _, herr := s.submit(req, spec)
	if herr != nil {
		return nil, herr
	}
	s.mem.Count("server.jobs.resubmitted", 1)
	return job, nil
}
