package server

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"time"

	"qaoaml/internal/problem"
	"qaoaml/internal/qaoa"
	"qaoaml/internal/telemetry"
)

// JobState is the lifecycle of one solve job.
type JobState string

// Job lifecycle: Queued → Running → one of Done / Failed / Cancelled.
// Cache hits are born Done.
const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// SolveResult is the payload of a completed job. AR is the MaxCut
// approximation ratio for maxcut problems and the [0, 1]-normalized
// score for every other family; Objective is the best sampled Score
// (direction-normalized, so bigger is always better) and Assignment
// the corresponding decision-variable bitstring (character i = value
// of variable i; quadratization auxiliaries are masked off).
type SolveResult struct {
	Strategy    string    `json:"strategy"`
	Problem     string    `json:"problem,omitempty"`
	AR          float64   `json:"ar"`
	Gamma       []float64 `json:"gamma"`
	Beta        []float64 `json:"beta"`
	NFev        int       `json:"nfev"`
	Level1AR    float64   `json:"level1_ar,omitempty"` // two-level only
	Objective   float64   `json:"objective,omitempty"`
	Assignment  string    `json:"assignment,omitempty"`
	Fingerprint string    `json:"fingerprint"`
}

// JobView is the JSON representation served by the jobs endpoints.
type JobView struct {
	ID        string       `json:"id"`
	State     JobState     `json:"state"`
	Cached    bool         `json:"cached,omitempty"`    // served from the result cache
	Coalesced bool         `json:"coalesced,omitempty"` // attached to an identical in-flight job
	Result    *SolveResult `json:"result,omitempty"`
	Error     string       `json:"error,omitempty"`
	Enqueued  time.Time    `json:"enqueued"`
	Started   *time.Time   `json:"started,omitempty"`
	Finished  *time.Time   `json:"finished,omitempty"`
}

// Job is one solve instance moving through the queue. The context is
// derived from the server's base context plus the per-job deadline;
// cancelling it (explicitly, by deadline, or by a waiting client
// disconnecting) aborts the optimizer within one iteration.
type Job struct {
	ID  string
	Key string // canonical cache key (fingerprint + solve options)

	req  SolveRequest
	spec problem.Spec
	fp   string // canonical instance fingerprint
	cost int64  // admission-control price (0: cache hit, never admitted)

	// arena is the owning worker's buffer arena, set by that worker
	// just before runJob and read only on its goroutine.
	arena *qaoa.Arena

	// bus streams per-iteration optimizer traces to SSE subscribers.
	// Fresh jobs get one at submission; cache hits (born terminal) have
	// none. Closed exactly once when the job reaches a terminal state.
	bus *eventBus

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	mu        sync.Mutex
	state     JobState
	cached    bool
	coalesced bool // at least one later identical request attached
	result    *SolveResult
	errMsg    string
	enqueued  time.Time
	started   time.Time
	finished  time.Time
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// State returns the current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Cancel aborts the job: queued jobs finish as cancelled without
// running, running jobs are cancelled via their context within one
// optimizer iteration. Terminal jobs are unaffected.
func (j *Job) Cancel() { j.cancel() }

// View snapshots the job for JSON serialization.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:        j.ID,
		State:     j.state,
		Cached:    j.cached,
		Coalesced: j.coalesced,
		Result:    j.result,
		Error:     j.errMsg,
		Enqueued:  j.enqueued,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	return v
}

// setRunning transitions Queued → Running; it reports false if the job
// is already terminal (e.g. cancelled while queued).
func (j *Job) setRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	return true
}

// finish moves the job to a terminal state and wakes all waiters. Only
// the first call wins.
func (j *Job) finish(state JobState, res *SolveResult, errMsg string) bool {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return false
	}
	j.state = state
	j.result = res
	j.errMsg = errMsg
	j.finished = time.Now()
	j.mu.Unlock()
	j.cancel() // release the deadline timer
	close(j.done)
	if j.bus != nil {
		j.bus.close()
	}
	return true
}

// publish forwards one iteration event to the job's SSE subscribers;
// safe to call with no bus (cache hits) or concurrently with finish.
func (j *Job) publish(ev telemetry.IterEvent) {
	if j.bus != nil {
		j.bus.publish(ev)
	}
}

// finishFromQueued is finish restricted to jobs that never started —
// the queued-cancellation path, where no worker owns the job. It
// reports false if the job is running or terminal (the owner finishes
// it instead).
func (j *Job) finishFromQueued(state JobState, errMsg string) bool {
	j.mu.Lock()
	if j.state != StateQueued {
		j.mu.Unlock()
		return false
	}
	j.state = state
	j.errMsg = errMsg
	j.finished = time.Now()
	j.mu.Unlock()
	j.cancel()
	close(j.done)
	if j.bus != nil {
		j.bus.close()
	}
	return true
}

// jobStore indexes jobs by id and evicts the oldest finished records
// beyond a cap, so an always-on daemon does not grow without bound.
type jobStore struct {
	mu    sync.Mutex
	cap   int
	byID  map[string]*Job
	order *list.List // *Job in insertion order
	seq   uint64
}

func newJobStore(cap int) *jobStore {
	return &jobStore{cap: cap, byID: make(map[string]*Job), order: list.New()}
}

// nextID issues a process-unique job id.
func (s *jobStore) nextID() string {
	s.mu.Lock()
	s.seq++
	id := s.seq
	s.mu.Unlock()
	return fmt.Sprintf("job-%08d", id)
}

// add registers the job and prunes old terminal records over the cap.
func (s *jobStore) add(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.byID[j.ID] = j
	s.order.PushBack(j)
	for s.order.Len() > s.cap {
		evicted := false
		for e := s.order.Front(); e != nil; e = e.Next() {
			old := e.Value.(*Job)
			if old.State().Terminal() {
				s.order.Remove(e)
				delete(s.byID, old.ID)
				evicted = true
				break
			}
		}
		if !evicted {
			break // everything live; let the store grow rather than drop state
		}
	}
}

// get looks a job up by id.
func (s *jobStore) get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.byID[id]
	return j, ok
}

// len returns the number of retained job records.
func (s *jobStore) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byID)
}
