package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"testing"
	"time"
)

func TestJobCost(t *testing.T) {
	cases := []struct {
		qubits, depth int
		want          int64
	}{
		{8, 1, 256},
		{8, 3, 768},
		{10, 2, 2048},
		{0, 0, 2}, // clamped to one qubit, depth one
		{30, 10, 10 << 30},
	}
	for _, c := range cases {
		if got := jobCost(c.qubits, c.depth); got != c.want {
			t.Errorf("jobCost(%d, %d) = %d, want %d", c.qubits, c.depth, got, c.want)
		}
	}
}

// healthzCost reads cost_inflight and cost_budget from GET /healthz.
func healthzCost(t *testing.T, url string) (inflight, budget int64) {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		CostInflight int64 `json:"cost_inflight"`
		CostBudget   int64 `json:"cost_budget"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h.CostInflight, h.CostBudget
}

// TestAdmissionBudgetExhausted: once the in-flight cost reaches the
// budget, further jobs get 429 with a positive Retry-After; the slot
// reopens when the blocking job finishes, and /healthz tracks the
// in-flight cost through the whole cycle.
func TestAdmissionBudgetExhausted(t *testing.T) {
	// One 8-node depth-1 job prices at 256: a budget of 256 admits
	// exactly one at a time.
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8, MaxInflightCost: 256})
	started := make(chan *Job, 2)
	release := make(chan struct{})
	blockingSolve(s, started, release)

	if inflight, budget := healthzCost(t, ts.URL); inflight != 0 || budget != 256 {
		t.Fatalf("idle healthz: inflight %d budget %d", inflight, budget)
	}

	n1, e1 := testInstance(31)
	code, view := postSolve(t, ts.URL, SolveRequest{Nodes: n1, Edges: e1, Depth: 1, Strategy: StrategyNaive, Seed: 1})
	if code != http.StatusAccepted {
		t.Fatalf("first job: status %d", code)
	}
	<-started
	if inflight, _ := healthzCost(t, ts.URL); inflight != 256 {
		t.Fatalf("inflight cost %d with one job running, want 256", inflight)
	}

	n2, e2 := testInstance(32)
	blob, _ := json.Marshal(SolveRequest{Nodes: n2, Edges: e2, Depth: 1, Strategy: StrategyNaive, Seed: 2})
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget job: status %d, want 429", resp.StatusCode)
	}
	if after, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || after < 1 {
		t.Fatalf("Retry-After %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
	if got := s.mem.CounterValue("server.admission.rejected"); got != 1 {
		t.Fatalf("admission.rejected counter %d, want 1", got)
	}

	close(release) // let the first job finish, freeing its cost
	pollJob(t, ts.URL, view.ID, 10*time.Second)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if inflight, _ := healthzCost(t, ts.URL); inflight == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("in-flight cost never returned to 0")
		}
		time.Sleep(2 * time.Millisecond)
	}
	code, view2 := postSolve(t, ts.URL, SolveRequest{
		Nodes: n2, Edges: e2, Depth: 1, Strategy: StrategyNaive, Seed: 2, Wait: true})
	if code != http.StatusOK || view2.State != StateDone {
		t.Fatalf("retried job after budget freed: status %d state %s", code, view2.State)
	}
}

// TestAdmissionWhaleAdmittedWhenIdle: a single job pricier than the
// whole budget is still admitted when nothing is in flight — the
// budget throttles concurrency, it must not starve big jobs forever.
func TestAdmissionWhaleAdmittedWhenIdle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxInflightCost: 1})
	nodes, edges := testInstance(33)
	code, view := postSolve(t, ts.URL, SolveRequest{
		Nodes: nodes, Edges: edges, Depth: 1, Strategy: StrategyNaive, Seed: 1, Wait: true})
	if code != http.StatusOK || view.State != StateDone {
		t.Fatalf("whale on idle server: status %d state %s", code, view.State)
	}
}

// TestAdmissionCheapFlowsPastWhale: with a whale occupying most of the
// budget, cheap jobs that still fit keep flowing while a second whale
// is turned away.
func TestAdmissionCheapFlowsPastWhale(t *testing.T) {
	// Whale: 12 qubits depth 1 → 4096. Cheap: 8 qubits → 256.
	// Budget 4096+512 admits the whale plus cheap traffic, but not two
	// whales.
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8, MaxInflightCost: 4096 + 512})
	started := make(chan *Job, 2)
	release := make(chan struct{})
	defer close(release)
	blockingSolve(s, started, release)

	whale := SolveRequest{Problem: "partition", Numbers: make([]float64, 12), Depth: 1, Strategy: StrategyNaive, Seed: 1}
	for i := range whale.Numbers {
		whale.Numbers[i] = float64(i + 1)
	}
	if code, _ := postSolve(t, ts.URL, whale); code != http.StatusAccepted {
		t.Fatalf("whale: status %d", code)
	}
	<-started

	whale2 := whale
	whale2.Seed = 2
	blob, _ := json.Marshal(whale2)
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second whale: status %d, want 429", resp.StatusCode)
	}

	nodes, edges := testInstance(34)
	code, _ := postSolve(t, ts.URL, SolveRequest{Nodes: nodes, Edges: edges, Depth: 1, Strategy: StrategyNaive, Seed: 3})
	if code != http.StatusAccepted {
		t.Fatalf("cheap job behind the whale: status %d, want 202", code)
	}
	if got := s.mem.CounterValue("server.admission.rejected"); got != 1 {
		t.Fatalf("admission.rejected counter %d, want 1 (only the second whale)", got)
	}
}

// TestAdmissionCacheHitsBypass: cache hits are never admitted (cost 0),
// so a fully cached request succeeds even when the budget is occupied.
func TestAdmissionCacheHitsBypass(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8, MaxInflightCost: 256})
	nodes, edges := testInstance(35)
	req := SolveRequest{Nodes: nodes, Edges: edges, Depth: 1, Strategy: StrategyNaive, Seed: 1, Wait: true}
	if code, view := postSolve(t, ts.URL, req); code != http.StatusOK || view.State != StateDone {
		t.Fatalf("priming solve failed: %d %+v", code, view)
	}

	// Park a job that consumes the whole budget…
	started := make(chan *Job, 1)
	release := make(chan struct{})
	defer close(release)
	blockingSolve(s, started, release)
	n2, e2 := testInstance(36)
	if code, _ := postSolve(t, ts.URL, SolveRequest{Nodes: n2, Edges: e2, Depth: 1, Strategy: StrategyNaive, Seed: 2}); code != http.StatusAccepted {
		t.Fatal("blocker not accepted")
	}
	<-started

	// …and the cached spec still answers instantly.
	code, view := postSolve(t, ts.URL, req)
	if code != http.StatusOK || !view.Cached || view.State != StateDone {
		t.Fatalf("cached request during budget exhaustion: status %d view %+v", code, view)
	}
}

// A cold estimator (no job has ever retired, so the EWMA retire rate
// is zero) must hand out the bounded default Retry-After, not the
// degenerate 1-second floor that tells every rejected client to hammer
// a server that has never freed capacity.
func TestAdmissionColdStartRetryAfter(t *testing.T) {
	a := admission{budget: 100}
	if !a.admit(100) {
		t.Fatal("idle budget refused its first job")
	}
	if got := a.retryAfter(50); got != coldStartRetryAfter {
		t.Fatalf("cold-start retryAfter = %d, want %d", got, coldStartRetryAfter)
	}
	if coldStartRetryAfter < 1 || coldStartRetryAfter > 60 {
		t.Fatalf("coldStartRetryAfter = %d escapes the [1, 60] clamp", coldStartRetryAfter)
	}

	// Once a retirement calibrates the rate, the real estimate takes
	// over: 100 cost units retiring per second puts a 50-unit wait at
	// one second, not the cold default.
	a.release(100, 1.0)
	if !a.admit(100) {
		t.Fatal("refilled budget refused")
	}
	if got := a.retryAfter(50); got == coldStartRetryAfter || got < 1 {
		t.Fatalf("calibrated retryAfter = %d, still the cold default", got)
	}
}
