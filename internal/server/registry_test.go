package server

import (
	"context"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// saveTestModel writes the shared predictor into dir under name.json.
func saveTestModel(t *testing.T, dir, name string) {
	t.Helper()
	if err := testPredictor(t).SaveFile(filepath.Join(dir, name+".json")); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryLoadsDirectory(t *testing.T) {
	dir := t.TempDir()
	saveTestModel(t, dir, "default")
	saveTestModel(t, dir, "gpr-8q")

	reg, err := NewRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := reg.Names()
	if len(names) != 2 || names[0] != "default" || names[1] != "gpr-8q" {
		t.Fatalf("names %v", names)
	}
	pred, ok := reg.Get("default")
	if !ok {
		t.Fatal("default model missing")
	}
	if got, want := pred.TargetDepths(), testPredictor(t).TargetDepths(); len(got) != len(want) {
		t.Fatalf("loaded depths %v, want %v", got, want)
	}
}

func TestRegistryRejectsCorruptDirectory(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewRegistry(dir); err == nil {
		t.Fatal("corrupt model dir accepted at startup")
	}
}

func TestRegistryReload(t *testing.T) {
	dir := t.TempDir()
	saveTestModel(t, dir, "default")
	reg, err := NewRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}

	// A new model file appears; Reload picks it up.
	saveTestModel(t, dir, "fresh")
	if err := reg.Reload(); err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Get("fresh"); !ok {
		t.Fatal("reload did not pick up the new model")
	}
	if reg.Reloads() != 1 {
		t.Fatalf("reload count %d", reg.Reloads())
	}

	// In-process registrations survive reloads.
	reg.Register("inproc", testPredictor(t))
	if err := reg.Reload(); err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Get("inproc"); !ok {
		t.Fatal("reload dropped the in-process model")
	}

	// A corrupt file fails the reload and keeps the previous set serving.
	if err := os.WriteFile(filepath.Join(dir, "broken.json"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := reg.Reload(); err == nil {
		t.Fatal("corrupt reload reported success")
	}
	if _, ok := reg.Get("default"); !ok {
		t.Fatal("failed reload dropped the serving models")
	}
	if _, ok := reg.Get("fresh"); !ok {
		t.Fatal("failed reload dropped the serving models")
	}

	// A removed file disappears on the next successful reload.
	if err := os.Remove(filepath.Join(dir, "broken.json")); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "fresh.json")); err != nil {
		t.Fatal(err)
	}
	if err := reg.Reload(); err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Get("fresh"); ok {
		t.Fatal("deleted model still registered after reload")
	}
}

func TestRegistryWatchHUP(t *testing.T) {
	dir := t.TempDir()
	saveTestModel(t, dir, "default")
	reg, err := NewRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	reg.WatchHUP(ctx, nil)

	saveTestModel(t, dir, "hupped")
	if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for reg.Reloads() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("SIGHUP did not trigger a reload")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, ok := reg.Get("hupped"); !ok {
		t.Fatal("reloaded set missing the new model")
	}
}
