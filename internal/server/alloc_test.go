package server

import (
	"math/rand"
	"net/http"
	"testing"

	"qaoaml/internal/graph"
	"qaoaml/internal/qaoa"
	"qaoaml/internal/quantum"
)

// TestSteadyStateAllocatesNoAmplitudes is the serving-layer zero-alloc
// pin for workspace pooling: after the worker's arena is warm, whole
// solve requests — optimizer run, adjoint gradients, readout — must
// allocate zero bytes of amplitude (state-vector) storage. Distinct
// instances defeat the result cache so every request really solves;
// n >= StreamingThreshold keeps the per-problem cost table virtual so
// the only 2^n buffers in play are the pooled state vectors.
func TestSteadyStateAllocatesNoAmplitudes(t *testing.T) {
	const n = qaoa.StreamingThreshold + 1
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8, MaxNodes: n})

	instance := func(seed int64) SolveRequest {
		g := graph.ErdosRenyiConnected(n, 0.4, rand.New(rand.NewSource(seed)))
		var edges [][2]int
		for _, e := range g.Edges() {
			edges = append(edges, [2]int{e.U, e.V})
		}
		return SolveRequest{Nodes: n, Edges: edges, Depth: 2,
			Strategy: StrategyNaive, Seed: seed, Wait: true}
	}
	solve := func(seed int64) {
		t.Helper()
		code, view := postSolve(t, ts.URL, instance(seed))
		if code != http.StatusOK || view.State != StateDone {
			t.Fatalf("seed %d: status %d state %s (%s)", seed, code, view.State, view.Error)
		}
	}

	// Warm-up: populate the worker arena (forward state, adjoint, and
	// the readout evaluator's buffer all get pooled on first use).
	for seed := int64(1); seed <= 2; seed++ {
		solve(seed)
	}

	before := quantum.AmpBytesAllocated()
	for seed := int64(10); seed < 15; seed++ {
		solve(seed)
	}
	if delta := quantum.AmpBytesAllocated() - before; delta != 0 {
		t.Fatalf("steady-state requests allocated %d bytes of amplitude storage, want 0 "+
			"(a state-vector buffer escaped the worker arena)", delta)
	}
}
