package server

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"strings"
	"testing"
	"time"

	"qaoaml/internal/core"
	"qaoaml/internal/optimize"
	"qaoaml/internal/qaoa"
	"qaoaml/internal/quantum"
	"qaoaml/internal/telemetry"
)

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, Registry: testRegistry(t)})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var body struct {
		Status  string   `json:"status"`
		Workers int      `json:"workers"`
		Models  []string `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ok" || body.Workers != 2 {
		t.Fatalf("healthz %+v", body)
	}
	if len(body.Models) != 1 || body.Models[0] != "default" {
		t.Fatalf("models %v", body.Models)
	}
}

// The effective register ceiling shows up in /healthz and is enforced
// at admission with a 400 naming the limit; a configured MaxNodes above
// the simulator's register ceiling clamps to quantum.MaxQubits.
func TestQubitCeiling(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxNodes: 10, Registry: testRegistry(t)})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		QubitCeiling int `json:"qubit_ceiling"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.QubitCeiling != 10 {
		t.Fatalf("qubit_ceiling = %d, want 10", body.QubitCeiling)
	}

	_, edges := testInstance(3)
	code, raw := postSolveRaw(t, ts.URL, SolveRequest{Nodes: 11, Edges: edges, Depth: 2})
	if code != http.StatusBadRequest {
		t.Fatalf("solve above ceiling: status %d, body %s", code, raw)
	}
	if !strings.Contains(string(raw), "[2, 10]") {
		t.Fatalf("rejection does not name the ceiling: %s", raw)
	}

	if got := (Config{MaxNodes: 99}).withDefaults().MaxNodes; got != quantum.MaxQubits {
		t.Fatalf("MaxNodes clamp = %d, want quantum.MaxQubits = %d", got, quantum.MaxQubits)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	if _, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap telemetry.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["server.http.requests"] < 1 {
		t.Fatalf("request counter missing: %v", snap.Counters)
	}
	if _, ok := snap.Histograms["server.http.healthz_ms"]; !ok {
		t.Fatalf("healthz latency histogram missing: %v", snap.Histograms)
	}
}

func TestSolveValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Registry: testRegistry(t)})
	nodes, edges := testInstance(3)
	base := SolveRequest{Nodes: nodes, Edges: edges, Depth: 2}

	cases := map[string]func(r *SolveRequest){
		"no edges":            func(r *SolveRequest) { r.Edges = nil },
		"nodes too small":     func(r *SolveRequest) { r.Nodes = 1 },
		"nodes too large":     func(r *SolveRequest) { r.Nodes = 31 },
		"edge out of range":   func(r *SolveRequest) { r.Edges = append(r.Edges[:0:0], [2]int{0, 99}) },
		"self loop":           func(r *SolveRequest) { r.Edges = append(r.Edges[:0:0], [2]int{1, 1}) },
		"duplicate edge":      func(r *SolveRequest) { r.Edges = append(r.Edges[:0:0], [2]int{0, 1}, [2]int{1, 0}) },
		"weight mismatch":     func(r *SolveRequest) { r.Weights = []float64{1} },
		"zero weight":         func(r *SolveRequest) { r.Weights = make([]float64, len(r.Edges)) },
		"bad depth":           func(r *SolveRequest) { r.Depth = 0 },
		"depth too large":     func(r *SolveRequest) { r.Depth = 99 },
		"bad strategy":        func(r *SolveRequest) { r.Strategy = "quantum-annealing" },
		"bad optimizer":       func(r *SolveRequest) { r.Optimizer = "adam" },
		"unknown model":       func(r *SolveRequest) { r.Model = "nope" },
		"untrained depth":     func(r *SolveRequest) { r.Depth = 9 },
		"two-level at p=1":    func(r *SolveRequest) { r.Depth = 1 },
		"naive without model": func(r *SolveRequest) { r.Strategy = StrategyNaive; r.Depth = 0 },
	}
	for name, mutate := range cases {
		req := base
		req.Edges = append([][2]int(nil), base.Edges...)
		mutate(&req)
		code, body := postSolveRaw(t, ts.URL, req)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, body %s", name, code, body)
		}
	}

	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d", resp.StatusCode)
	}
}

func TestNaiveSolveMatchesDirectRun(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	nodes, edges := testInstance(4)
	const seed, depth = 9, 2
	code, view := postSolve(t, ts.URL, SolveRequest{
		Nodes: nodes, Edges: edges, Depth: depth,
		Strategy: StrategyNaive, Seed: seed, Wait: true,
	})
	if code != http.StatusOK || view.State != StateDone {
		t.Fatalf("status %d, view %+v", code, view)
	}

	g := buildGraph(t, nodes, edges)
	pb, err := qaoa.NewProblem(g)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := core.NaiveRunCtx(context.Background(), pb, depth,
		&optimize.LBFGSB{Tol: 1e-6}, rand.New(rand.NewSource(seed)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if view.Result == nil {
		t.Fatal("no result")
	}
	if view.Result.AR != direct.AR || view.Result.NFev != direct.NFev {
		t.Fatalf("served AR/NFev %v/%d != direct %v/%d",
			view.Result.AR, view.Result.NFev, direct.AR, direct.NFev)
	}
	for i := range direct.Params.Gamma {
		if view.Result.Gamma[i] != direct.Params.Gamma[i] || view.Result.Beta[i] != direct.Params.Beta[i] {
			t.Fatalf("served params diverge at stage %d", i)
		}
	}
	if view.Result.Fingerprint != g.Fingerprint() {
		t.Fatal("fingerprint mismatch")
	}
}

func TestJobEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	if code, _ := getJob(t, ts.URL, "job-00000099"); code != http.StatusNotFound {
		t.Fatalf("missing job: status %d", code)
	}
	nodes, edges := testInstance(5)
	code, view := postSolve(t, ts.URL, SolveRequest{
		Nodes: nodes, Edges: edges, Depth: 1, Strategy: StrategyNaive,
	})
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit status %d", code)
	}
	final := pollJob(t, ts.URL, view.ID, 30*time.Second)
	if final.State != StateDone || final.Result == nil {
		t.Fatalf("final %+v", final)
	}
	if final.Result.AR <= 0 || final.Result.AR > 1+1e-9 {
		t.Fatalf("AR %v out of range", final.Result.AR)
	}
}

func TestSingleFlightCoalescing(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8})
	started := make(chan *Job, 1)
	release := make(chan struct{})
	blockingSolve(s, started, release)

	nodes, edges := testInstance(6)
	req := SolveRequest{Nodes: nodes, Edges: edges, Depth: 1, Strategy: StrategyNaive}
	_, first := postSolve(t, ts.URL, req)
	<-started
	_, second := postSolve(t, ts.URL, req)
	if second.ID != first.ID {
		t.Fatalf("identical request got a new job: %s vs %s", second.ID, first.ID)
	}
	if !second.Coalesced {
		t.Fatal("second response not marked coalesced")
	}
	if got := s.mem.CounterValue("server.jobs.coalesced"); got != 1 {
		t.Fatalf("coalesced counter %d", got)
	}
	// A different seed is a different key and must NOT coalesce.
	diff := req
	diff.Seed = 2
	_, third := postSolve(t, ts.URL, diff)
	if third.ID == first.ID {
		t.Fatal("different options coalesced")
	}
	close(release)
	pollJob(t, ts.URL, first.ID, 10*time.Second)
}

func TestBackpressure429(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	started := make(chan *Job, 1)
	release := make(chan struct{})
	blockingSolve(s, started, release)

	nodes, edges := testInstance(7)
	mkReq := func(seed int64) SolveRequest {
		return SolveRequest{Nodes: nodes, Edges: edges, Depth: 1, Strategy: StrategyNaive, Seed: seed}
	}
	postSolve(t, ts.URL, mkReq(1)) // running
	<-started
	postSolve(t, ts.URL, mkReq(2)) // fills the queue

	blob, _ := json.Marshal(mkReq(3))
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(string(blob)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: status %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if got := s.mem.CounterValue("server.http.backpressure"); got != 1 {
		t.Fatalf("backpressure counter %d", got)
	}
	close(release)
}

func TestDrainRejectsNewWork(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	nodes, edges := testInstance(8)
	code, view := postSolve(t, ts.URL, SolveRequest{
		Nodes: nodes, Edges: edges, Depth: 1, Strategy: StrategyNaive, Wait: true,
	})
	if code != http.StatusOK || view.State != StateDone {
		t.Fatalf("pre-drain solve: %d %+v", code, view)
	}
	if err := s.Drain(drainCtx(t, 30*time.Second)); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Draining is idempotent.
	if err := s.Drain(drainCtx(t, time.Second)); err != nil {
		t.Fatalf("second drain: %v", err)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while drained: %d", resp.StatusCode)
	}
	code, body := postSolveRaw(t, ts.URL, SolveRequest{
		Nodes: nodes, Edges: edges, Depth: 1, Strategy: StrategyNaive,
	})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain solve: %d %s", code, body)
	}
}

func TestJobStoreEvictsFinished(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, MaxJobs: 4})
	nodes, edges := testInstance(9)
	for seed := int64(1); seed <= 8; seed++ {
		code, view := postSolve(t, ts.URL, SolveRequest{
			Nodes: nodes, Edges: edges, Depth: 1, Strategy: StrategyNaive, Seed: seed, Wait: true,
		})
		if code != http.StatusOK || view.State != StateDone {
			t.Fatalf("seed %d: %d %+v", seed, code, view)
		}
	}
	if got := s.jobs.len(); got > 4 {
		t.Fatalf("job store grew to %d records (cap 4)", got)
	}
}
