package server

import (
	"container/list"
	"fmt"
	"sync"
)

// lruCache is a fixed-capacity least-recently-used result cache. Keys
// are the canonical solve keys (graph fingerprint + solve options); a
// hit serves a finished SolveResult with zero optimizer work.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // *cacheEntry, front = most recent
	items map[string]*list.Element

	hits, misses, evictions int64
}

type cacheEntry struct {
	key string
	res *SolveResult
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached result and marks it most recently used.
func (c *lruCache) Get(key string) (*SolveResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(e)
	return e.Value.(*cacheEntry).res, true
}

// Add inserts (or refreshes) a result, evicting the least recently used
// entry when over capacity. A nil result or non-positive capacity is a
// no-op.
func (c *lruCache) Add(key string, res *SolveResult) {
	if res == nil || c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[key]; ok {
		c.ll.MoveToFront(e)
		e.Value.(*cacheEntry).res = res
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// Len returns the number of cached results.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// solveKey builds the canonical cache key: the family and the instance
// fingerprint (which covers linear terms, couplings, offsets and sense
// for compiled families — two instances over the same coupling graph
// never alias) plus every option that affects the result. Deadlines
// and wait-mode are deliberately excluded — they change whether a
// solve finishes, never what it computes — and only successful results
// are cached.
func solveKey(fingerprint string, req SolveRequest) string {
	return fmt.Sprintf("%s|f=%s|p=%d|s=%s|o=%s|m=%s|seed=%d",
		fingerprint, req.Problem, req.Depth, req.Strategy, req.Optimizer, req.Model, req.Seed)
}
