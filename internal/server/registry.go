package server

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"

	"qaoaml/internal/core"
)

// Registry holds the pre-trained parameter predictors the two-level
// strategy dispatches to, keyed by model name. Models are loaded from a
// directory of core.Predictor JSON files (name = file base without the
// .json suffix) and can be hot-reloaded — the daemon wires Reload to
// SIGHUP via WatchHUP — without dropping in-flight jobs: running solves
// keep the *core.Predictor they resolved at start.
type Registry struct {
	mu     sync.RWMutex
	dir    string
	models map[string]*core.Predictor // serving view: files merged with inproc
	inproc map[string]*core.Predictor // Register()ed models, kept across reloads

	reloads, reloadErrors int64
}

// NewRegistry returns a registry over dir, loading every *.json model
// in it. An empty dir yields an empty registry (naive-only serving)
// that Register can populate in-process.
func NewRegistry(dir string) (*Registry, error) {
	r := &Registry{
		dir:    dir,
		models: make(map[string]*core.Predictor),
		inproc: make(map[string]*core.Predictor),
	}
	if dir == "" {
		return r, nil
	}
	models, err := loadModelDir(dir)
	if err != nil {
		return nil, err
	}
	r.models = models
	return r, nil
}

// loadModelDir reads every *.json predictor in dir.
func loadModelDir(dir string) (map[string]*core.Predictor, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	models := make(map[string]*core.Predictor, len(paths))
	for _, path := range paths {
		pred, err := core.LoadPredictorFile(path)
		if err != nil {
			return nil, fmt.Errorf("server: loading model %s: %w", path, err)
		}
		name := strings.TrimSuffix(filepath.Base(path), ".json")
		models[name] = pred
	}
	return models, nil
}

// Get resolves a model by name.
func (r *Registry) Get(name string) (*core.Predictor, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.models[name]
	return p, ok
}

// Register installs (or replaces) an in-process model, e.g. one trained
// at daemon startup.
func (r *Registry) Register(name string, p *core.Predictor) {
	r.mu.Lock()
	r.inproc[name] = p
	r.models[name] = p
	r.mu.Unlock()
}

// Names lists the registered models, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.models))
	for n := range r.models {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Reloads returns how many successful reloads have completed.
func (r *Registry) Reloads() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.reloads
}

// Reload re-scans the model directory and atomically swaps the model
// set. On any load error the previous models stay in service. Models
// registered in-process (Register) survive reloads unless a file of the
// same name shadows them.
func (r *Registry) Reload() error {
	if r.dir == "" {
		return nil
	}
	fresh, err := loadModelDir(r.dir)
	if err != nil {
		r.mu.Lock()
		r.reloadErrors++
		r.mu.Unlock()
		return err
	}
	r.mu.Lock()
	for name, p := range r.inproc {
		if _, shadowed := fresh[name]; !shadowed {
			fresh[name] = p // keep in-process registrations not shadowed by files
		}
	}
	r.models = fresh
	r.reloads++
	r.mu.Unlock()
	return nil
}

// WatchHUP reloads the registry on every SIGHUP until ctx is done.
// Reload failures are reported through onErr (nil ignores them) and
// never replace the serving model set.
func (r *Registry) WatchHUP(ctx context.Context, onErr func(error)) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGHUP)
	go func() {
		defer signal.Stop(ch)
		for {
			select {
			case <-ctx.Done():
				return
			case <-ch:
				if err := r.Reload(); err != nil && onErr != nil {
					onErr(err)
				}
			}
		}
	}()
}
