package server

import (
	"encoding/json"
	"net/http"
)

// POST /v1/solve/batch: up to Config.MaxBatch solve specs in one
// request, solved with the same semantics as that many sequential
// POST /v1/solve calls with wait=true — and therefore bit-identical
// results (each item goes through the identical normalize → submit →
// solve path; batching changes scheduling, never arithmetic).
//
// Deduplication is layered: identical specs WITHIN the batch collapse
// onto one job here (items after the first are marked deduped and
// share its result), and each distinct spec still passes through the
// single-flight and LRU layers in submit, so a batch also coalesces
// with concurrent individual requests and hits the result cache. A
// batch of B identical items costs exactly one optimizer run.
//
// Errors are per item: a malformed or rejected spec fails its own slot
// (code + error) while the rest of the batch proceeds. The HTTP status
// is 200 whenever the batch itself was well-formed.

// BatchRequest is the POST /v1/solve/batch body. The per-item Wait
// flag is ignored: a batch always waits for its items.
type BatchRequest struct {
	Items []SolveRequest `json:"items"`
}

// BatchItemResult is one item's outcome, in input order. Code is the
// status the item would have received from /v1/solve (200, or a 4xx/5xx
// with Error set and Job nil). Deduped marks items collapsed onto an
// earlier identical item of the same batch.
type BatchItemResult struct {
	Code    int      `json:"code"`
	Error   string   `json:"error,omitempty"`
	Deduped bool     `json:"deduped,omitempty"`
	Job     *JobView `json:"job,omitempty"`
}

// BatchResponse is the POST /v1/solve/batch response payload.
type BatchResponse struct {
	Items []BatchItemResult `json:"items"`
}

// batchItem tracks one in-flight batch slot while its job runs.
type batchItem struct {
	job     *Job
	outcome submitOutcome
	owner   int // index of the item whose job this slot shares (dedup)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	body := http.MaxBytesReader(w, r.Body, 8<<20)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, badRequest("decoding request: %v", err))
		return
	}
	if len(req.Items) == 0 {
		writeError(w, badRequest("batch has no items"))
		return
	}
	if len(req.Items) > s.cfg.MaxBatch {
		writeError(w, badRequest("batch of %d items exceeds the %d-item limit", len(req.Items), s.cfg.MaxBatch))
		return
	}
	s.mem.Count("server.batch.requests", 1)
	s.mem.Count("server.batch.items", int64(len(req.Items)))

	results := make([]BatchItemResult, len(req.Items))
	items := make([]batchItem, len(req.Items))
	// byKey maps a solve key to the first batch index that submitted it:
	// the intra-batch dedup layer. Submission errors are not owners —
	// a later identical item retries (it will fail identically for 4xx
	// causes, but a queue-full 429 may clear mid-batch).
	byKey := make(map[string]int, len(req.Items))
	for i := range req.Items {
		item := &req.Items[i]
		item.Wait = false // the batch waits collectively below
		spec, herr := s.normalize(item)
		if herr != nil {
			results[i] = BatchItemResult{Code: herr.code, Error: herr.msg}
			continue
		}
		fp, err := spec.Fingerprint()
		if err != nil {
			results[i] = BatchItemResult{Code: http.StatusInternalServerError, Error: err.Error()}
			continue
		}
		if j, ok := byKey[solveKey(fp, *item)]; ok {
			s.mem.Count("server.batch.deduped", 1)
			results[i] = BatchItemResult{Code: http.StatusOK, Deduped: true}
			items[i] = batchItem{owner: j}
			continue
		}
		job, outcome, herr := s.submit(*item, spec)
		if herr != nil {
			results[i] = BatchItemResult{Code: herr.code, Error: herr.msg}
			continue
		}
		byKey[solveKey(fp, *item)] = i
		results[i] = BatchItemResult{Code: http.StatusOK}
		items[i] = batchItem{job: job, outcome: outcome, owner: i}
	}

	// Wait for every submitted job. On client disconnect, cancel the
	// jobs this batch originated — coalesced jobs belong to other
	// requests and cached ones are already done — and collect their
	// terminal states: the response write fails anyway, but the store
	// must not keep running jobs nobody waits on.
	disconnected := false
	for i := range items {
		if items[i].job == nil || disconnected {
			continue
		}
		select {
		case <-items[i].job.Done():
		case <-r.Context().Done():
			disconnected = true
			s.mem.Count("server.jobs.client_disconnects", 1)
		}
	}
	if disconnected {
		for i := range items {
			if items[i].job != nil && items[i].outcome == outcomeQueued {
				items[i].job.Cancel()
				<-items[i].job.Done()
			}
		}
	}

	for i := range items {
		if results[i].Error != "" {
			continue
		}
		// Dedup followers report their owner's job; byKey only records
		// successful submissions, so the owner always has one.
		src := items[items[i].owner]
		view := src.job.View()
		if src.outcome == outcomeCoalesced {
			view.Coalesced = true
		}
		results[i].Job = &view
	}
	writeJSON(w, http.StatusOK, BatchResponse{Items: results})
}
