// Package problem defines the general Ising/QUBO instance type behind
// every QAOA objective in this repository, plus compilers from classic
// combinatorial scenarios (MaxCut, weighted Max-k-SAT, number
// partitioning, portfolio selection, graph coloring) onto it.
//
// An Instance is a diagonal Hamiltonian over spin variables
// s_i = 1 − 2·bit_i(z) ∈ {+1, −1}:
//
//	Value(z) = Offset + Σ_i h_i·s_i + Σ_{i<j} J_ij·s_i·s_j
//
// together with an optimization Sense. QAOA always *maximizes* the
// direction-normalized Score(z) = sense·Value(z) (sense = +1 for
// Maximize, −1 for Minimize), so every downstream consumer — the qaoa
// kernels, approximation ratios, best-sampled readouts — handles the
// min/max direction in exactly one place.
//
// QUBO objectives over binary variables x_i = bit_i(z) ∈ {0, 1} convert
// exactly via x_i = (1 − s_i)/2 (see QUBO.ToIsing).
package problem

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// Sense is the optimization direction of an instance's Value.
type Sense int

// The two optimization directions. The numeric values are the score
// signs: Score(z) = int(Sense)·Value(z).
const (
	Maximize Sense = 1
	Minimize Sense = -1
)

// String returns "max" or "min" (the wire encoding used by qaoad).
func (s Sense) String() string {
	if s == Minimize {
		return "min"
	}
	return "max"
}

// Sign returns the score sign: +1 for Maximize, −1 for Minimize.
func (s Sense) Sign() float64 { return float64(s) }

// ParseSense decodes the wire encoding ("max"/"min", "" = max).
func ParseSense(s string) (Sense, error) {
	switch s {
	case "", "max", "maximize":
		return Maximize, nil
	case "min", "minimize":
		return Minimize, nil
	}
	return 0, fmt.Errorf("problem: unknown sense %q (want \"min\" or \"max\")", s)
}

// Term is one quadratic coupling J·s_i·s_j with i < j.
type Term struct {
	I, J int
	W    float64
}

// Canonical family names. Spec constructors and the qaoad wire schema
// use exactly these strings.
const (
	FamilyMaxCut    = "maxcut"
	FamilyQUBO      = "qubo"
	FamilyMaxKSAT   = "maxksat"
	FamilyPartition = "partition"
	FamilyPortfolio = "portfolio"
	FamilyColoring  = "coloring"
)

// Families lists every supported problem family in wire order.
func Families() []string {
	return []string{FamilyMaxCut, FamilyQUBO, FamilyMaxKSAT, FamilyPartition, FamilyPortfolio, FamilyColoring}
}

// BruteForceMaxQubits bounds the exhaustive ground-state scan, matching
// graph.WeightedMaxCut's limit.
const BruteForceMaxQubits = 30

// Instance is a compiled diagonal Hamiltonian: the universal problem
// representation every QAOA kernel evaluates.
type Instance struct {
	Family string // originating family (one of the Family* constants)
	Sense  Sense  // optimization direction of Value
	N      int    // total qubits, including auxiliary variables
	Vars   int    // leading decision variables; bits Vars..N-1 are auxiliary
	Linear []float64
	Quad   []Term
	Offset float64
}

// Validate checks structural invariants: qubit counts, finite
// coefficients, index ranges, i < j term normalization, and that at
// least one coupling or field is non-zero (a constant Hamiltonian has
// nothing to optimize).
func (in *Instance) Validate() error {
	if in.N < 1 {
		return fmt.Errorf("problem: instance has %d qubits", in.N)
	}
	if in.Vars < 1 || in.Vars > in.N {
		return fmt.Errorf("problem: %d decision variables out of [1, %d]", in.Vars, in.N)
	}
	if in.Sense != Maximize && in.Sense != Minimize {
		return fmt.Errorf("problem: invalid sense %d", in.Sense)
	}
	if math.IsNaN(in.Offset) || math.IsInf(in.Offset, 0) {
		return fmt.Errorf("problem: non-finite offset %v", in.Offset)
	}
	if in.Linear != nil && len(in.Linear) != in.N {
		return fmt.Errorf("problem: %d linear terms for %d qubits", len(in.Linear), in.N)
	}
	nonzero := false
	for i, h := range in.Linear {
		if math.IsNaN(h) || math.IsInf(h, 0) {
			return fmt.Errorf("problem: non-finite linear term h[%d] = %v", i, h)
		}
		if h != 0 {
			nonzero = true
		}
	}
	for k, t := range in.Quad {
		if t.I < 0 || t.J >= in.N || t.I >= t.J {
			return fmt.Errorf("problem: quadratic term %d (%d,%d) not normalized to 0 <= i < j < %d", k, t.I, t.J, in.N)
		}
		if math.IsNaN(t.W) || math.IsInf(t.W, 0) {
			return fmt.Errorf("problem: non-finite coupling J[%d,%d] = %v", t.I, t.J, t.W)
		}
		if t.W != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		return fmt.Errorf("problem: constant Hamiltonian (all couplings and fields zero) has nothing to optimize")
	}
	return nil
}

// Value evaluates the classical objective at assignment z (bit i of z
// is binary variable x_i; spin s_i = 1 − 2·x_i).
func (in *Instance) Value(z uint64) float64 {
	v := in.Offset
	for i, h := range in.Linear {
		if h == 0 {
			continue
		}
		if (z>>uint(i))&1 == 0 {
			v += h
		} else {
			v -= h
		}
	}
	for _, t := range in.Quad {
		if (z>>uint(t.I))&1 == (z>>uint(t.J))&1 {
			v += t.W
		} else {
			v -= t.W
		}
	}
	return v
}

// Score is the direction-normalized objective sense·Value: QAOA and
// every report maximize Score, whatever the family's native direction.
func (in *Instance) Score(z uint64) float64 { return in.Sense.Sign() * in.Value(z) }

// IntegerCoeffs reports whether 2·h_i and 2·J_ij are all integral (and
// small enough for exact int64 accumulation). That is the condition for
// the exact streaming path and for the γ mod 2π canonicalization: the
// phase-generator differences between basis states are then integers.
func (in *Instance) IntegerCoeffs() bool {
	const lim = 1 << 40
	ok := func(c float64) bool {
		d := 2 * c
		return d == math.Trunc(d) && math.Abs(d) < lim
	}
	for _, h := range in.Linear {
		if !ok(h) {
			return false
		}
	}
	for _, t := range in.Quad {
		if !ok(t.W) {
			return false
		}
	}
	return true
}

// BruteForce scans all 2^N assignments with gray-code incremental
// updates (O(degree) work per step) and returns the optimal Value per
// the instance's Sense, the worst Value (the opposite extreme, needed
// for normalized scores), and an assignment achieving the optimum.
func (in *Instance) BruteForce() (opt, worst float64, argOpt uint64) {
	if in.N > BruteForceMaxQubits {
		panic(fmt.Sprintf("problem: brute force over %d qubits exceeds the %d-qubit limit", in.N, BruteForceMaxQubits))
	}
	// CSR adjacency over quadratic terms for O(deg) flip deltas.
	deg := make([]int32, in.N+1)
	for _, t := range in.Quad {
		deg[t.I+1]++
		deg[t.J+1]++
	}
	for i := 1; i <= in.N; i++ {
		deg[i] += deg[i-1]
	}
	adjV := make([]int32, deg[in.N])
	adjW := make([]float64, deg[in.N])
	fill := append([]int32(nil), deg[:in.N]...)
	for _, t := range in.Quad {
		adjV[fill[t.I]], adjW[fill[t.I]] = int32(t.J), t.W
		fill[t.I]++
		adjV[fill[t.J]], adjW[fill[t.J]] = int32(t.I), t.W
		fill[t.J]++
	}

	s := make([]float64, in.N) // spins of the current gray-code state
	v := in.Offset
	for i := range s {
		s[i] = 1
		if in.Linear != nil {
			v += in.Linear[i]
		}
	}
	for _, t := range in.Quad {
		v += t.W
	}

	sign := in.Sense.Sign()
	opt, worst = v, v
	var cur, arg uint64 // cur is the gray code of step k
	for k := uint64(1); k < uint64(1)<<uint(in.N); k++ {
		b := bits.TrailingZeros64(k)
		// Flipping spin b changes the value by −2·s_b·(h_b + Σ_j J_bj·s_j).
		local := 0.0
		if in.Linear != nil {
			local = in.Linear[b]
		}
		for e := deg[b]; e < deg[b+1]; e++ {
			local += adjW[e] * s[adjV[e]]
		}
		v -= 2 * s[b] * local
		s[b] = -s[b]
		cur ^= 1 << uint(b)
		if sign*(v-opt) > 0 {
			opt, arg = v, cur
		}
		if sign*(v-worst) < 0 {
			worst = v
		}
	}
	return opt, worst, arg
}

// Fingerprint returns a deterministic canonical hash of the full
// instance — family, sense, sizes, offset, every linear term and every
// coupling — in the style of graph.Fingerprint. Two instances share a
// fingerprint iff they define the same objective over the same indexed
// variables, so the qaoad exact cache never aliases distinct instances
// that happen to share a coupling graph.
func (in *Instance) Fingerprint() string {
	terms := append([]Term(nil), in.Quad...)
	sort.Slice(terms, func(a, b int) bool {
		if terms[a].I != terms[b].I {
			return terms[a].I < terms[b].I
		}
		return terms[a].J < terms[b].J
	})
	h := sha256.New()
	h.Write([]byte(in.Family))
	var buf [24]byte
	binary.LittleEndian.PutUint64(buf[0:8], uint64(int64(in.Sense)))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(in.N))
	binary.LittleEndian.PutUint64(buf[16:24], uint64(in.Vars))
	h.Write(buf[:24])
	binary.LittleEndian.PutUint64(buf[0:8], math.Float64bits(in.Offset))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(len(in.Linear)))
	binary.LittleEndian.PutUint64(buf[16:24], uint64(len(terms)))
	h.Write(buf[:24])
	for _, v := range in.Linear {
		binary.LittleEndian.PutUint64(buf[0:8], math.Float64bits(v))
		h.Write(buf[:8])
	}
	for _, t := range terms {
		binary.LittleEndian.PutUint64(buf[0:8], uint64(t.I))
		binary.LittleEndian.PutUint64(buf[8:16], uint64(t.J))
		binary.LittleEndian.PutUint64(buf[16:24], math.Float64bits(t.W))
		h.Write(buf[:24])
	}
	return hex.EncodeToString(h.Sum(nil))
}
