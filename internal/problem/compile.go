package problem

import (
	"fmt"
	"math"

	"qaoaml/internal/graph"
)

// Compilers from classic scenarios onto the Ising Instance. Each
// compiler is deterministic in its input (term order fixed by the
// input's own order), so compiled instances fingerprint stably.

// CompileMaxCut maps weighted MaxCut onto spins: a cut edge (endpoints
// in different sets) has s_u·s_v = −1, so
//
//	C(z) = Σ_e w_e·(1 − s_u·s_v)/2 = m/2 − Σ_e (w_e/2)·s_u·s_v
//
// giving Offset = m/2, J_e = −w_e/2, no linear terms, Sense Maximize.
// The halvings are exact, so for integer edge weights the compiled
// instance evaluates C(z) bit-identically to graph.WeightedCutValue.
func CompileMaxCut(g *graph.Graph) (*Instance, error) {
	if g.NumEdges() == 0 {
		return nil, fmt.Errorf("problem: graph with no edges has no MaxCut objective")
	}
	edges := g.Edges()
	weights := g.Weights()
	in := &Instance{
		Family: FamilyMaxCut,
		Sense:  Maximize,
		N:      g.N,
		Vars:   g.N,
		Offset: g.TotalWeight() / 2,
		Quad:   make([]Term, len(edges)),
	}
	for i, e := range edges {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		in.Quad[i] = Term{I: u, J: v, W: -weights[i] / 2}
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}

// Clause is one weighted-SAT clause in DIMACS convention: literal
// l > 0 means variable x_{l−1}, l < 0 means its negation.
type Clause []int

// Formula is a weighted Max-k-SAT instance (k ≤ 3): maximize the total
// weight of satisfied clauses, equivalently minimize the unsatisfied
// weight — the form the compiler emits.
type Formula struct {
	Vars    int
	Clauses []Clause
	Weights []float64 // parallel to Clauses; nil = all 1
}

// Validate checks literal ranges, clause sizes (1..3), repeated
// variables within a clause, and clause weights.
func (f *Formula) Validate() error {
	if f.Vars < 1 {
		return fmt.Errorf("problem: formula over %d variables", f.Vars)
	}
	if len(f.Clauses) == 0 {
		return fmt.Errorf("problem: formula has no clauses")
	}
	if f.Weights != nil && len(f.Weights) != len(f.Clauses) {
		return fmt.Errorf("problem: %d weights for %d clauses", len(f.Weights), len(f.Clauses))
	}
	for ci, cl := range f.Clauses {
		if len(cl) < 1 || len(cl) > 3 {
			return fmt.Errorf("problem: clause %d has %d literals (supported: 1..3)", ci, len(cl))
		}
		seen := map[int]bool{}
		for _, l := range cl {
			if l == 0 {
				return fmt.Errorf("problem: clause %d has literal 0", ci)
			}
			v := l
			if v < 0 {
				v = -v
			}
			if v > f.Vars {
				return fmt.Errorf("problem: clause %d literal %d out of range for %d variables", ci, l, f.Vars)
			}
			if seen[v] {
				return fmt.Errorf("problem: clause %d repeats variable %d", ci, v)
			}
			seen[v] = true
		}
		if f.Weights != nil {
			w := f.Weights[ci]
			if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return fmt.Errorf("problem: clause %d has invalid weight %v", ci, w)
			}
		}
	}
	return nil
}

func (f *Formula) weight(ci int) float64 {
	if f.Weights == nil {
		return 1
	}
	return f.Weights[ci]
}

// UnsatWeight evaluates the classical objective at assignment z (bit
// i of z is the truth value of variable x_i): the total weight of
// unsatisfied clauses.
func (f *Formula) UnsatWeight(z uint64) float64 {
	total := 0.0
	for ci, cl := range f.Clauses {
		sat := false
		for _, l := range cl {
			v := l
			if v < 0 {
				v = -v
			}
			bit := (z >> uint(v-1)) & 1
			if (l > 0) == (bit == 1) {
				sat = true
				break
			}
		}
		if !sat {
			total += f.weight(ci)
		}
	}
	return total
}

// falseIndicator returns the affine form of "literal l is false":
// 1 − x for a positive literal, x for a negative one.
func falseIndicator(l int) Affine {
	if l > 0 {
		return Affine{Var: l - 1, A: 1, B: -1}
	}
	return Affine{Var: -l - 1, A: 0, B: 1}
}

// CompileMaxKSAT builds the penalty Hamiltonian minimizing the
// unsatisfied weight. A clause with false-indicators y_1..y_k incurs
// penalty W·Π y_i. For k ≤ 2 the product is at most quadratic; k = 3
// uses one auxiliary binary variable w per clause via the Rosenberg
// quadratization
//
//	y1·y2·y3 = min_w [ w·y3 + y1·y2 − 2w·y1 − 2w·y2 + 3w ]
//
// which is exact after minimizing over w for every (y1, y2, y3), so the
// ground state of the compiled instance is the Max-k-SAT optimum.
// Auxiliary variables are appended after the decision variables
// (Instance.Vars = Formula.Vars).
func CompileMaxKSAT(f *Formula) (*Instance, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	aux := 0
	for _, cl := range f.Clauses {
		if len(cl) == 3 {
			aux++
		}
	}
	q := NewQUBO(f.Vars+aux, Minimize)
	nextAux := f.Vars
	for ci, cl := range f.Clauses {
		w := f.weight(ci)
		switch len(cl) {
		case 1:
			q.AddProduct(w, falseIndicator(cl[0]))
		case 2:
			q.AddProduct(w, falseIndicator(cl[0]), falseIndicator(cl[1]))
		case 3:
			y1, y2, y3 := falseIndicator(cl[0]), falseIndicator(cl[1]), falseIndicator(cl[2])
			a := Affine{Var: nextAux, A: 0, B: 1}
			nextAux++
			q.AddProduct(w, a, y3)
			q.AddProduct(w, y1, y2)
			q.AddProduct(-2*w, a, y1)
			q.AddProduct(-2*w, a, y2)
			q.AddProduct(3*w, a)
		}
	}
	return q.ToIsing(FamilyMaxKSAT, f.Vars)
}

// CompilePartition maps number partitioning — split positive numbers
// into two sets minimizing the difference of sums — onto spins:
// minimize D(z)² with D = Σ_i w_i·s_i, i.e.
//
//	D² = Σ_i w_i² + Σ_{i<j} 2·w_i·w_j·s_i·s_j
//
// so Offset = Σ w_i², J_ij = 2·w_i·w_j (dense), Sense Minimize. The
// optimum is 0 exactly when a perfect partition exists.
func CompilePartition(numbers []float64) (*Instance, error) {
	n := len(numbers)
	if n < 2 {
		return nil, fmt.Errorf("problem: number partitioning needs at least 2 numbers")
	}
	offset := 0.0
	for i, w := range numbers {
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("problem: invalid number[%d] = %v", i, w)
		}
		offset += w * w
	}
	in := &Instance{
		Family: FamilyPartition,
		Sense:  Minimize,
		N:      n,
		Vars:   n,
		Offset: offset,
		Quad:   make([]Term, 0, n*(n-1)/2),
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			in.Quad = append(in.Quad, Term{I: i, J: j, W: 2 * numbers[i] * numbers[j]})
		}
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}

// PortfolioSpec is a binary portfolio-selection instance: pick assets
// x ∈ {0,1}^n minimizing risk-adjusted cost λ·xᵀΣx − μᵀx with a soft
// budget constraint A·(Σ x_i − B)².
type PortfolioSpec struct {
	Returns      []float64   // expected returns μ
	Covariance   [][]float64 // symmetric risk matrix Σ
	RiskAversion float64     // λ > 0
	Budget       int         // target cardinality B
	Penalty      float64     // budget penalty A; 0 = auto-scale
}

// Validate checks dimensions, symmetry and parameter ranges.
func (p *PortfolioSpec) Validate() error {
	n := len(p.Returns)
	if n < 2 {
		return fmt.Errorf("problem: portfolio needs at least 2 assets")
	}
	if len(p.Covariance) != n {
		return fmt.Errorf("problem: covariance is %dx? for %d assets", len(p.Covariance), n)
	}
	for i, row := range p.Covariance {
		if len(row) != n {
			return fmt.Errorf("problem: covariance row %d has %d entries for %d assets", i, len(row), n)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("problem: non-finite covariance[%d][%d]", i, j)
			}
			if math.Abs(v-p.Covariance[j][i]) > 1e-9*(1+math.Abs(v)) {
				return fmt.Errorf("problem: covariance not symmetric at (%d,%d)", i, j)
			}
		}
	}
	for i, r := range p.Returns {
		if math.IsNaN(r) || math.IsInf(r, 0) {
			return fmt.Errorf("problem: non-finite return[%d]", i)
		}
	}
	if p.RiskAversion <= 0 || math.IsNaN(p.RiskAversion) || math.IsInf(p.RiskAversion, 0) {
		return fmt.Errorf("problem: risk aversion %v must be positive", p.RiskAversion)
	}
	if p.Budget < 1 || p.Budget >= n {
		return fmt.Errorf("problem: budget %d out of [1, %d)", p.Budget, n)
	}
	if p.Penalty < 0 || math.IsNaN(p.Penalty) || math.IsInf(p.Penalty, 0) {
		return fmt.Errorf("problem: invalid penalty %v", p.Penalty)
	}
	return nil
}

// penaltyScale returns the budget penalty: the explicit one, or an
// auto-scale dominating the largest possible per-asset gain so the
// constraint is never worth violating by much.
func (p *PortfolioSpec) penaltyScale() float64 {
	if p.Penalty > 0 {
		return p.Penalty
	}
	scale := 1.0
	for i, r := range p.Returns {
		rowAbs := 0.0
		for _, v := range p.Covariance[i] {
			rowAbs += math.Abs(v)
		}
		if c := math.Abs(r) + p.RiskAversion*rowAbs; c > scale {
			scale = c
		}
	}
	return 2 * scale
}

// Objective evaluates the classical portfolio cost at assignment z.
func (p *PortfolioSpec) Objective(z uint64) float64 {
	n := len(p.Returns)
	cost, count := 0.0, 0
	for i := 0; i < n; i++ {
		if (z>>uint(i))&1 == 0 {
			continue
		}
		count++
		cost -= p.Returns[i]
		for j := 0; j < n; j++ {
			if (z>>uint(j))&1 == 1 {
				cost += p.RiskAversion * p.Covariance[i][j]
			}
		}
	}
	d := float64(count - p.Budget)
	return cost + p.penaltyScale()*d*d
}

// CompilePortfolio expands the quadratic cost into a QUBO (x_i² = x_i
// folds diagonal covariance and the budget square's diagonal into
// linear terms) and converts to spins.
func CompilePortfolio(p *PortfolioSpec) (*Instance, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(p.Returns)
	a := p.penaltyScale()
	q := NewQUBO(n, Minimize)
	q.AddConstant(a * float64(p.Budget) * float64(p.Budget))
	for i := 0; i < n; i++ {
		q.AddLinear(i, -p.Returns[i]+p.RiskAversion*p.Covariance[i][i]+a*(1-2*float64(p.Budget)))
		for j := i + 1; j < n; j++ {
			q.AddQuadratic(i, j, 2*(p.RiskAversion*p.Covariance[i][j]+a))
		}
	}
	return q.ToIsing(FamilyPortfolio, n)
}

// CompileColoring maps graph k-coloring onto n·k one-hot qubits
// x_{v,c} = x[v·k + c] with penalty
//
//	A·Σ_v (1 − Σ_c x_{v,c})² + B·Σ_{(u,v)∈E} Σ_c x_{u,c}·x_{v,c}
//
// (A = B = 1 by default): the ground-state value is 0 exactly when the
// graph is k-colorable. Sense Minimize.
func CompileColoring(g *graph.Graph, colors int, penaltyA, penaltyB float64) (*Instance, error) {
	if g.NumEdges() == 0 {
		return nil, fmt.Errorf("problem: graph with no edges has a trivial coloring")
	}
	if colors < 2 {
		return nil, fmt.Errorf("problem: coloring needs at least 2 colors, got %d", colors)
	}
	if penaltyA <= 0 {
		penaltyA = 1
	}
	if penaltyB <= 0 {
		penaltyB = 1
	}
	n := g.N * colors
	q := NewQUBO(n, Minimize)
	// (1 − Σ_c x_c)² = 1 − Σ_c x_c + 2·Σ_{c<c'} x_c·x_c' (using x² = x).
	for v := 0; v < g.N; v++ {
		q.AddConstant(penaltyA)
		for c := 0; c < colors; c++ {
			q.AddLinear(v*colors+c, -penaltyA)
			for c2 := c + 1; c2 < colors; c2++ {
				q.AddQuadratic(v*colors+c, v*colors+c2, 2*penaltyA)
			}
		}
	}
	for _, e := range g.Edges() {
		for c := 0; c < colors; c++ {
			q.AddQuadratic(e.U*colors+c, e.V*colors+c, penaltyB)
		}
	}
	return q.ToIsing(FamilyColoring, n)
}

// ColoringObjective evaluates the classical coloring penalty at
// assignment z (for cross-checking the compiled instance).
func ColoringObjective(g *graph.Graph, colors int, penaltyA, penaltyB float64, z uint64) float64 {
	if penaltyA <= 0 {
		penaltyA = 1
	}
	if penaltyB <= 0 {
		penaltyB = 1
	}
	total := 0.0
	for v := 0; v < g.N; v++ {
		count := 0
		for c := 0; c < colors; c++ {
			if (z>>uint(v*colors+c))&1 == 1 {
				count++
			}
		}
		d := float64(1 - count)
		total += penaltyA * d * d
	}
	for _, e := range g.Edges() {
		for c := 0; c < colors; c++ {
			if (z>>uint(e.U*colors+c))&1 == 1 && (z>>uint(e.V*colors+c))&1 == 1 {
				total += penaltyB
			}
		}
	}
	return total
}
