package problem

import (
	"fmt"
	"math"
	"sort"
)

// QUBO accumulates an objective over binary variables x_i ∈ {0, 1}:
//
//	f(x) = c + Σ_i l_i·x_i + Σ_{i<j} q_ij·x_i·x_j
//
// and converts it exactly to the spin form via x_i = (1 − s_i)/2. It is
// the working representation of every penalty-term compiler (Max-k-SAT,
// portfolio, coloring): build the penalty polynomial term by term, then
// ToIsing once. Duplicate (i, j) contributions merge; x_i² folds to x_i.
type QUBO struct {
	N     int
	Sense Sense

	constant float64
	linear   []float64
	quad     map[[2]int]float64
}

// NewQUBO returns an empty accumulator over n binary variables.
func NewQUBO(n int, sense Sense) *QUBO {
	return &QUBO{N: n, Sense: sense, linear: make([]float64, n), quad: make(map[[2]int]float64)}
}

// AddConstant adds c to the objective.
func (q *QUBO) AddConstant(c float64) { q.constant += c }

// AddLinear adds c·x_i.
func (q *QUBO) AddLinear(i int, c float64) {
	q.checkVar(i)
	q.linear[i] += c
}

// AddQuadratic adds c·x_i·x_j; i == j folds to the linear term c·x_i.
func (q *QUBO) AddQuadratic(i, j int, c float64) {
	q.checkVar(i)
	q.checkVar(j)
	if i == j {
		q.linear[i] += c
		return
	}
	if i > j {
		i, j = j, i
	}
	q.quad[[2]int{i, j}] += c
}

// AddProduct adds c·Π(a_k + b_k·x_{v_k}) for up to two affine factors —
// the clause-expansion workhorse of the Max-k-SAT compiler.
func (q *QUBO) AddProduct(c float64, factors ...Affine) {
	switch len(factors) {
	case 0:
		q.AddConstant(c)
	case 1:
		f := factors[0]
		q.AddConstant(c * f.A)
		q.AddLinear(f.Var, c*f.B)
	case 2:
		f, g := factors[0], factors[1]
		q.AddConstant(c * f.A * g.A)
		q.AddLinear(g.Var, c*f.A*g.B)
		q.AddLinear(f.Var, c*f.B*g.A)
		q.AddQuadratic(f.Var, g.Var, c*f.B*g.B)
	default:
		panic(fmt.Sprintf("problem: AddProduct of degree %d > 2 (reduce with auxiliary variables first)", len(factors)))
	}
}

// Affine is one factor a + b·x_v of a penalty product.
type Affine struct {
	Var  int
	A, B float64
}

func (q *QUBO) checkVar(i int) {
	if i < 0 || i >= q.N {
		panic(fmt.Sprintf("problem: QUBO variable %d out of [0, %d)", i, q.N))
	}
}

// Value evaluates the binary-variable objective at assignment z.
func (q *QUBO) Value(z uint64) float64 {
	v := q.constant
	for i, l := range q.linear {
		if l != 0 && (z>>uint(i))&1 == 1 {
			v += l
		}
	}
	for key, c := range q.quad {
		if (z>>uint(key[0]))&1 == 1 && (z>>uint(key[1]))&1 == 1 {
			v += c
		}
	}
	return v
}

// ToIsing converts to the spin representation exactly:
//
//	x_i       = 1/2 − s_i/2
//	x_i·x_j   = 1/4·(1 − s_i − s_j + s_i·s_j)
//
// The divisions are exact powers of two, so integer QUBO coefficients
// stay exactly representable (as quarters) in the Ising form. vars sets
// Instance.Vars (decision-variable count); pass q.N when no auxiliary
// variables were appended.
func (q *QUBO) ToIsing(family string, vars int) (*Instance, error) {
	in := &Instance{
		Family: family,
		Sense:  q.Sense,
		N:      q.N,
		Vars:   vars,
		Linear: make([]float64, q.N),
		Offset: q.constant,
	}
	for i, l := range q.linear {
		in.Offset += l / 2
		in.Linear[i] -= l / 2
	}
	keys := make([][2]int, 0, len(q.quad))
	for key := range q.quad {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})
	for _, key := range keys {
		c := q.quad[key]
		if c == 0 {
			continue
		}
		in.Offset += c / 4
		in.Linear[key[0]] -= c / 4
		in.Linear[key[1]] -= c / 4
		in.Quad = append(in.Quad, Term{I: key[0], J: key[1], W: c / 4})
	}
	allZero := true
	for _, h := range in.Linear {
		if h != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		in.Linear = nil
	}
	if math.IsNaN(in.Offset) || math.IsInf(in.Offset, 0) {
		return nil, fmt.Errorf("problem: QUBO offset overflowed to %v", in.Offset)
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}
