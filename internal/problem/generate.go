package problem

import (
	"fmt"
	"math/rand"

	"qaoaml/internal/graph"
)

// Deterministic seeded generators, one per family: the datagen
// ensembles of the cross-family training sets, and the instance
// sources of the qaoabench problem-family suites. Each generator
// consumes the rng in a fixed order, so (family, size, seed) pins the
// instance exactly.

// RandomMaxKSAT draws a weighted Max-k-SAT formula: clauses of k
// distinct variables with random polarities and integer weights 1..3.
func RandomMaxKSAT(vars, clauses, k int, rng *rand.Rand) *Formula {
	if k < 1 || k > 3 {
		panic(fmt.Sprintf("problem: RandomMaxKSAT k = %d out of [1,3]", k))
	}
	if vars < k {
		panic(fmt.Sprintf("problem: RandomMaxKSAT needs at least %d variables, got %d", k, vars))
	}
	f := &Formula{Vars: vars, Weights: make([]float64, clauses)}
	for c := 0; c < clauses; c++ {
		perm := rng.Perm(vars)[:k]
		cl := make(Clause, k)
		for i, v := range perm {
			l := v + 1
			if rng.Intn(2) == 1 {
				l = -l
			}
			cl[i] = l
		}
		f.Clauses = append(f.Clauses, cl)
		f.Weights[c] = float64(1 + rng.Intn(3))
	}
	return f
}

// RandomPartition draws n positive integers in [1, 50].
func RandomPartition(n int, rng *rand.Rand) []float64 {
	nums := make([]float64, n)
	for i := range nums {
		nums[i] = float64(1 + rng.Intn(50))
	}
	return nums
}

// RandomPortfolio draws an n-asset instance: returns in (0, 1), a
// diagonally dominant symmetric covariance, budget n/2.
func RandomPortfolio(n int, rng *rand.Rand) *PortfolioSpec {
	p := &PortfolioSpec{
		Returns:      make([]float64, n),
		Covariance:   make([][]float64, n),
		RiskAversion: 0.5,
		Budget:       n / 2,
	}
	if p.Budget < 1 {
		p.Budget = 1
	}
	for i := range p.Returns {
		p.Returns[i] = 0.01 + 0.99*rng.Float64()
		p.Covariance[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c := 0.2 * (rng.Float64() - 0.5)
			p.Covariance[i][j], p.Covariance[j][i] = c, c
		}
	}
	for i := 0; i < n; i++ {
		row := 0.0
		for j, v := range p.Covariance[i] {
			if j != i {
				if v < 0 {
					row -= v
				} else {
					row += v
				}
			}
		}
		p.Covariance[i][i] = row + 0.1 + 0.9*rng.Float64()
	}
	return p
}

// RandomIsing draws a ±J spin glass on a random 3-regular coupling
// graph (4-regular when 3n is odd) with fields h ∈ {−1, 0, +1}:
// integer coefficients, so the exact streaming path and γ-periodic
// canonicalization apply.
func RandomIsing(n int, rng *rand.Rand) *Instance {
	if n < 4 {
		panic(fmt.Sprintf("problem: RandomIsing needs at least 4 spins, got %d", n))
	}
	deg := 3
	if n*deg%2 != 0 {
		deg = 4
	}
	g := graph.RandomRegular(n, deg, rng)
	in := &Instance{
		Family: FamilyQUBO,
		Sense:  Minimize,
		N:      n,
		Vars:   n,
		Linear: make([]float64, n),
	}
	for _, e := range g.Edges() {
		w := 1.0
		if rng.Intn(2) == 1 {
			w = -1
		}
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		in.Quad = append(in.Quad, Term{I: u, J: v, W: w})
	}
	for i := range in.Linear {
		in.Linear[i] = float64(rng.Intn(3) - 1)
	}
	return in
}

// RandomColoring draws a connected Erdős–Rényi graph with edge
// probability p and wraps it as a k-coloring spec (n·colors qubits).
func RandomColoring(n, colors int, p float64, rng *rand.Rand) Spec {
	return Coloring(graph.ErdosRenyiConnected(n, p, rng), colors)
}

// RandomSpec draws one instance of the family sized to roughly qubits
// total qubits — the dispatcher datagen uses to build per-family
// ensembles with one knob.
func RandomSpec(family string, qubits int, rng *rand.Rand) (Spec, error) {
	if qubits < 4 {
		return Spec{}, fmt.Errorf("problem: RandomSpec needs at least 4 qubits, got %d", qubits)
	}
	switch family {
	case FamilyMaxCut:
		return MaxCut(graph.ErdosRenyiConnected(qubits, 0.5, rng)), nil
	case FamilyQUBO:
		return FromInstance(RandomIsing(qubits, rng)), nil
	case FamilyMaxKSAT:
		// k = 2 keeps the register at exactly `qubits` (no auxiliaries).
		return MaxKSAT(RandomMaxKSAT(qubits, 3*qubits, 2, rng)), nil
	case FamilyPartition:
		return Partition(RandomPartition(qubits, rng)), nil
	case FamilyPortfolio:
		return Portfolio(RandomPortfolio(qubits, rng)), nil
	case FamilyColoring:
		colors := 3
		verts := qubits / colors
		if verts < 2 {
			colors, verts = 2, qubits/2
		}
		return RandomColoring(verts, colors, 0.5, rng), nil
	}
	return Spec{}, fmt.Errorf("problem: unknown family %q (want one of %v)", family, Families())
}
