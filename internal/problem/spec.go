package problem

import (
	"fmt"

	"qaoaml/internal/graph"
)

// Spec is the single problem-specification type every layer accepts:
// qaoa constructors, core datagen/naive/two-level entry points and the
// qaoad wire schema all take a Spec and compile it once. Exactly one
// family payload is populated, per the Family string; the family
// constructors below are the supported way to build one.
type Spec struct {
	Family string

	Graph    *graph.Graph   // maxcut, coloring
	Inst     *Instance      // qubo: a pre-built Hamiltonian
	Formula  *Formula       // maxksat
	Numbers  []float64      // partition
	Port     *PortfolioSpec // portfolio
	Colors   int            // coloring
	PenaltyA float64        // coloring one-hot penalty (0 = 1)
	PenaltyB float64        // coloring conflict penalty (0 = 1)
}

// MaxCut wraps a weighted graph as a MaxCut spec — the family that
// keeps the legacy direct-graph evaluation path, bit-identical to the
// pre-Spec API.
func MaxCut(g *graph.Graph) Spec { return Spec{Family: FamilyMaxCut, Graph: g} }

// FromInstance wraps a pre-built Ising/QUBO Hamiltonian.
func FromInstance(in *Instance) Spec { return Spec{Family: FamilyQUBO, Inst: in} }

// MaxKSAT wraps a weighted Max-k-SAT formula (k ≤ 3).
func MaxKSAT(f *Formula) Spec { return Spec{Family: FamilyMaxKSAT, Formula: f} }

// Partition wraps a number-partitioning instance.
func Partition(numbers []float64) Spec { return Spec{Family: FamilyPartition, Numbers: numbers} }

// Portfolio wraps a portfolio-selection instance.
func Portfolio(p *PortfolioSpec) Spec { return Spec{Family: FamilyPortfolio, Port: p} }

// Coloring wraps a graph k-coloring instance (default penalties 1).
func Coloring(g *graph.Graph, colors int) Spec {
	return Spec{Family: FamilyColoring, Graph: g, Colors: colors}
}

// Compile lowers the spec to its Ising Instance. MaxCut specs compile
// too (Offset m/2, J = −w/2) — qaoa routes them to the legacy graph
// kernels by family, but the compiled form is what the bit-identity
// guarantees are stated against.
func (s Spec) Compile() (*Instance, error) {
	switch s.Family {
	case FamilyMaxCut:
		if s.Graph == nil {
			return nil, fmt.Errorf("problem: maxcut spec has no graph")
		}
		return CompileMaxCut(s.Graph)
	case FamilyQUBO:
		if s.Inst == nil {
			return nil, fmt.Errorf("problem: qubo spec has no instance")
		}
		if err := s.Inst.Validate(); err != nil {
			return nil, err
		}
		return s.Inst, nil
	case FamilyMaxKSAT:
		if s.Formula == nil {
			return nil, fmt.Errorf("problem: maxksat spec has no formula")
		}
		return CompileMaxKSAT(s.Formula)
	case FamilyPartition:
		return CompilePartition(s.Numbers)
	case FamilyPortfolio:
		if s.Port == nil {
			return nil, fmt.Errorf("problem: portfolio spec has no payload")
		}
		return CompilePortfolio(s.Port)
	case FamilyColoring:
		if s.Graph == nil {
			return nil, fmt.Errorf("problem: coloring spec has no graph")
		}
		return CompileColoring(s.Graph, s.Colors, s.PenaltyA, s.PenaltyB)
	}
	return nil, fmt.Errorf("problem: unknown family %q (want one of %v)", s.Family, Families())
}

// Qubits returns the compiled register width without keeping the
// instance (coloring uses n·k qubits, maxksat adds auxiliaries).
func (s Spec) Qubits() (int, error) {
	switch s.Family {
	case FamilyMaxCut:
		if s.Graph == nil {
			return 0, fmt.Errorf("problem: maxcut spec has no graph")
		}
		return s.Graph.N, nil
	case FamilyColoring:
		if s.Graph == nil {
			return 0, fmt.Errorf("problem: coloring spec has no graph")
		}
		if s.Colors < 2 {
			return 0, fmt.Errorf("problem: coloring needs at least 2 colors, got %d", s.Colors)
		}
		return s.Graph.N * s.Colors, nil
	}
	in, err := s.Compile()
	if err != nil {
		return 0, err
	}
	return in.N, nil
}

// Fingerprint returns the canonical cache identity of the spec. MaxCut
// keeps the plain graph fingerprint (so pre-Spec cache keys stay
// stable); every other family hashes the full compiled instance —
// linear terms and offsets included — so distinct instances over the
// same coupling graph never alias.
func (s Spec) Fingerprint() (string, error) {
	if s.Family == FamilyMaxCut {
		if s.Graph == nil {
			return "", fmt.Errorf("problem: maxcut spec has no graph")
		}
		return s.Graph.Fingerprint(), nil
	}
	in, err := s.Compile()
	if err != nil {
		return "", err
	}
	return in.Fingerprint(), nil
}
