package problem

import (
	"math"
	"math/rand"
	"testing"

	"qaoaml/internal/graph"
)

// exhaustiveOpt scans the classical objective fn over all 2^n
// assignments and returns the extreme per sense.
func exhaustiveOpt(n int, sense Sense, fn func(z uint64) float64) (opt float64, arg uint64) {
	opt = fn(0)
	for z := uint64(1); z < 1<<uint(n); z++ {
		v := fn(z)
		if sense.Sign()*(v-opt) > 0 {
			opt, arg = v, z
		}
	}
	return opt, arg
}

func TestMaxCutCompilerGroundState(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 4; trial++ {
		g := graph.ErdosRenyiConnected(9, 0.5, rng)
		in, err := CompileMaxCut(g)
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		// Value(z) must reproduce the cut weight exactly for unit weights.
		for z := uint64(0); z < 1<<9; z++ {
			if got, want := in.Value(z), g.WeightedCutValue(z); got != want {
				t.Fatalf("trial %d: Value(%d) = %v, cut = %v", trial, z, got, want)
			}
		}
		opt, _, arg := in.BruteForce()
		wantOpt, _ := g.WeightedMaxCut()
		if opt != wantOpt {
			t.Fatalf("trial %d: brute-force opt %v != WeightedMaxCut %v", trial, opt, wantOpt)
		}
		if in.Value(arg) != opt {
			t.Fatalf("trial %d: argOpt value %v != opt %v", trial, in.Value(arg), opt)
		}
	}
}

func TestPartitionCompilerGroundState(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 4; trial++ {
		nums := RandomPartition(10, rng)
		in, err := CompilePartition(nums)
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		diffSq := func(z uint64) float64 {
			d := 0.0
			for i, w := range nums {
				if (z>>uint(i))&1 == 0 {
					d += w
				} else {
					d -= w
				}
			}
			return d * d
		}
		for z := uint64(0); z < 1<<10; z++ {
			if got, want := in.Value(z), diffSq(z); math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d: Value(%d) = %v, want %v", trial, z, got, want)
			}
		}
		opt, worst, _ := in.BruteForce()
		wantOpt, _ := exhaustiveOpt(10, Minimize, diffSq)
		wantWorst, _ := exhaustiveOpt(10, Maximize, diffSq)
		if opt != wantOpt || worst != wantWorst {
			t.Fatalf("trial %d: brute force (%v, %v), want (%v, %v)", trial, opt, worst, wantOpt, wantWorst)
		}
	}
}

func TestMaxKSATCompilerGroundState(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 4; trial++ {
		f := RandomMaxKSAT(8, 5, 3, rng)
		in, err := CompileMaxKSAT(f)
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		if in.Vars != 8 {
			t.Fatalf("Vars = %d, want 8", in.Vars)
		}
		if in.N > 14 {
			t.Fatalf("register %d too wide for brute force", in.N)
		}
		// For every decision assignment, minimizing the compiled value
		// over the auxiliary bits must reproduce the unsat weight exactly
		// (the Rosenberg quadratization is exact under aux minimization).
		auxBits := in.N - in.Vars
		for z := uint64(0); z < 1<<8; z++ {
			best := math.Inf(1)
			for a := uint64(0); a < 1<<uint(auxBits); a++ {
				if v := in.Value(z | a<<8); v < best {
					best = v
				}
			}
			if want := f.UnsatWeight(z); best != want {
				t.Fatalf("trial %d: min-aux value at %d = %v, unsat weight = %v", trial, z, best, want)
			}
		}
		opt, _, _ := in.BruteForce()
		wantOpt, _ := exhaustiveOpt(8, Minimize, f.UnsatWeight)
		if opt != wantOpt {
			t.Fatalf("trial %d: ground state %v != min unsat weight %v", trial, opt, wantOpt)
		}
	}
}

func TestPortfolioCompilerGroundState(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 4; trial++ {
		p := RandomPortfolio(9, rng)
		in, err := CompilePortfolio(p)
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		for z := uint64(0); z < 1<<9; z++ {
			if got, want := in.Value(z), p.Objective(z); math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("trial %d: Value(%d) = %v, objective = %v", trial, z, got, want)
			}
		}
		opt, _, arg := in.BruteForce()
		wantOpt, wantArg := exhaustiveOpt(9, Minimize, p.Objective)
		if math.Abs(opt-wantOpt) > 1e-9*(1+math.Abs(wantOpt)) {
			t.Fatalf("trial %d: ground state %v != exhaustive %v (arg %d vs %d)", trial, opt, wantOpt, arg, wantArg)
		}
	}
}

func TestColoringCompilerGroundState(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 4; trial++ {
		g := graph.ErdosRenyiConnected(4, 0.6, rng)
		in, err := CompileColoring(g, 3, 0, 0)
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		if in.N != 12 {
			t.Fatalf("register %d, want 12", in.N)
		}
		for z := uint64(0); z < 1<<12; z++ {
			if got, want := in.Value(z), ColoringObjective(g, 3, 0, 0, z); math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d: Value(%d) = %v, penalty = %v", trial, z, got, want)
			}
		}
		// Any graph on 4 vertices with at least one non-complete pair is
		// 3-colorable iff it has no K4; either way the compiled ground
		// state must equal the exhaustive penalty minimum.
		opt, _, _ := in.BruteForce()
		wantOpt, _ := exhaustiveOpt(12, Minimize, func(z uint64) float64 {
			return ColoringObjective(g, 3, 0, 0, z)
		})
		if opt != wantOpt {
			t.Fatalf("trial %d: ground state %v != exhaustive %v", trial, opt, wantOpt)
		}
	}
}

func TestQUBOIsingRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 6; trial++ {
		n := 3 + rng.Intn(8)
		q := NewQUBO(n, Minimize)
		q.AddConstant(rng.NormFloat64())
		for i := 0; i < n; i++ {
			q.AddLinear(i, rng.NormFloat64())
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.5 {
					q.AddQuadratic(i, j, rng.NormFloat64())
				}
			}
		}
		in, err := q.ToIsing(FamilyQUBO, n)
		if err != nil {
			t.Fatalf("trial %d: ToIsing: %v", trial, err)
		}
		for z := uint64(0); z < 1<<uint(n); z++ {
			got, want := in.Value(z), q.Value(z)
			if math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
				t.Fatalf("trial %d: Ising value %v != QUBO value %v at z=%d", trial, got, want, z)
			}
		}
	}
}

func TestSenseNormalization(t *testing.T) {
	in := &Instance{Family: FamilyQUBO, Sense: Minimize, N: 2, Vars: 2, Quad: []Term{{I: 0, J: 1, W: 1}}}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	// Value(00) = +1 (aligned), Value(01) = −1. Minimize → Score flips.
	if in.Score(0) != -1 || in.Score(1) != 1 {
		t.Fatalf("scores (%v, %v), want (−1, +1)", in.Score(0), in.Score(1))
	}
	opt, worst, arg := in.BruteForce()
	if opt != -1 || worst != 1 {
		t.Fatalf("brute force (%v, %v), want (−1, 1)", opt, worst)
	}
	if in.Value(arg) != -1 {
		t.Fatalf("argOpt value %v, want −1", in.Value(arg))
	}
	in.Sense = Maximize
	opt, worst, _ = in.BruteForce()
	if opt != 1 || worst != -1 {
		t.Fatalf("maximize brute force (%v, %v), want (1, −1)", opt, worst)
	}
}

func TestFingerprintDistinguishesInstances(t *testing.T) {
	base := func() *Instance {
		return &Instance{
			Family: FamilyQUBO, Sense: Minimize, N: 4, Vars: 4,
			Linear: []float64{1, 0, -1, 0},
			Quad:   []Term{{I: 0, J: 1, W: 1}, {I: 2, J: 3, W: -1}},
			Offset: 2.5,
		}
	}
	a := base()
	fps := map[string]string{a.Fingerprint(): "base"}
	check := func(name string, mutate func(*Instance)) {
		in := base()
		mutate(in)
		fp := in.Fingerprint()
		if prev, dup := fps[fp]; dup {
			t.Fatalf("%s collides with %s", name, prev)
		}
		fps[fp] = name
	}
	check("offset", func(in *Instance) { in.Offset = 3 })
	check("linear", func(in *Instance) { in.Linear[1] = 0.5 })
	check("coupling", func(in *Instance) { in.Quad[0].W = 2 })
	check("sense", func(in *Instance) { in.Sense = Maximize })
	check("family", func(in *Instance) { in.Family = FamilyPartition })
	check("vars", func(in *Instance) { in.Vars = 3 })

	// Term order must NOT matter: same objective, same fingerprint.
	shuffled := base()
	shuffled.Quad[0], shuffled.Quad[1] = shuffled.Quad[1], shuffled.Quad[0]
	if shuffled.Fingerprint() != base().Fingerprint() {
		t.Fatal("term order changed the fingerprint")
	}
}

func TestSpecCompileAndFingerprint(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for _, family := range Families() {
		spec, err := RandomSpec(family, 9, rng)
		if err != nil {
			t.Fatalf("%s: RandomSpec: %v", family, err)
		}
		in, err := spec.Compile()
		if err != nil {
			t.Fatalf("%s: compile: %v", family, err)
		}
		if err := in.Validate(); err != nil {
			t.Fatalf("%s: invalid instance: %v", family, err)
		}
		qb, err := spec.Qubits()
		if err != nil || qb != in.N {
			t.Fatalf("%s: Qubits() = (%d, %v), instance has %d", family, qb, err, in.N)
		}
		fp, err := spec.Fingerprint()
		if err != nil || fp == "" {
			t.Fatalf("%s: fingerprint (%q, %v)", family, fp, err)
		}
		if family == FamilyMaxCut {
			if fp != spec.Graph.Fingerprint() {
				t.Fatal("maxcut spec fingerprint must stay the plain graph fingerprint")
			}
		} else if fp != in.Fingerprint() {
			t.Fatalf("%s: spec fingerprint != instance fingerprint", family)
		}
	}
	if _, err := RandomSpec("nosuch", 8, rng); err == nil {
		t.Fatal("unknown family accepted")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, family := range Families() {
		s1, err1 := RandomSpec(family, 10, rand.New(rand.NewSource(42)))
		s2, err2 := RandomSpec(family, 10, rand.New(rand.NewSource(42)))
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v / %v", family, err1, err2)
		}
		f1, _ := s1.Fingerprint()
		f2, _ := s2.Fingerprint()
		if f1 != f2 {
			t.Fatalf("%s: same seed produced different instances", family)
		}
	}
}

func TestIntegerCoeffs(t *testing.T) {
	in := &Instance{Family: FamilyQUBO, Sense: Maximize, N: 2, Vars: 2, Quad: []Term{{I: 0, J: 1, W: -0.5}}}
	if !in.IntegerCoeffs() {
		t.Fatal("half-integer couplings must qualify for the exact path")
	}
	in.Quad[0].W = 0.3
	if in.IntegerCoeffs() {
		t.Fatal("0.3 coupling wrongly qualified")
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]*Instance{
		"empty":     {Family: FamilyQUBO, Sense: Minimize, N: 2, Vars: 2},
		"badterm":   {Family: FamilyQUBO, Sense: Minimize, N: 2, Vars: 2, Quad: []Term{{I: 1, J: 1, W: 1}}},
		"outof":     {Family: FamilyQUBO, Sense: Minimize, N: 2, Vars: 2, Quad: []Term{{I: 0, J: 2, W: 1}}},
		"badlinear": {Family: FamilyQUBO, Sense: Minimize, N: 2, Vars: 2, Linear: []float64{1}},
		"nan":       {Family: FamilyQUBO, Sense: Minimize, N: 2, Vars: 2, Quad: []Term{{I: 0, J: 1, W: math.NaN()}}},
		"badsense":  {Family: FamilyQUBO, Sense: 0, N: 2, Vars: 2, Quad: []Term{{I: 0, J: 1, W: 1}}},
		"badvars":   {Family: FamilyQUBO, Sense: Minimize, N: 2, Vars: 3, Quad: []Term{{I: 0, J: 1, W: 1}}},
	}
	for name, in := range cases {
		if err := in.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
}
