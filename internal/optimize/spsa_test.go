package optimize

import (
	"math"
	"math/rand"
	"testing"
)

func TestSPSAOnSphere(t *testing.T) {
	center := []float64{0.5, -0.2, 0.8}
	b := UniformBounds(3, -2, 2)
	r := (&SPSA{Seed: 3}).Minimize(sphere(center), []float64{-1, 1, 0}, b)
	if r.F > 1e-2 {
		t.Errorf("SPSA sphere F = %v at %v (%s)", r.F, r.X, r.Message)
	}
	if !b.Contains(r.X) {
		t.Errorf("solution %v out of bounds", r.X)
	}
}

func TestSPSAOnQAOALandscape(t *testing.T) {
	b := NewBounds([]float64{0, 0}, []float64{2 * math.Pi, math.Pi})
	r := (&SPSA{Seed: 4}).Minimize(qaoaLike, []float64{1.2, 0.5}, b)
	if r.F > -0.95 {
		t.Errorf("SPSA qaoa F = %v at %v (%s)", r.F, r.X, r.Message)
	}
}

func TestSPSAConstantGradientCost(t *testing.T) {
	// SPSA's defining property: per-iteration cost is 2 evaluations
	// regardless of dimension.
	for _, n := range []int{2, 8} {
		b := UniformBounds(n, -1, 1)
		o := &SPSA{MaxIter: 25, Seed: 5, Tol: 1e-15} // tolerance off: fixed 25 iters
		r := o.Minimize(sphere(make([]float64, n)), b.Random(newRng(6)), b)
		// 1 initial + 2 per iteration + 1 final.
		want := 1 + 2*25 + 1
		if r.NFev != want {
			t.Errorf("n=%d: NFev = %d, want %d", n, r.NFev, want)
		}
	}
}

func TestSPSADeterministicWithSeed(t *testing.T) {
	b := UniformBounds(2, -2, 2)
	f := sphere([]float64{1, 1})
	r1 := (&SPSA{Seed: 7}).Minimize(f, []float64{0, 0}, b)
	r2 := (&SPSA{Seed: 7}).Minimize(f, []float64{0, 0}, b)
	if r1.F != r2.F || r1.NFev != r2.NFev {
		t.Error("same seed produced different runs")
	}
	r3 := (&SPSA{Seed: 8}).Minimize(f, []float64{0, 0}, b)
	if r1.NFev == r3.NFev && r1.F == r3.F {
		t.Log("different seeds coincidentally identical (not an error, just unlikely)")
	}
}

func TestSPSARespectsBudget(t *testing.T) {
	b := UniformBounds(4, -2, 2)
	r := (&SPSA{MaxFev: 20, Seed: 9}).Minimize(rosenbrockND, b.Random(newRng(10)), b)
	if r.NFev > 20 {
		t.Errorf("NFev = %d exceeds budget 20", r.NFev)
	}
}

func TestSPSAWarmStartImprovesResult(t *testing.T) {
	// SPSA is stochastic, so compare quality rather than evaluations:
	// with a tight budget, starting near the optimum must end closer to
	// it than starting far away.
	b := NewBounds([]float64{0, 0}, []float64{2 * math.Pi, math.Pi})
	near := []float64{math.Pi/2 + 0.05, math.Pi/8 + 0.02}
	far := []float64{5.9, 2.9}
	budget := &SPSA{MaxFev: 60, Seed: 11}
	rNear := budget.Minimize(qaoaLike, near, b)
	rFar := budget.Minimize(qaoaLike, far, b)
	if rNear.F >= rFar.F {
		t.Errorf("near start F=%v not better than far start F=%v under budget", rNear.F, rFar.F)
	}
}

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// solveBoxQP must satisfy the KKT conditions of the box-constrained QP:
// at the solution, the gradient component is zero for interior
// coordinates, nonnegative at the lower face, nonpositive at the upper
// face.
func TestSolveBoxQPKKT(t *testing.T) {
	rng := newRng(40)
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(5)
		// Random SPD B = AᵀA + I.
		bm := make([][]float64, n)
		a := make([][]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = rng.NormFloat64()
			}
		}
		for i := range bm {
			bm[i] = make([]float64, n)
			for j := range bm[i] {
				s := 0.0
				for k := 0; k < n; k++ {
					s += a[k][i] * a[k][j]
				}
				bm[i][j] = s
			}
			bm[i][i] += 1
		}
		bmat := matFromRows(bm)
		g := make([]float64, n)
		x := make([]float64, n)
		for i := range g {
			g[i] = rng.NormFloat64() * 3
			x[i] = rng.Float64()
		}
		bounds := UniformBounds(n, 0, 1)
		d := solveBoxQP(bmat, g, x, bounds, 200)
		// KKT check on ∇q(d) = g + B·d.
		for i := 0; i < n; i++ {
			grad := g[i]
			for j := 0; j < n; j++ {
				grad += bmat.At(i, j) * d[j]
			}
			lo, hi := bounds.Lo[i]-x[i], bounds.Hi[i]-x[i]
			switch {
			case d[i] <= lo+1e-9: // at lower face: gradient must push down
				if grad < -1e-6 {
					t.Fatalf("trial %d: KKT violated at lower face: grad=%v", trial, grad)
				}
			case d[i] >= hi-1e-9: // at upper face: gradient must push up
				if grad > 1e-6 {
					t.Fatalf("trial %d: KKT violated at upper face: grad=%v", trial, grad)
				}
			default: // interior: gradient must vanish
				if grad > 1e-6 || grad < -1e-6 {
					t.Fatalf("trial %d: KKT violated interior: grad=%v", trial, grad)
				}
			}
		}
	}
}
