// Package optimize implements the classical local optimizers the paper
// drives its QAOA loop with: two gradient-based methods (L-BFGS-B and
// SLSQP, both using finite-difference gradients so every gradient costs
// function calls, as on a real quantum computer), two derivative-free
// methods (Nelder-Mead and COBYLA), and SPSA as a hardware-practical
// extension. All support box bounds, the only constraint kind the QAOA
// parameter domain needs.
//
// Run(ctx, Problem, Options) is the context-first entry point: it
// honors cancellation and deadlines (checked once per outer iteration),
// emits per-iteration traces and per-run FC/latency observations
// through a telemetry.Recorder, and reports the termination cause in
// Result.Status. Minimize, MinimizeBatch and MinimizeWith are thin
// wrappers around it.
//
// The implementations follow the same algorithm families as the SciPy
// routines the paper uses; see DESIGN.md for the substitution notes.
package optimize

import (
	"fmt"
	"math"
	"math/rand"
)

// Func is an objective to minimize.
type Func func(x []float64) float64

// Bounds are box constraints lo[i] ≤ x[i] ≤ hi[i].
type Bounds struct {
	Lo, Hi []float64
}

// NewBounds builds box bounds and validates them.
func NewBounds(lo, hi []float64) *Bounds {
	if len(lo) != len(hi) {
		panic(fmt.Sprintf("optimize: bounds length mismatch %d != %d", len(lo), len(hi)))
	}
	for i := range lo {
		if lo[i] > hi[i] {
			panic(fmt.Sprintf("optimize: bounds[%d] inverted: [%v, %v]", i, lo[i], hi[i]))
		}
	}
	return &Bounds{Lo: lo, Hi: hi}
}

// UniformBounds returns n-dimensional bounds [lo, hi]^n.
func UniformBounds(n int, lo, hi float64) *Bounds {
	l := make([]float64, n)
	h := make([]float64, n)
	for i := range l {
		l[i], h[i] = lo, hi
	}
	return NewBounds(l, h)
}

// Dim returns the dimensionality.
func (b *Bounds) Dim() int { return len(b.Lo) }

// Clip projects x onto the box in place and returns x.
func (b *Bounds) Clip(x []float64) []float64 {
	for i := range x {
		if x[i] < b.Lo[i] {
			x[i] = b.Lo[i]
		} else if x[i] > b.Hi[i] {
			x[i] = b.Hi[i]
		}
	}
	return x
}

// Contains reports whether x lies inside the box (inclusive).
func (b *Bounds) Contains(x []float64) bool {
	for i := range x {
		if x[i] < b.Lo[i] || x[i] > b.Hi[i] {
			return false
		}
	}
	return true
}

// Random samples a uniform point in the box.
func (b *Bounds) Random(rng *rand.Rand) []float64 {
	x := make([]float64, b.Dim())
	for i := range x {
		x[i] = b.Lo[i] + rng.Float64()*(b.Hi[i]-b.Lo[i])
	}
	return x
}

// Width returns hi[i]−lo[i] for each coordinate.
func (b *Bounds) Width() []float64 {
	w := make([]float64, b.Dim())
	for i := range w {
		w[i] = b.Hi[i] - b.Lo[i]
	}
	return w
}

// Status is the termination cause of a run, so callers no longer infer
// it from NIter/NFev heuristics.
type Status uint8

const (
	// MaxIter is the zero value: the iteration or evaluation budget ran
	// out (or the algorithm stalled) before the tolerance was met.
	MaxIter Status = iota
	// Converged means the configured tolerance was met.
	Converged
	// Cancelled means the run was stopped externally — context
	// cancellation, a deadline, or a callback requesting stop.
	Cancelled
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Converged:
		return "converged"
	case Cancelled:
		return "cancelled"
	default:
		return "maxiter"
	}
}

// Result reports the outcome of a minimization.
type Result struct {
	X         []float64 // best point found
	F         float64   // objective at X
	NFev      int       // function evaluations consumed
	NGev      int       // analytic gradient evaluations (0 on the FD path)
	Iters     int       // outer iterations
	Converged bool      // tolerance met (vs. budget exhausted)
	Status    Status    // termination cause (Converged/MaxIter/Cancelled)
	Message   string    // human-readable termination reason
}

// Optimizer is a bounded local minimizer.
type Optimizer interface {
	// Minimize runs from x0 (clipped into bounds if necessary).
	Minimize(f Func, x0 []float64, bounds *Bounds) Result
	// Name identifies the algorithm, e.g. "L-BFGS-B".
	Name() string
}

// counter wraps f and counts evaluations.
type counter struct {
	f Func
	n int
}

func (c *counter) call(x []float64) float64 {
	c.n++
	return c.f(x)
}

// prepareStart validates inputs shared by all optimizers and returns a
// clipped copy of x0.
func prepareStart(x0 []float64, bounds *Bounds) []float64 {
	if bounds == nil {
		panic("optimize: nil bounds (use UniformBounds with wide limits for unconstrained problems)")
	}
	if len(x0) != bounds.Dim() {
		panic(fmt.Sprintf("optimize: x0 dim %d != bounds dim %d", len(x0), bounds.Dim()))
	}
	x := append([]float64(nil), x0...)
	return bounds.Clip(x)
}

// defaultTol is the paper's functional tolerance (Sec. II-B, III-A).
const defaultTol = 1e-6

// tolOrDefault returns t if positive, else the paper's 1e-6.
func tolOrDefault(t float64) float64 {
	if t > 0 {
		return t
	}
	return defaultTol
}

// maxIterOrDefault returns m if positive, else d.
func maxIterOrDefault(m, d int) int {
	if m > 0 {
		return m
	}
	return d
}

// relChange returns |a−b| / max(1, |a|, |b|).
func relChange(a, b float64) float64 {
	den := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) / den
}
