package optimize

import "math"

// FDScheme selects a finite-difference formula for gradients.
type FDScheme int

// Supported schemes. Central differencing costs 2n evaluations per
// gradient but is second-order accurate; forward differencing costs n
// (reusing the already-known f(x)) but is first-order.
const (
	CentralDiff FDScheme = iota
	ForwardDiff
)

// String names the scheme.
func (s FDScheme) String() string {
	if s == ForwardDiff {
		return "forward"
	}
	return "central"
}

// defaultFDStep is a good compromise step for central differences on
// smooth trig objectives like the QAOA landscape.
const defaultFDStep = 1e-6

// Gradient estimates ∇f(x) with the given scheme and step, keeping
// sample points inside bounds by flipping the probe direction at the
// box faces. fx is f(x), used by the forward scheme; pass math.NaN()
// to force its (re)evaluation.
func Gradient(f Func, x []float64, fx float64, bounds *Bounds, scheme FDScheme, step float64) []float64 {
	if step <= 0 {
		step = defaultFDStep
	}
	n := len(x)
	g := make([]float64, n)
	xp := append([]float64(nil), x...)
	switch scheme {
	case ForwardDiff:
		if math.IsNaN(fx) {
			fx = f(x)
		}
		for i := 0; i < n; i++ {
			h := step
			if bounds != nil && x[i]+h > bounds.Hi[i] {
				h = -step // probe backwards at the upper face
			}
			xp[i] = x[i] + h
			g[i] = (f(xp) - fx) / h
			xp[i] = x[i]
		}
	default: // CentralDiff
		for i := 0; i < n; i++ {
			hp, hm := step, step
			if bounds != nil {
				if x[i]+hp > bounds.Hi[i] {
					hp = bounds.Hi[i] - x[i]
				}
				if x[i]-hm < bounds.Lo[i] {
					hm = x[i] - bounds.Lo[i]
				}
			}
			if hp+hm == 0 {
				// Degenerate box face (lo == hi): derivative is irrelevant.
				g[i] = 0
				continue
			}
			xp[i] = x[i] + hp
			fp := f(xp)
			xp[i] = x[i] - hm
			fm := f(xp)
			xp[i] = x[i]
			g[i] = (fp - fm) / (hp + hm)
		}
	}
	return g
}

// projectedGradientNorm returns the infinity norm of the projected
// gradient: at an active lower bound only ascent directions count, and
// vice versa. Zero means first-order optimal for the box problem.
func projectedGradientNorm(x, g []float64, bounds *Bounds) float64 {
	norm := 0.0
	for i := range x {
		gi := g[i]
		if bounds != nil {
			atLo := x[i] <= bounds.Lo[i]
			atHi := x[i] >= bounds.Hi[i]
			if atLo && gi > 0 {
				gi = 0
			}
			if atHi && gi < 0 {
				gi = 0
			}
		}
		if a := math.Abs(gi); a > norm {
			norm = a
		}
	}
	return norm
}
