package optimize

import "math"

// FDScheme selects a finite-difference formula for gradients.
type FDScheme int

// Supported schemes. Central differencing costs 2n evaluations per
// gradient but is second-order accurate; forward differencing costs n
// (reusing the already-known f(x)) but is first-order.
const (
	CentralDiff FDScheme = iota
	ForwardDiff
)

// String names the scheme.
func (s FDScheme) String() string {
	if s == ForwardDiff {
		return "forward"
	}
	return "central"
}

// defaultFDStep is a good compromise step for central differences on
// smooth trig objectives like the QAOA landscape.
const defaultFDStep = 1e-6

// Gradient estimates ∇f(x) with the given scheme and step, keeping
// sample points inside bounds by flipping the probe direction at the
// box faces. fx is f(x), used by the forward scheme; pass math.NaN()
// to force its (re)evaluation.
//
// Each call allocates the result and a probe buffer; optimizer inner
// loops should hold a GradientWorkspace instead.
func Gradient(f Func, x []float64, fx float64, bounds *Bounds, scheme FDScheme, step float64) []float64 {
	ws := NewGradientWorkspace(len(x))
	return ws.Gradient(make([]float64, len(x)), f, x, fx, bounds, scheme, step)
}

// GradientWorkspace holds the probe-point buffers finite-difference
// gradients need, so optimizer inner loops (which compute a gradient
// every iteration) reuse one set of slices instead of reallocating.
// Not safe for concurrent use.
type GradientWorkspace struct {
	xp []float64 // serial probe point

	// Batch-path buffers: probe points (backed by buf), and the
	// coordinate/denominator bookkeeping to assemble the gradient.
	probes [][]float64
	buf    []float64
	coords []int
	denoms []float64
}

// NewGradientWorkspace returns a workspace for n-dimensional gradients.
func NewGradientWorkspace(n int) *GradientWorkspace {
	return &GradientWorkspace{xp: make([]float64, n)}
}

// Gradient fills dst with the finite-difference estimate of ∇f(x) and
// returns it, evaluating probes serially through f. Semantics are
// identical to the package-level Gradient.
func (ws *GradientWorkspace) Gradient(dst []float64, f Func, x []float64, fx float64, bounds *Bounds, scheme FDScheme, step float64) []float64 {
	if step <= 0 {
		step = defaultFDStep
	}
	n := len(x)
	xp := ws.xp[:n]
	copy(xp, x)
	switch scheme {
	case ForwardDiff:
		if math.IsNaN(fx) {
			fx = f(x)
		}
		for i := 0; i < n; i++ {
			h := step
			if bounds != nil && x[i]+h > bounds.Hi[i] {
				h = -step // probe backwards at the upper face
			}
			xp[i] = x[i] + h
			dst[i] = (f(xp) - fx) / h
			xp[i] = x[i]
		}
	default: // CentralDiff
		for i := 0; i < n; i++ {
			hp, hm := centralSteps(x, i, bounds, step)
			if hp+hm == 0 {
				// Degenerate box face (lo == hi): derivative is irrelevant.
				dst[i] = 0
				continue
			}
			xp[i] = x[i] + hp
			fp := f(xp)
			xp[i] = x[i] - hm
			fm := f(xp)
			xp[i] = x[i]
			dst[i] = (fp - fm) / (hp + hm)
		}
	}
	return dst
}

// GradientBatch fills dst like Gradient but evaluates every probe point
// through bf in a single batch, so independent probes can run
// concurrently. It returns dst and the number of objective evaluations
// consumed — exactly the count the serial path would spend, keeping
// NFev accounting identical. The assembled gradient is bit-identical to
// the serial path because the probe points, and therefore the objective
// values, are the same.
//
// The forward scheme needs fx; when fx is NaN the point x itself is
// prepended to the batch (one extra evaluation, as in the serial path).
func (ws *GradientWorkspace) GradientBatch(dst []float64, bf BatchFunc, x []float64, fx float64, bounds *Bounds, scheme FDScheme, step float64) ([]float64, int) {
	if step <= 0 {
		step = defaultFDStep
	}
	n := len(x)
	ws.reset(n)
	switch scheme {
	case ForwardDiff:
		needFx := math.IsNaN(fx)
		if needFx {
			copy(ws.addProbe(x), x)
		}
		for i := 0; i < n; i++ {
			h := step
			if bounds != nil && x[i]+h > bounds.Hi[i] {
				h = -step
			}
			p := ws.addProbe(x)
			p[i] = x[i] + h
			ws.coords = append(ws.coords, i)
			ws.denoms = append(ws.denoms, h)
		}
		vals := bf(ws.probes)
		k := 0
		if needFx {
			fx = vals[0]
			k = 1
		}
		for j, i := range ws.coords {
			dst[i] = (vals[k+j] - fx) / ws.denoms[j]
		}
		return dst, len(ws.probes)
	default: // CentralDiff
		for i := 0; i < n; i++ {
			hp, hm := centralSteps(x, i, bounds, step)
			if hp+hm == 0 {
				dst[i] = 0
				continue
			}
			p := ws.addProbe(x)
			p[i] = x[i] + hp
			m := ws.addProbe(x)
			m[i] = x[i] - hm
			ws.coords = append(ws.coords, i)
			ws.denoms = append(ws.denoms, hp+hm)
		}
		vals := bf(ws.probes)
		for j, i := range ws.coords {
			dst[i] = (vals[2*j] - vals[2*j+1]) / ws.denoms[j]
		}
		return dst, len(ws.probes)
	}
}

// centralSteps returns the (forward, backward) central-difference steps
// for coordinate i, shrunk at the box faces.
func centralSteps(x []float64, i int, bounds *Bounds, step float64) (hp, hm float64) {
	hp, hm = step, step
	if bounds != nil {
		if x[i]+hp > bounds.Hi[i] {
			hp = bounds.Hi[i] - x[i]
		}
		if x[i]-hm < bounds.Lo[i] {
			hm = x[i] - bounds.Lo[i]
		}
	}
	return hp, hm
}

// reset clears the batch bookkeeping, keeping capacity.
func (ws *GradientWorkspace) reset(n int) {
	ws.probes = ws.probes[:0]
	ws.buf = ws.buf[:0]
	ws.coords = ws.coords[:0]
	ws.denoms = ws.denoms[:0]
	if cap(ws.buf) < 2*n*n+n {
		ws.buf = make([]float64, 0, 2*n*n+n)
	}
}

// addProbe appends a copy of x to the probe list (backed by ws.buf)
// and returns it for in-place modification.
func (ws *GradientWorkspace) addProbe(x []float64) []float64 {
	lo := len(ws.buf)
	ws.buf = append(ws.buf, x...)
	p := ws.buf[lo:len(ws.buf):len(ws.buf)]
	ws.probes = append(ws.probes, p)
	return p
}

// projectedGradientNorm returns the infinity norm of the projected
// gradient: at an active lower bound only ascent directions count, and
// vice versa. Zero means first-order optimal for the box problem.
func projectedGradientNorm(x, g []float64, bounds *Bounds) float64 {
	norm := 0.0
	for i := range x {
		gi := g[i]
		if bounds != nil {
			atLo := x[i] <= bounds.Lo[i]
			atHi := x[i] >= bounds.Hi[i]
			if atLo && gi > 0 {
				gi = 0
			}
			if atHi && gi < 0 {
				gi = 0
			}
		}
		if a := math.Abs(gi); a > norm {
			norm = a
		}
	}
	return norm
}
