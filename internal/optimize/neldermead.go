package optimize

import (
	"context"
	"math"
	"sort"
)

// NelderMead is the derivative-free simplex method with the adaptive
// coefficients of Gao & Han (as used by SciPy's `adaptive=True`
// behaviour for larger dimensions). Box bounds are enforced by clipping
// every trial vertex, matching how bounded Nelder-Mead is typically
// driven for QAOA parameters.
type NelderMead struct {
	Tol      float64 // simplex function-value spread tolerance (default 1e-6)
	XTol     float64 // simplex diameter tolerance (default 1e-6)
	MaxIter  int     // outer iteration cap (default 200·dim)
	MaxFev   int     // function evaluation cap (default 400·dim)
	Adaptive bool    // use dimension-dependent coefficients
}

// Name implements Optimizer.
func (nm *NelderMead) Name() string { return "Nelder-Mead" }

type vertex struct {
	x []float64
	f float64
}

// Minimize implements Optimizer.
func (nm *NelderMead) Minimize(f Func, x0 []float64, bounds *Bounds) Result {
	return Run(context.Background(), Problem{F: f, X0: x0, Bounds: bounds}, Options{Optimizer: nm})
}

// run implements the runner hook behind Run. Per-iteration events
// report the simplex function-value spread (GNorm) and diameter (Step).
func (nm *NelderMead) run(env *runEnv) Result {
	f, bounds := env.f, env.bounds
	x := prepareStart(env.x0, bounds)
	n := len(x)
	tol := tolOrDefault(nm.Tol)
	xtol := nm.XTol
	if xtol <= 0 {
		xtol = 1e-6
	}
	maxIter := maxIterOrDefault(nm.MaxIter, 200*n)
	maxFev := env.capFev(maxIterOrDefault(nm.MaxFev, 400*n))
	cnt := &counter{f: f}

	// Reflection, expansion, contraction, shrink coefficients.
	alpha, gamma, rho, sigma := 1.0, 2.0, 0.5, 0.5
	if nm.Adaptive && n > 2 {
		fn := float64(n)
		gamma = 1 + 2/fn
		rho = 0.75 - 1/(2*fn)
		sigma = 1 - 1/fn
	}

	// Initial simplex: x plus a scaled step along each axis (SciPy-style
	// 5% nonzero perturbation), clipped into the box and nudged off the
	// start if clipping collapsed the step.
	simplex := make([]vertex, n+1)
	simplex[0] = vertex{x: append([]float64(nil), x...), f: cnt.call(x)}
	for i := 0; i < n; i++ {
		xi := append([]float64(nil), x...)
		step := 0.05 * (1 + math.Abs(x[i]))
		w := bounds.Hi[i] - bounds.Lo[i]
		if w > 0 && step > 0.25*w {
			step = 0.25 * w
		}
		xi[i] += step
		if xi[i] > bounds.Hi[i] {
			xi[i] = x[i] - step
			if xi[i] < bounds.Lo[i] {
				xi[i] = bounds.Lo[i] + 0.5*w
			}
		}
		simplex[i+1] = vertex{x: xi, f: cnt.call(xi)}
	}

	sortSimplex(simplex)
	iters := 0
	converged := false
	cancelled := false
	msg := "max iterations reached"
	for ; iters < maxIter && cnt.n < maxFev; iters++ {
		if env.stop(&msg) {
			cancelled = true
			break
		}
		sp, dia := spread(simplex), diameter(simplex)
		if env.emit(iters, simplex[0].f, sp, dia, cnt.n) {
			cancelled = true
			msg = callbackStopMsg
			break
		}
		if sp <= tol && dia <= xtol {
			converged = true
			msg = "simplex spread below tolerance"
			break
		}
		// Centroid of all but the worst vertex.
		cen := make([]float64, n)
		for _, v := range simplex[:n] {
			for j := range cen {
				cen[j] += v.x[j] / float64(n)
			}
		}
		worst := simplex[n]
		refl := affine(cen, worst.x, -alpha, bounds)
		fr := cnt.call(refl)
		switch {
		case fr < simplex[0].f:
			// Try expansion.
			exp := affine(cen, worst.x, -alpha*gamma, bounds)
			fe := cnt.call(exp)
			if fe < fr {
				simplex[n] = vertex{x: exp, f: fe}
			} else {
				simplex[n] = vertex{x: refl, f: fr}
			}
		case fr < simplex[n-1].f:
			simplex[n] = vertex{x: refl, f: fr}
		default:
			// Contraction (outside if reflection helped vs worst, else inside).
			var con []float64
			if fr < worst.f {
				con = affine(cen, worst.x, -alpha*rho, bounds)
			} else {
				con = affine(cen, worst.x, rho, bounds)
			}
			fc := cnt.call(con)
			if fc < math.Min(fr, worst.f) {
				simplex[n] = vertex{x: con, f: fc}
			} else {
				// Shrink toward the best vertex.
				for i := 1; i <= n; i++ {
					for j := range simplex[i].x {
						simplex[i].x[j] = simplex[0].x[j] + sigma*(simplex[i].x[j]-simplex[0].x[j])
					}
					bounds.Clip(simplex[i].x)
					simplex[i].f = cnt.call(simplex[i].x)
					if cnt.n >= maxFev {
						break
					}
				}
			}
		}
		sortSimplex(simplex)
	}
	if !converged && !cancelled && cnt.n >= maxFev {
		msg = "function evaluation budget exhausted"
	}
	return Result{
		X: simplex[0].x, F: simplex[0].f,
		NFev: cnt.n, Iters: iters, Converged: converged,
		Status: statusOf(converged, cancelled), Message: msg,
	}
}

// affine returns clip(cen + t·(xw − cen)).
func affine(cen, xw []float64, t float64, bounds *Bounds) []float64 {
	out := make([]float64, len(cen))
	for i := range out {
		out[i] = cen[i] + t*(xw[i]-cen[i])
	}
	return bounds.Clip(out)
}

func sortSimplex(s []vertex) {
	sort.SliceStable(s, func(i, j int) bool { return s[i].f < s[j].f })
}

// spread is the best-to-worst function-value gap of the simplex.
func spread(s []vertex) float64 { return math.Abs(s[len(s)-1].f - s[0].f) }

// diameter is the max coordinate distance of any vertex from the best.
func diameter(s []vertex) float64 {
	d := 0.0
	for _, v := range s[1:] {
		for j := range v.x {
			if a := math.Abs(v.x[j] - s[0].x[j]); a > d {
				d = a
			}
		}
	}
	return d
}
