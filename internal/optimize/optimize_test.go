package optimize

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"qaoaml/internal/linalg"
)

// sphere has its minimum 0 at the given center.
func sphere(center []float64) Func {
	return func(x []float64) float64 {
		s := 0.0
		for i := range x {
			d := x[i] - center[i]
			s += d * d
		}
		return s
	}
}

// rosenbrock is the classic banana function, minimum 0 at (1, 1).
func rosenbrock(x []float64) float64 {
	return 100*math.Pow(x[1]-x[0]*x[0], 2) + math.Pow(1-x[0], 2)
}

// qaoaLike mirrors the single-edge QAOA landscape: minimize the
// negative expectation −(1 + sin(x0)·sin(4·x1))/2 over the paper's
// domain; the optimum is −1 at (π/2, π/8) (among others).
func qaoaLike(x []float64) float64 {
	return -0.5 * (1 + math.Sin(x[0])*math.Sin(4*x[1]))
}

func allOptimizers() []Optimizer {
	return []Optimizer{
		&LBFGSB{},
		&NelderMead{},
		&SLSQP{},
		&COBYLA{},
	}
}

func TestOptimizersOnSphere(t *testing.T) {
	center := []float64{0.7, -0.3, 1.2}
	b := UniformBounds(3, -2, 2)
	for _, opt := range allOptimizers() {
		r := opt.Minimize(sphere(center), []float64{-1, 1, 0}, b)
		if r.F > 1e-5 {
			t.Errorf("%s: F = %v at %v (msg: %s)", opt.Name(), r.F, r.X, r.Message)
		}
		for i := range center {
			if math.Abs(r.X[i]-center[i]) > 1e-2 {
				t.Errorf("%s: x[%d] = %v, want %v", opt.Name(), i, r.X[i], center[i])
			}
		}
		if r.NFev <= 0 {
			t.Errorf("%s: NFev = %d", opt.Name(), r.NFev)
		}
	}
}

func TestOptimizersRespectBounds(t *testing.T) {
	// Minimum of the sphere is outside the box: optimizers must stop at
	// the face x = 1 and stay feasible throughout the reported solution.
	center := []float64{3, 3}
	b := UniformBounds(2, -1, 1)
	for _, opt := range allOptimizers() {
		r := opt.Minimize(sphere(center), []float64{0, 0}, b)
		if !b.Contains(r.X) {
			t.Errorf("%s: solution %v violates bounds", opt.Name(), r.X)
		}
		for i := range r.X {
			if math.Abs(r.X[i]-1) > 2e-2 {
				t.Errorf("%s: x[%d] = %v, want 1 (active bound)", opt.Name(), i, r.X[i])
			}
		}
	}
}

func TestGradientOptimizersOnRosenbrock(t *testing.T) {
	b := UniformBounds(2, -2, 2)
	for _, opt := range []Optimizer{&LBFGSB{MaxIter: 2000}, &SLSQP{MaxIter: 2000}} {
		r := opt.Minimize(rosenbrock, []float64{-1.2, 1}, b)
		if r.F > 1e-4 {
			t.Errorf("%s: rosenbrock F = %v at %v (msg: %s)", opt.Name(), r.F, r.X, r.Message)
		}
	}
}

func TestOptimizersOnQAOALandscape(t *testing.T) {
	b := NewBounds([]float64{0, 0}, []float64{2 * math.Pi, math.Pi})
	for _, opt := range allOptimizers() {
		// Start near (not at) the optimum so every method converges to
		// the global basin.
		r := opt.Minimize(qaoaLike, []float64{1.2, 0.5}, b)
		if r.F > -0.99 {
			t.Errorf("%s: qaoa landscape F = %v at %v (msg: %s)", opt.Name(), r.F, r.X, r.Message)
		}
	}
}

func TestWarmStartCutsFunctionCalls(t *testing.T) {
	// The paper's core effect: starting near the optimum must cost fewer
	// function calls than starting far away, for every optimizer.
	b := NewBounds([]float64{0, 0}, []float64{2 * math.Pi, math.Pi})
	near := []float64{math.Pi/2 + 0.05, math.Pi/8 + 0.02}
	far := []float64{5.9, 2.9}
	for _, opt := range allOptimizers() {
		rNear := opt.Minimize(qaoaLike, near, b)
		rFar := opt.Minimize(qaoaLike, far, b)
		if rNear.F > -0.99 {
			t.Errorf("%s: near start failed to converge (F=%v)", opt.Name(), rNear.F)
			continue
		}
		if rFar.F <= -0.99 && rNear.NFev >= rFar.NFev {
			t.Errorf("%s: near start cost %d >= far start %d", opt.Name(), rNear.NFev, rFar.NFev)
		}
	}
}

func TestResultConvergedFlag(t *testing.T) {
	b := UniformBounds(2, -2, 2)
	for _, opt := range allOptimizers() {
		r := opt.Minimize(sphere([]float64{0, 0}), []float64{1, 1}, b)
		if !r.Converged {
			t.Errorf("%s: easy problem did not converge: %s", opt.Name(), r.Message)
		}
		if r.Message == "" {
			t.Errorf("%s: empty message", opt.Name())
		}
	}
}

func TestMaxFevBudget(t *testing.T) {
	budgets := []Optimizer{
		&LBFGSB{MaxFev: 10},
		&NelderMead{MaxFev: 10},
		&SLSQP{MaxFev: 10},
		&COBYLA{MaxFev: 10},
	}
	b := UniformBounds(4, -2, 2)
	for _, opt := range budgets {
		r := opt.Minimize(rosenbrockND, b.Random(rand.New(rand.NewSource(1))), b)
		// Gradient methods may slightly overshoot inside one gradient batch;
		// allow the batch slack (2n+1 evals).
		if r.NFev > 10+2*4+1 {
			t.Errorf("%s: NFev = %d exceeds budget", opt.Name(), r.NFev)
		}
	}
}

func rosenbrockND(x []float64) float64 {
	s := 0.0
	for i := 0; i+1 < len(x); i++ {
		s += 100*math.Pow(x[i+1]-x[i]*x[i], 2) + math.Pow(1-x[i], 2)
	}
	return s
}

func TestStartOutsideBoundsIsClipped(t *testing.T) {
	b := UniformBounds(2, 0, 1)
	for _, opt := range allOptimizers() {
		r := opt.Minimize(sphere([]float64{0.5, 0.5}), []float64{7, -7}, b)
		if !b.Contains(r.X) {
			t.Errorf("%s: solution %v out of bounds", opt.Name(), r.X)
		}
		if r.F > 1e-4 {
			t.Errorf("%s: F = %v", opt.Name(), r.F)
		}
	}
}

func TestBoundsHelpers(t *testing.T) {
	b := NewBounds([]float64{0, -1}, []float64{1, 1})
	if b.Dim() != 2 {
		t.Fatalf("Dim = %d", b.Dim())
	}
	x := []float64{2, -3}
	b.Clip(x)
	if x[0] != 1 || x[1] != -1 {
		t.Errorf("Clip = %v", x)
	}
	if !b.Contains(x) || b.Contains([]float64{0.5, 2}) {
		t.Error("Contains wrong")
	}
	w := b.Width()
	if w[0] != 1 || w[1] != 2 {
		t.Errorf("Width = %v", w)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		if !b.Contains(b.Random(rng)) {
			t.Fatal("Random sample out of bounds")
		}
	}
}

func TestBoundsValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewBounds([]float64{0}, []float64{1, 2}) },
		func() { NewBounds([]float64{2}, []float64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestGradientCentralAndForward(t *testing.T) {
	f := func(x []float64) float64 { return x[0]*x[0] + 3*x[1] }
	x := []float64{1.5, -2}
	b := UniformBounds(2, -10, 10)
	for _, scheme := range []FDScheme{CentralDiff, ForwardDiff} {
		g := Gradient(f, x, f(x), b, scheme, 1e-6)
		if math.Abs(g[0]-3) > 1e-4 || math.Abs(g[1]-3) > 1e-4 {
			t.Errorf("%v gradient = %v, want [3 3]", scheme, g)
		}
	}
}

func TestGradientAtBoundary(t *testing.T) {
	// x at the upper face: probes must stay inside the box.
	b := UniformBounds(1, 0, 1)
	calls := 0
	f := func(x []float64) float64 {
		calls++
		if !b.Contains(x) {
			t.Fatalf("gradient probed out-of-bounds point %v", x)
		}
		return 2 * x[0]
	}
	g := Gradient(f, []float64{1}, math.NaN(), b, CentralDiff, 1e-6)
	if math.Abs(g[0]-2) > 1e-4 {
		t.Errorf("boundary central gradient = %v", g)
	}
	g = Gradient(f, []float64{1}, math.NaN(), b, ForwardDiff, 1e-6)
	if math.Abs(g[0]-2) > 1e-4 {
		t.Errorf("boundary forward gradient = %v", g)
	}
	if calls == 0 {
		t.Fatal("gradient made no calls")
	}
}

func TestProjectedGradientNorm(t *testing.T) {
	b := UniformBounds(2, 0, 1)
	// At the lower face with outward gradient: projected component is 0.
	if got := projectedGradientNorm([]float64{0, 0.5}, []float64{5, 0}, b); got != 0 {
		t.Errorf("norm = %v, want 0", got)
	}
	// Inward gradient at the face still counts.
	if got := projectedGradientNorm([]float64{0, 0.5}, []float64{-5, 0}, b); got != 5 {
		t.Errorf("norm = %v, want 5", got)
	}
	if got := projectedGradientNorm([]float64{1, 0.5}, []float64{0, -2}, b); got != 2 {
		t.Errorf("interior norm = %v, want 2", got)
	}
}

func TestFDSchemeString(t *testing.T) {
	if CentralDiff.String() != "central" || ForwardDiff.String() != "forward" {
		t.Error("FDScheme names wrong")
	}
}

func TestMultiStart(t *testing.T) {
	b := UniformBounds(2, -2, 2)
	rng := rand.New(rand.NewSource(4))
	ms := MultiStart(&NelderMead{}, sphere([]float64{1, 1}), b, 5, rng)
	if len(ms.Runs) != 5 {
		t.Fatalf("runs = %d", len(ms.Runs))
	}
	sum := 0
	for _, r := range ms.Runs {
		sum += r.NFev
	}
	if sum != ms.TotalNFev {
		t.Errorf("TotalNFev = %d, want %d", ms.TotalNFev, sum)
	}
	if ms.Best.F > 1e-5 {
		t.Errorf("Best.F = %v", ms.Best.F)
	}
	for _, r := range ms.Runs {
		if ms.Best.F > r.F {
			t.Error("Best is not the minimum over runs")
		}
	}
}

func TestMultiStartFrom(t *testing.T) {
	b := UniformBounds(1, -5, 5)
	f := func(x []float64) float64 { return math.Cos(x[0]) } // minima at ±π
	ms := MultiStartFrom(&LBFGSB{}, f, b, [][]float64{{3}, {-3}, {0.5}})
	if len(ms.Runs) != 3 {
		t.Fatalf("runs = %d", len(ms.Runs))
	}
	if ms.Best.F > -0.999 {
		t.Errorf("Best.F = %v, want ~-1", ms.Best.F)
	}
}

func TestMultiStartPanicsOnZeroStarts(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MultiStart(&NelderMead{}, sphere([]float64{0}), UniformBounds(1, 0, 1), 0, rand.New(rand.NewSource(0)))
}

// Property: every optimizer returns a feasible point with F equal to
// the objective evaluated there, never worse than the start.
func TestOptimizerInvariants(t *testing.T) {
	opts := allOptimizers()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := UniformBounds(3, -1, 2)
		x0 := b.Random(rng)
		center := b.Random(rng)
		obj := sphere(center)
		f0 := obj(x0)
		opt := opts[int(uint64(seed)%uint64(len(opts)))]
		r := opt.Minimize(obj, x0, b)
		if !b.Contains(r.X) {
			return false
		}
		if math.Abs(obj(r.X)-r.F) > 1e-12 {
			return false
		}
		return r.F <= f0+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 24}); err != nil {
		t.Error(err)
	}
}

func TestOptimizerNames(t *testing.T) {
	want := map[string]bool{"L-BFGS-B": true, "Nelder-Mead": true, "SLSQP": true, "COBYLA": true}
	for _, opt := range allOptimizers() {
		if !want[opt.Name()] {
			t.Errorf("unexpected name %q", opt.Name())
		}
	}
}

func matFromRows(rows [][]float64) *linalg.Matrix {
	return linalg.FromRows(rows)
}
