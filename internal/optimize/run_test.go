package optimize

import (
	"context"
	"math"
	"testing"
	"time"

	"qaoaml/internal/telemetry"
)

// allRunners is every optimizer in the package, including SPSA (which
// the legacy allOptimizers test helper excludes as a non-paper method).
func allRunners() []Optimizer {
	return append(allOptimizers(), &SPSA{})
}

func TestRunDefaultsToLBFGSB(t *testing.T) {
	b := UniformBounds(2, -2, 2)
	r := Run(context.Background(), Problem{F: sphere([]float64{1, 1}), X0: []float64{0, 0}, Bounds: b}, Options{})
	if r.F > 1e-5 || r.Status != Converged {
		t.Fatalf("default Run: F=%v status=%v (%s)", r.F, r.Status, r.Message)
	}
}

// TestRunMatchesMinimize pins the wrapper contract: Minimize and Run
// produce bit-identical results (same trajectory, NFev, message).
func TestRunMatchesMinimize(t *testing.T) {
	b := UniformBounds(3, -2, 2)
	f := sphere([]float64{0.7, -0.3, 1.2})
	x0 := []float64{-1, 1, 0}
	for _, opt := range allRunners() {
		want := opt.Minimize(f, x0, b)
		got := Run(context.Background(), Problem{F: f, X0: x0, Bounds: b}, Options{Optimizer: opt})
		if got.F != want.F || got.NFev != want.NFev || got.Iters != want.Iters || got.Message != want.Message {
			t.Errorf("%s: Run != Minimize: got %+v want %+v", opt.Name(), got, want)
		}
		for i := range want.X {
			if got.X[i] != want.X[i] {
				t.Errorf("%s: X[%d] differs: %v != %v", opt.Name(), i, got.X[i], want.X[i])
			}
		}
	}
}

func TestRunCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := UniformBounds(2, -2, 2)
	for _, opt := range allRunners() {
		r := Run(ctx, Problem{F: sphere([]float64{0, 0}), X0: []float64{1, 1}, Bounds: b}, Options{Optimizer: opt})
		if r.Status != Cancelled {
			t.Errorf("%s: status = %v, want Cancelled", opt.Name(), r.Status)
		}
		if r.NFev > 1 {
			t.Errorf("%s: pre-cancelled run spent %d evaluations", opt.Name(), r.NFev)
		}
	}
}

// TestRunCancelMidRun cancels from inside the objective and checks
// every optimizer stops within one outer step, keeping its incumbent.
func TestRunCancelMidRun(t *testing.T) {
	b := UniformBounds(4, -2, 2)
	for _, opt := range allRunners() {
		ctx, cancel := context.WithCancel(context.Background())
		calls := 0
		f := func(x []float64) float64 {
			calls++
			if calls == 20 {
				cancel()
			}
			return rosenbrockND(x)
		}
		r := Run(ctx, Problem{F: f, X0: []float64{-1.2, 1, -1.2, 1}, Bounds: b}, Options{Optimizer: opt})
		cancel()
		if r.Status != Cancelled {
			t.Errorf("%s: status = %v (%s), want Cancelled", opt.Name(), r.Status, r.Message)
			continue
		}
		if r.Converged {
			t.Errorf("%s: cancelled run reports Converged", opt.Name())
		}
		// One outer step costs at most one gradient (2n evals) plus a
		// full line search / simplex rebuild; 3·30 evals is generous.
		if r.NFev > 20+90 {
			t.Errorf("%s: cancelled at call 20 but spent %d evaluations", opt.Name(), r.NFev)
		}
		if len(r.X) != 4 || math.IsNaN(r.F) {
			t.Errorf("%s: cancelled result lost the incumbent: %+v", opt.Name(), r)
		}
	}
}

func TestRunDeadlineSetsCancelled(t *testing.T) {
	b := UniformBounds(4, -2, 2)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	slow := func(x []float64) float64 {
		time.Sleep(200 * time.Microsecond)
		return rosenbrockND(x)
	}
	r := Run(ctx, Problem{F: slow, X0: []float64{-1.2, 1, -1.2, 1}, Bounds: b},
		Options{Optimizer: &LBFGSB{MaxIter: 10000}})
	if r.Status != Cancelled {
		t.Fatalf("status = %v (%s), want Cancelled on deadline", r.Status, r.Message)
	}
}

func TestRunCallbackStops(t *testing.T) {
	b := UniformBounds(4, -2, 2)
	for _, opt := range allRunners() {
		events := 0
		r := Run(context.Background(), Problem{F: rosenbrockND, X0: []float64{-1.2, 1, -1.2, 1}, Bounds: b},
			Options{Optimizer: opt, Callback: func(ev telemetry.IterEvent) bool {
				events++
				return ev.Iter >= 2
			}})
		if r.Status != Cancelled || r.Message != callbackStopMsg {
			t.Errorf("%s: status = %v (%q), want callback stop", opt.Name(), r.Status, r.Message)
		}
		if events != 3 { // iters 0, 1, 2
			t.Errorf("%s: callback saw %d events, want 3", opt.Name(), events)
		}
	}
}

// TestRunEmitsTraces checks all five optimizers emit per-iteration
// events with sane cumulative NFev.
func TestRunEmitsTraces(t *testing.T) {
	b := UniformBounds(3, -2, 2)
	f := sphere([]float64{0.7, -0.3, 1.2})
	for _, opt := range allRunners() {
		mem := telemetry.NewMemory()
		r := Run(context.Background(), Problem{F: f, X0: []float64{-1, 1, 0}, Bounds: b},
			Options{Optimizer: opt, Recorder: mem})
		trace := mem.Trace()
		if len(trace) == 0 {
			t.Errorf("%s: no iteration events", opt.Name())
			continue
		}
		last := -1
		for i, ev := range trace {
			if ev.Source != opt.Name() {
				t.Errorf("%s: event source %q", opt.Name(), ev.Source)
			}
			if ev.NFev < last {
				t.Errorf("%s: NFev not monotone at event %d: %d < %d", opt.Name(), i, ev.NFev, last)
			}
			last = ev.NFev
			if math.IsNaN(ev.F) || math.IsNaN(ev.GNorm) || math.IsNaN(ev.Step) ||
				math.IsInf(ev.GNorm, 0) || math.IsInf(ev.Step, 0) {
				t.Errorf("%s: non-finite event fields: %+v", opt.Name(), ev)
			}
		}
		if last > r.NFev {
			t.Errorf("%s: last event NFev %d exceeds result NFev %d", opt.Name(), last, r.NFev)
		}
		if got := mem.CounterValue("optimize.runs"); got != 1 {
			t.Errorf("%s: optimize.runs = %d", opt.Name(), got)
		}
		if got := mem.CounterValue("optimize.fev_total"); got != int64(r.NFev) {
			t.Errorf("%s: optimize.fev_total = %d, want %d", opt.Name(), got, r.NFev)
		}
		if h, ok := mem.HistogramSnapshot("optimize.nfev"); !ok || h.Count != 1 {
			t.Errorf("%s: optimize.nfev histogram missing", opt.Name())
		}
		if h, ok := mem.HistogramSnapshot("optimize.run_ms"); !ok || h.Count != 1 {
			t.Errorf("%s: optimize.run_ms histogram missing", opt.Name())
		}
	}
}

func TestRunMaxNFevCapsBudget(t *testing.T) {
	b := UniformBounds(4, -2, 2)
	for _, opt := range allRunners() {
		r := Run(context.Background(), Problem{F: rosenbrockND, X0: []float64{-1.2, 1, -1.2, 1}, Bounds: b},
			Options{Optimizer: opt, MaxNFev: 12})
		// Gradient methods may overshoot within one probe batch (2n+1).
		if r.NFev > 12+2*4+1 {
			t.Errorf("%s: NFev = %d exceeds Options.MaxNFev cap", opt.Name(), r.NFev)
		}
		if r.Status == Converged && !r.Converged {
			t.Errorf("%s: Status/Converged mismatch: %+v", opt.Name(), r)
		}
	}
}

func TestStatusString(t *testing.T) {
	cases := map[Status]string{Converged: "converged", MaxIter: "maxiter", Cancelled: "cancelled"}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("Status(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
}

// TestStatusMatchesConvergedFlag pins the redundancy contract between
// the legacy bool and the new enum on ordinary (non-cancelled) runs.
func TestStatusMatchesConvergedFlag(t *testing.T) {
	b := UniformBounds(2, -2, 2)
	for _, opt := range allRunners() {
		easy := opt.Minimize(sphere([]float64{0, 0}), []float64{1, 1}, b)
		if easy.Converged != (easy.Status == Converged) {
			t.Errorf("%s: easy run Status %v vs Converged %v", opt.Name(), easy.Status, easy.Converged)
		}
	}
	starved := (&LBFGSB{MaxFev: 5}).Minimize(rosenbrock, []float64{-1.2, 1}, b)
	if starved.Status != MaxIter || starved.Converged {
		t.Errorf("starved run: status %v converged %v, want MaxIter", starved.Status, starved.Converged)
	}
}

// TestRunExternalOptimizerFallback drives Run with an Optimizer that
// does not implement the internal runner hook.
func TestRunExternalOptimizerFallback(t *testing.T) {
	b := UniformBounds(1, -1, 1)
	ext := externalOpt{}
	r := Run(context.Background(), Problem{F: func(x []float64) float64 { return x[0] * x[0] }, X0: []float64{0.5}, Bounds: b},
		Options{Optimizer: ext})
	if r.Status != Converged || r.F != 0 {
		t.Fatalf("external fallback: %+v", r)
	}
}

type externalOpt struct{}

func (externalOpt) Name() string { return "external" }

func (externalOpt) Minimize(f Func, x0 []float64, bounds *Bounds) Result {
	return Result{X: []float64{0}, F: f([]float64{0}), NFev: 1, Converged: true, Message: "exact"}
}
