package optimize

import (
	"context"
	"math"

	"qaoaml/internal/linalg"
)

// COBYLA is a derivative-free trust-region method that, like Powell's
// COBYLA (Constrained Optimization BY Linear Approximations), maintains
// a simplex of n+1 points, fits a linear model of the objective through
// them, and minimizes the model inside a shrinking trust region. Box
// bounds — the only constraints the QAOA domain needs — are handled as
// linear constraints solved in closed form (clipping the model step).
type COBYLA struct {
	Tol     float64 // final trust-region radius ρ_end (default 1e-6)
	RhoBeg  float64 // initial trust-region radius (default 0.5)
	MaxIter int     // outer iteration cap (default 500·dim)
	MaxFev  int     // function evaluation cap (default 1000·dim)
}

// Name implements Optimizer.
func (o *COBYLA) Name() string { return "COBYLA" }

// Minimize implements Optimizer.
func (o *COBYLA) Minimize(f Func, x0 []float64, bounds *Bounds) Result {
	return Run(context.Background(), Problem{F: f, X0: x0, Bounds: bounds}, Options{Optimizer: o})
}

// run implements the runner hook behind Run. Per-iteration events
// report the simplex function-value spread (GNorm) and the trust-region
// radius ρ (Step).
func (o *COBYLA) run(env *runEnv) Result {
	f, bounds := env.f, env.bounds
	x := prepareStart(env.x0, bounds)
	n := len(x)
	rhoEnd := tolOrDefault(o.Tol)
	rho := o.RhoBeg
	if rho <= 0 {
		rho = 0.5
	}
	if rho < rhoEnd {
		rho = rhoEnd * 10
	}
	maxIter := maxIterOrDefault(o.MaxIter, 500*n)
	maxFev := env.capFev(maxIterOrDefault(o.MaxFev, 1000*n))
	cnt := &counter{f: f}

	rhoBeg := rho
	simplex := buildSimplex(cnt, x, rho, bounds)
	iters := 0
	converged := false
	shrinks := 0
	consecFails := 0
	// Functional-tolerance stall detection: the paper runs every
	// optimizer with a functional tolerance (1e-6), so COBYLA stops once
	// the incumbent stops improving by more than that for a window of
	// iterations — the trust-region ladder keeps shrinking ρ by 4× per
	// consecutive failure inside the window, so a stalled window means
	// no scale between ρ and ρ/4^window makes progress.
	stallWindow := 4*n + 6
	stall := 0
	lastBest := simplex[0].f
	cancelled := false
	msg := "max iterations reached"
	for ; iters < maxIter && cnt.n < maxFev; iters++ {
		sortSimplex(simplex)
		if env.stop(&msg) {
			cancelled = true
			break
		}
		if env.emit(iters, simplex[0].f, spread(simplex), rho, cnt.n) {
			cancelled = true
			msg = callbackStopMsg
			break
		}
		if rho <= rhoEnd {
			converged = true
			msg = "trust region collapsed to tolerance"
			break
		}
		if best := simplex[0].f; best < lastBest-rhoEnd*math.Max(1, math.Abs(best)) {
			lastBest = best
			stall = 0
		} else {
			stall++
			if stall >= stallWindow {
				converged = true
				msg = "function change below tolerance"
				break
			}
		}
		grad, ok := fitLinearModel(simplex)
		if !ok {
			// Degenerate geometry: rebuild the simplex around the best point.
			simplex = buildSimplex(cnt, simplex[0].x, rho, bounds)
			continue
		}
		best := simplex[0]
		// Model minimizer inside the trust region and the box: step along
		// −grad with length ρ, clipped to bounds.
		gnorm := 0.0
		for _, gi := range grad {
			gnorm += gi * gi
		}
		gnorm = math.Sqrt(gnorm)
		if gnorm < 1e-14 {
			rho /= 2
			continue
		}
		trial := make([]float64, n)
		for i := range trial {
			trial[i] = best.x[i] - rho*grad[i]/gnorm
		}
		bounds.Clip(trial)
		moved := false
		for i := range trial {
			if trial[i] != best.x[i] {
				moved = true
				break
			}
		}
		if !moved {
			rho /= 2
			continue
		}
		ft := cnt.call(trial)
		// Trust-region ratio test: the linear model predicts a decrease
		// of ρ·‖g‖ (less when clipped); demand a fixed fraction of it.
		predicted := 0.0
		for i := range trial {
			predicted -= grad[i] * (trial[i] - best.x[i])
		}
		switch {
		case ft < best.f && best.f-ft >= 0.1*predicted:
			// Good step: the trial becomes a vertex, displacing the worst.
			simplex[n] = vertex{x: trial, f: ft}
			consecFails = 0
			// Very good step: grow the trust region (standard TR update)
			// so a prematurely shrunk region recovers instead of creeping.
			// The stall check above breaks any grow/shrink limit cycle.
			if best.f-ft >= 0.7*predicted {
				rho = math.Min(2*rho, rhoBeg)
			}
		default:
			// Model failed to predict enough descent: shrink the trust
			// region — aggressively on consecutive failures, which is the
			// signature of sitting near an optimum, so warm starts finish
			// in few evaluations. Still absorb the trial if it improves
			// the worst vertex (free geometry refresh), and rebuild the
			// simplex only every few shrinks (each rebuild costs n+1
			// evaluations).
			if ft < simplex[n].f {
				simplex[n] = vertex{x: trial, f: ft}
			}
			consecFails++
			if consecFails > 1 {
				rho /= 4
			} else {
				rho /= 2
			}
			shrinks++
			if shrinks%5 == 0 && rho > rhoEnd && cnt.n+n < maxFev {
				simplex = buildSimplex(cnt, best.x, rho, bounds)
			}
		}
	}
	sortSimplex(simplex)
	if !converged && !cancelled && cnt.n >= maxFev {
		msg = "function evaluation budget exhausted"
	}
	return Result{
		X: simplex[0].x, F: simplex[0].f,
		NFev: cnt.n, Iters: iters, Converged: converged,
		Status: statusOf(converged, cancelled), Message: msg,
	}
}

// buildSimplex evaluates x plus axis steps of size rho (flipped at box
// faces) to form a fresh, well-conditioned simplex.
func buildSimplex(cnt *counter, x []float64, rho float64, bounds *Bounds) []vertex {
	n := len(x)
	simplex := make([]vertex, 0, n+1)
	base := append([]float64(nil), x...)
	simplex = append(simplex, vertex{x: base, f: cnt.call(base)})
	for i := 0; i < n; i++ {
		xi := append([]float64(nil), x...)
		step := rho
		if xi[i]+step > bounds.Hi[i] {
			step = -rho
		}
		xi[i] += step
		if xi[i] < bounds.Lo[i] {
			xi[i] = bounds.Lo[i]
		}
		simplex = append(simplex, vertex{x: xi, f: cnt.call(xi)})
	}
	return simplex
}

// fitLinearModel solves for the gradient of the affine interpolant
// through the simplex vertices via least squares on the edge system.
func fitLinearModel(simplex []vertex) ([]float64, bool) {
	n := len(simplex) - 1
	a := linalg.NewMatrix(n, n)
	rhs := make(linalg.Vector, n)
	for i := 1; i <= n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i-1, j, simplex[i].x[j]-simplex[0].x[j])
		}
		rhs[i-1] = simplex[i].f - simplex[0].f
	}
	g, err := linalg.Solve(a, rhs)
	if err != nil {
		return nil, false
	}
	for _, gi := range g {
		if math.IsNaN(gi) || math.IsInf(gi, 0) {
			return nil, false
		}
	}
	return g, true
}
