package optimize

import (
	"context"
	"math"
	"math/rand"
)

// SPSA is simultaneous perturbation stochastic approximation (Spall),
// the optimizer most commonly used for variational quantum circuits on
// real hardware because every pseudo-gradient costs exactly two
// function evaluations regardless of dimension. It is not one of the
// paper's four optimizers; it is included as an extension so the
// two-level initialization can be evaluated against the
// hardware-practical choice (see the ablation benches).
//
// Standard gain sequences a_k = a/(k+1+A)^α and c_k = c/(k+1)^γ with
// the usual α = 0.602, γ = 0.101 defaults.
type SPSA struct {
	Tol     float64 // relative best-f stall tolerance (default 1e-6)
	MaxIter int     // iteration cap (default 300·dim)
	MaxFev  int     // function evaluation cap (default 2000·dim)
	A       float64 // numerator of a_k (default auto-scaled from bounds)
	C       float64 // numerator of c_k (default 0.1)
	Alpha   float64 // a_k decay exponent (default 0.602)
	Gamma   float64 // c_k decay exponent (default 0.101)
	Seed    int64   // perturbation RNG seed (default 1)
}

// Name implements Optimizer.
func (o *SPSA) Name() string { return "SPSA" }

// Minimize implements Optimizer.
func (o *SPSA) Minimize(f Func, x0 []float64, bounds *Bounds) Result {
	return Run(context.Background(), Problem{F: f, X0: x0, Bounds: bounds}, Options{Optimizer: o})
}

// run implements the runner hook behind Run. Per-iteration events
// report the previous pseudo-gradient ∞-norm (GNorm) and the current
// gain a_k (Step).
func (o *SPSA) run(env *runEnv) Result {
	f, bounds := env.f, env.bounds
	x := prepareStart(env.x0, bounds)
	n := len(x)
	tol := tolOrDefault(o.Tol)
	maxIter := maxIterOrDefault(o.MaxIter, 300*n)
	maxFev := env.capFev(maxIterOrDefault(o.MaxFev, 2000*n))
	alpha := o.Alpha
	if alpha <= 0 {
		alpha = 0.602
	}
	gamma := o.Gamma
	if gamma <= 0 {
		gamma = 0.101
	}
	c := o.C
	if c <= 0 {
		c = 0.1
	}
	a := o.A
	if a <= 0 {
		// Scale the step so the first iterations move ~2% of the box.
		w := bounds.Width()
		mean := 0.0
		for _, wi := range w {
			mean += wi / float64(n)
		}
		a = 0.02 * mean * math.Pow(1+50, alpha)
	}
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	cnt := &counter{f: f}

	best := append([]float64(nil), x...)
	fBest := cnt.call(best)
	fx := fBest
	stall := 0
	stallWindow := 10 * n
	iters := 0
	converged := false
	cancelled := false
	ghatNorm := 0.0 // ∞-norm of the previous pseudo-gradient
	msg := "max iterations reached"
	delta := make([]float64, n)
	xp := make([]float64, n)
	xm := make([]float64, n)
	for ; iters < maxIter && cnt.n+2 <= maxFev; iters++ {
		k := float64(iters)
		ak := a / math.Pow(k+1+50, alpha)
		ck := c / math.Pow(k+1, gamma)
		if env.stop(&msg) {
			cancelled = true
			break
		}
		if env.emit(iters, fBest, ghatNorm, ak, cnt.n) {
			cancelled = true
			msg = callbackStopMsg
			break
		}
		for i := range delta {
			if rng.Intn(2) == 0 {
				delta[i] = 1
			} else {
				delta[i] = -1
			}
			xp[i] = x[i] + ck*delta[i]
			xm[i] = x[i] - ck*delta[i]
		}
		bounds.Clip(xp)
		bounds.Clip(xm)
		fp := cnt.call(xp)
		fm := cnt.call(xm)
		ghatNorm = 0
		for i := range x {
			ghat := (fp - fm) / (2 * ck * delta[i])
			if g := math.Abs(ghat); g > ghatNorm {
				ghatNorm = g
			}
			x[i] -= ak * ghat
		}
		bounds.Clip(x)
		// SPSA does not evaluate f(x) each step; track the best probe.
		if fp < fBest {
			fBest = fp
			copy(best, xp)
		}
		if fm < fBest {
			fBest = fm
			copy(best, xm)
		}
		if math.Min(fp, fm) < fx-tol*math.Max(1, math.Abs(fx)) {
			fx = math.Min(fp, fm)
			stall = 0
		} else {
			stall++
			if stall >= stallWindow {
				converged = true
				msg = "function change below tolerance"
				break
			}
		}
	}
	// Final candidate: the drifting iterate may beat the best probe.
	if cnt.n < maxFev {
		if ffinal := cnt.call(x); ffinal < fBest {
			fBest = ffinal
			copy(best, x)
		}
	}
	if !converged && !cancelled && cnt.n >= maxFev-1 {
		msg = "function evaluation budget exhausted"
	}
	return Result{X: best, F: fBest, NFev: cnt.n, Iters: iters, Converged: converged,
		Status: statusOf(converged, cancelled), Message: msg}
}
