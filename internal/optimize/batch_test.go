package optimize

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// resultsEqual compares two Results for exact (bit-for-bit) equality.
func resultsEqual(a, b Result) bool {
	return reflect.DeepEqual(a.X, b.X) && a.F == b.F && a.NFev == b.NFev &&
		a.Iters == b.Iters && a.Converged == b.Converged && a.Message == b.Message
}

// countingBatch wraps SerialBatch and records how many batches and
// points flowed through it.
type countingBatch struct {
	f       Func
	batches int
	points  int
}

func (c *countingBatch) eval(points [][]float64) []float64 {
	c.batches++
	c.points += len(points)
	return SerialBatch(c.f)(points)
}

// MinimizeBatch must reproduce Minimize exactly — same point, value,
// iteration count, NFev and message — for every batch-capable
// optimizer, scheme and objective, because the batched probes are the
// same points the serial path evaluates.
func TestMinimizeBatchIsBitIdenticalToMinimize(t *testing.T) {
	objectives := []struct {
		name string
		f    Func
		x0   []float64
		b    *Bounds
	}{
		{"sphere", sphere([]float64{0.3, -0.2}), []float64{-1, 1}, UniformBounds(2, -2, 2)},
		{"rosenbrock", rosenbrock, []float64{-1.2, 1}, UniformBounds(2, -2, 2)},
		{"qaoa-like", qaoaLike, []float64{0.3, 0.4}, UniformBounds(2, 0, math.Pi)},
	}
	for _, scheme := range []FDScheme{CentralDiff, ForwardDiff} {
		opts := []BatchMinimizer{
			&LBFGSB{Scheme: scheme},
			&SLSQP{Scheme: scheme},
		}
		for _, opt := range opts {
			for _, obj := range objectives {
				serial := opt.Minimize(obj.f, obj.x0, obj.b)
				cb := &countingBatch{f: obj.f}
				batched := opt.MinimizeBatch(obj.f, cb.eval, obj.x0, obj.b)
				if !resultsEqual(serial, batched) {
					t.Errorf("%s/%s/%s: batch result %+v != serial %+v",
						opt.Name(), scheme, obj.name, batched, serial)
				}
				if cb.batches == 0 {
					t.Errorf("%s/%s/%s: batch objective never consulted", opt.Name(), scheme, obj.name)
				}
			}
		}
	}
}

// MinimizeWith must route to MinimizeBatch when available and fall back
// to Minimize otherwise.
func TestMinimizeWithDispatch(t *testing.T) {
	b := UniformBounds(2, -2, 2)
	f := sphere([]float64{0.5, 0.5})
	x0 := []float64{-1, 1}
	cb := &countingBatch{f: f}
	got := MinimizeWith(&LBFGSB{}, f, cb.eval, x0, b)
	want := (&LBFGSB{}).Minimize(f, x0, b)
	if !resultsEqual(got, want) {
		t.Errorf("MinimizeWith(LBFGSB) = %+v, want %+v", got, want)
	}
	if cb.batches == 0 {
		t.Error("MinimizeWith did not use the batch path for a BatchMinimizer")
	}
	// NelderMead has no batch path: bf must be ignored, not break anything.
	nm := MinimizeWith(&NelderMead{}, f, cb.eval, x0, b)
	nmWant := (&NelderMead{}).Minimize(f, x0, b)
	if !resultsEqual(nm, nmWant) {
		t.Errorf("MinimizeWith(NelderMead) = %+v, want %+v", nm, nmWant)
	}
	// nil bf always takes the serial path.
	if got := MinimizeWith(&LBFGSB{}, f, nil, x0, b); !resultsEqual(got, want) {
		t.Errorf("MinimizeWith(nil bf) = %+v, want %+v", got, want)
	}
}

// MultiStartFromBatch must match MultiStartFrom run for run.
func TestMultiStartFromBatchMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := UniformBounds(3, -2, 2)
	starts := make([][]float64, 6)
	for i := range starts {
		starts[i] = b.Random(rng)
	}
	f := sphere([]float64{0.4, -0.3, 0.9})
	serial := MultiStartFrom(&LBFGSB{}, f, b, starts)
	batched := MultiStartFromBatch(&LBFGSB{}, f, SerialBatch(f), b, starts)
	if len(batched.Runs) != len(serial.Runs) {
		t.Fatalf("run count %d != %d", len(batched.Runs), len(serial.Runs))
	}
	for i := range serial.Runs {
		if !resultsEqual(serial.Runs[i], batched.Runs[i]) {
			t.Errorf("run %d: batch %+v != serial %+v", i, batched.Runs[i], serial.Runs[i])
		}
	}
	if batched.TotalNFev != serial.TotalNFev || !resultsEqual(batched.Best, serial.Best) {
		t.Errorf("aggregate mismatch: batch (best %+v, nfev %d) vs serial (best %+v, nfev %d)",
			batched.Best, batched.TotalNFev, serial.Best, serial.TotalNFev)
	}
}

// Concurrent multistart must produce exactly the serial MultiStartFrom
// results — runs are independent, results indexed by start, best folded
// in start order — for any worker count.
func TestMultiStartFromConcurrentMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	b := UniformBounds(2, -2, 2)
	starts := make([][]float64, 9)
	for i := range starts {
		starts[i] = b.Random(rng)
	}
	f := rosenbrock
	serial := MultiStartFrom(&LBFGSB{}, f, b, starts)
	for _, workers := range []int{1, 2, 4, 16} {
		conc := MultiStartFromConcurrent(&LBFGSB{}, func() Func { return f }, b, starts, workers)
		if len(conc.Runs) != len(serial.Runs) {
			t.Fatalf("workers=%d: run count %d != %d", workers, len(conc.Runs), len(serial.Runs))
		}
		for i := range serial.Runs {
			if !resultsEqual(serial.Runs[i], conc.Runs[i]) {
				t.Errorf("workers=%d run %d: concurrent %+v != serial %+v",
					workers, i, conc.Runs[i], serial.Runs[i])
			}
		}
		if conc.TotalNFev != serial.TotalNFev || !resultsEqual(conc.Best, serial.Best) {
			t.Errorf("workers=%d: aggregate mismatch", workers)
		}
	}
}

// MultiStartConcurrent must draw the same start points as MultiStart
// with the same rng, so the whole MultiStartResult matches.
func TestMultiStartConcurrentMatchesMultiStart(t *testing.T) {
	b := UniformBounds(2, 0, math.Pi)
	serial := MultiStart(&SLSQP{}, qaoaLike, b, 5, rand.New(rand.NewSource(21)))
	conc := MultiStartConcurrent(&SLSQP{}, func() Func { return qaoaLike }, b, 5,
		rand.New(rand.NewSource(21)), 3)
	if len(conc.Runs) != len(serial.Runs) {
		t.Fatalf("run count %d != %d", len(conc.Runs), len(serial.Runs))
	}
	for i := range serial.Runs {
		if !resultsEqual(serial.Runs[i], conc.Runs[i]) {
			t.Errorf("run %d: concurrent %+v != serial %+v", i, conc.Runs[i], serial.Runs[i])
		}
	}
}

func TestMultiStartConcurrentPanicsOnZeroStarts(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MultiStartFromConcurrent(&LBFGSB{}, func() Func { return rosenbrock },
		UniformBounds(2, -1, 1), nil, 2)
}

// The workspace gradient must agree bit-for-bit with the package-level
// Gradient, and GradientBatch with both, for both schemes — including
// at box faces where steps shrink or flip.
func TestGradientWorkspaceMatchesGradient(t *testing.T) {
	b := &Bounds{Lo: []float64{-1, 0, 0.5}, Hi: []float64{1, 0.7, 0.5}}
	xs := [][]float64{
		{0.2, 0.3, 0.5},
		{1, 0.7, 0.5},              // at upper faces (and degenerate lo==hi coordinate)
		{-1, 0, 0.5},               // at lower faces
		{0.999999, 0.0000005, 0.5}, // within one step of the faces
	}
	f := sphere([]float64{0.1, 0.2, 0.3})
	ws := NewGradientWorkspace(3)
	dst := make([]float64, 3)
	for _, scheme := range []FDScheme{CentralDiff, ForwardDiff} {
		for _, x := range xs {
			for _, fx := range []float64{f(x), math.NaN()} {
				want := Gradient(f, x, fx, b, scheme, 0)
				got := ws.Gradient(dst, f, x, fx, b, scheme, 0)
				if !reflect.DeepEqual(want, got) {
					t.Errorf("%s at %v: workspace %v != package %v", scheme, x, got, want)
				}
				cnt := &counter{f: f}
				bdst := make([]float64, 3)
				_, nev := ws.GradientBatch(bdst, SerialBatch(cnt.call), x, fx, b, scheme, 0)
				if !reflect.DeepEqual(want, bdst) {
					t.Errorf("%s at %v: batch %v != serial %v", scheme, x, bdst, want)
				}
				if nev != cnt.n {
					t.Errorf("%s at %v: reported %d evals, objective saw %d", scheme, x, nev, cnt.n)
				}
			}
		}
	}
}

// A reused workspace gradient must not allocate.
func TestGradientWorkspaceZeroAllocs(t *testing.T) {
	f := sphere([]float64{0.1, -0.4, 0.2, 0.6})
	b := UniformBounds(4, -2, 2)
	x := []float64{0.5, 0.5, -0.5, 1}
	ws := NewGradientWorkspace(4)
	dst := make([]float64, 4)
	ws.Gradient(dst, f, x, math.NaN(), b, CentralDiff, 0)
	if allocs := testing.AllocsPerRun(50, func() {
		ws.Gradient(dst, f, x, math.NaN(), b, CentralDiff, 0)
	}); allocs != 0 {
		t.Errorf("reused workspace Gradient allocates %v objects per call, want 0", allocs)
	}
}
