package optimize

import "context"

// LBFGSB is a limited-memory BFGS method with gradient projection for
// box constraints, the same algorithm family as SciPy's L-BFGS-B.
// Gradients are finite differences, so — as on real quantum hardware —
// every gradient evaluation spends function calls, which is what the
// paper counts.
type LBFGSB struct {
	Tol     float64  // relative f-change / projected-gradient tolerance (default 1e-6)
	MaxIter int      // outer iteration cap (default 100·dim)
	MaxFev  int      // function evaluation cap (default 2000·dim)
	Memory  int      // number of (s, y) pairs kept (default 10)
	Scheme  FDScheme // finite-difference scheme (default central)
	FDStep  float64  // finite-difference step (default 1e-6)
}

// Name implements Optimizer.
func (o *LBFGSB) Name() string { return "L-BFGS-B" }

// Minimize implements Optimizer.
func (o *LBFGSB) Minimize(f Func, x0 []float64, bounds *Bounds) Result {
	return Run(context.Background(), Problem{F: f, X0: x0, Bounds: bounds}, Options{Optimizer: o})
}

// MinimizeBatch implements BatchMinimizer: finite-difference gradient
// stencils are evaluated through bf (probes are independent, so a batch
// objective may run them concurrently); everything else — and the
// resulting trajectory, NFev and Result — is identical to Minimize.
func (o *LBFGSB) MinimizeBatch(f Func, bf BatchFunc, x0 []float64, bounds *Bounds) Result {
	return Run(context.Background(), Problem{F: f, Batch: bf, X0: x0, Bounds: bounds}, Options{Optimizer: o})
}

// run implements the runner hook behind Run. Per-iteration events
// report the projected-gradient ∞-norm and the accepted line-search
// step of the previous iteration.
func (o *LBFGSB) run(env *runEnv) Result {
	f, bf, bounds := env.f, env.bf, env.bounds
	x := prepareStart(env.x0, bounds)
	n := len(x)
	tol := tolOrDefault(o.Tol)
	maxIter := maxIterOrDefault(o.MaxIter, 100*n)
	maxFev := env.capFev(maxIterOrDefault(o.MaxFev, 2000*n))
	mem := o.Memory
	if mem <= 0 {
		mem = 10
	}
	cnt := &counter{f: f}
	ngev := 0
	gws := NewGradientWorkspace(n)
	// Analytic gradients (adjoint mode) cost zero function evaluations
	// and are counted in ngev; without them the finite-difference path
	// below is bit-identical to the pre-analytic implementation.
	grad := func(dst, at []float64, fat float64) {
		if env.agrad != nil {
			end := env.rec.Span("optimize.grad")
			env.agrad(at, dst)
			end()
			ngev++
			return
		}
		if bf != nil {
			_, nev := gws.GradientBatch(dst, bf, at, fat, bounds, o.Scheme, o.FDStep)
			cnt.n += nev
		} else {
			gws.Gradient(dst, cnt.call, at, fat, bounds, o.Scheme, o.FDStep)
		}
	}

	fx := cnt.call(x)
	g := make([]float64, n)
	gNew := make([]float64, n)
	grad(g, x, fx)
	xt := make([]float64, n) // line-search / next-iterate buffer

	// L-BFGS history.
	var sHist, yHist [][]float64
	var rhoHist []float64

	iters := 0
	converged := false
	cancelled := false
	alpha := 0.0 // accepted step of the previous iteration
	msg := "max iterations reached"
	for ; iters < maxIter && cnt.n < maxFev; iters++ {
		if env.stop(&msg) {
			cancelled = true
			break
		}
		pg := projectedGradientNorm(x, g, bounds)
		if env.emit(iters, fx, pg, alpha, cnt.n) {
			cancelled = true
			msg = callbackStopMsg
			break
		}
		if pg <= tol {
			converged = true
			msg = "projected gradient below tolerance"
			break
		}
		d := twoLoop(g, sHist, yHist, rhoHist)
		for i := range d {
			d[i] = -d[i]
		}
		// Make the direction feasible-descent: zero components pushing
		// against an active bound.
		descent := 0.0
		for i := range d {
			if (x[i] <= bounds.Lo[i] && d[i] < 0) || (x[i] >= bounds.Hi[i] && d[i] > 0) {
				d[i] = 0
			}
			descent += d[i] * g[i]
		}
		if descent >= 0 {
			// Not a descent direction (stale curvature): fall back to the
			// projected steepest descent direction.
			sHist, yHist, rhoHist = nil, nil, nil
			for i := range d {
				d[i] = -g[i]
				if (x[i] <= bounds.Lo[i] && d[i] < 0) || (x[i] >= bounds.Hi[i] && d[i] > 0) {
					d[i] = 0
				}
			}
			descent = 0
			for i := range d {
				descent += d[i] * g[i]
			}
			if descent >= 0 {
				converged = true
				msg = "no feasible descent direction (KKT point)"
				break
			}
		}

		// Projected backtracking (Armijo) line search along clip(x + α·d),
		// writing the accepted point into the xt buffer.
		fNew, a, ok := projectedLineSearch(cnt, x, fx, g, d, bounds, maxFev, xt)
		if !ok {
			msg = "line search failed to make progress"
			break
		}
		alpha = a

		grad(gNew, xt, fNew)
		// Curvature update.
		s := make([]float64, n)
		y := make([]float64, n)
		sy := 0.0
		for i := range x {
			s[i] = xt[i] - x[i]
			y[i] = gNew[i] - g[i]
			sy += s[i] * y[i]
		}
		if sy > 1e-10 {
			sHist = append(sHist, s)
			yHist = append(yHist, y)
			rhoHist = append(rhoHist, 1/sy)
			if len(sHist) > mem {
				sHist = sHist[1:]
				yHist = yHist[1:]
				rhoHist = rhoHist[1:]
			}
		}

		fPrev := fx
		x, xt = xt, x
		fx = fNew
		g, gNew = gNew, g
		if relChange(fPrev, fx) <= tol {
			converged = true
			msg = "function change below tolerance"
			iters++
			break
		}
	}
	if !converged && !cancelled && cnt.n >= maxFev {
		msg = "function evaluation budget exhausted"
	}
	return Result{X: x, F: fx, NFev: cnt.n, NGev: ngev, Iters: iters, Converged: converged,
		Status: statusOf(converged, cancelled), Message: msg}
}

// twoLoop computes H·g with the standard L-BFGS two-loop recursion,
// scaling the initial Hessian by the last curvature pair.
func twoLoop(g []float64, sHist, yHist [][]float64, rhoHist []float64) []float64 {
	q := append([]float64(nil), g...)
	k := len(sHist)
	alpha := make([]float64, k)
	for i := k - 1; i >= 0; i-- {
		a := rhoHist[i] * dot(sHist[i], q)
		alpha[i] = a
		for j := range q {
			q[j] -= a * yHist[i][j]
		}
	}
	if k > 0 {
		yy := dot(yHist[k-1], yHist[k-1])
		if yy > 0 {
			scale := dot(sHist[k-1], yHist[k-1]) / yy
			for j := range q {
				q[j] *= scale
			}
		}
	}
	for i := 0; i < k; i++ {
		b := rhoHist[i] * dot(yHist[i], q)
		for j := range q {
			q[j] += (alpha[i] - b) * sHist[i][j]
		}
	}
	return q
}

// projectedLineSearch backtracks along clip(x + α·d) with an Armijo
// condition on the projected step, writing each candidate into the
// caller-provided xt buffer. On success xt holds the accepted point and
// alpha the accepted step length.
func projectedLineSearch(cnt *counter, x []float64, fx float64, g, d []float64, bounds *Bounds, maxFev int, xt []float64) (fNew, alpha float64, ok bool) {
	const c1 = 1e-4
	alpha = 1.0
	for try := 0; try < 30 && cnt.n < maxFev; try++ {
		for i := range xt {
			xt[i] = x[i] + alpha*d[i]
		}
		bounds.Clip(xt)
		// Armijo on the actual (projected) displacement.
		gTdx := 0.0
		moved := false
		for i := range xt {
			dx := xt[i] - x[i]
			if dx != 0 {
				moved = true
			}
			gTdx += g[i] * dx
		}
		if !moved {
			return 0, 0, false
		}
		ft := cnt.call(xt)
		if ft <= fx+c1*gTdx || (gTdx >= 0 && ft < fx) {
			return ft, alpha, true
		}
		alpha /= 2
	}
	return 0, 0, false
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
