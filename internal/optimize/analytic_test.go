package optimize

import (
	"context"
	"math"
	"testing"

	"qaoaml/internal/telemetry"
)

// gradOptimizers are the two methods that consume analytic gradients.
func gradOptimizers() []Optimizer {
	return []Optimizer{&LBFGSB{}, &SLSQP{}}
}

// sphereGrad is the analytic gradient of sphere(center).
func sphereGrad(center []float64) GradFunc {
	return func(x, grad []float64) {
		for i := range x {
			grad[i] = 2 * (x[i] - center[i])
		}
	}
}

// Analytic-gradient runs must converge to the same optimum as the
// finite-difference runs, spend strictly fewer function evaluations,
// and report the gradient count in NGev.
func TestAnalyticGradientConverges(t *testing.T) {
	b := UniformBounds(4, -2, 2)
	center := []float64{0.7, -0.3, 1.2, 0.4}
	x0 := []float64{-1, 1, 0, -1}
	for _, opt := range gradOptimizers() {
		fd := Run(context.Background(), Problem{F: sphere(center), X0: x0, Bounds: b}, Options{Optimizer: opt})
		an := Run(context.Background(), Problem{F: sphere(center), Grad: sphereGrad(center), X0: x0, Bounds: b},
			Options{Optimizer: opt})
		if an.Status != Converged {
			t.Errorf("%s: analytic run did not converge: %+v", opt.Name(), an)
		}
		if math.Abs(an.F-fd.F) > 1e-6 {
			t.Errorf("%s: analytic F %v vs FD F %v", opt.Name(), an.F, fd.F)
		}
		if an.NGev == 0 {
			t.Errorf("%s: analytic run reports NGev = 0", opt.Name())
		}
		if fd.NGev != 0 {
			t.Errorf("%s: FD run reports NGev = %d, want 0", opt.Name(), fd.NGev)
		}
		if an.NFev >= fd.NFev {
			t.Errorf("%s: analytic NFev %d not below FD NFev %d", opt.Name(), an.NFev, fd.NFev)
		}
	}
}

// A Problem with only ValueGrad set must behave as a gradient source.
func TestValueGradOnlyProblem(t *testing.T) {
	b := UniformBounds(3, -2, 2)
	center := []float64{0.5, -0.5, 0.25}
	vg := func(x, grad []float64) float64 {
		sphereGrad(center)(x, grad)
		return sphere(center)(x)
	}
	for _, opt := range gradOptimizers() {
		r := Run(context.Background(), Problem{F: sphere(center), ValueGrad: vg, X0: []float64{1, 1, 1}, Bounds: b},
			Options{Optimizer: opt})
		if r.Status != Converged || r.NGev == 0 {
			t.Errorf("%s: ValueGrad-only run: %+v", opt.Name(), r)
		}
	}
}

// With Grad nil the runs must stay bit-identical to the plain wrappers
// (the FD regression contract: analytic plumbing is invisible unless
// requested).
func TestNilGradKeepsFDPathBitIdentical(t *testing.T) {
	b := UniformBounds(3, -2, 2)
	f := sphere([]float64{0.7, -0.3, 1.2})
	x0 := []float64{-1, 1, 0}
	for _, opt := range gradOptimizers() {
		want := opt.Minimize(f, x0, b)
		got := Run(context.Background(), Problem{F: f, X0: x0, Bounds: b, Grad: nil}, Options{Optimizer: opt})
		if got.F != want.F || got.NFev != want.NFev || got.Iters != want.Iters || got.NGev != 0 {
			t.Errorf("%s: nil-Grad Run differs from Minimize: got %+v want %+v", opt.Name(), got, want)
		}
		for i := range want.X {
			if got.X[i] != want.X[i] {
				t.Errorf("%s: X[%d] differs", opt.Name(), i)
			}
		}
	}
}

// Cancelling mid-gradient must surface within one outer step with a
// consistent partial result: Status Cancelled, F equal to the objective
// at the returned X, and NFev/NGev equal to the calls actually made.
func TestAnalyticCancelMidGradient(t *testing.T) {
	b := UniformBounds(4, -2, 2)
	for _, opt := range gradOptimizers() {
		ctx, cancel := context.WithCancel(context.Background())
		fCalls, gCalls := 0, 0
		f := func(x []float64) float64 {
			fCalls++
			return rosenbrockND(x)
		}
		grad := func(x, g []float64) {
			gCalls++
			if gCalls == 3 {
				cancel() // takes effect at the next outer-iteration check
			}
			rosenbrockNDGrad(x, g)
		}
		r := Run(ctx, Problem{F: f, Grad: grad, X0: []float64{-1.2, 1, -1.2, 1}, Bounds: b},
			Options{Optimizer: opt})
		cancel()
		if r.Status != Cancelled || r.Converged {
			t.Errorf("%s: status = %v (%s), want Cancelled", opt.Name(), r.Status, r.Message)
		}
		if r.NGev != gCalls {
			t.Errorf("%s: NGev = %d, but Grad was called %d times", opt.Name(), r.NGev, gCalls)
		}
		if r.NFev != fCalls {
			t.Errorf("%s: NFev = %d, but F was called %d times", opt.Name(), r.NFev, fCalls)
		}
		// Cancellation lands within one outer step of the cancelling
		// gradient: at most one more line search, never another gradient.
		if r.NGev > 3 {
			t.Errorf("%s: %d gradient calls after cancelling at the 3rd", opt.Name(), r.NGev)
		}
		if got := rosenbrockND(r.X); got != r.F {
			t.Errorf("%s: incumbent inconsistent: F = %v but f(X) = %v", opt.Name(), r.F, got)
		}
	}
}

// Run must surface gradient-evaluation telemetry for analytic runs and
// stay silent about it on the FD path.
func TestRunRecordsGradientTelemetry(t *testing.T) {
	b := UniformBounds(3, -2, 2)
	center := []float64{0.7, -0.3, 1.2}
	for _, opt := range gradOptimizers() {
		mem := telemetry.NewMemory()
		r := Run(context.Background(), Problem{F: sphere(center), Grad: sphereGrad(center), X0: []float64{-1, 1, 0}, Bounds: b},
			Options{Optimizer: opt, Recorder: mem})
		if got := mem.CounterValue("optimize.gev_total"); got != int64(r.NGev) {
			t.Errorf("%s: optimize.gev_total = %d, want %d", opt.Name(), got, r.NGev)
		}
		if h, ok := mem.HistogramSnapshot("optimize.ngev"); !ok || h.Count != 1 {
			t.Errorf("%s: optimize.ngev histogram missing", opt.Name())
		}

		fdMem := telemetry.NewMemory()
		_ = Run(context.Background(), Problem{F: sphere(center), X0: []float64{-1, 1, 0}, Bounds: b},
			Options{Optimizer: opt, Recorder: fdMem})
		if got := fdMem.CounterValue("optimize.gev_total"); got != 0 {
			t.Errorf("%s: FD run recorded gev_total = %d", opt.Name(), got)
		}
	}
}

// rosenbrockNDGrad is the analytic gradient of rosenbrockND (chained
// 2-D Rosenbrock terms over consecutive coordinate pairs).
func rosenbrockNDGrad(x, grad []float64) {
	for i := range grad {
		grad[i] = 0
	}
	for i := 0; i+1 < len(x); i++ {
		a, b := x[i], x[i+1]
		grad[i] += -400*a*(b-a*a) - 2*(1-a)
		grad[i+1] += 200 * (b - a*a)
	}
}
