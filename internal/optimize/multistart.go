package optimize

import (
	"math/rand"
)

// MultiStartResult aggregates a multistart run: the best single result
// plus totals over every start (the paper's "20 random initializations"
// protocol reports the total QC calls across starts).
type MultiStartResult struct {
	Best      Result   // the lowest-F run
	TotalNFev int      // function evaluations summed over all starts
	Runs      []Result // every individual run, in start order
}

// MultiStart minimizes f from k points sampled uniformly in bounds with
// rng, returning the best result and the total evaluation cost.
// It panics for k < 1.
func MultiStart(opt Optimizer, f Func, bounds *Bounds, k int, rng *rand.Rand) MultiStartResult {
	if k < 1 {
		panic("optimize: MultiStart needs k >= 1")
	}
	var out MultiStartResult
	for i := 0; i < k; i++ {
		x0 := bounds.Random(rng)
		r := opt.Minimize(f, x0, bounds)
		out.Runs = append(out.Runs, r)
		out.TotalNFev += r.NFev
		if i == 0 || r.F < out.Best.F {
			out.Best = r
		}
	}
	return out
}

// MultiStartFrom behaves like MultiStart but uses the provided explicit
// start points instead of random sampling. It panics on empty starts.
func MultiStartFrom(opt Optimizer, f Func, bounds *Bounds, starts [][]float64) MultiStartResult {
	if len(starts) == 0 {
		panic("optimize: MultiStartFrom needs at least one start")
	}
	var out MultiStartResult
	for i, x0 := range starts {
		r := opt.Minimize(f, x0, bounds)
		out.Runs = append(out.Runs, r)
		out.TotalNFev += r.NFev
		if i == 0 || r.F < out.Best.F {
			out.Best = r
		}
	}
	return out
}
