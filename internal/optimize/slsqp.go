package optimize

import (
	"context"
	"math"

	"qaoaml/internal/linalg"
)

// SLSQP is a sequential quadratic programming method with a damped-BFGS
// Hessian approximation, the algorithm family of SciPy's SLSQP. The
// QAOA domain has only box constraints, so each QP subproblem
//
//	min  gᵀd + ½ dᵀBd   s.t.  lo − x ≤ d ≤ hi − x
//
// is solved by cyclic coordinate descent with clipping, which converges
// for the SPD B maintained by the damped update. Gradients are finite
// differences (counted as function calls).
type SLSQP struct {
	Tol     float64  // relative f-change / projected-gradient tolerance (default 1e-6)
	MaxIter int      // outer iteration cap (default 100·dim)
	MaxFev  int      // function evaluation cap (default 2000·dim)
	Scheme  FDScheme // finite-difference scheme (default central)
	FDStep  float64  // finite-difference step (default 1e-6)
	QPSweep int      // coordinate-descent sweeps per QP solve (default 30)
}

// Name implements Optimizer.
func (o *SLSQP) Name() string { return "SLSQP" }

// Minimize implements Optimizer.
func (o *SLSQP) Minimize(f Func, x0 []float64, bounds *Bounds) Result {
	return Run(context.Background(), Problem{F: f, X0: x0, Bounds: bounds}, Options{Optimizer: o})
}

// MinimizeBatch implements BatchMinimizer: finite-difference gradient
// stencils are evaluated through bf (probes are independent, so a batch
// objective may run them concurrently); everything else — and the
// resulting trajectory, NFev and Result — is identical to Minimize.
func (o *SLSQP) MinimizeBatch(f Func, bf BatchFunc, x0 []float64, bounds *Bounds) Result {
	return Run(context.Background(), Problem{F: f, Batch: bf, X0: x0, Bounds: bounds}, Options{Optimizer: o})
}

// run implements the runner hook behind Run. Per-iteration events
// report the projected-gradient ∞-norm and the previous accepted
// line-search step.
func (o *SLSQP) run(env *runEnv) Result {
	f, bf, bounds := env.f, env.bf, env.bounds
	x := prepareStart(env.x0, bounds)
	n := len(x)
	tol := tolOrDefault(o.Tol)
	maxIter := maxIterOrDefault(o.MaxIter, 100*n)
	maxFev := env.capFev(maxIterOrDefault(o.MaxFev, 2000*n))
	sweeps := maxIterOrDefault(o.QPSweep, 30)
	cnt := &counter{f: f}
	ngev := 0
	gws := NewGradientWorkspace(n)
	// Analytic gradients (adjoint mode) cost zero function evaluations
	// and are counted in ngev; without them the finite-difference path
	// below is bit-identical to the pre-analytic implementation.
	grad := func(dst, at []float64, fat float64) {
		if env.agrad != nil {
			end := env.rec.Span("optimize.grad")
			env.agrad(at, dst)
			end()
			ngev++
			return
		}
		if bf != nil {
			_, nev := gws.GradientBatch(dst, bf, at, fat, bounds, o.Scheme, o.FDStep)
			cnt.n += nev
		} else {
			gws.Gradient(dst, cnt.call, at, fat, bounds, o.Scheme, o.FDStep)
		}
	}

	fx := cnt.call(x)
	g := make([]float64, n)
	gNew := make([]float64, n)
	grad(g, x, fx)
	xls := make([]float64, n) // line-search candidate buffer
	b := linalg.Identity(n)

	iters := 0
	converged := false
	cancelled := false
	lastAlpha := 0.0
	msg := "max iterations reached"
	for ; iters < maxIter && cnt.n < maxFev; iters++ {
		if env.stop(&msg) {
			cancelled = true
			break
		}
		pg := projectedGradientNorm(x, g, bounds)
		if env.emit(iters, fx, pg, lastAlpha, cnt.n) {
			cancelled = true
			msg = callbackStopMsg
			break
		}
		if pg <= tol {
			converged = true
			msg = "projected gradient below tolerance"
			break
		}
		d := solveBoxQP(b, g, x, bounds, sweeps)
		norm := 0.0
		for _, di := range d {
			norm += di * di
		}
		if math.Sqrt(norm) <= 1e-14 {
			converged = true
			msg = "QP step vanished (KKT point)"
			break
		}

		// Armijo backtracking along the feasible direction d, writing
		// candidates into the reusable xls buffer.
		gTd := dot(g, d)
		alpha := 1.0
		var fNew float64
		accepted := false
		for try := 0; try < 30 && cnt.n < maxFev; try++ {
			for i := range xls {
				xls[i] = x[i] + alpha*d[i]
			}
			bounds.Clip(xls) // guard roundoff; d is feasible by construction
			ft := cnt.call(xls)
			if ft <= fx+1e-4*alpha*gTd || (gTd >= 0 && ft < fx) {
				fNew, accepted = ft, true
				break
			}
			alpha /= 2
		}
		if !accepted {
			msg = "line search failed to make progress"
			break
		}
		lastAlpha = alpha

		grad(gNew, xls, fNew)
		updateDampedBFGS(b, x, xls, g, gNew)

		fPrev := fx
		x, xls = xls, x
		fx = fNew
		g, gNew = gNew, g
		if relChange(fPrev, fx) <= tol {
			converged = true
			msg = "function change below tolerance"
			iters++
			break
		}
	}
	if !converged && !cancelled && cnt.n >= maxFev {
		msg = "function evaluation budget exhausted"
	}
	return Result{X: x, F: fx, NFev: cnt.n, NGev: ngev, Iters: iters, Converged: converged,
		Status: statusOf(converged, cancelled), Message: msg}
}

// solveBoxQP minimizes gᵀd + ½dᵀBd subject to lo−x ≤ d ≤ hi−x by cyclic
// coordinate descent with clipping (convergent for SPD B).
func solveBoxQP(b *linalg.Matrix, g, x []float64, bounds *Bounds, sweeps int) []float64 {
	n := len(g)
	d := make([]float64, n)
	for s := 0; s < sweeps; s++ {
		maxDelta := 0.0
		for i := 0; i < n; i++ {
			bii := b.At(i, i)
			if bii <= 0 {
				bii = 1
			}
			// Partial derivative of the QP objective wrt d_i at current d.
			deriv := g[i]
			for j := 0; j < n; j++ {
				deriv += b.At(i, j) * d[j]
			}
			di := d[i] - deriv/bii
			lo, hi := bounds.Lo[i]-x[i], bounds.Hi[i]-x[i]
			if di < lo {
				di = lo
			} else if di > hi {
				di = hi
			}
			if delta := math.Abs(di - d[i]); delta > maxDelta {
				maxDelta = delta
			}
			d[i] = di
		}
		if maxDelta < 1e-14 {
			break
		}
	}
	return d
}

// updateDampedBFGS applies Powell's damped BFGS update to b in place,
// which keeps it positive definite even when sᵀy ≤ 0.
func updateDampedBFGS(b *linalg.Matrix, x, xNew, g, gNew []float64) {
	n := len(x)
	s := make(linalg.Vector, n)
	y := make(linalg.Vector, n)
	for i := range s {
		s[i] = xNew[i] - x[i]
		y[i] = gNew[i] - g[i]
	}
	bs := b.MulVec(s)
	sBs := s.Dot(bs)
	if sBs <= 0 {
		return // degenerate step; skip update
	}
	sy := s.Dot(y)
	theta := 1.0
	if sy < 0.2*sBs {
		theta = 0.8 * sBs / (sBs - sy)
	}
	// r = θ·y + (1−θ)·B·s guarantees sᵀr ≥ 0.2·sᵀBs > 0.
	r := make(linalg.Vector, n)
	for i := range r {
		r[i] = theta*y[i] + (1-theta)*bs[i]
	}
	sr := s.Dot(r)
	if sr <= 1e-12 {
		return
	}
	// B ← B − (B s sᵀ B)/(sᵀBs) + (r rᵀ)/(sᵀr)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := b.At(i, j) - bs[i]*bs[j]/sBs + r[i]*r[j]/sr
			b.Set(i, j, v)
		}
	}
}
