package optimize

import (
	"context"
	"time"

	"qaoaml/internal/telemetry"
)

// GradFunc computes the analytic gradient ∇f(x) into grad
// (len(grad) == len(x)). It must not retain either slice.
type GradFunc func(x, grad []float64)

// ValueGradFunc computes f(x) and ∇f(x) in one pass, filling grad and
// returning the value. The value must equal what F(x) would return.
type ValueGradFunc func(x, grad []float64) float64

// Problem bundles everything that defines one minimization: the
// objective, an optional batch fast path for independent probe points,
// optional analytic gradients, the start point and the box bounds.
type Problem struct {
	F      Func      // objective (required)
	Batch  BatchFunc // optional batch evaluator for FD probe stencils
	X0     []float64 // start point (clipped into Bounds)
	Bounds *Bounds   // box constraints (required)

	// Grad, when non-nil, supplies analytic gradients. The gradient-based
	// optimizers (L-BFGS-B, SLSQP) then skip finite differences entirely:
	// gradients cost zero function evaluations and are counted in
	// Result.NGev instead. Optimizers that do not use gradients ignore it.
	Grad GradFunc
	// ValueGrad is the fused alternative to Grad (one pass for f and ∇f).
	// When both are set, Grad wins; when only ValueGrad is set the
	// optimizers use it as a gradient source (the fused value is ignored —
	// every point a gradient is requested at has already been evaluated by
	// the line search, so NFev accounting is unchanged).
	ValueGrad ValueGradFunc
}

// Options carries the cross-cutting run controls. The zero value is
// valid: L-BFGS-B, no recording, no callback, optimizer-default
// evaluation budget.
type Options struct {
	// Optimizer selects the algorithm (default &LBFGSB{}). The value is
	// read-only during the run, so one Optimizer may serve concurrent
	// Runs.
	Optimizer Optimizer
	// Recorder receives per-iteration traces and per-run FC/latency
	// observations (default telemetry.Nop). It is shared across
	// goroutines when Runs execute concurrently, so implementations
	// must be thread-safe (telemetry.Memory is).
	Recorder telemetry.Recorder
	// Callback, when non-nil, is invoked with every iteration event;
	// returning true stops the run with Status == Cancelled.
	Callback func(telemetry.IterEvent) (stop bool)
	// MaxNFev, when positive, caps the function-evaluation budget below
	// the optimizer's own default/ configured cap.
	MaxNFev int
}

// Run is the context-first entry point every optimizer run goes
// through: Minimize, MinimizeBatch and MinimizeWith are one-line
// wrappers around it. The context is checked once per outer iteration,
// so cancellation and deadlines take effect within one optimizer step
// and the returned Result carries the best point found so far with
// Status == Cancelled.
func Run(ctx context.Context, p Problem, opts Options) Result {
	if ctx == nil {
		ctx = context.Background()
	}
	opt := opts.Optimizer
	if opt == nil {
		opt = &LBFGSB{}
	}
	rec := telemetry.OrNop(opts.Recorder)
	if err := ctx.Err(); err != nil {
		// Cancelled before the run: report the clipped start as the
		// incumbent (one evaluation, so F is consistent with X).
		x := prepareStart(p.X0, p.Bounds)
		return Result{X: x, F: p.F(x), NFev: 1, Status: Cancelled,
			Message: "context cancelled before start: " + err.Error()}
	}
	env := &runEnv{
		f: p.F, bf: p.Batch, agrad: analyticGrad(p), x0: p.X0, bounds: p.Bounds,
		ctx: ctx, rec: rec, cb: opts.Callback, maxFev: opts.MaxNFev,
		name: opt.Name(),
	}
	start := time.Now()
	var res Result
	if r, ok := opt.(runner); ok {
		res = r.run(env)
	} else {
		// External Optimizer implementations without the internal run
		// hook: no mid-run cancellation, but batch dispatch and status
		// mapping still apply.
		if bm, ok := opt.(BatchMinimizer); ok && p.Batch != nil {
			res = bm.MinimizeBatch(p.F, p.Batch, p.X0, p.Bounds)
		} else {
			res = opt.Minimize(p.F, p.X0, p.Bounds)
		}
		if res.Converged {
			res.Status = Converged
		} else {
			res.Status = MaxIter
		}
	}
	rec.Count("optimize.runs", 1)
	rec.Count("optimize.fev_total", int64(res.NFev))
	rec.Observe("optimize.nfev", float64(res.NFev))
	if res.NGev > 0 {
		rec.Count("optimize.gev_total", int64(res.NGev))
		rec.Observe("optimize.ngev", float64(res.NGev))
	}
	rec.Observe("optimize.run_ms", float64(time.Since(start).Nanoseconds())/1e6)
	return res
}

// analyticGrad folds the Problem's two gradient fields into one GradFunc
// (Grad preferred, then ValueGrad with the value discarded), or nil when
// the problem has no analytic gradient and finite differences apply.
func analyticGrad(p Problem) GradFunc {
	switch {
	case p.Grad != nil:
		return p.Grad
	case p.ValueGrad != nil:
		return func(x, grad []float64) { p.ValueGrad(x, grad) }
	}
	return nil
}

// runner is the internal per-algorithm hook Run dispatches to; all
// five optimizers in this package implement it.
type runner interface {
	run(env *runEnv) Result
}

// runEnv carries one run's inputs and cross-cutting concerns (context,
// recorder, callback, budget cap) into the optimizer inner loops.
type runEnv struct {
	f      Func
	bf     BatchFunc
	agrad  GradFunc // non-nil: analytic gradient replaces finite differences
	x0     []float64
	bounds *Bounds
	ctx    context.Context
	rec    telemetry.Recorder
	cb     func(telemetry.IterEvent) bool
	maxFev int    // > 0 caps the optimizer's evaluation budget
	name   string // Source for emitted events
}

// capFev returns the effective evaluation budget given the optimizer's
// own cap.
func (e *runEnv) capFev(optCap int) int {
	if e.maxFev > 0 && e.maxFev < optCap {
		return e.maxFev
	}
	return optCap
}

// stop reports whether the context is done; when it is, *msg is set to
// the termination reason.
func (e *runEnv) stop(msg *string) bool {
	if err := e.ctx.Err(); err != nil {
		*msg = "context cancelled: " + err.Error()
		return true
	}
	return false
}

// emit publishes the state entering iteration iter and reports whether
// the callback requests a stop.
func (e *runEnv) emit(iter int, f, gnorm, step float64, nfev int) bool {
	ev := telemetry.IterEvent{Source: e.name, Iter: iter, F: f, GNorm: gnorm, Step: step, NFev: nfev}
	e.rec.Iteration(ev)
	return e.cb != nil && e.cb(ev)
}

// statusOf folds the two termination booleans into a Status.
func statusOf(converged, cancelled bool) Status {
	switch {
	case cancelled:
		return Cancelled
	case converged:
		return Converged
	default:
		return MaxIter
	}
}

const callbackStopMsg = "stopped by callback"
