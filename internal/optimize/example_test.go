package optimize_test

import (
	"fmt"
	"math/rand"

	"qaoaml/internal/optimize"
)

// Minimize a shifted quadratic under box bounds with L-BFGS-B.
func ExampleLBFGSB() {
	f := func(x []float64) float64 {
		return (x[0]-0.5)*(x[0]-0.5) + (x[1]+0.25)*(x[1]+0.25)
	}
	bounds := optimize.UniformBounds(2, -1, 1)
	opt := &optimize.LBFGSB{Tol: 1e-8}
	res := opt.Minimize(f, []float64{0.9, 0.9}, bounds)
	fmt.Printf("x = (%.2f, %.2f), converged: %v\n", res.X[0], res.X[1], res.Converged)
	// Output: x = (0.50, -0.25), converged: true
}

// MultiStart escapes local minima by restarting from random points.
func ExampleMultiStart() {
	// A double-well in 1D: the global minimum is at x = 2.
	f := func(x []float64) float64 {
		d1 := (x[0] + 1) * (x[0] + 1)
		d2 := (x[0] - 2) * (x[0] - 2)
		if d1+0.5 < d2 {
			return d1 + 0.5
		}
		return d2
	}
	bounds := optimize.UniformBounds(1, -4, 4)
	rng := rand.New(rand.NewSource(1))
	ms := optimize.MultiStart(&optimize.NelderMead{}, f, bounds, 8, rng)
	fmt.Printf("best x = %.1f, f = %.1f\n", ms.Best.X[0], ms.Best.F)
	// Output: best x = 2.0, f = 0.0
}
