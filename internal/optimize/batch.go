package optimize

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// BatchFunc evaluates the same objective at several independent points
// and returns the values in input order. Implementations may evaluate
// the points concurrently (qaoa.BatchEvaluator does, on per-worker
// workspaces) but must return exactly the values serial evaluation
// would, so optimizers that batch their probe evaluations stay
// bit-identical to their serial form. Objectives over large quantum
// registers already parallelize inside their kernels (chunked gates and
// reductions); such implementations should evaluate points serially
// rather than stack a second layer of workers on oversubscribed cores
// — qaoa.BatchEvaluator collapses to one worker above the kernel
// parallelism threshold for exactly this reason.
type BatchFunc func(points [][]float64) []float64

// SerialBatch adapts a plain Func to BatchFunc by evaluating points in
// order — useful for tests and for objectives with no batch fast path.
func SerialBatch(f Func) BatchFunc {
	return func(points [][]float64) []float64 {
		out := make([]float64, len(points))
		for i, x := range points {
			out[i] = f(x)
		}
		return out
	}
}

// BatchMinimizer is implemented by optimizers that can evaluate
// independent probe points (finite-difference gradient stencils) in
// one batch. MinimizeBatch must produce the same Result — point,
// value, iterations and NFev — as Minimize with the same f; bf is
// consulted only for probe batches.
type BatchMinimizer interface {
	Optimizer
	MinimizeBatch(f Func, bf BatchFunc, x0 []float64, bounds *Bounds) Result
}

// MinimizeWith dispatches to the batched probe path when the optimizer
// supports it and bf is non-nil, else to the plain serial path. It is a
// thin wrapper around Run with a background context.
func MinimizeWith(opt Optimizer, f Func, bf BatchFunc, x0 []float64, bounds *Bounds) Result {
	return Run(context.Background(), Problem{F: f, Batch: bf, X0: x0, Bounds: bounds}, Options{Optimizer: opt})
}

// MultiStartFromBatch behaves like MultiStartFrom with batched probe
// evaluation inside each run (via MinimizeWith). Runs execute serially
// in start order; per-run results and the total NFev are identical to
// MultiStartFrom.
func MultiStartFromBatch(opt Optimizer, f Func, bf BatchFunc, bounds *Bounds, starts [][]float64) MultiStartResult {
	if len(starts) == 0 {
		panic("optimize: MultiStartFromBatch needs at least one start")
	}
	var out MultiStartResult
	for i, x0 := range starts {
		r := MinimizeWith(opt, f, bf, x0, bounds)
		out.Runs = append(out.Runs, r)
		out.TotalNFev += r.NFev
		if i == 0 || r.F < out.Best.F {
			out.Best = r
		}
	}
	return out
}

// MultiStartConcurrent minimizes from k points sampled uniformly in
// bounds — the same points, in the same order, as MultiStart with the
// same rng — but runs the independent starts on up to workers
// goroutines. newF must return a fresh objective on every call (one is
// created per worker); objectives with shared state (e.g. a counting
// evaluator) must not be shared across workers. Results, the winning
// run and TotalNFev are identical to the serial MultiStart because each
// run is independent and best-selection folds in start order.
func MultiStartConcurrent(opt Optimizer, newF func() Func, bounds *Bounds, k int, rng *rand.Rand, workers int) MultiStartResult {
	if k < 1 {
		panic("optimize: MultiStartConcurrent needs k >= 1")
	}
	starts := make([][]float64, k)
	for i := range starts {
		starts[i] = bounds.Random(rng)
	}
	return MultiStartFromConcurrent(opt, newF, bounds, starts, workers)
}

// MultiStartFromConcurrent is MultiStartFrom over explicit start points
// with the runs distributed over up to workers goroutines (≤ 0 selects
// GOMAXPROCS). The optimizer value is shared across workers and must be
// a pure-configuration struct (all optimizers in this package are).
func MultiStartFromConcurrent(opt Optimizer, newF func() Func, bounds *Bounds, starts [][]float64, workers int) MultiStartResult {
	if len(starts) == 0 {
		panic("optimize: MultiStartFromConcurrent needs at least one start")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(starts) {
		workers = len(starts)
	}
	runs := make([]Result, len(starts))
	if workers == 1 {
		f := newF()
		for i, x0 := range starts {
			runs[i] = opt.Minimize(f, x0, bounds)
		}
	} else {
		var next int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				f := newF()
				for {
					i := int(atomic.AddInt64(&next, 1)) - 1
					if i >= len(starts) {
						return
					}
					runs[i] = opt.Minimize(f, starts[i], bounds)
				}
			}()
		}
		wg.Wait()
	}
	out := MultiStartResult{Runs: runs}
	for i, r := range runs {
		out.TotalNFev += r.NFev
		if i == 0 || r.F < out.Best.F {
			out.Best = r
		}
	}
	return out
}
