package core

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

var persistEnv struct {
	once sync.Once
	data *Data
	pred *Predictor
	err  error
}

// trainedPredictor generates a tiny dataset and trains a GPR predictor
// once for the persistence tests.
func trainedPredictor(t *testing.T) (*Data, *Predictor) {
	t.Helper()
	persistEnv.once.Do(func() {
		data, err := Generate(DataGenConfig{
			NumGraphs: 8, Nodes: 6, EdgeProb: 0.5,
			MaxDepth: 3, Starts: 2, Tol: 1e-6, Seed: 11,
		})
		if err != nil {
			persistEnv.err = err
			return
		}
		pred := NewPredictor(nil)
		if err := pred.Train(data, []int{0, 1, 2, 3, 4}); err != nil {
			persistEnv.err = err
			return
		}
		persistEnv.data, persistEnv.pred = data, pred
	})
	if persistEnv.err != nil {
		t.Fatal(persistEnv.err)
	}
	return persistEnv.data, persistEnv.pred
}

func TestPredictorSaveLoadRoundTrip(t *testing.T) {
	data, pred := trainedPredictor(t)

	var buf bytes.Buffer
	if err := pred.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPredictor(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	if got, want := loaded.TargetDepths(), pred.TargetDepths(); len(got) != len(want) {
		t.Fatalf("target depths %v != %v", got, want)
	}
	// Predictions from the loaded banks must be bit-identical on every
	// held-out feature vector.
	for g := 5; g < 8; g++ {
		p1 := data.Record(g, 1).Params
		for depth := 2; depth <= 3; depth++ {
			f := FeaturesFromParams(p1, depth)
			want, err := pred.Predict(f)
			if err != nil {
				t.Fatal(err)
			}
			got, err := loaded.Predict(f)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want.Gamma {
				if want.Gamma[i] != got.Gamma[i] || want.Beta[i] != got.Beta[i] {
					t.Fatalf("graph %d depth %d: prediction drifted: %v/%v != %v/%v",
						g, depth, got.Gamma, got.Beta, want.Gamma, want.Beta)
				}
			}
		}
	}
}

func TestPredictorSaveFileRoundTrip(t *testing.T) {
	_, pred := trainedPredictor(t)
	path := t.TempDir() + "/model.json"
	if err := pred.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPredictorFile(path); err != nil {
		t.Fatal(err)
	}
}

func TestPredictorSaveUntrained(t *testing.T) {
	var buf bytes.Buffer
	if err := NewPredictor(nil).Save(&buf); err == nil {
		t.Fatal("saving untrained predictor succeeded")
	}
}

func TestLoadPredictorRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad version":   `{"version":9,"family":"GPR","banks":{}}`,
		"no banks":      `{"version":1,"family":"GPR","banks":{}}`,
		"bad family":    `{"version":1,"family":"NOPE","banks":{"2":{"models":[]}}}`,
		"bad depth key": `{"version":1,"family":"LM","banks":{"x":{"models":[]}}}`,
		"garbage":       `{{`,
	}
	for name, blob := range cases {
		if _, err := LoadPredictor(strings.NewReader(blob)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestLoadPredictorChecksBankWidth(t *testing.T) {
	_, pred := trainedPredictor(t)
	var buf bytes.Buffer
	if err := pred.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Re-key the depth-2 bank (4 outputs) as depth 3 (needs 6).
	blob := buf.String()
	blob = strings.Replace(blob, `"2":`, `"9":`, 1)
	if _, err := LoadPredictor(strings.NewReader(blob)); err == nil {
		t.Fatal("bank width mismatch accepted")
	}
}
