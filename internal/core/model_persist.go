package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"

	"qaoaml/internal/ml"
)

// Predictor persistence: the trained per-depth regression banks as
// versioned JSON, so the serving layer (internal/server's model
// registry) can load pre-trained predictors at startup instead of
// regenerating the dataset and retraining per process. The serialized
// state restores Predict bit-identically, which keeps the daemon's
// result cache coherent with offline runs.

// predictorFileVersion is the schema version written by Predictor.Save.
const predictorFileVersion = 1

type predictorFile struct {
	Version int                            `json:"version"`
	Family  string                         `json:"family"` // underlying model family, e.g. "GPR"
	Banks   map[string]ml.MultiOutputState `json:"banks"`  // target depth (decimal string) → bank
}

// Save serializes the trained predictor as JSON. It errors before Train.
func (p *Predictor) Save(w io.Writer) error {
	if len(p.banks) == 0 {
		return fmt.Errorf("core: cannot save untrained predictor")
	}
	pf := predictorFile{
		Version: predictorFileVersion,
		Family:  p.NewModel().Name(),
		Banks:   make(map[string]ml.MultiOutputState, len(p.banks)),
	}
	for depth, bank := range p.banks {
		st, err := bank.State()
		if err != nil {
			return fmt.Errorf("core: depth-%d bank: %w", depth, err)
		}
		pf.Banks[strconv.Itoa(depth)] = st
	}
	return json.NewEncoder(w).Encode(pf)
}

// SaveFile writes the predictor to path.
func (p *Predictor) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := p.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadPredictor reads a predictor previously written by Save. The
// restored banks predict bit-identically to the saved ones.
func LoadPredictor(r io.Reader) (*Predictor, error) {
	var pf predictorFile
	if err := json.NewDecoder(r).Decode(&pf); err != nil {
		return nil, fmt.Errorf("core: decoding predictor: %w", err)
	}
	if pf.Version != predictorFileVersion {
		return nil, fmt.Errorf("core: unsupported predictor version %d (want %d)", pf.Version, predictorFileVersion)
	}
	if len(pf.Banks) == 0 {
		return nil, fmt.Errorf("core: predictor file has no trained banks")
	}
	factory, ok := ml.FactoryFor(pf.Family)
	if !ok {
		return nil, fmt.Errorf("core: unknown model family %q", pf.Family)
	}
	p := NewPredictor(factory)
	depths := make([]string, 0, len(pf.Banks))
	for d := range pf.Banks {
		depths = append(depths, d)
	}
	sort.Strings(depths)
	for _, ds := range depths {
		depth, err := strconv.Atoi(ds)
		if err != nil || depth < 2 {
			return nil, fmt.Errorf("core: invalid bank depth key %q", ds)
		}
		bank, err := ml.MultiOutputFromState(pf.Banks[ds])
		if err != nil {
			return nil, fmt.Errorf("core: depth-%d bank: %w", depth, err)
		}
		if bank.Outputs() != 2*depth {
			return nil, fmt.Errorf("core: depth-%d bank has %d outputs, want %d", depth, bank.Outputs(), 2*depth)
		}
		p.banks[depth] = bank
	}
	return p, nil
}

// LoadPredictorFile reads a predictor from path.
func LoadPredictorFile(path string) (*Predictor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadPredictor(f)
}
