package core

import (
	"fmt"

	"qaoaml/internal/ml"
	"qaoaml/internal/qaoa"
)

// Predictor maps the two-level features (γ1OPT(p=1), β1OPT(p=1), pt) to
// the 2·pt parameters of the target-depth instance. Because the output
// width varies with pt, the predictor keeps one multi-output regression
// bank per target depth, all sharing the same model family.
type Predictor struct {
	// NewModel constructs the underlying single-output model family
	// (default: GPR, the paper's best performer).
	NewModel func() ml.Regressor

	banks map[int]*ml.MultiOutput // target depth → trained bank
}

// NewPredictor returns a Predictor using the given model factory
// (nil selects GPR).
func NewPredictor(factory func() ml.Regressor) *Predictor {
	if factory == nil {
		factory = func() ml.Regressor { return &ml.GPR{} }
	}
	return &Predictor{NewModel: factory, banks: make(map[int]*ml.MultiOutput)}
}

// TargetDepths lists the depths the predictor was trained for.
func (p *Predictor) TargetDepths() []int {
	var out []int
	for d := 2; d <= 64; d++ {
		if _, ok := p.banks[d]; ok {
			out = append(out, d)
		}
	}
	return out
}

// Train fits the predictor from the dataset restricted to the training
// graph ids, for every target depth 2..cfg.MaxDepth.
func (p *Predictor) Train(data *Data, trainIDs []int) error {
	maxDepth := data.Config.MaxDepth
	if maxDepth < 2 {
		return fmt.Errorf("core: dataset max depth %d < 2 cannot train a predictor", maxDepth)
	}
	for depth := 2; depth <= maxDepth; depth++ {
		var x [][]float64
		var y [][]float64
		for _, g := range trainIDs {
			p1 := data.Record(g, 1).Params
			target := data.Record(g, depth).Params
			x = append(x, FeaturesFromParams(p1, depth).Vector())
			y = append(y, target.Vector())
		}
		bank := ml.NewMultiOutput(p.NewModel)
		if err := bank.Fit(x, y); err != nil {
			return fmt.Errorf("core: training depth-%d bank: %w", depth, err)
		}
		p.banks[depth] = bank
	}
	return nil
}

// Predict returns the predicted target-depth parameters for the given
// features, clipped into the paper's domain (γ ∈ [0, 2π], β ∈ [0, π]).
func (p *Predictor) Predict(f Features) (qaoa.Params, error) {
	bank, ok := p.banks[f.TargetDepth]
	if !ok {
		return qaoa.Params{}, fmt.Errorf("core: no bank trained for target depth %d", f.TargetDepth)
	}
	raw := bank.Predict(f.Vector())
	return clipParams(qaoa.FromVector(raw)), nil
}

// clipParams projects parameters into the optimization domain.
func clipParams(pr qaoa.Params) qaoa.Params {
	for i := range pr.Gamma {
		pr.Gamma[i] = clamp(pr.Gamma[i], 0, qaoa.GammaMax)
		pr.Beta[i] = clamp(pr.Beta[i], 0, qaoa.BetaMax)
	}
	return pr
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// HierPredictor is the hierarchical variant: one bank per target depth
// ≥ 3, trained on the richer HierFeatures (depth-1 and depth-2 optima).
type HierPredictor struct {
	NewModel func() ml.Regressor
	banks    map[int]*ml.MultiOutput
}

// NewHierPredictor returns a HierPredictor (nil factory selects GPR).
func NewHierPredictor(factory func() ml.Regressor) *HierPredictor {
	if factory == nil {
		factory = func() ml.Regressor { return &ml.GPR{} }
	}
	return &HierPredictor{NewModel: factory, banks: make(map[int]*ml.MultiOutput)}
}

// Train fits banks for every target depth 3..cfg.MaxDepth.
func (p *HierPredictor) Train(data *Data, trainIDs []int) error {
	maxDepth := data.Config.MaxDepth
	if maxDepth < 3 {
		return fmt.Errorf("core: dataset max depth %d < 3 cannot train a hierarchical predictor", maxDepth)
	}
	for depth := 3; depth <= maxDepth; depth++ {
		var x [][]float64
		var y [][]float64
		for _, g := range trainIDs {
			p1 := data.Record(g, 1).Params
			p2 := data.Record(g, 2).Params
			x = append(x, HierFeaturesFromParams(p1, p2, depth).Vector())
			y = append(y, data.Record(g, depth).Params.Vector())
		}
		bank := ml.NewMultiOutput(p.NewModel)
		if err := bank.Fit(x, y); err != nil {
			return fmt.Errorf("core: training hierarchical depth-%d bank: %w", depth, err)
		}
		p.banks[depth] = bank
	}
	return nil
}

// Predict returns the predicted parameters for the hierarchical
// features, clipped into the domain.
func (p *HierPredictor) Predict(f HierFeatures) (qaoa.Params, error) {
	bank, ok := p.banks[f.TargetDepth]
	if !ok {
		return qaoa.Params{}, fmt.Errorf("core: no hierarchical bank for target depth %d", f.TargetDepth)
	}
	return clipParams(qaoa.FromVector(bank.Predict(f.Vector()))), nil
}
