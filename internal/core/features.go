// Package core implements the paper's contribution: ML-accelerated QAOA
// parameter initialization. It generates the optimal-parameter dataset
// (Sec. III-A), extracts the three-feature representation
// (γ1OPT(p=1), β1OPT(p=1), target depth pt — Sec. II-D), trains the
// per-depth regression banks (Sec. III-C), and runs the two-level
// optimization flow of Fig. 4 plus the hierarchical variant sketched in
// Sec. I(d).
package core

import (
	"fmt"

	"qaoaml/internal/qaoa"
)

// Features is the predictor input of the two-level approach: the
// optimal depth-1 angles and the target depth (Sec. II-D).
type Features struct {
	Gamma1      float64 // γ1OPT(p = 1)
	Beta1       float64 // β1OPT(p = 1)
	TargetDepth int     // pt
}

// Vector flattens the features for the regression models.
func (f Features) Vector() []float64 {
	return []float64{f.Gamma1, f.Beta1, float64(f.TargetDepth)}
}

// FeaturesFromParams extracts Features from a depth-1 optimum.
// It panics if the params are not depth 1.
func FeaturesFromParams(p1 qaoa.Params, targetDepth int) Features {
	if p1.Depth() != 1 {
		panic(fmt.Sprintf("core: features need depth-1 params, got depth %d", p1.Depth()))
	}
	if targetDepth < 2 {
		panic(fmt.Sprintf("core: target depth %d < 2", targetDepth))
	}
	return Features{Gamma1: p1.Gamma[0], Beta1: p1.Beta[0], TargetDepth: targetDepth}
}

// HierFeatures is the hierarchical predictor input: the depth-1 and
// depth-2 optima plus the target depth (the Sec. I(d) "hierarchical
// prediction" tweak: optimal parameters from an intermediate stage
// along with the single-stage values).
type HierFeatures struct {
	Gamma1      float64   // γ1OPT(p = 1)
	Beta1       float64   // β1OPT(p = 1)
	Gamma2      []float64 // γiOPT(p = 2), length 2
	Beta2       []float64 // βiOPT(p = 2), length 2
	TargetDepth int       // pt
}

// Vector flattens the hierarchical features (7 values).
func (f HierFeatures) Vector() []float64 {
	v := make([]float64, 0, 7)
	v = append(v, f.Gamma1, f.Beta1)
	v = append(v, f.Gamma2...)
	v = append(v, f.Beta2...)
	return append(v, float64(f.TargetDepth))
}

// HierFeaturesFromParams builds HierFeatures from depth-1 and depth-2
// optima. It panics on wrong depths.
func HierFeaturesFromParams(p1, p2 qaoa.Params, targetDepth int) HierFeatures {
	if p1.Depth() != 1 || p2.Depth() != 2 {
		panic(fmt.Sprintf("core: hierarchical features need depths 1 and 2, got %d and %d",
			p1.Depth(), p2.Depth()))
	}
	if targetDepth < 3 {
		panic(fmt.Sprintf("core: hierarchical target depth %d < 3", targetDepth))
	}
	return HierFeatures{
		Gamma1:      p1.Gamma[0],
		Beta1:       p1.Beta[0],
		Gamma2:      append([]float64(nil), p2.Gamma...),
		Beta2:       append([]float64(nil), p2.Beta...),
		TargetDepth: targetDepth,
	}
}
