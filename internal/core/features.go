// Package core implements the paper's contribution: ML-accelerated QAOA
// parameter initialization. It generates the optimal-parameter dataset
// (Sec. III-A), extracts the three-feature representation
// (γ1OPT(p=1), β1OPT(p=1), target depth pt — Sec. II-D), trains the
// per-depth regression banks (Sec. III-C), and runs the two-level
// optimization flow of Fig. 4 plus the hierarchical variant sketched in
// Sec. I(d).
package core

import (
	"fmt"

	"qaoaml/internal/ml"
	"qaoaml/internal/problem"
	"qaoaml/internal/qaoa"
)

// Features is the predictor input of the two-level approach: the
// optimal depth-1 angles and the target depth (Sec. II-D).
type Features struct {
	Gamma1      float64 // γ1OPT(p = 1)
	Beta1       float64 // β1OPT(p = 1)
	TargetDepth int     // pt
}

// Vector flattens the features for the regression models.
func (f Features) Vector() []float64 {
	return []float64{f.Gamma1, f.Beta1, float64(f.TargetDepth)}
}

// FeaturesFromParams extracts Features from a depth-1 optimum.
// It panics if the params are not depth 1.
func FeaturesFromParams(p1 qaoa.Params, targetDepth int) Features {
	if p1.Depth() != 1 {
		panic(fmt.Sprintf("core: features need depth-1 params, got depth %d", p1.Depth()))
	}
	if targetDepth < 2 {
		panic(fmt.Sprintf("core: target depth %d < 2", targetDepth))
	}
	return Features{Gamma1: p1.Gamma[0], Beta1: p1.Beta[0], TargetDepth: targetDepth}
}

// FamilyCode returns a stable numeric encoding of a problem family for
// regression inputs: the family's index in problem.Families(), or −1
// for an unknown name. The ordering is part of the trained-model
// contract — Families() is append-only.
func FamilyCode(family string) float64 {
	for i, f := range problem.Families() {
		if f == family {
			return float64(i)
		}
	}
	return -1
}

// FamilyFeatures is the cross-family predictor input: the two-level
// features plus the problem family, for regression banks trained on
// mixed-family datasets where the optimal-angle trends differ per
// Hamiltonian class.
type FamilyFeatures struct {
	Family string
	Features
}

// Vector flattens the family-aware features (4 values).
func (f FamilyFeatures) Vector() []float64 {
	return append(f.Features.Vector(), FamilyCode(f.Family))
}

// FamilyTrainingSet builds the ml dataset for one target depth from a
// generated Data, with family-aware feature rows: each training
// instance contributes (γ1OPT(p=1), β1OPT(p=1), pt, family code) →
// target-depth parameter vector. Datasets from several families can be
// concatenated row-wise before fitting, which is the point of the
// family column.
func FamilyTrainingSet(data *Data, ids []int, targetDepth int) (*ml.Dataset, error) {
	if targetDepth < 2 || targetDepth > data.Config.MaxDepth {
		return nil, fmt.Errorf("core: target depth %d out of [2, %d]", targetDepth, data.Config.MaxDepth)
	}
	fam := data.Config.Family
	if fam == "" { // pre-family datasets are MaxCut by construction
		fam = problem.FamilyMaxCut
	}
	ds := &ml.Dataset{}
	for _, g := range ids {
		p1 := data.Record(g, 1).Params
		f := FamilyFeatures{Family: fam, Features: FeaturesFromParams(p1, targetDepth)}
		ds.Append(f.Vector(), data.Record(g, targetDepth).Params.Vector())
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

// HierFeatures is the hierarchical predictor input: the depth-1 and
// depth-2 optima plus the target depth (the Sec. I(d) "hierarchical
// prediction" tweak: optimal parameters from an intermediate stage
// along with the single-stage values).
type HierFeatures struct {
	Gamma1      float64   // γ1OPT(p = 1)
	Beta1       float64   // β1OPT(p = 1)
	Gamma2      []float64 // γiOPT(p = 2), length 2
	Beta2       []float64 // βiOPT(p = 2), length 2
	TargetDepth int       // pt
}

// Vector flattens the hierarchical features (7 values).
func (f HierFeatures) Vector() []float64 {
	v := make([]float64, 0, 7)
	v = append(v, f.Gamma1, f.Beta1)
	v = append(v, f.Gamma2...)
	v = append(v, f.Beta2...)
	return append(v, float64(f.TargetDepth))
}

// HierFeaturesFromParams builds HierFeatures from depth-1 and depth-2
// optima. It panics on wrong depths.
func HierFeaturesFromParams(p1, p2 qaoa.Params, targetDepth int) HierFeatures {
	if p1.Depth() != 1 || p2.Depth() != 2 {
		panic(fmt.Sprintf("core: hierarchical features need depths 1 and 2, got %d and %d",
			p1.Depth(), p2.Depth()))
	}
	if targetDepth < 3 {
		panic(fmt.Sprintf("core: hierarchical target depth %d < 3", targetDepth))
	}
	return HierFeatures{
		Gamma1:      p1.Gamma[0],
		Beta1:       p1.Beta[0],
		Gamma2:      append([]float64(nil), p2.Gamma...),
		Beta2:       append([]float64(nil), p2.Beta...),
		TargetDepth: targetDepth,
	}
}
